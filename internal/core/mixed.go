package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/comm"
)

// Mixed-precision solves: iterative refinement with float32 inner solves.
//
// The barotropic solvers are memory-bandwidth-bound — nine-point stencil
// sweeps, diagonal/block preconditioner applications, and a handful of
// vector recurrences, all streaming large arrays. Running the iteration in
// float32 halves that traffic (and halves the halo bytes on the wire), but
// float32 alone cannot reach POP's 1e−13 relative tolerance: ε₃₂ ≈ 1.2e−7.
// The classical fix is iterative refinement (Wilkinson; revived for mixed
// precision by Carson & Higham): an outer loop in float64 computes the true
// residual r = b − A·x and the inner solver only ever solves the
// *correction* system A·d = r in float32, after which x += d in float64.
// Each outer pass multiplies the error by the inner solve's residual
// reduction (mixedInnerTol), so three passes of 1e−5 reach 1e−13 with every
// hot kernel running in single precision.
//
// Scaling: the inner right-hand side is r/‖r‖, so the inner system always
// has a unit-norm RHS regardless of how small the outer residual has become
// — the float32 exponent range is never the limiting factor, only its
// mantissa, which is exactly what refinement compensates. The correction is
// folded back as x += ‖r‖·d in float64.
//
// Determinism: every global reduction still carries float64 payloads
// accumulated in float64 (stencil.Local32's dot products widen per point),
// over the same fixed binomial tree — so float32 solves are bitwise
// reproducible run-to-run and across thread counts, exactly like float64
// solves. They are NOT bitwise equal to float64 solves; the fp32 golden
// traces and the RMSZ convergence-equivalence gate (verify.sh) pin their
// behavior instead.
//
// The resilience machinery (checkpoints, reduce retries, crash rollback) is
// float64-only: a mixed solve under an active fault injector still sees
// injected halo faults but performs no in-solve recovery — the
// SolveResilient ladder retries at whole-solve granularity instead.

// Precision selects the arithmetic of the solver iteration kernels. The
// zero value is Float64 — the bitwise-reproducible production path — so
// zero-initialized Options match the legacy behavior.
type Precision int

const (
	// Float64 runs every kernel in double precision (the default).
	Float64 Precision = iota
	// Float32 runs the iteration kernels (stencil sweeps, preconditioner
	// applications, vector recurrences, halo exchanges) in single precision
	// inside a float64 iterative-refinement outer loop; reductions stay
	// float64. Solutions meet the same Tol as Float64 solves but are not
	// bitwise equal to them.
	Float32
)

// String returns the name used in CLI flags and experiment tables.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Valid reports whether p is one of the defined precisions.
func (p Precision) Valid() bool { return p == Float64 || p == Float32 }

// precisionSpellings is the precision spelling table (ParsePrecision,
// PrecisionNames), canonical spellings before their aliases and the
// default spelling first.
var precisionSpellings = []enumSpelling[Precision]{
	{"float64", Float64},
	{"fp64", Float64},
	{"double", Float64},
	{"float32", Float32},
	{"fp32", Float32},
	{"single", Float32},
}

// PrecisionNames lists the spellings ParsePrecision accepts ("" selects
// the first entry). The returned slice is a copy.
func PrecisionNames() []string { return spellingNames(precisionSpellings) }

// ParsePrecision maps a precision name ("float64"/"fp64"/"double",
// "float32"/"fp32"/"single"; "" selects the float64 default) onto its enum
// value. Unknown names return an error matching errors.Is(err, ErrBadSpec).
func ParsePrecision(s string) (Precision, error) {
	return parseSpelling(precisionSpellings, s, "precision")
}

const (
	// mixedInnerTol is the inner solve's relative residual target on the
	// scaled correction system (whose RHS has unit norm by construction).
	// 1e−5 sits comfortably above the fp32 attainable-accuracy floor
	// (≈ κ·ε₃₂) while giving five orders of magnitude per outer pass, so
	// POP's 1e−13 needs three passes.
	mixedInnerTol = 1e-5
	// mixedMaxOuter bounds the refinement passes; hit only when the inner
	// solver stalls, and far beyond the ~3 passes a healthy solve needs.
	mixedMaxOuter = 40
	// mixedStallFactor: an outer pass that fails to shrink the float64
	// residual below this fraction of the previous one means fp32
	// corrections have stopped helping (inner breakdown or κ·ε₃₂ floor) —
	// the solve surrenders rather than looping to mixedMaxOuter.
	mixedStallFactor = 0.99
	// mixedInnerStall ends an inner pass after this many consecutive
	// convergence checks without a new best residual: the float32 iteration
	// has hit its attainable-accuracy floor (or, for pipelined CG, its
	// recurrence drift floor) above mixedInnerTol, and further sweeps are
	// wasted — the outer loop folds the partial correction in and restarts
	// from a fresh float64 residual. Driven by the reduced check norm, so
	// every rank exits the pass in lockstep.
	mixedInnerStall = 2
)

// solveMixedContext is the Precision == Float32 dispatch target: the
// float64 iterative-refinement outer loop around the float32 inner solver
// for method m. MethodCSI is treated as MethodPCSI (the dispatcher-level
// aliasing). Result.Iterations counts cumulative inner iterations — the
// number of stencil sweeps, directly comparable to a float64 solve's count
// — and Result.OuterIters the refinement passes. Options.MaxIters bounds
// that cumulative count exactly as it bounds a float64 solve: each pass
// receives the remaining budget, and an exhausted budget ends the solve at
// the next outer check. Cancellation is observed at outer-pass boundaries.
func (s *Session) solveMixedContext(ctx context.Context, m Method, b, x0 []float64) (Result, []float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Setup(); err != nil {
		return Result{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, nil, ctxSolveErr(ctx, m.String(), 0)
	}
	if m == MethodCSI {
		m = MethodPCSI
	}
	if m == MethodPCSI && s.Mu == 0 {
		// P-CSI's Chebyshev interval comes from the float64 Lanczos run —
		// the spectrum of M⁻¹A is a property of the operator, not of the
		// iteration precision.
		if _, _, _, err := s.EstimateEigenvalues(nil, 0); err != nil {
			return Result{}, nil, err
		}
	}
	o := s.Opts
	out := s.solveOut()
	res := Result{Solver: m.String(), Precond: o.Precond, Precision: Float32}
	if m == MethodPCSI {
		res.Nu, res.Mu, res.EigSteps = s.Nu, s.Mu, s.EigSteps
	}
	trace := &SolveTrace{Residuals: make([]ResidualPoint, 0, mixedMaxOuter)}
	cancelled := false // written by rank 0 only, read after Run

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.scatterMasked(r, "mx.x", x0)
		bs := s.scatterMasked(r, "mx.b", b)
		rr := s.field(r, "mx.r")
		b32 := s.field32(r, "mx.b32") // scaled inner RHS, fixed per pass
		ri := s.field32(r, "mx.ri")   // inner residual
		d32 := s.field32(r, "mx.d")   // inner correction
		// Reduction payload reused by every collective in this program —
		// hoisted so the steady-state loop allocates nothing.
		payload := make([]float64, 3)

		var bn2 float64
		for i := 0; i < nb; i++ {
			bn2 += rs.locs[i].MaskedDotInterior(bs[i], bs[i])
			r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
		}
		payload[0] = bn2
		bnorm := math.Sqrt(r.AllReduce(payload[:1])[0])
		if r.ID == 0 {
			res.BNorm = bnorm
		}
		if bnorm == 0 {
			for i, blk := range r.Blocks {
				for k := range xs[i] {
					xs[i][k] = 0
				}
				s.D.GatherInto(out, xs[i], blk)
			}
			if r.ID == 0 {
				res.Converged = true
			}
			return
		}
		target := o.Tol * bnorm

		converged := false
		prevRn := math.Inf(1)
		iters := 0
		outer := 0
		for outer < mixedMaxOuter {
			outer++
			// Outer pass: true float64 residual and its norm. The check
			// rides the norm reduction (cancellation protocol), so every
			// rank leaves at the same pass.
			r.Exchange(xs)
			var rnL float64
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				residual(loc, rr[i], bs[i], xs[i])
				rnL += loc.MaskedDotInterior(rr[i], rr[i])
				r.AddFlops(11 * int64(loc.InteriorLen()))
			}
			payload[0] = rnL
			payload[1] = cancelFlag(ctx)
			g := r.AllReduce(payload[:2])
			rn := math.Sqrt(g[0])
			if r.ID == 0 {
				res.RelResidual = rn / bnorm
			}
			traceResidual(r, trace, iters, rn/bnorm)
			if rn <= target {
				converged = true
				break
			}
			if g[1] != 0 { // some rank saw ctx done — all ranks stop here
				if r.ID == 0 {
					cancelled = true
				}
				break
			}
			// Stagnation guard: identical verdict on every rank (driven by
			// the reduced norm). A NaN rn also lands here via the negated
			// comparison, catching inner breakdown without a special case.
			if !(rn < prevRn*mixedStallFactor) {
				break
			}
			prevRn = rn

			// Remaining inner-iteration budget: Options.MaxIters bounds the
			// cumulative float32 sweep count, exactly like a float64 solve.
			// Same value on every rank, so the break stays lockstep.
			budget := o.MaxIters - iters
			if budget <= 0 {
				break
			}

			// Demote: inner RHS b32 = r/‖r‖ (unit norm), initial inner
			// residual ri = b32 (the correction starts from d = 0).
			inv := 1 / rn
			for i := 0; i < nb; i++ {
				loc32 := rs.locs32[i]
				scaleTo32(loc32, b32[i], rr[i], inv)
				copyInterior32(loc32, ri[i], b32[i])
				zeroAll32(d32[i])
				r.AddFlops(int64(loc32.InteriorLen()))
			}

			// Inner solve in float32: A·d = b32 to mixedInnerTol.
			switch m {
			case MethodChronGear:
				iters += s.innerChronGear32(r, rs, d32, ri, payload, budget)
			case MethodPCG:
				iters += s.innerPCG32(r, rs, d32, ri, payload, budget)
			case MethodPipeCG:
				iters += s.innerPipeCG32(r, rs, d32, ri, payload, budget)
			default: // MethodPCSI
				iters += s.innerPCSI32(r, rs, d32, ri, b32, payload, budget)
			}

			// Promote: x += ‖r‖·d in float64.
			for i := 0; i < nb; i++ {
				axpyFrom32(rs.locs32[i], xs[i], d32[i], rn)
				r.AddFlops(2 * int64(rs.locs32[i].InteriorLen()))
			}
		}
		if r.ID == 0 {
			res.Iterations = iters
			res.OuterIters = outer
			res.Converged = converged
		}
		for i, blk := range r.Blocks {
			s.D.GatherInto(out, xs[i], blk)
		}
	})
	res.Stats = st
	res.Trace = trace
	s.restoreLand(out, b)
	if cancelled {
		return res, out, ctxSolveErr(ctx, m.String(), res.Iterations)
	}
	return res, out, nil
}

// innerChronGear32 runs the Chronopoulos–Gear recurrence in float32 on the
// unit-norm correction system: the fused single-reduction iteration of the
// float64 solver (chrongear.go) minus the resilience machinery. d is the
// correction (zeroed by the caller), ri the inner residual (initialized to
// the scaled RHS). Returns the iteration count, capped at budget.
func (s *Session) innerChronGear32(r *comm.Rank, rs *rankState, d, ri [][]float32, payload []float64, budget int) int {
	o := s.Opts
	nb := len(r.Blocks)
	rp := s.field32(r, "mx.cg.rp")
	zz := s.field32(r, "mx.cg.z")
	ss := s.zeroField32(r, "mx.cg.s")
	pp := s.zeroField32(r, "mx.cg.p")

	rhoPrev, sigmaPrev := 1.0, 0.0
	bestRn, noImprove := math.Inf(1), 0
	k := 0
	for k < budget {
		k++
		check := k%o.CheckEvery == 0
		var rhoL, deltaL, rnL float64
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			n := int64(loc.InteriorLen())
			rs.pre32[i].Apply32(rp[i], ri[i])
			r.AddFlops(rs.pre[i].ApplyFlops())
			if check {
				rnL += loc.MaskedDotInterior(ri[i], ri[i])
				r.AddFlops(2 * n)
			}
		}
		r.Exchange32(rp)
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			n := int64(loc.InteriorLen())
			deltaL += loc.ApplyAndMaskedDot(zz[i], rp[i])
			r.AddFlops(9 * n)
			rhoL += loc.MaskedDotInterior(ri[i], rp[i])
			r.AddFlops(4 * n)
		}
		payload[0], payload[1] = rhoL, deltaL
		p := payload[:2]
		if check {
			payload[2] = rnL
			p = payload[:3]
		}
		g := r.AllReduce(p)
		rho, delta := g[0], g[1]
		if check {
			rn := math.Sqrt(g[2])
			if rn <= mixedInnerTol {
				break
			}
			if rn < bestRn {
				bestRn, noImprove = rn, 0
			} else if noImprove++; noImprove >= mixedInnerStall {
				break
			}
		}
		beta := rho / rhoPrev
		sigma := delta - beta*beta*sigmaPrev
		if sigma == 0 { // breakdown (fp32 floor) — outer stall guard reports
			break
		}
		alpha := rho / sigma
		rhoPrev, sigmaPrev = rho, sigma
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			xpay32(loc, ss[i], rp[i], beta)
			xpay32(loc, pp[i], zz[i], beta)
			axpy32(loc, d[i], ss[i], alpha)
			axpy32(loc, ri[i], pp[i], -alpha)
			r.AddFlops(4 * int64(loc.InteriorLen()))
		}
	}
	return k
}

// innerPCG32 runs classic two-reduction PCG in float32 on the correction
// system (the float64 solver of pcg.go minus cancellation, which the outer
// loop owns).
func (s *Session) innerPCG32(r *comm.Rank, rs *rankState, d, ri [][]float32, payload []float64, budget int) int {
	o := s.Opts
	nb := len(r.Blocks)
	rp := s.field32(r, "mx.pcg.rp")
	zz := s.field32(r, "mx.pcg.z")
	pp := s.zeroField32(r, "mx.pcg.p")

	rhoPrev := 0.0
	bestRn, noImprove := math.Inf(1), 0
	k := 0
	for k < budget {
		k++
		check := k%o.CheckEvery == 0
		var rhoL float64
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			rs.pre32[i].Apply32(rp[i], ri[i])
			r.AddFlops(rs.pre[i].ApplyFlops())
			rhoL += loc.MaskedDotInterior(ri[i], rp[i])
			r.AddFlops(2 * int64(loc.InteriorLen()))
		}
		payload[0] = rhoL
		rho := r.AllReduce(payload[:1])[0] // reduction 1 of 2
		if k == 1 {
			for i := 0; i < nb; i++ {
				copy(pp[i], rp[i])
			}
		} else {
			beta := rho / rhoPrev
			for i := 0; i < nb; i++ {
				xpay32(rs.locs32[i], pp[i], rp[i], beta)
				r.AddFlops(int64(rs.locs32[i].InteriorLen()))
			}
		}
		rhoPrev = rho
		r.Exchange32(pp)
		var deltaL, rnL float64
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			deltaL += loc.ApplyAndMaskedDot(zz[i], pp[i])
			r.AddFlops(11 * int64(loc.InteriorLen()))
			if check {
				rnL += loc.MaskedDotInterior(ri[i], ri[i])
				r.AddFlops(2 * int64(loc.InteriorLen()))
			}
		}
		payload[0] = deltaL
		p := payload[:1]
		if check {
			payload[1] = rnL
			p = payload[:2]
		}
		g := r.AllReduce(p) // reduction 2 of 2
		alpha := rho / g[0]
		if check {
			rn := math.Sqrt(g[1])
			if rn <= mixedInnerTol {
				break
			}
			if rn < bestRn {
				bestRn, noImprove = rn, 0
			} else if noImprove++; noImprove >= mixedInnerStall {
				break
			}
		}
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			axpy32(loc, d[i], pp[i], alpha)
			axpy32(loc, ri[i], zz[i], -alpha)
			r.AddFlops(2 * int64(loc.InteriorLen()))
		}
	}
	return k
}

// innerPipeCG32 runs the Ghysels–Vanroose pipelined CG in float32 on the
// correction system, keeping the reduction/compute overlap pricing
// (AllReduceOverlap) of the float64 solver in pipecg.go.
func (s *Session) innerPipeCG32(r *comm.Rank, rs *rankState, d, ri [][]float32, payload []float64, budget int) int {
	o := s.Opts
	nb := len(r.Blocks)
	uu := s.field32(r, "mx.pipe.u")
	ww := s.field32(r, "mx.pipe.w")
	mm := s.field32(r, "mx.pipe.m")
	nn := s.field32(r, "mx.pipe.n")
	zz := s.zeroField32(r, "mx.pipe.z")
	qq := s.zeroField32(r, "mx.pipe.q")
	ss := s.zeroField32(r, "mx.pipe.s")
	pp := s.zeroField32(r, "mx.pipe.p")

	// u₀ = M⁻¹r₀, w₀ = A·u₀.
	for i := 0; i < nb; i++ {
		rs.pre32[i].Apply32(uu[i], ri[i])
		r.AddFlops(rs.pre[i].ApplyFlops())
	}
	r.Exchange32(uu)
	for i := 0; i < nb; i++ {
		rs.locs32[i].Apply(ww[i], uu[i])
		r.AddFlops(9 * int64(rs.locs32[i].InteriorLen()))
	}

	gammaPrev, alphaPrev := 0.0, 0.0
	bestRn, noImprove := math.Inf(1), 0
	k := 0
	for k < budget {
		k++
		check := k%o.CheckEvery == 0
		var gL, dL, rnL float64
		var overlapFlops int64
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			n := int64(loc.InteriorLen())
			gL += loc.MaskedDotInterior(ri[i], uu[i])
			dL += loc.MaskedDotInterior(ww[i], uu[i])
			r.AddFlops(4 * n)
			if check {
				rnL += loc.MaskedDotInterior(ri[i], ri[i])
				r.AddFlops(2 * n)
			}
			overlapFlops += rs.pre[i].ApplyFlops() + 9*n
		}
		payload[0], payload[1] = gL, dL
		p := payload[:2]
		if check {
			payload[2] = rnL
			p = payload[:3]
		}
		g := r.AllReduceOverlap(p, overlapFlops)
		gamma, delta := g[0], g[1]
		var rn2 float64
		if check {
			rn2 = g[2]
		}
		for i := 0; i < nb; i++ {
			rs.pre32[i].Apply32(mm[i], ww[i])
		}
		r.Exchange32(mm)
		for i := 0; i < nb; i++ {
			rs.locs32[i].Apply(nn[i], mm[i])
		}
		if check {
			rn := math.Sqrt(rn2)
			if rn <= mixedInnerTol {
				break
			}
			if rn < bestRn {
				bestRn, noImprove = rn, 0
			} else if noImprove++; noImprove >= mixedInnerStall {
				break
			}
		}
		var beta, alpha float64
		if k == 1 {
			beta, alpha = 0, gamma/delta
		} else {
			beta = gamma / gammaPrev
			alpha = gamma / (delta - beta*gamma/alphaPrev)
		}
		gammaPrev, alphaPrev = gamma, alpha
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			xpay32(loc, zz[i], nn[i], beta)
			xpay32(loc, qq[i], mm[i], beta)
			xpay32(loc, ss[i], ww[i], beta)
			xpay32(loc, pp[i], uu[i], beta)
			axpy32(loc, d[i], pp[i], alpha)
			axpy32(loc, ri[i], ss[i], -alpha)
			axpy32(loc, uu[i], qq[i], -alpha)
			axpy32(loc, ww[i], zz[i], -alpha)
			r.AddFlops(8 * int64(loc.InteriorLen()))
		}
	}
	return k
}

// innerPCSI32 runs P-CSI (Algorithm 2) in float32 on the correction system
// with the session's float64 Chebyshev interval [ν, μ] — no reductions
// outside the checks, exactly like the float64 solver in pcsi.go but
// without its adaptive interval guards (the outer stall guard covers a
// mis-bracketed spectrum). b32 is the fixed scaled RHS the recomputed
// residual needs.
func (s *Session) innerPCSI32(r *comm.Rank, rs *rankState, d, ri, b32 [][]float32, payload []float64, budget int) int {
	o := s.Opts
	nb := len(r.Blocks)
	rp := s.field32(r, "mx.csi.rp")
	dx := s.zeroField32(r, "mx.csi.dx")

	nu, mu := s.Nu, s.Mu
	alpha := 2 / (mu - nu)
	beta := (mu + nu) / (mu - nu)
	gamma := beta / alpha
	inv4a2 := 1 / (4 * alpha * alpha)

	// Algorithm 2 initialization: Δd₀ = γ⁻¹M⁻¹r₀, d₁ = d₀ + Δd₀.
	for i := 0; i < nb; i++ {
		loc := rs.locs32[i]
		rs.pre32[i].Apply32(rp[i], ri[i])
		r.AddFlops(rs.pre[i].ApplyFlops())
		chebUpdate32(loc, dx[i], rp[i], 1/gamma, 0)
		axpy32(loc, d[i], dx[i], 1)
		r.AddFlops(3 * int64(loc.InteriorLen()))
	}
	r.Exchange32(d)
	for i := 0; i < nb; i++ {
		residual32(rs.locs32[i], ri[i], b32[i], d[i])
		r.AddFlops(9 * int64(rs.locs32[i].InteriorLen()))
	}

	omega := 2 / gamma
	bestRn, noImprove := math.Inf(1), 0
	k := 0
	for k < budget {
		k++
		omega = 1 / (gamma - inv4a2*omega)
		for i := 0; i < nb; i++ {
			loc := rs.locs32[i]
			rs.pre32[i].Apply32(rp[i], ri[i])
			r.AddFlops(rs.pre[i].ApplyFlops())
			chebUpdate32(loc, dx[i], rp[i], omega, gamma*omega-1)
			axpy32(loc, d[i], dx[i], 1)
			r.AddFlops(3 * int64(loc.InteriorLen()))
		}
		r.Exchange32(d) // the iteration's only communication
		for i := 0; i < nb; i++ {
			residual32(rs.locs32[i], ri[i], b32[i], d[i])
			r.AddFlops(9 * int64(rs.locs32[i].InteriorLen()))
		}
		if k%o.CheckEvery == 0 {
			var rnL float64
			for i := 0; i < nb; i++ {
				rnL += rs.locs32[i].MaskedDotInterior(ri[i], ri[i])
				r.AddFlops(2 * int64(rs.locs32[i].InteriorLen()))
			}
			payload[0] = rnL
			g := r.AllReduce(payload[:1])
			rn := math.Sqrt(g[0])
			if rn <= mixedInnerTol {
				break
			}
			if rn < bestRn {
				bestRn, noImprove = rn, 0
			} else if noImprove++; noImprove >= mixedInnerStall {
				break
			}
		}
	}
	return k
}
