package obs

import (
	"context"
	"sync/atomic"
)

// Request-scoped trace identity. A trace ID names one serve request; it is
// assigned at admission (or supplied by the client), carried through the
// serving layer on the request's context, stamped onto the session world
// before the solve, and from there onto every rank-level span the solve
// emits — so one request yields one correlated span tree spanning HTTP
// handler → session worker → per-rank solver phases.

// traceIDKey is the context key TraceID helpers use.
type traceIDKey struct{}

// nextTraceID is the process-wide allocator behind NewTraceID.
var nextTraceID atomic.Uint64

// NewTraceID returns a process-unique nonzero trace ID. IDs are a plain
// monotone counter — deterministic across runs of a deterministic workload,
// unlike random or time-derived IDs, which keeps traced golden runs
// reproducible.
func NewTraceID() uint64 { return nextTraceID.Add(1) }

// ContextWithTraceID returns ctx tagged with the trace ID. A zero id
// returns ctx unchanged.
func ContextWithTraceID(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFromContext extracts the trace ID carried by ctx (0 when absent).
func TraceIDFromContext(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(traceIDKey{}).(uint64)
	return id
}
