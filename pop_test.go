package pop

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestNewGridPresets(t *testing.T) {
	g, err := NewGrid(GridTest)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nx != 64 || g.Ny != 48 {
		t.Fatalf("test grid %dx%d", g.Nx, g.Ny)
	}
	if _, err := NewGrid("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestSolverFacadeEndToEnd(t *testing.T) {
	g, err := NewGrid(GridTest)
	if err != nil {
		t.Fatal(err)
	}
	op := AssembleOperator(g, 1920)
	// b = A·ones over ocean.
	ones := make([]float64, g.N())
	for k, m := range g.Mask {
		if m {
			ones[k] = 1
		}
	}
	b := make([]float64, g.N())
	op.Apply(b, ones)
	for k, m := range g.Mask {
		if !m {
			b[k] = 0
		}
	}

	for _, spec := range []SolverSpec{
		{Method: "chrongear", Precond: "diagonal", Cores: 12},
		{Method: "pcsi", Precond: "evp", Cores: 12, MachineName: "yellowstone"},
		{Method: "pcg", Precond: "blocklu"},
	} {
		s, err := NewSolver(g, spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		res, x, err := s.Solve(b, nil)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if !res.Converged {
			t.Fatalf("%+v did not converge", spec)
		}
		for k, m := range g.Mask {
			if m && math.Abs(x[k]-1) > 1e-8 {
				t.Fatalf("%+v: solution error at %d: %v", spec, k, x[k])
			}
		}
		if spec.MachineName != "" && res.Stats.MaxClock <= 0 {
			t.Fatalf("%+v: priced run has zero virtual time", spec)
		}
	}
}

func TestSolverValidation(t *testing.T) {
	g, _ := NewGrid(GridTest)
	if _, err := NewSolver(g, SolverSpec{Method: "magic"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := NewSolver(g, SolverSpec{Precond: "magic"}); err == nil {
		t.Fatal("unknown preconditioner accepted")
	}
	if _, err := NewSolver(g, SolverSpec{MachineName: "magic"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
	s, err := NewSolver(g, SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(make([]float64, 3), nil); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}

func TestCSIMethodMapsToUnpreconditioned(t *testing.T) {
	g, _ := NewGrid(GridTest)
	s, err := NewSolver(g, SolverSpec{Method: "csi"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Spec.Method != "pcsi" {
		t.Fatalf("csi should map onto pcsi, got %q", s.Spec.Method)
	}
}

func TestModelFacade(t *testing.T) {
	g, _ := NewGrid(GridTest)
	m, err := NewModel(ModelConfig{Grid: g, Solver: model.SolverChronGear})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"yellowstone", "edison", "ideal"} {
		m, err := MachineByName(name)
		if err != nil || m == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if m, err := MachineByName(""); err != nil || m != nil {
		t.Fatal("empty machine should be nil, nil")
	}
}

func TestExperimentNames(t *testing.T) {
	names := ExperimentNames()
	want := map[string]bool{"fig1": true, "fig8": true, "fig13": true, "tab1": true}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("registry missing expected experiments: %v", names)
	}
}
