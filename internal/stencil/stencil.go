// Package stencil assembles and applies the nine-point implicit free-surface
// operator that the POP barotropic mode solves every time step:
//
//	[−∇·H∇ + φ(τ)] η = ψ   (paper Eq. 1, sign-normalized to be SPD)
//
// The discretization follows the POP B-grid: η lives at T-points and the
// depth-weighted gradient is evaluated at the four surrounding corner
// (U-) points. Each wet corner contributes a 4×4 symmetric element that
// couples its four T-points, yielding the classic POP nine-point stencil in
// which the diagonal (corner-neighbour) couplings dominate and the N/S/E/W
// couplings are proportional to (1/dy² − 1/dx²) — an order of magnitude
// smaller on near-isotropic grids, exactly the property §4.3 of the paper
// exploits to halve the EVP preconditioner cost.
//
// Because the operator is symmetric, only four coefficient arrays are
// stored (POP's A0/AN/AE/ANE layout): the coupling between (i,j) and
// (i+1,j−1) is ANE(i,j−1), etc. Land rows are identity rows, and every
// coupling that touches a land point vanishes automatically because dry
// corners carry zero depth.
package stencil

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/linalg"
)

// Gravity is the gravitational acceleration used by the mass term (m/s²).
const Gravity = 9.806

// Operator is the assembled nine-point SPD operator on a global grid.
type Operator struct {
	// Nx and Ny are the grid's T-point dimensions.
	Nx, Ny int
	// Coefficient arrays, length Nx*Ny, POP layout:
	//   AC(i,j): diagonal;
	//   AN(i,j): coupling (i,j)↔(i,j+1);
	//   AE(i,j): coupling (i,j)↔(i+1,j);
	//   ANE(i,j): coupling (i,j)↔(i+1,j+1) and, read at (i,j−1),
	//             the anti-diagonal coupling (i,j)↔(i+1,j−1).
	AC, AN, AE, ANE []float64
	Mask            []bool // true = ocean (shared with the source grid)
	// Phi is the implicit free-surface mass coefficient folded into AC
	// (see PhiFromTimeStep).
	Phi float64
}

// PhiFromTimeStep returns the implicit free-surface mass coefficient
// φ(τ) = 1/(g·τ²) for barotropic time step τ seconds.
func PhiFromTimeStep(tau float64) float64 { return 1 / (Gravity * tau * tau) }

// Assemble builds the operator for grid g with mass coefficient phi (1/m).
// phi must be positive: it is what makes the masked system definite.
func Assemble(g *grid.Grid, phi float64) *Operator {
	if phi <= 0 {
		panic(fmt.Sprintf("stencil: non-positive mass coefficient %g", phi))
	}
	n := g.N()
	op := &Operator{
		Nx: g.Nx, Ny: g.Ny,
		AC:   make([]float64, n),
		AN:   make([]float64, n),
		AE:   make([]float64, n),
		ANE:  make([]float64, n),
		Mask: g.Mask,
		Phi:  phi,
	}
	// Mass term and land identity rows.
	for k := 0; k < n; k++ {
		if g.Mask[k] {
			op.AC[k] = phi * g.TAREA[k]
		} else {
			op.AC[k] = 1
		}
	}
	// Corner elements. Corner (i,j) is NE of T(i,j) and couples T-points
	// (i,j), (i+1,j), (i,j+1), (i+1,j+1). Element values per wet corner:
	//   diag        += w·(kx+ky)
	//   E-W, N-S... see package comment.
	for j := 0; j < g.Ny-1; j++ {
		for i := 0; i < g.Nx-1; i++ {
			k := g.Idx(i, j)
			h := g.HU[k]
			if h == 0 {
				continue // dry corner: no contribution
			}
			w := h * g.UAREA[k]
			dx, dy := g.DXU[k], g.DYU[k]
			kx := 1 / (4 * dx * dx)
			ky := 1 / (4 * dy * dy)
			diag := w * (kx + ky)
			ew := w * (ky - kx) // sign: coupling value added to AE
			ns := w * (kx - ky)
			di := -w * (kx + ky) // both diagonals of the element

			kE := g.Idx(i+1, j)
			kN := g.Idx(i, j+1)
			kNE := g.Idx(i+1, j+1)
			op.AC[k] += diag
			op.AC[kE] += diag
			op.AC[kN] += diag
			op.AC[kNE] += diag
			op.AE[k] += ew  // (i,j)↔(i+1,j)
			op.AE[kN] += ew // (i,j+1)↔(i+1,j+1)
			op.AN[k] += ns  // (i,j)↔(i,j+1)
			op.AN[kE] += ns // (i+1,j)↔(i+1,j+1)
			op.ANE[k] += di // (i,j)↔(i+1,j+1); the (i+1,j)↔(i,j+1)
			// anti-diagonal is the same value and is read back via the
			// ANE(i,j−1) convention in Apply.
		}
	}
	return op
}

// Diagonal returns the operator diagonal (aliasing nothing; a fresh slice).
func (op *Operator) Diagonal() []float64 {
	d := make([]float64, len(op.AC))
	copy(d, op.AC)
	return d
}

// Apply computes y = A·x on global (un-haloed) arrays of length Nx*Ny.
// Land points are identity rows: y = x there.
//
// Interior rows run over per-row slice windows of one common length so the
// compiler's prove pass drops the bounds checks from the nine-point inner
// loop; domain-border points keep the guarded scalar path (out-of-range
// couplings are zero by construction, so skipping them is exact).
func (op *Operator) Apply(y, x []float64) {
	nx, ny := op.Nx, op.Ny
	if len(x) != nx*ny || len(y) != nx*ny {
		panic("stencil: Apply dimension mismatch")
	}
	for j := 1; j < ny-1; j++ {
		op.applyBorderPoint(y, x, 0, j)
		if nx < 3 {
			if nx == 2 {
				op.applyBorderPoint(y, x, 1, j)
			}
			continue
		}
		lo := j*nx + 1
		n := nx - 2
		yr := y[lo:][:n]
		xc := x[lo:][:n]
		xn := x[lo+nx:][:n]
		xs := x[lo-nx:][:n]
		xe := x[lo+1:][:n]
		xw := x[lo-1:][:n]
		xne := x[lo+nx+1:][:n]
		xse := x[lo-nx+1:][:n]
		xnw := x[lo+nx-1:][:n]
		xsw := x[lo-nx-1:][:n]
		ac := op.AC[lo:][:n]
		an := op.AN[lo:][:n]
		ans := op.AN[lo-nx:][:n]
		ae := op.AE[lo:][:n]
		aw := op.AE[lo-1:][:n]
		ane := op.ANE[lo:][:n]
		anes := op.ANE[lo-nx:][:n]
		anew := op.ANE[lo-1:][:n]
		anesw := op.ANE[lo-nx-1:][:n]
		for i := range yr {
			yr[i] = ac[i]*xc[i] +
				an[i]*xn[i] + ans[i]*xs[i] +
				ae[i]*xe[i] + aw[i]*xw[i] +
				ane[i]*xne[i] + anes[i]*xse[i] +
				anew[i]*xnw[i] + anesw[i]*xsw[i]
		}
		op.applyBorderPoint(y, x, nx-1, j)
	}
	for i := 0; i < nx; i++ {
		op.applyBorderPoint(y, x, i, 0)
		if ny > 1 {
			op.applyBorderPoint(y, x, i, ny-1)
		}
	}
}

// applyBorderPoint evaluates one stencil row with neighbour guards — the
// slow path for points on the domain boundary.
func (op *Operator) applyBorderPoint(y, x []float64, i, j int) {
	nx, ny := op.Nx, op.Ny
	k := j*nx + i
	s := op.AC[k] * x[k]
	if j+1 < ny {
		s += op.AN[k] * x[k+nx]
	}
	if j > 0 {
		s += op.AN[k-nx] * x[k-nx]
	}
	if i+1 < nx {
		s += op.AE[k] * x[k+1]
	}
	if i > 0 {
		s += op.AE[k-1] * x[k-1]
	}
	if i+1 < nx && j+1 < ny {
		s += op.ANE[k] * x[k+nx+1]
	}
	if i+1 < nx && j > 0 {
		s += op.ANE[k-nx] * x[k-nx+1]
	}
	if i > 0 && j+1 < ny {
		s += op.ANE[k-1] * x[k+nx-1]
	}
	if i > 0 && j > 0 {
		s += op.ANE[k-nx-1] * x[k-nx-1]
	}
	y[k] = s
}

// Row returns the nine stencil coefficients of row (i,j) in the order
// [SW, S, SE, W, C, E, NW, N, NE]. Out-of-range couplings are zero.
func (op *Operator) Row(i, j int) [9]float64 {
	nx, ny := op.Nx, op.Ny
	k := j*nx + i
	var r [9]float64
	r[4] = op.AC[k]
	if i > 0 && j > 0 {
		r[0] = op.ANE[k-nx-1]
	}
	if j > 0 {
		r[1] = op.AN[k-nx]
	}
	if i+1 < nx && j > 0 {
		r[2] = op.ANE[k-nx]
	}
	if i > 0 {
		r[3] = op.AE[k-1]
	}
	if i+1 < nx {
		r[5] = op.AE[k]
	}
	if i > 0 && j+1 < ny {
		r[6] = op.ANE[k-1]
	}
	if j+1 < ny {
		r[7] = op.AN[k]
	}
	if i+1 < nx && j+1 < ny {
		r[8] = op.ANE[k]
	}
	return r
}

// Dense materializes the operator as a dense matrix — test/debug only;
// panics on grids above 64×64.
func (op *Operator) Dense() *linalg.Dense {
	n := op.Nx * op.Ny
	if n > 64*64 {
		panic("stencil: Dense is for small test grids only")
	}
	d := linalg.NewDense(n, n)
	offs := [9][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {0, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for j := 0; j < op.Ny; j++ {
		for i := 0; i < op.Nx; i++ {
			row := op.Row(i, j)
			for c, o := range offs {
				ii, jj := i+o[0], j+o[1]
				if row[c] == 0 || ii < 0 || ii >= op.Nx || jj < 0 || jj >= op.Ny {
					continue
				}
				d.Set(j*op.Nx+i, jj*op.Nx+ii, row[c])
			}
		}
	}
	return d
}

// MaskedDot returns Σ x[k]·y[k] over ocean points only — the masking
// operation the paper's global reductions perform to exclude land.
func (op *Operator) MaskedDot(x, y []float64) float64 {
	var s float64
	for k, m := range op.Mask {
		if m {
			s += x[k] * y[k]
		}
	}
	return s
}

// MaskedNorm2 returns the Euclidean norm of x over ocean points.
func (op *Operator) MaskedNorm2(x []float64) float64 {
	return math.Sqrt(op.MaskedDot(x, x))
}
