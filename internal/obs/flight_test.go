package obs_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestFlightRecorderRing: the ring keeps the newest records, returns them
// oldest first, and handles the partially-filled and wrapped regimes.
func TestFlightRecorderRing(t *testing.T) {
	f := obs.NewFlightRecorder(4, "")
	if got := f.Recent(); len(got) != 0 {
		t.Fatalf("fresh recorder: got %d records", len(got))
	}
	for i := 1; i <= 2; i++ {
		f.Note(obs.RequestRecord{TraceID: uint64(i)})
	}
	got := f.Recent()
	if len(got) != 2 || got[0].TraceID != 1 || got[1].TraceID != 2 {
		t.Fatalf("partial ring wrong: %+v", got)
	}
	for i := 3; i <= 7; i++ {
		f.Note(obs.RequestRecord{TraceID: uint64(i)})
	}
	got = f.Recent()
	if len(got) != 4 {
		t.Fatalf("wrapped ring: got %d records, want 4", len(got))
	}
	for i, rec := range got {
		if want := uint64(4 + i); rec.TraceID != want {
			t.Fatalf("wrapped ring order: slot %d has trace %d, want %d (all: %+v)",
				i, rec.TraceID, want, got)
		}
	}
}

// TestFlightDumpFileContents: a dump writes flight-NNN-<reason>.json holding
// the trigger reason, the offending request, its spans, the ring, and a
// metrics snapshot.
func TestFlightDumpFileContents(t *testing.T) {
	dir := t.TempDir()
	f := obs.NewFlightRecorder(8, dir)
	f.Note(obs.RequestRecord{TraceID: 1})
	bad := obs.RequestRecord{TraceID: 2, Error: "boom", TotalNS: 5e6}
	f.Note(bad)

	reg := obs.NewRegistry()
	reg.Counter("faults_total", "injected faults").Add(3)
	events := []obs.Event{{Rank: 0, Name: obs.EvReduce, Trace: 2, Iter: -1, Straggler: -1}}

	path, err := f.Dump("fault recovery!", bad, events, reg)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flight-001-fault_recovery_.json"); path != want {
		t.Errorf("dump path: got %q, want %q", path, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "fault recovery!" {
		t.Errorf("reason: %q", dump.Reason)
	}
	if dump.Offending.TraceID != 2 || dump.Offending.Error != "boom" {
		t.Errorf("offending record wrong: %+v", dump.Offending)
	}
	if len(dump.Events) != 1 || dump.Events[0].Trace != 2 {
		t.Errorf("events wrong: %+v", dump.Events)
	}
	if len(dump.Recent) != 2 || dump.Recent[0].TraceID != 1 {
		t.Errorf("recent ring wrong: %+v", dump.Recent)
	}
	if !strings.Contains(dump.Metrics, "faults_total 3") {
		t.Errorf("metrics snapshot missing counter:\n%s", dump.Metrics)
	}
	if f.Dumps() != 1 {
		t.Errorf("Dumps(): got %d, want 1", f.Dumps())
	}
}

// TestFlightDumpCap: after DefaultFlightDumps files, triggers still count
// but write nothing — an incident storm must not fill the disk.
func TestFlightDumpCap(t *testing.T) {
	dir := t.TempDir()
	f := obs.NewFlightRecorder(2, dir)
	for i := 0; i < obs.DefaultFlightDumps+5; i++ {
		path, err := f.Dump("slo_breach", obs.RequestRecord{}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i < obs.DefaultFlightDumps && path == "" {
			t.Fatalf("dump %d under the cap wrote no file", i)
		}
		if i >= obs.DefaultFlightDumps && path != "" {
			t.Fatalf("dump %d over the cap wrote %s", i, path)
		}
	}
	if got := f.Dumps(); got != int64(obs.DefaultFlightDumps+5) {
		t.Errorf("Dumps(): got %d, want %d", got, obs.DefaultFlightDumps+5)
	}
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != obs.DefaultFlightDumps {
		t.Errorf("files written: got %d, want %d", len(files), obs.DefaultFlightDumps)
	}
}

// TestFlightDumpUnderLoad exercises the recorder the way the serving layer
// does — many workers noting records while incidents dump concurrently —
// and relies on -race to catch unsynchronized access.
func TestFlightDumpUnderLoad(t *testing.T) {
	dir := t.TempDir()
	f := obs.NewFlightRecorder(32, dir)
	reg := obs.NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Note(obs.RequestRecord{TraceID: uint64(w*1000 + i)})
			}
		}(w)
	}
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := f.Dump("slo_breach", obs.RequestRecord{TraceID: 9}, nil, reg); err != nil {
					t.Errorf("dump under load: %v", err)
				}
				_ = f.Recent()
			}
		}()
	}
	wg.Wait()
	if got := f.Dumps(); got != 20 {
		t.Errorf("Dumps(): got %d, want 20", got)
	}
	recent := f.Recent()
	if len(recent) != 32 {
		t.Errorf("ring after load: got %d records, want 32", len(recent))
	}
}

// TestFlightNilSafe: a nil recorder is the documented disabled state.
func TestFlightNilSafe(t *testing.T) {
	var f *obs.FlightRecorder
	f.Note(obs.RequestRecord{})
	if f.Recent() != nil {
		t.Error("nil Recent() must be nil")
	}
	if f.Dumps() != 0 {
		t.Error("nil Dumps() must be 0")
	}
	if path, err := f.Dump("x", obs.RequestRecord{}, nil, nil); path != "" || err != nil {
		t.Errorf("nil Dump: %q, %v", path, err)
	}
}

// TestFlightRecorderInMemory: an empty dump dir keeps the recorder purely
// in-memory — triggers counted, no files attempted.
func TestFlightRecorderInMemory(t *testing.T) {
	f := obs.NewFlightRecorder(0, "")
	path, err := f.Dump("circuit_open", obs.RequestRecord{TraceID: 7}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if path != "" {
		t.Errorf("in-memory recorder wrote %s", path)
	}
	if f.Dumps() != 1 {
		t.Errorf("Dumps(): got %d, want 1", f.Dumps())
	}
}
