// Package perfmodel prices the virtual-rank runtime's event stream with
// machine models of the two systems the paper evaluates on: Yellowstone
// (NCAR; 2.6 GHz Sandy Bridge, FDR InfiniBand) and Edison (NERSC; 2.4 GHz
// Ivy Bridge, Aries Dragonfly).
//
// The model follows the paper's own cost analysis (§2.2): computation is
// θ seconds per flop, a point-to-point message costs α + β·bytes, and a
// p-rank allreduce costs ⌈log₂p⌉·α_r for the binomial tree. On top of the
// deterministic terms the model draws two kinds of reproducible
// pseudo-random noise:
//
//   - per-rank OS jitter on compute phases (a small multiplicative term
//     plus rare interruption spikes). The runtime's max-clock reduction
//     semantics turn the *maximum* jitter across ranks into reduction wait
//     time, reproducing the noise sensitivity the paper cites (Ferreira et
//     al.) — solvers with fewer global reductions feel less of it.
//
//   - per-event network contention on reductions, with heavy-tailed draws
//     whose mean grows like √p (the expected maximum of p heavy-tailed
//     per-link delays). Edison's Dragonfly shows much larger contention
//     variability than Yellowstone (§5.3), which is why the paper reports
//     the average of the best three ChronGear runs there.
//
// All draws are hash-based functions of (seed, rank, sequence number), so
// simulated times are bitwise reproducible and independent of goroutine
// scheduling.
package perfmodel

import (
	"fmt"
	"math"
)

// Machine is a priced machine model; it implements comm.CostModel.
type Machine struct {
	Name string

	Theta float64 // seconds per floating-point operation (effective)
	Alpha float64 // point-to-point latency (s)
	Beta  float64 // transfer time per byte (s/B)

	ReduceAlpha float64 // per-tree-stage latency of an allreduce (s)

	JitterFrac float64 // multiplicative OS jitter amplitude on compute
	SpikeRate  float64 // OS interruption rate (events per second of compute)
	SpikeMean  float64 // mean OS interruption length (s)

	ContentionMean float64 // mean per-reduction contention at p=1 scale (s·√p)
	ContentionTail float64 // probability of a 5× heavy-tail contention draw

	Seed uint64
}

// Yellowstone returns the model of NCAR's Yellowstone used for the paper's
// §5.1–5.2 experiments.
func Yellowstone() *Machine {
	return &Machine{
		Name:           "yellowstone",
		Theta:          1.0e-9,
		Alpha:          1.5e-6,
		Beta:           6.7e-10,
		ReduceAlpha:    2.0e-6,
		JitterFrac:     0.02,
		SpikeRate:      20,
		SpikeMean:      50e-6,
		ContentionMean: 0.8e-6,
		ContentionTail: 0.05,
		Seed:           0x59657377, // deterministic, machine-specific
	}
}

// Edison returns the model of NERSC's Edison used in §5.3: slightly faster
// cores, lower base latency, but much larger network-contention noise on
// global reductions (Dragonfly job placement, Wang et al.).
func Edison() *Machine {
	return &Machine{
		Name:           "edison",
		Theta:          0.9e-9,
		Alpha:          1.2e-6,
		Beta:           5.0e-10,
		ReduceAlpha:    1.8e-6,
		JitterFrac:     0.02,
		SpikeRate:      20,
		SpikeMean:      50e-6,
		ContentionMean: 2.6e-6,
		ContentionTail: 0.25,
		Seed:           0x45646973,
	}
}

// ByName returns the machine model for a name: "yellowstone", "edison",
// "ideal", or "" (nil: zero-cost, numerics only).
func ByName(name string) (*Machine, error) {
	switch name {
	case "yellowstone":
		return Yellowstone(), nil
	case "edison":
		return Edison(), nil
	case "ideal":
		return Ideal(), nil
	case "":
		return nil, nil
	default:
		return nil, fmt.Errorf("perfmodel: unknown machine %q", name)
	}
}

// Ideal returns a noise-free machine with Yellowstone's deterministic
// parameters — useful for isolating algorithmic effects in ablations.
func Ideal() *Machine {
	m := Yellowstone()
	m.Name = "ideal"
	m.JitterFrac = 0
	m.SpikeRate = 0
	m.ContentionMean = 0
	m.ContentionTail = 0
	return m
}

// WithSeed returns a copy of m with a different noise seed (for run-to-run
// variability studies such as the paper's best-of-three Edison averages).
func (m *Machine) WithSeed(seed uint64) *Machine {
	c := *m
	c.Seed = m.Seed ^ (seed+1)*0x9E3779B97F4A7C15
	return &c
}

// FlopTime implements comm.CostModel: n flops plus deterministic OS jitter.
func (m *Machine) FlopTime(n int64, rank int, seq int64) float64 {
	base := float64(n) * m.Theta
	if m.JitterFrac == 0 && m.SpikeRate == 0 {
		return base
	}
	h := hash3(m.Seed, uint64(rank)+1, uint64(seq))
	u1 := toUnit(h)
	t := base * (1 + m.JitterFrac*(2*u1-1))
	if m.SpikeRate > 0 {
		// Probability of an OS interruption during this compute phase.
		pHit := base * m.SpikeRate
		u2 := toUnit(splitmix64(h))
		if u2 < pHit {
			u3 := toUnit(splitmix64(h ^ 0xD1B54A32D192ED03))
			t += -m.SpikeMean * math.Log(1-u3*0.999999)
		}
	}
	return t
}

// P2PTime implements comm.CostModel: α + β·bytes.
func (m *Machine) P2PTime(bytes int64) float64 {
	return m.Alpha + m.Beta*float64(bytes)
}

// ReduceTime implements comm.CostModel: binomial-tree latency plus
// heavy-tailed contention whose scale grows like √p.
func (m *Machine) ReduceTime(p int, seq int64) float64 {
	t := float64(log2Ceil(p)) * m.ReduceAlpha
	if m.ContentionMean > 0 && p > 1 {
		mean := m.ContentionMean * math.Sqrt(float64(p))
		h := hash3(m.Seed^0xA076D1F3, uint64(p), uint64(seq))
		u1 := toUnit(h)
		draw := -mean * math.Log(1-u1*0.999999)
		if toUnit(splitmix64(h)) < m.ContentionTail {
			draw *= 5
		}
		t += draw
	}
	return t
}

// log2Ceil returns ⌈log₂ p⌉ for p ≥ 1.
func log2Ceil(p int) int {
	s := 0
	for (1 << s) < p {
		s++
	}
	return s
}

// splitmix64 is the SplitMix64 finalizer — a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func hash3(a, b, c uint64) uint64 {
	return splitmix64(splitmix64(splitmix64(a)^b) ^ c)
}

// toUnit maps a 64-bit hash to [0, 1).
func toUnit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
