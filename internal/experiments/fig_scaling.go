package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stencil"
)

// percentFigure builds the Fig. 1 / Fig. 9 style table: the share of total
// POP execution time spent in the barotropic solver vs the baroclinic mode
// at each core count, for one solver configuration.
func (c *Config) percentFigure(title string, sc SolverConfig) (*Table, error) {
	ms, err := c.Sweep("0.1deg")
	if err != nil {
		return nil, err
	}
	dt := c.DtCount("0.1deg")
	t := &Table{
		Title:  title,
		Header: []string{"cores", "barotropic_s/day", "baroclinic_s/day", "barotropic_%", "baroclinic_%"},
	}
	for _, cores := range coresAxis(ms) {
		m := find(ms, sc, cores)
		if m == nil {
			continue
		}
		_, baroStep, err := c.BaroclinicStepTime("0.1deg", cores)
		if err != nil {
			return nil, err
		}
		bt := m.DayTime(dt)
		bc := baroStep * float64(dt)
		total := bt + bc
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m.Cores),
			fmt.Sprintf("%.2f", bt),
			fmt.Sprintf("%.2f", bc),
			fmt.Sprintf("%.1f", 100*bt/total),
			fmt.Sprintf("%.1f", 100*bc/total),
		})
	}
	return t, nil
}

// Fig01 is the paper's Figure 1: percentage of 0.1° POP execution time in
// the barotropic solver (diagonal-preconditioned ChronGear) vs the
// baroclinic mode, growing from ~5% at 470 cores to ~50% at 16,875.
func (c *Config) Fig01() (*Table, error) {
	return c.percentFigure("Fig 1: % of 0.1deg POP time, ChronGear+diagonal",
		SolverConfig{"chrongear", core.PrecondDiagonal})
}

// Fig09 is Figure 9: the same percentages with P-CSI + block-EVP, dropping
// the barotropic share to ~16% at scale.
func (c *Config) Fig09() (*Table, error) {
	return c.percentFigure("Fig 9: % of 0.1deg POP time, P-CSI+EVP",
		SolverConfig{"pcsi", core.PrecondEVP})
}

// Fig02 is Figure 2: per-day global-reduction and halo-update times of the
// diagonal ChronGear solver on the 0.1° grid — the communication bottleneck
// evidence.
func (c *Config) Fig02() (*Table, error) {
	ms, err := c.Sweep("0.1deg")
	if err != nil {
		return nil, err
	}
	sc := SolverConfig{"chrongear", core.PrecondDiagonal}
	dt := float64(c.DtCount("0.1deg"))
	t := &Table{
		Title:  "Fig 2: ChronGear+diagonal component times, 0.1deg, one sim day",
		Header: []string{"cores", "global_reduction_s", "halo_update_s", "computation_s"},
	}
	for _, cores := range coresAxis(ms) {
		m := find(ms, sc, cores)
		if m == nil {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m.Cores),
			fmt.Sprintf("%.2f", m.ReduceTime*dt),
			fmt.Sprintf("%.2f", m.HaloTime*dt),
			fmt.Sprintf("%.2f", m.CompTime*dt),
		})
	}
	return t, nil
}

// scalingFigure renders a Fig. 7 / Fig. 8-left style table: barotropic
// seconds per simulated day for all four configurations across cores.
func (c *Config) scalingFigure(title, res string) (*Table, error) {
	ms, err := c.Sweep(res)
	if err != nil {
		return nil, err
	}
	dt := c.DtCount(res)
	t := &Table{Title: title,
		Header: []string{"cores", "cg+diag_s/day", "cg+evp_s/day", "pcsi+diag_s/day", "pcsi+evp_s/day"}}
	for _, cores := range coresAxis(ms) {
		row := []string{fmt.Sprint(cores)}
		for _, sc := range PaperConfigs {
			m := find(ms, sc, cores)
			row = append(row, fmt.Sprintf("%.3f", m.DayTime(dt)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig07 is Figure 7: 1° barotropic mode execution times per simulated day.
func (c *Config) Fig07() (*Table, error) {
	return c.scalingFigure("Fig 7: barotropic s/day, 1deg, "+c.Machine.Name, "1deg")
}

// Fig08 is Figure 8: 0.1° barotropic times (left) and core simulation rates
// in simulated years per wall-clock day (right).
func (c *Config) Fig08() (*Table, *Table, error) {
	left, err := c.scalingFigure("Fig 8 (left): barotropic s/day, 0.1deg, "+c.Machine.Name, "0.1deg")
	if err != nil {
		return nil, nil, err
	}
	ms, err := c.Sweep("0.1deg")
	if err != nil {
		return nil, nil, err
	}
	dt := c.DtCount("0.1deg")
	right := &Table{
		Title:  "Fig 8 (right): core simulation rate (sim years / wall day), 0.1deg, " + c.Machine.Name,
		Header: []string{"cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"},
	}
	for _, cores := range coresAxis(ms) {
		_, baroStep, err := c.BaroclinicStepTime("0.1deg", cores)
		if err != nil {
			return nil, nil, err
		}
		row := []string{fmt.Sprint(cores)}
		for _, sc := range PaperConfigs {
			m := find(ms, sc, cores)
			dayCost := m.DayTime(dt) + baroStep*float64(dt)
			years := 86400 / (365 * dayCost)
			row = append(row, fmt.Sprintf("%.2f", years))
		}
		right.Rows = append(right.Rows, row)
	}
	return left, right, nil
}

// Fig10 is Figure 10: per-day global-reduction (left) and boundary-update
// (right) times for all four 0.1° solver configurations.
func (c *Config) Fig10() (*Table, *Table, error) {
	ms, err := c.Sweep("0.1deg")
	if err != nil {
		return nil, nil, err
	}
	dt := float64(c.DtCount("0.1deg"))
	mk := func(title string, pick func(*Measurement) float64) *Table {
		t := &Table{Title: title,
			Header: []string{"cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"}}
		for _, cores := range coresAxis(ms) {
			row := []string{fmt.Sprint(cores)}
			for _, sc := range PaperConfigs {
				row = append(row, fmt.Sprintf("%.3f", pick(find(ms, sc, cores))*dt))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	left := mk("Fig 10 (left): global reduction s/day, 0.1deg, "+c.Machine.Name,
		func(m *Measurement) float64 { return m.ReduceTime })
	right := mk("Fig 10 (right): boundary update s/day, 0.1deg, "+c.Machine.Name,
		func(m *Measurement) float64 { return m.HaloTime })
	return left, right, nil
}

// Tab01 is Table 1: percent improvement of *total* 1° POP time over
// diagonal ChronGear for the three new configurations.
func (c *Config) Tab01() (*Table, error) {
	ms, err := c.Sweep("1deg")
	if err != nil {
		return nil, err
	}
	dt := c.DtCount("1deg")
	base := SolverConfig{"chrongear", core.PrecondDiagonal}
	newConfigs := []SolverConfig{
		{"chrongear", core.PrecondEVP},
		{"pcsi", core.PrecondDiagonal},
		{"pcsi", core.PrecondEVP},
	}
	t := &Table{
		Title:  "Table 1: % improvement of total 1deg POP time vs ChronGear+diagonal",
		Header: []string{"cores", "ChronGear+EVP", "P-CSI+Diagonal", "P-CSI+EVP"},
	}
	for _, cores := range coresAxis(ms) {
		_, baroStep, err := c.BaroclinicStepTime("1deg", cores)
		if err != nil {
			return nil, err
		}
		baroDay := baroStep * float64(dt)
		baseTotal := find(ms, base, cores).DayTime(dt) + baroDay
		row := []string{fmt.Sprint(cores)}
		for _, sc := range newConfigs {
			total := find(ms, sc, cores).DayTime(dt) + baroDay
			row = append(row, fmt.Sprintf("%.1f%%", 100*(baseTotal-total)/baseTotal))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig11 is Figure 11: the Fig. 8 pair measured on the Edison machine model.
// Because Edison's Dragonfly contention makes ChronGear timings vary run to
// run, ChronGear entries are the average of the best three of `seeds`
// random-seeded runs (§5.3); P-CSI barely feels the noise and uses one run.
// The caller usually constructs the receiver with perfmodel.Edison().
func (c *Config) Fig11(seeds int) (*Table, *Table, error) {
	if seeds < 3 {
		seeds = 3
	}
	// ChronGear re-priced over seeds: rerun the sweep with reseeded
	// machines and replace ChronGear rows by avg-of-best-3.
	left, right, err := c.Fig08()
	if err != nil {
		return nil, nil, err
	}
	left.Title = "Fig 11 (left): barotropic s/day, 0.1deg, " + c.Machine.Name + " (ChronGear avg of best 3)"
	right.Title = "Fig 11 (right): core simulation rate, 0.1deg, " + c.Machine.Name

	ms, err := c.Sweep("0.1deg")
	if err != nil {
		return nil, nil, err
	}
	dt := c.DtCount("0.1deg")
	// Additional seeded reruns for the two ChronGear configurations only
	// (the numerics repeat identically; only the priced contention noise
	// differs, which is the §5.3 observation being reproduced).
	g := c.gridFor("0.1deg")
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(c.tauFor("0.1deg")))
	b := syntheticRHS(g, op)
	axis := coresAxis(ms)
	for ri, cores := range axis {
		// Contention variability only matters at scale; rerun seeds for the
		// three largest core counts (elsewhere one run is representative).
		if ri < len(axis)-3 {
			continue
		}
		for ci, sc := range PaperConfigs {
			if sc.Solver != "chrongear" {
				continue
			}
			times := []float64{find(ms, sc, cores).DayTime(dt)}
			for s := 1; s < seeds; s++ {
				m, err := c.measureOn(c.Machine.WithSeed(uint64(s)), "0.1deg", g, op, b, cores, sc)
				if err != nil {
					return nil, nil, err
				}
				times = append(times, m.DayTime(dt))
			}
			left.Rows[ri][ci+1] = fmt.Sprintf("%.3f", avgBest3(times))
		}
	}
	return left, right, nil
}

func avgBest3(times []float64) float64 {
	// insertion-sort the small slice ascending
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	n := min(3, len(times))
	var s float64
	for _, v := range times[:n] {
		s += v
	}
	return s / float64(n)
}
