package grid

import (
	"math"
	"sort"
)

// EarthRadius is the spherical Earth radius used for all metric terms (m).
const EarthRadius = 6.371e6

// Spec describes a synthetic grid to generate. The zero value is not usable;
// start from one of the presets or fill every field.
type Spec struct {
	// Name labels the generated grid.
	Name string
	// Nx and Ny are the T-point dimensions.
	Nx, Ny int

	LatMin, LatMax float64 // latitude extent of T-point rows (degrees)
	MinCosLat      float64 // clamp on cos(lat) for zonal spacing (displaced-pole stand-in)

	OceanFraction float64 // target fraction of ocean T-points (calibrated exactly)
	MaxDepth      float64 // abyssal plain depth (m)
	MinDepth      float64 // minimum wet depth after shelf shaping (m)

	Seed int64 // continent/bathymetry noise seed
}

// Generate builds the synthetic grid described by s. Generation is fully
// deterministic in s. The continental configuration is defined in continuous
// (lon, lat) space, so two Specs that differ only in resolution produce the
// same geography.
func Generate(s Spec) *Grid {
	g := &Grid{
		Name: s.Name,
		Nx:   s.Nx, Ny: s.Ny,
		Mask:  make([]bool, s.Nx*s.Ny),
		HT:    make([]float64, s.Nx*s.Ny),
		TAREA: make([]float64, s.Nx*s.Ny),
		TLat:  make([]float64, s.Nx*s.Ny),
		TLon:  make([]float64, s.Nx*s.Ny),
		HU:    make([]float64, s.Nx*s.Ny),
		DXU:   make([]float64, s.Nx*s.Ny),
		DYU:   make([]float64, s.Nx*s.Ny),
		UAREA: make([]float64, s.Nx*s.Ny),
	}

	dLon := 360.0 / float64(s.Nx)
	dLat := (s.LatMax - s.LatMin) / float64(s.Ny)
	dyM := EarthRadius * dLat * math.Pi / 180 // meridional spacing (uniform)

	land := newLandscape(s.Seed)

	// First pass: geography and "landness" score per T-point.
	score := make([]float64, g.N())
	for j := 0; j < s.Ny; j++ {
		lat := s.LatMin + (float64(j)+0.5)*dLat
		for i := 0; i < s.Nx; i++ {
			lon := (float64(i) + 0.5) * dLon
			k := g.Idx(i, j)
			g.TLat[k], g.TLon[k] = lat, lon
			score[k] = land.landness(lon, lat)
		}
	}

	// Calibrate the land threshold so the ocean fraction matches the target
	// exactly (up to one grid point): sort a copy of the scores and take the
	// quantile.
	sorted := append([]float64(nil), score...)
	sort.Float64s(sorted)
	cut := int(s.OceanFraction * float64(len(sorted)))
	if cut >= len(sorted) {
		cut = len(sorted) - 1
	}
	threshold := sorted[cut]

	// Second pass: mask, bathymetry, metrics.
	for j := 0; j < s.Ny; j++ {
		lat := s.LatMin + (float64(j)+0.5)*dLat
		cosLat := math.Cos(lat * math.Pi / 180)
		if cosLat < s.MinCosLat {
			cosLat = s.MinCosLat
		}
		dxM := EarthRadius * dLon * math.Pi / 180 * cosLat
		for i := 0; i < s.Nx; i++ {
			k := g.Idx(i, j)
			g.TAREA[k] = dxM * dyM
			// Corner metrics: spacing halfway between this row and the next.
			latU := lat + 0.5*dLat
			cosU := math.Cos(latU * math.Pi / 180)
			if cosU < s.MinCosLat {
				cosU = s.MinCosLat
			}
			g.DXU[k] = EarthRadius * dLon * math.Pi / 180 * cosU
			g.DYU[k] = dyM

			if score[k] < threshold {
				g.Mask[k] = true
				// Depth: deep where far below the land threshold, shoaling
				// toward coasts, with fractal roughness.
				rel := (threshold - score[k]) / (threshold + 1.5) // 0 at coast → ~1 in abyss
				if rel > 1 {
					rel = 1
				}
				shape := math.Sqrt(rel) // steep shelf break
				depth := s.MinDepth + (s.MaxDepth-s.MinDepth)*shape*(1+0.15*land.rough.at(lon(i, dLon), lat))
				if depth < s.MinDepth {
					depth = s.MinDepth
				}
				g.HT[k] = depth
			}
		}
	}
	g.deriveCorners()
	return g
}

func lon(i int, dLon float64) float64 { return (float64(i) + 0.5) * dLon }

// landscape produces the continental configuration: a deterministic blend of
// hand-shaped land masses (polar caps, two meridional continents, an
// east-west supercontinent band) and fractal noise for islands and ragged
// coastlines, with carved straits guaranteeing narrow passages like the
// paper's Bering Strait example.
type landscape struct {
	coast *fractalNoise // coastline / island noise
	rough *fractalNoise // bathymetry roughness
}

func newLandscape(seed int64) *landscape {
	return &landscape{
		coast: newFractalNoise(seed, 24, 5),
		rough: newFractalNoise(seed+1, 12, 4),
	}
}

// landness returns a score that increases where land should be; the caller
// thresholds it at the calibrated quantile. It is smooth in (lon, lat).
func (l *landscape) landness(lonDeg, latDeg float64) float64 {
	s := 0.9 * l.coast.at(lonDeg, latDeg)

	// Southern polar cap (Antarctica stand-in).
	s += bump((-latDeg-68)/8) * 3

	// Northern land ring with gaps (Eurasia/North-America stand-in).
	s += bump((latDeg-74)/8) * 2.2

	// Two meridional continents with latitude-dependent drift.
	c1 := 80 + 25*math.Sin(latDeg*math.Pi/180*1.3)
	c2 := 250 + 18*math.Cos(latDeg*math.Pi/180*0.9)
	s += ridge(angDist(lonDeg, c1)/24) * 2 * bump((latDeg+5)/55)
	s += ridge(angDist(lonDeg, c2)/30) * 2 * bump((latDeg-10)/50)

	// Equatorial archipelago (maritime-continent stand-in).
	s += ridge(angDist(lonDeg, 150)/25) * bump(latDeg/12) * 1.1

	// Carved straits: narrow channels kept open through the land masses.
	// A Bering-like strait through the northern ring...
	s -= channel(angDist(lonDeg, 190)/2.2) * bump((latDeg-72)/10) * 4
	// ...a Drake-like passage south of continent 1...
	s -= channel((latDeg+62)/2.5) * ridge(angDist(lonDeg, c1)/28) * 4
	// ...and a Gibraltar-like gap in continent 2.
	s -= channel((latDeg-35)/1.8) * ridge(angDist(lonDeg, c2)/32) * 4

	return s
}

// bump is a smooth plateau: ≈1 for x ≫ 0, ≈0 for x ≪ 0.
func bump(x float64) float64 { return 0.5 * (1 + math.Tanh(x)) }

// ridge is a smooth even peak: 1 at x=0 decaying to 0.
func ridge(x float64) float64 { return math.Exp(-x * x) }

// channel is a narrow even notch used to carve straits.
func channel(x float64) float64 { return math.Exp(-x * x) }

// angDist returns the absolute angular distance between two longitudes in
// degrees, in [0, 180].
func angDist(a, b float64) float64 {
	d := math.Mod(a-b, 360)
	if d < 0 {
		d += 360
	}
	if d > 180 {
		d = 360 - d
	}
	return d
}
