package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// buildTracks fabricates two rank tracks whose virtual clocks restart at
// zero across two run segments — the exporter must still emit monotone
// timestamps per track.
func buildTracks() []obs.Track {
	mk := func(rank int) obs.Track {
		var evs []obs.Event
		for run := 0; run < 2; run++ {
			// Aux carries the worker shard; rank 0 on shard 0 exercises the
			// unconditional shard arg (zero must still be exported).
			evs = append(evs, obs.Event{Rank: rank, Name: obs.EvRunBegin, Point: true,
				Value: 2, Aux: float64(rank), Iter: -1, Straggler: -1, Trace: uint64(run + 1)})
			t := 0.0 // virtual clock restarts every run
			for i := 0; i < 3; i++ {
				evs = append(evs,
					obs.Event{Rank: rank, Name: obs.EvCompute, T0: t, T1: t + 1e-4,
						Value: 100, Iter: -1, Straggler: -1, Trace: uint64(run + 1)},
					obs.Event{Rank: rank, Name: obs.EvReduce, T0: t + 1e-4, T1: t + 2e-4,
						Value: 2, Iter: -1, Straggler: rank % 2, Wait: 3e-5, Trace: uint64(run + 1)})
				t += 2e-4
			}
		}
		return obs.Track{Process: "session 0 test", PID: 1,
			Thread: "rank", TID: rank, Events: evs}
	}
	return []obs.Track{mk(0), mk(1)}
}

func sampleRequests() []obs.RequestRecord {
	return []obs.RequestRecord{
		{TraceID: 1, Key: "test/pcsi/evp", Session: 0, StartUnixNS: 1_000_000,
			AdmitNS: 1000, QueueNS: 2000, BatchWaitNS: 3000, SolveNS: 600_000,
			TotalNS: 610_000, Iterations: 40, Converged: true, Ranks: 2,
			VCompMean: 4e-4, VHaloMean: 1e-4, VReduceMean: 5e-5, VClockMax: 6e-4},
		{TraceID: 2, Key: "test/pcsi/evp", Session: 0, StartUnixNS: 2_000_000,
			AdmitNS: 1000, QueueNS: 0, BatchWaitNS: 0, SolveNS: 500_000,
			TotalNS: 502_000, Iterations: 40, Converged: false,
			Error: "serve: not converged", Ranks: 2},
	}
}

// TestPerfettoRoundTrip: the export is valid JSON, timestamps are monotone
// non-decreasing per (pid, tid) track despite virtual-clock restarts, and
// request records plus the drop count survive a write→read cycle intact.
func TestPerfettoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, buildTracks(), sampleRequests(), 7); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%.400s", buf.String())
	}

	pt, err := obs.ReadPerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Dropped != 7 {
		t.Errorf("dropped: got %d, want 7", pt.Dropped)
	}
	if len(pt.Requests) != 2 {
		t.Fatalf("requests: got %d, want 2", len(pt.Requests))
	}
	if got, want := pt.Requests[0], sampleRequests()[0]; got != want {
		t.Errorf("request record did not round-trip:\ngot  %+v\nwant %+v", got, want)
	}
	if pt.ProcessNames[1] != "session 0 test" {
		t.Errorf("process name lost: %q", pt.ProcessNames[1])
	}
	if pt.ThreadNames[1][0] != "rank" {
		t.Errorf("thread name lost: %q", pt.ThreadNames[1][0])
	}

	// Monotonicity per track: ts (start) must never decrease in file order.
	type trackID struct{ pid, tid int }
	last := map[trackID]float64{}
	spans := 0
	for _, e := range pt.Events {
		k := trackID{e.PID, e.TID}
		if prev, ok := last[k]; ok && e.Ts < prev-1e-9 {
			t.Fatalf("track %v: ts %g < previous %g (%s)", k, e.Ts, prev, e.Name)
		}
		last[k] = e.Ts
		if e.Ph == "X" {
			spans++
			if e.Dur < 0 {
				t.Fatalf("negative duration on %s", e.Name)
			}
		}
	}
	// 2 tracks × 2 runs × 6 span events, plus 2 requests × 5 serve spans.
	if want := 2*2*6 + 2*5; spans != want {
		t.Errorf("span count: got %d, want %d", spans, want)
	}

	// Reduce spans keep their straggler attribution through the round-trip.
	found := false
	for _, e := range pt.Events {
		if e.Name == obs.EvReduce && e.TID == 1 {
			if s, ok := e.Args["straggler"]; !ok || int(s) != 1 {
				t.Fatalf("reduce span lost straggler arg: %+v", e.Args)
			}
			if w := e.Args["wait_us"]; math.Abs(w-30) > 1e-9 {
				t.Fatalf("reduce span wait: got %gµs, want 30µs", w)
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("no reduce span found on rank 1")
	}
}

// TestPerfettoEmptyExport: an export with no tracks and no requests is
// still a valid, parseable trace file.
func TestPerfettoEmptyExport(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export invalid JSON: %s", buf.String())
	}
	pt, err := obs.ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Events) != 0 || len(pt.Requests) != 0 {
		t.Errorf("empty export parsed non-empty: %d events, %d requests",
			len(pt.Events), len(pt.Requests))
	}
}

// TestAttributeRecord: with virtual stats the solve wall time splits
// exactly into compute/halo/reduce/slack, so the seven phases sum to the
// serve phases plus the solve — and coverage is Sum/Total.
func TestAttributeRecord(t *testing.T) {
	rec := sampleRequests()[0]
	a := obs.AttributeRecord(rec)
	wantSum := float64(rec.AdmitNS+rec.QueueNS+rec.BatchWaitNS+rec.SolveNS) / 1e9
	if math.Abs(a.Sum()-wantSum) > 1e-12 {
		t.Errorf("Sum: got %g, want %g", a.Sum(), wantSum)
	}
	// Virtual mix: comp 4e-4, halo 1e-4, reduce 5e-5 of max clock 6e-4 →
	// slack 5e-5. Scaled onto 600µs of wall solve.
	solve := 600e-6
	if got, want := a.Compute, 4e-4/6e-4*solve; math.Abs(got-want) > 1e-12 {
		t.Errorf("Compute: got %g, want %g", got, want)
	}
	if got, want := a.Slack, 5e-5/6e-4*solve; math.Abs(got-want) > 1e-12 {
		t.Errorf("Slack: got %g, want %g", got, want)
	}
	if cov := a.Coverage(); math.Abs(cov-wantSum/(610e-6)) > 1e-12 {
		t.Errorf("Coverage: got %g", cov)
	}
}

// TestAttributeRecordFreeModel: without virtual pricing (VClockMax 0) the
// whole solve is attributed to compute rather than divided by zero.
func TestAttributeRecordFreeModel(t *testing.T) {
	a := obs.AttributeRecord(obs.RequestRecord{SolveNS: 1e6, TotalNS: 2e6})
	if a.Compute != 1e-3 || a.Halo != 0 || a.Slack != 0 {
		t.Errorf("free-model attribution wrong: %+v", a)
	}
	if obs.AttributeRecord(obs.RequestRecord{}).Coverage() != 0 {
		t.Error("zero record must have zero coverage, not NaN")
	}
}

// TestStragglerLeague aggregates reduce spans into per-rank standings.
func TestStragglerLeague(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, buildTracks(), nil, 0); err != nil {
		t.Fatal(err)
	}
	pt, err := obs.ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := obs.StragglerLeague(pt.Events)
	if len(rows) != 2 {
		t.Fatalf("league rows: got %d, want 2", len(rows))
	}
	// buildTracks marks rank%2 as straggler: rank 0's spans blame rank 0,
	// rank 1's blame rank 1 — each rank straggles all 6 of its reductions.
	for _, r := range rows {
		if r.Reduces != 6 || r.Straggled != 6 {
			t.Errorf("rank %d: %d/%d straggled, want 6/6", r.Rank, r.Straggled, r.Reduces)
		}
		if math.Abs(r.WaitMean-3e-5) > 1e-12 {
			t.Errorf("rank %d wait mean: got %g, want 3e-5", r.Rank, r.WaitMean)
		}
		// buildTracks stamps Aux=rank on run_begin: shard attribution must
		// survive the round-trip, including shard 0.
		if r.Shard != r.Rank {
			t.Errorf("rank %d shard: got %d, want %d", r.Rank, r.Shard, r.Rank)
		}
	}
	if sm := obs.ShardMap(pt.Events); len(sm) != 2 || sm[0] != 0 || sm[1] != 1 {
		t.Errorf("ShardMap: got %v, want {0:0 1:1}", sm)
	}
}

// TestTraceIDStamping: the ring stamps its current trace ID onto every Add,
// and EventsFor filters one request's correlated span set.
func TestTraceIDStamping(t *testing.T) {
	tr := obs.NewTracer(16)
	for rank := 0; rank < 2; rank++ {
		rt := tr.Rank(rank)
		rt.SetTraceID(11)
		rt.Add(obs.Event{Name: obs.EvCompute, Iter: -1, Straggler: -1})
		rt.SetTraceID(22)
		rt.Add(obs.Event{Name: obs.EvReduce, Iter: -1, Straggler: -1})
	}
	for _, id := range []uint64{11, 22} {
		evs := tr.EventsFor(id)
		if len(evs) != 2 {
			t.Fatalf("EventsFor(%d): got %d events, want 2", id, len(evs))
		}
		for _, e := range evs {
			if e.Trace != id {
				t.Fatalf("EventsFor(%d) returned trace %d", id, e.Trace)
			}
		}
	}
}

// TestExportDroppedCounter: ring wraparound surfaces in the registry as the
// monotone obs_trace_dropped_total counter, equal to Dropped() after each
// export (repeated exports add only the delta).
func TestExportDroppedCounter(t *testing.T) {
	tr := obs.NewTracer(4)
	rt := tr.Rank(0)
	for i := 0; i < 10; i++ {
		rt.Add(obs.Event{Name: obs.EvCompute, Iter: -1, Straggler: -1})
	}
	reg := obs.NewRegistry()
	tr.ExportDropped(reg)
	c := reg.Counter("obs_trace_dropped_total", "")
	if got, want := c.Value(), tr.Dropped(); got != want || want != 6 {
		t.Fatalf("after first export: counter %d, Dropped %d, want 6", got, want)
	}
	tr.ExportDropped(reg) // no new drops: counter must not double
	if got := c.Value(); got != 6 {
		t.Fatalf("re-export doubled the counter: %d", got)
	}
	for i := 0; i < 3; i++ {
		rt.Add(obs.Event{Name: obs.EvCompute, Iter: -1, Straggler: -1})
	}
	tr.ExportDropped(reg)
	if got := c.Value(); got != 9 {
		t.Fatalf("delta export: got %d, want 9", got)
	}

	// The exposition names the series.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "obs_trace_dropped_total 9") {
		t.Errorf("exposition missing drop counter:\n%s", sb.String())
	}

	// Nil tracer and nil registry are no-ops.
	var nilT *obs.Tracer
	nilT.ExportDropped(reg)
	tr.ExportDropped(nil)
}

// TestSpanRecordZeroAlloc pins the span-record hot path at zero
// allocations: one Add — including the Rank/Trace stamping — must not
// allocate, or per-iteration tracing would pressure the GC at solve rates.
func TestSpanRecordZeroAlloc(t *testing.T) {
	tr := obs.NewTracer(1 << 12)
	rt := tr.Rank(0)
	rt.SetTraceID(42)
	allocs := testing.AllocsPerRun(2000, func() {
		rt.Add(obs.Event{Name: obs.EvReduce, T0: 1, T1: 2,
			Value: 3, Iter: -1, Straggler: 1, Wait: 4e-6})
	})
	if allocs != 0 {
		t.Fatalf("RankTrace.Add allocates %.1f per call, want 0", allocs)
	}
}
