package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	poplint "repro/internal/analysis"
)

// TestAllRegistersEveryAnalyzer cross-checks All() against the analysis
// package's own source: every *analysis.Analyzer composite literal declared
// in the package must be in All() (nothing defined-but-unregistered), the
// names must be unique, and there must be at least the five analyzers the
// suite ships with.
func TestAllRegistersEveryAnalyzer(t *testing.T) {
	registered := make(map[string]bool)
	for _, a := range poplint.All() {
		if registered[a.Name] {
			t.Errorf("All() registers %q twice", a.Name)
		}
		registered[a.Name] = true
	}
	if len(registered) < 5 {
		t.Fatalf("All() registers %d analyzers, want at least 5", len(registered))
	}

	declared := declaredAnalyzerNames(t, ".")
	if len(declared) == 0 {
		t.Fatal("found no analysis.Analyzer declarations in package source")
	}
	for name := range declared {
		if !registered[name] {
			t.Errorf("analyzer %q is declared in the package but missing from All()", name)
		}
	}
	for name := range registered {
		if !declared[name] {
			t.Errorf("All() registers %q but no declaration with that Name exists", name)
		}
	}
}

// TestPoplintMainUsesAll checks the multichecker binary wires the whole
// suite into the unitchecker: cmd/poplint must spread All() into
// unitchecker.Main, so an analyzer added to All() is automatically served
// to go vet without touching the command.
func TestPoplintMainUsesAll(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("..", "..", "cmd", "poplint", "main.go"), nil, 0)
	if err != nil {
		t.Fatalf("parsing cmd/poplint/main.go: %v", err)
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Main" {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "unitchecker" {
			return true
		}
		if call.Ellipsis == token.NoPos || len(call.Args) != 1 {
			return true
		}
		arg, ok := call.Args[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if argSel, ok := arg.Fun.(*ast.SelectorExpr); ok && argSel.Sel.Name == "All" {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("cmd/poplint/main.go does not spread All() into unitchecker.Main")
	}
}

// declaredAnalyzerNames scans the package directory for
// `&analysis.Analyzer{Name: "...", ...}` declarations and returns the names.
func declaredAnalyzerNames(t *testing.T, dir string) map[string]bool {
	t.Helper()
	names := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			sel, ok := lit.Type.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Analyzer" {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Name" {
					continue
				}
				if v, ok := kv.Value.(*ast.BasicLit); ok {
					if name, err := strconv.Unquote(v.Value); err == nil {
						names[name] = true
					}
				}
			}
			return true
		})
	}
	return names
}
