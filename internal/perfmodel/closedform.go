package perfmodel

import "math"

// Closed-form per-solve time estimates from the paper's Equations 2, 3, 5
// and 6. These are *not* used to generate results — the experiments price a
// real event stream — but serve as analytic cross-checks: measured virtual
// times must track these shapes (see tests and the eq-vs-measured ablation
// bench).

// EqChronGearDiag is Eq. 2: one diagonal-preconditioned ChronGear solve of
// an N²-point system on p ranks taking K iterations.
func EqChronGearDiag(m *Machine, n2 float64, p int, k float64) float64 {
	return k * (18*n2/float64(p)*m.Theta +
		8*math.Sqrt(n2/float64(p))*8*m.Beta +
		float64(4+log2Ceil(p))*m.Alpha)
}

// EqPCSIDiag is Eq. 3: one diagonal-preconditioned P-CSI solve.
func EqPCSIDiag(m *Machine, n2 float64, p int, k float64) float64 {
	return k * (13*n2/float64(p)*m.Theta +
		4*m.Alpha +
		8*math.Sqrt(n2/float64(p))*8*m.Beta)
}

// EqChronGearEVP is Eq. 5: ChronGear with the block-EVP preconditioner.
func EqChronGearEVP(m *Machine, n2 float64, p int, k float64) float64 {
	return k * (31*n2/float64(p)*m.Theta +
		8*math.Sqrt(n2/float64(p))*8*m.Beta +
		float64(4+log2Ceil(p))*m.Alpha)
}

// EqPCSIEVP is Eq. 6: P-CSI with the block-EVP preconditioner.
func EqPCSIEVP(m *Machine, n2 float64, p int, k float64) float64 {
	return k * (26*n2/float64(p)*m.Theta +
		4*m.Alpha +
		8*math.Sqrt(n2/float64(p))*8*m.Beta)
}

// sstepBlocks is the s-step solver's reduction count for K iterations in
// blocks of s: one Gram reduction per block plus the solver's single extra
// first-block reduction (which also carries ‖b‖²).
func sstepBlocks(k float64, s int) float64 {
	return math.Ceil(k/float64(s)) + 1
}

// sstepFlopsPerPt is the s-step solver's per-point, per-iteration flop
// count on top of a preconditioner costing pc flops/point: stencil apply
// (9) + Chebyshev three-term basis (≈3) + x/r block update (4), the Gram
// dots amortized per iteration (3s + 3 + 2/s: the (2s+1)-wide Gram system
// costs ~(3/2)s² dots per block), and the 4s block-recurrence AXPYs that
// rebuild P and AP from the basis.
func sstepFlopsPerPt(pc float64, s int) float64 {
	sf := float64(s)
	return pc + 9 + 3 + 4 + 3*sf + 3 + 2/sf + 4*sf
}

// eqSStep prices one s-step solve: per-iteration compute and halo exactly
// like the one-matvec-per-iteration solvers, but the reduction latency
// term paid only once per s-step block — the communication-avoiding trade
// the method makes (Hoemmen-style CA-CG on the paper's cost model: flops
// per iteration grow linearly in s while the α term shrinks by 1/s).
func eqSStep(m *Machine, n2 float64, p int, k float64, s int, pc float64) float64 {
	return k*(sstepFlopsPerPt(pc, s)*n2/float64(p)*m.Theta+
		8*math.Sqrt(n2/float64(p))*8*m.Beta) +
		sstepBlocks(k, s)*float64(4+log2Ceil(p))*m.Alpha
}

// EqSStepDiag prices one diagonal-preconditioned s-step solve of an
// N²-point system on p ranks taking K iterations in blocks of s.
func EqSStepDiag(m *Machine, n2 float64, p int, k float64, s int) float64 {
	return eqSStep(m, n2, p, k, s, 2)
}

// EqSStepEVP prices the block-EVP-preconditioned s-step solve (the EVP
// apply costs 15 flops/point, as in Eq. 5's 31 = 18 + 13 over Eq. 2).
func EqSStepEVP(m *Machine, n2 float64, p int, k float64, s int) float64 {
	return eqSStep(m, n2, p, k, s, 15)
}
