// Package baroclinic provides the synthetic 3-D baroclinic workload that
// stands in for POP's baroclinic mode in the whole-model experiments
// (Figures 1, 8, 9 and 11 and Table 1 compare barotropic solver time
// against total POP time, ~90% of which is baroclinic at low core counts).
//
// The baroclinic mode is compute-dominated and scales nearly perfectly: per
// time step it sweeps every level of every column (momentum, tracers,
// equation of state, vertical mixing) and refreshes a handful of 3-D halos.
// This package reproduces that *cost signature* rather than the physics: a
// real level-sweep stencil kernel executes on each block (so memory is
// touched and the virtual clock advances through the same AddFlops path as
// the solver), the per-point flop charge is calibrated to POP's measured
// throughput, and the 3-D halo updates are aggregated multi-level
// exchanges exactly like POP's.
//
// Calibration: Figure 1 shows the 0.1° baroclinic mode taking ~90% of core
// run time at 470 cores where one simulated day costs ~600 s, i.e. ~63k
// flops per point per step at 500 steps/day over 8.64M points (42 levels ×
// ~1.5k flops) at 1 Gflop/s effective — the DefaultLevelFlops below.
package baroclinic

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/decomp"
)

// Defaults matching the calibration in the package comment.
const (
	DefaultNZ         = 42
	DefaultLevelFlops = 1500
	// DefaultExchanges is the number of aggregated 3-D halo updates per
	// step (u, v, T, S and two work fields in POP).
	DefaultExchanges = 6
	// execLevels is how many levels the kernel really executes; the
	// remaining levels are charged but not recomputed (running all 42
	// would make single-machine sweeps of 16,875 virtual ranks take hours
	// without changing any measured quantity).
	execLevels = 2
)

// Workload is a distributed synthetic baroclinic stepper.
type Workload struct {
	D  *decomp.Decomposition
	W  *comm.World
	NZ int
	// LevelFlops is the charged flop count per point per level.
	LevelFlops int64
	// Exchanges is the number of aggregated 3-D halo updates per step.
	Exchanges int

	// perRank[rank][level][blockIndex] is the padded array of one executed
	// level on one block.
	perRank [][][][]float64
	// multis[rank] is the NZ-level wrapper passed to ExchangeMulti, built
	// once alongside the rank's fields so stepping allocates nothing.
	multis [][][][]float64
}

// New builds a workload over an assigned decomposition and its world.
func New(d *decomp.Decomposition, w *comm.World, nz int) (*Workload, error) {
	if d.NRanks == 0 {
		return nil, fmt.Errorf("baroclinic: decomposition not assigned")
	}
	if nz <= 0 {
		nz = DefaultNZ
	}
	return &Workload{
		D: d, W: w, NZ: nz,
		LevelFlops: DefaultLevelFlops,
		Exchanges:  DefaultExchanges,
		perRank:    make([][][][]float64, d.NRanks),
		multis:     make([][][][]float64, d.NRanks),
	}, nil
}

// ensure builds the rank's executed-level fields on first use.
func (b *Workload) ensure(r *comm.Rank) [][][]float64 {
	if b.perRank[r.ID] != nil {
		return b.perRank[r.ID]
	}
	// One padded array per block per executed level, seeded with a smooth
	// ramp so the kernel has nontrivial data.
	flat := make([][]float64, execLevels*len(r.Blocks))
	for l := 0; l < execLevels; l++ {
		for i, blk := range r.Blocks {
			nxp, nyp := b.D.PaddedDims(blk)
			f := make([]float64, nxp*nyp)
			for k := range f {
				f[k] = float64((k+l*7)%13) * 0.1
			}
			flat[l*len(r.Blocks)+i] = f
		}
	}
	levels := chunk(flat, len(r.Blocks))
	b.perRank[r.ID] = levels
	// Aggregated 3-D wrapper: NZ levels cycling over the executed arrays —
	// bytes on the wire are what matters for the cost model.
	multi := make([][][]float64, b.NZ)
	for l := range multi {
		multi[l] = levels[l%execLevels]
	}
	b.multis[r.ID] = multi
	return levels
}

func chunk(flat [][]float64, per int) [][][]float64 {
	var out [][][]float64
	for i := 0; i < len(flat); i += per {
		out = append(out, flat[i:i+per])
	}
	return out
}

// StepRank executes one baroclinic step for one rank inside a World.Run
// program: the level-sweep kernel, the flop charge for the full NZ levels,
// and the aggregated 3-D halo updates.
func (b *Workload) StepRank(r *comm.Rank) {
	levels := b.ensure(r)
	var interior int64
	for i, blk := range r.Blocks {
		nxp, _ := b.D.PaddedDims(blk)
		interior += int64(blk.NxI * blk.NyI)
		// Real kernel work on the executed levels: a five-point smoothing
		// sweep per level (memory-realistic inner loop).
		for l := 0; l < execLevels; l++ {
			f := levels[l][i]
			for j := b.D.Halo; j < blk.NyI+b.D.Halo; j++ {
				base := j * nxp
				for ii := b.D.Halo; ii < blk.NxI+b.D.Halo; ii++ {
					k := base + ii
					f[k] = 0.2 * (f[k] + f[k-1] + f[k+1] + f[k-nxp] + f[k+nxp])
				}
			}
		}
	}
	// Charge the full-physics cost for all NZ levels.
	r.AddFlops(interior * int64(b.NZ) * b.LevelFlops)

	// Aggregated 3-D halo updates: each carries NZ levels of strips.
	multi := b.multis[r.ID]
	for e := 0; e < b.Exchanges; e++ {
		r.ExchangeMulti(multi)
	}
}

// Step runs one baroclinic step across all ranks and returns the stats.
func (b *Workload) Step() comm.Stats {
	return b.W.Run(b.StepRank)
}
