// Command popserver exposes the concurrent solve service over HTTP — as a
// single-process server, an in-process sharded fleet, or a router over
// remote workers.
//
//	popserver -addr :8080 -sessions 2 -queue 64          # single service
//	popserver -addr :8080 -fleet 4                       # 4-shard local fleet
//	popserver -addr :8080 -routeto http://a:8081,http://b:8081
//	popserver -probe http://localhost:8080 -frame        # one-shot client
//
// The HTTP surface is versioned under /v1; the unversioned legacy paths
// still answer identically but stamp a Deprecation header:
//
//	POST /v1/solve     solve request — JSON (api.SolveRequest) or the
//	                   compact binary frame (Content-Type
//	                   application/x-pop-frame), answered in kind
//	GET  /v1/healthz   200 {"status":"ok"} while serving, 503 draining
//	GET  /v1/stats     fleet-wide counter aggregation (api.StatsResponse):
//	                   router counters, per-worker rows, summed totals
//	POST /solve        deprecated shim for /v1/solve
//	GET  /healthz      deprecated shim (plain-text ok)
//	GET  /stats        deprecated shim for /v1/stats
//	GET  /metrics      Prometheus text exposition (single: serve_* metrics;
//	                   fleet modes: the router's fleet_* metrics — worker
//	                   counters are aggregated under /v1/stats)
//	GET  /debug/trace  Perfetto trace export (fleet modes merge every local
//	                   worker's session tracks, re-homed per worker)
//	GET  /debug/flight JSON flight-recorder snapshot
//
// In fleet modes, requests are consistent-hashed on their session-pool key
// so each shard keeps its own warm sessions, concurrent identical requests
// collapse onto one solve, and completed solves replay bitwise from a
// content-addressed cache ("cache":"hit" in the response). Bad enum values
// return a 400 whose body lists the accepted spellings.
//
// Every request carries a trace ID (client-supplied via "trace_id" or
// assigned at admission) correlating its response with its rank-level spans
// in the trace export. SIGINT/SIGTERM triggers a graceful drain; a final
// Perfetto export is written to -traceout when set.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		cores     = flag.Int("cores", 0, "virtual ranks per session (0 = one per block)")
		threads   = flag.Int("threads", 0, "worker shards per session: max ranks running concurrently (0 = GOMAXPROCS)")
		tau       = flag.Float64("tau", 1920, "barotropic time step (s)")
		sessions  = flag.Int("sessions", 2, "max warmed sessions per (grid,method,precond,precision) key")
		queue     = flag.Int("queue", 64, "per-key queue bound before shedding")
		batch     = flag.Int("batch", 8, "max requests coalesced per session checkout")
		wait      = flag.Duration("wait", 2*time.Millisecond, "batching window for stragglers")
		drainWait = flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
		circuit   = flag.Int("circuit", 0, "open a key's circuit breaker after this many consecutive faulted solves (0 = off)")
		cooldown  = flag.Duration("cooldown", time.Second, "how long an open circuit quarantines its key")
		tracecap  = flag.Int("tracecap", 4096, "per-rank trace ring capacity (0 = rank-level tracing off)")
		traceout  = flag.String("traceout", "", "write a Perfetto trace export here on shutdown")
		flightdir = flag.String("flightdir", "", "directory for flight-recorder incident dumps (\"\" = in-memory only)")
		flightlen = flag.Int("flightring", 0, "flight-recorder ring capacity (0 = default)")
		slo       = flag.Duration("slo", 0, "per-request latency SLO; breaches dump the flight recorder (0 = off)")

		fleetN   = flag.Int("fleet", 0, "run an in-process fleet with this many worker shards (0 = single service)")
		routeTo  = flag.String("routeto", "", "comma-separated remote worker base URLs; run as a router over them")
		cacheCap = flag.Int("cache", 0, "fleet result-cache capacity in entries (0 = default 4096, negative = off)")
		cacheTTL = flag.Duration("cachettl", 0, "fleet result-cache entry TTL (0 = default 10m, negative = no expiry)")

		probe      = flag.String("probe", "", "client mode: send one solve to this base URL and exit (0 = converged)")
		frame      = flag.Bool("frame", false, "probe mode: speak the binary frame instead of JSON")
		probeGrid  = flag.String("grid", "test", "probe mode: grid preset")
		probeMeth  = flag.String("method", "chrongear", "probe mode: solver method")
		probePrec  = flag.String("precond", "diagonal", "probe mode: preconditioner")
		probeFloat = flag.String("precision", "", "probe mode: iteration arithmetic")
		probeSStep = flag.Int("sstep", 0, "probe mode: s-step block size for -method sstep (0 = server default)")
	)
	flag.Parse()

	if *probe != "" {
		os.Exit(runProbe(*probe, *frame, *probeGrid, *probeMeth, *probePrec, *probeFloat, *probeSStep))
	}

	obs.ServePprof(*pprofAddr)

	workerOpts := pop.ServiceOptions{
		Cores:             *cores,
		Threads:           *threads,
		Tau:               *tau,
		MaxSessionsPerKey: *sessions,
		MaxQueue:          *queue,
		MaxBatch:          *batch,
		MaxWait:           *wait,
		CircuitThreshold:  *circuit,
		CircuitCooldown:   *cooldown,
		TraceCapacity:     *tracecap,
		FlightRing:        *flightlen,
		FlightDir:         *flightdir,
		LatencySLO:        *slo,
	}

	h := &handler{}
	switch {
	case *routeTo != "":
		reg := obs.NewRegistry()
		flt, err := pop.NewFleet(pop.FleetOptions{
			Remotes:       splitURLs(*routeTo),
			CacheCapacity: *cacheCap,
			CacheTTL:      *cacheTTL,
			Registry:      reg,
			FlightRing:    *flightlen,
		})
		if err != nil {
			log.Fatalf("popserver: %v", err)
		}
		h.flt, h.reg = flt, reg
		log.Printf("popserver: routing to %d remote workers", len(splitURLs(*routeTo)))
	case *fleetN > 0:
		reg := obs.NewRegistry()
		flt, err := pop.NewFleet(pop.FleetOptions{
			Workers:       *fleetN,
			Worker:        workerOpts,
			CacheCapacity: *cacheCap,
			CacheTTL:      *cacheTTL,
			Registry:      reg,
			FlightRing:    *flightlen,
		})
		if err != nil {
			log.Fatalf("popserver: %v", err)
		}
		h.flt, h.reg = flt, reg
		log.Printf("popserver: in-process fleet with %d worker shards", *fleetN)
	default:
		h.svc = pop.NewService(workerOpts)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.V1Solve, h.solve(false))
	mux.HandleFunc("GET "+api.V1Health, h.healthV1)
	mux.HandleFunc("GET "+api.V1Stats, h.stats(false))
	mux.HandleFunc("POST "+api.LegacySolve, h.solve(true))
	mux.HandleFunc("GET "+api.LegacyHealth, h.healthLegacy)
	mux.HandleFunc("GET "+api.LegacyStats, h.stats(true))
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /debug/trace", h.trace)
	mux.HandleFunc("GET /debug/flight", h.flight)
	srv := &http.Server{Addr: *addr, Handler: mux}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("popserver: %v, draining (budget %s)", s, *drainWait)
		h.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("popserver: http shutdown: %v", err)
		}
		if err := h.close(ctx); err != nil {
			log.Printf("popserver: drain incomplete: %v", err)
		}
		if *traceout != "" {
			if err := h.writeTraceFile(*traceout); err != nil {
				log.Printf("popserver: trace export: %v", err)
			} else {
				log.Printf("popserver: trace written to %s", *traceout)
			}
		}
		close(done)
	}()

	log.Printf("popserver: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("popserver: %v", err)
	}
	<-done
}

// splitURLs parses the -routeto list.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}
