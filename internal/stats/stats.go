// Package stats implements the paper's §6 evaluation machinery: the simple
// RMSE port-verification test that proved unable to detect solver-induced
// error, and the ensemble-based root-mean-square Z-score (RMSZ) that can.
package stats

import (
	"fmt"
	"math"
)

// RMSE returns the root-mean-square difference between two fields over the
// points where include is true (ocean masking, marginal-sea exclusion).
func RMSE(a, b []float64, include []bool) float64 {
	if len(a) != len(b) || len(a) != len(include) {
		panic("stats: RMSE length mismatch")
	}
	var s float64
	n := 0
	for k, in := range include {
		if !in {
			continue
		}
		d := a[k] - b[k]
		s += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(s / float64(n))
}

// Ensemble accumulates per-point mean and variance across members with
// Welford's algorithm, point-parallel.
type Ensemble struct {
	n     int
	mean  []float64
	m2    []float64
	mask  []bool
	rmszs []float64 // per-member leave-none-out RMSZ, filled by Finalize
}

// NewEnsemble prepares an accumulator for fields of the given length; mask
// selects the points that participate (nil = all).
func NewEnsemble(length int, mask []bool) *Ensemble {
	if mask != nil && len(mask) != length {
		panic("stats: mask length mismatch")
	}
	return &Ensemble{
		mean: make([]float64, length),
		m2:   make([]float64, length),
		mask: mask,
	}
}

// Add folds one member field into the accumulator.
func (e *Ensemble) Add(x []float64) {
	if len(x) != len(e.mean) {
		panic("stats: member length mismatch")
	}
	e.n++
	inv := 1 / float64(e.n)
	for k, v := range x {
		d := v - e.mean[k]
		e.mean[k] += d * inv
		e.m2[k] += d * (v - e.mean[k])
	}
}

// Size returns the number of members added.
func (e *Ensemble) Size() int { return e.n }

// Mean returns the per-point ensemble mean (live slice; do not modify).
func (e *Ensemble) Mean() []float64 { return e.mean }

// Std returns the per-point sample standard deviation.
func (e *Ensemble) Std() []float64 {
	out := make([]float64, len(e.m2))
	if e.n < 2 {
		return out
	}
	inv := 1 / float64(e.n-1)
	for k, v := range e.m2 {
		out[k] = math.Sqrt(v * inv)
	}
	return out
}

// RMSZ computes the root-mean-square Z-score of a new case x against the
// ensemble (paper §6):
//
//	RMSZ = sqrt( 1/n · Σⱼ ((x(j) − μ(j))/δ(j))² )
//
// over masked points with δ(j) > 0. It returns an error when fewer than two
// members were added or no point has spread.
func (e *Ensemble) RMSZ(x []float64) (float64, error) {
	if e.n < 2 {
		return 0, fmt.Errorf("stats: RMSZ needs ≥ 2 ensemble members, have %d", e.n)
	}
	if len(x) != len(e.mean) {
		return 0, fmt.Errorf("stats: case length %d, want %d", len(x), len(e.mean))
	}
	inv := 1 / float64(e.n-1)
	var s float64
	n := 0
	for k, v := range x {
		if e.mask != nil && !e.mask[k] {
			continue
		}
		sd := math.Sqrt(e.m2[k] * inv)
		if sd == 0 {
			continue
		}
		z := (v - e.mean[k]) / sd
		s += z * z
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: ensemble has no spread at any masked point")
	}
	return math.Sqrt(s / float64(n)), nil
}

// MemberEnvelope computes the RMSZ of each stored member against the
// ensemble itself — the paper's yellow band in Fig. 13. Because members are
// part of the statistics, their RMSZ hovers around 1; the caller gets the
// min and max over members.
func MemberEnvelope(members [][]float64, mask []bool) (lo, hi float64, err error) {
	if len(members) < 2 {
		return 0, 0, fmt.Errorf("stats: envelope needs ≥ 2 members")
	}
	e := NewEnsemble(len(members[0]), mask)
	for _, m := range members {
		e.Add(m)
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, m := range members {
		z, zerr := e.RMSZ(m)
		if zerr != nil {
			return 0, 0, zerr
		}
		if z < lo {
			lo = z
		}
		if z > hi {
			hi = z
		}
	}
	return lo, hi, nil
}
