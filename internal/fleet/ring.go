package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is the consistent-hash table mapping session-pool keys to worker
// shards. Each worker owns vnodesPerWorker points on a 64-bit circle; a key
// hashes to a point and walks clockwise to the first worker point. Virtual
// nodes smooth the load split, and consistency means adding or removing one
// worker remaps only the keys in its arcs — every other shard keeps its
// warm session pools.
//
// The ring hashes the canonical serve.Key string, NOT the request body:
// requests that share a key (and therefore could share a warmed session)
// always land on the same shard, which is the whole point — the fleet
// multiplies warm pools instead of splattering one key's load across cold
// workers.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // worker count
}

// ringPoint is one virtual node: a position on the circle owned by a worker.
type ringPoint struct {
	hash   uint64
	worker int
}

// vnodesPerWorker is the virtual-node count per worker. 64 keeps the
// worst-case load imbalance under ~15% for small fleets while the ring
// stays tiny (a few KiB).
const vnodesPerWorker = 64

// newRing builds the ring for n workers (n ≥ 1).
func newRing(n int) *ring {
	r := &ring{points: make([]ringPoint, 0, n*vnodesPerWorker), n: n}
	for w := 0; w < n; w++ {
		for v := 0; v < vnodesPerWorker; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("worker-%d/vnode-%d", w, v)), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break: a hash collision between two workers'
		// vnodes must not make the mapping depend on sort stability.
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// ringHash is 64-bit FNV-1a.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// lookup returns the home shard for a key label.
func (r *ring) lookup(key string) int {
	return r.points[r.search(ringHash(key))].worker
}

// search finds the first point at or clockwise of h.
func (r *ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// successors returns the key's home shard followed by the remaining shards
// in clockwise-first-appearance order — the failover sequence: when the
// home shard sheds (overload, open circuit), the request walks this list so
// a hot key's spillover lands on a stable second shard instead of a random
// one.
func (r *ring) successors(key string) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	start := r.search(ringHash(key))
	for i := 0; len(out) < r.n; i++ {
		w := r.points[(start+i)%len(r.points)].worker
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
