package stencil

// Local is the restriction of a nine-point Operator to one decomposition
// block, stored with a halo of width H on all four sides (POP keeps width-2
// halos so a non-diagonal preconditioner plus the matvec still need only one
// boundary update per iteration — paper §2.2).
//
// Arrays are padded: dimensions (NxI+2H)×(NyI+2H) where NxI×NyI is the
// interior (owned) region. Index (i,j) with 0 ≤ i < NxP is flattened
// j*NxP+i; interior points have H ≤ i < NxP−H, H ≤ j < NyP−H.
type Local struct {
	NxP, NyP        int // padded dimensions
	H               int // halo width
	AC, AN, AE, ANE []float64
	Mask            []bool
}

// NxI and NyI return the interior (owned) dimensions.
func (l *Local) NxI() int { return l.NxP - 2*l.H }
func (l *Local) NyI() int { return l.NyP - 2*l.H }

// InteriorLen returns the number of owned points.
func (l *Local) InteriorLen() int { return l.NxI() * l.NyI() }

// Apply computes y = A·x over the interior points, reading x (and the
// coefficient arrays) from the first halo ring where the stencil reaches
// outside the block. Halo entries of y are left untouched; callers refresh
// them with a halo update when needed. Land rows are identity rows.
func (l *Local) Apply(y, x []float64) {
	nx := l.NxP
	if len(x) != nx*l.NyP || len(y) != nx*l.NyP {
		panic("stencil: Local.Apply dimension mismatch")
	}
	for j := l.H; j < l.NyP-l.H; j++ {
		base := j * nx
		for i := l.H; i < nx-l.H; i++ {
			k := base + i
			y[k] = l.AC[k]*x[k] +
				l.AN[k]*x[k+nx] + l.AN[k-nx]*x[k-nx] +
				l.AE[k]*x[k+1] + l.AE[k-1]*x[k-1] +
				l.ANE[k]*x[k+nx+1] + l.ANE[k-nx]*x[k-nx+1] +
				l.ANE[k-1]*x[k+nx-1] + l.ANE[k-nx-1]*x[k-nx-1]
		}
	}
}

// ApplyFlops returns the floating-point operation count of one Apply call,
// following the paper's 9·n² accounting (9 multiply-adds per owned point).
func (l *Local) ApplyFlops() int64 { return 9 * int64(l.InteriorLen()) }

// MaskedDotInterior returns Σ x[k]·y[k] over owned ocean points — the
// rank-local part of a masked global reduction.
func (l *Local) MaskedDotInterior(x, y []float64) float64 {
	var s float64
	nx := l.NxP
	for j := l.H; j < l.NyP-l.H; j++ {
		base := j * nx
		for i := l.H; i < nx-l.H; i++ {
			k := base + i
			if l.Mask[k] {
				s += x[k] * y[k]
			}
		}
	}
	return s
}

// DiagonalInterior returns a fresh padded array holding the operator
// diagonal (AC); halo entries are included so preconditioners can read them.
func (l *Local) DiagonalInterior() []float64 {
	d := make([]float64, len(l.AC))
	copy(d, l.AC)
	return d
}

// InteriorOceanPoints counts owned ocean points.
func (l *Local) InteriorOceanPoints() int {
	n := 0
	nx := l.NxP
	for j := l.H; j < l.NyP-l.H; j++ {
		for i := l.H; i < nx-l.H; i++ {
			if l.Mask[j*nx+i] {
				n++
			}
		}
	}
	return n
}
