// Command popsolve runs a single barotropic solve and prints the
// convergence summary — handy for comparing solver/preconditioner
// combinations on one grid.
//
//	popsolve -grid 1deg -method pcsi -precond evp -cores 768 -machine yellowstone
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro"
)

func main() {
	var (
		gridName = flag.String("grid", "test", "grid preset: test, 1deg, 0.1deg, 0.1deg-scaled")
		method   = flag.String("method", "chrongear", "solver: chrongear, pcg, pcsi, csi")
		precond  = flag.String("precond", "diagonal", "preconditioner: diagonal, evp, blocklu, none")
		cores    = flag.Int("cores", 0, "virtual core count (0 = single rank)")
		machine  = flag.String("machine", "yellowstone", "machine model: yellowstone, edison, ideal, or empty")
		tol      = flag.Float64("tol", 1e-13, "relative convergence tolerance")
		tau      = flag.Float64("tau", 1920, "barotropic time step (s)")
	)
	flag.Parse()

	g, err := pop.NewGrid(*gridName)
	fatalIf(err)
	fmt.Printf("grid %s: %d×%d, %.0f%% ocean\n", g.Name, g.Nx, g.Ny, 100*g.OceanFraction())

	solver, err := pop.NewSolver(g, pop.SolverSpec{
		Method: *method, Precond: *precond, Cores: *cores,
		MachineName: *machine, Tau: *tau,
		Options: pop.SolverOptions{Tol: *tol},
	})
	fatalIf(err)
	fmt.Printf("solver %s+%s on %d virtual cores\n", *method, *precond, solver.Cores)

	// Solve A·x = b for a known smooth x so the error is checkable.
	op := solver.Op
	xTrue := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			lon := g.TLon[k] * math.Pi / 180
			lat := g.TLat[k] * math.Pi / 180
			xTrue[k] = math.Sin(2*lon) * math.Cos(3*lat)
		}
	}
	b := make([]float64, g.N())
	op.Apply(b, xTrue)
	for k, ocean := range g.Mask {
		if !ocean {
			b[k] = 0
		}
	}

	res, x, err := solver.Solve(b, nil)
	fatalIf(err)

	var maxErr float64
	for k, ocean := range g.Mask {
		if ocean {
			if d := math.Abs(x[k] - xTrue[k]); d > maxErr {
				maxErr = d
			}
		}
	}
	fmt.Printf("converged=%v iterations=%d rel_residual=%.3g max_error=%.3g\n",
		res.Converged, res.Iterations, res.RelResidual, maxErr)
	if res.EigSteps > 0 {
		fmt.Printf("lanczos: %d steps, interval [%.4g, %.4g]\n", res.EigSteps, res.Nu, res.Mu)
	}
	if *machine != "" {
		sum := res.Stats.MeanCounters()
		fmt.Printf("virtual time/solve: %.4gs (comp %.4g, halo %.4g, reduce %.4g)\n",
			res.Stats.MaxClock, sum.TComp, sum.THalo, sum.TReduce)
		fmt.Printf("per-rank averages: %d reductions, %d halo messages, %.1f KB halo traffic\n",
			res.Stats.Sum.Reductions/int64(len(res.Stats.PerRank)),
			res.Stats.Sum.HaloMsgs/int64(len(res.Stats.PerRank)),
			float64(res.Stats.Sum.HaloBytes)/float64(len(res.Stats.PerRank))/1024)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "popsolve:", err)
		os.Exit(1)
	}
}
