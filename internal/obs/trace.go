package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event names emitted by the runtime and the solvers. Span events bracket a
// phase on one rank's virtual clock; point events mark a solver milestone.
const (
	// EvCompute brackets one charged computation phase (an AddFlops call);
	// Value is the flop count.
	EvCompute = "compute"
	// EvHalo brackets one halo-exchange phase (E/W or N/S); Value is the
	// bytes received cross-rank.
	EvHalo = "halo"
	// EvReduce brackets one global reduction; Straggler is the rank whose
	// entry clock was the reduction's critical path, Wait is how long this
	// rank waited for it (max entry clock − own entry clock), Value is the
	// reduced payload length.
	EvReduce = "reduce"
	// EvResidual is a convergence check: Iter is the solver iteration,
	// Value the relative residual ‖r‖/‖b‖.
	EvResidual = "residual"
	// EvEigBound is one Lanczos step's eigenvalue-bound estimate: Iter is
	// the step, Value = ν (lower), Aux = μ (upper).
	EvEigBound = "eig_bound"
	// EvIntervalWiden is P-CSI's slow-convergence guard widening the
	// Chebyshev interval downward; Value/Aux are the new ν/μ.
	EvIntervalWiden = "interval_widen"
	// EvIntervalRaise is P-CSI's divergence guard raising μ; Value/Aux are
	// the new ν/μ.
	EvIntervalRaise = "interval_raise"
	// EvFault is a point event marking one injected fault on the emitting
	// rank: Aux encodes the fault class (faults.Class ordinal), Value the
	// straggler delay in seconds (stragglers) or the collective/phase
	// sequence number (other classes).
	EvFault = "fault_inject"
	// EvRecover is a point event marking one recovery action: Iter is the
	// solver iteration it happened at, Value encodes the recovery kind
	// ordinal (see internal/core: reduce-retry=0, restore=1, reconverge=2).
	EvRecover = "fault_recover"
	// EvRunBegin marks the start of one World.Run on a rank. Every run
	// restarts the virtual clock at zero, so timestamps are monotone
	// non-decreasing per rank *within* a run segment; consumers must treat
	// this marker as a segment boundary. Value is the run's rank count and
	// Aux the worker shard the rank executed on (comm.Rank.Shard) — the
	// hardware-parallelism attribution key for everything in the segment.
	EvRunBegin = "run_begin"
)

// Event is one trace record. Spans carry [T0, T1] on the emitting rank's
// virtual clock; point events set Point and use T0 as their timestamp
// (span durations can legitimately be zero under a free cost model, so
// point-ness is explicit rather than inferred). Iter is −1 and Straggler
// −1 when not applicable. Trace is the request-scoped trace ID the ring
// stamped at record time (0 when the run was not serving a traced request),
// which is what correlates one serve request's rank-level spans across
// every layer — see SetTraceID.
type Event struct {
	// Rank is the emitting virtual rank.
	Rank int
	// Name is the event kind (one of the Ev* constants).
	Name string
	// T0 and T1 are the span bounds on the rank's virtual clock (seconds);
	// point events use T0 as their timestamp.
	T0, T1 float64
	// Point marks an instantaneous event.
	Point bool
	// Iter is the solver iteration the event belongs to, −1 when none.
	Iter int
	// Value is the event's primary magnitude (bytes moved, residual, …) as
	// documented per Ev* constant.
	Value float64
	// Aux is the event's secondary magnitude, per Ev* constant.
	Aux float64
	// Straggler is the rank whose late entry set a reduction's critical
	// path, −1 when not applicable.
	Straggler int
	// Wait is virtual time (seconds) spent waiting on the straggler.
	Wait float64
	// Trace is the request-scoped trace ID stamped at record time (0 =
	// not serving a traced request).
	Trace uint64
}

// IsPoint reports whether the event is an instantaneous marker.
func (e *Event) IsPoint() bool { return e.Point }

// RankTrace is one rank's ring buffer. It is written by exactly one
// goroutine (the rank's SPMD program) — the runtime hands each rank its own
// buffer — so writes need no synchronization; reading happens after the
// rank program returns.
type RankTrace struct {
	rank  int
	trace uint64 // current request trace ID, stamped onto every Add
	buf   []Event
	next  int   // next write position
	total int64 // events ever recorded
}

// SetTraceID sets the request-scoped trace ID stamped onto every subsequent
// Add (0 clears it). The runtime calls it at each World.Run entry, before
// the run's first event, so every event of a run carries the ID of the
// request that run is serving.
func (rt *RankTrace) SetTraceID(id uint64) { rt.trace = id }

// Add records one event, overwriting the oldest when the ring is full. The
// event's Rank and Trace fields are stamped by the buffer — callers never
// thread the trace ID through instrumentation sites.
//
//pop:hotpath
func (rt *RankTrace) Add(e Event) {
	e.Rank = rt.rank
	e.Trace = rt.trace
	rt.buf[rt.next] = e
	rt.next++
	if rt.next == len(rt.buf) {
		rt.next = 0
	}
	rt.total++
}

// Len returns the number of retained events.
func (rt *RankTrace) Len() int {
	if rt.total < int64(len(rt.buf)) {
		return int(rt.total)
	}
	return len(rt.buf)
}

// Dropped returns how many events the ring overwrote.
func (rt *RankTrace) Dropped() int64 {
	if d := rt.total - int64(len(rt.buf)); d > 0 {
		return d
	}
	return 0
}

// Events returns the retained events in record order (oldest first).
func (rt *RankTrace) Events() []Event {
	n := rt.Len()
	out := make([]Event, 0, n)
	if rt.total > int64(len(rt.buf)) {
		out = append(out, rt.buf[rt.next:]...)
		out = append(out, rt.buf[:rt.next]...)
		return out
	}
	return append(out, rt.buf[:rt.next]...)
}

// Tracer owns the per-rank ring buffers. A nil *Tracer is a valid disabled
// tracer: the runtime checks Enabled() once per World.Run and leaves the
// per-rank hook pointers nil, so a disabled tracer costs one pointer
// comparison per instrumentation site and allocates nothing.
type Tracer struct {
	mu              sync.Mutex
	cap             int
	ranks           map[int]*RankTrace
	droppedExported int64 // drop total already published via ExportDropped
}

// DefaultCapacity is the per-rank ring size when NewTracer is given ≤ 0.
const DefaultCapacity = 1 << 16

// NewTracer builds a tracer whose per-rank rings retain capPerRank events.
func NewTracer(capPerRank int) *Tracer {
	if capPerRank <= 0 {
		capPerRank = DefaultCapacity
	}
	return &Tracer{cap: capPerRank, ranks: make(map[int]*RankTrace)}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Rank returns (creating on first use) rank id's buffer.
func (t *Tracer) Rank(id int) *RankTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	rt, ok := t.ranks[id]
	if !ok {
		rt = &RankTrace{rank: id, buf: make([]Event, t.cap)}
		t.ranks[id] = rt
	}
	return rt
}

// Events returns every retained event, grouped by rank (ascending) and in
// record order within each rank.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int, 0, len(t.ranks))
	for id := range t.ranks {
		ids = append(ids, id)
	}
	sortInts(ids)
	var out []Event
	for _, id := range ids {
		out = append(out, t.ranks[id].Events()...)
	}
	return out
}

// Dropped returns the total events lost to ring wraparound.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedLocked()
}

func (t *Tracer) droppedLocked() int64 {
	var d int64
	for _, rt := range t.ranks {
		d += rt.Dropped()
	}
	return d
}

// ExportDropped publishes the tracer's ring-drop total into reg's
// obs_trace_dropped_total counter: the delta since the tracer's previous
// export is added, so repeated exports keep the counter monotone and equal
// to Dropped(). A nil tracer or registry is a no-op. Callers poll it at
// natural scrape points (stats snapshots, trace exports) rather than on the
// record hot path.
func (t *Tracer) ExportDropped(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.droppedLocked()
	if delta := d - t.droppedExported; delta > 0 {
		reg.Counter("obs_trace_dropped_total",
			"trace events lost to ring-buffer wraparound (truncated traces)").Add(delta)
		t.droppedExported = d
	}
}

// EventsFor returns every retained event stamped with the given trace ID,
// grouped by rank and in record order — one request's correlated span set
// across all ranks.
func (t *Tracer) EventsFor(id uint64) []Event {
	all := t.Events()
	out := make([]Event, 0, 64)
	for _, e := range all {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// jsonLine is one JSONL trace record. Ev is "B"/"E" (span begin/end) or "P"
// (point). Optional fields ride on the "E" and "P" lines.
type jsonLine struct {
	Ev        string   `json:"ev"`
	Rank      int      `json:"rank"`
	Name      string   `json:"name"`
	T         float64  `json:"t"`
	Trace     uint64   `json:"trace,omitempty"`
	Iter      *int     `json:"iter,omitempty"`
	Value     *float64 `json:"value,omitempty"`
	Aux       *float64 `json:"aux,omitempty"`
	Straggler *int     `json:"straggler,omitempty"`
	Wait      *float64 `json:"wait,omitempty"`
}

func payload(l *jsonLine, e *Event) {
	if e.Iter >= 0 {
		l.Iter = &e.Iter
	}
	v := e.Value
	l.Value = &v
	// run_begin's Aux is the worker shard: always emitted, shard 0 included,
	// so consumers can tell "shard 0" from "unattributed".
	if e.Aux != 0 || e.Name == EvRunBegin {
		a := e.Aux
		l.Aux = &a
	}
	if e.Straggler >= 0 {
		l.Straggler = &e.Straggler
		w := e.Wait
		l.Wait = &w
	}
}

// WriteJSONL renders the trace as JSON Lines: each span becomes a balanced
// "B"/"E" pair, each point event a single "P" line, grouped per rank in
// virtual-clock order (timestamps are monotone non-decreasing within a
// rank — the virtual clock never runs backwards).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		e := e
		if e.IsPoint() {
			l := jsonLine{Ev: "P", Rank: e.Rank, Name: e.Name, T: e.T0, Trace: e.Trace}
			payload(&l, &e)
			if err := enc.Encode(l); err != nil {
				return err
			}
			continue
		}
		if err := enc.Encode(jsonLine{Ev: "B", Rank: e.Rank, Name: e.Name, T: e.T0, Trace: e.Trace}); err != nil {
			return err
		}
		l := jsonLine{Ev: "E", Rank: e.Rank, Name: e.Name, T: e.T1, Trace: e.Trace}
		payload(&l, &e)
		if err := enc.Encode(l); err != nil {
			return err
		}
	}
	return bw.Flush()
}
