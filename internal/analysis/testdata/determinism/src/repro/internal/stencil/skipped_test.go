package stencil

import "time"

// Test files are exempt: fixtures may read wall clocks freely.
func testOnlyClock() time.Time {
	return time.Now()
}
