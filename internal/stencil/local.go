package stencil

// Local is the restriction of a nine-point Operator to one decomposition
// block, stored with a halo of width H on all four sides (POP keeps width-2
// halos so a non-diagonal preconditioner plus the matvec still need only one
// boundary update per iteration — paper §2.2).
//
// Arrays are padded: dimensions (NxI+2H)×(NyI+2H) where NxI×NyI is the
// interior (owned) region. Index (i,j) with 0 ≤ i < NxP is flattened
// j*NxP+i; interior points have H ≤ i < NxP−H, H ≤ j < NyP−H.
type Local struct {
	NxP, NyP int // padded dimensions
	H        int // halo width
	// AC, AN, AE and ANE are the padded nine-point coefficient arrays
	// (same roles as Operator's, block-local layout).
	AC, AN, AE, ANE []float64
	// Mask marks ocean points (padded layout; false = land or halo fill).
	Mask []bool
}

// NxI returns the interior (owned) width.
func (l *Local) NxI() int { return l.NxP - 2*l.H }

// NyI returns the interior (owned) height.
func (l *Local) NyI() int { return l.NyP - 2*l.H }

// InteriorLen returns the number of owned points.
func (l *Local) InteriorLen() int { return l.NxI() * l.NyI() }

// Apply computes y = A·x over the interior points, reading x (and the
// coefficient arrays) from the first halo ring where the stencil reaches
// outside the block. Halo entries of y are left untouched; callers refresh
// them with a halo update when needed. Land rows are identity rows.
//
// The inner loop runs over per-row slice windows of one provable common
// length so the compiler's prove pass eliminates every bounds check (the
// neighbour windows exist because H ≥ 1 keeps the ±(nx+1) reach inside the
// padded array); confirm with go build -gcflags=-d=ssa/check_bce.
//
//pop:hotpath
func (l *Local) Apply(y, x []float64) {
	nx := l.NxP
	if len(x) != nx*l.NyP || len(y) != nx*l.NyP {
		panic("stencil: Local.Apply dimension mismatch")
	}
	for j := l.H; j < l.NyP-l.H; j++ {
		lo := j*nx + l.H
		n := nx - 2*l.H
		yr := y[lo:][:n]
		xc := x[lo:][:n]
		xn := x[lo+nx:][:n]
		xs := x[lo-nx:][:n]
		xe := x[lo+1:][:n]
		xw := x[lo-1:][:n]
		xne := x[lo+nx+1:][:n]
		xse := x[lo-nx+1:][:n]
		xnw := x[lo+nx-1:][:n]
		xsw := x[lo-nx-1:][:n]
		ac := l.AC[lo:][:n]
		an := l.AN[lo:][:n]
		ans := l.AN[lo-nx:][:n]
		ae := l.AE[lo:][:n]
		aw := l.AE[lo-1:][:n]
		ane := l.ANE[lo:][:n]
		anes := l.ANE[lo-nx:][:n]
		anew := l.ANE[lo-1:][:n]
		anesw := l.ANE[lo-nx-1:][:n]
		for i := range yr {
			yr[i] = ac[i]*xc[i] +
				an[i]*xn[i] + ans[i]*xs[i] +
				ae[i]*xe[i] + aw[i]*xw[i] +
				ane[i]*xne[i] + anes[i]*xse[i] +
				anew[i]*xnw[i] + anesw[i]*xsw[i]
		}
	}
}

// ApplyAndMaskedDot computes y = A·x over the interior and returns
// Σ y[k]·x[k] over owned ocean points in the same pass — the matvec and the
// dot the CG-family solvers perform back-to-back, fused so x and y cross
// the cache once instead of twice. The accumulation visits points in the
// same row-major order as Apply followed by MaskedDotInterior(x, y), so the
// result is bitwise identical to the unfused pair.
//
//pop:hotpath
func (l *Local) ApplyAndMaskedDot(y, x []float64) float64 {
	nx := l.NxP
	if len(x) != nx*l.NyP || len(y) != nx*l.NyP {
		panic("stencil: Local.Apply dimension mismatch")
	}
	var s float64
	for j := l.H; j < l.NyP-l.H; j++ {
		lo := j*nx + l.H
		n := nx - 2*l.H
		yr := y[lo:][:n]
		xc := x[lo:][:n]
		xn := x[lo+nx:][:n]
		xs := x[lo-nx:][:n]
		xe := x[lo+1:][:n]
		xw := x[lo-1:][:n]
		xne := x[lo+nx+1:][:n]
		xse := x[lo-nx+1:][:n]
		xnw := x[lo+nx-1:][:n]
		xsw := x[lo-nx-1:][:n]
		ac := l.AC[lo:][:n]
		an := l.AN[lo:][:n]
		ans := l.AN[lo-nx:][:n]
		ae := l.AE[lo:][:n]
		aw := l.AE[lo-1:][:n]
		ane := l.ANE[lo:][:n]
		anes := l.ANE[lo-nx:][:n]
		anew := l.ANE[lo-1:][:n]
		anesw := l.ANE[lo-nx-1:][:n]
		mask := l.Mask[lo:][:n]
		for i := range yr {
			v := ac[i]*xc[i] +
				an[i]*xn[i] + ans[i]*xs[i] +
				ae[i]*xe[i] + aw[i]*xw[i] +
				ane[i]*xne[i] + anes[i]*xse[i] +
				anew[i]*xnw[i] + anesw[i]*xsw[i]
			yr[i] = v
			if mask[i] {
				s += xc[i] * v
			}
		}
	}
	return s
}

// ApplyFlops returns the floating-point operation count of one Apply call,
// following the paper's 9·n² accounting (9 multiply-adds per owned point).
func (l *Local) ApplyFlops() int64 { return 9 * int64(l.InteriorLen()) }

// MaskedDotInterior returns Σ x[k]·y[k] over owned ocean points — the
// rank-local part of a masked global reduction.
//
//pop:hotpath
func (l *Local) MaskedDotInterior(x, y []float64) float64 {
	var s float64
	nx := l.NxP
	for j := l.H; j < l.NyP-l.H; j++ {
		lo := j*nx + l.H
		n := nx - 2*l.H
		xr := x[lo:][:n]
		yr := y[lo:][:n]
		mask := l.Mask[lo:][:n]
		for i := range xr {
			if mask[i] {
				s += xr[i] * yr[i]
			}
		}
	}
	return s
}

// DiagonalInterior returns a fresh padded array holding the operator
// diagonal (AC); halo entries are included so preconditioners can read them.
func (l *Local) DiagonalInterior() []float64 {
	d := make([]float64, len(l.AC))
	copy(d, l.AC)
	return d
}

// InteriorOceanPoints counts owned ocean points.
func (l *Local) InteriorOceanPoints() int {
	n := 0
	nx := l.NxP
	for j := l.H; j < l.NyP-l.H; j++ {
		for i := l.H; i < nx-l.H; i++ {
			if l.Mask[j*nx+i] {
				n++
			}
		}
	}
	return n
}
