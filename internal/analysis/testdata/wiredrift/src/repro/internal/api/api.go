// Package api is a wire-schema stand-in with seeded drift: SStep is
// carried by the frame and the pool key but missing from HashSolve, Fresh
// is hashed but never made it into the binary frame, HashSolve accepts x0
// and drops it, and FrameRequest declares a Ghost field its decoder never
// reads.
package api

// SolveRequest is the JSON wire request.
type SolveRequest struct {
	// Grid names the preset.
	Grid string
	// Method names the solver.
	Method string
	// SStep is the seeded drift: framed, pooled, but never hashed.
	SStep int // want `semantic field SStep of SolveRequest is not an ingredient of HashSolve`
	// Fresh is hashed but was never added to the binary frame.
	Fresh float64 // want `semantic field Fresh of SolveRequest has no FrameRequest counterpart`
	// B is the right-hand side.
	B []float64
	// X0 is the initial guess.
	X0 []float64
	// TimeoutMS bounds the solve.
	//
	//pop:nonsemantic request deadline, not solve content
	TimeoutMS int
}

// FrameRequest is the binary frame's decoded form.
type FrameRequest struct {
	// Grid names the preset.
	Grid string
	// Method names the solver.
	Method string
	// SStep is the block size.
	SStep int
	// B is the right-hand side.
	B []float64
	// X0 is the initial guess.
	X0 []float64
	// TimeoutMS bounds the solve.
	TimeoutMS int
	// Ghost is encoded but never decoded.
	Ghost int // want `field Ghost of FrameRequest is never referenced by DecodeFrameRequest`
}

// AppendFrameRequest encodes r.
func AppendFrameRequest(dst []byte, r FrameRequest) []byte {
	return append(dst, byte(len(r.Grid)), byte(len(r.Method)), byte(r.SStep),
		byte(len(r.B)), byte(len(r.X0)), byte(r.TimeoutMS), byte(r.Ghost))
}

// DecodeFrameRequest decodes raw.
func DecodeFrameRequest(raw []byte) FrameRequest {
	var r FrameRequest
	r.Grid = string(raw[:1])
	r.Method = string(raw[1:2])
	r.SStep = int(raw[2])
	r.B = []float64{float64(raw[3])}
	r.X0 = []float64{float64(raw[4])}
	r.TimeoutMS = int(raw[5])
	return r
}

// HashSolve hashes the content surface; sstep is missing and x0 dropped.
func HashSolve(grid, method string, fresh float64, b, x0 []float64) [4]byte { // want `HashSolve parameter x0 is accepted but never folded into the hash`
	var h [4]byte
	h[0] = byte(len(grid))
	h[1] = byte(len(method))
	h[2] = byte(fresh)
	h[3] = byte(len(b))
	return h
}
