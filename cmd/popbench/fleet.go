package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/experiments"
)

// fleetReport is the machine-readable result of `popbench -fleet`, written
// as BENCH_fleet.json. Three measured phases share one workload (a closed
// loop drawing from a small set of distinct right-hand sides):
//
//   - baseline: one single-process service, no router — the floor the
//     fleet gates against.
//   - fleet: the full router stack (sharding + singleflight + result
//     cache). The ≥5× throughput and ≤2× p99 gates apply here: on a
//     repeating workload the cache answers most requests, which is the
//     point — determinism makes a completed solve reusable.
//   - fleet_nocache: the same fleet with caching and dedup disabled — the
//     honest dispatch-only number. Ungated; recorded so the report never
//     confuses cache wins with routing wins. The dormant ≥2×
//     speedup-at-4-workers gate reads THIS phase, and arms only on hosts
//     with ≥4 CPUs (a 1-CPU box cannot speed up by adding workers).
type fleetReport struct {
	Name      string               `json:"name"`
	Timestamp string               `json:"timestamp"`
	Hardware  experiments.Hardware `json:"hardware"`
	Grid      string               `json:"grid"`
	Method    string               `json:"method"`
	Precond   string               `json:"precond"`
	Workers   int                  `json:"workers"`
	// DistinctRHS is the number of distinct right-hand sides the closed
	// loop cycles through (the knob that sets the steady-state hit ratio).
	DistinctRHS int `json:"distinct_rhs"`

	Baseline    loadPhase  `json:"baseline"`
	Fleet       fleetPhase `json:"fleet"`
	FleetNoCach fleetPhase `json:"fleet_nocache"`

	// Sweep records throughput as a function of the cache-hit ratio: the
	// distinct-RHS working set grows past a fixed small cache capacity
	// (sweepCacheCap entries), so the series walks from the all-hit regime
	// into LRU thrash — the EXPERIMENTS.md series.
	SweepCacheCap int          `json:"sweep_cache_capacity"`
	Sweep         []sweepPoint `json:"hit_ratio_sweep"`

	// SpeedupX is fleet throughput / baseline throughput (gated ≥5).
	SpeedupX float64 `json:"speedup_x"`
	// P99RatioX is fleet p99 / baseline p99 (gated ≤2).
	P99RatioX float64 `json:"p99_ratio_x"`
	TargetOK  bool    `json:"target_ok"`

	// WorkerSpeedup is the dormant honesty gate on the no-cache fleet:
	// dispatch-only throughput over baseline must reach 2× at 4 workers —
	// but only on hardware that can actually run 4 workers concurrently.
	WorkerSpeedup speedupGate `json:"worker_speedup_gate"`
}

// fleetPhase is one fleet closed-loop phase plus its router counters.
type fleetPhase struct {
	loadPhase
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Deduped     int64   `json:"deduped"`
	HitRatio    float64 `json:"hit_ratio"`
}

// sweepPoint is one entry of the hit-ratio sweep.
type sweepPoint struct {
	DistinctRHS  int     `json:"distinct_rhs"`
	HitRatio     float64 `json:"hit_ratio"`
	SolvesPerSec float64 `json:"solves_per_sec"`
}

// speedupGate records a gate that arms only on capable hardware, so a
// 1-CPU container reports the measurement honestly instead of faking a
// pass or failing vacuously.
type speedupGate struct {
	// Active reports whether the gate is armed (NumCPU ≥ RequiredCPUs).
	Active bool `json:"active"`
	// RequiredCPUs is the minimum logical CPU count to arm the gate.
	RequiredCPUs int `json:"required_cpus"`
	// ThresholdX is the required speedup when armed.
	ThresholdX float64 `json:"threshold_x"`
	// MeasuredX is the measured speedup, recorded whether or not armed.
	MeasuredX float64 `json:"measured_x"`
	// Pass is true when the gate is inactive or the measurement clears it.
	Pass bool `json:"pass"`
}

// Fleet acceptance gates (ISSUE: ≥5× throughput, p99 ≤ 2× single-shard).
const (
	fleetSpeedupTarget = 5.0
	fleetP99Ratio      = 2.0
	workerSpeedupX     = 2.0
	workerSpeedupCPUs  = 4
)

// sweepCacheCap is the deliberately small cache the hit-ratio sweep runs
// against, so growing the working set actually degrades the hit ratio.
const sweepCacheCap = 16

// fleetVariantRHS builds the j-th distinct right-hand side: the same
// smooth family benchRHS draws from, phase-shifted per variant so each
// hashes differently but solves comparably.
func fleetVariantRHS(g *pop.Grid, j int) []float64 {
	b := make([]float64, g.N())
	shift := float64(j)
	for k, ocean := range g.Mask {
		if ocean {
			b[k] = math.Sin(g.TLon[k]/20+shift) * math.Cos(g.TLat[k]/15)
		}
	}
	return b
}

// closedLoop drives clients goroutines at solve for seconds, cycling each
// client through the workload vectors, and returns the measured phase.
func closedLoop(seconds float64, clients int, workload [][]float64,
	solve func(b []float64) error) loadPhase {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []float64
		solves   int64
		failures int64
	)
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var mine []float64
			for i := c; time.Now().Before(deadline); i++ {
				b := workload[i%len(workload)]
				t0 := time.Now()
				if err := solve(b); err != nil {
					atomic.AddInt64(&failures, 1)
					continue
				}
				atomic.AddInt64(&solves, 1)
				mine = append(mine, float64(time.Since(t0).Microseconds())/1e3)
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return loadPhase{
		Clients:      clients,
		DurationSec:  elapsed,
		Solves:       solves,
		Errors:       failures,
		SolvesPerSec: float64(solves) / elapsed,
		LatencyMS:    percentiles(lats),
	}
}

// runFleetBench measures the fleet router against a single-process
// baseline on one box and writes BENCH_fleet.json. The workload cycles
// through `distinct` right-hand sides; every phase pre-warms its
// sessions (and, for the cached phase, the cache) outside the timed
// window so the numbers are steady-state.
func runFleetBench(dir string, seconds float64, clients, workers, distinct int, out io.Writer) error {
	const (
		gridName = "test"
		method   = pop.MethodPCSI
		precond  = pop.PrecondEVP
	)
	g, err := pop.NewGrid(gridName)
	if err != nil {
		return err
	}
	workload := make([][]float64, distinct)
	for j := range workload {
		workload[j] = fleetVariantRHS(g, j)
	}
	workerOpts := pop.ServiceOptions{Cores: 4, MaxSessionsPerKey: 2}
	req := func(b []float64) pop.ServeRequest {
		return pop.ServeRequest{Grid: gridName, Method: method, Precond: precond, B: b}
	}

	// Phase 1: single-process baseline.
	fmt.Fprintf(out, "# fleet: baseline — 1 service, %d clients, %d distinct RHS, %.1fs\n",
		clients, distinct, seconds)
	svc := pop.NewService(workerOpts)
	for _, b := range workload {
		if _, err := svc.Solve(context.Background(), req(b)); err != nil {
			closeService(svc)
			return fmt.Errorf("baseline warm-up: %w", err)
		}
	}
	baseline := closedLoop(seconds, clients, workload, func(b []float64) error {
		_, err := svc.Solve(context.Background(), req(b))
		return err
	})
	baseline.Sessions = int(svc.Snapshot().Sessions)
	closeService(svc)
	fmt.Fprintf(out, "# fleet: baseline %.0f solves/s, p99 %.2fms\n",
		baseline.SolvesPerSec, baseline.LatencyMS.P99)

	// Phase 2: the full fleet (sharding + singleflight + cache).
	cached, err := runFleetPhase("fleet", seconds, clients, workers, 0, workload, workerOpts, req, false, out)
	if err != nil {
		return err
	}

	// Phase 3: honesty — same fleet, cache and dedup off.
	nocache, err := runFleetPhase("fleet_nocache", seconds, clients, workers, 0, workload, workerOpts, req, true, out)
	if err != nil {
		return err
	}

	// Hit-ratio sweep for EXPERIMENTS.md: working set vs a small fixed
	// cache. k ≤ capacity stays in the all-hit regime; k beyond it makes
	// the cycling workload thrash the LRU and throughput falls back toward
	// the dispatch floor.
	var sweep []sweepPoint
	for _, k := range []int{1, 4, 16, 24, 64} {
		wl := make([][]float64, k)
		for j := range wl {
			wl[j] = fleetVariantRHS(g, j)
		}
		p, err := runFleetPhase(fmt.Sprintf("sweep k=%d", k), seconds/2, clients, workers, sweepCacheCap, wl, workerOpts, req, false, out)
		if err != nil {
			return err
		}
		sweep = append(sweep, sweepPoint{DistinctRHS: k, HitRatio: p.HitRatio, SolvesPerSec: p.SolvesPerSec})
	}

	hw := experiments.DetectHardware(0)
	rep := fleetReport{
		Name:          "fleet",
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Hardware:      hw,
		Grid:          gridName,
		Method:        method.String(),
		Precond:       precond.String(),
		Workers:       workers,
		DistinctRHS:   distinct,
		Baseline:      baseline,
		Fleet:         cached,
		FleetNoCach:   nocache,
		SweepCacheCap: sweepCacheCap,
		Sweep:         sweep,
		SpeedupX:      cached.SolvesPerSec / baseline.SolvesPerSec,
	}
	if baseline.LatencyMS.P99 > 0 {
		rep.P99RatioX = cached.LatencyMS.P99 / baseline.LatencyMS.P99
	}
	rep.TargetOK = rep.SpeedupX >= fleetSpeedupTarget && rep.P99RatioX <= fleetP99Ratio
	rep.WorkerSpeedup = speedupGate{
		Active:       hw.NumCPU >= workerSpeedupCPUs,
		RequiredCPUs: workerSpeedupCPUs,
		ThresholdX:   workerSpeedupX,
		MeasuredX:    nocache.SolvesPerSec / baseline.SolvesPerSec,
	}
	rep.WorkerSpeedup.Pass = !rep.WorkerSpeedup.Active ||
		rep.WorkerSpeedup.MeasuredX >= rep.WorkerSpeedup.ThresholdX

	fmt.Fprintf(out, "# fleet: speedup %.1fx (gate ≥%.0fx), p99 ratio %.2fx (gate ≤%.0fx), dispatch-only %.2fx (4-worker gate %s)\n",
		rep.SpeedupX, fleetSpeedupTarget, rep.P99RatioX, fleetP99Ratio,
		rep.WorkerSpeedup.MeasuredX, gateState(rep.WorkerSpeedup))

	path := filepath.Join(dir, "BENCH_fleet.json")
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "# fleet: report %s\n", path)

	if !rep.TargetOK {
		return fmt.Errorf("fleet: speedup %.1fx / p99 ratio %.2fx missed the gates (≥%.0fx, ≤%.0fx)",
			rep.SpeedupX, rep.P99RatioX, fleetSpeedupTarget, fleetP99Ratio)
	}
	if !rep.WorkerSpeedup.Pass {
		return fmt.Errorf("fleet: dispatch-only speedup %.2fx below %.1fx at %d workers",
			rep.WorkerSpeedup.MeasuredX, workerSpeedupX, workers)
	}
	return nil
}

// runFleetPhase builds a fresh fleet, warms every workload vector through
// it (populating sessions, and the cache unless disabled), runs the closed
// loop, and returns the phase with router counters attached.
func runFleetPhase(label string, seconds float64, clients, workers, cacheCap int,
	workload [][]float64, workerOpts pop.ServiceOptions,
	req func([]float64) pop.ServeRequest, noCache bool, out io.Writer) (fleetPhase, error) {
	opts := pop.FleetOptions{Workers: workers, Worker: workerOpts, CacheCapacity: cacheCap}
	if noCache {
		opts.CacheCapacity = -1
		opts.DisableDedup = true
	}
	flt, err := pop.NewFleet(opts)
	if err != nil {
		return fleetPhase{}, err
	}
	defer closeFleetBench(flt)
	for _, b := range workload {
		if _, err := flt.Solve(context.Background(), pop.FleetRequest{Request: req(b)}); err != nil {
			return fleetPhase{}, fmt.Errorf("%s warm-up: %w", label, err)
		}
	}
	warmStats := flt.Stats(context.Background())
	load := closedLoop(seconds, clients, workload, func(b []float64) error {
		_, err := flt.Solve(context.Background(), pop.FleetRequest{Request: req(b)})
		return err
	})
	stats := flt.Stats(context.Background())
	load.Sessions = int(stats.Totals.Sessions)
	load.Batches = stats.Totals.Batches
	if load.Batches > 0 {
		load.MeanBatch = float64(stats.Totals.Solves) / float64(load.Batches)
	}
	p := fleetPhase{
		loadPhase:   load,
		CacheHits:   stats.Fleet.CacheHits - warmStats.Fleet.CacheHits,
		CacheMisses: stats.Fleet.CacheMisses - warmStats.Fleet.CacheMisses,
		Deduped:     stats.Fleet.Deduped - warmStats.Fleet.Deduped,
	}
	if total := p.CacheHits + p.CacheMisses + p.Deduped; total > 0 {
		p.HitRatio = float64(p.CacheHits) / float64(total)
	}
	fmt.Fprintf(out, "# fleet: %s — %.0f solves/s, p99 %.2fms, hit ratio %.3f (%d workers)\n",
		label, load.SolvesPerSec, load.LatencyMS.P99, p.HitRatio, workers)
	return p, nil
}

// gateState renders a speedup gate's disposition for the console line.
func gateState(gate speedupGate) string {
	if !gate.Active {
		return fmt.Sprintf("inactive: host has <%d CPUs", gate.RequiredCPUs)
	}
	if gate.Pass {
		return "pass"
	}
	return "FAIL"
}

// closeFleetBench drains a benchmark fleet.
func closeFleetBench(flt *pop.Fleet) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := flt.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: fleet drain: %v\n", err)
	}
}
