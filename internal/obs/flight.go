package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FlightRecorder is the serving layer's black box: an always-on bounded ring
// of recent request span summaries that costs one mutexed struct copy per
// request and is dumped to disk automatically when something goes wrong — a
// fault recovery beyond budget, a circuit breaker opening, a latency-SLO
// breach. The dump carries the offending request's record and rank-level
// spans, the recent-request ring (the context leading up to the incident),
// and a metrics snapshot, so a post-hoc diagnosis never depends on having
// had verbose tracing enabled before the incident.
//
// A nil *FlightRecorder is a valid disabled recorder: every method is a
// nil-safe no-op.
type FlightRecorder struct {
	mu     sync.Mutex
	ring   []RequestRecord
	next   int
	total  int64
	dir    string
	maxDmp int
	dumps  int64
	capped int64 // dumps suppressed by the cap
}

// DefaultFlightRing is the ring capacity when NewFlightRecorder is given ≤ 0.
const DefaultFlightRing = 256

// DefaultFlightDumps caps how many incident files one recorder writes
// (incident storms must not fill the disk); later triggers still count via
// Dumps() but write nothing.
const DefaultFlightDumps = 16

// NewFlightRecorder builds a recorder retaining the last capacity request
// records. dir is where incident dumps are written; an empty dir keeps the
// recorder purely in-memory (triggers are counted, Recent() works, no files).
func NewFlightRecorder(capacity int, dir string) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRing
	}
	return &FlightRecorder{
		ring:   make([]RequestRecord, capacity),
		dir:    dir,
		maxDmp: DefaultFlightDumps,
	}
}

// Note records one finished request's span summary into the ring,
// overwriting the oldest when full. Safe for concurrent use.
func (f *FlightRecorder) Note(rec RequestRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = rec
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
	f.total++
	f.mu.Unlock()
}

// Recent returns the retained request records, oldest first.
func (f *FlightRecorder) Recent() []RequestRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.total
	if n > int64(len(f.ring)) {
		n = int64(len(f.ring))
	}
	out := make([]RequestRecord, 0, n)
	if f.total > int64(len(f.ring)) {
		out = append(out, f.ring[f.next:]...)
	}
	return append(out, f.ring[:f.next]...)
}

// Dumps returns how many incident triggers fired (including any suppressed
// by the dump cap).
func (f *FlightRecorder) Dumps() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// FlightDump is the JSON document one incident dump file holds.
type FlightDump struct {
	// Reason names the trigger: "fault_recovery", "circuit_open",
	// "slo_breach".
	Reason string `json:"reason"`
	// Offending is the request that fired the trigger.
	Offending RequestRecord `json:"offending"`
	// Events are the offending request's rank-level spans (every retained
	// event stamped with its trace ID), when a tracer was attached.
	Events []Event `json:"events,omitempty"`
	// Recent is the ring at trigger time, oldest first — the requests
	// leading up to the incident.
	Recent []RequestRecord `json:"recent"`
	// Metrics is a Prometheus text-exposition snapshot at trigger time.
	Metrics string `json:"metrics,omitempty"`
}

// Dump records an incident: it snapshots the ring, bundles the offending
// request's record and spans plus a metrics snapshot from reg (both
// optional), and writes the bundle to the recorder's dump directory as
// flight-NNN-<reason>.json. It returns the file path, or "" when no file
// was written (no dump directory, or the dump cap was reached — the trigger
// is still counted). A nil recorder is a no-op.
func (f *FlightRecorder) Dump(reason string, offending RequestRecord, events []Event, reg *Registry) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	f.dumps++
	seq := f.dumps
	dir := f.dir
	write := dir != "" && seq <= int64(f.maxDmp)
	if !write {
		f.capped++
	}
	// Snapshot the ring under the lock; render and write outside it.
	n := f.total
	if n > int64(len(f.ring)) {
		n = int64(len(f.ring))
	}
	recent := make([]RequestRecord, 0, n)
	if f.total > int64(len(f.ring)) {
		recent = append(recent, f.ring[f.next:]...)
	}
	recent = append(recent, f.ring[:f.next]...)
	f.mu.Unlock()

	if !write {
		return "", nil
	}
	dump := FlightDump{Reason: reason, Offending: offending, Events: events, Recent: recent}
	if reg != nil {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err == nil {
			dump.Metrics = sb.String()
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%03d-%s.json", seq, sanitizeReason(reason)))
	raw, err := json.MarshalIndent(dump, "", " ")
	if err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	return path, nil
}

// sanitizeReason maps a trigger reason to a filename-safe slug.
func sanitizeReason(reason string) string {
	var sb strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "incident"
	}
	return sb.String()
}
