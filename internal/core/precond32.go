package core

// Float32 preconditioner applications for the mixed-precision inner
// solvers. Each builtin implements the optional Preconditioner32 interface;
// Setup type-asserts it when Options.Precision is Float32.
//
// Two of the four sweeps are genuinely single-precision (identity, diagonal
// — both pure streaming, so float32 halves their memory traffic). The two
// block solvers keep float64 cores behind float32 I/O: EVP marching
// amplifies round-off by up to maxMarchGrowth ≈ 1e4 (see evp's package
// doc), and 1e4·ε₃₂ ≈ 1e-3 would leave the preconditioner too inexact for
// the inner tolerance — the marching recurrence itself must stay double.
// Dense LU is kept double for the same backward-stability reason (and its
// triangular solves are flop-bound, not bandwidth-bound, so float32 would
// buy little). The float32 payoff for the block preconditioners is in the
// vectors, halos, and stencil sweeps around them, not inside the block
// solves.

// Preconditioner32 is the optional single-precision application a
// Preconditioner may offer: dst = M⁻¹·src on the interior with float32
// fields. All builtin preconditioners implement it; the flop charge is
// ApplyFlops (the cost model prices flops, not formats).
type Preconditioner32 interface {
	Apply32(dst, src []float32)
}

// Apply32 copies the interior (identity in float32).
//
//pop:hotpath
func (p *identityPrecond) Apply32(dst, src []float32) {
	nx := p.loc.NxP
	h := p.loc.H
	for j := h; j < p.loc.NyP-h; j++ {
		copy(dst[j*nx+h:(j+1)*nx-h], src[j*nx+h:(j+1)*nx-h])
	}
}

// Apply32 divides by the operator diagonal in float32, using the
// pre-narrowed reciprocal table so the sweep reads 4-byte operands only.
//
//pop:hotpath
func (p *diagPrecond) Apply32(dst, src []float32) {
	nx := p.loc.NxP
	h := p.loc.H
	for j := h; j < p.loc.NyP-h; j++ {
		base := j * nx
		for i := h; i < nx-h; i++ {
			dst[base+i] = src[base+i] * p.inv32[base+i]
		}
	}
}

// Apply32 runs the block-EVP sweep with float32 field I/O around the
// float64 marching core: masked gather widens src into the extended-domain
// scratch, the exact same BlockSolver.Solve runs in double, and the masked
// scatter narrows the result. See the package comment above for why the
// marching stays double.
//
//pop:hotpath
func (p *evpPrecond) Apply32(dst, src []float32) {
	loc := p.loc
	nxp, h := loc.NxP, loc.H
	for j := h; j < loc.NyP-h; j++ {
		copy(dst[j*nxp+h:(j+1)*nxp-h], src[j*nxp+h:(j+1)*nxp-h])
	}
	for si, sb := range p.subs {
		sol := p.solvers[si]
		if sol == nil {
			continue
		}
		exw := sb.nx + 2
		psi := p.psi[:exw*(sb.ny+2)]
		x := p.x[:exw*(sb.ny+2)]
		for i := range psi {
			psi[i] = 0
		}
		for j := 0; j < sb.ny; j++ {
			lbase := (sb.y0 + h + j) * nxp
			ebase := (j + 1) * exw
			for i := 0; i < sb.nx; i++ {
				lk := lbase + sb.x0 + h + i
				if loc.Mask[lk] {
					psi[ebase+1+i] = float64(src[lk])
				}
			}
		}
		sol.Solve(x, psi)
		for j := 0; j < sb.ny; j++ {
			lbase := (sb.y0 + h + j) * nxp
			ebase := (j + 1) * exw
			for i := 0; i < sb.nx; i++ {
				lk := lbase + sb.x0 + h + i
				if loc.Mask[lk] {
					dst[lk] = float32(x[ebase+1+i])
				}
			}
		}
	}
}

// Apply32 runs the dense block-LU sweep with float32 I/O around the float64
// triangular solves, widening through the existing buf scratch.
//
//pop:hotpath
func (p *bluPrecond) Apply32(dst, src []float32) {
	loc := p.loc
	nxp, h := loc.NxP, loc.H
	for si, sb := range p.subs {
		buf := p.buf[:sb.nx*sb.ny]
		for j := 0; j < sb.ny; j++ {
			lbase := (sb.y0+h+j)*nxp + sb.x0 + h
			for i := 0; i < sb.nx; i++ {
				buf[j*sb.nx+i] = float64(src[lbase+i])
			}
		}
		p.lus[si].Solve(buf)
		for j := 0; j < sb.ny; j++ {
			lbase := (sb.y0+h+j)*nxp + sb.x0 + h
			for i := 0; i < sb.nx; i++ {
				dst[lbase+i] = float32(buf[j*sb.nx+i])
			}
		}
	}
}
