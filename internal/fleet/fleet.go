// Package fleet is the sharded serving layer: N solve workers behind a
// router that consistent-hashes requests onto shards, deduplicates
// concurrent identical solves, and replays completed solves from a
// content-addressed result cache.
//
// The paper's diagnosis — a barotropic solver stops scaling when one
// execution context saturates — has a serving-layer analog: one popserver
// process tops out when its session pools and GOMAXPROCS are spent.
// The fleet multiplies that ceiling the way the paper multiplies ranks:
// shard the keyspace so each worker keeps its own warm session pools
// (consistent hashing on the canonical pool key, so "csi" and "pcsi/none"
// land together exactly as they share a pool), and exploit determinism —
// the property every layer of this repo defends — to make completed solves
// reusable: identical inputs produce bitwise-identical outputs, so a cache
// hit IS the solve.
//
// Three layers answer a request, cheapest first:
//
//  1. The result cache (content hash of grid, method, precond, precision,
//     s-step block size, tolerance, RHS bits, x0 bits) replays a finished
//     solve bitwise.
//  2. Singleflight collapses requests identical to one already in flight:
//     followers wait for the leader's solve instead of duplicating it.
//  3. The ring routes the miss to its home shard; a shed (overload, open
//     circuit) fails over to the next distinct shard clockwise.
//
// Workers are serve.Services — each with its own queues, batching, circuit
// breakers, retry budgets and flight recorder — either in-process
// (LocalWorker) or remote popservers spoken to in the compact binary frame
// (HTTPWorker).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Options configures a Fleet.
type Options struct {
	// Workers is the local worker count (ignored when Remotes is set);
	// default 2.
	Workers int
	// Remotes lists remote popserver base URLs; when non-empty the fleet
	// routes to them instead of building local workers.
	Remotes []string
	// Worker configures each local worker's serve.Service. The Registry
	// field is ignored: every worker gets a private registry, because obs
	// counters dedupe by name and shared registries would silently merge
	// worker counters.
	Worker serve.Options

	// CacheCapacity bounds the result cache (entries); 0 = 4096, negative
	// disables caching.
	CacheCapacity int
	// CacheTTL bounds entry lifetime; 0 = 10 minutes, negative = no expiry.
	CacheTTL time.Duration
	// Clock overrides the cache's time source (tests); nil = time.Now.
	Clock func() time.Time
	// DisableDedup turns off singleflight collapsing (benchmark honesty
	// switch; production fleets leave it on).
	DisableDedup bool

	// Registry receives the fleet_* router metrics; nil creates a private
	// one. Worker metrics live in each worker's own registry.
	Registry *obs.Registry
	// FlightRing sizes the router's flight recorder (records for requests
	// answered without dispatching to a worker); 0 = obs.DefaultFlightRing.
	FlightRing int
}

// Request is one fleet solve submission: a serve request plus router
// directives.
type Request struct {
	// Request is the underlying solve request.
	serve.Request
	// NoCache bypasses the result cache for this request (the completed
	// solve still populates it).
	NoCache bool
}

// Response is one completed fleet solve.
type Response struct {
	// Response is the worker-level response (Result, X, TraceID).
	serve.Response
	// Cache reports how the router satisfied the request: "hit", "miss",
	// or "dedup".
	Cache string
	// Shard is the worker that ran the solve (-1 for cache hits — no
	// worker was consulted).
	Shard int
}

// Fleet is the router. Create with New, submit with Solve from any number
// of goroutines, stop with Close.
type Fleet struct {
	opts    Options
	workers []Worker
	ring    *ring
	cache   *resultCache
	group   *flightGroup
	flight  *obs.FlightRecorder
	tol     float64
	m       fleetMetrics
}

type fleetMetrics struct {
	requests  *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	deduped   *obs.Counter
	failovers *obs.Counter
	errors    *obs.Counter
	routerLat *obs.Histogram
}

// New builds a fleet: local workers (Options.Workers services with private
// registries) or remote ones (Options.Remotes), the hash ring over them,
// and the cache/dedup layers.
func New(opts Options) (*Fleet, error) {
	if len(opts.Remotes) == 0 && opts.Workers == 0 {
		opts.Workers = 2
	}
	var workers []Worker
	if len(opts.Remotes) > 0 {
		for _, base := range opts.Remotes {
			workers = append(workers, NewHTTPWorker(base, nil))
		}
	} else {
		for i := 0; i < opts.Workers; i++ {
			wo := opts.Worker
			wo.Registry = nil // private per worker — see Options.Worker
			workers = append(workers, NewLocalWorker(serve.New(wo)))
		}
	}

	capacity := opts.CacheCapacity
	switch {
	case capacity == 0:
		capacity = 4096
	case capacity < 0:
		capacity = 0
	}
	ttl := opts.CacheTTL
	switch {
	case ttl == 0:
		ttl = 10 * time.Minute
	case ttl < 0:
		ttl = 0
	}
	tol := opts.Worker.Solver.Tol
	if tol == 0 {
		tol = 1e-13 // core.Options default; keep the hash honest about it
	}

	r := opts.Registry
	if r == nil {
		r = obs.NewRegistry()
	}
	f := &Fleet{
		opts:    opts,
		workers: workers,
		ring:    newRing(len(workers)),
		cache:   newResultCache(capacity, ttl, opts.Clock),
		group:   newFlightGroup(),
		flight:  obs.NewFlightRecorder(opts.FlightRing, ""),
		tol:     tol,
		m: fleetMetrics{
			requests:  r.Counter("fleet_requests_total", "requests entering the router"),
			hits:      r.Counter("fleet_cache_hits_total", "requests answered from the result cache"),
			misses:    r.Counter("fleet_cache_misses_total", "requests dispatched to a worker"),
			deduped:   r.Counter("fleet_deduped_total", "requests collapsed onto an in-flight identical solve"),
			failovers: r.Counter("fleet_failovers_total", "requests re-routed after a shed on their home shard"),
			errors:    r.Counter("fleet_errors_total", "requests leaving the router with an error"),
			routerLat: r.Histogram("fleet_router_seconds", "router time before dispatch or cache reply",
				[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1}),
		},
	}
	return f, nil
}

// Solve routes one request: cache, then singleflight, then the ring.
// Responses are bitwise identical to a direct core solve of the same
// request — on miss because workers are deterministic, on hit because the
// cache replays the stored bits, on dedup because followers share the
// leader's solve.
func (f *Fleet) Solve(ctx context.Context, req Request) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	f.m.requests.Inc()
	traceID := obs.TraceIDFromContext(ctx)
	if traceID == 0 {
		traceID = obs.NewTraceID()
		ctx = obs.ContextWithTraceID(ctx, traceID)
	}

	key, err := serve.NormalizeRequest(req.Request)
	if err != nil {
		f.m.errors.Inc()
		return Response{Shard: -1}, err
	}
	hash := api.HashSolve(key.Grid, key.Method, key.Precond, key.Precision, key.SStep, f.tol, req.B, req.X0)

	if f.cache.cap > 0 && !req.NoCache {
		if res, x, ok := f.cache.get(hash); ok {
			f.m.hits.Inc()
			f.m.routerLat.Observe(time.Since(start).Seconds())
			f.noteRouterRecord(traceID, key, start, "hit", "")
			return Response{
				Response: serve.Response{Result: res, X: x, TraceID: traceID},
				Cache:    "hit",
				Shard:    -1,
			}, nil
		}
	}

	dispatch := func() (dispatched, error) {
		return f.dispatch(ctx, key, req.Request)
	}
	var out dispatched
	var shared bool
	if f.opts.DisableDedup {
		out, err = dispatch()
	} else {
		out, err, shared = f.group.do(ctx, hash, dispatch)
	}
	if err != nil {
		f.m.errors.Inc()
		f.noteRouterRecord(traceID, key, start, "", err.Error())
		return Response{Shard: -1}, err
	}

	state := "miss"
	if shared {
		state = "dedup"
		f.m.deduped.Inc()
		// Followers share the leader's backing arrays; give this caller its
		// own copy, like every other path does.
		x := make([]float64, len(out.resp.X))
		copy(x, out.resp.X)
		out.resp.X = x
		out.resp.TraceID = traceID
	} else {
		f.m.misses.Inc()
		f.cache.put(hash, out.resp.Result, out.resp.X)
	}
	return Response{Response: out.resp, Cache: state, Shard: out.shard}, nil
}

// dispatch sends the request to its home shard, failing over clockwise on
// sheds (full queue, open circuit) so a struggling shard degrades into
// spillover instead of errors.
func (f *Fleet) dispatch(ctx context.Context, key serve.Key, req serve.Request) (dispatched, error) {
	order := f.ring.successors(key.String())
	var lastErr error
	for i, shard := range order {
		if i > 0 {
			f.m.failovers.Inc()
		}
		resp, err := f.workers[shard].Solve(ctx, req)
		if err == nil {
			return dispatched{resp: resp, shard: shard}, nil
		}
		lastErr = err
		if !errors.Is(err, serve.ErrOverloaded) && !errors.Is(err, serve.ErrCircuitOpen) {
			return dispatched{}, err
		}
	}
	return dispatched{}, fmt.Errorf("fleet: all %d shards shed the request: %w", len(order), lastErr)
}

// noteRouterRecord files a flight record for a request the router answered
// (or rejected) without dispatching to a worker. Dispatched requests are
// deliberately NOT recorded here — the worker's own flight recorder has
// their full phase breakdown, and double records would double-count in
// poptrace aggregates.
func (f *Fleet) noteRouterRecord(traceID uint64, key serve.Key, start time.Time, cache, errStr string) {
	total := time.Since(start).Nanoseconds()
	f.flight.Note(obs.RequestRecord{
		TraceID:     traceID,
		Key:         key.String(),
		Session:     -1,
		Shard:       -1,
		Cache:       cache,
		StartUnixNS: start.UnixNano(),
		RouterNS:    total,
		TotalNS:     total,
		Converged:   cache == "hit",
		Error:       errStr,
	})
}

// Stats assembles the fleet-wide /v1/stats view: router counters, one row
// per worker, and the summed totals.
func (f *Fleet) Stats(ctx context.Context) api.StatsResponse {
	if ctx == nil {
		ctx = context.Background()
	}
	cs := f.cache.stats()
	fc := &api.FleetCounters{
		Requests:         f.m.requests.Value(),
		CacheHits:        f.m.hits.Value(),
		CacheMisses:      f.m.misses.Value(),
		Deduped:          f.m.deduped.Value(),
		Failovers:        f.m.failovers.Value(),
		Errors:           f.m.errors.Value(),
		CacheEntries:     cs.entries,
		CacheEvictions:   cs.evictions,
		CacheExpirations: cs.expirations,
	}
	out := api.StatsResponse{Fleet: fc}
	gridSet := make(map[string]bool)
	for i, w := range f.workers {
		row := api.WorkerStats{Worker: i, Addr: w.Addr(), Healthy: true}
		counters, grids, err := w.Counters(ctx)
		if err != nil {
			row.Healthy = false
		} else {
			row.Counters = counters
			for _, g := range grids {
				gridSet[g] = true
			}
		}
		out.Workers = append(out.Workers, row)
		out.Totals.Add(row.Counters)
	}
	for g := range gridSet {
		out.Grids = append(out.Grids, g)
	}
	sort.Strings(out.Grids)
	return out
}

// Flight returns the router's flight recorder (records for requests that
// never reached a worker).
func (f *Fleet) Flight() *obs.FlightRecorder { return f.flight }

// FlightRecords merges the fleet's flight-recorder view: the router's own
// records plus every local worker's, with worker records stamped with their
// shard. Remote workers keep their recorders in their own processes.
func (f *Fleet) FlightRecords() []obs.RequestRecord {
	recs := append([]obs.RequestRecord(nil), f.flight.Recent()...)
	for i, wk := range f.workers {
		lw, ok := wk.(*LocalWorker)
		if !ok {
			continue
		}
		for _, rec := range lw.Service().Flight().Recent() {
			if rec.Shard < 0 {
				rec.Shard = i
			}
			recs = append(recs, rec)
		}
	}
	return recs
}

// workerPIDStride separates worker track PIDs in the merged Perfetto
// export: worker i's session s renders as PID i*stride + s + 1.
const workerPIDStride = 1000

// WritePerfetto merges every local worker's rank-level tracks and request
// records with the router's own records into one fleet-wide Chrome trace:
// worker i's tracks are re-homed to PID i*workerPIDStride + session and
// prefixed "worker i", and worker records get their shard stamped so
// poptrace's shard rollup works across the fleet. Remote workers keep
// their traces on their own processes and contribute nothing here.
func (f *Fleet) WritePerfetto(w io.Writer) error {
	var tracks []obs.Track
	var dropped int64
	for i, wk := range f.workers {
		lw, ok := wk.(*LocalWorker)
		if !ok {
			continue
		}
		ts, d := lw.Service().ExportTracks()
		dropped += d
		for _, t := range ts {
			t.PID = i*workerPIDStride + t.PID
			t.Process = fmt.Sprintf("worker %d %s", i, t.Process)
			tracks = append(tracks, t)
		}
	}
	return obs.WritePerfetto(w, tracks, f.FlightRecords(), dropped)
}

// Workers returns the fleet's workers in shard order (read-only; exposed
// for stats endpoints and trace export).
func (f *Fleet) Workers() []Worker { return f.workers }

// HomeShard returns the shard a request's canonical key routes to —
// useful for tests and for stamping responses.
func (f *Fleet) HomeShard(req serve.Request) (int, error) {
	key, err := serve.NormalizeRequest(req)
	if err != nil {
		return -1, err
	}
	return f.ring.lookup(key.String()), nil
}

// Close drains every worker. Local workers finish queued solves; remote
// workers are left running (their processes own their lifecycle).
func (f *Fleet) Close(ctx context.Context) error {
	var firstErr error
	for _, w := range f.workers {
		if err := w.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
