// Package hotpath exercises the hotpathalloc analyzer: every allocation
// shape inside a //pop:hotpath function is diagnosed; the cap-guarded
// amortized-growth idiom, constant interface data, and unannotated
// functions are not.
package hotpath

import "fmt"

func sink(v any) { _ = v }

type point struct{ x, y float64 }

// badMake allocates a fresh slice per call.
//
//pop:hotpath
func badMake(n int) []float64 {
	return make([]float64, n) // want `make in hot path`
}

// badAppend may grow its destination.
//
//pop:hotpath
func badAppend(dst []float64, v float64) []float64 {
	return append(dst, v) // want `append in hot path`
}

// badNew heap-allocates a point.
//
//pop:hotpath
func badNew() *point {
	return new(point) // want `new in hot path`
}

// badFmt formats inside the iteration.
//
//pop:hotpath
func badFmt(x float64) string {
	return fmt.Sprintf("%v", x) // want `fmt.Sprintf in hot path`
}

// badBox converts a float into an interface.
//
//pop:hotpath
func badBox(x float64) {
	sink(x) // want `boxes a float64 into an interface`
}

// badClosure captures its parameter.
//
//pop:hotpath
func badClosure(xs []float64) func() {
	return func() { xs[0] = 1 } // want `capturing closure`
}

// badConcat builds a string.
//
//pop:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation`
}

// badSliceLit allocates a backing array.
//
//pop:hotpath
func badSliceLit() []int {
	return []int{1, 2} // want `slice literal`
}

// badMapLit allocates a map.
//
//pop:hotpath
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal`
}

// badPtrLit escapes a composite to the heap.
//
//pop:hotpath
func badPtrLit() *point {
	return &point{} // want `&composite-literal`
}

// goodGrow is the sanctioned amortized-growth idiom: the make runs only on
// first use, never in the steady state.
//
//pop:hotpath
func goodGrow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// goodKernel is a pure in-place update.
//
//pop:hotpath
func goodKernel(dst, src []float64, a float64) {
	for i := range dst {
		dst[i] += a * src[i]
	}
}

// goodConstBox passes a constant: static interface data, no allocation.
//
//pop:hotpath
func goodConstBox() {
	sink("steady")
}

// coldPath is unannotated: anything goes.
func coldPath(n int) []float64 {
	return make([]float64, n)
}
