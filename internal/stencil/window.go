package stencil

import "repro/internal/grid"

// Row returns the nine stencil coefficients of padded point (i,j) in the
// order [SW, S, SE, W, C, E, NW, N, NE]. The point must not lie on the
// outermost padded ring (every Local has H ≥ 1, so all interior points and
// the first halo ring are valid).
func (l *Local) Row(i, j int) [9]float64 {
	nx := l.NxP
	k := j*nx + i
	return [9]float64{
		l.ANE[k-nx-1], l.AN[k-nx], l.ANE[k-nx],
		l.AE[k-1], l.AC[k], l.AE[k],
		l.ANE[k-1], l.AN[k], l.ANE[k],
	}
}

// AssembleWindowFilled builds the nine-point operator on the window
// [x0, x0+nx) × [y0, y0+ny) of grid g — padded with a one-point ring — as if
// every grid point were ocean with depth at least fill: land depths are
// raised to fill and out-of-range metric/depth lookups clamp to the nearest
// in-range point.
//
// This is the operator the block-EVP preconditioner marches on. Marching
// requires a nonzero north-east corner coefficient at every point, which the
// true operator cannot provide near coastlines (dry corners zero the
// coupling). Filling restores wet corners everywhere while leaving the
// operator identical to the true one wherever all involved cells are ocean
// deeper than fill, so the preconditioner stays a close SPD approximation of
// the true block (the application layer masks land points back to identity
// rows). fill must be positive and at most the grid's minimum wet depth for
// the "identical away from land" property to hold exactly.
func AssembleWindowFilled(g *grid.Grid, phi float64, x0, y0, nx, ny int, fill float64) *Local {
	nxp, nyp := nx+2, ny+2
	l := &Local{
		NxP: nxp, NyP: nyp, H: 1,
		AC:   make([]float64, nxp*nyp),
		AN:   make([]float64, nxp*nyp),
		AE:   make([]float64, nxp*nyp),
		ANE:  make([]float64, nxp*nyp),
		Mask: make([]bool, nxp*nyp),
	}
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	ht := func(gi, gj int) float64 {
		h := g.HT[g.Idx(clamp(gi, 0, g.Nx-1), clamp(gj, 0, g.Ny-1))]
		if h < fill {
			return fill
		}
		return h
	}
	// Mass term everywhere (the filled grid has no land rows).
	for j := 0; j < nyp; j++ {
		gj := clamp(y0-1+j, 0, g.Ny-1)
		for i := 0; i < nxp; i++ {
			gi := clamp(x0-1+i, 0, g.Nx-1)
			k := j*nxp + i
			l.AC[k] = phi * g.TAREA[g.Idx(gi, gj)]
			l.Mask[k] = true
		}
	}
	// Corner elements over corners (i,j) .. one ring beyond the window so
	// the padded ring gets its couplings too. Corner local index (i,j) is
	// the NE corner of padded point (i,j).
	for j := 0; j < nyp-1; j++ {
		gj := y0 - 1 + j
		for i := 0; i < nxp-1; i++ {
			gi := x0 - 1 + i
			h := ht(gi, gj)
			for _, d := range [3][2]int{{1, 0}, {0, 1}, {1, 1}} {
				if hh := ht(gi+d[0], gj+d[1]); hh < h {
					h = hh
				}
			}
			km := g.Idx(clamp(gi, 0, g.Nx-1), clamp(gj, 0, g.Ny-1))
			dx, dy := g.DXU[km], g.DYU[km]
			w := h * g.UAREA[km]
			kx := 1 / (4 * dx * dx)
			ky := 1 / (4 * dy * dy)
			diag := w * (kx + ky)
			ew := w * (ky - kx)
			ns := w * (kx - ky)
			di := -w * (kx + ky)

			k := j*nxp + i
			kE, kN, kNE := k+1, k+nxp, k+nxp+1
			l.AC[k] += diag
			l.AC[kE] += diag
			l.AC[kN] += diag
			l.AC[kNE] += diag
			l.AE[k] += ew
			l.AE[kN] += ew
			l.AN[k] += ns
			l.AN[kE] += ns
			l.ANE[k] += di
		}
	}
	return l
}
