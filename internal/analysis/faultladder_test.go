package analysis_test

import (
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

// TestFaultLadder covers the three states a Method constant can be in:
// referenced by SolveResilient (clean), annotated //pop:noresilient
// (clean), and neither (diagnosed) — the MethodSStep gap class.
func TestFaultLadder(t *testing.T) {
	analyzertest.Run(t, "testdata/faultladder", poplint.FaultLadder, "repro/internal/core")
}
