// Package serve exercises the typederr analyzer inside one of its scoped
// package paths: in-function errors.New and unwrapped fmt.Errorf are
// diagnosed; package-level sentinels, %w wrapping, and dynamic formats are
// not.
package serve

import (
	"errors"
	"fmt"
)

// ErrOverload is a package-level sentinel: the sanctioned errors.New form.
var ErrOverload = errors.New("overloaded")

func badNew() error {
	return errors.New("transient hiccup") // want `errors.New inside badNew`
}

func badErrorf(n int) error {
	return fmt.Errorf("bad size %d", n) // want `fmt.Errorf without %w`
}

func goodWrapCause(err error) error {
	return fmt.Errorf("serve: request failed: %w", err)
}

func goodWrapSentinel() error {
	return fmt.Errorf("serve: queue full: %w", ErrOverload)
}

func goodDynamicFormat(format string, n int) error {
	return fmt.Errorf(format, n) // non-constant format: nothing to check
}

func suppressed() error {
	//poplint:ignore typederr boundary message intentionally opaque to callers
	return errors.New("opaque")
}
