// Command popmodel integrates the barotropic ocean model and prints
// periodic diagnostics (kinetic energy, SSH extrema, solver iterations).
//
//	popmodel -grid test -days 30 -solver pcsi -precond evp
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
)

func main() {
	var (
		gridName   = flag.String("grid", "test", "grid preset: test, 1deg, 0.1deg-scaled")
		days       = flag.Float64("days", 10, "simulated days")
		dt         = flag.Float64("dt", 2400, "time step (s)")
		solver     = flag.String("solver", "chrongear", "barotropic solver: chrongear, pcg, pcsi, sstep")
		precond    = flag.String("precond", "diagonal", "preconditioner: diagonal, evp, none, blocklu")
		sstep      = flag.Int("sstep", 0, "s-step block size for -solver sstep (0 = default 4)")
		every      = flag.Float64("report", 1, "report interval (days)")
		threads    = flag.Int("threads", 0, "worker shards: max virtual ranks running concurrently (0 = GOMAXPROCS)")
		traceOut   = flag.String("trace", "", "write JSONL span/event trace to this file")
		metricsOut = flag.String("metrics", "", "write Prometheus-style metrics to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	)
	flag.Parse()
	obs.ServePprof(*pprofAddr)

	g, err := pop.NewGrid(*gridName)
	fatalIf(err)

	pc, err := core.ParsePrecond(*precond)
	fatalIf(err)

	m, err := pop.NewModel(pop.ModelConfig{
		Grid:       g,
		Dt:         *dt,
		Solver:     model.SolverName(*solver),
		SolverOpts: core.Options{Precond: pc, SStep: *sstep},
		Threads:    *threads,
	})
	fatalIf(err)

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.DefaultCapacity)
		m.Sess.W.Tracer = tracer
	}

	stepsPerReport := int(*every * 86400 / *dt)
	totalSteps := int(*days * 86400 / *dt)
	fmt.Printf("grid %s (%d×%d), dt=%.0fs, %d steps, solver %s+%s\n",
		g.Name, g.Nx, g.Ny, *dt, totalSteps, *solver, *precond)

	for done := 0; done < totalSteps; {
		n := stepsPerReport
		if done+n > totalSteps {
			n = totalSteps - done
		}
		fatalIf(m.Run(n))
		done += n
		var etaMin, etaMax float64
		for k, ocean := range g.Mask {
			if ocean {
				etaMin = math.Min(etaMin, m.Eta[k])
				etaMax = math.Max(etaMax, m.Eta[k])
			}
		}
		iters := m.IterHistory[len(m.IterHistory)-1]
		fmt.Printf("day %6.2f  KE=%.4e  ssh=[%+.3f,%+.3f] m  mean_ssh=%+.2e  iters=%d\n",
			float64(done)**dt/86400, m.KineticEnergy(), etaMin, etaMax, m.MeanSSH(), iters)
	}

	if tracer != nil {
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "popmodel: trace ring dropped %d events (oldest lost)\n", d)
		}
		fatalIf(obs.DumpTrace(tracer, *traceOut))
		fmt.Printf("trace: %s\n", *traceOut)
	}
	if *metricsOut != "" {
		reg := obs.NewRegistry()
		reg.Counter("popmodel_steps_total", "model time steps integrated").Add(int64(totalSteps))
		var iterSum int64
		for _, it := range m.IterHistory {
			iterSum += int64(it)
		}
		reg.Counter("popmodel_solver_iterations_total", "barotropic solver iterations across steps").Add(iterSum)
		reg.Gauge("popmodel_kinetic_energy", "final kinetic energy").Set(m.KineticEnergy())
		reg.Gauge("popmodel_mean_ssh_meters", "final mean sea-surface height").Set(m.MeanSSH())
		if tracer != nil {
			reg.Counter("popmodel_trace_dropped_events_total",
				"events lost to trace ring wraparound").Add(tracer.Dropped())
		}
		fatalIf(obs.DumpMetrics(reg, *metricsOut))
		fmt.Printf("metrics: %s\n", *metricsOut)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "popmodel:", err)
		os.Exit(1)
	}
}
