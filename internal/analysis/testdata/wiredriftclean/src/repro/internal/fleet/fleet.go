// Package fleet joins the hash and the pool key with full parity.
package fleet

import (
	"repro/internal/api"
	"repro/internal/serve"
)

// Dispatch hashes one request and derives its pool key.
func Dispatch(req api.SolveRequest) ([5]byte, serve.Key) {
	h := api.HashSolve(req.Grid, req.Method, req.SStep, req.B, req.X0)
	k := serve.NormalizeRequest(&serve.Request{
		Grid: req.Grid, Method: req.Method, SStep: req.SStep, B: req.B, X0: req.X0,
	})
	return h, k
}
