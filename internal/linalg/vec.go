package linalg

import "math"

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Two-pass scaling keeps intermediate squares in range for the small
	// vectors this package handles.
	var maxAbs float64
	for _, v := range x {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		t := v / maxAbs
		s += t * t
	}
	return maxAbs * math.Sqrt(s)
}

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// MaxAbsDiff returns max_i |x[i]−y[i]|.
func MaxAbsDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: MaxAbsDiff length mismatch")
	}
	var m float64
	for i, v := range x {
		if d := math.Abs(v - y[i]); d > m {
			m = d
		}
	}
	return m
}
