// Command popbench regenerates the paper's tables and figures.
//
// Usage:
//
//	popbench -exp fig8 -machine yellowstone        # one experiment, full scale
//	popbench -exp all -quick                       # everything, reduced scale
//	popbench -serve                                # solve-service load test
//	popbench -chaos                                # per-fault-class resilience loop
//	popbench -fleet                                # fleet router vs single service
//	popbench -sstep                                # s-step reduction-crossover sweep
//	popbench -list                                 # available experiment ids
//
// Full-scale 0.1° sweeps execute millions of real solver iterations across
// up to ~17k virtual ranks and take tens of minutes on one machine; -quick
// runs the same code paths on reduced grids in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (fig1..fig13, tab1, evpsetup, or 'all')")
		machine   = flag.String("machine", "yellowstone", "machine model: yellowstone, edison, ideal")
		quick     = flag.Bool("quick", false, "reduced-scale grids and core counts")
		verbose   = flag.Bool("v", true, "progress logging")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		targets   = flag.String("targets", "", "comma-separated 0.1deg core-count targets overriding the paper axis")
		reportDir = flag.String("reportdir", "", "write per-experiment BENCH_<exp>.json run reports here")
		traceOut  = flag.String("trace", "", "write JSONL span/event trace of all runs to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
		serveLoad = flag.Bool("serve", false, "load-test the concurrent solve service, write BENCH_serve.json")
		serveSec  = flag.Float64("servesec", 3, "closed-loop duration for -serve (seconds)")
		serveCli  = flag.Int("serveclients", 8, "closed-loop client count for -serve")
		perfetto  = flag.String("perfetto", "", "with -serve: write a Perfetto trace export of the load phase here (feed to cmd/poptrace)")
		chaos     = flag.Bool("chaos", false, "fault-injection closed loop per fault class, write BENCH_chaos.json")
		chaosSec  = flag.Float64("chaossec", 2, "closed-loop duration per -chaos phase (seconds)")
		chaosCli  = flag.Int("chaosclients", 8, "closed-loop client count for -chaos")
		fleetLoad = flag.Bool("fleet", false, "benchmark the fleet router vs a single service, write BENCH_fleet.json")
		fleetSec  = flag.Float64("fleetsec", 3, "closed-loop duration per -fleet phase (seconds)")
		fleetCli  = flag.Int("fleetclients", 8, "closed-loop client count for -fleet")
		fleetWk   = flag.Int("fleetworkers", 4, "worker-shard count for -fleet")
		fleetRHS  = flag.Int("fleetrhs", 16, "distinct right-hand sides the -fleet workload cycles through")
		sstepRun  = flag.Bool("sstep", false, "sweep the s-step solver's reduction-count crossover, write BENCH_sstep.json")
	)
	flag.Parse()
	obs.ServePprof(*pprofAddr)

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *serveLoad {
		if err := runServeBench(*reportDir, *serveSec, *serveCli, *perfetto, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaos {
		if err := runChaosBench(*reportDir, *chaosSec, *chaosCli, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sstepRun {
		if err := runSStepBench(*reportDir, *machine, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fleetLoad {
		if err := runFleetBench(*reportDir, *fleetSec, *fleetCli, *fleetWk, *fleetRHS, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	var m *perfmodel.Machine
	switch *machine {
	case "yellowstone":
		m = perfmodel.Yellowstone()
	case "edison":
		m = perfmodel.Edison()
	case "ideal":
		m = perfmodel.Ideal()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}

	cfg := experiments.NewConfig(m, *quick, os.Stderr)
	cfg.Verbose = *verbose
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.DefaultCapacity)
		cfg.Tracer = tracer
	}
	if *targets != "" {
		var ts []int
		for _, part := range strings.Split(*targets, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -targets entry %q\n", part)
				os.Exit(2)
			}
			ts = append(ts, v)
		}
		cfg.TargetOverride = map[string][]int{"0.1deg": ts}
	}

	failed := false
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		start := time.Now()
		before := len(cfg.Recorded())
		if err := experiments.Run(id, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed = true
			continue
		}
		wall := time.Since(start)
		fmt.Fprintf(os.Stderr, "# %s done in %s\n", id, wall.Round(time.Second))
		if *reportDir != "" {
			if err := writeReport(cfg, id, wall.Seconds(), cfg.Recorded()[before:], *reportDir); err != nil {
				fmt.Fprintf(os.Stderr, "report %s: %v\n", id, err)
				failed = true
			}
		}
	}
	if tracer != nil {
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "# trace ring dropped %d events (oldest lost)\n", d)
		}
		if err := obs.DumpTrace(tracer, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeReport saves the experiment's machine-readable run report as
// BENCH_<id>.json. Measurements are the slice this experiment added to
// Config.Recorded(); an experiment replaying a cached sweep adds none.
func writeReport(cfg *experiments.Config, id string, wallSeconds float64,
	ms []experiments.Measurement, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rep := experiments.NewBenchReport(cfg, id, wallSeconds, ms)
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# wrote %s (%d measurements)\n", path, len(ms))
	return nil
}
