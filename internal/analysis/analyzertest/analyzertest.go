// Package analyzertest is a hermetic analysistest replacement: it runs one
// analyzer over a GOPATH-style testdata tree and checks its diagnostics
// against `// want "regexp"` comments, exactly like
// golang.org/x/tools/go/analysis/analysistest.
//
// The real analysistest depends on go/packages, which shells out to the go
// command and module cache; this container builds from a vendored subset of
// x/tools only (see DESIGN.md §10), so the harness here loads testdata
// packages itself: files are parsed with go/parser, intra-testdata imports
// resolve GOPATH-style under <dir>/src/<importpath>, and standard-library
// imports resolve through go/importer's source importer. Analyzer
// dependencies (Requires) are run first, in dependency order.
//
// Fact-using analyzers are supported the way go vet supports them: before
// the analyzer runs on the target package, it runs on every testdata-local
// import (transitively, in dependency order), and the facts those runs
// export are visible through the pass's Import*/All* fact accessors —
// exactly the import-edge visibility rule the unitchecker enforces. Each
// exported fact is round-tripped through encoding/gob so a fact type that
// would fail under the real vet driver fails here first. Diagnostics
// reported while analyzing an import are discarded; `// want` matching
// covers the target package only (point Run at each package whose
// diagnostics you assert on).
package analyzertest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the package rooted at dir/src/importPath and applies a to it,
// comparing diagnostics against the // want comments in its files. Every
// diagnostic must match a want on its line and every want must be matched.
func Run(t *testing.T, dir string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	ld := newLoader(dir)
	pkg, err := ld.load(importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}

	rn := newRunner(ld)
	diags, err := rn.analyze(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}
	checkWants(t, ld.fset, pkg.files, diags)
}

// Diagnostics runs a over dir/src/importPath and returns the raw diagnostic
// messages without // want matching — for tests that assert on diagnostics
// whose positions cannot carry a want comment (e.g. the malformed-directive
// report, which lands on a line the directive comment itself occupies).
func Diagnostics(t *testing.T, dir string, a *analysis.Analyzer, importPath string) []string {
	t.Helper()
	ld := newLoader(dir)
	pkg, err := ld.load(importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}
	rn := newRunner(ld)
	diags, err := rn.analyze(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.Message
	}
	return msgs
}

// loadedPkg is one type-checked testdata package.
type loadedPkg struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
	fset  *token.FileSet
}

// loader resolves imports GOPATH-style under root/src, falling back to the
// source importer for the standard library. Loaded packages are memoized so
// diamond imports type-check once.
type loader struct {
	root   string
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*loadedPkg
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:   root,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: make(map[string]*loadedPkg),
	}
}

// Import implements types.Importer over the testdata tree.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.loaded[path]; ok {
		return p.pkg, nil
	}
	dir := filepath.Join(ld.root, "src", path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks one testdata package by import path.
func (ld *loader) load(path string) (*loadedPkg, error) {
	if p, ok := ld.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.root, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		Instances:    make(map[*ast.Ident]types.Instance),
		FileVersions: make(map[*ast.File]string),
	}
	cfg := types.Config{Importer: ld}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, info: info, files: files, fset: ld.fset}
	ld.loaded[path] = p
	return p, nil
}

// runner executes analyzers over the testdata import graph, carrying
// exported facts across packages the way the vet driver does.
type runner struct {
	ld *loader
	// pkgFacts / objFacts are the fact stores, keyed the way the analysis
	// framework looks facts up: by package or object, then concrete fact
	// type. One store per runner — facts cross package runs, never tests.
	pkgFacts map[*types.Package]map[reflect.Type]analysis.Fact
	objFacts map[types.Object]map[reflect.Type]analysis.Fact
	// done memoizes completed (analyzer, package) runs; results holds
	// per-package Requires outputs.
	done    map[runKey]bool
	results map[runKey]any
}

type runKey struct {
	a   *analysis.Analyzer
	pkg *loadedPkg
}

func newRunner(ld *loader) *runner {
	return &runner{
		ld:       ld,
		pkgFacts: make(map[*types.Package]map[reflect.Type]analysis.Fact),
		objFacts: make(map[types.Object]map[reflect.Type]analysis.Fact),
		done:     make(map[runKey]bool),
		results:  make(map[runKey]any),
	}
}

// analyze runs a (and its Requires) on pkg, first visiting every
// testdata-local import in dependency order when a uses facts, and returns
// the diagnostics reported for pkg itself.
func (rn *runner) analyze(a *analysis.Analyzer, pkg *loadedPkg) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	if err := rn.run(a, pkg, &diags); err != nil {
		return nil, err
	}
	return diags, nil
}

func (rn *runner) run(a *analysis.Analyzer, pkg *loadedPkg, diags *[]analysis.Diagnostic) error {
	key := runKey{a, pkg}
	if rn.done[key] {
		return nil
	}
	rn.done[key] = true
	// Fact-using analyzers see facts only along import edges, so the
	// analyzer must have run on every local import before this package —
	// the unitchecker's dependency order, reproduced in miniature.
	if len(a.FactTypes) > 0 {
		for _, imp := range pkg.pkg.Imports() {
			if dep, ok := rn.ld.loaded[imp.Path()]; ok {
				if err := rn.run(a, dep, nil); err != nil {
					return err
				}
			}
		}
	}
	for _, req := range a.Requires {
		if err := rn.run(req, pkg, nil); err != nil {
			return err
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.fset,
		Files:      pkg.files,
		Pkg:        pkg.pkg,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   rn.resultsFor(pkg),
		Report: func(d analysis.Diagnostic) {
			if diags != nil {
				*diags = append(*diags, d)
			}
		},
		ReadFile:          os.ReadFile,
		ImportPackageFact: rn.importPackageFact,
		ExportPackageFact: rn.exportPackageFactFor(pkg.pkg),
		ImportObjectFact:  rn.importObjectFact,
		ExportObjectFact:  rn.exportObjectFact,
		AllPackageFacts:   rn.allPackageFacts,
		AllObjectFacts:    rn.allObjectFacts,
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	rn.results[key] = res
	return nil
}

// resultsFor assembles the ResultOf map for one package from the memoized
// per-package Requires outputs.
func (rn *runner) resultsFor(pkg *loadedPkg) map[*analysis.Analyzer]any {
	out := make(map[*analysis.Analyzer]any)
	for key, res := range rn.results {
		if key.pkg == pkg {
			out[key.a] = res
		}
	}
	return out
}

// gobRoundTrip pushes a fact through encoding/gob, so a fact type the real
// vet driver could not serialize fails loudly in the harness.
func gobRoundTrip(fact analysis.Fact) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return fmt.Errorf("fact %T not gob-encodable: %w", fact, err)
	}
	return gob.NewDecoder(&buf).Decode(fact)
}

func (rn *runner) importPackageFact(pkg *types.Package, fact analysis.Fact) bool {
	stored, ok := rn.pkgFacts[pkg][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (rn *runner) exportPackageFactFor(pkg *types.Package) func(analysis.Fact) {
	return func(fact analysis.Fact) {
		if err := gobRoundTrip(fact); err != nil {
			panic(err)
		}
		if rn.pkgFacts[pkg] == nil {
			rn.pkgFacts[pkg] = make(map[reflect.Type]analysis.Fact)
		}
		rn.pkgFacts[pkg][reflect.TypeOf(fact)] = fact
	}
}

func (rn *runner) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	stored, ok := rn.objFacts[obj][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (rn *runner) exportObjectFact(obj types.Object, fact analysis.Fact) {
	if err := gobRoundTrip(fact); err != nil {
		panic(err)
	}
	if rn.objFacts[obj] == nil {
		rn.objFacts[obj] = make(map[reflect.Type]analysis.Fact)
	}
	rn.objFacts[obj][reflect.TypeOf(fact)] = fact
}

func (rn *runner) allPackageFacts() []analysis.PackageFact {
	var out []analysis.PackageFact
	for pkg, facts := range rn.pkgFacts {
		for _, f := range facts {
			out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
		}
	}
	return out
}

func (rn *runner) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, facts := range rn.objFacts {
		for _, f := range facts {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	return out
}

// wantRe extracts the expectation list of a // want comment.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// expectation is one `// want` pattern, positioned at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkWants cross-checks diagnostics against want expectations.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parsePatterns splits the tail of a want comment into its quoted or
// backquoted regular expressions.
func parsePatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want patterns must be quoted or backquoted strings: %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern: %q", pos, s)
		}
		raw := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
			}
			pats = append(pats, unq)
		} else {
			pats = append(pats, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return pats
}
