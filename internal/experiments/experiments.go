// Package experiments regenerates every table and figure in the paper's
// evaluation (§2 Fig. 1–2, §3 Fig. 3, §4 Fig. 6, §5 Fig. 7–11 + Table 1,
// §6 Fig. 12–13). Each driver runs the real distributed solvers on the
// synthetic grids, prices the measured event stream with a machine model,
// and prints the same rows/series the paper plots. Expensive sweeps are
// computed once per (machine, resolution) and shared across figures —
// Fig. 1, 2, 8, 9 and 10 are all views of one 0.1° sweep, as in the paper.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// Paper-matching workload constants.
const (
	// DtCount01 is the paper's 0.1° barotropic step count per simulated
	// day (§5.2: dt_count = 500).
	DtCount01 = 500
	// DtCount1 is the 1° steps per day (POP's gx1 half-hour class step).
	DtCount1 = 45
)

// SolverConfig names one solver/preconditioner combination.
type SolverConfig struct {
	Solver  string // "chrongear", "pcg", or "pcsi"
	Precond core.PrecondType
}

func (sc SolverConfig) String() string {
	return sc.Solver + "+" + sc.Precond.String()
}

// PaperConfigs are the four combinations of Figures 7, 8, 10 and 11.
var PaperConfigs = []SolverConfig{
	{"chrongear", core.PrecondDiagonal},
	{"chrongear", core.PrecondEVP},
	{"pcsi", core.PrecondDiagonal},
	{"pcsi", core.PrecondEVP},
}

// Config carries shared experiment state; create with NewConfig.
type Config struct {
	Machine *perfmodel.Machine
	// Quick shrinks grids (1°→160×192, 0.1°→900×600) and divides core-
	// count targets (by 4 and 16), for fast previews and `go test -short`.
	Quick bool
	// Solves per measurement (averaged); default 1 (the solve is
	// deterministic; averaging only matters for noisy machines).
	Solves int
	// Verbose writes progress lines to Out as long runs proceed.
	Verbose bool
	Out     io.Writer

	// TargetOverride, when non-nil for a resolution key, replaces the
	// paper's core-count axis (used to trim very long full-scale runs).
	TargetOverride map[string][]int

	// Tracer, when non-nil, is attached to every World the experiment
	// drivers create, so sweeps emit per-phase span events like popsolve
	// runs do. Large sweeps generate many events; size the ring
	// accordingly or accept drops.
	Tracer *obs.Tracer

	grids  map[string]*grid.Grid
	sweeps map[string][]Measurement
	baro   map[string]baroPoint

	recorded []Measurement // every measureOn result, in completion order
}

// NewConfig prepares an experiment context on the given machine model.
func NewConfig(m *perfmodel.Machine, quick bool, out io.Writer) *Config {
	if m == nil {
		m = perfmodel.Yellowstone()
	}
	if out == nil {
		out = io.Discard
	}
	return &Config{
		Machine: m,
		Quick:   quick,
		Solves:  1,
		Out:     out,
		grids:   make(map[string]*grid.Grid),
		sweeps:  make(map[string][]Measurement),
		baro:    make(map[string]baroPoint),
	}
}

// logf writes progress when Verbose is set.
func (c *Config) logf(format string, args ...any) {
	if c.Verbose {
		fmt.Fprintf(c.Out, "# "+format+"\n", args...)
	}
}

// Grid1 returns (generating once) the 1° grid.
func (c *Config) Grid1() *grid.Grid {
	return c.gridFor("1deg")
}

// Grid01 returns (generating once) the 0.1° grid.
func (c *Config) Grid01() *grid.Grid {
	return c.gridFor("0.1deg")
}

func (c *Config) gridFor(name string) *grid.Grid {
	if g, ok := c.grids[name]; ok {
		return g
	}
	var spec grid.Spec
	switch {
	case name == "1deg" && !c.Quick:
		spec = grid.OneDegreeSpec()
	case name == "1deg" && c.Quick:
		spec = grid.OneDegreeSpec()
		spec.Nx, spec.Ny = 160, 192
		spec.Name = "gx1-synthetic-quick"
	case name == "0.1deg" && !c.Quick:
		spec = grid.TenthDegreeSpec()
	default:
		spec = grid.QuarterScaleTenthSpec()
	}
	c.logf("generating %s grid (%d×%d)", spec.Name, spec.Nx, spec.Ny)
	g := grid.Generate(spec)
	c.grids[name] = g
	return g
}

// CoreTargets returns the paper's core-count axis for a resolution.
func (c *Config) CoreTargets(res string) []int {
	if o, ok := c.TargetOverride[res]; ok && len(o) > 0 {
		return o
	}
	var t []int
	if res == "1deg" {
		t = []int{24, 48, 96, 192, 384, 768}
	} else {
		t = []int{470, 1200, 2700, 5400, 10800, 16875}
	}
	if c.Quick {
		div := 4
		if res != "1deg" {
			div = 16
		}
		out := make([]int, len(t))
		for i, v := range t {
			out[i] = max(1, v/div)
		}
		return out
	}
	return t
}

// DtCount returns the barotropic solves per simulated day at a resolution.
func (c *Config) DtCount(res string) int {
	if res == "1deg" {
		return DtCount1
	}
	return DtCount01
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[min(i, len(widths)-1)], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
}

// Recorded returns every measurement taken so far (sweeps and single
// points alike), in completion order. Callers snapshot len(Recorded())
// before an experiment and slice after it to attribute measurements —
// note that cached sweeps record nothing on reuse, so a figure that
// shares an earlier sweep contributes no new entries.
func (c *Config) Recorded() []Measurement {
	return c.recorded
}

// OverrideGrid substitutes the grid used for a resolution key ("1deg" or
// "0.1deg") — used by benchmarks to run every figure pipeline at bench-
// friendly sizes.
func (c *Config) OverrideGrid(res string, g *grid.Grid) {
	c.grids[res] = g
}
