// Package serve is a pool-key stand-in where Key declares a Stale field
// the normalizer never folds in.
package serve

// Key identifies one warmed session pool.
type Key struct {
	// Grid names the preset.
	Grid string
	// Method names the solver.
	Method string
	// Fresh is the relaxation weight.
	Fresh float64
	// Stale is declared but never normalized.
	Stale string // want `pool-key field Stale is never referenced in the request normalizer`
}

// Request is the internal solve request.
type Request struct {
	// Grid names the preset.
	Grid string
	// Method names the solver.
	Method string
	// Fresh is the relaxation weight.
	Fresh float64
	// B is the right-hand side.
	B []float64
	// X0 is the initial guess.
	X0 []float64
}

// NormalizeRequest folds req into its pool key — Stale is forgotten.
func NormalizeRequest(req *Request) Key {
	return Key{Grid: req.Grid, Method: req.Method, Fresh: req.Fresh}
}
