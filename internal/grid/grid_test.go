package grid

import (
	"math"
	"testing"
)

func TestFlatBasinValid(t *testing.T) {
	g := NewFlatBasin(16, 12, 4000, 1e5, 1e5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OceanFraction() != 1 {
		t.Fatalf("flat basin ocean fraction %v, want 1", g.OceanFraction())
	}
	// Interior corners wet, boundary corners dry.
	if g.HU[g.Idx(5, 5)] != 4000 {
		t.Fatalf("interior corner depth %v", g.HU[g.Idx(5, 5)])
	}
	if g.HU[g.Idx(15, 5)] != 0 || g.HU[g.Idx(5, 11)] != 0 {
		t.Fatal("boundary corners should be dry")
	}
}

func TestGenerateTestGrid(t *testing.T) {
	g := Generate(TestSpec())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	frac := g.OceanFraction()
	if math.Abs(frac-0.68) > 0.02 {
		t.Fatalf("ocean fraction %v, want ≈0.68", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TestSpec())
	b := Generate(TestSpec())
	for k := range a.HT {
		if a.HT[k] != b.HT[k] || a.Mask[k] != b.Mask[k] {
			t.Fatalf("generation not deterministic at index %d", k)
		}
	}
}

func TestGeographySharedAcrossResolutions(t *testing.T) {
	// The same (lon,lat) should be land/ocean at both resolutions for the
	// vast majority of points (coastlines differ by at most one cell).
	lo := Generate(TestSpec())
	spec := TestSpec()
	spec.Nx *= 2
	spec.Ny *= 2
	spec.Name = "test-synthetic-2x"
	hi := Generate(spec)
	agree, total := 0, 0
	for j := 0; j < lo.Ny; j++ {
		for i := 0; i < lo.Nx; i++ {
			// T-point (i,j) at low res covers the 2×2 block at high res.
			loOcean := lo.Mask[lo.Idx(i, j)]
			wet := 0
			for dj := 0; dj < 2; dj++ {
				for di := 0; di < 2; di++ {
					if hi.Mask[hi.Idx(2*i+di, 2*j+dj)] {
						wet++
					}
				}
			}
			total++
			if (wet >= 2) == loOcean {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.93 {
		t.Fatalf("resolutions agree on only %.1f%% of cells", 100*frac)
	}
}

func TestStraitsAreOpen(t *testing.T) {
	// The generator carves three straits; check that the Drake-like passage
	// south of continent 1 is wet: look for ocean along the carved latitude.
	g := Generate(OneDegreeSpec())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wet := 0
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			k := g.Idx(i, j)
			if g.Mask[k] && math.Abs(g.TLat[k]+62) < 1.5 {
				wet++
			}
		}
	}
	if wet == 0 {
		t.Fatal("carved Drake-like passage is entirely land")
	}
}

func TestMetricsAnisotropy(t *testing.T) {
	// At the equator the 1° grid should be anisotropic (dx/dy well above 1)
	// while the 0.1°-family grid should be closer to isotropic — the paper's
	// §4.3 explanation for why 0.1° converges in fewer iterations.
	one := Generate(OneDegreeSpec())
	tenthLike := Generate(QuarterScaleTenthSpec())
	ratioAt := func(g *Grid) float64 {
		j := g.Ny / 2
		k := g.Idx(g.Nx/2, j)
		return g.DXU[k] / g.DYU[k]
	}
	r1, r01 := ratioAt(one), ratioAt(tenthLike)
	if r1 < 1.5 {
		t.Fatalf("1° grid anisotropy %v, want > 1.5", r1)
	}
	if math.Abs(r01-1) > math.Abs(r1-1) {
		t.Fatalf("0.1°-like grid (ratio %v) should be closer to isotropic than 1° (ratio %v)", r01, r1)
	}
}

func TestIsOceanOutOfRange(t *testing.T) {
	g := NewFlatBasin(4, 4, 100, 1, 1)
	for _, p := range [][2]int{{-1, 0}, {0, -1}, {4, 0}, {0, 4}} {
		if g.IsOcean(p[0], p[1]) {
			t.Fatalf("out-of-range point %v reported as ocean", p)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := NewFlatBasin(8, 8, 100, 1, 1)
	g.HT[g.Idx(3, 3)] = -5
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a negative ocean depth")
	}
	g = NewFlatBasin(8, 8, 100, 1, 1)
	g.HU[g.Idx(7, 7)] = 50 // dry boundary corner given depth
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a wet boundary corner")
	}
}

func TestFullPresetDimensions(t *testing.T) {
	if testing.Short() {
		t.Skip("full preset generation in -short")
	}
	one := OneDegree()
	if one.Nx != 320 || one.Ny != 384 {
		t.Fatalf("1deg preset %dx%d", one.Nx, one.Ny)
	}
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
	if f := one.OceanFraction(); math.Abs(f-0.68) > 0.01 {
		t.Fatalf("1deg ocean fraction %v", f)
	}
}

func TestQuarterScalePreservesAspect(t *testing.T) {
	s := QuarterScaleTenthSpec()
	if s.Nx*2 != s.Ny*3 {
		t.Fatalf("quarter-scale 0.1deg aspect %dx%d not 3:2", s.Nx, s.Ny)
	}
	full := TenthDegreeSpec()
	if full.Nx != 3600 || full.Ny != 2400 {
		t.Fatalf("0.1deg preset %dx%d", full.Nx, full.Ny)
	}
}
