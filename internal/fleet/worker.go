package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ErrRemote marks failures talking to a remote worker that carry no more
// specific typed cause (unexpected HTTP statuses, malformed stats bodies).
// Match with errors.Is.
var ErrRemote = errors.New("fleet: remote worker error")

// Worker is one solve shard behind the router. Two implementations: a
// LocalWorker wrapping an in-process serve.Service, and an HTTPWorker
// speaking the binary frame to a remote popserver.
type Worker interface {
	// Solve runs one request on the worker, blocking until it completes.
	Solve(ctx context.Context, req serve.Request) (serve.Response, error)
	// Counters snapshots the worker's serving counters and the grid
	// presets it has resolved.
	Counters(ctx context.Context) (api.ServiceCounters, []string, error)
	// Addr identifies the worker in stats rows: "local" for in-process
	// workers, the base URL for remote ones.
	Addr() string
	// Close releases the worker's resources, draining in-flight work.
	Close(ctx context.Context) error
}

// countersFromStats converts a serve counter snapshot to its wire form.
func countersFromStats(s serve.Stats) api.ServiceCounters {
	return api.ServiceCounters{
		Requests:    s.Requests,
		Shed:        s.Shed,
		Expired:     s.Expired,
		Solves:      s.Solves,
		Batches:     s.Batches,
		Errors:      s.Errors,
		Sessions:    s.Sessions,
		Retried:     s.Retried,
		Faulted:     s.Faulted,
		Recovered:   s.Recovered,
		CircuitShed: s.CircuitShed,
	}
}

// LocalWorker is an in-process shard: its own serve.Service with its own
// session pools, queues, circuit breakers and retry budget — the same
// isolation a separate popserver process would have, minus the wire.
type LocalWorker struct {
	svc *serve.Service
}

// NewLocalWorker wraps an in-process service. The service should have been
// built with its own private metrics registry: obs counters dedupe by name
// within a registry, so two workers sharing one registry would silently
// share counters.
func NewLocalWorker(svc *serve.Service) *LocalWorker { return &LocalWorker{svc: svc} }

// Solve runs the request on the wrapped service.
func (w *LocalWorker) Solve(ctx context.Context, req serve.Request) (serve.Response, error) {
	return w.svc.Solve(ctx, req)
}

// Counters snapshots the wrapped service's counters and grids.
func (w *LocalWorker) Counters(ctx context.Context) (api.ServiceCounters, []string, error) {
	_ = ctx // local snapshot; the ctx exists for interface symmetry with HTTPWorker
	return countersFromStats(w.svc.Snapshot()), w.svc.Grids(), nil
}

// Addr returns "local".
func (w *LocalWorker) Addr() string { return "local" }

// Close drains the wrapped service.
func (w *LocalWorker) Close(ctx context.Context) error { return w.svc.Close(ctx) }

// Service exposes the wrapped service for trace export and flight-record
// merging.
func (w *LocalWorker) Service() *serve.Service { return w.svc }

// HTTPWorker is a remote shard: a popserver reached over HTTP, spoken to
// in the compact binary frame (api.ContentTypeFrame) on the solve hot path
// and JSON for stats.
type HTTPWorker struct {
	base   string
	client *http.Client
}

// NewHTTPWorker builds a worker for a remote popserver at base (e.g.
// "http://127.0.0.1:7071"). client nil uses http.DefaultClient.
func NewHTTPWorker(base string, client *http.Client) *HTTPWorker {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPWorker{base: base, client: client}
}

// Addr returns the worker's base URL.
func (w *HTTPWorker) Addr() string { return w.base }

// Close is a no-op: the remote process has its own lifecycle.
func (w *HTTPWorker) Close(ctx context.Context) error {
	_ = ctx // nothing to drain; the remote owns its shutdown
	return nil
}

// Solve encodes the request as a binary frame, POSTs it to the worker's
// /v1/solve, and decodes the reply. Remote error frames are mapped back to
// the service's typed errors (429 → ErrOverloaded and 503 → ErrCircuitOpen
// / ErrClosed) so the router's failover logic treats a remote shed exactly
// like a local one.
func (w *HTTPWorker) Solve(ctx context.Context, req serve.Request) (serve.Response, error) {
	frame := api.AppendFrameRequest(nil, api.FrameRequest{
		Grid:      req.Grid,
		Method:    req.Method,
		Precond:   req.Precond,
		Precision: req.Precision,
		SStep:     req.SStep,
		B:         req.B,
		X0:        req.X0,
		ReturnX:   true,
		TraceID:   obs.TraceIDFromContext(ctx),
	})
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+api.V1Solve, bytes.NewReader(frame))
	if err != nil {
		return serve.Response{}, fmt.Errorf("fleet: worker %s: %w", w.base, err)
	}
	hreq.Header.Set("Content-Type", api.ContentTypeFrame)
	hresp, err := w.client.Do(hreq)
	if err != nil {
		return serve.Response{}, fmt.Errorf("fleet: worker %s: %w", w.base, err)
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return serve.Response{}, fmt.Errorf("fleet: worker %s: %w", w.base, err)
	}
	kind, err := api.FrameKind(raw)
	if err != nil {
		return serve.Response{}, fmt.Errorf("fleet: worker %s: %w", w.base, err)
	}
	if kind == api.FrameError {
		status, msg, err := api.DecodeFrameError(raw)
		if err != nil {
			return serve.Response{}, fmt.Errorf("fleet: worker %s: %w", w.base, err)
		}
		return serve.Response{}, remoteError(w.base, status, msg)
	}
	fr, err := api.DecodeFrameResponse(raw)
	if err != nil {
		return serve.Response{}, fmt.Errorf("fleet: worker %s: %w", w.base, err)
	}
	precision, err := core.ParsePrecision(fr.Precision)
	if err != nil {
		precision = core.Float64
	}
	// A remote worker's Result is the wire summary: solution bits and
	// convergence metadata are exact; virtual-time stats and per-iteration
	// traces stay on the worker (its own flight recorder retains them).
	return serve.Response{
		Result: core.Result{
			Solver:      fr.Solver,
			Iterations:  fr.Iterations,
			OuterIters:  fr.OuterIters,
			Converged:   fr.Converged,
			RelResidual: fr.RelResidual,
			Precision:   precision,
			TraceID:     fr.TraceID,
		},
		X:       fr.X,
		TraceID: fr.TraceID,
	}, nil
}

// remoteError reconstructs a typed error from a worker's error frame so
// errors.Is keeps working across the wire.
func remoteError(base string, status int, msg string) error {
	var cause error
	switch status {
	case http.StatusTooManyRequests:
		cause = serve.ErrOverloaded
	case http.StatusBadRequest:
		cause = core.ErrBadSpec
	case http.StatusServiceUnavailable:
		cause = serve.ErrCircuitOpen
	case http.StatusGatewayTimeout:
		cause = context.DeadlineExceeded
	case http.StatusUnprocessableEntity:
		cause = core.ErrNotConverged
	default:
		cause = fmt.Errorf("status %d: %w", status, ErrRemote)
	}
	return fmt.Errorf("fleet: worker %s: %s: %w", base, msg, cause)
}

// Counters fetches the worker's /v1/stats and returns its own counters and
// grids (a remote popserver reports itself as one worker).
func (w *HTTPWorker) Counters(ctx context.Context) (api.ServiceCounters, []string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+api.V1Stats, nil)
	if err != nil {
		return api.ServiceCounters{}, nil, err
	}
	hresp, err := w.client.Do(hreq)
	if err != nil {
		return api.ServiceCounters{}, nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return api.ServiceCounters{}, nil, fmt.Errorf("fleet: worker %s stats: status %d: %w", w.base, hresp.StatusCode, ErrRemote)
	}
	var stats api.StatsResponse
	if err := decodeJSON(hresp.Body, &stats); err != nil {
		return api.ServiceCounters{}, nil, fmt.Errorf("fleet: worker %s stats: %w", w.base, err)
	}
	return stats.Totals, stats.Grids, nil
}

// decodeJSON decodes one JSON value from r.
func decodeJSON(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }
