package core

import (
	"context"
	"errors"

	"repro/internal/comm"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Solver resilience. When the session's World carries an active
// faults.Injector (and Options.MaxRecoveries ≥ 0) the ChronGear and P-CSI
// solvers run in resilient mode:
//
//   - every global reduction is re-entered with bounded exponential backoff
//     when the injector fails it (reduceRetry below);
//
//   - the iteration state (the solution field x) is checkpointed at every
//     clean convergence check, and a rank crash or a NaN in the reduced
//     residual rolls every rank back to the checkpoint in lockstep — the
//     crash/NaN verdict rides the check reduction exactly like the
//     cancellation flag, so no rank can disagree about whether to restore;
//
//   - a convergence verdict is confirmed on fresh halos before it is
//     trusted (a halo dropped right before a check could fake convergence
//     through a stale residual), and a failed confirmation resets the
//     recurrence and keeps iterating ("reconverge");
//
//   - exhausted budgets surrender with ErrFaulted, which SolveResilient
//     escalates down the degraded-mode ladder: P-CSI → re-estimated
//     eigenvalue bounds → ChronGear.
//
// Without an active injector none of this code runs and the solvers take
// their exact legacy paths — fault-free traces stay bitwise identical.

const (
	// reduceRetryLimit bounds consecutive re-entries of one failed
	// reduction. The injector's verdicts are independent per attempt, so
	// with any realistic failure probability the retry loop terminates in
	// one or two rounds; hitting the limit means the collective is
	// persistently gone and the solve surrenders.
	reduceRetryLimit = 6
	// reduceBackoffBase is the virtual-clock backoff (seconds) before the
	// first retry; each further retry doubles it.
	reduceBackoffBase = 1e-4
	// cgStallChecks is ChronGear's silent-corruption tripwire: a dropped
	// halo leaves the CG recursion quietly inconsistent with the true
	// residual, so the recursive check norm stops improving without ever
	// reaching the convergence verdict (where confirm-on-converge would
	// catch it). After this many consecutive checks without improvement the
	// solver restores the checkpoint and restarts the recurrence from an
	// honestly recomputed residual.
	cgStallChecks = 3
)

// Recovery-kind ordinals carried in EvRecover trace events' Value field.
const (
	recKindReduceRetry = iota
	recKindRestore
	recKindReconverge
)

// reduceRetry is AllReduce plus the detect-and-retry protocol: when the
// injector failed the reduction (a verdict every rank shares), back off on
// the virtual clock and re-enter the collective, up to reduceRetryLimit
// times. Returns the reduced values, the number of retries paid, and
// whether the reduction ultimately succeeded — all identical on every rank.
func reduceRetry(r *comm.Rank, inj *faults.Injector, vals []float64) ([]float64, int, bool) {
	g := r.AllReduce(vals)
	retries := 0
	for r.ReduceFailed() {
		if retries == reduceRetryLimit {
			return g, retries, false
		}
		retries++
		r.AddDelay(reduceBackoffBase * float64(int64(1)<<retries))
		g = r.AllReduce(vals)
	}
	if retries > 0 {
		if rt := r.Trace(); rt != nil {
			rt.Add(obs.Event{Name: obs.EvRecover, Point: true, T0: r.Clock(),
				Value: recKindReduceRetry, Iter: -1, Straggler: -1})
		}
		if r.ID == 0 {
			inj.Recovered("reduce-retry")
		}
	}
	return g, retries, true
}

// copyFields copies a per-block field set (checkpoint save and restore).
func copyFields(dst, src [][]float64) {
	for i := range src {
		copy(dst[i], src[i])
	}
}

// traceRecover emits one recovery point event on the rank's trace.
func traceRecover(r *comm.Rank, iter, kind int) {
	if rt := r.Trace(); rt != nil {
		rt.Add(obs.Event{Name: obs.EvRecover, Point: true, T0: r.Clock(),
			Value: float64(kind), Iter: iter, Straggler: -1})
	}
}

// SolveResilient is SolveContext plus the degraded-mode ladder. A clean
// solve returns as-is. Context cancellation passes through untouched. When
// the solve surrenders (ErrFaulted) or fails to converge under an active
// injector, P-CSI (and CSI) descend the ladder:
//
//  1. re-estimate the eigenvalue bounds from a fresh Lanczos run and retry
//     (an interval knocked loose by injected corruption is the most likely
//     culprit for P-CSI divergence);
//  2. fall back to the ChronGear solver — slower per iteration but
//     self-correcting, the degraded mode of last resort.
//
// The rung that produced the result is recorded in Result.Recovery.Degraded
// and counted on the injector. Methods without a ladder (ChronGear itself,
// PCG, PipeCG) return their error unchanged; request-level retry lives in
// internal/serve.
func (s *Session) SolveResilient(ctx context.Context, m Method, b, x0 []float64) (Result, []float64, error) {
	res, x, err := s.SolveContext(ctx, m, b, x0)
	if err == nil && res.Converged {
		return res, x, nil
	}
	inj := s.W.Faults
	if !inj.Enabled() || s.Opts.MaxRecoveries < 0 {
		return res, x, err
	}
	if ctx != nil && ctx.Err() != nil {
		return res, x, err // cancellation is not a fault
	}
	// Only solver failures descend the ladder: ErrFaulted, divergence
	// (NotConvergedError), or a quiet non-convergence. Specification errors
	// and the like pass through.
	if err != nil && !errors.Is(err, ErrFaulted) && !errors.Is(err, ErrNotConverged) {
		return res, x, err
	}
	if m != MethodPCSI && m != MethodCSI {
		return res, x, err
	}

	// Rung 1: re-estimate the Chebyshev interval and retry P-CSI.
	if _, _, _, eerr := s.EstimateEigenvalues(nil, 0); eerr == nil {
		res2, x2, err2 := s.SolveContext(ctx, m, b, x0)
		if err2 == nil && res2.Converged {
			res2.Recovery.Degraded = "re-eig"
			inj.Recovered("re-eig")
			return res2, x2, nil
		}
		if ctx != nil && ctx.Err() != nil {
			return res2, x2, err2
		}
	}

	// Rung 2: ChronGear degraded mode (through the dispatcher, which
	// normalizes a nil initial guess).
	res3, x3, err3 := s.SolveContext(ctx, MethodChronGear, b, x0)
	if err3 == nil && res3.Converged {
		res3.Recovery.Degraded = "chrongear"
		inj.Recovered("chrongear")
		return res3, x3, nil
	}
	if err3 == nil {
		err3 = &NotConvergedError{Solver: "chrongear",
			Iterations: res3.Iterations, RelResidual: res3.RelResidual}
	}
	return res3, x3, err3
}
