package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Wire-surface package paths. The analyzer's checks are anchored on the
// three layers a solve request crosses: the api package that defines the
// wire schema, the serve package that folds requests into pool keys, and
// the fleet package where the content hash and the pool key meet.
const (
	apiPkgPath   = "repro/internal/api"
	servePkgPath = "repro/internal/serve"
	fleetPkgPath = "repro/internal/fleet"
)

// nonsemanticDirective marks a SolveRequest field that is deliberately NOT
// part of the solve's content: it may change without changing the answer,
// so it is excluded from api.HashSolve and from the fleet pool-key parity
// checks. The reason is mandatory:
//
//	// TimeoutMS bounds the solve in milliseconds.
//	//
//	//pop:nonsemantic request deadline; bounds when the solve runs, not what it computes
//	TimeoutMS int
const nonsemanticDirective = "//pop:nonsemantic"

// WireFields is the package fact wiredrift exports from the api package:
// the names of SolveRequest's semantic fields (every field not annotated
// //pop:nonsemantic). Downstream passes — the fleet package imports api —
// use it to verify the pool-key surface kept up with the wire schema.
type WireFields struct {
	// Semantic lists the semantic field names, sorted.
	Semantic []string
	// Vector marks which semantic fields are float vectors (B, X0): they
	// are hashed per-request rather than folded into the session pool key.
	Vector map[string]bool
}

// AFact marks WireFields as an analysis fact.
func (*WireFields) AFact() {}

// String renders the fact for -facts debugging output.
func (f *WireFields) String() string {
	return "wirefields(" + strings.Join(f.Semantic, ",") + ")"
}

// WireDrift reports wire-schema drift: a semantic field of
// api.SolveRequest that is not carried by the binary frame, not an
// ingredient of the api.HashSolve content hash, or not part of the serve
// pool-key surface the fleet shards on.
//
// PR 9 hand-threaded SStep through exactly these four surfaces (frame
// encode, frame decode, HashSolve, serve.Key) — four edits that nothing
// but discipline kept in sync. Each one, forgotten, is a silent
// correctness bug: a dropped frame field solves the wrong problem on the
// worker; a missing hash ingredient replays another request's cached
// solution; a missing pool-key field shares warmed sessions between
// solves with different numerics. The analyzer makes the parity
// machine-checked:
//
//   - api pass: every semantic SolveRequest field must have a same-named
//     FrameRequest counterpart, be encoded by AppendFrameRequest, decoded
//     by DecodeFrameRequest, and map (case-insensitively) to a HashSolve
//     parameter that the hash body actually consumes. Fields deliberately
//     outside the content hash (TimeoutMS, TraceID, …) carry a
//     //pop:nonsemantic directive with a mandatory reason.
//   - serve pass: every field of the pool Key must be referenced inside
//     normalize/NormalizeRequest — a Key field the normalizer never sets
//     silently merges pools.
//   - fleet pass (imports api and serve, where hash and pool key meet):
//     every semantic scalar field must be a serve.Key field, and every
//     semantic vector field a serve.Request field, read through the
//     WireFields fact the api pass exported.
var WireDrift = &analysis.Analyzer{
	Name: "wiredrift",
	Doc: "report api.SolveRequest fields missing from the frame codec, the content hash," +
		" or the serve pool-key surface (wire-schema drift)",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*WireFields)(nil)},
	Run:       runWireDrift,
}

func runWireDrift(pass *analysis.Pass) (any, error) {
	switch {
	case pkgInScope(pass, apiPkgPath):
		return nil, wireDriftAPI(pass)
	case pkgInScope(pass, servePkgPath):
		return nil, wireDriftServe(pass)
	case pkgInScope(pass, fleetPkgPath):
		return nil, wireDriftFleet(pass)
	}
	return nil, nil
}

// wireField is one SolveRequest field as the api pass sees it.
type wireField struct {
	name         string
	pos          token.Pos
	vector       bool // slice/array-shaped payload
	doc, comment *ast.CommentGroup
}

// wireDriftAPI checks the api package's internal parity (SolveRequest ↔
// FrameRequest ↔ frame codec ↔ HashSolve) and exports the WireFields fact.
func wireDriftAPI(pass *analysis.Pass) error {
	ig := newIgnorer(pass)
	solveFields := structFields(pass, "SolveRequest")
	frameFields := structFields(pass, "FrameRequest")
	if solveFields == nil || frameFields == nil {
		return nil // not the wire-schema package shape; nothing to check
	}

	var semantic []wireField
	for _, f := range solveFields {
		reason, found, malformedPos := popDirective(nonsemanticDirective, f.doc, f.comment)
		if malformedPos.IsValid() {
			pass.Reportf(malformedPos, "malformed %s directive: want %q",
				nonsemanticDirective, nonsemanticDirective+" <reason>")
		}
		if found && reason != "" {
			continue // deliberately outside the content hash
		}
		semantic = append(semantic, f)
	}

	frameByName := make(map[string]wireField, len(frameFields))
	for _, f := range frameFields {
		frameByName[f.name] = f
	}

	encodeRefs := frameFieldRefs(pass, "AppendFrameRequest", "FrameRequest")
	decodeRefs := frameFieldRefs(pass, "DecodeFrameRequest", "FrameRequest")
	hashParams, hashUsed := funcParams(pass, "HashSolve")

	for _, f := range semantic {
		if _, ok := frameByName[f.name]; !ok {
			ig.reportf(f.pos,
				"semantic field %s of SolveRequest has no FrameRequest counterpart: the binary frame would drop it (annotate %s <reason> if that is deliberate)",
				f.name, nonsemanticDirective)
		}
		param, ok := matchParam(hashParams, f.name)
		if !ok {
			ig.reportf(f.pos,
				"semantic field %s of SolveRequest is not an ingredient of HashSolve: requests differing only in it would collide in the result cache (hash it or annotate %s <reason>)",
				f.name, nonsemanticDirective)
		} else if !hashUsed[param] {
			ig.reportf(param.Pos(),
				"HashSolve parameter %s is accepted but never folded into the hash: requests differing only in it would collide in the result cache",
				param.Name())
		}
	}

	// Every field FrameRequest declares must cross the wire in both
	// directions — an encoded-but-never-decoded field is silent truncation.
	for _, f := range frameFields {
		if !encodeRefs[f.name] {
			ig.reportf(f.pos, "field %s of FrameRequest is never referenced by AppendFrameRequest: the frame encoder drops it", f.name)
		}
		if !decodeRefs[f.name] {
			ig.reportf(f.pos, "field %s of FrameRequest is never referenced by DecodeFrameRequest: the frame decoder drops it", f.name)
		}
	}

	fact := &WireFields{Vector: make(map[string]bool)}
	for _, f := range semantic {
		fact.Semantic = append(fact.Semantic, f.name)
		if f.vector {
			fact.Vector[f.name] = true
		}
	}
	sort.Strings(fact.Semantic)
	pass.ExportPackageFact(fact)
	return nil
}

// wireDriftServe checks pool-key completeness of the normalizer: every
// field of serve.Key must be referenced inside normalize/NormalizeRequest.
func wireDriftServe(pass *analysis.Pass) error {
	ig := newIgnorer(pass)
	keyFields := structFields(pass, "Key")
	if keyFields == nil {
		return nil
	}
	used := make(map[string]bool)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || (fd.Name.Name != "normalize" && fd.Name.Name != "NormalizeRequest") {
			return
		}
		ast.Inspect(fd.Body, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok {
				used[id.Name] = true
			}
			return true
		})
	})
	if len(used) == 0 {
		return nil // no normalizer in this package shape
	}
	for _, f := range keyFields {
		if !used[f.name] {
			ig.reportf(f.pos,
				"pool-key field %s is never referenced in the request normalizer (normalize/NormalizeRequest): requests differing in it would share a session pool",
				f.name)
		}
	}
	return nil
}

// wireDriftFleet closes the parity loop where the content hash and the
// pool key meet: every semantic wire field (per the api pass's WireFields
// fact) must surface in the serve types the fleet shards and pools on.
func wireDriftFleet(pass *analysis.Pass) error {
	var apiPkg, servePkg *types.Package
	for _, imp := range pass.Pkg.Imports() {
		switch imp.Path() {
		case apiPkgPath:
			apiPkg = imp
		case servePkgPath:
			servePkg = imp
		}
	}
	if apiPkg == nil || servePkg == nil {
		return nil
	}
	var wf WireFields
	if !pass.ImportPackageFact(apiPkg, &wf) {
		return nil // api pass exported nothing (not the wire-schema shape)
	}
	keySet := typeFieldSet(servePkg, "Key")
	reqSet := typeFieldSet(servePkg, "Request")
	if keySet == nil || reqSet == nil {
		return nil
	}
	pos := importPos(pass, servePkgPath)
	for _, name := range wf.Semantic {
		if wf.Vector[name] {
			if !reqSet[name] {
				pass.Reportf(pos,
					"semantic wire field %s has no serve.Request counterpart: the fleet cannot carry it to a worker (wire drift)", name)
			}
			continue
		}
		if !keySet[name] {
			pass.Reportf(pos,
				"semantic wire field %s is not part of the serve pool Key: sessions with different %s would share warmed pools while hashing differently (wire drift)", name, name)
		}
	}
	return nil
}

// structFields returns the declared fields of the package-level struct type
// named typeName, or nil when no such struct exists in this package.
func structFields(pass *analysis.Pass, typeName string) []wireField {
	var out []wireField
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	found := false
	ins.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSpec)
		if ts.Name.Name != typeName || inTestFile(pass.Fset, ts.Pos()) {
			return
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		found = true
		for _, fld := range st.Fields.List {
			vector := isVectorType(pass.TypesInfo.TypeOf(fld.Type))
			for _, name := range fld.Names {
				out = append(out, wireField{
					name: name.Name, pos: name.Pos(), vector: vector,
					doc: fld.Doc, comment: fld.Comment,
				})
			}
		}
	})
	if !found {
		return nil
	}
	return out
}

// frameFieldRefs collects which fields of the named struct type are
// referenced (read or written) via selector inside the named function.
func frameFieldRefs(pass *analysis.Pass, funcName, typeName string) map[string]bool {
	refs := make(map[string]bool)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Name.Name != funcName || fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		ast.Inspect(fd.Body, func(c ast.Node) bool {
			sel, ok := c.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isNamedStruct(pass.TypesInfo.TypeOf(sel.X), pass.Pkg, typeName) {
				refs[sel.Sel.Name] = true
			}
			return true
		})
	})
	return refs
}

// isNamedStruct reports whether t is (a pointer to) the named type
// pkg.typeName.
func isNamedStruct(t types.Type, pkg *types.Package, typeName string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() == pkg
}

// funcParams returns the named function's parameter variables and which of
// them its body actually uses.
func funcParams(pass *analysis.Pass, funcName string) ([]*types.Var, map[*types.Var]bool) {
	var params []*types.Var
	used := make(map[*types.Var]bool)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Name.Name != funcName || fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		for _, fl := range fd.Type.Params.List {
			for _, name := range fl.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					params = append(params, v)
				}
			}
		}
		ast.Inspect(fd.Body, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
					used[v] = true
				}
			}
			return true
		})
	})
	return params, used
}

// matchParam finds the parameter whose name case-insensitively equals the
// field name (Grid→grid, SStep→sstep, X0→x0).
func matchParam(params []*types.Var, field string) (*types.Var, bool) {
	for _, p := range params {
		if strings.EqualFold(p.Name(), field) {
			return p, true
		}
	}
	return nil, false
}

// typeFieldSet returns the field-name set of pkg's package-level struct
// type named typeName, via its type information (no source needed).
func typeFieldSet(pkg *types.Package, typeName string) map[string]bool {
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	set := make(map[string]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		set[st.Field(i).Name()] = true
	}
	return set
}

// isVectorType reports whether t's underlying type is a slice or array —
// the per-request payload shape (B, X0) that is hashed rather than folded
// into the session pool key.
func isVectorType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// importPos anchors cross-package diagnostics on the import declaration of
// the named package (falling back to the first file).
func importPos(pass *analysis.Pass, path string) token.Pos {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == path {
				return imp.Pos()
			}
		}
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Pos()
	}
	return token.NoPos
}
