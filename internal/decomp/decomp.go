// Package decomp implements POP-style block domain decomposition: the global
// grid is divided into rectangular blocks, blocks containing no ocean points
// are eliminated (the paper's "land ratio"), and the surviving blocks are
// assigned to ranks along a space-filling curve for locality — the strategy
// POP inherits from Dennis's inverse SFC partitioning (paper §7).
//
// Each rank owns one or more blocks, padded with a halo of width 2 (the POP
// default, which lets a non-diagonal preconditioner plus the matvec get by
// with one boundary update per solver iteration).
package decomp

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/grid"
	"repro/internal/stencil"
)

// DefaultHalo is POP's halo width.
const DefaultHalo = 2

// Block is one rectangular tile of the global domain.
type Block struct {
	ID     int  // index into Decomposition.Blocks
	BI, BJ int  // coordinates in the block grid
	X0, Y0 int  // global T-point coordinates of the interior origin
	NxI    int  // interior width (edge blocks may be narrower)
	NyI    int  // interior height
	Land   bool // true when the block contains no ocean point (eliminated)
	Rank   int  // owning rank; −1 for eliminated blocks
}

// Decomposition is a block layout of a grid plus the block→rank assignment.
type Decomposition struct {
	// G is the grid being decomposed.
	G                *grid.Grid
	BlockNx, BlockNy int // nominal block dimensions
	MX, MY           int // block-grid dimensions
	// Halo is the ghost-cell width around each block.
	Halo int
	// Blocks lists every block of the MX×MY layout, land included.
	Blocks      []Block
	OceanBlocks []int   // IDs of non-eliminated blocks, SFC order
	NRanks      int     // 0 until Assign is called
	ByRank      [][]int // block IDs owned by each rank
}

// New divides g into blocks of nominal size bx×by with the given halo width
// and eliminates all-land blocks. Call Assign (or AssignOnePerRank) before
// using the decomposition with the communication runtime.
func New(g *grid.Grid, bx, by, halo int) (*Decomposition, error) {
	if bx <= 0 || by <= 0 {
		return nil, fmt.Errorf("decomp: non-positive block size %d×%d", bx, by)
	}
	if halo < 1 {
		return nil, fmt.Errorf("decomp: halo must be ≥ 1, got %d", halo)
	}
	if bx < halo || by < halo {
		return nil, fmt.Errorf("decomp: block size %d×%d smaller than halo %d", bx, by, halo)
	}
	d := &Decomposition{
		G:       g,
		BlockNx: bx, BlockNy: by,
		MX:   (g.Nx + bx - 1) / bx,
		MY:   (g.Ny + by - 1) / by,
		Halo: halo,
	}
	d.Blocks = make([]Block, d.MX*d.MY)
	for bj := 0; bj < d.MY; bj++ {
		for bi := 0; bi < d.MX; bi++ {
			id := bj*d.MX + bi
			b := Block{
				ID: id, BI: bi, BJ: bj,
				X0: bi * bx, Y0: bj * by,
				NxI:  min(bx, g.Nx-bi*bx),
				NyI:  min(by, g.Ny-bj*by),
				Rank: -1,
			}
			b.Land = allLand(g, b)
			d.Blocks[id] = b
		}
	}
	// Order surviving blocks along a Hilbert curve over the block grid.
	for _, id := range hilbertOrder(d.MX, d.MY) {
		if !d.Blocks[id].Land {
			d.OceanBlocks = append(d.OceanBlocks, id)
		}
	}
	return d, nil
}

func allLand(g *grid.Grid, b Block) bool {
	for j := b.Y0; j < b.Y0+b.NyI; j++ {
		for i := b.X0; i < b.X0+b.NxI; i++ {
			if g.Mask[g.Idx(i, j)] {
				return false
			}
		}
	}
	return true
}

// LandRatio returns the fraction of blocks eliminated as all-land.
func (d *Decomposition) LandRatio() float64 {
	return 1 - float64(len(d.OceanBlocks))/float64(len(d.Blocks))
}

// Assign distributes the ocean blocks over nranks ranks in contiguous runs
// of the space-filling-curve order, balancing block counts to within one.
func (d *Decomposition) Assign(nranks int) error {
	nb := len(d.OceanBlocks)
	if nranks <= 0 || nranks > nb {
		return fmt.Errorf("decomp: cannot assign %d ocean blocks to %d ranks", nb, nranks)
	}
	d.NRanks = nranks
	d.ByRank = make([][]int, nranks)
	for pos, id := range d.OceanBlocks {
		r := pos * nranks / nb
		d.Blocks[id].Rank = r
		d.ByRank[r] = append(d.ByRank[r], id)
	}
	return nil
}

// AssignOnePerRank gives every ocean block its own rank — the typical
// high-resolution POP configuration the paper assumes in §2.2 — and returns
// the resulting rank count.
func (d *Decomposition) AssignOnePerRank() int {
	if err := d.Assign(len(d.OceanBlocks)); err != nil {
		panic(err) // unreachable: nranks == len(OceanBlocks) ≥ 1
	}
	return d.NRanks
}

// NeighborID returns the block ID at block-grid offset (di,dj) from b, or −1
// when it is outside the block grid or eliminated as land.
func (d *Decomposition) NeighborID(b *Block, di, dj int) int {
	bi, bj := b.BI+di, b.BJ+dj
	if bi < 0 || bi >= d.MX || bj < 0 || bj >= d.MY {
		return -1
	}
	id := bj*d.MX + bi
	if d.Blocks[id].Land {
		return -1
	}
	return id
}

// ChooseBlocking searches for a block size with the requested aspect ratio
// (ax:ay, e.g. 3:2 as in the paper's 0.1° runs) whose ocean-block count is
// as close as possible to targetCores. It returns the block dimensions and
// the resulting core (ocean block) count.
//
// Counting uses a one-pass prefix sum of the ocean mask, so evaluating a
// candidate costs O(blocks), and only a window of candidates around the
// analytic estimate c ≈ √(wet·N/(ax·ay·target)) is scanned — on the 0.1°
// grid this is the difference between sub-second and tens of minutes.
func ChooseBlocking(g *grid.Grid, targetCores, ax, ay int) (bx, by, cores int, err error) {
	if targetCores <= 0 {
		return 0, 0, 0, fmt.Errorf("decomp: non-positive target core count %d", targetCores)
	}
	pre := maskPrefixFor(g)
	cMax := min(g.Nx/ax, g.Ny/ay)
	if cMax < 1 {
		return 0, 0, 0, fmt.Errorf("decomp: no feasible %d:%d blocking for %d×%d grid", ax, ay, g.Nx, g.Ny)
	}
	est := int(math.Sqrt(g.OceanFraction() * float64(g.Nx*g.Ny) / float64(ax*ay*targetCores)))
	lo, hi := est/2, est*2+2
	if lo < 1 {
		lo = 1
	}
	if hi > cMax {
		hi = cMax
	}
	if lo > cMax {
		lo = cMax
	}
	bestDiff := -1
	for c := lo; c <= hi; c++ {
		tbx, tby := ax*c, ay*c
		n := pre.oceanBlocks(g, tbx, tby)
		diff := n - targetCores
		if diff < 0 {
			diff = -diff
		}
		if bestDiff < 0 || diff < bestDiff {
			bestDiff, bx, by, cores = diff, tbx, tby, n
		}
	}
	if bestDiff < 0 {
		return 0, 0, 0, fmt.Errorf("decomp: no feasible blocking for %d×%d grid", g.Nx, g.Ny)
	}
	return bx, by, cores, nil
}

// maskPrefix is a 2-D inclusive prefix sum of the ocean mask; entry
// (i+1, j+1) holds the count of ocean points in [0,i]×[0,j].
type maskPrefix struct {
	nx  int // = g.Nx+1
	sum []int32
}

func newMaskPrefix(g *grid.Grid) *maskPrefix {
	nx := g.Nx + 1
	p := &maskPrefix{nx: nx, sum: make([]int32, nx*(g.Ny+1))}
	for j := 0; j < g.Ny; j++ {
		var row int32
		for i := 0; i < g.Nx; i++ {
			if g.Mask[j*g.Nx+i] {
				row++
			}
			p.sum[(j+1)*nx+i+1] = p.sum[j*nx+i+1] + row
		}
	}
	return p
}

// rectOcean counts ocean points in [x0,x1)×[y0,y1).
func (p *maskPrefix) rectOcean(x0, y0, x1, y1 int) int32 {
	return p.sum[y1*p.nx+x1] - p.sum[y0*p.nx+x1] - p.sum[y1*p.nx+x0] + p.sum[y0*p.nx+x0]
}

// oceanBlocks counts the non-all-land blocks of a bx×by tiling.
func (p *maskPrefix) oceanBlocks(g *grid.Grid, bx, by int) int {
	n := 0
	for y0 := 0; y0 < g.Ny; y0 += by {
		y1 := min(y0+by, g.Ny)
		for x0 := 0; x0 < g.Nx; x0 += bx {
			if p.rectOcean(x0, y0, min(x0+bx, g.Nx), y1) > 0 {
				n++
			}
		}
	}
	return n
}

// per-grid prefix cache: grids are immutable after generation and few.
var (
	prefixMu    sync.Mutex
	prefixCache = map[*grid.Grid]*maskPrefix{}
)

func maskPrefixFor(g *grid.Grid) *maskPrefix {
	prefixMu.Lock()
	defer prefixMu.Unlock()
	if p, ok := prefixCache[g]; ok {
		return p
	}
	p := newMaskPrefix(g)
	prefixCache[g] = p
	return p
}

// PaddedDims returns the padded (halo-included) dimensions of block b.
func (d *Decomposition) PaddedDims(b *Block) (nxp, nyp int) {
	return b.NxI + 2*d.Halo, b.NyI + 2*d.Halo
}

// LocalOperator extracts the nine-point operator restricted to block b,
// including coefficients in the halo ring (zero outside the global domain).
func (d *Decomposition) LocalOperator(op *stencil.Operator, b *Block) *stencil.Local {
	h := d.Halo
	nxp, nyp := d.PaddedDims(b)
	l := &stencil.Local{
		NxP: nxp, NyP: nyp, H: h,
		AC:   make([]float64, nxp*nyp),
		AN:   make([]float64, nxp*nyp),
		AE:   make([]float64, nxp*nyp),
		ANE:  make([]float64, nxp*nyp),
		Mask: make([]bool, nxp*nyp),
	}
	for j := 0; j < nyp; j++ {
		gj := b.Y0 - h + j
		if gj < 0 || gj >= op.Ny {
			continue
		}
		for i := 0; i < nxp; i++ {
			gi := b.X0 - h + i
			if gi < 0 || gi >= op.Nx {
				continue
			}
			kl := j*nxp + i
			kg := gj*op.Nx + gi
			l.AC[kl] = op.AC[kg]
			l.AN[kl] = op.AN[kg]
			l.AE[kl] = op.AE[kg]
			l.ANE[kl] = op.ANE[kg]
			l.Mask[kl] = op.Mask[kg]
		}
	}
	return l
}

// Scatter copies a global field into a freshly allocated padded local array
// for block b, filling halo entries from the global field where they exist
// (so no initial halo exchange is needed) and zero outside the domain.
func (d *Decomposition) Scatter(global []float64, b *Block) []float64 {
	nxp, nyp := d.PaddedDims(b)
	loc := make([]float64, nxp*nyp)
	d.ScatterInto(loc, global, b)
	return loc
}

// ScatterInto is Scatter into a caller-owned padded array of size
// PaddedDims(b), overwriting every entry (out-of-domain positions are
// zeroed) — the allocation-free form the solvers use to refill session
// workspaces per solve.
func (d *Decomposition) ScatterInto(dst, global []float64, b *Block) {
	h := d.Halo
	nxp, nyp := d.PaddedDims(b)
	g := d.G
	for j := 0; j < nyp; j++ {
		row := dst[j*nxp : (j+1)*nxp]
		gj := b.Y0 - h + j
		if gj < 0 || gj >= g.Ny {
			for i := range row {
				row[i] = 0
			}
			continue
		}
		// In-domain columns are the contiguous run [lo, hi); zero the rest.
		lo := 0
		if b.X0-h < 0 {
			lo = h - b.X0
		}
		hi := nxp
		if b.X0-h+nxp > g.Nx {
			hi = g.Nx - b.X0 + h
		}
		for i := 0; i < lo; i++ {
			row[i] = 0
		}
		copy(row[lo:hi], global[gj*g.Nx+b.X0-h+lo:gj*g.Nx+b.X0-h+hi])
		for i := hi; i < nxp; i++ {
			row[i] = 0
		}
	}
}

// GatherInto copies the interior of a padded local array for block b into
// the global field.
func (d *Decomposition) GatherInto(global, local []float64, b *Block) {
	h := d.Halo
	nxp, _ := d.PaddedDims(b)
	g := d.G
	for j := 0; j < b.NyI; j++ {
		gj := b.Y0 + j
		for i := 0; i < b.NxI; i++ {
			global[gj*g.Nx+b.X0+i] = local[(j+h)*nxp+i+h]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
