package analysis_test

import (
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestTypedErr(t *testing.T) {
	analyzertest.Run(t, "testdata/typederr", poplint.TypedErr, "repro/internal/serve")
}
