package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CollectiveLockstep reports collective communication calls (comm.Rank's
// AllReduce, AllReduceOverlap, Barrier, Exchange, Exchange32,
// ExchangeMulti) that are reachable only under a branch conditioned on
// rank-local state.
//
// The SPMD contract (comm.World.Run) requires every rank to make collective
// calls in the same program order, exactly as MPI does; a collective behind
// `if somethingOnlyThisRankKnows { … }` deadlocks the ranks that skip it, or
// silently misaligns the reduction sequence — the failure mode the paper's
// P-CSI depends on never happening (one misordered global_sum and the
// Chebyshev iteration is no longer comparing the same residual on every
// rank). The analyzer computes, per function, the set of values tainted by
// rank-local data — anything derived from the rank handle's own fields
// (r.ID, r.Blocks, r.Clock(), …) — and reports collectives whose enclosing
// if/for/switch/select conditions mention tainted values.
//
// Two escapes keep the rule aligned with the SPMD idioms the solvers use:
//
//   - Values produced by a collective, or by comm.Rank's documented
//     lockstep accessors (ReduceFailed, ReduceSeq), are identical on every
//     rank, so conditions on data derived from them (reduced residuals,
//     shared convergence verdicts, crash flags that rode a reduction) are
//     divergence-safe.
//   - Same-package helper calls are followed one level interprocedurally:
//     the callee's body is solved with the caller's argument taint, and
//     the call result is tainted only when the callee actually returns
//     rank-local data. `g, n, ok := reduceRetry(r, …)` stays lockstep
//     because reduceRetry returns only reduction results, while a helper
//     returning `r.ID` taints its callers — the hole the v1 rule left
//     open by trusting any function handed the bare *comm.Rank. Calls
//     that do not resolve to a same-package declaration keep the v1
//     behavior: the bare rank handle does not propagate taint, every
//     other argument does.
//
// The comm package itself — the runtime that implements the collectives out
// of channels — is exempt.
var CollectiveLockstep = &analysis.Analyzer{
	Name: "collectivelockstep",
	Doc: "report collectives (AllReduce/Exchange/Barrier) guarded by rank-local conditions;" +
		" collectives must be reached in lockstep on every rank",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCollectiveLockstep,
}

func runCollectiveLockstep(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == commRankPath || !libraryScope(pass) {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Index the package's own function declarations so the taint analysis
	// can follow helper calls one level into their bodies.
	decls := make(map[*types.Func]*ast.FuncDecl)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		if f, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			decls[f] = fd
		}
	})

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		tc := newTaintCtx(pass.TypesInfo, decls)
		tc.solve(fd.Body)
		checkLockstep(pass, ig, tc, fd.Body)
	})
	return nil, nil
}

// libraryScope reports whether the pass is over a production (non-test)
// package. Synthesized external test packages are skipped wholesale;
// in-package test files are filtered per site by inTestFile.
func libraryScope(pass *analysis.Pass) bool {
	p := pass.Pkg.Path()
	return !isTestPkgPath(p)
}

// checkLockstep walks body keeping the enclosing control-flow conditions,
// and reports collective calls governed by a tainted (rank-local) one.
func checkLockstep(pass *analysis.Pass, ig *ignorer, tc *taintCtx, body ast.Node) {
	// guards is the stack of (condition, description) pairs governing the
	// node currently being visited.
	type guard struct {
		cond ast.Expr
		kind string
	}
	var guards []guard

	var walk func(n ast.Node)
	push := func(cond ast.Expr, kind string) { guards = append(guards, guard{cond, kind}) }
	pop := func() { guards = guards[:len(guards)-1] }

	walk = func(n ast.Node) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			push(x.Cond, "if")
			walk(x.Body)
			if x.Else != nil {
				walk(x.Else)
			}
			pop()
		case *ast.ForStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			if x.Cond != nil {
				push(x.Cond, "for")
			} else {
				push(nil, "for")
			}
			if x.Post != nil {
				walk(x.Post)
			}
			walk(x.Body)
			pop()
		case *ast.RangeStmt:
			push(x.X, "range")
			walk(x.Body)
			pop()
		case *ast.SwitchStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			for _, stmt := range x.Body.List {
				cc := stmt.(*ast.CaseClause)
				for _, c := range cc.List {
					push(x.Tag, "switch")
					push(c, "case")
					for _, s := range cc.Body {
						walk(s)
					}
					pop()
					pop()
				}
				if len(cc.List) == 0 { // default clause: only the tag governs
					push(x.Tag, "switch")
					for _, s := range cc.Body {
						walk(s)
					}
					pop()
				}
			}
		case *ast.TypeSwitchStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			push(nil, "type switch")
			walk(x.Body)
			pop()
		case *ast.SelectStmt:
			push(nil, "select")
			walk(x.Body)
			pop()
		case *ast.CallExpr:
			if name := rankMethodName(pass.TypesInfo, x); collectiveMethods[name] {
				for _, g := range guards {
					if g.kind == "select" {
						ig.reportf(x.Pos(), "collective %s inside select: case choice is scheduling-dependent, ranks will diverge", name)
						break
					}
					if g.cond != nil && tc.tainted(g.cond) {
						ig.reportf(x.Pos(),
							"collective %s is guarded by rank-local condition %q (%s); collectives must be reached in lockstep on every rank — condition only on data that rode a prior reduction",
							name, types.ExprString(g.cond), g.kind)
						break
					}
				}
			}
			for _, a := range x.Args {
				walk(a)
			}
			walk(x.Fun)
		default:
			// Generic traversal for everything without control-flow meaning.
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				switch c.(type) {
				case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
					*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.CallExpr:
					walk(c)
					return false
				}
				return true
			})
		}
	}
	walk(body)
}

// taintCtx tracks which local variables carry rank-local data within one
// top-level function (nested function literals included: captured variables
// share the same *types.Var objects, so taint flows into the SPMD program
// closures the solvers pass to World.Run).
type taintCtx struct {
	info *types.Info
	set  map[*types.Var]bool
	// decls maps the package's own functions to their declarations for
	// one-level interprocedural summaries (nil disables them — the
	// reductionwidth analyzer runs the same machinery intra-procedurally).
	decls map[*types.Func]*ast.FuncDecl
	// depth is the summary nesting level: helper bodies are solved at
	// depth 1, where further helper calls fall back to the syntactic rule,
	// bounding the analysis to one interprocedural level.
	depth int
	// memo caches helper summaries by (declaration, argument-taint mask);
	// the in-flight entry doubles as the recursion guard.
	memo map[summaryKey]bool
}

// summaryKey identifies one helper summary: the callee declaration and the
// bitmask of which incoming parameters (receiver first) carry taint.
type summaryKey struct {
	fd   *ast.FuncDecl
	mask uint64
}

func newTaintCtx(info *types.Info, decls map[*types.Func]*ast.FuncDecl) *taintCtx {
	return &taintCtx{
		info:  info,
		set:   make(map[*types.Var]bool),
		decls: decls,
		memo:  make(map[summaryKey]bool),
	}
}

// solve runs the forward taint propagation to a fixpoint over body.
func (tc *taintCtx) solve(body ast.Node) {
	for range 32 {
		if !tc.propagate(body) {
			return
		}
	}
}

// propagate performs one pass over every assignment-like statement, marking
// left-hand sides whose right-hand sides are tainted. Returns whether the
// set grew.
func (tc *taintCtx) propagate(body ast.Node) bool {
	grew := false
	mark := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return // writes through fields/indices do not track
		}
		obj := tc.info.Defs[id]
		if obj == nil {
			obj = tc.info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !tc.set[v] {
			tc.set[v] = true
			grew = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
				if tc.tainted(x.Rhs[0]) {
					for _, l := range x.Lhs {
						mark(l)
					}
				}
				return true
			}
			for i, r := range x.Rhs {
				if tc.tainted(r) {
					mark(x.Lhs[i])
				}
			}
		case *ast.RangeStmt:
			if tc.tainted(x.X) {
				if x.Key != nil {
					mark(x.Key)
				}
				if x.Value != nil {
					mark(x.Value)
				}
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				if tc.tainted(v) {
					if len(x.Values) == len(x.Names) {
						mark(x.Names[i])
					} else {
						for _, name := range x.Names {
							mark(name)
						}
					}
				}
			}
		}
		return true
	})
	return grew
}

// tainted reports whether e mentions rank-local data: a field or
// non-lockstep method of the rank handle, or a variable previously marked.
func (tc *taintCtx) tainted(e ast.Expr) bool {
	found := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if name := rankMethodName(tc.info, x); name != "" &&
				(collectiveMethods[name] || lockstepRankMethods[name]) {
				return false // result is identical on every rank
			}
			// One-level interprocedural rule: a call resolving to a
			// same-package declaration is summarized — its result is tainted
			// exactly when the callee's returns are, given this call's
			// argument taint.
			if tc.depth == 0 && tc.decls != nil {
				if f := calleeFunc(tc.info, x); f != nil {
					if fd, ok := tc.decls[f]; ok {
						if tc.summaryTainted(fd, x) {
							found = true
						}
						return false
					}
				}
			}
			// Fallback for unresolvable or cross-package calls: a bare rank
			// handle passed whole does not taint the call; every other
			// argument propagates.
			for _, a := range x.Args {
				if tc.isBareRank(a) {
					continue
				}
				ast.Inspect(a, visit)
			}
			ast.Inspect(x.Fun, visit)
			return false
		case *ast.SelectorExpr:
			if t := tc.info.TypeOf(x.X); t != nil && isRankType(t) {
				name := x.Sel.Name
				if name == "World" || collectiveMethods[name] || lockstepRankMethods[name] {
					return false // shared world config / lockstep accessors
				}
				found = true // r.ID, r.Blocks, r.Clock, … — rank-local
				return false
			}
			return true
		case *ast.Ident:
			if v, ok := tc.objOf(x).(*types.Var); ok && tc.set[v] {
				found = true
			}
			return false
		case *ast.FuncLit:
			return false // the closure value itself is not data
		}
		return true
	}
	ast.Inspect(e, visit)
	return found
}

// summaryTainted reports whether the call's results carry rank-local data:
// the callee body is solved in a fresh context seeded with the caller-side
// taint of each argument (the bare rank handle itself is not data), then
// every return expression is checked. Summaries are memoized per
// (declaration, argument-taint mask), and the in-flight memo entry answers
// recursive calls with "clean" so the computation terminates.
func (tc *taintCtx) summaryTainted(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	pvars := paramVars(tc.info, fd)
	paramStart := 0
	var seed []*types.Var
	var mask uint64
	markParam := func(i int) {
		if i >= 0 && i < len(pvars) && pvars[i] != nil {
			seed = append(seed, pvars[i])
			if i < 64 {
				mask |= 1 << i
			}
		}
	}
	if fd.Recv != nil {
		paramStart = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if !tc.isBareRank(sel.X) && tc.tainted(sel.X) {
				markParam(0)
			}
		}
	}
	for i, a := range call.Args {
		if tc.isBareRank(a) {
			continue
		}
		if tc.tainted(a) {
			idx := paramStart + i
			if idx >= len(pvars) { // variadic tail
				idx = len(pvars) - 1
			}
			markParam(idx)
		}
	}

	key := summaryKey{fd: fd, mask: mask}
	if r, ok := tc.memo[key]; ok {
		return r
	}
	tc.memo[key] = false // recursion guard: self-calls answer clean
	sub := &taintCtx{info: tc.info, set: make(map[*types.Var]bool),
		decls: tc.decls, depth: tc.depth + 1, memo: tc.memo}
	for _, v := range seed {
		sub.set[v] = true
	}
	sub.solve(fd.Body)
	result := returnsTainted(sub, fd)
	tc.memo[key] = result
	return result
}

// paramVars lists the callee's parameter variables, receiver first; an
// unnamed receiver or parameter occupies its slot as nil.
func paramVars(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	add := func(fl *ast.Field) {
		if len(fl.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, nm := range fl.Names {
			v, _ := info.Defs[nm].(*types.Var)
			out = append(out, v)
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		add(fd.Recv.List[0])
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			add(fl)
		}
	}
	return out
}

// returnsTainted reports whether any return of fd (explicit result
// expressions, or named results on a naked return) is tainted in the
// solved callee context. Returns inside nested function literals belong to
// the literal, not fd, and are skipped.
func returnsTainted(sub *taintCtx, fd *ast.FuncDecl) bool {
	var named []*types.Var
	if fd.Type.Results != nil {
		for _, fl := range fd.Type.Results.List {
			for _, nm := range fl.Names {
				if v, ok := sub.info.Defs[nm].(*types.Var); ok {
					named = append(named, v)
				}
			}
		}
	}
	tainted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if tainted {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for _, v := range named {
				if sub.set[v] {
					tainted = true
				}
			}
			return true
		}
		for _, e := range ret.Results {
			if sub.tainted(e) {
				tainted = true
			}
		}
		return true
	})
	return tainted
}

// isBareRank reports whether e is a plain reference of type comm.Rank or
// *comm.Rank (the whole handle, not data extracted from it).
func (tc *taintCtx) isBareRank(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		t := tc.info.TypeOf(e)
		return t != nil && isRankType(t)
	}
	return false
}

func (tc *taintCtx) objOf(id *ast.Ident) types.Object {
	if o := tc.info.Uses[id]; o != nil {
		return o
	}
	return tc.info.Defs[id]
}
