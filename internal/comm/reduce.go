package comm

import (
	"repro/internal/faults"
	"repro/internal/obs"
)

// Global reductions. The combine order is a fixed binomial tree over rank
// IDs — the same association an MPI_Allreduce on a power-of-two communicator
// performs — so results are bitwise reproducible regardless of goroutine
// scheduling, and the virtual cost grows as log(p)·α exactly like the
// paper's Eq. 2 term.

// AllReduce sums vals element-wise across all ranks and returns the global
// result. It also synchronizes virtual clocks: every rank leaves at
// max(entry clocks) + ReduceTime. Collective: every rank must call it the
// same number of times with equal-length arguments.
//
// The returned slice is a persistent reduction workspace shared read-only
// by all ranks: it stays valid until the rank's next collective call, then
// may be overwritten. Callers must not write to it, and callers needing the
// values longer must copy them out — the solvers all consume the result
// immediately, which is what lets the steady-state reduction path allocate
// nothing.
//
// Alongside the maximum entry clock the reduction carries the ID of the
// rank that owned it — the straggler whose late arrival every other rank
// waited for. When tracing is enabled each rank records a reduce span with
// that attribution and its own wait (max entry − own entry), which is what
// lets a trace answer "which rank was the critical path of that reduction?"
// (ties break toward the lowest rank, deterministically).
//
// Buffer-reuse safety: each rank accumulates into its own reducePart buffer
// and publishes it to its parent exactly once per reduction; the parent
// finishes reading it before it sends the broadcast that unblocks the
// child, so the child's next-reduction overwrite is ordered after the read.
// The down phase forwards the ROOT's buffer pointer unchanged — a pure
// read-only fan-out, so the broadcast costs no copies and no dependent
// cache-line hand-offs down the tree. The root alternates between two
// result buffers by call parity: the buffer of reduction k is rewritten at
// reduction k+2, and the root can only reach k+2 after its up-phase for
// k+1 completes, which transitively requires every rank to have entered
// reduction k+1 — i.e. to have passed the collective call that ends the
// returned slice's documented lifetime. Every hand-off in that chain is a
// channel operation, so the ordering is a happens-before edge, not just a
// timing argument.
//
//pop:hotpath
func (r *Rank) AllReduce(vals []float64) []float64 {
	w := r.World
	p := w.NRank
	// Fault injection, straggler class: delay this rank's entry. The delay
	// lands on the clock *before* the entry snapshot, so it propagates into
	// the reduction's max-entry clock and every other rank waits for it —
	// the amplification mechanism of the paper's §5.2 jitter analysis.
	if w.Faults.Enabled() {
		if d := w.Faults.StragglerDelay(r.ID, r.faultBase+r.reduceSeq); d > 0 {
			r.ctr.TComp += d
			r.clock += d
			if r.trace != nil {
				r.trace.Add(obs.Event{Name: obs.EvFault, Point: true, T0: r.clock,
					Value: d, Aux: float64(faults.Straggler), Iter: -1, Straggler: -1})
			}
		}
	}
	entry := r.clock
	seq := r.reduceSeq
	r.reduceSeq++
	r.ctr.Reductions++

	// Two metadata slots ride behind the payload: [n] the max entry clock,
	// [n+1] the rank owning it. Both reduce with max-by-clock, so the
	// payload sum below is untouched.
	n := len(vals)
	partial := grow(&w.reducePart[r.ID], n+2)
	copy(partial, vals)
	partial[n] = r.clock
	partial[n+1] = float64(r.ID)

	var result []float64
	if p == 1 {
		result = grow(&w.reduceRoot[seq&1], n+2)
		copy(result, partial)
	} else {
		// Up phase: fold children into this rank in the precomputed
		// low-step-first order (the tree is a property of the World, not
		// of the call — see NewWorld).
		kids := w.reduceKids[r.ID]
		for _, child := range kids {
			m := recvYield(r, w.reduceCh[child])
			for i := 0; i < n; i++ {
				partial[i] += m[i]
			}
			if m[n] > partial[n] || (m[n] == partial[n] && m[n+1] < partial[n+1]) {
				partial[n] = m[n]
				partial[n+1] = m[n+1]
			}
		}
		if parent := w.reduceParent[r.ID]; parent >= 0 {
			w.reduceCh[r.ID] <- partial
			result = recvYield(r, w.bcastCh[r.ID])
		} else {
			// Only the root's result escapes to other ranks, so only the
			// root needs the parity pair (r.ID == 0 here, so r.reduceSeq
			// is the root's own call count).
			result = grow(&w.reduceRoot[seq&1], n+2)
			copy(result, partial)
		}
		// Down phase: forward the root's buffer, largest subtree first.
		for i := len(kids) - 1; i >= 0; i-- {
			w.bcastCh[kids[i]] <- result
		}
	}

	newClock := result[n] + w.Cost.ReduceTime(p, seq)
	r.ctr.TReduce += newClock - entry
	r.clock = newClock
	if r.trace != nil {
		r.trace.Add(obs.Event{Name: obs.EvReduce, T0: entry, T1: newClock,
			Value: float64(n), Straggler: int(result[n+1]), Wait: result[n] - entry,
			Iter: -1})
	}
	// Fault injection, reduce-fail class: the collective "failed" — every
	// rank draws the identical verdict from seq alone, sets its flag, and
	// resilient callers re-enter the reduction in lockstep. The reduced
	// values are still returned (callers that don't check the flag behave
	// exactly as before).
	r.reduceFailed = false
	if w.Faults.Enabled() && w.Faults.FailReduce(r.ID, r.faultBase+seq) {
		r.reduceFailed = true
		if r.trace != nil {
			r.trace.Add(obs.Event{Name: obs.EvFault, Point: true, T0: newClock,
				Value: float64(seq), Aux: float64(faults.ReduceFail), Iter: -1,
				Straggler: -1})
		}
	}
	return result[:n]
}

// Barrier blocks until every rank reaches it (an empty AllReduce).
func (r *Rank) Barrier() { r.AllReduce(nil) }

// AllReduceOverlap is AllReduce with communication/computation overlap
// pricing: overlapFlops of local work proceed *during* the reduction (the
// pipelined-CG trick of Ghysels & Vanroose, paper §7), so the rank leaves
// at max(reduction completion, own clock + compute time). The caller must
// perform the overlapped arithmetic right after this returns, without
// charging it again through AddFlops.
//
//pop:hotpath
func (r *Rank) AllReduceOverlap(vals []float64, overlapFlops int64) []float64 {
	w := r.World
	entry := r.clock
	flopT := w.Cost.FlopTime(overlapFlops, r.ID, r.flopSeq)
	r.flopSeq++
	r.ctr.Flops += overlapFlops

	out := r.AllReduce(vals)
	// AllReduce advanced the clock to maxEntry+tree and charged the whole
	// gap to TReduce; re-attribute: compute hides under the reduction.
	reduceExit := r.clock
	exit := reduceExit
	if entry+flopT > exit {
		exit = entry + flopT
	}
	r.ctr.TComp += flopT
	r.ctr.TReduce -= reduceExit - entry // undo AllReduce's attribution
	if red := exit - entry - flopT; red > 0 {
		r.ctr.TReduce += red
	}
	r.clock = exit
	return out
}
