package analysis_test

import (
	"strings"
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

// TestWireDriftAPI runs the seeded-drift fixture: SStep carried by the
// frame and the pool key but missing from HashSolve (the PR-9 bug class),
// plus the surrounding frame- and hash-parity violations.
func TestWireDriftAPI(t *testing.T) {
	analyzertest.Run(t, "testdata/wiredrift", poplint.WireDrift, "repro/internal/api")
}

// TestWireDriftServe covers pool-key completeness: a Key field the
// normalizer never references.
func TestWireDriftServe(t *testing.T) {
	analyzertest.Run(t, "testdata/wiredrift", poplint.WireDrift, "repro/internal/serve")
}

// TestWireDriftFleet covers the fact-driven cross-package check: the api
// package's semantic field set (exported as a WireFields fact) checked
// against the serve pool-key surface where fleet imports both.
func TestWireDriftFleet(t *testing.T) {
	analyzertest.Run(t, "testdata/wiredrift", poplint.WireDrift, "repro/internal/fleet")
}

// TestWireDriftClean asserts zero diagnostics across a fully-wired
// api/serve/fleet triple with annotated nonsemantic fields.
func TestWireDriftClean(t *testing.T) {
	for _, path := range []string{
		"repro/internal/api", "repro/internal/serve", "repro/internal/fleet",
	} {
		analyzertest.Run(t, "testdata/wiredriftclean", poplint.WireDrift, path)
	}
}

// TestWireDriftMalformedDirective asserts a reasonless //pop:nonsemantic
// is reported (its diagnostic lands on the directive's own line, which a
// want comment cannot occupy, so this asserts on raw messages).
func TestWireDriftMalformedDirective(t *testing.T) {
	msgs := analyzertest.Diagnostics(t, "testdata/wiredriftdirective", poplint.WireDrift, "repro/internal/api")
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "malformed //pop:nonsemantic directive") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected malformed-directive diagnostic, got %q", msgs)
	}
}
