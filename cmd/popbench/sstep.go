package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
)

// sstepReport is the machine-readable result of `popbench -sstep`, written
// as BENCH_sstep.json: the reduction-count crossover sweep of the
// communication-avoiding s-step solver against ChronGear and P-CSI at the
// same tolerance, with the perfmodel closed-form prediction alongside each
// measured virtual time. BoundOK asserts the solver's contract: every
// s-step row performed at most ceil(iters/s)+1 global reductions.
type sstepReport struct {
	Name      string               `json:"name"`
	Timestamp string               `json:"timestamp"`
	Hardware  experiments.Hardware `json:"hardware"`
	Machine   string               `json:"machine"`
	Grid      string               `json:"grid"`
	Precond   string               `json:"precond"`
	Cores     int                  `json:"cores"`
	Tol       float64              `json:"tol"`
	Rows      []sstepRow           `json:"rows"`
	BoundOK   bool                 `json:"reduction_bound_ok"`
}

// sstepRow is one solver configuration in the sweep.
type sstepRow struct {
	Method            string  `json:"method"`
	SStep             int     `json:"sstep,omitempty"`
	Iterations        int     `json:"iterations"`
	Converged         bool    `json:"converged"`
	RelResidual       float64 `json:"rel_residual"`
	ReductionsPerRank int64   `json:"reductions_per_rank"`
	ReductionBound    int64   `json:"reduction_bound,omitempty"`
	VirtualSec        float64 `json:"virtual_sec"`
	PredictedSec      float64 `json:"predicted_sec"`
	WallSec           float64 `json:"wall_sec"`
}

// runSStepBench sweeps s ∈ {1,2,4,8} against the per-iteration solvers on
// the priced virtual machine, verifying the reduction bound from the
// communicator's own counters and recording measured-vs-predicted times.
func runSStepBench(dir, machineName string, out io.Writer) error {
	const (
		gridName = "test"
		cores    = 16
		tol      = 1e-12
	)
	m, err := perfmodel.ByName(machineName)
	if err != nil || m == nil {
		return fmt.Errorf("popbench -sstep needs a priced machine model, got %q (%v)", machineName, err)
	}
	g, err := pop.NewGrid(gridName)
	if err != nil {
		return err
	}
	rhs := benchRHS(g)
	n2 := float64(g.Nx * g.Ny)

	type cfg struct {
		method pop.Method
		sstep  int
	}
	cfgs := []cfg{
		{pop.MethodChronGear, 0},
		{pop.MethodPCSI, 0},
		{pop.MethodSStep, 1},
		{pop.MethodSStep, 2},
		{pop.MethodSStep, 4},
		{pop.MethodSStep, 8},
	}

	rep := sstepReport{
		Name:      "sstep",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Hardware:  experiments.DetectHardware(0),
		Machine:   m.Name,
		Grid:      gridName,
		Precond:   pop.PrecondEVP.String(),
		Cores:     cores,
		Tol:       tol,
		BoundOK:   true,
	}
	fmt.Fprintf(out, "# sstep: %s grid, %d virtual cores, evp, tol %.0e, machine %s\n",
		gridName, cores, tol, m.Name)

	for _, c := range cfgs {
		solver, err := pop.NewSolver(g, pop.SolverSpec{
			Method: c.method, Precond: pop.PrecondEVP, Cores: cores,
			MachineName: m.Name,
			Options:     pop.SolverOptions{Tol: tol, SStep: c.sstep},
		})
		if err != nil {
			return err
		}
		// Estimate the spectrum outside the timed solve so its reductions
		// land in EigenStats, not the solve's counters.
		if _, _, _, err := solver.EstimateEigenvalues(rhs, 0); err != nil {
			return err
		}
		t0 := time.Now()
		res, _, err := solver.Solve(rhs, nil)
		if err != nil {
			return err
		}
		wall := time.Since(t0).Seconds()
		nrank := int64(len(res.Stats.PerRank))
		perRank := res.Stats.Sum.Reductions / nrank
		row := sstepRow{
			Method:            c.method.String(),
			SStep:             c.sstep,
			Iterations:        res.Iterations,
			Converged:         res.Converged,
			RelResidual:       res.RelResidual,
			ReductionsPerRank: perRank,
			VirtualSec:        res.Stats.MaxClock,
			WallSec:           wall,
		}
		k := float64(res.Iterations)
		switch c.method {
		case pop.MethodChronGear:
			row.PredictedSec = perfmodel.EqChronGearEVP(m, n2, cores, k)
		case pop.MethodPCSI:
			row.PredictedSec = perfmodel.EqPCSIEVP(m, n2, cores, k)
		case pop.MethodSStep:
			row.PredictedSec = perfmodel.EqSStepEVP(m, n2, cores, k, c.sstep)
			row.ReductionBound = int64((res.Iterations+c.sstep-1)/c.sstep) + 1
			if !res.Converged || perRank > row.ReductionBound {
				rep.BoundOK = false
			}
		}
		rep.Rows = append(rep.Rows, row)
		label := row.Method
		if c.sstep > 0 {
			label = fmt.Sprintf("%s s=%d", row.Method, c.sstep)
		}
		fmt.Fprintf(out, "# sstep: %-12s iters=%-4d reductions/rank=%-4d virtual=%.4gs predicted=%.4gs wall=%.3gs\n",
			label, row.Iterations, perRank, row.VirtualSec, row.PredictedSec, wall)
	}

	path := filepath.Join(dir, "BENCH_sstep.json")
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "# sstep: report %s\n", path)
	if !rep.BoundOK {
		return fmt.Errorf("sstep: a sweep row broke the ceil(iters/s)+1 reduction bound (see %s)", path)
	}
	return nil
}
