#!/bin/sh
# verify.sh — build, vet, test (with the race detector: the goroutine
# SPMD runtime is the point of the exercise), then smoke-run popsolve
# and assert its telemetry outputs are well-formed.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== zero-allocation steady state (comm + core) =="
# The allocation-discipline gate: pooled halo buffers, reduction workspaces
# and solver arenas must keep the steady-state iteration allocation-free and
# bitwise deterministic. -count=1 defeats the test cache so the gate always
# executes.
go test -race -count=1 \
    -run 'TestExchangeMultiBufferReuse|TestSteadyStateCommAllocFree' \
    ./internal/comm/
go test -race -count=1 \
    -run 'TestSteadyStateSolverAllocFree|TestPCSIResidualHistoryBitwiseDeterministic' \
    ./internal/core/

echo "== popsolve telemetry smoke run =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/popsolve -grid test -method pcsi -precond evp -cores 12 \
    -trace "$tmp/t.jsonl" -metrics "$tmp/m.prom" > "$tmp/out.txt"

grep -q 'converged=true' "$tmp/out.txt"
grep -q 'per-rank phase breakdown' "$tmp/out.txt"
grep -q 'straggler attribution' "$tmp/out.txt"

# Trace: every line parses as JSON; the solver events are present.
python3 - "$tmp/t.jsonl" <<'EOF'
import json, sys
names = set()
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        ev = json.loads(line)
        assert ev["ev"] in ("B", "E", "P"), f"line {i}: bad ev {ev['ev']}"
        names.add(ev["name"])
for want in ("compute", "halo", "reduce", "residual", "eig_bound", "run_begin"):
    assert want in names, f"trace missing {want!r} events (saw {sorted(names)})"
EOF
grep -q '"straggler"' "$tmp/t.jsonl"

# Metrics: Prometheus text exposition with the headline series.
grep -q '^# TYPE popsolve_iterations_total counter' "$tmp/m.prom"
grep -q '^popsolve_converged 1' "$tmp/m.prom"
grep -q 'popsolve_reduce_wait_seconds_bucket{le="+Inf"}' "$tmp/m.prom"

echo "verify.sh: OK"
