package obs_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestPrometheusEscapingConformance checks the text-exposition hardening:
// HELP text and label values containing backslashes or newlines must render
// with the format's escapes (\\ and \n) so one hostile grid name or error
// string cannot corrupt the whole scrape.
func TestPrometheusEscapingConformance(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("esc_total", "path C:\\pop\nsecond line").Inc()
	// A hand-built label set with a raw backslash and a raw newline in the
	// value — exactly what a careless caller would produce.
	reg.Gauge("esc_gauge{path=\"C:\\temp\nx\"}", "g").Set(1)
	// A %q-built label value is already escaped and must pass through
	// unchanged (idempotency of sanitization).
	quoted := fmt.Sprintf("esc_quoted{err=%q}", "a\\b\nc")
	reg.Counter(quoted, "q").Inc()
	reg.Histogram("esc_hist{key=\"a\\z\"}", "h", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if !strings.Contains(out, `# HELP esc_total path C:\\pop\nsecond line`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_gauge{path="C:\\temp\nx"} 1`) {
		t.Errorf("raw label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_quoted{err="a\\b\nc"} 1`) {
		t.Errorf("%%q-built label value was re-escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_hist_bucket{key="a\\z",le="1"} 1`) {
		t.Errorf("histogram label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_hist_sum{key="a\\z"} 0.5`) {
		t.Errorf("histogram sum label not escaped:\n%s", out)
	}

	// Conformance: every emitted line is 'name value', '# HELP …', or
	// '# TYPE …' — no line may be a fragment produced by an unescaped
	// newline inside a value.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
			continue
		}
		if !strings.HasPrefix(fields[0], "esc_") {
			t.Errorf("sample line %q does not start with a metric name", line)
		}
	}
}

// TestSanitizeIdempotent: sanitizing twice changes nothing — the state
// machine must recognize its own output as already escaped.
func TestSanitizeIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("idem{v=\"a\\b\n\\\"c\\\\d\"}", "").Set(2)
	render := func() string {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	if second := render(); second != first {
		t.Errorf("repeated exposition differs:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if strings.Contains(first, "\n\\") && !strings.Contains(first, `\n`) {
		t.Errorf("raw newline survived sanitization:\n%s", first)
	}
}

// TestConcurrentRegistryRegistration hammers get-or-create registration of
// overlapping names from many goroutines while exposition runs — the
// registry's documented concurrency contract, checked under -race.
func TestConcurrentRegistryRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				reg.Counter(fmt.Sprintf("cc_total{k=\"%d\"}", i%7), "shared counter").Inc()
				reg.Gauge("cg", "shared gauge").Set(float64(w))
				reg.Histogram("ch", "shared histogram", []float64{1, 2, 4}).Observe(float64(i % 5))
			}
		}(w)
	}
	for e := 0; e < 2; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Errorf("exposition during registration: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	var total int64
	for i := 0; i < 7; i++ {
		total += reg.Counter(fmt.Sprintf("cc_total{k=\"%d\"}", i), "").Value()
	}
	if total != 8*100 {
		t.Errorf("counter increments lost: got %d, want 800", total)
	}
	if got := reg.Histogram("ch", "", nil).Count(); got != 8*100 {
		t.Errorf("histogram observations lost: got %d, want 800", got)
	}
}
