package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/comm"
)

// SolvePCSI runs the preconditioned Classical Stiefel Iteration with a
// background context; see SolvePCSIContext.
func (s *Session) SolvePCSI(b, x0 []float64) (Result, []float64, error) {
	return s.SolvePCSIContext(context.Background(), b, x0)
}

// SolvePCSIContext runs the preconditioned Classical Stiefel Iteration
// (paper Algorithm 2) — a Chebyshev-type method whose iteration body
// contains *no* inner products: the only global reductions are the
// convergence checks every CheckEvery iterations. Its Chebyshev interval
// [ν, μ] comes from the Session's eigenvalue estimates; when absent,
// EstimateEigenvalues runs first with the given b (charged to the returned
// Result's EigSteps and the Session's EigenStats, mirroring POP's one-time
// solver initialization).
//
// With PrecondIdentity this is the plain CSI solver of Hu et al. 2013.
//
// Cancellation is observed at convergence-check boundaries only (see the
// session-level cancellation protocol) — for P-CSI those checks are also
// the iteration's only reductions, so a cancelled solve still performs
// zero extra communication.
func (s *Session) SolvePCSIContext(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Setup(); err != nil {
		return Result{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, nil, ctxSolveErr(ctx, "pcsi", 0)
	}
	if s.Mu == 0 {
		if _, _, _, err := s.EstimateEigenvalues(nil, 0); err != nil {
			return Result{}, nil, err
		}
	}
	if !(s.Nu > 0 && s.Mu > s.Nu) {
		return Result{}, nil, fmt.Errorf("core: invalid Chebyshev interval [%g, %g]: %w", s.Nu, s.Mu, ErrBadSpec)
	}
	o := s.Opts
	out := s.solveOut()
	res := Result{Solver: "pcsi", Precond: o.Precond, Nu: s.Nu, Mu: s.Mu, EigSteps: s.EigSteps}
	trace := &SolveTrace{EigBounds: s.EigTrace,
		Residuals: make([]ResidualPoint, 0, o.MaxIters/o.CheckEvery+1)}
	cancelled := false // written by rank 0 only, read after Run
	faulted := false   // written by rank 0 only, read after Run

	// Resilient mode runs only under an active fault injector; otherwise
	// every branch below reduces to the legacy path and the solve is bitwise
	// identical to a world that never heard of fault injection.
	inj := s.W.Faults
	resilient := inj.Enabled() && o.MaxRecoveries >= 0

	nu, mu := s.Nu, s.Mu

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.scatterMasked(r, "csi.x", x0)
		bs := s.scatterMasked(r, "csi.b", b)
		rr := s.field(r, "csi.r")
		rp := s.field(r, "csi.rp")
		// dx starts from zero: the recurrence's first update multiplies the
		// previous dx by 0, and a non-finite leftover from an earlier faulted
		// solve on this session would otherwise survive the product.
		dx := s.zeroField(r, "csi.dx")
		// ck is the iteration-state checkpoint (a copy of x at the last
		// clean convergence check), maintained only in resilient mode.
		var ck [][]float64
		if resilient {
			ck = s.field(r, "csi.ckpt")
		}
		// One reduction payload reused by every collective in this program —
		// hoisted so the steady-state loop allocates nothing. Checks append
		// the cancellation flag (and, in resilient mode, the crash flag).
		payload := make([]float64, 3)

		payload[0] = stageInitResidual(r, rs, rr, bs, xs)
		var bnorm float64
		if resilient {
			g, nret, ok := reduceRetry(r, inj, payload[:1])
			if r.ID == 0 {
				res.Recovery.ReduceRetries += nret
			}
			if !ok {
				if r.ID == 0 {
					faulted = true
				}
				return
			}
			bnorm = math.Sqrt(g[0])
		} else {
			bnorm = math.Sqrt(r.AllReduce(payload[:1])[0])
		}
		if r.ID == 0 {
			res.BNorm = bnorm
		}
		if bnorm == 0 {
			s.zeroSolutionExit(r, out, xs)
			if r.ID == 0 {
				res.Converged = true
			}
			return
		}
		target := o.Tol * bnorm

		// Chebyshev parameters from the interval [ν, μ] (Algorithm 2 line
		// 1). Recomputed when stagnation forces the interval wider; the
		// widening is rank-local state (identical on every rank), so
		// shadow the captured bounds.
		nu, mu := nu, mu
		alpha := 2 / (mu - nu)
		beta := (mu + nu) / (mu - nu)
		gamma := beta / alpha // spectrum centre
		inv4a2 := 1 / (4 * alpha * alpha)

		// Algorithm 2 initialization: Δx₀ = γ⁻¹M⁻¹r₀, x₁ = x₀ + Δx₀.
		for i := 0; i < nb; i++ {
			loc := rs.locs[i]
			rs.pre[i].Apply(rp[i], rr[i])
			r.AddFlops(rs.pre[i].ApplyFlops())
			chebUpdate(loc, dx[i], rp[i], 1/gamma, 0)
			axpy(loc, xs[i], dx[i], 1)
			r.AddFlops(3 * int64(loc.InteriorLen()))
		}
		r.Exchange(xs)
		for i := 0; i < nb; i++ {
			residual(rs.locs[i], rr[i], bs[i], xs[i])
			r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
		}
		if resilient {
			// Initial checkpoint: the post-initialization iterate (free in
			// the cost model — node-local memory traffic, no communication).
			copyFields(ck, xs)
		}

		omega := 2 / gamma // ω₀
		converged := false
		prevRn := math.Inf(1)
		widenings, slowChecks, raises := 0, 0, 0
		restores := 0 // identical on every rank: driven by reduced verdicts
		k := 0
		for k < o.MaxIters {
			k++
			omega = 1 / (gamma - inv4a2*omega) // the iterated function
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				rs.pre[i].Apply(rp[i], rr[i]) // r' = M⁻¹r
				r.AddFlops(rs.pre[i].ApplyFlops())
				chebUpdate(loc, dx[i], rp[i], omega, gamma*omega-1)
				axpy(loc, xs[i], dx[i], 1)
				r.AddFlops(3 * int64(loc.InteriorLen()))
			}
			r.Exchange(xs) // the iteration's only communication
			for i := 0; i < nb; i++ {
				residual(rs.locs[i], rr[i], bs[i], xs[i])
				r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
			}
			if k%o.CheckEvery == 0 {
				payload[0] = stageDot(r, rs, rr, rr)
				payload[1] = cancelFlag(ctx)
				var g []float64
				crashed := false
				if resilient {
					// The crash flag rides the check reduction like the
					// cancellation flag: each rank draws its own verdict, and
					// the reduced sum tells every rank whether anyone crashed
					// — so the rollback below is entered in lockstep.
					crashed = inj.CrashRank(r.ID, r.ReduceSeq())
					payload[2] = 0
					if crashed {
						payload[2] = 1
					}
					var nret int
					var ok bool
					g, nret, ok = reduceRetry(r, inj, payload[:3])
					if r.ID == 0 {
						res.Recovery.ReduceRetries += nret
					}
					if !ok {
						if r.ID == 0 {
							faulted = true
						}
						break
					}
				} else {
					g = r.AllReduce(payload[:2])
				}
				rn := math.Sqrt(g[0])
				if r.ID == 0 {
					res.RelResidual = rn / bnorm
				}
				traceResidual(r, trace, k, rn/bnorm)
				doRestore := false
				if resilient && g[2] != 0 {
					// A rank crashed this interval; its iterate is lost. The
					// crash preempts a simultaneous convergence verdict — the
					// collective rolls back first and re-proves convergence
					// from the restored state if it was real.
					if crashed {
						for i := range xs {
							for idx := range xs[i] {
								xs[i][idx] = 0
							}
						}
					}
					doRestore = true
				} else if rn <= target {
					if !resilient {
						converged = true
						break
					}
					// Confirm on fresh halos before trusting the verdict: a
					// halo dropped right before this check leaves a stale
					// residual that can fake convergence. The confirmation
					// recomputes r on freshly exchanged x and re-reduces.
					r.Exchange(xs)
					var cnL float64
					for i := 0; i < nb; i++ {
						residual(rs.locs[i], rr[i], bs[i], xs[i])
						r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
						cnL += rs.locs[i].MaskedDotInterior(rr[i], rr[i])
						r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
					}
					payload[0] = cnL
					g2, nret, ok := reduceRetry(r, inj, payload[:1])
					if r.ID == 0 {
						res.Recovery.ReduceRetries += nret
					}
					if !ok {
						if r.ID == 0 {
							faulted = true
						}
						break
					}
					crn := math.Sqrt(g2[0])
					if crn <= target {
						if r.ID == 0 {
							res.RelResidual = crn / bnorm
						}
						converged = true
						break
					}
					if math.IsNaN(crn) {
						doRestore = true
					} else {
						// False convergence: reset the recurrence from the
						// current fresh-halo iterate and keep iterating.
						omega = 2 / gamma
						prevRn = math.Inf(1)
						slowChecks = 0
						traceRecover(r, k, recKindReconverge)
						if r.ID == 0 {
							res.Recovery.Reconverges++
							inj.Recovered("reconverge")
						}
						continue
					}
				} else if math.IsNaN(rn) {
					if !resilient {
						break
					}
					doRestore = true // NaN tripwire: corrupted halo reached the iterate
				}
				if g[1] != 0 { // some rank saw ctx done — all ranks stop here
					if r.ID == 0 {
						cancelled = true
					}
					break
				}
				if doRestore {
					restores++
					if restores > o.MaxRecoveries {
						if r.ID == 0 {
							faulted = true
						}
						break
					}
					// Collective rollback: every rank restores the last
					// checkpoint, refreshes halos, recomputes the residual,
					// and restarts the Chebyshev recurrence.
					copyFields(xs, ck)
					r.Exchange(xs)
					for i := 0; i < nb; i++ {
						residual(rs.locs[i], rr[i], bs[i], xs[i])
						r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
						// The update direction may carry the NaN that tripped
						// the restore; the recurrence restart must not see it.
						for idx := range dx[i] {
							dx[i][idx] = 0
						}
					}
					omega = 2 / gamma
					prevRn = math.Inf(1)
					slowChecks = 0
					traceRecover(r, k, recKindRestore)
					if r.ID == 0 {
						res.Recovery.Restores++
						inj.Recovered("restore")
					}
					continue
				}
				// Divergence guard: a growing residual means the spectrum
				// leaks *above* μ (Lanczos approaches λ_max from below,
				// and approximate EVP block solves can push eigenvalues
				// slightly past the estimate). Raise μ and restart; give
				// up after a few attempts.
				if rn > 2*prevRn || rn > 1e8*bnorm {
					if raises >= 8 {
						break
					}
					raises++
					mu *= 1.5
					alpha = 2 / (mu - nu)
					beta = (mu + nu) / (mu - nu)
					gamma = beta / alpha
					inv4a2 = 1 / (4 * alpha * alpha)
					omega = 2 / gamma
					prevRn = rn
					traceInterval(r, trace, k, "raise-mu", nu, mu)
					continue
				}
				// Slow-convergence guard: the Lanczos ν approaches λ_min
				// from above, and a mode below the Chebyshev interval
				// contracts only at exp(acosh((γ−λ)/δ)−acosh(γ/δ)) per
				// iteration — arbitrarily slowly. When several consecutive
				// checks contract worse than 0.8 per CheckEvery
				// iterations, widen the interval downward and restart the
				// recurrence (bounded: each restart discards Chebyshev
				// momentum). Deterministic across ranks: driven entirely
				// by the reduced residual. Well-estimated intervals (the
				// paper's diagonal and EVP configurations) contract ~0.1–
				// 0.3 per check and never trigger this.
				if rn > 0.8*prevRn {
					slowChecks++
				} else {
					slowChecks = 0
				}
				if slowChecks >= 3 && widenings < 6 {
					widenings++
					slowChecks = 0
					nu *= 0.25
					alpha = 2 / (mu - nu)
					beta = (mu + nu) / (mu - nu)
					gamma = beta / alpha
					inv4a2 = 1 / (4 * alpha * alpha)
					omega = 2 / gamma
					traceInterval(r, trace, k, "widen-nu", nu, mu)
				}
				prevRn = rn
				if resilient {
					// Clean check: checkpoint the iterate. Free in the cost
					// model (node-local copy, no communication).
					copyFields(ck, xs)
					if r.ID == 0 {
						res.Recovery.CheckpointIter = k
					}
				}
			}
		}
		if r.ID == 0 {
			res.Iterations = k
			res.Converged = converged
		}
		s.gatherSolution(r, out, xs)
	})
	res.Stats = st
	res.Trace = trace
	s.restoreLand(out, b)
	if cancelled {
		return res, out, ctxSolveErr(ctx, "pcsi", res.Iterations)
	}
	if faulted {
		return res, out, &FaultedError{Solver: "pcsi", Iterations: res.Iterations,
			Restores: res.Recovery.Restores, ReduceRetries: res.Recovery.ReduceRetries}
	}
	if !res.Converged && (math.IsNaN(res.RelResidual) || res.RelResidual > 1e6) {
		return res, out, fmt.Errorf("core: P-CSI diverged; Chebyshev interval [%g, %g] may not bracket the spectrum: %w", nu, mu,
			&NotConvergedError{Solver: "pcsi", Iterations: res.Iterations, RelResidual: res.RelResidual})
	}
	return res, out, nil
}
