package comm

import (
	"testing"

	"repro/internal/decomp"
	"repro/internal/grid"
)

// fillLevels builds (or refills) per-rank per-level padded fields with a
// value that encodes (seed, level, block, cell) so any stale strip from an
// earlier exchange is distinguishable from the correct fresh one.
func fillLevels(d *decomp.Decomposition, r *Rank, dst [][][]float64, nlv, seed int) [][][]float64 {
	if dst == nil {
		dst = make([][][]float64, nlv)
		for l := range dst {
			dst[l] = make([][]float64, len(r.Blocks))
			for i, b := range r.Blocks {
				nxp, nyp := d.PaddedDims(b)
				dst[l][i] = make([]float64, nxp*nyp)
			}
		}
	}
	for l := range dst {
		for i, b := range r.Blocks {
			f := dst[l][i]
			for k := range f {
				f[k] = float64(seed)*1e6 + float64(l)*1e4 + float64(b.ID)*1e2 + float64(k)*1e-3
			}
		}
	}
	return dst
}

// TestExchangeMultiBufferReuse runs consecutive ExchangeMulti calls with
// different field values (and different level counts, exercising pooled
// buffer growth) on one World and asserts every call's result matches a
// fresh single-use World given the same inputs — i.e. no stale data leaks
// from the reused strip buffers.
func TestExchangeMultiBufferReuse(t *testing.T) {
	g := grid.NewFlatBasin(32, 24, 1000, 1e4, 1e4)
	build := func() (*decomp.Decomposition, *World) {
		d, err := decomp.New(g, 8, 8, decomp.DefaultHalo)
		if err != nil {
			t.Fatal(err)
		}
		d.AssignOnePerRank()
		w, err := NewWorld(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d, w
	}

	// calls[c] is (level count, value seed) of the c-th exchange.
	calls := []struct{ nlv, seed int }{{1, 1}, {3, 2}, {2, 3}, {3, 4}}

	d, w := build()
	got := make([][][][][]float64, len(calls)) // call → rank → levels
	for c := range got {
		got[c] = make([][][][]float64, w.NRank)
	}
	w.Run(func(r *Rank) {
		var levels [][][]float64
		for c, call := range calls {
			levels = fillLevels(d, r, nil, call.nlv, call.seed)
			r.ExchangeMulti(levels)
			got[c][r.ID] = levels
		}
	})

	for c, call := range calls {
		dRef, wRef := build()
		want := make([][][][]float64, wRef.NRank)
		wRef.Run(func(r *Rank) {
			levels := fillLevels(dRef, r, nil, call.nlv, call.seed)
			r.ExchangeMulti(levels)
			want[r.ID] = levels
		})
		for rid, wl := range want {
			gl := got[c][rid]
			for l := range wl {
				for i := range wl[l] {
					for k := range wl[l][i] {
						if gl[l][i][k] != wl[l][i][k] {
							t.Fatalf("call %d rank %d level %d block %d cell %d: got %g want %g (stale reused buffer?)",
								c, rid, l, i, k, gl[l][i][k], wl[l][i][k])
						}
					}
				}
			}
		}
	}
}

// TestSteadyStateCommAllocFree asserts the per-iteration communication
// paths — Exchange and AllReduce — allocate nothing once warm. Setup costs
// (Run's goroutines and Rank structs, first-use buffer growth) are isolated
// by differencing a 1-iteration run against a many-iteration run.
func TestSteadyStateCommAllocFree(t *testing.T) {
	g := grid.NewFlatBasin(32, 24, 1000, 1e4, 1e4)
	d, err := decomp.New(g, 8, 8, decomp.DefaultHalo)
	if err != nil {
		t.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := NewWorld(d, nil)
	if err != nil {
		t.Fatal(err)
	}

	fields := make([][][]float64, w.NRank)
	multi := make([][][][]float64, w.NRank)
	w.Run(func(r *Rank) {
		fs := fillLevels(d, r, nil, 3, 0)
		fields[r.ID] = fs[0]
		multi[r.ID] = fs
	})

	run := func(iters int) func() {
		return func() {
			w.Run(func(r *Rank) {
				payload := make([]float64, 2)
				for it := 0; it < iters; it++ {
					r.Exchange(fields[r.ID])
					r.ExchangeMulti(multi[r.ID])
					payload[0], payload[1] = float64(r.ID), 1
					r.AllReduce(payload)
				}
			})
		}
	}
	run(1)() // warm every pooled buffer

	base := testing.AllocsPerRun(5, run(1))
	long := testing.AllocsPerRun(5, run(41))
	if perIter := (long - base) / 40; perIter > 0 {
		t.Fatalf("steady-state comm allocates %.2f allocs/iteration (run(1)=%v run(41)=%v), want 0",
			perIter, base, long)
	}
}
