// Package stencil exercises the determinism analyzer inside one of its
// scoped package paths: wall clocks, math/rand, map-order float
// accumulation, and goroutine-order accumulation are diagnosed; integer
// map-range counting and slice-ordered sums are not.
package stencil

import (
	"math/rand"
	"time"

	"repro/internal/comm"
)

func badWallClock() int64 {
	t0 := time.Now() // want `wall-clock read`
	return t0.Unix()
}

func badRand() float64 {
	return rand.Float64() // want `math/rand`
}

func badMapAccum(m map[int][]float64) float64 {
	var sum float64
	for _, v := range m { // want `map-range body writes floating-point`
		sum += v[0]
	}
	return sum
}

func badMapCollective(r *comm.Rank, m map[int]bool) {
	for range m { // want `map-range body reaches collective`
		r.Barrier()
	}
}

func badGoAccum(xs [][]float64, done chan struct{}) float64 {
	var total float64
	for i := range xs {
		x := xs[i]
		go func() {
			total += x[0] // want `goroutine writes captured floating-point`
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return total
}

func goodMapCount(m map[string]int64) int64 {
	var n int64
	for _, v := range m { // integer counting: order-independent
		n += v
	}
	return n
}

func goodSortedSum(keys []string, m map[string]float64) float64 {
	var s float64
	for _, k := range keys { // slice range fixes the order
		s += m[k]
	}
	return s
}

func goodGoLocal(xs []float64, out chan float64) {
	go func() {
		local := 0.0 // goroutine-local accumulator, merged via channel
		for _, v := range xs {
			local += v
		}
		out <- local
	}()
}
