package core

import (
	"errors"
	"fmt"
)

// Typed errors for the public solve path. Callers match them with the
// standard errors.Is / errors.As machinery:
//
//	if errors.Is(err, core.ErrNotConverged) { ... }
//	var nc *core.NotConvergedError
//	if errors.As(err, &nc) { log(nc.Iterations, nc.RelResidual) }
var (
	// ErrBadSpec marks configuration errors: unknown method or
	// preconditioner names, mismatched operator/grid shapes, out-of-range
	// tolerances, wrong-length vectors. Always detected at construction or
	// call entry, never mid-solve.
	ErrBadSpec = errors.New("bad solver specification")

	// ErrNotConverged marks solves that terminated without meeting their
	// tolerance. Concrete errors carry a *NotConvergedError with the
	// iteration count and final residual.
	ErrNotConverged = errors.New("solver did not converge")

	// ErrEigEstimate marks a failed Chebyshev-bound estimation: the Lanczos
	// process terminated before producing a single usable step, so P-CSI has
	// no interval [ν, μ] to iterate on. Distinct from ErrBadSpec (the inputs
	// were plausible) and from ErrNotConverged (no solve was attempted).
	ErrEigEstimate = errors.New("eigenvalue estimation produced no bounds")

	// ErrFaulted marks solves that injected (or real) faults pushed beyond
	// the resilience machinery's recovery budget: a reduction that kept
	// failing past the bounded retry limit, or more checkpoint rollbacks
	// than Options.MaxRecoveries allows. Concrete errors carry a
	// *FaultedError with the recovery counts at the point of surrender.
	ErrFaulted = errors.New("solver faulted beyond recovery")
)

// NotConvergedError reports a solve that stopped short of its tolerance,
// carrying the diagnostic state the caller needs to decide between retry,
// fallback, and surfacing the failure. It matches
// errors.Is(err, ErrNotConverged).
type NotConvergedError struct {
	Solver      string  // method name ("pcsi", "chrongear", ...)
	Iterations  int     // iterations executed before giving up
	RelResidual float64 // ‖r‖/‖b‖ at the last convergence check
}

// Error renders the non-convergence diagnostic.
func (e *NotConvergedError) Error() string {
	return fmt.Sprintf("core: %s did not converge after %d iterations (relative residual %.3g)",
		e.Solver, e.Iterations, e.RelResidual)
}

// Unwrap makes errors.Is(err, ErrNotConverged) match.
func (e *NotConvergedError) Unwrap() error { return ErrNotConverged }

// FaultedError reports a solve abandoned because faults exhausted the
// recovery budget, carrying how much recovery was attempted before giving
// up. It matches errors.Is(err, ErrFaulted).
type FaultedError struct {
	Solver        string // method name ("pcsi", "chrongear", ...)
	Iterations    int    // iterations executed before surrender
	Restores      int    // checkpoint rollbacks performed
	ReduceRetries int    // failed-reduction retries performed
}

// Error renders the fault-surrender diagnostic.
func (e *FaultedError) Error() string {
	return fmt.Sprintf("core: %s faulted beyond recovery at iteration %d (%d restores, %d reduce retries)",
		e.Solver, e.Iterations, e.Restores, e.ReduceRetries)
}

// Unwrap makes errors.Is(err, ErrFaulted) match.
func (e *FaultedError) Unwrap() error { return ErrFaulted }
