package core

import (
	"context"
	"math"

	"repro/internal/comm"
)

// SolveChronGear runs the Chronopoulos–Gear solver with a background
// context; see SolveChronGearContext.
func (s *Session) SolveChronGear(b, x0 []float64) (Result, []float64, error) {
	return s.SolveChronGearContext(context.Background(), b, x0)
}

// SolveChronGearContext runs the Chronopoulos–Gear solver (paper Algorithm
// 1): POP's production barotropic solver, a PCG variant whose two inner
// products share a single global reduction per iteration. The convergence
// residual rides along that reduction every CheckEvery iterations, so no
// extra communication is spent on checking.
//
// b and x0 are global fields; the returned slice is the solution (x0 is
// not modified). Boundary halos are refreshed on the preconditioned
// residual, which keeps one halo update per iteration for any
// preconditioner.
//
// Cancellation is observed at convergence-check boundaries only (see the
// session-level cancellation protocol); a cancelled solve returns the
// current iterate together with an error matching ctx.Err().
func (s *Session) SolveChronGearContext(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Setup(); err != nil {
		return Result{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, nil, ctxSolveErr(ctx, "chrongear", 0)
	}
	o := s.Opts
	out := s.solveOut()
	res := Result{Solver: "chrongear", Precond: o.Precond}
	trace := &SolveTrace{
		Residuals: make([]ResidualPoint, 0, o.MaxIters/o.CheckEvery+1)}
	cancelled := false // written by rank 0 only, read after Run

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.scatterMasked(r, "cg.x", x0)
		bs := s.scatterMasked(r, "cg.b", b)
		rr := s.field(r, "cg.r")
		rp := s.field(r, "cg.rp")
		zz := s.field(r, "cg.z")
		ss := s.zeroField(r, "cg.s")
		pp := s.zeroField(r, "cg.p")
		// Reduction payload reused by every collective in this program
		// (sliced to 2–4 entries per call) — hoisted so the steady-state
		// loop allocates nothing. Checks append the residual norm and the
		// cancellation flag.
		payload := make([]float64, 4)

		// r₀ = b − B·x₀ (halos valid from scatter) and ‖b‖².
		var bn2 float64
		for i := 0; i < nb; i++ {
			residual(rs.locs[i], rr[i], bs[i], xs[i])
			r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
			bn2 += rs.locs[i].MaskedDotInterior(bs[i], bs[i])
			r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
		}
		payload[0] = bn2
		gsum := r.AllReduce(payload[:1])
		bnorm := math.Sqrt(gsum[0])
		if r.ID == 0 {
			res.BNorm = bnorm
		}
		if bnorm == 0 {
			// x = 0 solves the masked system exactly.
			for i, blk := range r.Blocks {
				for k := range xs[i] {
					xs[i][k] = 0
				}
				s.D.GatherInto(out, xs[i], blk)
			}
			if r.ID == 0 {
				res.Converged = true
			}
			return
		}
		target := o.Tol * bnorm

		rhoPrev, sigmaPrev := 1.0, 0.0
		converged := false
		k := 0
		for k < o.MaxIters {
			k++
			check := k%o.CheckEvery == 0
			var rhoL, deltaL, rnL float64
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				n := int64(loc.InteriorLen())
				rs.pre[i].Apply(rp[i], rr[i]) // r' = M⁻¹r
				r.AddFlops(rs.pre[i].ApplyFlops())
				if check {
					rnL += loc.MaskedDotInterior(rr[i], rr[i])
					r.AddFlops(2 * n)
				}
			}
			r.Exchange(rp) // one boundary update per iteration
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				n := int64(loc.InteriorLen())
				// z = B·r' fused with δ += ⟨z, r'⟩: one pass over the
				// operands instead of a matvec followed by a dot.
				deltaL += loc.ApplyAndMaskedDot(zz[i], rp[i])
				r.AddFlops(9 * n)
				rhoL += loc.MaskedDotInterior(rr[i], rp[i])
				r.AddFlops(4 * n)
			}
			payload[0], payload[1] = rhoL, deltaL
			p := payload[:2]
			if check {
				payload[2] = rnL
				payload[3] = cancelFlag(ctx)
				p = payload[:4]
			}
			g := r.AllReduce(p) // the single global reduction
			rho, delta := g[0], g[1]
			if check {
				rn := math.Sqrt(g[2])
				if r.ID == 0 {
					res.RelResidual = rn / bnorm
				}
				traceResidual(r, trace, k, rn/bnorm)
				if rn <= target {
					converged = true
					break
				}
				if g[3] != 0 { // some rank saw ctx done — all ranks stop here
					if r.ID == 0 {
						cancelled = true
					}
					break
				}
			}
			beta := rho / rhoPrev
			sigma := delta - beta*beta*sigmaPrev
			alpha := rho / sigma
			rhoPrev, sigmaPrev = rho, sigma
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				xpay(loc, ss[i], rp[i], beta)   // s = r' + βs
				xpay(loc, pp[i], zz[i], beta)   // p = z + βp
				axpy(loc, xs[i], ss[i], alpha)  // x += αs
				axpy(loc, rr[i], pp[i], -alpha) // r −= αp
				r.AddFlops(4 * int64(loc.InteriorLen()))
			}
		}
		if r.ID == 0 {
			res.Iterations = k
			res.Converged = converged
		}
		for i, blk := range r.Blocks {
			s.D.GatherInto(out, xs[i], blk)
		}
	})
	res.Stats = st
	res.Trace = trace
	s.restoreLand(out, b)
	if cancelled {
		return res, out, ctxSolveErr(ctx, "chrongear", res.Iterations)
	}
	return res, out, nil
}
