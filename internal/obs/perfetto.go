package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto / Chrome trace-event export. One export renders a set of
// virtual-rank timelines (one Perfetto thread per rank, one process per
// solver session) plus a serve track (one thread per request, phases nested
// as complete events), so the Perfetto UI (ui.perfetto.dev) or
// chrome://tracing shows the exact timeline the paper's phase analysis
// reasons about: compute / halo / reduction spans per rank, with the serve
// layer's queueing and batching above them.
//
// Virtual clocks restart at zero on every World.Run, so the exporter keeps
// a per-track segment offset: each EvRunBegin marker shifts the segment's
// origin to the end of the previous segment, keeping timestamps monotone
// non-decreasing per track (a Perfetto requirement for sane rendering).
//
// The export carries two non-standard top-level keys, both ignored by the
// Perfetto UI: "popRequests" (the serve-layer request records, the input to
// critical-path attribution) and "otherData".dropped_events (ring-buffer
// drop count, so consumers can warn that a trace is truncated).

// RequestRecord is one serve request's span summary: wall-clock phase
// durations through the serving layer plus the solve's virtual-time
// attribution. It is the unit the flight recorder retains and the record
// poptrace turns into a critical-path breakdown.
type RequestRecord struct {
	// TraceID correlates this record with the rank-level events stamped
	// with the same ID.
	TraceID uint64 `json:"trace_id"`
	// Key is the session-pool key the request hashed to ("test/pcsi/evp").
	Key string `json:"key"`
	// Session is the index of the pooled session that ran the solve (−1
	// when the request never reached a worker).
	Session int `json:"session"`
	// StartUnixNS is the admission wall time (UnixNano).
	StartUnixNS int64 `json:"start_unix_ns"`
	// RouterNS is wall time spent in a fleet router before the request
	// reached a worker (hashing, cache lookup, singleflight coordination,
	// dispatch). 0 for requests that never crossed a router.
	RouterNS int64 `json:"router_ns,omitempty"`
	// AdmitNS is wall time spent in admission: validation, normalization,
	// pool lookup and warm-up, up to the queue send.
	AdmitNS int64 `json:"admit_ns"`
	// QueueNS is wall time from queue send to a worker dequeuing the
	// request.
	QueueNS int64 `json:"queue_ns"`
	// BatchWaitNS is wall time from dequeue to solve start — the batching
	// window spent waiting for batch-mates plus head-of-batch solves.
	BatchWaitNS int64 `json:"batch_wait_ns"`
	// SolveNS is the wall time of the solve itself (all attempts).
	SolveNS int64 `json:"solve_ns"`
	// TotalNS is the measured request latency: admission entry to response
	// receipt at the caller. The phase durations above sum to TotalNS minus
	// the worker→caller hand-off.
	TotalNS int64 `json:"total_ns"`
	// Iterations is the solver iteration count (0 on error paths).
	Iterations int `json:"iterations"`
	// Converged reports whether the solve met its tolerance.
	Converged bool `json:"converged"`
	// Error is the terminal error string ("" on success).
	Error string `json:"error,omitempty"`
	// Ranks is the virtual rank count of the session's world.
	Ranks int `json:"ranks"`
	// Shard is the fleet worker that ran the solve (−1 when the request
	// never dispatched to a worker: single-process serving, cache hits,
	// router-level rejections).
	Shard int `json:"shard,omitempty"`
	// Cache reports how a fleet router satisfied the request: "hit",
	// "miss", "dedup" — "" when no router was involved.
	Cache string `json:"cache,omitempty"`
	// VCompMean, VHaloMean, VReduceMean are the solve's per-rank mean
	// virtual seconds in computation, boundary update, and global
	// reduction — the paper's three POP timer phases.
	VCompMean   float64 `json:"v_comp_mean"`
	VHaloMean   float64 `json:"v_halo_mean"`   // see VCompMean
	VReduceMean float64 `json:"v_reduce_mean"` // see VCompMean
	// VClockMax is the slowest rank's virtual clock — the solve's virtual
	// completion time; VClockMax minus the mean rank clock is the
	// straggler slack.
	VClockMax float64 `json:"v_clock_max"`
}

// Track is one virtual-rank timeline handed to WritePerfetto: the retained
// events of one rank's ring, labelled with the Perfetto process (solver
// session) and thread (rank) they render under.
type Track struct {
	// Process labels the Perfetto process row (e.g. "session 0 test/pcsi/evp").
	Process string
	// PID is the Perfetto process ID grouping this track (serve uses 0;
	// sessions count from 1).
	PID int
	// Thread labels the Perfetto thread row (e.g. "rank 3").
	Thread string
	// TID is the Perfetto thread ID within the process (the rank ID).
	TID int
	// Events are the track's events in record order (RankTrace.Events()).
	Events []Event
}

// ServePID is the Perfetto process ID of the serve track; rank tracks use
// session index + 1.
const ServePID = 0

// chromeEvent is one entry of the "traceEvents" array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfetto renders tracks and request records as Chrome trace-event
// JSON loadable in ui.perfetto.dev. dropped is the trace ring's drop count,
// recorded under otherData so consumers can flag truncated traces.
func WritePerfetto(w io.Writer, tracks []Track, reqs []RequestRecord, dropped int64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(raw)
		return err
	}
	meta := func(pid, tid int, kind, name string) error {
		ev := chromeEvent{Name: kind, Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name}}
		return emit(ev)
	}

	// Serve track: one thread per request, phases as nested complete events.
	if len(reqs) > 0 {
		if err := meta(ServePID, 0, "process_name", "serve"); err != nil {
			return err
		}
		base := reqs[0].StartUnixNS
		for _, r := range reqs {
			if r.StartUnixNS < base {
				base = r.StartUnixNS
			}
		}
		for _, r := range reqs {
			tid := int(r.TraceID)
			if err := meta(ServePID, tid, "thread_name", fmt.Sprintf("req %d", r.TraceID)); err != nil {
				return err
			}
			ts := float64(r.StartUnixNS-base) / 1e3 // ns → µs
			args := map[string]any{"trace": r.TraceID, "key": r.Key,
				"session": r.Session, "iterations": r.Iterations,
				"converged": r.Converged}
			if r.Error != "" {
				args["error"] = r.Error
			}
			total := float64(r.TotalNS) / 1e3
			if err := emit(chromeEvent{Name: "request", Ph: "X", Ts: ts, Dur: &total,
				PID: ServePID, TID: tid, Args: args}); err != nil {
				return err
			}
			cursor := ts
			for _, ph := range []struct {
				name string
				ns   int64
			}{
				{"admit", r.AdmitNS},
				{"queue", r.QueueNS},
				{"batch_wait", r.BatchWaitNS},
				{"solve", r.SolveNS},
			} {
				dur := float64(ph.ns) / 1e3
				if dur < 0 {
					dur = 0
				}
				if err := emit(chromeEvent{Name: ph.name, Ph: "X", Ts: cursor, Dur: &dur,
					PID: ServePID, TID: tid,
					Args: map[string]any{"trace": r.TraceID}}); err != nil {
					return err
				}
				cursor += dur
			}
		}
	}

	// Rank tracks: virtual-clock events with per-run segment offsets.
	for _, tr := range tracks {
		if err := meta(tr.PID, tr.TID, "process_name", tr.Process); err != nil {
			return err
		}
		if err := meta(tr.PID, tr.TID, "thread_name", tr.Thread); err != nil {
			return err
		}
		offset, last := 0.0, 0.0 // µs on this track
		for _, e := range tr.Events {
			if e.Name == EvRunBegin {
				offset = last // new run segment starts where the previous ended
			}
			ts := offset + e.T0*1e6
			if ts < last {
				ts = last // clamp: monotone per track even if a ring wrapped mid-run
			}
			args := eventArgs(&e)
			if e.IsPoint() {
				if err := emit(chromeEvent{Name: e.Name, Ph: "i", Ts: ts,
					PID: tr.PID, TID: tr.TID, S: "t", Args: args}); err != nil {
					return err
				}
				if ts > last {
					last = ts
				}
				continue
			}
			end := offset + e.T1*1e6
			if end < ts {
				end = ts
			}
			dur := end - ts
			if err := emit(chromeEvent{Name: e.Name, Ph: "X", Ts: ts, Dur: &dur,
				PID: tr.PID, TID: tr.TID, Args: args}); err != nil {
				return err
			}
			if end > last {
				last = end
			}
		}
	}

	if _, err := fmt.Fprintf(bw,
		`],"displayTimeUnit":"ms","otherData":{"dropped_events":%d},"popRequests":`,
		dropped); err != nil {
		return err
	}
	if reqs == nil {
		reqs = []RequestRecord{}
	}
	raw, err := json.Marshal(reqs)
	if err != nil {
		return err
	}
	if _, err := bw.Write(raw); err != nil {
		return err
	}
	if err := bw.WriteByte('}'); err != nil {
		return err
	}
	return bw.Flush()
}

// eventArgs builds the args payload of one rank event, carrying only the
// fields the event actually set (keeps exports compact).
func eventArgs(e *Event) map[string]any {
	args := make(map[string]any, 4)
	if e.Trace != 0 {
		args["trace"] = e.Trace
	}
	if e.Iter >= 0 {
		args["iter"] = e.Iter
	}
	if e.Value != 0 {
		args["value"] = e.Value
	}
	if e.Name == EvRunBegin {
		// Worker-shard attribution: emitted unconditionally (shard 0
		// included) so consumers can group a segment's spans by the shard
		// that executed them.
		args["shard"] = e.Aux
	} else if e.Aux != 0 {
		args["aux"] = e.Aux
	}
	if e.Straggler >= 0 {
		args["straggler"] = e.Straggler
		args["wait_us"] = e.Wait * 1e6
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// PerfEvent is one parsed trace event (metadata events are folded into
// PerfettoTrace's name maps instead).
type PerfEvent struct {
	// Name is the event name ("compute", "halo", "reduce", "request", ...).
	Name string
	// Ph is the Chrome phase ("X" complete, "i" instant).
	Ph string
	// Ts is the start timestamp in microseconds; Dur the duration.
	Ts, Dur float64
	// PID and TID locate the event's track.
	PID, TID int
	// Args holds the numeric args (trace, iter, value, straggler, wait_us).
	Args map[string]float64
}

// PerfettoTrace is a parsed Perfetto export.
type PerfettoTrace struct {
	// Events are the non-metadata trace events, in file order.
	Events []PerfEvent
	// ProcessNames maps pid → process_name metadata.
	ProcessNames map[int]string
	// ThreadNames maps pid → tid → thread_name metadata.
	ThreadNames map[int]map[int]string
	// Requests are the serve-layer request records.
	Requests []RequestRecord
	// Dropped is the ring-buffer drop count at export time; a nonzero value
	// means the trace is truncated (oldest events lost).
	Dropped int64
}

// rawChromeEvent defers args decoding: metadata args carry strings, span
// args numbers.
type rawChromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// ReadPerfetto parses a Perfetto/Chrome trace-event JSON export produced by
// WritePerfetto (tolerating files from other producers: unknown phases and
// non-numeric args are skipped, missing pop extensions default to empty).
func ReadPerfetto(r io.Reader) (*PerfettoTrace, error) {
	var file struct {
		TraceEvents []rawChromeEvent `json:"traceEvents"`
		OtherData   struct {
			Dropped int64 `json:"dropped_events"`
		} `json:"otherData"`
		PopRequests []RequestRecord `json:"popRequests"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("obs: parse perfetto trace: %w", err)
	}
	pt := &PerfettoTrace{
		ProcessNames: make(map[int]string),
		ThreadNames:  make(map[int]map[int]string),
		Requests:     file.PopRequests,
		Dropped:      file.OtherData.Dropped,
	}
	for _, raw := range file.TraceEvents {
		if raw.Ph == "M" {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(raw.Args, &args); err != nil {
				continue
			}
			switch raw.Name {
			case "process_name":
				pt.ProcessNames[raw.PID] = args.Name
			case "thread_name":
				tm := pt.ThreadNames[raw.PID]
				if tm == nil {
					tm = make(map[int]string)
					pt.ThreadNames[raw.PID] = tm
				}
				tm[raw.TID] = args.Name
			}
			continue
		}
		ev := PerfEvent{Name: raw.Name, Ph: raw.Ph, Ts: raw.Ts, Dur: raw.Dur,
			PID: raw.PID, TID: raw.TID}
		if len(raw.Args) > 0 {
			var nums map[string]json.Number
			if err := json.Unmarshal(raw.Args, &nums); err == nil {
				ev.Args = make(map[string]float64, len(nums))
				for k, v := range nums {
					if f, err := v.Float64(); err == nil {
						ev.Args[k] = f
					}
				}
			}
		}
		pt.Events = append(pt.Events, ev)
	}
	return pt, nil
}

// Attribution is one request's critical-path breakdown: where the wall time
// between admission and response went. The serve phases (Admit, Queue,
// BatchWait) are measured wall time; the solve phases (Compute, Halo,
// Reduce, Slack) split the measured solve wall time in proportion to the
// solve's virtual-time phase mix, with Slack the share spent waiting for
// the slowest rank (max rank clock − mean rank clock) — the paper's
// straggler cost. Phases sum to Total minus the worker→caller hand-off.
type Attribution struct {
	// TraceID and Key identify the request.
	TraceID uint64
	Key     string // see TraceID
	// Router is fleet-router time (hash, cache, dedup, dispatch) in
	// seconds; 0 when the request never crossed a router.
	Router float64
	// Admit, Queue, BatchWait, Compute, Halo, Reduce, Slack are the phase
	// durations in seconds.
	Admit, Queue, BatchWait, Compute, Halo, Reduce, Slack float64
	// Total is the measured request latency in seconds.
	Total float64
}

// Sum returns the attributed time: the eight phase durations added up.
func (a Attribution) Sum() float64 {
	return a.Router + a.Admit + a.Queue + a.BatchWait + a.Compute + a.Halo + a.Reduce + a.Slack
}

// Coverage returns Sum/Total — how much of the measured latency the phases
// explain (1 when attribution is airtight; the shortfall is the
// worker→caller response hand-off).
func (a Attribution) Coverage() float64 {
	if a.Total <= 0 {
		return 0
	}
	return a.Sum() / a.Total
}

// AttributeRecord computes one request's critical-path attribution from its
// span summary.
func AttributeRecord(rec RequestRecord) Attribution {
	a := Attribution{
		TraceID:   rec.TraceID,
		Key:       rec.Key,
		Router:    float64(rec.RouterNS) / 1e9,
		Admit:     float64(rec.AdmitNS) / 1e9,
		Queue:     float64(rec.QueueNS) / 1e9,
		BatchWait: float64(rec.BatchWaitNS) / 1e9,
		Total:     float64(rec.TotalNS) / 1e9,
	}
	solve := float64(rec.SolveNS) / 1e9
	if rec.VClockMax > 0 {
		// Split the solve wall time by the virtual phase mix; the virtual
		// phases plus slack sum to VClockMax by construction, so the wall
		// split is exact.
		scale := solve / rec.VClockMax
		a.Compute = rec.VCompMean * scale
		a.Halo = rec.VHaloMean * scale
		a.Reduce = rec.VReduceMean * scale
		slackV := rec.VClockMax - (rec.VCompMean + rec.VHaloMean + rec.VReduceMean)
		if slackV < 0 {
			slackV = 0
		}
		a.Slack = slackV * scale
	} else {
		// Free cost model (no virtual pricing): the whole solve is compute.
		a.Compute = solve
	}
	return a
}

// LeagueRow is one rank's standing in the straggler league: how often its
// late arrival set a reduction's critical path, and how long it spent
// waiting for others (a rank that straggles often and waits little is the
// load-imbalance hot spot the paper's §5.2 analysis hunts).
type LeagueRow struct {
	// Rank is the virtual rank (the track TID).
	Rank int
	// Shard is the worker shard the rank last executed on, taken from the
	// trace's run_begin markers; −1 when the trace carries none (rank
	// tracing predates shard stamping, or the run was unattributed).
	Shard int
	// Reduces is how many reduce spans the rank's track retained.
	Reduces int
	// Straggled is how many of those reductions this rank arrived last at.
	Straggled int
	// WaitTotal is the rank's summed reduction wait in seconds; WaitMean
	// the per-reduction mean.
	WaitTotal, WaitMean float64
}

// ShardMap extracts the worker-shard attribution from a parsed trace's
// run_begin markers: track TID → the shard stamped on the track's last
// run_begin event. Tracks without a marker are absent from the map.
func ShardMap(events []PerfEvent) map[int]int {
	m := make(map[int]int)
	for _, e := range events {
		if e.Name != EvRunBegin {
			continue
		}
		if s, ok := e.Args["shard"]; ok {
			m[e.TID] = int(s)
		}
	}
	return m
}

// StragglerLeague aggregates reduce spans from a parsed trace into per-rank
// standings, sorted by straggle count descending (ties by rank). Ranks are
// identified by track TID, so multi-session exports aggregate same-numbered
// ranks across sessions.
func StragglerLeague(events []PerfEvent) []LeagueRow {
	shards := ShardMap(events)
	byRank := make(map[int]*LeagueRow)
	for _, e := range events {
		if e.Name != EvReduce || e.Ph != "X" {
			continue
		}
		row := byRank[e.TID]
		if row == nil {
			row = &LeagueRow{Rank: e.TID, Shard: -1}
			if s, ok := shards[e.TID]; ok {
				row.Shard = s
			}
			byRank[e.TID] = row
		}
		row.Reduces++
		row.WaitTotal += e.Args["wait_us"] / 1e6
		if s, ok := e.Args["straggler"]; ok && int(s) == e.TID {
			row.Straggled++
		}
	}
	rows := make([]LeagueRow, 0, len(byRank))
	for _, row := range byRank {
		if row.Reduces > 0 {
			row.WaitMean = row.WaitTotal / float64(row.Reduces)
		}
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Straggled != rows[j].Straggled {
			return rows[i].Straggled > rows[j].Straggled
		}
		return rows[i].Rank < rows[j].Rank
	})
	return rows
}
