package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/api"
)

// runProbe is popserver's one-shot client mode (-probe URL): generate the
// smooth RHS locally (the same generator the server uses, so repeated
// probes content-hash identically and exercise the fleet cache), send one
// solve in JSON or the binary frame, print the outcome, and exit 0 iff the
// solve converged. verify.sh uses it as the frame-speaking smoke client.
func runProbe(base string, frame bool, gridName, method, precond, precision string, sstep int) int {
	base = strings.TrimRight(base, "/")
	g, err := pop.NewGrid(gridName)
	if err != nil {
		log.Printf("probe: %v", err)
		return 1
	}
	b := smoothRHS(g)
	client := &http.Client{Timeout: 2 * time.Minute}

	var resp api.SolveResponse
	if frame {
		resp, err = probeFrame(client, base, gridName, method, precond, precision, sstep, b)
	} else {
		resp, err = probeJSON(client, base, gridName, method, precond, precision, sstep, b)
	}
	if err != nil {
		log.Printf("probe: %v", err)
		return 1
	}
	enc := "json"
	if frame {
		enc = "frame"
	}
	cache := resp.Cache
	if cache == "" {
		cache = "none"
	}
	fmt.Printf("probe: converged=%v iters=%d rel_residual=%.3e solver=%s cache=%s shard=%d trace=%d (%s)\n",
		resp.Converged, resp.Iterations, resp.RelResidual, resp.Solver, cache, resp.Shard, resp.TraceID, enc)
	if !resp.Converged {
		return 1
	}
	return 0
}

// probeJSON sends the solve as a JSON SolveRequest to /v1/solve.
func probeJSON(client *http.Client, base, gridName, method, precond, precision string, sstep int, b []float64) (api.SolveResponse, error) {
	req := api.SolveRequest{
		Grid:      gridName,
		Method:    method,
		Precond:   precond,
		Precision: precision,
		SStep:     sstep,
		B:         b,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return api.SolveResponse{}, err
	}
	hres, err := client.Post(base+api.V1Solve, api.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		return api.SolveResponse{}, err
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hres.Body, maxBody))
	if err != nil {
		return api.SolveResponse{}, err
	}
	if hres.StatusCode != http.StatusOK {
		var eb api.ErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return api.SolveResponse{}, fmt.Errorf("HTTP %d: %s", hres.StatusCode, eb.Error)
		}
		return api.SolveResponse{}, fmt.Errorf("HTTP %d", hres.StatusCode)
	}
	var resp api.SolveResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return api.SolveResponse{}, err
	}
	return resp, nil
}

// probeFrame sends the solve as a binary frame to /v1/solve and decodes the
// response (or error) frame.
func probeFrame(client *http.Client, base, gridName, method, precond, precision string, sstep int, b []float64) (api.SolveResponse, error) {
	m, err := pop.ParseMethod(method)
	if err != nil {
		return api.SolveResponse{}, err
	}
	pc, err := pop.ParsePrecond(precond)
	if err != nil {
		return api.SolveResponse{}, err
	}
	pr, err := pop.ParsePrecision(precision)
	if err != nil {
		return api.SolveResponse{}, err
	}
	payload := api.AppendFrameRequest(nil, api.FrameRequest{
		Grid:      gridName,
		Method:    m,
		Precond:   pc,
		Precision: pr,
		SStep:     sstep,
		B:         b,
	})
	hres, err := client.Post(base+api.V1Solve, api.ContentTypeFrame, bytes.NewReader(payload))
	if err != nil {
		return api.SolveResponse{}, err
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hres.Body, maxBody))
	if err != nil {
		return api.SolveResponse{}, err
	}
	kind, err := api.FrameKind(raw)
	if err != nil {
		return api.SolveResponse{}, fmt.Errorf("HTTP %d: %w", hres.StatusCode, err)
	}
	if kind == api.FrameError {
		status, msg, derr := api.DecodeFrameError(raw)
		if derr != nil {
			return api.SolveResponse{}, derr
		}
		return api.SolveResponse{}, fmt.Errorf("HTTP %d: %s", status, msg)
	}
	return api.DecodeFrameResponse(raw)
}
