// Package api is a wire-schema stand-in whose semantic fields hold full
// parity across frame encode, frame decode, and the content hash; the
// fields outside the hash carry //pop:nonsemantic directives.
package api

// SolveRequest is the JSON wire request.
type SolveRequest struct {
	// Grid names the preset.
	Grid string
	// Method names the solver.
	Method string
	// SStep is the s-step block size.
	SStep int
	// B is the right-hand side.
	B []float64
	// X0 is the initial guess.
	X0 []float64
	// RHS names a synthetic generator.
	//
	//pop:nonsemantic resolved to an explicit B before hashing
	RHS string
	// TimeoutMS bounds the solve.
	//
	//pop:nonsemantic request deadline, not solve content
	TimeoutMS int
}

// FrameRequest is the binary frame's decoded form.
type FrameRequest struct {
	// Grid names the preset.
	Grid string
	// Method names the solver.
	Method string
	// SStep is the block size.
	SStep int
	// B is the right-hand side.
	B []float64
	// X0 is the initial guess.
	X0 []float64
	// TimeoutMS bounds the solve.
	TimeoutMS int
}

// AppendFrameRequest encodes r.
func AppendFrameRequest(dst []byte, r FrameRequest) []byte {
	return append(dst, byte(len(r.Grid)), byte(len(r.Method)), byte(r.SStep),
		byte(len(r.B)), byte(len(r.X0)), byte(r.TimeoutMS))
}

// DecodeFrameRequest decodes raw.
func DecodeFrameRequest(raw []byte) FrameRequest {
	var r FrameRequest
	r.Grid = string(raw[:1])
	r.Method = string(raw[1:2])
	r.SStep = int(raw[2])
	r.B = []float64{float64(raw[3])}
	r.X0 = []float64{float64(raw[4])}
	r.TimeoutMS = int(raw[5])
	return r
}

// HashSolve hashes the full content surface.
func HashSolve(grid, method string, sstep int, b, x0 []float64) [5]byte {
	var h [5]byte
	h[0] = byte(len(grid))
	h[1] = byte(len(method))
	h[2] = byte(sstep)
	h[3] = byte(len(b))
	h[4] = byte(len(x0))
	return h
}
