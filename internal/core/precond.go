// Package core implements the paper's contribution: the barotropic solvers
// (ChronGear — Algorithm 1, classic PCG, and the preconditioned Classical
// Stiefel Iteration P-CSI — Algorithm 2) together with the preconditioners
// they are evaluated with (diagonal, the new block-EVP of §4, and a dense
// block-LU comparator), the CG-Lanczos estimation of the extreme
// eigenvalues of M⁻¹A that P-CSI needs, and the distributed solver Session
// that runs it all on the virtual-rank communication substrate.
package core

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/evp"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/stencil"
)

// PrecondType selects the preconditioner M. The zero value is the
// diagonal preconditioner — POP's default — so zero-initialized Options
// match POP's defaults (the same convention as Method).
type PrecondType int

const (
	// PrecondDiagonal is POP's default M = Λ(A).
	PrecondDiagonal PrecondType = iota
	// PrecondIdentity is M = I (no preconditioning; turns P-CSI into the
	// plain CSI solver of Hu et al. 2013).
	PrecondIdentity
	// PrecondEVP is the paper's block-Jacobi preconditioner with each
	// sub-block solved exactly by EVP marching (§4.3).
	PrecondEVP
	// PrecondBlockLU is the same block-Jacobi structure with dense LU
	// sub-block solves — the O(n⁴)-per-solve comparator of §4.1.
	PrecondBlockLU
)

// String returns the name used in experiment tables.
func (p PrecondType) String() string {
	switch p {
	case PrecondIdentity:
		return "none"
	case PrecondDiagonal:
		return "diagonal"
	case PrecondEVP:
		return "evp"
	case PrecondBlockLU:
		return "blocklu"
	default:
		return fmt.Sprintf("PrecondType(%d)", int(p))
	}
}

// Valid reports whether p is one of the defined preconditioner types.
func (p PrecondType) Valid() bool {
	return p >= PrecondDiagonal && p <= PrecondBlockLU
}

// Preconditioner applies M⁻¹ to the interior of one block's padded array.
// Implementations never read or write halo entries and behave as the
// identity on land rows.
type Preconditioner interface {
	// Apply computes dst = M⁻¹·src on the interior; dst halo is untouched.
	Apply(dst, src []float64)
	// ApplyFlops is the per-application flop charge (paper accounting).
	ApplyFlops() int64
	// SetupFlops is the one-time preprocessing charge.
	SetupFlops() int64
}

// identityPrecond copies the interior.
type identityPrecond struct{ loc *stencil.Local }

//pop:hotpath
func (p *identityPrecond) Apply(dst, src []float64) {
	nx := p.loc.NxP
	h := p.loc.H
	for j := h; j < p.loc.NyP-h; j++ {
		copy(dst[j*nx+h:(j+1)*nx-h], src[j*nx+h:(j+1)*nx-h])
	}
}
func (p *identityPrecond) ApplyFlops() int64 { return 0 }
func (p *identityPrecond) SetupFlops() int64 { return 0 }

// diagPrecond divides by the operator diagonal (land rows have AC = 1).
type diagPrecond struct {
	loc   *stencil.Local
	inv   []float64 // 1/AC, padded layout
	inv32 []float32 // float32 image of inv, for the mixed-precision sweep
}

func newDiagPrecond(loc *stencil.Local) *diagPrecond {
	inv := make([]float64, len(loc.AC))
	inv32 := make([]float32, len(loc.AC))
	for k, v := range loc.AC {
		if v != 0 {
			inv[k] = 1 / v
			inv32[k] = float32(inv[k])
		}
	}
	return &diagPrecond{loc: loc, inv: inv, inv32: inv32}
}

//pop:hotpath
func (p *diagPrecond) Apply(dst, src []float64) {
	nx := p.loc.NxP
	h := p.loc.H
	for j := h; j < p.loc.NyP-h; j++ {
		base := j * nx
		for i := h; i < nx-h; i++ {
			dst[base+i] = src[base+i] * p.inv[base+i]
		}
	}
}

// ApplyFlops follows the paper's T_p = n²θ accounting for the diagonal.
func (p *diagPrecond) ApplyFlops() int64 { return int64(p.loc.InteriorLen()) }
func (p *diagPrecond) SetupFlops() int64 { return int64(p.loc.InteriorLen()) }

// subBlock is one tile of a block-Jacobi partition of a block interior.
type subBlock struct {
	x0, y0 int // offset within the block interior
	nx, ny int
}

// partitionInterior tiles an nxi×nyi interior into sub-blocks of side at
// most size, balancing tile dimensions to within one.
func partitionInterior(nxi, nyi, size int) []subBlock {
	cut := func(n int) []int {
		pieces := (n + size - 1) / size
		out := make([]int, pieces)
		for i := range out {
			out[i] = n / pieces
			if i < n%pieces {
				out[i]++
			}
		}
		return out
	}
	xs, ys := cut(nxi), cut(nyi)
	var blocks []subBlock
	y := 0
	for _, h := range ys {
		x := 0
		for _, w := range xs {
			blocks = append(blocks, subBlock{x0: x, y0: y, nx: w, ny: h})
			x += w
		}
		y += h
	}
	return blocks
}

// evpPrecond is the paper's block-EVP preconditioner: block-Jacobi over
// small sub-blocks, each solved exactly by EVP marching on the land-filled
// operator, with land rows projected back to identity.
type evpPrecond struct {
	loc                    *stencil.Local
	subs                   []subBlock
	solvers                []*evp.BlockSolver // nil for all-land sub-blocks
	psi, x                 []float64          // extended-domain scratch (max sub-block)
	applyFlops, setupFlops int64
}

// maxMarchGrowth bounds the acceptable EVP marching amplification: growth G
// leaves ~G·ε relative (non-symmetric) error in the block solve, and CG
// (ChronGear) stagnates once the residual reaches that error level — with
// POP's 1e−13 relative tolerance the bound must keep G·ε ≈ 1e−12, i.e.
// G ≲ 1e4. (P-CSI tolerates far larger G; this bound serves the weaker
// link.) Tiles that march hotter are split adaptively.
const maxMarchGrowth = 1e4

func newEVPPrecond(g *grid.Grid, phi float64, b *decomp.Block, loc *stencil.Local,
	size int, simplified bool, fill float64) (*evpPrecond, error) {
	p := &evpPrecond{loc: loc}
	maxExt := 0
	h := loc.H
	// Work queue of candidate tiles; tiles whose marching growth is too
	// large (strong anisotropy amplifies round-off hugely, e.g. at
	// latitude-clamped rows) are split along their longer side and
	// retried — marching growth shrinks geometrically with tile size.
	queue := partitionInterior(b.NxI, b.NyI, size)
	for len(queue) > 0 {
		sb := queue[0]
		queue = queue[1:]
		// Skip sub-blocks with no ocean point: identity there.
		ocean := false
		for j := 0; j < sb.ny && !ocean; j++ {
			for i := 0; i < sb.nx; i++ {
				if loc.Mask[(sb.y0+h+j)*loc.NxP+sb.x0+h+i] {
					ocean = true
					break
				}
			}
		}
		if !ocean {
			p.subs = append(p.subs, sb)
			p.solvers = append(p.solvers, nil)
			continue
		}
		win := stencil.AssembleWindowFilled(g, phi, b.X0+sb.x0, b.Y0+sb.y0, sb.nx, sb.ny, fill)
		growth, err := evp.MarchGrowth(win, simplified)
		if err == nil && growth > maxMarchGrowth && (sb.nx > 2 || sb.ny > 2) {
			queue = append(queue, splitSub(sb)...)
			continue
		}
		sol, err := evp.NewBlockSolver(win, simplified)
		if err != nil {
			return nil, fmt.Errorf("core: EVP sub-block at (%d,%d)+(%d,%d): %w",
				b.X0, b.Y0, sb.x0, sb.y0, err)
		}
		p.subs = append(p.subs, sb)
		p.solvers = append(p.solvers, sol)
		p.applyFlops += sol.SolveFlops()
		p.setupFlops += sol.SetupFlops()
		if ext := (sb.nx + 2) * (sb.ny + 2); ext > maxExt {
			maxExt = ext
		}
	}
	p.psi = make([]float64, maxExt)
	p.x = make([]float64, maxExt)
	return p, nil
}

// splitSub halves a tile along its longer side.
func splitSub(sb subBlock) []subBlock {
	if sb.nx >= sb.ny {
		h1 := sb.nx / 2
		return []subBlock{
			{x0: sb.x0, y0: sb.y0, nx: h1, ny: sb.ny},
			{x0: sb.x0 + h1, y0: sb.y0, nx: sb.nx - h1, ny: sb.ny},
		}
	}
	h1 := sb.ny / 2
	return []subBlock{
		{x0: sb.x0, y0: sb.y0, nx: sb.nx, ny: h1},
		{x0: sb.x0, y0: sb.y0 + h1, nx: sb.nx, ny: sb.ny - h1},
	}
}

//pop:hotpath
func (p *evpPrecond) Apply(dst, src []float64) {
	loc := p.loc
	nxp, h := loc.NxP, loc.H
	// Default: identity on the whole interior (covers land rows and
	// all-land sub-blocks).
	for j := h; j < loc.NyP-h; j++ {
		copy(dst[j*nxp+h:(j+1)*nxp-h], src[j*nxp+h:(j+1)*nxp-h])
	}
	for si, sb := range p.subs {
		sol := p.solvers[si]
		if sol == nil {
			continue
		}
		exw := sb.nx + 2
		psi := p.psi[:exw*(sb.ny+2)]
		x := p.x[:exw*(sb.ny+2)]
		for i := range psi {
			psi[i] = 0
		}
		// Masked gather: land rows contribute zero RHS so the filled
		// operator's solution is driven by ocean residuals only.
		for j := 0; j < sb.ny; j++ {
			lbase := (sb.y0 + h + j) * nxp
			ebase := (j + 1) * exw
			for i := 0; i < sb.nx; i++ {
				lk := lbase + sb.x0 + h + i
				if loc.Mask[lk] {
					psi[ebase+1+i] = src[lk]
				}
			}
		}
		sol.Solve(x, psi)
		// Masked scatter: land rows keep the identity value set above.
		for j := 0; j < sb.ny; j++ {
			lbase := (sb.y0 + h + j) * nxp
			ebase := (j + 1) * exw
			for i := 0; i < sb.nx; i++ {
				lk := lbase + sb.x0 + h + i
				if loc.Mask[lk] {
					dst[lk] = x[ebase+1+i]
				}
			}
		}
	}
}

func (p *evpPrecond) ApplyFlops() int64 { return p.applyFlops }
func (p *evpPrecond) SetupFlops() int64 { return p.setupFlops }

// bluPrecond is block-Jacobi with dense LU solves of the true sub-blocks
// (including identity land rows) — the paper's cost comparator for EVP.
type bluPrecond struct {
	loc                    *stencil.Local
	subs                   []subBlock
	lus                    []*linalg.LU
	buf                    []float64
	applyFlops, setupFlops int64
}

func newBLUPrecond(b *decomp.Block, loc *stencil.Local, size int) (*bluPrecond, error) {
	p := &bluPrecond{loc: loc, subs: partitionInterior(b.NxI, b.NyI, size)}
	h := loc.H
	maxN := 0
	for _, sb := range p.subs {
		n := sb.nx * sb.ny
		m := linalg.NewDense(n, n)
		for j := 0; j < sb.ny; j++ {
			for i := 0; i < sb.nx; i++ {
				row := loc.Row(sb.x0+h+i, sb.y0+h+j)
				for o, off := range nineOffsets {
					ii, jj := i+off[0], j+off[1]
					if row[o] == 0 || ii < 0 || ii >= sb.nx || jj < 0 || jj >= sb.ny {
						continue
					}
					m.Set(j*sb.nx+i, jj*sb.nx+ii, row[o])
				}
			}
		}
		lu, err := linalg.Factor(m)
		if err != nil {
			return nil, fmt.Errorf("core: block-LU factorization failed: %w", err)
		}
		p.lus = append(p.lus, lu)
		p.applyFlops += int64(2 * n * n)         // triangular solves
		p.setupFlops += int64(2 * n * n * n / 3) // factorization
		if n > maxN {
			maxN = n
		}
	}
	p.buf = make([]float64, maxN)
	return p, nil
}

// nineOffsets matches stencil row order [SW,S,SE,W,C,E,NW,N,NE].
var nineOffsets = [9][2]int{
	{-1, -1}, {0, -1}, {1, -1},
	{-1, 0}, {0, 0}, {1, 0},
	{-1, 1}, {0, 1}, {1, 1},
}

//pop:hotpath
func (p *bluPrecond) Apply(dst, src []float64) {
	loc := p.loc
	nxp, h := loc.NxP, loc.H
	for si, sb := range p.subs {
		buf := p.buf[:sb.nx*sb.ny]
		for j := 0; j < sb.ny; j++ {
			lbase := (sb.y0+h+j)*nxp + sb.x0 + h
			copy(buf[j*sb.nx:(j+1)*sb.nx], src[lbase:lbase+sb.nx])
		}
		p.lus[si].Solve(buf)
		for j := 0; j < sb.ny; j++ {
			lbase := (sb.y0+h+j)*nxp + sb.x0 + h
			copy(dst[lbase:lbase+sb.nx], buf[j*sb.nx:(j+1)*sb.nx])
		}
	}
}

func (p *bluPrecond) ApplyFlops() int64 { return p.applyFlops }
func (p *bluPrecond) SetupFlops() int64 { return p.setupFlops }
