package analysis_test

import (
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestHotPathAlloc(t *testing.T) {
	analyzertest.Run(t, "testdata/hotpathalloc", poplint.HotPathAlloc, "hotpath")
}
