package core

import "repro/internal/stencil"

// Float32 block-level vector kernels: the single-precision twins of the
// kernels in solvers.go, used by the mixed-precision inner solvers
// (mixed.go). Scalar recurrence coefficients arrive as float64 — they come
// from full-precision global reductions — and are rounded once per call,
// not once per point. Flop charges are identical to the float64 kernels:
// the virtual cost model prices a flop, not a format, so mixed-precision
// speedups are a wall-clock story (bench.sh), never a virtual-clock one.
//
// Inner loops use the same per-row slice-window idiom as solvers.go so the
// compiler's prove pass eliminates the bounds checks.

// residual32 computes r = b − A·x on the interior in float32. x must have
// valid ring-1 halos.
//
//pop:hotpath
func residual32(loc *stencil.Local32, r, b, x []float32) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		rr := r[lo:][:n]
		br := b[lo:][:n]
		xc := x[lo:][:n]
		xn := x[lo+nx:][:n]
		xs := x[lo-nx:][:n]
		xe := x[lo+1:][:n]
		xw := x[lo-1:][:n]
		xne := x[lo+nx+1:][:n]
		xse := x[lo-nx+1:][:n]
		xnw := x[lo+nx-1:][:n]
		xsw := x[lo-nx-1:][:n]
		ac := loc.AC[lo:][:n]
		an := loc.AN[lo:][:n]
		ans := loc.AN[lo-nx:][:n]
		ae := loc.AE[lo:][:n]
		aw := loc.AE[lo-1:][:n]
		ane := loc.ANE[lo:][:n]
		anes := loc.ANE[lo-nx:][:n]
		anew := loc.ANE[lo-1:][:n]
		anesw := loc.ANE[lo-nx-1:][:n]
		for i := range rr {
			rr[i] = br[i] - (ac[i]*xc[i] +
				an[i]*xn[i] + ans[i]*xs[i] +
				ae[i]*xe[i] + aw[i]*xw[i] +
				ane[i]*xne[i] + anes[i]*xse[i] +
				anew[i]*xnw[i] + anesw[i]*xsw[i])
		}
	}
}

// xpay32 computes dst = x + a·dst on the interior.
//
//pop:hotpath
func xpay32(loc *stencil.Local32, dst, x []float32, a float64) {
	af := float32(a)
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dst[lo:][:n]
		xr := x[lo:][:n]
		for i := range dr {
			dr[i] = xr[i] + af*dr[i]
		}
	}
}

// axpy32 computes dst += a·x on the interior.
//
//pop:hotpath
func axpy32(loc *stencil.Local32, dst, x []float32, a float64) {
	af := float32(a)
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dst[lo:][:n]
		xr := x[lo:][:n]
		for i := range dr {
			dr[i] += af * xr[i]
		}
	}
}

// chebUpdate32 computes dx = ω·rp + c·dx on the interior (P-CSI line 7).
//
//pop:hotpath
func chebUpdate32(loc *stencil.Local32, dx, rp []float32, omega, c float64) {
	of, cf := float32(omega), float32(c)
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dx[lo:][:n]
		rr := rp[lo:][:n]
		for i := range dr {
			dr[i] = of*rr[i] + cf*dr[i]
		}
	}
}

// scaleTo32 narrows dst = float32(src·a) on the interior: the
// iterative-refinement demotion of the float64 outer residual into the
// float32 inner right-hand side, scaled by 1/‖r‖ so the inner system has a
// unit-norm RHS and the float32 dynamic range is never the limiting factor.
//
//pop:hotpath
func scaleTo32(loc *stencil.Local32, dst []float32, src []float64, a float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dst[lo:][:n]
		sr := src[lo:][:n]
		for i := range dr {
			dr[i] = float32(sr[i] * a)
		}
	}
}

// axpyFrom32 widens dst += a·float32(x) on the interior: the
// iterative-refinement promotion folding the scaled float32 correction back
// into the float64 solution.
//
//pop:hotpath
func axpyFrom32(loc *stencil.Local32, dst []float64, x []float32, a float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dst[lo:][:n]
		xr := x[lo:][:n]
		for i := range dr {
			dr[i] += a * float64(xr[i])
		}
	}
}

// copyInterior32 copies src's interior rows into dst (halos untouched).
//
//pop:hotpath
func copyInterior32(loc *stencil.Local32, dst, src []float32) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		copy(dst[j*nx+h:(j+1)*nx-h], src[j*nx+h:(j+1)*nx-h])
	}
}

// zeroAll32 clears every entry of f, halos included.
//
//pop:hotpath
func zeroAll32(f []float32) {
	for k := range f {
		f[k] = 0
	}
}
