// Package ctxlib exercises the ctxflow analyzer: mid-chain
// context.Background/TODO mints and dropped ctx parameters are diagnosed;
// the nil-default and Context-suffix wrapper idioms are not.
package ctxlib

import "context"

func work(ctx context.Context) error { return ctx.Err() }

func badMint() error {
	ctx := context.Background() // want `minted in library function badMint`
	return work(ctx)
}

func badTODO(items []int) {
	for range items {
		_ = work(context.TODO()) // want `minted in library function badTODO`
	}
}

func badUnused(ctx context.Context, n int) int { // want `has a ctx parameter it never threads`
	return n * 2
}

// Solver carries the Context-suffix wrapper pair.
type Solver struct{}

// SolveContext is the context-threading entrypoint.
func (s *Solver) SolveContext(ctx context.Context, b []float64) error {
	return ctx.Err()
}

// Solve is the documented background-entrypoint wrapper: legal.
func (s *Solver) Solve(b []float64) error {
	return s.SolveContext(context.Background(), b)
}

// API nil-defaults at the boundary: legal.
func API(ctx context.Context, b []float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

// Detached records a deliberate detach with a suppression directive.
func Detached() error {
	//poplint:ignore ctxflow fire-and-forget telemetry flush, deliberately unscoped
	return work(context.Background())
}

// blank discards its context explicitly, which is legal.
func blank(_ context.Context, n int) int { return n }
