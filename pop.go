// Package pop is the public API of this reproduction of "Improving the
// Scalability of the Ocean Barotropic Solver in the Community Earth System
// Model" (SC '15): POP-style synthetic ocean grids, the nine-point implicit
// free-surface operator, the barotropic solvers (ChronGear, PCG, CSI and
// P-CSI) with diagonal/block-EVP/block-LU preconditioning on a virtual-rank
// communication substrate, a wind-driven barotropic ocean model with the
// ensemble-based solver-verification machinery of §6, and drivers that
// regenerate every table and figure in the paper's evaluation.
//
// Quick start:
//
//	g, _ := pop.NewGrid(pop.GridOneDegree)
//	solver, _ := pop.NewSolver(g, pop.SolverSpec{Method: pop.MethodPCSI, Precond: pop.PrecondEVP, Cores: 96})
//	res, x, _ := solver.Solve(b, nil)
//
// For serving many solves concurrently, see NewService. See examples/ for
// runnable programs and cmd/popbench for the experiment harness.
package pop

import (
	"context"
	"fmt"
	"io"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/stencil"
)

// Re-exported substrate types. The aliases make the full internal APIs
// available to users of this package.
type (
	// Grid is a curvilinear ocean grid with land mask and metrics.
	Grid = grid.Grid
	// GridSpec parameterizes synthetic grid generation.
	GridSpec = grid.Spec
	// Operator is the assembled nine-point barotropic operator.
	Operator = stencil.Operator
	// Result summarizes one solve (iterations, convergence, virtual-time
	// statistics).
	Result = core.Result
	// Machine is a priced machine model (Yellowstone, Edison, Ideal).
	Machine = perfmodel.Machine
	// Model is the barotropic ocean model with temperature tracers.
	Model = model.Model
	// ModelConfig configures a Model run.
	ModelConfig = model.Config
	// Ensemble accumulates the §6 RMSZ statistics.
	Ensemble = stats.Ensemble
	// SolverOptions exposes the full solver option set.
	SolverOptions = core.Options

	// Method selects the solver algorithm (see the Method* constants).
	Method = core.Method
	// Precond selects the preconditioner (see the Precond* constants).
	Precond = core.PrecondType
	// Precision selects the iteration arithmetic (see Float64/Float32).
	Precision = core.Precision
	// NotConvergedError carries the iteration count and final residual of
	// a solve that stopped short of its tolerance; match with
	// errors.As(err, &nc) or errors.Is(err, ErrNotConverged).
	NotConvergedError = core.NotConvergedError

	// FaultPlan configures deterministic fault injection: seeded per-class
	// probabilities for stragglers, dropped/corrupted halos, failed
	// reductions and rank crashes. The zero value injects nothing.
	FaultPlan = faults.Plan
	// FaultInjector draws the deterministic fault schedule a plan describes
	// and counts injections and recoveries. Wire one into a SolverSpec or
	// ServiceOptions; nil means no injection, bit for bit.
	FaultInjector = faults.Injector
	// FaultClass enumerates the injectable fault classes (see the Fault*
	// constants).
	FaultClass = faults.Class
	// RecoveryInfo counts the recovery actions one resilient solve performed
	// (checkpoint restores, reduction retries, recurrence restarts).
	RecoveryInfo = core.RecoveryInfo
	// FaultedError carries the recovery totals of a solve that faulted
	// beyond its recovery budget; match with errors.As(err, &fe) or
	// errors.Is(err, ErrFaulted).
	FaultedError = core.FaultedError

	// Service is the concurrent solve front end: a pool of warmed-up
	// sessions served by batching workers behind bounded queues.
	Service = serve.Service
	// ServiceOptions configures NewService.
	ServiceOptions = serve.Options
	// ServeRequest is one solve submission to a Service.
	ServeRequest = serve.Request
	// ServeResponse is one completed Service solve.
	ServeResponse = serve.Response
	// ServiceStats is a snapshot of a Service's counters.
	ServiceStats = serve.Stats

	// Fleet is the sharded serving layer: N solve workers behind a router
	// with consistent-hash sharding, singleflight deduplication, and a
	// content-addressed result cache that replays completed solves bitwise.
	Fleet = fleet.Fleet
	// FleetOptions configures NewFleet.
	FleetOptions = fleet.Options
	// FleetRequest is one solve submission to a Fleet.
	FleetRequest = fleet.Request
	// FleetResponse is one completed Fleet solve (worker response plus
	// cache disposition and shard).
	FleetResponse = fleet.Response
	// FleetWorker is one solve shard behind a Fleet router (in-process or
	// remote over the binary frame protocol).
	FleetWorker = fleet.Worker

	// MetricsRegistry is the metrics registry a Service reports into
	// (counters, gauges, histograms with Prometheus text exposition).
	MetricsRegistry = obs.Registry
	// FlightRecorder is the always-on bounded ring of recent request span
	// summaries a Service dumps on incidents (Service.Flight).
	FlightRecorder = obs.FlightRecorder
	// FlightDump is the JSON document one flight-recorder incident file
	// holds: trigger reason, offending request, its spans, the recent ring,
	// and a metrics snapshot.
	FlightDump = obs.FlightDump
	// RequestRecord is one request's span summary: trace ID, per-phase wall
	// durations, and the solve's virtual-time statistics.
	RequestRecord = obs.RequestRecord
	// Attribution is a request's critical-path decomposition (admit, queue,
	// batch wait, compute, halo, reduce, straggler slack).
	Attribution = obs.Attribution
	// PerfettoTrace is a parsed Perfetto/Chrome trace-event export
	// (Service.WritePerfetto output, read back with ReadPerfetto).
	PerfettoTrace = obs.PerfettoTrace
)

// Solver methods. The zero value is ChronGear, POP's production solver.
const (
	// MethodChronGear is Algorithm 1: a PCG variant with one fused global
	// reduction per iteration.
	MethodChronGear = core.MethodChronGear
	// MethodPCG is classic preconditioned conjugate gradients.
	MethodPCG = core.MethodPCG
	// MethodPipeCG is the Ghysels–Vanroose pipelined CG.
	MethodPipeCG = core.MethodPipeCG
	// MethodPCSI is the paper's preconditioned Stiefel iteration
	// (Algorithm 2): no reductions outside convergence checks.
	MethodPCSI = core.MethodPCSI
	// MethodCSI is plain Stiefel iteration — MethodPCSI with identity
	// preconditioning (NewSolver normalizes it to exactly that).
	MethodCSI = core.MethodCSI
	// MethodSStep is the communication-avoiding s-step PCG with a Chebyshev
	// basis: SolverOptions.SStep matrix-vector products batched between
	// single fused global reductions — at most ceil(iters/s)+1 reductions
	// per converged solve. See SOLVERS.md for when to raise s.
	MethodSStep = core.MethodSStep
)

// Preconditioners. The zero value is diagonal, POP's default.
const (
	// PrecondDiagonal is POP's default M = Λ(A).
	PrecondDiagonal = core.PrecondDiagonal
	// PrecondIdentity disables preconditioning.
	PrecondIdentity = core.PrecondIdentity
	// PrecondEVP is the paper's block-Jacobi EVP preconditioner (§4.3).
	PrecondEVP = core.PrecondEVP
	// PrecondBlockLU is the dense block-LU comparator (§4.1).
	PrecondBlockLU = core.PrecondBlockLU
)

// Solver precisions. The zero value is Float64, the bitwise-reproducible
// production arithmetic.
const (
	// Float64 runs every solver kernel in double precision.
	Float64 = core.Float64
	// Float32 runs the iteration kernels in single precision inside a
	// float64 iterative-refinement outer loop: same tolerance, roughly half
	// the memory and halo traffic, deterministic but not bitwise equal to
	// Float64 solves.
	Float32 = core.Float32
)

// Typed errors of the public solve path, matchable with errors.Is /
// errors.As.
var (
	// ErrBadSpec marks configuration errors: unknown methods,
	// preconditioners or grids, out-of-range options, wrong-length
	// vectors.
	ErrBadSpec = core.ErrBadSpec
	// ErrNotConverged marks solves that stopped short of their tolerance;
	// concrete errors carry a *NotConvergedError.
	ErrNotConverged = core.ErrNotConverged
	// ErrOverloaded marks Service requests shed because a queue was full.
	ErrOverloaded = serve.ErrOverloaded
	// ErrServiceClosed marks Service requests rejected during drain.
	ErrServiceClosed = serve.ErrClosed
	// ErrFaulted marks solves that failed beyond their recovery budget
	// under fault injection; concrete errors carry a *FaultedError.
	ErrFaulted = core.ErrFaulted
	// ErrCircuitOpen marks Service requests shed because their session
	// key's circuit breaker is open after consecutive faulted solves.
	ErrCircuitOpen = serve.ErrCircuitOpen
)

// Injectable fault classes, in FaultPlan field order.
const (
	// FaultStraggler delays one rank's entry into a global reduction.
	FaultStraggler = faults.Straggler
	// FaultHaloDrop discards a rank's received halo strips for one phase.
	FaultHaloDrop = faults.HaloDrop
	// FaultHaloCorrupt NaN-poisons a received halo message.
	FaultHaloCorrupt = faults.HaloCorrupt
	// FaultReduceFail fails one global reduction on every rank at once.
	FaultReduceFail = faults.ReduceFail
	// FaultRankCrash loses one rank's solver state at a convergence check.
	FaultRankCrash = faults.RankCrash
)

// NewFaultInjector builds a deterministic injector for the plan. Equal plans
// replay equal fault schedules for equal operation sequences; injection and
// recovery counts are readable via the injector's Injected and Recoveries
// methods.
func NewFaultInjector(plan FaultPlan) *FaultInjector { return faults.New(plan, nil) }

// ParseMethod maps a method name ("chrongear", "pcg", "pipecg", "pcsi",
// "csi", "sstep"; "" = chrongear) to its Method; unknown names match
// ErrBadSpec.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// ParsePrecond maps a preconditioner name ("diagonal", "evp", "blocklu",
// "none"; "" = diagonal) to its Precond; unknown names match ErrBadSpec.
func ParsePrecond(s string) (Precond, error) { return core.ParsePrecond(s) }

// ParsePrecision maps a precision name ("float64"/"fp64"/"double",
// "float32"/"fp32"/"single"; "" = float64) to its Precision; unknown names
// match ErrBadSpec.
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// NewService starts a concurrent solve service: Solve from any number of
// goroutines; Close drains it. See cmd/popserver for the HTTP front end.
func NewService(opts ServiceOptions) *Service { return serve.New(opts) }

// NewFleet starts a sharded solve fleet: N workers (in-process services,
// or remote popservers when FleetOptions.Remotes is set) behind a router
// with consistent-hash sharding, singleflight dedup, and a result cache.
// See cmd/popserver's -fleet and -routeto modes for the HTTP front end.
func NewFleet(opts FleetOptions) (*Fleet, error) { return fleet.New(opts) }

// NewLocalFleetWorker wraps an in-process Service as a Fleet worker. Build
// each worker's Service with its own private metrics registry.
func NewLocalFleetWorker(svc *Service) FleetWorker { return fleet.NewLocalWorker(svc) }

// NewTraceID allocates a fresh request trace ID (monotone, deterministic —
// never derived from time or randomness).
func NewTraceID() uint64 { return obs.NewTraceID() }

// ContextWithTraceID attaches a caller-chosen trace ID to ctx; a Service
// solve under that context stamps the ID onto every rank-level span it
// emits and returns it in ServeResponse.TraceID.
func ContextWithTraceID(ctx context.Context, id uint64) context.Context {
	return obs.ContextWithTraceID(ctx, id)
}

// TraceIDFromContext returns the trace ID attached to ctx, 0 when absent.
func TraceIDFromContext(ctx context.Context) uint64 { return obs.TraceIDFromContext(ctx) }

// ReadPerfetto parses a Perfetto/Chrome trace-event export produced by
// Service.WritePerfetto (or popserver's /debug/trace endpoint).
func ReadPerfetto(r io.Reader) (*PerfettoTrace, error) { return obs.ReadPerfetto(r) }

// AttributeRecord decomposes one request record into its critical-path
// attribution — the computation cmd/poptrace prints.
func AttributeRecord(rec RequestRecord) Attribution { return obs.AttributeRecord(rec) }

// Preset grid names for NewGrid (and Service requests).
const (
	// GridOneDegree is the paper's 1° production grid (320×384).
	GridOneDegree = grid.PresetOneDegree
	// GridTenthDegree is the paper's 0.1° grid (3600×2400; ~8.6M points).
	GridTenthDegree = grid.PresetTenthDegree
	// GridTenthDegreeScaled keeps the 0.1° geography at 1/16 the points.
	GridTenthDegreeScaled = grid.PresetTenthDegreeScaled
	// GridTest is a small grid for experimentation (64×48).
	GridTest = grid.PresetTest
)

// NewGrid generates one of the preset synthetic grids.
func NewGrid(preset string) (*Grid, error) { return grid.ByName(preset) }

// GenerateGrid builds a synthetic grid from a custom spec.
func GenerateGrid(spec GridSpec) *Grid { return grid.Generate(spec) }

// NewFlatBasin returns an all-ocean rectangular test basin.
func NewFlatBasin(nx, ny int, depth, dx, dy float64) *Grid {
	return grid.NewFlatBasin(nx, ny, depth, dx, dy)
}

// AssembleOperator builds the implicit free-surface operator for barotropic
// time step tau (seconds).
func AssembleOperator(g *Grid, tau float64) *Operator {
	return stencil.Assemble(g, stencil.PhiFromTimeStep(tau))
}

// MachineByName returns a machine model: "yellowstone", "edison", "ideal",
// or "" (free: zero-cost, numerics only).
func MachineByName(name string) (*Machine, error) { return perfmodel.ByName(name) }

// SolverSpec configures NewSolver. The zero value is POP's production
// configuration: ChronGear with diagonal preconditioning. String
// configurations (CLI flags, config files) convert via ParseMethod and
// ParsePrecond.
type SolverSpec struct {
	// Method selects the solver algorithm; zero value MethodChronGear.
	Method Method
	// Precond selects the preconditioner; zero value PrecondDiagonal.
	Precond Precond
	// Tau is the barotropic time step used for the operator's mass term
	// (default 1920 s, the 1° class step).
	Tau float64
	// Cores is the virtual rank count (0 = one rank per available block;
	// otherwise the nearest 3:2-aspect blocking is chosen).
	Cores int
	// Threads caps how many virtual ranks execute concurrently on real
	// cores: ranks are sharded into Threads contiguous groups and at most
	// one rank per group runs at a time (0 = GOMAXPROCS; ≥ Cores disables
	// sharding). Solutions are bitwise identical across all settings — only
	// wall-clock and cache behavior change.
	Threads int
	// MachineName prices virtual time ("" = free).
	MachineName string
	// Options exposes the remaining solver knobs (tolerance, EVP block
	// size, Lanczos controls); zero values take defaults. Options.Precond
	// is overwritten from Precond.
	Options SolverOptions
	// Faults, when non-nil, wires deterministic fault injection into the
	// solver's communication world. Solves should then go through
	// SolveResilient; a nil injector leaves every solve bitwise identical
	// to a build without fault injection.
	Faults *FaultInjector
}

// Solver bundles an operator, decomposition, communicator, and session.
type Solver struct {
	// Spec is the configuration NewSolver was given, after normalization
	// (defaulted Tau, MethodCSI rewritten to MethodPCSI + PrecondIdentity).
	Spec SolverSpec
	// G is the grid the solver was built over.
	G *Grid
	// Op is the assembled nine-point operator.
	Op *Operator
	// Session is the underlying distributed solver session; it exposes the
	// lower-level solve entry points and the solve arenas.
	Session *core.Session
	// Cores is the realized virtual rank count (one rank per ocean block,
	// which can differ from SolverSpec.Cores after blocking).
	Cores int
}

// NewSolver builds a distributed solver over g. Unknown methods and
// preconditioners — including out-of-range enum values — are rejected here,
// matching ErrBadSpec, never deferred to solve time.
func NewSolver(g *Grid, spec SolverSpec) (*Solver, error) {
	if g == nil {
		return nil, fmt.Errorf("pop: nil grid: %w", ErrBadSpec)
	}
	if spec.Tau == 0 {
		spec.Tau = 1920
	}
	if !spec.Method.Valid() {
		return nil, fmt.Errorf("pop: unknown method %v: %w", spec.Method, ErrBadSpec)
	}
	if !spec.Precond.Valid() {
		return nil, fmt.Errorf("pop: unknown preconditioner %v: %w", spec.Precond, ErrBadSpec)
	}
	if spec.Method == MethodCSI {
		spec.Method = MethodPCSI
		spec.Precond = PrecondIdentity
	}
	opts := spec.Options
	opts.Precond = spec.Precond

	op := stencil.Assemble(g, stencil.PhiFromTimeStep(spec.Tau))
	var d *decomp.Decomposition
	var err error
	if spec.Cores > 0 {
		bx, by, _, cerr := decomp.ChooseBlocking(g, spec.Cores, 3, 2)
		if cerr != nil {
			return nil, cerr
		}
		d, err = decomp.New(g, bx, by, decomp.DefaultHalo)
	} else {
		d, err = decomp.New(g, g.Nx, g.Ny, decomp.DefaultHalo)
	}
	if err != nil {
		return nil, err
	}
	cores := d.AssignOnePerRank()
	machine, err := MachineByName(spec.MachineName)
	if err != nil {
		return nil, err
	}
	var cost comm.CostModel
	if machine != nil {
		cost = machine
	}
	w, err := comm.NewWorld(d, cost)
	if err != nil {
		return nil, err
	}
	w.Faults = spec.Faults
	w.SetThreads(spec.Threads)
	sess, err := core.NewSession(g, op, d, w, opts)
	if err != nil {
		return nil, err
	}
	return &Solver{Spec: spec, G: g, Op: op, Session: sess, Cores: cores}, nil
}

// Solve runs the configured method on right-hand side b with initial guess
// x0 (nil = zero) and returns the result and the solution. It is
// SolveContext with a background context.
func (s *Solver) Solve(b, x0 []float64) (Result, []float64, error) {
	return s.SolveContext(context.Background(), b, x0)
}

// SolveContext is Solve honouring ctx: cancellation and deadlines are
// observed at each convergence-check boundary (every CheckEvery
// iterations), so an interrupted solve returns promptly — with an error
// matching ctx's cause — without ever perturbing the numerics between
// checks. The returned solution slice is the session's reusable arena,
// valid until the next solve on this solver.
func (s *Solver) SolveContext(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	return s.Session.SolveContext(ctx, s.Spec.Method, b, x0)
}

// SolveResilient is SolveContext under fault injection: solves checkpoint
// at clean convergence checks, retry failed reductions, roll back on
// crashes and corruption tripwires, and — for P-CSI — descend a degraded-mode
// ladder (re-estimated eigenvalue bounds, then ChronGear) before giving up.
// A solve that still fails beyond Options.MaxRecoveries returns an error
// matching ErrFaulted; Result.Recovery counts what the machinery did.
// Without an active injector this is exactly SolveContext.
func (s *Solver) SolveResilient(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	return s.Session.SolveResilient(ctx, s.Spec.Method, b, x0)
}

// EstimateEigenvalues exposes the Lanczos bounds estimation (P-CSI setup).
// Pass nil for the robust random probe.
func (s *Solver) EstimateEigenvalues(b []float64, maxSteps int) (nu, mu float64, steps int, err error) {
	return s.Session.EstimateEigenvalues(b, maxSteps)
}

// NewModel builds the barotropic ocean model.
func NewModel(cfg ModelConfig) (*Model, error) { return model.New(cfg) }

// Experiments is the per-figure experiment harness.
type Experiments = experiments.Config

// NewExperiments prepares an experiment context ("yellowstone" machine when
// m is nil). quick selects reduced-scale grids.
func NewExperiments(m *Machine, quick bool, progress io.Writer) *Experiments {
	return experiments.NewConfig(m, quick, progress)
}

// RunExperiment executes one experiment by id ("fig1".."fig13", "tab1",
// "evpsetup"), writing its tables to w.
func RunExperiment(id string, c *Experiments, w io.Writer) error {
	return experiments.Run(id, c, w)
}

// ExperimentNames lists the available experiment ids.
func ExperimentNames() []string { return experiments.Names() }

// NewEnsemble prepares a §6 RMSZ accumulator over fields of the given
// length; mask selects participating points (nil = all).
func NewEnsemble(length int, mask []bool) *Ensemble {
	return stats.NewEnsemble(length, mask)
}

// RMSE is the paper's simple port-verification metric.
func RMSE(a, b []float64, include []bool) float64 { return stats.RMSE(a, b, include) }
