package obs

import (
	"fmt"
	"io"
	"sort"
)

// ReduceSummary aggregates per-reduction straggler attribution from a
// trace: which rank's late arrival set each reduction's critical path, and
// how long every other rank waited for it. Counts come from rank 0's event
// stream (one event per reduction per rank; rank 0 sees them all), waits
// from each rank's own events — so if the ring dropped early events the
// summary covers the retained window only.
type ReduceSummary struct {
	Reductions     int             // reductions observed on rank 0
	StragglerCount map[int]int     // rank → reductions it arrived last at
	WaitByRank     map[int]float64 // rank → total virtual seconds waited
	EventsByRank   map[int]int     // rank → reduce events retained
	MaxWait        float64         // worst single wait across ranks
}

// SummarizeReduces scans a trace's reduce spans.
func SummarizeReduces(events []Event) *ReduceSummary {
	s := &ReduceSummary{
		StragglerCount: make(map[int]int),
		WaitByRank:     make(map[int]float64),
		EventsByRank:   make(map[int]int),
	}
	for _, e := range events {
		if e.Name != EvReduce {
			continue
		}
		s.WaitByRank[e.Rank] += e.Wait
		s.EventsByRank[e.Rank]++
		if e.Wait > s.MaxWait {
			s.MaxWait = e.Wait
		}
		if e.Rank == 0 {
			s.Reductions++
			if e.Straggler >= 0 {
				s.StragglerCount[e.Straggler]++
			}
		}
	}
	return s
}

// Fprint renders the straggler-attribution table: per rank, how often it
// was the last to arrive at a reduction and how much time it spent waiting
// for others. A rank that both straggles often and waits little is the
// critical path the paper's §5.2 load-imbalance analysis looks for.
func (s *ReduceSummary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "reduction straggler attribution (%d reductions traced):\n", s.Reductions)
	fmt.Fprintf(w, "%6s  %10s  %14s  %14s\n", "rank", "straggled", "wait_total(s)", "wait_mean(ms)")
	ids := make([]int, 0, len(s.EventsByRank))
	for id := range s.EventsByRank {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n := s.EventsByRank[id]
		mean := 0.0
		if n > 0 {
			mean = s.WaitByRank[id] / float64(n) * 1e3
		}
		fmt.Fprintf(w, "%6d  %10d  %14.6g  %14.6g\n",
			id, s.StragglerCount[id], s.WaitByRank[id], mean)
	}
}

// PhaseTotals sums span durations per event name per rank — a trace-derived
// cross-check of the runtime's Counters (the two agree when the ring has
// not wrapped).
func PhaseTotals(events []Event) map[string]map[int]float64 {
	out := make(map[string]map[int]float64)
	for _, e := range events {
		if e.IsPoint() {
			continue
		}
		m, ok := out[e.Name]
		if !ok {
			m = make(map[int]float64)
			out[e.Name] = m
		}
		m[e.Rank] += e.T1 - e.T0
	}
	return out
}
