package analysis

import (
	"go/ast"
	"go/constant"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// typedErrScope is the error-contract surface: the public facade, the
// serving layer, the wire API, the fleet router, and the solver core —
// the packages whose errors PR 3–4
// taught callers to match with errors.Is/As (ErrBadSpec, ErrOverloaded,
// *NotConvergedError, *FaultedError, …).
var typedErrScope = []string{
	"repro",
	"repro/internal/serve",
	"repro/internal/core",
	"repro/internal/api",
	"repro/internal/fleet",
}

// TypedErr reports error constructions that break the errors.Is/As
// matching contract: fmt.Errorf without a %w verb, and errors.New inside a
// function body (an unmatchable one-off; sentinels belong at package
// level).
//
// The serving layer maps solver errors to HTTP statuses, the resilience
// ladder decides whether to descend on errors.Is(err, ErrFaulted), and the
// circuit breaker counts errors.As(err, *FaultedError) — every one of
// those silently rots if an error along the chain is created without
// wrapping. This analyzer pins the convention the codebase already
// follows: every fmt.Errorf carries %w (wrapping either the underlying
// cause or a typed sentinel), and errors.New appears only in package-level
// sentinel declarations.
var TypedErr = &analysis.Analyzer{
	Name: "typederr",
	Doc: "error returns in the public surface must wrap with %w or use typed" +
		" Err*/*Error values so errors.Is/As matching keeps working",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runTypedErr,
}

func runTypedErr(pass *analysis.Pass) (any, error) {
	if !pkgInScope(pass, typedErrScope...) {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Only calls inside function bodies: package-level `var ErrX =
	// errors.New(…)` is the sanctioned sentinel form.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.TypesInfo, call)
			switch {
			case isPkgFunc(f, "errors", "New"):
				ig.reportf(call.Pos(), "errors.New inside %s creates an unmatchable one-off error; declare a package-level Err* sentinel or a typed *Error and wrap it with %%w", fd.Name.Name)
			case isPkgFunc(f, "fmt", "Errorf"):
				if format, ok := constFormat(pass, call); ok && !strings.Contains(format, "%w") {
					ig.reportf(call.Pos(), "fmt.Errorf without %%w in %s breaks errors.Is/As matching; wrap the cause or a typed Err* sentinel", fd.Name.Name)
				}
			}
			return true
		})
	})
	return nil, nil
}

// constFormat returns the constant format string of a fmt.Errorf call.
// Non-constant formats are skipped (nothing static to check).
func constFormat(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
