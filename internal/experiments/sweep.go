package experiments

import (
	"fmt"
	"math"

	"repro/internal/baroclinic"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/stencil"
)

// Measurement is one (resolution, solver config, core count) data point:
// measured iteration counts plus virtual times from the priced event
// stream.
type Measurement struct {
	Res     string
	Config  SolverConfig
	Cores   int
	BlockNx int
	BlockNy int

	Iterations int
	Converged  bool

	SolveTime  float64 // virtual seconds per solve (slowest rank)
	CompTime   float64 // per-solve per-rank mean computation time
	HaloTime   float64 // per-solve per-rank mean boundary-update time
	ReduceTime float64 // per-solve per-rank mean global-reduction time

	SetupTime float64 // preconditioner preprocessing (one-time)
	EigTime   float64 // Lanczos eigenvalue estimation (one-time, P-CSI)
	EigSteps  int
}

// DayTime returns the barotropic cost of one simulated day.
func (m *Measurement) DayTime(dtCount int) float64 {
	return m.SolveTime * float64(dtCount)
}

// syntheticRHS builds a reproducible right-hand side b = A·x_true from a
// smooth large-scale SSH-like field — in range space, masked, and with the
// multi-scale structure a real ψ has.
func syntheticRHS(g *grid.Grid, op *stencil.Operator) []float64 {
	x := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if !ocean {
			continue
		}
		lon := g.TLon[k] * math.Pi / 180
		lat := g.TLat[k] * math.Pi / 180
		x[k] = 0.6*math.Sin(2*lon)*math.Cos(3*lat) +
			0.3*math.Cos(5*lon+1)*math.Sin(2*lat) +
			0.1*math.Sin(11*lon)*math.Sin(7*lat+0.5)
	}
	b := make([]float64, g.N())
	op.Apply(b, x)
	for k, ocean := range g.Mask {
		if !ocean {
			b[k] = 0
		}
	}
	return b
}

// tauFor returns the barotropic time step at a resolution.
func (c *Config) tauFor(res string) float64 {
	return 86400 / float64(c.DtCount(res))
}

// measure runs one solver configuration at one core-count target on the
// config's machine.
func (c *Config) measure(res string, g *grid.Grid, op *stencil.Operator, b []float64,
	target int, sc SolverConfig) (Measurement, error) {
	return c.measureOn(c.Machine, res, g, op, b, target, sc)
}

// measureOn runs one solver configuration at one core-count target and
// returns the data point. The same grid/operator/RHS are shared by the
// caller across configurations.
func (c *Config) measureOn(machine comm.CostModel, res string, g *grid.Grid, op *stencil.Operator, b []float64,
	target int, sc SolverConfig) (Measurement, error) {
	bx, by, cores, err := decomp.ChooseBlocking(g, target, 3, 2)
	if err != nil {
		return Measurement{}, err
	}
	d, err := decomp.New(g, bx, by, decomp.DefaultHalo)
	if err != nil {
		return Measurement{}, err
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, machine)
	if err != nil {
		return Measurement{}, err
	}
	w.Tracer = c.Tracer
	sess, err := core.NewSession(g, op, d, w, core.Options{Precond: sc.Precond})
	if err != nil {
		return Measurement{}, err
	}
	if err := sess.Setup(); err != nil {
		return Measurement{}, err
	}
	m := Measurement{
		Res: res, Config: sc, Cores: cores, BlockNx: bx, BlockNy: by,
		SetupTime: sess.SetupStats.MaxClock,
	}
	if sc.Solver == "pcsi" {
		if _, _, steps, err := sess.EstimateEigenvalues(nil, 0); err != nil {
			return Measurement{}, err
		} else {
			m.EigSteps = steps
		}
		m.EigTime = sess.EigenStats.MaxClock
	}
	solves := c.Solves
	if solves < 1 {
		solves = 1
	}
	x0 := make([]float64, g.N())
	var iters int
	for s := 0; s < solves; s++ {
		var res2 core.Result
		switch sc.Solver {
		case "chrongear":
			res2, _, err = sess.SolveChronGear(b, x0)
		case "pcg":
			res2, _, err = sess.SolvePCG(b, x0)
		case "pcsi":
			res2, _, err = sess.SolvePCSI(b, x0)
		default:
			err = fmt.Errorf("experiments: unknown solver %q", sc.Solver)
		}
		if err != nil {
			return Measurement{}, err
		}
		iters += res2.Iterations
		m.Converged = res2.Converged
		m.SolveTime += res2.Stats.MaxClock
		mean := res2.Stats.MeanCounters()
		m.CompTime += mean.TComp
		m.HaloTime += mean.THalo
		m.ReduceTime += mean.TReduce
	}
	inv := 1 / float64(solves)
	m.Iterations = int(math.Round(float64(iters) * inv))
	m.SolveTime *= inv
	m.CompTime *= inv
	m.HaloTime *= inv
	m.ReduceTime *= inv
	c.logf("%s %s cores=%d block=%dx%d iters=%d solve=%.4gs (comp %.4g, halo %.4g, reduce %.4g)",
		res, sc, cores, bx, by, m.Iterations, m.SolveTime, m.CompTime, m.HaloTime, m.ReduceTime)
	c.recorded = append(c.recorded, m)
	return m, nil
}

// Sweep measures every PaperConfig across the resolution's core-count axis
// (cached per machine+resolution).
func (c *Config) Sweep(res string) ([]Measurement, error) {
	key := c.Machine.Name + "/" + res
	if ms, ok := c.sweeps[key]; ok {
		return ms, nil
	}
	g := c.gridFor(res)
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(c.tauFor(res)))
	b := syntheticRHS(g, op)
	var out []Measurement
	for _, target := range c.CoreTargets(res) {
		for _, sc := range PaperConfigs {
			m, err := c.measure(res, g, op, b, target, sc)
			if err != nil {
				return nil, fmt.Errorf("sweep %s %s @%d: %w", res, sc, target, err)
			}
			out = append(out, m)
		}
	}
	c.sweeps[key] = out
	return out, nil
}

// find returns the sweep measurement for a config at a core target.
func find(ms []Measurement, sc SolverConfig, cores int) *Measurement {
	var best *Measurement
	for i := range ms {
		m := &ms[i]
		if m.Config != sc {
			continue
		}
		if best == nil || absInt(m.Cores-cores) < absInt(best.Cores-cores) {
			best = m
		}
	}
	return best
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// coresAxis lists the distinct measured core counts in sweep order.
func coresAxis(ms []Measurement) []int {
	var out []int
	seen := make(map[int]bool)
	for _, m := range ms {
		if !seen[m.Cores] {
			seen[m.Cores] = true
			out = append(out, m.Cores)
		}
	}
	return out
}

// baroPoint is one baroclinic-cost measurement.
type baroPoint struct {
	cores    int
	stepTime float64 // virtual seconds per baroclinic step
}

// BaroclinicStepTime measures (cached) the synthetic baroclinic step cost
// at a core-count target.
func (c *Config) BaroclinicStepTime(res string, target int) (cores int, stepTime float64, err error) {
	key := fmt.Sprintf("%s/%s/%d", c.Machine.Name, res, target)
	if bp, ok := c.baro[key]; ok {
		return bp.cores, bp.stepTime, nil
	}
	g := c.gridFor(res)
	bx, by, cores, err := decomp.ChooseBlocking(g, target, 3, 2)
	if err != nil {
		return 0, 0, err
	}
	d, err := decomp.New(g, bx, by, decomp.DefaultHalo)
	if err != nil {
		return 0, 0, err
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, c.Machine)
	if err != nil {
		return 0, 0, err
	}
	w.Tracer = c.Tracer
	wl, err := baroclinic.New(d, w, 0)
	if err != nil {
		return 0, 0, err
	}
	st := wl.Step()
	c.baro[key] = baroPoint{cores: cores, stepTime: st.MaxClock}
	c.logf("%s baroclinic cores=%d step=%.4gs", res, cores, st.MaxClock)
	return cores, st.MaxClock, nil
}
