package perfmodel

import (
	"math"
	"testing"
)

func TestFlopTimeDeterministic(t *testing.T) {
	m := Yellowstone()
	a := m.FlopTime(1000, 3, 17)
	b := m.FlopTime(1000, 3, 17)
	if a != b {
		t.Fatalf("FlopTime not deterministic: %v vs %v", a, b)
	}
	if c := m.FlopTime(1000, 4, 17); c == a {
		t.Fatal("FlopTime should differ across ranks (jitter)")
	}
}

func TestFlopTimeNearBase(t *testing.T) {
	m := Yellowstone()
	base := 1e6 * m.Theta
	// Average over many draws should be within jitter+spike expectations.
	var sum float64
	n := 2000
	for s := 0; s < n; s++ {
		sum += m.FlopTime(1e6, 1, int64(s))
	}
	avg := sum / float64(n)
	if avg < base*0.95 || avg > base*1.3 {
		t.Fatalf("mean flop time %v far from base %v", avg, base)
	}
}

func TestIdealNoiseFree(t *testing.T) {
	m := Ideal()
	for s := int64(0); s < 10; s++ {
		if got := m.FlopTime(1e6, int(s), s); got != 1e6*m.Theta {
			t.Fatalf("ideal machine has jitter: %v", got)
		}
		if got := m.ReduceTime(4096, s); got != 12*m.ReduceAlpha {
			t.Fatalf("ideal reduce has noise: %v", got)
		}
	}
}

func TestP2PTime(t *testing.T) {
	m := Yellowstone()
	if got := m.P2PTime(0); got != m.Alpha {
		t.Fatalf("zero-byte message cost %v, want α", got)
	}
	if got := m.P2PTime(1000); got != m.Alpha+1000*m.Beta {
		t.Fatalf("P2PTime wrong: %v", got)
	}
}

func TestReduceTimeGrowsWithRanks(t *testing.T) {
	m := Yellowstone()
	avg := func(p int) float64 {
		var s float64
		for seq := int64(0); seq < 500; seq++ {
			s += m.ReduceTime(p, seq)
		}
		return s / 500
	}
	t470, t2700, t16875 := avg(470), avg(2700), avg(16875)
	if !(t470 < t2700 && t2700 < t16875) {
		t.Fatalf("reduce time not increasing: %v %v %v", t470, t2700, t16875)
	}
	// The √p contention scaling should make the growth clearly superlinear
	// in log p: 16875/470 ranks is ~6× in √p.
	if t16875 < 3*t470 {
		t.Fatalf("contention growth too weak: %v vs %v", t16875, t470)
	}
}

func TestEdisonNoisierThanYellowstone(t *testing.T) {
	ys, ed := Yellowstone(), Edison()
	avgVar := func(m *Machine) (mean, variance float64) {
		const n = 2000
		var s, s2 float64
		for seq := int64(0); seq < n; seq++ {
			v := m.ReduceTime(16875, seq)
			s += v
			s2 += v * v
		}
		mean = s / n
		variance = s2/n - mean*mean
		return mean, variance
	}
	mYS, vYS := avgVar(ys)
	mED, vED := avgVar(ed)
	if mED <= mYS {
		t.Fatalf("Edison mean reduce %v should exceed Yellowstone %v", mED, mYS)
	}
	if vED <= vYS {
		t.Fatalf("Edison variance %v should exceed Yellowstone %v", vED, vYS)
	}
}

func TestWithSeedChangesDraws(t *testing.T) {
	m := Yellowstone()
	m2 := m.WithSeed(1)
	if m2.Seed == m.Seed {
		t.Fatal("WithSeed did not change seed")
	}
	same := 0
	for seq := int64(0); seq < 100; seq++ {
		if m.ReduceTime(1024, seq) == m2.ReduceTime(1024, seq) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("reseeded machine draws mostly identical (%d/100)", same)
	}
	if m2.Name != m.Name || m2.Theta != m.Theta {
		t.Fatal("WithSeed should only change the seed")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11, 16875: 15}
	for p, want := range cases {
		if got := log2Ceil(p); got != want {
			t.Fatalf("log2Ceil(%d)=%d want %d", p, got, want)
		}
	}
}

func TestClosedFormsCrossoverShape(t *testing.T) {
	// The analytic forms must reproduce the paper's headline shape: at small
	// p ChronGear beats P-CSI per solve (K_pcsi > K_cg), but beyond a few
	// thousand ranks the (4+log p)α reduction term makes ChronGear lose.
	m := Ideal()
	n2 := 3600.0 * 2400.0
	kcg, kpcsi := 180.0, 260.0
	small := EqChronGearDiag(m, n2, 128, kcg) < EqPCSIDiag(m, n2, 128, kpcsi)
	large := EqChronGearDiag(m, n2, 16875, kcg) > EqPCSIDiag(m, n2, 16875, kpcsi)
	if !small {
		t.Fatal("expected ChronGear to win at small core counts")
	}
	if !large {
		t.Fatal("expected P-CSI to win at 16875 cores")
	}
}

func TestClosedFormSStepCrossover(t *testing.T) {
	// The s-step trade: flops per iteration grow ~7s while the reduction
	// latency term shrinks by 1/s, so the winner flips with the
	// flops-per-rank vs latency balance. At small p (flop-dominated) s=1
	// must beat s=8; once the per-rank tile is small enough that the
	// (4+log p)α term dominates, the order flips and s=8 must also
	// undercut ChronGear at equal iteration counts.
	m := Ideal()
	n2 := 3600.0 * 2400.0
	k := 200.0
	p := 65536 // ~132 points/rank: reduction-latency dominated
	if EqSStepDiag(m, n2, 16, k, 1) >= EqSStepDiag(m, n2, 16, k, 8) {
		t.Fatal("at small p the flop term should make small s win")
	}
	if EqSStepDiag(m, n2, p, k, 8) >= EqSStepDiag(m, n2, p, k, 1) {
		t.Fatalf("at %d cores the reduction term should make s=8 win", p)
	}
	if EqSStepDiag(m, n2, p, k, 8) >= EqChronGearDiag(m, n2, p, k) {
		t.Fatal("s=8 should undercut ChronGear's per-iteration reductions at scale")
	}
	if EqSStepEVP(m, n2, p, k, 4) <= EqSStepDiag(m, n2, p, k, 4) {
		t.Fatal("EVP must cost more per iteration than diagonal at fixed k")
	}
}

func TestClosedFormEVPTradeoff(t *testing.T) {
	// EVP roughly doubles per-iteration compute but cuts iterations ~3×, so
	// with K'=K/3 the EVP variants must be faster at scale.
	m := Ideal()
	n2 := 3600.0 * 2400.0
	p := 16875
	k := 240.0
	if EqPCSIEVP(m, n2, p, k/3) >= EqPCSIDiag(m, n2, p, k) {
		t.Fatal("EVP-preconditioned P-CSI should win at scale")
	}
	if EqChronGearEVP(m, n2, p, k/3) >= EqChronGearDiag(m, n2, p, k) {
		t.Fatal("EVP-preconditioned ChronGear should win at scale")
	}
}

func TestSplitmixAvalanche(t *testing.T) {
	// Neighbouring inputs should produce wildly different outputs.
	h1 := splitmix64(1)
	h2 := splitmix64(2)
	diff := h1 ^ h2
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 {
		t.Fatalf("poor avalanche: only %d differing bits", bits)
	}
	if u := toUnit(h1); u < 0 || u >= 1 {
		t.Fatalf("toUnit out of range: %v", u)
	}
}

func TestSpikeTailIsFinite(t *testing.T) {
	m := Yellowstone()
	for seq := int64(0); seq < 10000; seq++ {
		v := m.FlopTime(1e9, 0, seq) // huge phase: spikes certain
		if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
			t.Fatalf("bad flop time %v at seq %d", v, seq)
		}
	}
}
