// Command poptrace analyzes Perfetto trace exports produced by this repo
// (popserver /debug/trace, popserver -traceout, popbench -serve -perfetto,
// or serve.Service.WritePerfetto) and prints the paper-style critical-path
// attribution the SC15 analysis rests on: where each request's wall time
// went — queue, batch wait, compute, halo exchange, global reduction, and
// straggler slack — plus a per-rank straggler league table identifying
// which ranks set the reductions' critical paths, annotated with the worker
// shard each rank executed on and rolled up per shard (the hardware-
// parallelism view: how virtual ranks were packed onto worker shards).
//
//	poptrace trace.json
//	poptrace -top 5 -league 8 trace.json
//
// The per-request table decomposes measured request latency; the aggregate
// section sums the attribution over all requests (the serving-layer
// equivalent of the paper's Fig. 5 phase breakdown); the league table ranks
// ranks by how often their late reduction entry made everyone else wait.
// A truncated trace (ring-buffer drops) is flagged with a warning since
// span-derived numbers then undercount the oldest activity.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	var (
		top    = flag.Int("top", 10, "requests to list in the per-request table (0 = all)")
		league = flag.Int("league", 10, "ranks to list in the straggler league (0 = all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: poptrace [flags] <trace.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *top, *league); err != nil {
		fmt.Fprintf(os.Stderr, "poptrace: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, top, league int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pt, err := obs.ReadPerfetto(f)
	if err != nil {
		return err
	}

	fmt.Printf("trace: %s\n", path)
	fmt.Printf("  events %d, processes %d, requests %d\n",
		len(pt.Events), len(pt.ProcessNames), len(pt.Requests))
	if pt.Dropped > 0 {
		fmt.Printf("  WARNING: trace truncated — %d events lost to ring-buffer wraparound;\n"+
			"  oldest spans are missing and per-rank totals undercount\n", pt.Dropped)
	}
	if len(pt.Requests) == 0 {
		fmt.Println("  no request records in trace (serve layer not traced)")
		return reportLeague(pt, league)
	}

	atts := make([]obs.Attribution, 0, len(pt.Requests))
	for _, rec := range pt.Requests {
		atts = append(atts, obs.AttributeRecord(rec))
	}
	sort.Slice(atts, func(i, j int) bool { return atts[i].Total > atts[j].Total })

	n := len(atts)
	if top > 0 && top < n {
		n = top
	}
	fmt.Printf("\nper-request critical path (top %d of %d by latency, ms):\n", n, len(atts))
	fmt.Printf("  %-8s %-22s %9s %8s %8s %8s %8s %8s %8s %8s %8s %6s\n",
		"trace", "key", "total", "router", "admit", "queue", "batch", "compute", "halo", "reduce", "slack", "cover")
	for _, a := range atts[:n] {
		fmt.Printf("  %-8d %-22s %9.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %5.1f%%\n",
			a.TraceID, a.Key, a.Total*1e3, a.Router*1e3, a.Admit*1e3, a.Queue*1e3, a.BatchWait*1e3,
			a.Compute*1e3, a.Halo*1e3, a.Reduce*1e3, a.Slack*1e3, a.Coverage()*100)
	}

	// Aggregate: the serving-layer phase breakdown summed over requests.
	var agg obs.Attribution
	for _, a := range atts {
		agg.Router += a.Router
		agg.Admit += a.Admit
		agg.Queue += a.Queue
		agg.BatchWait += a.BatchWait
		agg.Compute += a.Compute
		agg.Halo += a.Halo
		agg.Reduce += a.Reduce
		agg.Slack += a.Slack
		agg.Total += a.Total
	}
	fmt.Printf("\naggregate critical path (%d requests, %.3f s attributed of %.3f s measured):\n",
		len(atts), agg.Sum(), agg.Total)
	phases := []struct {
		name string
		v    float64
	}{
		{"router", agg.Router},
		{"admit", agg.Admit}, {"queue", agg.Queue}, {"batch-wait", agg.BatchWait},
		{"compute", agg.Compute}, {"halo", agg.Halo}, {"reduce", agg.Reduce},
		{"straggler-slack", agg.Slack},
	}
	for _, ph := range phases {
		pct := 0.0
		if agg.Total > 0 {
			pct = ph.v / agg.Total * 100
		}
		fmt.Printf("  %-16s %10.3f ms  %5.1f%%\n", ph.name, ph.v*1e3, pct)
	}

	return reportLeague(pt, league)
}

// reportLeague prints the per-rank straggler league from the trace's reduce
// spans (silent when the trace has none — e.g. rank tracing was disabled).
func reportLeague(pt *obs.PerfettoTrace, limit int) error {
	rows := obs.StragglerLeague(pt.Events)
	if len(rows) == 0 {
		return nil
	}
	n := len(rows)
	if limit > 0 && limit < n {
		n = limit
	}
	fmt.Printf("\nstraggler league (top %d of %d ranks by reductions straggled):\n", n, len(rows))
	fmt.Printf("  %-6s %-6s %9s %10s %7s %12s %12s\n",
		"rank", "shard", "reduces", "straggled", "share", "wait-mean", "wait-total")
	for _, r := range rows[:n] {
		share := 0.0
		if r.Reduces > 0 {
			share = float64(r.Straggled) / float64(r.Reduces) * 100
		}
		shard := "-"
		if r.Shard >= 0 {
			shard = fmt.Sprintf("%d", r.Shard)
		}
		fmt.Printf("  %-6d %-6s %9d %10d %6.1f%% %10.3fµs %10.3fms\n",
			r.Rank, shard, r.Reduces, r.Straggled, share, r.WaitMean*1e6, r.WaitTotal*1e3)
	}
	reportShards(rows)
	return nil
}

// reportShards rolls the league up by worker shard: how the virtual ranks
// were packed onto hardware shards and where the reduction wait concentrated.
// Silent when the trace carries no shard attribution (run_begin markers
// absent or unstamped).
func reportShards(rows []obs.LeagueRow) {
	type agg struct {
		ranks, reduces, straggled int
		wait                      float64
	}
	byShard := make(map[int]*agg)
	for _, r := range rows {
		if r.Shard < 0 {
			return
		}
		a := byShard[r.Shard]
		if a == nil {
			a = &agg{}
			byShard[r.Shard] = a
		}
		a.ranks++
		a.reduces += r.Reduces
		a.straggled += r.Straggled
		a.wait += r.WaitTotal
	}
	if len(byShard) == 0 {
		return
	}
	ids := make([]int, 0, len(byShard))
	for id := range byShard {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("\nworker-shard rollup (%d shards):\n", len(ids))
	fmt.Printf("  %-6s %6s %9s %10s %12s\n",
		"shard", "ranks", "reduces", "straggled", "wait-total")
	for _, id := range ids {
		a := byShard[id]
		fmt.Printf("  %-6d %6d %9d %10d %10.3fms\n",
			id, a.ranks, a.reduces, a.straggled, a.wait*1e3)
	}
}
