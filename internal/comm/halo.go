package comm

import "repro/internal/obs"

// Halo exchange. POP updates block halos in two phases — east/west columns
// first, then north/south rows that span the full padded width including the
// freshly received columns — so corner values from diagonal neighbour blocks
// arrive in two hops and each block sends/receives only four messages per
// update, the 4α term in the paper's boundary-cost model (§2.2).

// Exchange refreshes the halos of one distributed field. fields[i] is the
// padded local array for r.Blocks[i]. Collective: every rank must call
// Exchange in the same program order.
func (r *Rank) Exchange(fields [][]float64) {
	r.ExchangeMulti([][][]float64{fields})
}

// ExchangeMulti refreshes the halos of several fields (e.g. the levels of a
// 3-D field) in one aggregated update: each neighbour receives a single
// message carrying every level's strip, paying the latency α once and the
// bandwidth β per level — exactly how POP aggregates its 3-D halo updates.
// levels[L][i] is level L's padded array for r.Blocks[i].
func (r *Rank) ExchangeMulti(levels [][][]float64) {
	for _, fields := range levels {
		if len(fields) != len(r.Blocks) {
			panic("comm: Exchange fields/blocks length mismatch")
		}
	}
	r.exchangePhase(levels, SideE, SideW)
	r.exchangePhase(levels, SideN, SideS)
}

// exchangePhase handles one direction pair: sideA/sideB are the receiving
// sides (e.g. SideE means "my east halo", filled by my east neighbour).
func (r *Rank) exchangePhase(levels [][][]float64, sideA, sideB int) {
	w := r.World
	d := w.D
	entry := r.clock

	// Send to every cross-rank neighbour first (non-blocking: channels hold
	// one message and each carries exactly one per phase), then satisfy
	// same-rank neighbours with direct copies, then drain receives.
	for i, b := range r.Blocks {
		for _, side := range [2]int{sideA, sideB} {
			off := sideOffsets[side]
			nb := d.NeighborID(b, off[0], off[1])
			if nb < 0 {
				continue // domain edge or land block: halo keeps zeros
			}
			nbBlock := &d.Blocks[nb]
			// My block is on the opposite side of the neighbour.
			nbSide := opposite(side)
			if nbBlock.Rank == r.ID {
				continue // handled by the local-copy pass below
			}
			// One aggregated message: all levels' strips concatenated.
			var data []float64
			for _, fields := range levels {
				data = append(data, extractStrip(fields[i], b.NxI, b.NyI, d.Halo, side)...)
			}
			w.haloCh[haloKey{nb, nbSide}] <- haloMsg{data: data, clock: r.clock}
		}
	}

	// Same-rank neighbour copies (free in the cost model: intra-node).
	for i, b := range r.Blocks {
		for _, side := range [2]int{sideA, sideB} {
			off := sideOffsets[side]
			nb := d.NeighborID(b, off[0], off[1])
			if nb < 0 || d.Blocks[nb].Rank != r.ID {
				continue
			}
			j := r.blockIndex(nb)
			nbBlock := r.Blocks[j]
			for _, fields := range levels {
				strip := extractStrip(fields[j], nbBlock.NxI, nbBlock.NyI, d.Halo, opposite(side))
				insertStrip(fields[i], b.NxI, b.NyI, d.Halo, side, strip)
			}
		}
	}

	// Receives: fill halos, tracking sender clocks and message costs.
	arrival := r.clock
	var charge float64
	var phaseBytes int64
	for i, b := range r.Blocks {
		for _, side := range [2]int{sideA, sideB} {
			off := sideOffsets[side]
			nb := d.NeighborID(b, off[0], off[1])
			if nb < 0 || d.Blocks[nb].Rank == r.ID {
				continue
			}
			m := <-w.haloCh[haloKey{b.ID, side}]
			stripLen := len(m.data) / len(levels)
			for li, fields := range levels {
				insertStrip(fields[i], b.NxI, b.NyI, d.Halo, side, m.data[li*stripLen:(li+1)*stripLen])
			}
			if m.clock > arrival {
				arrival = m.clock
			}
			bytes := int64(len(m.data) * 8)
			r.ctr.HaloMsgs++
			r.ctr.HaloBytes += bytes
			phaseBytes += bytes
			charge += w.Cost.P2PTime(bytes)
		}
	}
	r.clock = arrival + charge
	r.ctr.THalo += r.clock - entry
	if r.trace != nil {
		r.trace.Add(obs.Event{Name: obs.EvHalo, T0: entry, T1: r.clock,
			Value: float64(phaseBytes), Iter: -1, Straggler: -1})
	}
}

// opposite maps a receiving side to the sender's receiving side.
func opposite(side int) int {
	switch side {
	case SideE:
		return SideW
	case SideW:
		return SideE
	case SideN:
		return SideS
	default:
		return SideN
	}
}

// extractStrip copies the interior edge strip that a neighbour on the given
// side needs. E/W strips cover interior rows only; N/S strips span the full
// padded width so corners propagate (two-phase scheme).
//
// "side" here is the side of THIS block facing the neighbour: to fill a
// neighbour's west halo we extract from our... — callers pass the side of
// the *receiving* halo on the neighbour via opposite(), so this function is
// given the side of this block from which data leaves.
func extractStrip(f []float64, nxi, nyi, h, side int) []float64 {
	nxp := nxi + 2*h
	switch side {
	case SideW: // my west interior columns [h, 2h) → neighbour's east halo
		s := make([]float64, h*nyi)
		for j := 0; j < nyi; j++ {
			copy(s[j*h:(j+1)*h], f[(j+h)*nxp+h:(j+h)*nxp+2*h])
		}
		return s
	case SideE: // my east interior columns [nxp-2h, nxp-h)
		s := make([]float64, h*nyi)
		for j := 0; j < nyi; j++ {
			copy(s[j*h:(j+1)*h], f[(j+h)*nxp+nxp-2*h:(j+h)*nxp+nxp-h])
		}
		return s
	case SideS: // my south interior rows [h, 2h), full padded width
		s := make([]float64, h*nxp)
		for j := 0; j < h; j++ {
			copy(s[j*nxp:(j+1)*nxp], f[(j+h)*nxp:(j+h+1)*nxp])
		}
		return s
	default: // SideN: my north interior rows [nyp-2h, nyp-h)
		nyp := nyi + 2*h
		s := make([]float64, h*nxp)
		for j := 0; j < h; j++ {
			copy(s[j*nxp:(j+1)*nxp], f[(nyp-2*h+j)*nxp:(nyp-2*h+j+1)*nxp])
		}
		return s
	}
}

// insertStrip writes a received strip into the halo on the given side of
// this block.
func insertStrip(f []float64, nxi, nyi, h, side int, s []float64) {
	nxp := nxi + 2*h
	switch side {
	case SideE: // east halo columns [nxp-h, nxp)
		for j := 0; j < nyi; j++ {
			copy(f[(j+h)*nxp+nxp-h:(j+h)*nxp+nxp], s[j*h:(j+1)*h])
		}
	case SideW: // west halo columns [0, h)
		for j := 0; j < nyi; j++ {
			copy(f[(j+h)*nxp:(j+h)*nxp+h], s[j*h:(j+1)*h])
		}
	case SideN: // north halo rows [nyp-h, nyp)
		nyp := nyi + 2*h
		for j := 0; j < h; j++ {
			copy(f[(nyp-h+j)*nxp:(nyp-h+j+1)*nxp], s[j*nxp:(j+1)*nxp])
		}
	default: // SideS: south halo rows [0, h)
		for j := 0; j < h; j++ {
			copy(f[j*nxp:(j+1)*nxp], s[j*nxp:(j+1)*nxp])
		}
	}
}

// blockIndex returns the position of blockID within r.Blocks.
func (r *Rank) blockIndex(blockID int) int {
	for i, b := range r.Blocks {
		if b.ID == blockID {
			return i
		}
	}
	panic("comm: block not owned by rank")
}
