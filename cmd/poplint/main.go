// Command poplint is the repo's static-analysis multichecker: it enforces
// the SPMD lockstep, determinism, hot-path allocation, context-flow, and
// typed-error invariants (see internal/analysis and DESIGN.md §10).
//
// It runs two ways:
//
//	poplint ./...                          # standalone: re-execs go vet with itself
//	go vet -vettool=$(which poplint) ./... # as a vet tool (unitchecker protocol)
//
// Standalone mode delegates package loading and type checking to the go
// command (the unitchecker protocol), so the two forms analyze identically
// — and the build stays hermetic: the only dependency is the vendored
// golang.org/x/tools analysis framework.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	poplint "repro/internal/analysis"
)

func main() {
	// go vet invokes the tool first as `poplint -V=full` (version probe),
	// then as `poplint <flags> $WORK/vet.cfg` per package. Everything else
	// is a human invocation: re-exec through go vet so the toolchain does
	// the loading.
	if unitcheckerInvocation(os.Args[1:]) {
		unitchecker.Main(poplint.All()...) // does not return
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "poplint:", err)
		os.Exit(1)
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	if len(os.Args) == 1 {
		args = append(args, "./...")
	}
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "poplint:", err)
		os.Exit(1)
	}
}

// unitcheckerInvocation reports whether the argument list is one of the
// shapes the go vet driver uses: a flag probe (-V=full, -flags, per-analyzer
// enables) or a *.cfg unit file. Human invocations pass package patterns,
// never flags.
func unitcheckerInvocation(args []string) bool {
	if len(args) > 0 && strings.HasPrefix(args[0], "-") {
		return true
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
