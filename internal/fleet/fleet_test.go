package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/serve"
	"repro/internal/stencil"
)

// fleetRHS builds deterministic, distinct right-hand sides on the test grid.
func fleetRHS(t *testing.T, n int) [][]float64 {
	t.Helper()
	g, err := grid.ByName(grid.PresetTest)
	if err != nil {
		t.Fatal(err)
	}
	bs := make([][]float64, n)
	for i := range bs {
		b := make([]float64, g.N())
		for k, ocean := range g.Mask {
			if ocean {
				x := uint64(k)*2654435761 + uint64(i+1)*0x9E3779B9
				x ^= x >> 13
				b[k] = float64(x%1000)/500 - 1
			}
		}
		bs[i] = b
	}
	return bs
}

// directSolve runs one solve straight on a core.Session — no serve layer,
// no fleet — the golden the fleet must match bitwise.
func directSolve(t *testing.T, method core.Method, precond core.PrecondType, tol float64, b []float64) (core.Result, []float64) {
	t.Helper()
	g, err := grid.ByName(grid.PresetTest)
	if err != nil {
		t.Fatal(err)
	}
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(1920))
	d, err := decomp.New(g, g.Nx, g.Ny, decomp.DefaultHalo)
	if err != nil {
		t.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(g, op, d, w, core.Options{Tol: tol, Precond: precond})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Setup(); err != nil {
		t.Fatal(err)
	}
	if method == core.MethodPCSI {
		if _, _, _, err := sess.EstimateEigenvalues(nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, x, err := sess.SolveContext(context.Background(), method, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	xc := make([]float64, len(x))
	copy(xc, x)
	return res, xc
}

func closeFleet(t *testing.T, f *Fleet) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestFleetBitwiseIdenticalToDirectCore is the golden gate: a fault-free
// solve through the full fleet stack (router → ring → worker → pooled
// session) must produce the same solution bits, iteration count and
// residual as a bare core.Session solving the same request — and a cache
// hit must replay exactly those bits again.
func TestFleetBitwiseIdenticalToDirectCore(t *testing.T) {
	const tol = 1e-6
	rhs := fleetRHS(t, 2)
	goldRes, goldX := directSolve(t, core.MethodPCSI, core.PrecondEVP, tol, rhs[0])

	f, err := New(Options{Workers: 2, Worker: serve.Options{Solver: core.Options{Tol: tol}}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeFleet(t, f)

	req := Request{Request: serve.Request{
		Grid: grid.PresetTest, Method: core.MethodPCSI, Precond: core.PrecondEVP, B: rhs[0],
	}}
	miss, err := f.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Cache != "miss" {
		t.Fatalf("first solve Cache = %q, want miss", miss.Cache)
	}
	if miss.Shard < 0 || miss.Shard > 1 {
		t.Fatalf("miss shard = %d", miss.Shard)
	}
	if !bitsEqual(miss.X, goldX) {
		t.Fatal("fleet miss solution differs bitwise from direct core solve")
	}
	if miss.Result.Iterations != goldRes.Iterations || miss.Result.RelResidual != goldRes.RelResidual {
		t.Fatalf("fleet miss result (%d iters, %g) != direct (%d iters, %g)",
			miss.Result.Iterations, miss.Result.RelResidual, goldRes.Iterations, goldRes.RelResidual)
	}

	hit, err := f.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cache != "hit" {
		t.Fatalf("second solve Cache = %q, want hit", hit.Cache)
	}
	if hit.Shard != -1 {
		t.Fatalf("cache hit shard = %d, want -1 (no worker consulted)", hit.Shard)
	}
	if !bitsEqual(hit.X, goldX) {
		t.Fatal("cache hit solution differs bitwise from direct core solve")
	}
	// The replayed Result is the stored one verbatim (same iterations,
	// residual, virtual-time stats — everything).
	if !reflect.DeepEqual(hit.Result, miss.Result) {
		t.Fatal("cache hit Result differs from the solve that populated it")
	}
	// The hit must not alias cache memory: mutating the caller's copy must
	// not poison later replays.
	hit.X[0] = math.Inf(1)
	hit2, err := f.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(hit2.X, goldX) {
		t.Fatal("cache replay corrupted by a caller mutating a previous hit")
	}

	// A different RHS is a different content hash — never conflated.
	other, err := f.Solve(context.Background(), Request{Request: serve.Request{
		Grid: grid.PresetTest, Method: core.MethodPCSI, Precond: core.PrecondEVP, B: rhs[1],
	}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cache != "miss" {
		t.Fatalf("distinct RHS Cache = %q, want miss", other.Cache)
	}
	if bitsEqual(other.X, goldX) {
		t.Fatal("distinct RHS returned the cached solution")
	}
}

// TestFleetNoCacheBypassesLookup checks NoCache skips the cache read but
// still populates the cache for later readers.
func TestFleetNoCacheBypassesLookup(t *testing.T) {
	rhs := fleetRHS(t, 1)
	f, err := New(Options{Workers: 1, Worker: serve.Options{Solver: core.Options{Tol: 1e-6}}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeFleet(t, f)

	req := Request{Request: serve.Request{Grid: grid.PresetTest, Method: core.MethodChronGear, B: rhs[0]}}
	req.NoCache = true
	for i := 0; i < 2; i++ {
		resp, err := f.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cache != "miss" {
			t.Fatalf("NoCache solve %d Cache = %q, want miss", i, resp.Cache)
		}
	}
	req.NoCache = false
	resp, err := f.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" {
		t.Fatalf("post-NoCache solve Cache = %q, want hit (NoCache still populates)", resp.Cache)
	}
}

// TestSingleflightCollapsesConcurrentIdentical drives the flight group
// directly with a leader that blocks until every follower has arrived —
// deterministic collapse, meaningful under -race.
func TestSingleflightCollapsesConcurrentIdentical(t *testing.T) {
	g := newFlightGroup()
	key := api.HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, []float64{1}, nil)

	const followers = 8
	leaderIn := make(chan struct{})  // closed when all followers are waiting
	var started, done sync.WaitGroup // started: followers launched
	calls := 0                       // leader executions (no atomics: proves the collapse)
	results := make([]dispatched, followers+1)
	errs := make([]error, followers+1)
	sharedFlags := make([]bool, followers+1)

	started.Add(1)
	done.Add(1)
	go func() {
		defer done.Done()
		results[0], errs[0], sharedFlags[0] = g.do(context.Background(), key, func() (dispatched, error) {
			started.Done() // leader is inside fn; followers may now pile on
			<-leaderIn
			calls++
			return dispatched{resp: serve.Response{X: []float64{42}}, shard: 3}, nil
		})
	}()
	started.Wait()

	var waiting sync.WaitGroup
	for i := 1; i <= followers; i++ {
		done.Add(1)
		waiting.Add(1)
		go func(i int) {
			defer done.Done()
			waiting.Done()
			results[i], errs[i], sharedFlags[i] = g.do(context.Background(), key, func() (dispatched, error) {
				t.Error("follower executed fn: singleflight failed to collapse")
				return dispatched{}, nil
			})
		}(i)
	}
	waiting.Wait()
	// Followers are registered or about to be; give their g.do entries a
	// moment, then release the leader. A follower that misses the in-flight
	// window would run fn and fail the test above.
	time.Sleep(10 * time.Millisecond)
	close(leaderIn)
	done.Wait()

	if calls != 1 {
		t.Fatalf("leader fn ran %d times, want 1", calls)
	}
	if sharedFlags[0] {
		t.Fatal("leader reported shared=true")
	}
	for i := 1; i <= followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if !sharedFlags[i] {
			t.Fatalf("follower %d not marked shared", i)
		}
		if results[i].shard != 3 || len(results[i].resp.X) != 1 || results[i].resp.X[0] != 42 {
			t.Fatalf("follower %d got %+v", i, results[i])
		}
	}

	// The completed call must be gone: a late caller becomes a fresh leader.
	_, _, shared := g.do(context.Background(), key, func() (dispatched, error) {
		return dispatched{}, nil
	})
	if shared {
		t.Fatal("completed call still registered as in-flight")
	}
}

// TestSingleflightFollowerContextAbandons checks a follower whose context
// ends leaves the wait without cancelling the leader.
func TestSingleflightFollowerContextAbandons(t *testing.T) {
	g := newFlightGroup()
	key := api.HashSolve("test", core.MethodPCG, core.PrecondDiagonal, core.Float64, 0, 1e-13, []float64{2}, nil)
	block := make(chan struct{})
	release := make(chan struct{})
	go func() {
		g.do(context.Background(), key, func() (dispatched, error) {
			close(block)
			<-release
			return dispatched{}, nil
		})
	}()
	<-block
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.do(ctx, key, func() (dispatched, error) {
		t.Error("cancelled follower executed fn")
		return dispatched{}, nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower: shared=%v err=%v", shared, err)
	}
	close(release)
}

// TestFleetConcurrentIdenticalRequests is the end-to-end -race exercise:
// many goroutines fire the same request; every response must be bitwise
// identical and the router books each request as exactly one of
// hit/miss/dedup.
func TestFleetConcurrentIdenticalRequests(t *testing.T) {
	rhs := fleetRHS(t, 1)
	f, err := New(Options{Workers: 2, Worker: serve.Options{Solver: core.Options{Tol: 1e-6}}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeFleet(t, f)

	const n = 16
	resps := make([]Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = f.Solve(context.Background(), Request{Request: serve.Request{
				Grid: grid.PresetTest, Method: core.MethodPCSI, Precond: core.PrecondEVP, B: rhs[0],
			}})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bitsEqual(resps[i].X, resps[0].X) {
			t.Fatalf("request %d solution differs bitwise", i)
		}
		switch resps[i].Cache {
		case "hit", "miss", "dedup":
		default:
			t.Fatalf("request %d Cache = %q", i, resps[i].Cache)
		}
	}
	st := f.Stats(context.Background())
	booked := st.Fleet.CacheHits + st.Fleet.CacheMisses + st.Fleet.Deduped
	if booked != n {
		t.Fatalf("hits+misses+deduped = %d, want %d", booked, n)
	}
	if st.Fleet.CacheMisses < 1 {
		t.Fatal("no cache miss booked — someone must have solved it")
	}
}

// TestCacheTTLDeterministic drives expiry with an injected clock.
func TestCacheTTLDeterministic(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := newResultCache(8, time.Minute, clock)
	key := api.HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, []float64{1}, nil)
	c.put(key, core.Result{Iterations: 7}, []float64{1, 2})

	if _, _, ok := c.get(key); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(time.Minute - time.Nanosecond)
	if _, _, ok := c.get(key); !ok {
		t.Fatal("entry expired before TTL")
	}
	now = now.Add(time.Nanosecond)
	if _, _, ok := c.get(key); ok {
		t.Fatal("entry survived past TTL")
	}
	st := c.stats()
	if st.expirations != 1 || st.entries != 0 {
		t.Fatalf("stats after expiry: %+v", st)
	}

	// Re-putting restarts the TTL clock.
	c.put(key, core.Result{Iterations: 7}, []float64{1, 2})
	now = now.Add(30 * time.Second)
	c.put(key, core.Result{Iterations: 7}, []float64{1, 2})
	now = now.Add(45 * time.Second) // 75s after first put, 45s after refresh
	if _, _, ok := c.get(key); !ok {
		t.Fatal("refreshed entry expired on the original clock")
	}
}

// TestCacheLRUDeterministic checks eviction order is exactly
// least-recently-used, with gets refreshing recency.
func TestCacheLRUDeterministic(t *testing.T) {
	c := newResultCache(3, 0, func() time.Time { return time.Unix(0, 0) })
	keys := make([]api.CacheKey, 4)
	for i := range keys {
		keys[i] = api.HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, []float64{float64(i)}, nil)
		if i < 3 {
			c.put(keys[i], core.Result{Iterations: i}, []float64{float64(i)})
		}
	}
	// Touch key0 so key1 is now the LRU tail.
	if _, _, ok := c.get(keys[0]); !ok {
		t.Fatal("key0 missed")
	}
	c.put(keys[3], core.Result{Iterations: 3}, []float64{3})
	if _, _, ok := c.get(keys[1]); ok {
		t.Fatal("LRU evicted the wrong entry: key1 should be gone")
	}
	for _, i := range []int{0, 2, 3} {
		if res, x, ok := c.get(keys[i]); !ok || res.Iterations != i || x[0] != float64(i) {
			t.Fatalf("key%d: ok=%v res=%+v x=%v", i, ok, res, x)
		}
	}
	if st := c.stats(); st.evictions != 1 || st.entries != 3 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

// TestRingProperties checks the consistent-hash ring's contract: total
// coverage, deterministic lookups, successor lists that are permutations
// starting at the home shard, and bounded remapping when the fleet grows.
func TestRingProperties(t *testing.T) {
	r4 := newRing(4)
	keys := make([]string, 0, 400)
	for g := 0; g < 20; g++ {
		for m := 0; m < 20; m++ {
			keys = append(keys, fmt.Sprintf("grid%d/method%d/evp", g, m))
		}
	}
	counts := make([]int, 4)
	for _, k := range keys {
		w := r4.lookup(k)
		counts[w]++
		if w2 := r4.lookup(k); w2 != w {
			t.Fatalf("lookup(%q) unstable: %d then %d", k, w, w2)
		}
		succ := r4.successors(k)
		if len(succ) != 4 || succ[0] != w {
			t.Fatalf("successors(%q) = %v, home %d", k, succ, w)
		}
		seen := make(map[int]bool)
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("successors(%q) = %v repeats a shard", k, succ)
			}
			seen[s] = true
		}
	}
	for w, n := range counts {
		if n == 0 {
			t.Fatalf("worker %d owns no keys (counts %v)", w, counts)
		}
	}

	// Growing 4 → 5 must remap roughly 1/5 of keys, not reshuffle the world.
	r5 := newRing(5)
	moved := 0
	for _, k := range keys {
		if r5.lookup(k) != r4.lookup(k) {
			moved++
		}
	}
	if frac := float64(moved) / float64(len(keys)); frac > 0.45 {
		t.Fatalf("growing the ring remapped %.0f%% of keys — not consistent", frac*100)
	}
}

// errWorker is a scripted Worker for failover tests.
type errWorker struct {
	err    error
	solves int
}

func (w *errWorker) Solve(ctx context.Context, req serve.Request) (serve.Response, error) {
	_ = ctx
	w.solves++
	if w.err != nil {
		return serve.Response{}, w.err
	}
	return serve.Response{Result: core.Result{Converged: true, Solver: "scripted"}, X: []float64{1}}, nil
}

func (w *errWorker) Counters(ctx context.Context) (api.ServiceCounters, []string, error) {
	_ = ctx
	return api.ServiceCounters{Solves: int64(w.solves)}, nil, nil
}

func (w *errWorker) Addr() string { return "scripted" }

func (w *errWorker) Close(ctx context.Context) error {
	_ = ctx
	return nil
}

// TestFleetFailoverOnShed checks a shed home shard (overload, open
// circuit) fails over to the ring's next shard, while hard errors do not.
func TestFleetFailoverOnShed(t *testing.T) {
	req := Request{Request: serve.Request{Grid: grid.PresetTest, Method: core.MethodPCSI, Precond: core.PrecondEVP, B: []float64{1}}}

	for _, shedErr := range []error{serve.ErrOverloaded, serve.ErrCircuitOpen} {
		f, err := New(Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		home, err := f.HomeShard(req.Request)
		if err != nil {
			t.Fatal(err)
		}
		workers := []*errWorker{{}, {}}
		workers[home].err = fmt.Errorf("scripted shed: %w", shedErr)
		f.workers = []Worker{workers[0], workers[1]}

		resp, err := f.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("%v: failover did not rescue: %v", shedErr, err)
		}
		if resp.Shard != 1-home {
			t.Fatalf("%v: answered by shard %d, want failover shard %d", shedErr, resp.Shard, 1-home)
		}
		if workers[home].solves != 1 || workers[1-home].solves != 1 {
			t.Fatalf("%v: solves = %d/%d, want home tried then failover", shedErr, workers[home].solves, workers[1-home].solves)
		}
		st := f.Stats(context.Background())
		if st.Fleet.Failovers != 1 {
			t.Fatalf("%v: failovers = %d, want 1", shedErr, st.Fleet.Failovers)
		}
	}

	// Hard errors (bad spec) propagate without failover.
	f, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	home, err := f.HomeShard(req.Request)
	if err != nil {
		t.Fatal(err)
	}
	workers := []*errWorker{{}, {}}
	workers[home].err = fmt.Errorf("scripted: %w", core.ErrBadSpec)
	f.workers = []Worker{workers[0], workers[1]}
	if _, err := f.Solve(context.Background(), req); !errors.Is(err, core.ErrBadSpec) {
		t.Fatalf("hard error: got %v, want ErrBadSpec", err)
	}
	if workers[1-home].solves != 0 {
		t.Fatal("hard error failed over; it must propagate")
	}

	// All shards shedding is a terminal overload.
	f2, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	shed := fmt.Errorf("scripted: %w", serve.ErrOverloaded)
	f2.workers = []Worker{&errWorker{err: shed}, &errWorker{err: shed}}
	if _, err := f2.Solve(context.Background(), req); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("all-shed: got %v, want ErrOverloaded", err)
	}
}

// TestFleetStatsAggregation checks /v1/stats math: Totals is the field-wise
// sum of worker counters and the router books every request.
func TestFleetStatsAggregation(t *testing.T) {
	rhs := fleetRHS(t, 3)
	f, err := New(Options{Workers: 2, Worker: serve.Options{Solver: core.Options{Tol: 1e-6}}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeFleet(t, f)

	for i, b := range rhs {
		for j := 0; j <= i; j++ { // 1+2+3 requests, with repeats hitting the cache
			if _, err := f.Solve(context.Background(), Request{Request: serve.Request{
				Grid: grid.PresetTest, Method: core.MethodPCSI, Precond: core.PrecondEVP, B: b,
			}}); err != nil {
				t.Fatal(err)
			}
		}
	}

	st := f.Stats(context.Background())
	if st.Fleet == nil {
		t.Fatal("fleet stats missing Fleet block")
	}
	if st.Fleet.Requests != 6 {
		t.Fatalf("router requests = %d, want 6", st.Fleet.Requests)
	}
	if st.Fleet.CacheMisses != 3 || st.Fleet.CacheHits != 3 {
		t.Fatalf("hits/misses = %d/%d, want 3/3", st.Fleet.CacheHits, st.Fleet.CacheMisses)
	}
	if st.Fleet.CacheEntries != 3 {
		t.Fatalf("cache entries = %d, want 3", st.Fleet.CacheEntries)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("worker rows = %d, want 2", len(st.Workers))
	}
	var sum api.ServiceCounters
	for _, w := range st.Workers {
		if !w.Healthy {
			t.Fatalf("worker %d unhealthy", w.Worker)
		}
		sum.Add(w.Counters)
	}
	if sum != st.Totals {
		t.Fatalf("Totals %+v != summed workers %+v", st.Totals, sum)
	}
	if sum.Solves != 3 {
		t.Fatalf("worker solves = %d, want 3 (cache served the rest)", sum.Solves)
	}
	if len(st.Grids) != 1 || st.Grids[0] != grid.PresetTest {
		t.Fatalf("grids = %v", st.Grids)
	}
}
