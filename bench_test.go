package pop

// Benchmark harness. Two tiers:
//
//   - BenchmarkFig*/BenchmarkTab* regenerate each of the paper's tables and
//     figures end-to-end (solvers, virtual ranks, machine pricing) at
//     bench-friendly grid sizes, so `go test -bench=.` exercises every
//     experiment pipeline in minutes. The full-scale numbers in
//     EXPERIMENTS.md come from `popbench -exp all` on the real 320×384 and
//     3600×2400 grids.
//
//   - Benchmark{Matvec,EVP,...} measure the computational kernels the
//     paper's cost model prices (stencil application, preconditioner
//     application, halo exchange, tree reduction).

import (
	"fmt"
	"io"
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/evp"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

// Bench-size grids are generated once: grid generation (bathymetry, metric
// terms) is setup, not pipeline, and must not ride inside b.N.
var benchGrids = struct {
	once       sync.Once
	one, tenth *grid.Grid
}{}

// benchConfig builds an experiment context on bench-size grids (same
// pipelines, smaller axes). A fresh Config per call keeps the experiment
// sweep caches honest; the pre-generated grids are shared.
func benchConfig() *experiments.Config {
	benchGrids.once.Do(func() {
		one := grid.TestSpec()
		one.Nx, one.Ny = 64, 48
		one.Name = "bench-1deg"
		benchGrids.one = grid.Generate(one)
		tenth := grid.TestSpec()
		tenth.Nx, tenth.Ny = 90, 60
		tenth.Name = "bench-0.1deg"
		benchGrids.tenth = grid.Generate(tenth)
	})
	c := experiments.NewConfig(perfmodel.Yellowstone(), true, nil)
	c.OverrideGrid("1deg", benchGrids.one)
	c.OverrideGrid("0.1deg", benchGrids.tenth)
	return c
}

func benchExperiment(b *testing.B, id string) {
	benchConfig() // generate grids outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := benchConfig()
		if err := experiments.Run(id, c, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01PercentChronGear(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig02ComponentTimes(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig03LanczosSteps(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig06Iterations(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig07OneDegScaling(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkTab01TotalImprovement(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkFig08TenthDegScaling(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig09PercentPCSI(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10ReduceAndHalo(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11Edison(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkEVPSetupCost(b *testing.B)          { benchExperiment(b, "evpsetup") }

func BenchmarkFig12RMSETolerances(b *testing.B) {
	if testing.Short() {
		b.Skip("ensemble bench skipped in -short")
	}
	benchExperiment(b, "fig12")
}

func BenchmarkFig13RMSZEnsemble(b *testing.B) {
	if testing.Short() {
		b.Skip("ensemble bench skipped in -short")
	}
	benchExperiment(b, "fig13")
}

// ---- kernel benchmarks ----

func benchGridOp(b *testing.B) (*Grid, *Operator) {
	b.Helper()
	g, err := NewGrid(GridTest)
	if err != nil {
		b.Fatal(err)
	}
	return g, AssembleOperator(g, 1920)
}

func BenchmarkStencilApply(b *testing.B) {
	g, op := benchGridOp(b)
	x := make([]float64, g.N())
	y := make([]float64, g.N())
	for k := range x {
		x[k] = float64(k % 7)
	}
	b.SetBytes(int64(g.N() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(y, x)
	}
}

// BenchmarkStencilApply64Local / BenchmarkStencilApply32Local compare the
// rank-local nine-point kernel across precisions on one padded block: the
// flop count is identical, the float32 variant moves half the bytes per
// point. Their ratio is the kernel-level mixed-precision speedup quoted in
// EXPERIMENTS.md and recorded by bench.sh.
func BenchmarkStencilApply64Local(b *testing.B) {
	loc, _ := benchLocal(b)
	n := loc.NxP * loc.NyP
	x := make([]float64, n)
	y := make([]float64, n)
	for k := range x {
		x[k] = float64(k % 7)
	}
	b.SetBytes(int64(n * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc.Apply(y, x)
	}
}

func BenchmarkStencilApply32Local(b *testing.B) {
	_, loc32 := benchLocal(b)
	n := loc32.NxP * loc32.NyP
	x := make([]float32, n)
	y := make([]float32, n)
	for k := range x {
		x[k] = float32(k % 7)
	}
	b.SetBytes(int64(n * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc32.Apply(y, x)
	}
}

func benchLocal(b *testing.B) (*stencil.Local, *stencil.Local32) {
	b.Helper()
	g, op := benchGridOp(b)
	d, err := decomp.New(g, g.Nx, g.Ny, decomp.DefaultHalo)
	if err != nil {
		b.Fatal(err)
	}
	blk := d.Blocks[d.OceanBlocks[0]]
	loc := d.LocalOperator(op, &blk)
	return loc, stencil.NewLocal32(loc)
}

// preconditioner application cost: the paper's O(22n²) EVP vs O(n⁴)-setup
// dense LU comparison on one 8×8 block.
func BenchmarkEVPBlockSolve(b *testing.B)           { benchBlockPrecond(b, false) }
func BenchmarkEVPBlockSolveSimplified(b *testing.B) { benchBlockPrecond(b, true) }

func benchBlockPrecond(b *testing.B, simplified bool) {
	g := grid.NewFlatBasin(32, 32, 3000, 1e4, 1.1e4)
	win := stencil.AssembleWindowFilled(g, stencil.PhiFromTimeStep(600), 8, 8, 8, 8, 50)
	sol, err := evp.NewBlockSolver(win, simplified)
	if err != nil {
		b.Fatal(err)
	}
	n := win.NxP * win.NyP
	psi := make([]float64, n)
	x := make([]float64, n)
	for k := range psi {
		psi[k] = float64(k % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol.Solve(x, psi)
	}
}

func BenchmarkHaloExchange(b *testing.B) {
	g := grid.NewFlatBasin(64, 48, 1000, 1e4, 1e4)
	d, err := decomp.New(g, 16, 12, decomp.DefaultHalo)
	if err != nil {
		b.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Fields persist across exchanges, as in the solver steady state.
	fields := make([][][]float64, w.NRank)
	w.Run(func(r *comm.Rank) {
		fs := make([][]float64, len(r.Blocks))
		for bi, blk := range r.Blocks {
			nxp, nyp := d.PaddedDims(blk)
			fs[bi] = make([]float64, nxp*nyp)
		}
		fields[r.ID] = fs
		r.Exchange(fs) // warm the pooled strip buffers
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(r *comm.Rank) {
			r.Exchange(fields[r.ID])
		})
	}
}

func BenchmarkAllReduce64Ranks(b *testing.B) {
	g := grid.NewFlatBasin(64, 64, 1000, 1e4, 1e4)
	d, err := decomp.New(g, 8, 8, decomp.DefaultHalo)
	if err != nil {
		b.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(r *comm.Rank) {
			payload := [2]float64{1, 2}
			r.AllReduce(payload[:])
		})
	}
}

// BenchmarkReduce measures the steady-state reduction path alone: one Run
// amortized over many binomial-tree AllReduce calls with a hoisted payload,
// mirroring how the solver iteration loop performs reductions.
func BenchmarkReduce(b *testing.B) {
	g := grid.NewFlatBasin(64, 64, 1000, 1e4, 1e4)
	d, err := decomp.New(g, 8, 8, decomp.DefaultHalo)
	if err != nil {
		b.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, nil)
	if err != nil {
		b.Fatal(err)
	}
	const reductionsPerRun = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += reductionsPerRun {
		w.Run(func(r *comm.Rank) {
			payload := [3]float64{1, 2, 3}
			for j := 0; j < reductionsPerRun; j++ {
				payload[0] = float64(j)
				r.AllReduce(payload[:])
			}
		})
	}
}

func benchSolve(b *testing.B, method, precond string) {
	g, op := benchGridOp(b)
	xTrue := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			xTrue[k] = math.Sin(float64(k))
		}
	}
	rhs := make([]float64, g.N())
	op.Apply(rhs, xTrue)
	for k, ocean := range g.Mask {
		if !ocean {
			rhs[k] = 0
		}
	}
	m, err := ParseMethod(method)
	if err != nil {
		b.Fatal(err)
	}
	pc, err := ParsePrecond(precond)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(g, SolverSpec{Method: m, Precond: pc, Cores: 12})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := s.Solve(rhs, nil); err != nil { // setup outside timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(rhs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveChronGearDiag(b *testing.B) { benchSolve(b, "chrongear", "diagonal") }
func BenchmarkSolveChronGearEVP(b *testing.B)  { benchSolve(b, "chrongear", "evp") }
func BenchmarkSolvePipeCGDiag(b *testing.B)    { benchSolve(b, "pipecg", "diagonal") }
func BenchmarkSolvePCSIDiag(b *testing.B)      { benchSolve(b, "pcsi", "diagonal") }
func BenchmarkSolvePCSIEVP(b *testing.B)       { benchSolve(b, "pcsi", "evp") }

// benchSolveSteadyState measures the steady-state iteration cost in
// isolation: a warm session runs fixed-length solves (tolerance far below
// machine precision, so exactly MaxIters iterations execute every time) and
// the per-op numbers divide down to per-iteration cost. With the workspace
// arenas and pooled comm buffers, allocs/op stays flat as MaxIters grows.
func benchSolveSteadyState(b *testing.B, method, precond string) {
	g, _ := benchGridOp(b)
	rhs := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			rhs[k] = math.Sin(float64(k) / 11)
		}
	}
	m, err := ParseMethod(method)
	if err != nil {
		b.Fatal(err)
	}
	pc, err := ParsePrecond(precond)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(g, SolverSpec{Method: m, Precond: pc, Cores: 12,
		Options: SolverOptions{Tol: 1e-300, MaxIters: 60, CheckEvery: 10}})
	if err != nil {
		b.Fatal(err)
	}
	x0 := make([]float64, g.N())
	if _, _, err := s.Solve(rhs, x0); err != nil { // warm arenas outside timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(rhs, x0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSteadyStateChronGearDiag(b *testing.B) {
	benchSolveSteadyState(b, "chrongear", "diagonal")
}
func BenchmarkSolveSteadyStateChronGearEVP(b *testing.B) {
	benchSolveSteadyState(b, "chrongear", "evp")
}
func BenchmarkSolveSteadyStatePCSIDiag(b *testing.B) {
	benchSolveSteadyState(b, "pcsi", "diagonal")
}
func BenchmarkSolveSteadyStatePCSIEVP(b *testing.B) {
	benchSolveSteadyState(b, "pcsi", "evp")
}

// BenchmarkSolveScaling is the multi-core scaling matrix: fixed-length
// steady-state solves (60 iterations, tolerance below machine precision)
// across worker-shard counts × precisions. On a multi-core machine the
// fp64 curve shows real-core speedup (the ≥2× at 4 workers gate in
// bench.sh, applied only when NumCPU allows); on any machine the fp32
// column shows the mixed-precision kernel cost at equal iteration count.
// Sub-benchmark names are parsed by bench.sh into the BENCH_kernels.json
// scaling section — keep the fp64/fp32 and threads=N spelling stable.
func BenchmarkSolveScaling(b *testing.B) {
	g, _ := benchGridOp(b)
	rhs := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			rhs[k] = math.Sin(float64(k) / 11)
		}
	}
	x0 := make([]float64, g.N())
	for _, prec := range []Precision{Float64, Float32} {
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("fp%d/threads=%d", map[Precision]int{Float64: 64, Float32: 32}[prec], threads),
				func(b *testing.B) {
					s, err := NewSolver(g, SolverSpec{
						Method: MethodChronGear, Precond: PrecondEVP,
						Cores: 16, Threads: threads,
						Options: SolverOptions{Tol: 1e-300, MaxIters: 60,
							CheckEvery: 10, Precision: prec}})
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := s.Solve(rhs, x0); err != nil { // warm arenas
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, _, err := s.Solve(rhs, x0); err != nil {
							b.Fatal(err)
						}
					}
				})
		}
	}
}

func BenchmarkModelStep(b *testing.B) {
	g, err := NewGrid(GridTest)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewModel(ModelConfig{Grid: g, Solver: model.SolverChronGear,
		SolverOpts: core.Options{Precond: core.PrecondDiagonal}})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Run(3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: EVP sub-block size vs iterations and per-solve virtual cost —
// the design-choice study DESIGN.md calls out (the paper fixes ≤12×12).
func BenchmarkAblationEVPBlockSize(b *testing.B) {
	g, op := benchGridOp(b)
	rhs := make([]float64, g.N())
	xTrue := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			xTrue[k] = math.Cos(float64(k) / 17)
		}
	}
	op.Apply(rhs, xTrue)
	for k, ocean := range g.Mask {
		if !ocean {
			rhs[k] = 0
		}
	}
	for _, size := range []int{4, 8, 12} {
		b.Run(sizeName(size), func(b *testing.B) {
			s, err := NewSolver(g, SolverSpec{Method: MethodPCSI, Precond: PrecondEVP, Cores: 12,
				MachineName: "ideal", Options: SolverOptions{EVPBlockSize: size}})
			if err != nil {
				b.Fatal(err)
			}
			var iters int
			var virtual float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _, err := s.Solve(rhs, nil)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
				virtual = res.Stats.MaxClock
			}
			b.ReportMetric(float64(iters), "iters")
			b.ReportMetric(virtual*1e3, "virtual-ms")
		})
	}
}

func sizeName(n int) string {
	return string(rune('0'+n/10)) + string(rune('0'+n%10)) + "x" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
