package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMSEKnown(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3, 4}
	inc := []bool{true, true, true, true}
	if got := RMSE(a, b, inc); got != 0 {
		t.Fatalf("identical fields RMSE %v", got)
	}
	b[0] = 3 // diff 2 at one of four points → sqrt(4/4)=1
	if got := RMSE(a, b, inc); got != 1 {
		t.Fatalf("RMSE %v, want 1", got)
	}
	inc[0] = false // excluded → 0
	if got := RMSE(a, b, inc); got != 0 {
		t.Fatalf("masked RMSE %v, want 0", got)
	}
}

func TestEnsembleMeanStd(t *testing.T) {
	e := NewEnsemble(2, nil)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		e.Add([]float64{v, 10 * v})
	}
	if e.Size() != 5 {
		t.Fatalf("size %d", e.Size())
	}
	if m := e.Mean(); math.Abs(m[0]-3) > 1e-12 || math.Abs(m[1]-30) > 1e-12 {
		t.Fatalf("mean %v", m)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if s := e.Std(); math.Abs(s[0]-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v", s)
	}
}

func TestRMSZOfMeanIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEnsemble(50, nil)
	for m := 0; m < 10; m++ {
		x := make([]float64, 50)
		for k := range x {
			x[k] = rng.NormFloat64()
		}
		e.Add(x)
	}
	z, err := e.RMSZ(e.Mean())
	if err != nil {
		t.Fatal(err)
	}
	if z != 0 {
		t.Fatalf("RMSZ of ensemble mean %v, want 0", z)
	}
}

func TestRMSZDetectsOutlier(t *testing.T) {
	// Members ~ N(0,1); a case at 5σ should score ≈5, a case drawn from
	// the same distribution ≈1. This is the §6 separation property.
	rng := rand.New(rand.NewSource(4))
	n := 2000
	e := NewEnsemble(n, nil)
	for m := 0; m < 40; m++ {
		x := make([]float64, n)
		for k := range x {
			x[k] = rng.NormFloat64()
		}
		e.Add(x)
	}
	normal := make([]float64, n)
	outlier := make([]float64, n)
	for k := range normal {
		normal[k] = rng.NormFloat64()
		outlier[k] = 5 * rng.NormFloat64()
	}
	zn, err := e.RMSZ(normal)
	if err != nil {
		t.Fatal(err)
	}
	zo, err := e.RMSZ(outlier)
	if err != nil {
		t.Fatal(err)
	}
	if zn < 0.8 || zn > 1.3 {
		t.Fatalf("in-distribution RMSZ %v, want ≈1", zn)
	}
	if zo < 4 || zo > 6.5 {
		t.Fatalf("outlier RMSZ %v, want ≈5", zo)
	}
}

func TestRMSZErrors(t *testing.T) {
	e := NewEnsemble(3, nil)
	e.Add([]float64{1, 2, 3})
	if _, err := e.RMSZ([]float64{1, 2, 3}); err == nil {
		t.Fatal("RMSZ with one member should error")
	}
	e.Add([]float64{1, 2, 3}) // identical member: zero spread everywhere
	if _, err := e.RMSZ([]float64{1, 2, 3}); err == nil {
		t.Fatal("RMSZ with zero spread should error")
	}
}

func TestRMSZMasked(t *testing.T) {
	mask := []bool{true, false}
	e := NewEnsemble(2, mask)
	e.Add([]float64{0, 100})
	e.Add([]float64{2, -100})
	// Masked point 1 is ignored; point 0 has mean 1, std sqrt(2).
	z, err := e.RMSZ([]float64{1 + math.Sqrt2, 12345})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-1) > 1e-12 {
		t.Fatalf("masked RMSZ %v, want 1", z)
	}
}

func TestMemberEnvelopeAroundOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	members := make([][]float64, 40)
	for m := range members {
		x := make([]float64, 1000)
		for k := range x {
			x[k] = rng.NormFloat64()
		}
		members[m] = x
	}
	lo, hi, err := MemberEnvelope(members, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0.8 || hi > 1.2 || lo >= hi {
		t.Fatalf("member envelope [%v, %v], want tight around 1", lo, hi)
	}
	if _, _, err := MemberEnvelope(members[:1], nil); err == nil {
		t.Fatal("envelope with one member should error")
	}
}

// Property: Welford mean matches the naive mean for random member sets.
func TestQuickWelfordMean(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nm := 2 + rng.Intn(10)
		np := 1 + rng.Intn(20)
		e := NewEnsemble(np, nil)
		sums := make([]float64, np)
		for m := 0; m < nm; m++ {
			x := make([]float64, np)
			for k := range x {
				x[k] = rng.NormFloat64() * 100
				sums[k] += x[k]
			}
			e.Add(x)
		}
		for k, s := range sums {
			if math.Abs(e.Mean()[k]-s/float64(nm)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
