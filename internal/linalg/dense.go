// Package linalg provides the small dense and tridiagonal linear algebra
// kernels used by the EVP preconditioner (influence-matrix inversion) and
// the Lanczos eigenvalue estimator (tridiagonal extreme eigenvalues).
//
// Everything here operates on small matrices (tens to a few hundred rows);
// the routines favour clarity and numerical robustness over blocking or
// vectorization tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a dense row-major n×m matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j]
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (a *Dense) At(i, j int) float64 { return a.Data[i*a.Cols+j] }

// Set assigns element (i,j).
func (a *Dense) Set(i, j int, v float64) { a.Data[i*a.Cols+j] = v }

// Clone returns a deep copy of a.
func (a *Dense) Clone() *Dense {
	b := NewDense(a.Rows, a.Cols)
	copy(b.Data, a.Data)
	return b
}

// MulVec computes y = A·x. len(x) must equal Cols and len(y) Rows.
func (a *Dense) MulVec(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("linalg: MulVec dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, rv := range row {
			s += rv * x[j]
		}
		y[i] = s
	}
}

// Mul computes C = A·B and returns it.
func (a *Dense) Mul(b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// ErrSingular reports that LU factorization encountered an (effectively)
// singular pivot.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above)
	piv  []int     // pivot row chosen at each elimination step
	sign int       // parity of the permutation (+1/−1), kept for Det
}

// Factor computes the LU factorization of the square matrix a with partial
// pivoting. a is not modified. It returns ErrSingular when a pivot is smaller
// than a tiny multiple of the matrix scale.
func Factor(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)

	// Matrix scale for the singularity test.
	var scale float64
	for _, v := range f.lu {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	tiny := scale * 1e-300
	if tiny == 0 {
		tiny = math.SmallestNonzeroFloat64
	}

	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p := k
		best := math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if av := math.Abs(f.lu[i*n+k]); av > best {
				best, p = av, i
			}
		}
		f.piv[k] = p
		if p != k {
			rk, rp := f.lu[k*n:(k+1)*n], f.lu[p*n:(p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		if math.Abs(pivot) <= tiny {
			return nil, ErrSingular
		}
		inv := 1 / pivot
		for i := k + 1; i < n; i++ {
			m := f.lu[i*n+k] * inv
			f.lu[i*n+k] = m
			if m == 0 {
				continue
			}
			urow := f.lu[k*n+k+1 : (k+1)*n]
			irow := f.lu[i*n+k+1 : (i+1)*n]
			for j, uv := range urow {
				irow[j] -= m * uv
			}
		}
	}
	return f, nil
}

// Solve overwrites x (initially the right-hand side b) with the solution of
// A·x = b.
func (f *LU) Solve(x []float64) {
	n := f.n
	if len(x) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	// Apply permutation.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu[i*n : i*n+i]
		var s float64
		for j, lv := range row {
			s += lv * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu[i*n+i+1 : (i+1)*n]
		s := x[i]
		for j, uv := range row {
			s -= uv * x[i+1+j]
		}
		x[i] = s / f.lu[i*n+i]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for k := 0; k < f.n; k++ {
		d *= f.lu[k*f.n+k]
	}
	return d
}

// Inverse computes A⁻¹ of the square matrix a via LU with partial pivoting.
func Inverse(a *Dense) (*Dense, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewDense(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		f.Solve(col)
		for i := 0; i < n; i++ {
			inv.Data[i*n+j] = col[i]
		}
	}
	return inv, nil
}
