package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/api"
)

// handler serves the HTTP surface over either a single solve service or a
// fleet router — exactly one of svc/flt is non-nil.
type handler struct {
	svc *pop.Service
	flt *pop.Fleet
	// reg is the router's metrics registry in fleet modes (worker registries
	// are private; /metrics exposes the fleet_* counters).
	reg      *pop.MetricsRegistry
	draining atomic.Bool

	rhsMu    sync.Mutex
	rhsCache map[string][]float64
}

// maxBody bounds request bodies: the largest preset RHS is ~a hundred
// thousand points, far under this.
const maxBody = 64 << 20

// solve returns the POST handler for V1Solve (legacy=false) or the
// deprecated LegacySolve shim (legacy=true). Both speak JSON and the binary
// frame, answering in the encoding they were asked in.
func (h *handler) solve(legacy bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if legacy {
			w.Header().Set(api.DeprecationHeader, api.DeprecationValue)
		}
		isFrame := strings.HasPrefix(r.Header.Get("Content-Type"), api.ContentTypeFrame)
		if h.draining.Load() {
			h.writeError(w, isFrame, http.StatusServiceUnavailable, errors.New("draining"))
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
		if err != nil {
			h.writeError(w, isFrame, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		if isFrame {
			h.solveFrame(w, r, body)
			return
		}
		h.solveJSON(w, r, body)
	}
}

// solveJSON handles the JSON encoding of a solve request.
func (h *handler) solveJSON(w http.ResponseWriter, r *http.Request, body []byte) {
	var req api.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		h.writeError(w, false, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	can, err := req.Parse()
	if err != nil {
		h.writeError(w, false, statusFor(err), err)
		return
	}
	b := can.B
	if len(b) == 0 {
		if b, err = h.syntheticRHS(can.Grid, req.RHS); err != nil {
			h.writeError(w, false, statusFor(err), err)
			return
		}
	}
	sreq := pop.ServeRequest{
		Grid:      can.Grid,
		Method:    can.Method,
		Precond:   can.Precond,
		Precision: can.Precision,
		SStep:     can.SStep,
		B:         b,
		X0:        can.X0,
	}
	resp, err := h.dispatch(r.Context(), sreq, can.TraceID, req.TimeoutMS, can.NoCache, can.ReturnX)
	if err != nil {
		h.writeError(w, false, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// solveFrame handles the binary-frame encoding of a solve request.
func (h *handler) solveFrame(w http.ResponseWriter, r *http.Request, body []byte) {
	freq, err := api.DecodeFrameRequest(body)
	if err != nil {
		h.writeError(w, true, statusFor(err), err)
		return
	}
	sreq := pop.ServeRequest{
		Grid:      freq.Grid,
		Method:    freq.Method,
		Precond:   freq.Precond,
		Precision: freq.Precision,
		SStep:     freq.SStep,
		B:         freq.B,
		X0:        freq.X0,
	}
	resp, err := h.dispatch(r.Context(), sreq, freq.TraceID, freq.TimeoutMS, freq.NoCache, freq.ReturnX)
	if err != nil {
		h.writeError(w, true, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", api.ContentTypeFrame)
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(api.AppendFrameResponse(nil, resp)); err != nil {
		log.Printf("popserver: frame write: %v", err)
	}
}

// dispatch runs one canonical solve through the fleet router or the single
// service and shapes the wire response.
func (h *handler) dispatch(ctx context.Context, sreq pop.ServeRequest, traceID uint64, timeoutMS int, noCache, returnX bool) (api.SolveResponse, error) {
	if traceID != 0 {
		ctx = pop.ContextWithTraceID(ctx, traceID)
	}
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	resp := api.SolveResponse{Shard: -1}
	var sres pop.ServeResponse
	if h.flt != nil {
		fres, err := h.flt.Solve(ctx, pop.FleetRequest{Request: sreq, NoCache: noCache})
		if err != nil {
			return api.SolveResponse{}, err
		}
		sres = fres.Response
		resp.Cache = fres.Cache
		resp.Shard = fres.Shard
	} else {
		var err error
		if sres, err = h.svc.Solve(ctx, sreq); err != nil {
			return api.SolveResponse{}, err
		}
	}
	resp.Converged = sres.Result.Converged
	resp.Iterations = sres.Result.Iterations
	resp.OuterIters = sres.Result.OuterIters
	resp.RelResidual = sres.Result.RelResidual
	resp.Solver = sres.Result.Solver
	resp.Precision = sres.Result.Precision.String()
	resp.TraceID = sres.TraceID
	resp.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if returnX {
		resp.X = sres.X
	}
	return resp, nil
}

// syntheticRHS resolves a named right-hand-side generator for requests that
// carry no explicit vector, caching the result per grid (the generators are
// pure functions of the grid). The probe client uses the same generator
// locally so its requests content-hash identically across runs.
func (h *handler) syntheticRHS(gridName, gen string) ([]float64, error) {
	if gen == "" {
		gen = "smooth"
	}
	if gen != "smooth" {
		return nil, &api.FieldError{Field: "rhs", Value: gen, Accepted: []string{"smooth"}}
	}
	if gridName == "" {
		gridName = "test"
	}
	h.rhsMu.Lock()
	defer h.rhsMu.Unlock()
	if b, ok := h.rhsCache[gridName]; ok {
		return b, nil
	}
	g, err := pop.NewGrid(gridName)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, pop.ErrBadSpec)
	}
	b := smoothRHS(g)
	if h.rhsCache == nil {
		h.rhsCache = make(map[string][]float64)
	}
	h.rhsCache[gridName] = b
	return b, nil
}

// smoothRHS builds the deterministic smooth forcing used when a request
// names the "smooth" generator: a low-wavenumber field over the grid
// coordinates, the same shape popbench drives.
func smoothRHS(g *pop.Grid) []float64 {
	b := make([]float64, len(g.TLon))
	for k := range b {
		b[k] = math.Sin(g.TLon[k]/20) * math.Cos(g.TLat[k]/15)
	}
	return b
}

// healthV1 answers GET V1Health with the JSON health body.
func (h *handler) healthV1(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if h.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, api.HealthResponse{Status: status})
}

// healthLegacy answers the deprecated plain-text GET LegacyHealth shim.
func (h *handler) healthLegacy(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(api.DeprecationHeader, api.DeprecationValue)
	if h.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// stats returns the GET handler for V1Stats (legacy=false) or the
// deprecated LegacyStats shim. Fleet modes aggregate: router counters, one
// row per worker, summed totals. Single mode reports itself as one worker.
func (h *handler) stats(legacy bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if legacy {
			w.Header().Set(api.DeprecationHeader, api.DeprecationValue)
		}
		var resp api.StatsResponse
		if h.flt != nil {
			resp = h.flt.Stats(r.Context())
		} else {
			c := countersFrom(h.svc.Snapshot())
			resp.Grids = h.svc.Grids()
			resp.Workers = []api.WorkerStats{{Worker: 0, Addr: "local", Healthy: true, Counters: c}}
			resp.Totals = c
		}
		resp.GoVersion = runtime.Version()
		if resp.Grids == nil {
			resp.Grids = []string{}
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// countersFrom flattens a service counter snapshot into its wire form.
func countersFrom(s pop.ServiceStats) api.ServiceCounters {
	return api.ServiceCounters{
		Requests:    s.Requests,
		Shed:        s.Shed,
		Expired:     s.Expired,
		Solves:      s.Solves,
		Batches:     s.Batches,
		Errors:      s.Errors,
		Sessions:    s.Sessions,
		Retried:     s.Retried,
		Faulted:     s.Faulted,
		Recovered:   s.Recovered,
		CircuitShed: s.CircuitShed,
	}
}

// metrics serves the Prometheus text exposition: the service registry in
// single mode, the router's fleet_* registry in fleet modes.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	reg := h.reg
	if h.flt == nil {
		reg = h.svc.Registry()
	}
	if err := reg.WritePrometheus(w); err != nil {
		log.Printf("popserver: metrics write: %v", err)
	}
}

// trace serves the Perfetto export: all sessions' rank spans plus request
// records, merged fleet-wide in fleet modes.
func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var err error
	if h.flt != nil {
		err = h.flt.WritePerfetto(w)
	} else {
		err = h.svc.WritePerfetto(w)
	}
	if err != nil {
		log.Printf("popserver: trace write: %v", err)
	}
}

// flight serves the flight-recorder snapshot as a JSON array of request
// records (fleet modes merge the router's and every local worker's rings).
func (h *handler) flight(w http.ResponseWriter, r *http.Request) {
	var recs []pop.RequestRecord
	if h.flt != nil {
		recs = h.flt.FlightRecords()
	} else {
		recs = h.svc.Flight().Recent()
	}
	if recs == nil {
		recs = []pop.RequestRecord{}
	}
	writeJSON(w, http.StatusOK, map[string][]pop.RequestRecord{"recent": recs})
}

// close drains whichever serving stack is active.
func (h *handler) close(ctx context.Context) error {
	if h.flt != nil {
		return h.flt.Close(ctx)
	}
	return h.svc.Close(ctx)
}

// writeTraceFile writes the final Perfetto export on shutdown.
func (h *handler) writeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if h.flt != nil {
		werr = h.flt.WritePerfetto(f)
	} else {
		werr = h.svc.WritePerfetto(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// statusFor maps solve errors onto HTTP statuses: shed load is 429 (retry
// elsewhere/later), bad specs are the client's 400, deadlines are 504,
// shutdown and open circuits are 503, honest non-convergence is 422.
func statusFor(err error) int {
	switch {
	case errors.Is(err, pop.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, pop.ErrBadSpec), errors.Is(err, api.ErrBadFrame):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, pop.ErrServiceClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, pop.ErrCircuitOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, pop.ErrNotConverged):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// writeError replies in the encoding the request spoke: a JSON ErrorBody
// (with Field/Accepted populated for enum validation failures, so a 400
// tells the client how to fix itself) or a binary error frame.
func (h *handler) writeError(w http.ResponseWriter, isFrame bool, status int, err error) {
	if isFrame {
		w.Header().Set("Content-Type", api.ContentTypeFrame)
		w.WriteHeader(status)
		if _, werr := w.Write(api.AppendFrameError(nil, status, err.Error())); werr != nil {
			log.Printf("popserver: frame write: %v", werr)
		}
		return
	}
	body := api.ErrorBody{Error: err.Error()}
	var fe *api.FieldError
	if errors.As(err, &fe) {
		body.Field = fe.Field
		body.Accepted = fe.Accepted
	}
	writeJSON(w, status, body)
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("popserver: json write: %v", err)
	}
}
