package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestSStepMatchesChronGear is the convergence-equivalence contract: for
// every preconditioner and every block size in the experiment sweep, the
// s-step solver must reach the same tolerance as ChronGear and agree with
// its solution to solver accuracy.
func TestSStepMatchesChronGear(t *testing.T) {
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	for _, pc := range []PrecondType{PrecondIdentity, PrecondDiagonal, PrecondEVP, PrecondBlockLU} {
		sCG := f.session(t, Options{Precond: pc, Tol: 1e-12})
		rCG, xCG, err := sCG.SolveChronGear(f.b, x0)
		if err != nil {
			t.Fatalf("chrongear/%v: %v", pc, err)
		}
		if !rCG.Converged {
			t.Fatalf("chrongear/%v did not converge", pc)
		}
		ref := make([]float64, len(xCG))
		copy(ref, xCG)
		for _, sv := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v-s%d", pc, sv), func(t *testing.T) {
				s := f.session(t, Options{Precond: pc, Tol: 1e-12, SStep: sv})
				res, x, err := s.SolveSStep(f.b, x0)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("did not converge in %d iterations (rel res %g)",
						res.Iterations, res.RelResidual)
				}
				if res.RelResidual > 1e-12 {
					t.Fatalf("converged flag set but rel residual %g > tol", res.RelResidual)
				}
				if e := maxOceanErr(f.g, x, ref); e > 1e-8 {
					t.Fatalf("solution differs from ChronGear by %g", e)
				}
			})
		}
	}
}

// TestSStepReductionBound asserts the solver's whole point: a converged
// solve performs at most ceil(iters/s)+1 global reductions — counted from
// the communicator's own per-rank reduction counters, not inferred.
func TestSStepReductionBound(t *testing.T) {
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	for _, sv := range []int{1, 2, 4, 8} {
		s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-12, SStep: sv})
		// Pre-estimate the spectrum so its own reductions (charged to
		// EigenStats, a separate Run) cannot be confused with the solve's.
		if _, _, _, err := s.EstimateEigenvalues(f.b, 0); err != nil {
			t.Fatal(err)
		}
		res, _, err := s.SolveSStep(f.b, x0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("s=%d did not converge", sv)
		}
		nrank := int64(len(res.Stats.PerRank))
		if res.Stats.Sum.Reductions%nrank != 0 {
			t.Fatalf("s=%d: reduction total %d not divisible by %d ranks",
				sv, res.Stats.Sum.Reductions, nrank)
		}
		perRank := res.Stats.Sum.Reductions / nrank
		bound := int64((res.Iterations+sv-1)/sv) + 1
		if perRank > bound {
			t.Fatalf("s=%d: %d reductions per rank for %d iterations, bound ceil(%d/%d)+1 = %d",
				sv, perRank, res.Iterations, res.Iterations, sv, bound)
		}
		// Sanity: ChronGear at the same tolerance pays ~1 reduction per
		// iteration, so the s-step count must undercut it for s > 1.
		if sv > 1 && perRank >= int64(res.Iterations) {
			t.Fatalf("s=%d: %d reductions did not undercut the %d iterations",
				sv, perRank, res.Iterations)
		}
	}
}

// TestSStepBitwiseAcrossThreads asserts the worker-shard determinism
// contract: the same solve on 1 and 4 threads (ranks sharded onto fewer OS
// workers) produces bitwise-identical solutions and residual histories.
func TestSStepBitwiseAcrossThreads(t *testing.T) {
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	run := func(threads int) ([]float64, []uint64) {
		f.w.SetThreads(threads)
		defer f.w.SetThreads(0)
		s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-12, SStep: 4})
		res, x, err := s.SolveSStep(f.b, x0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		xc := make([]float64, len(x))
		copy(xc, x)
		hist := make([]uint64, 0, len(res.Trace.Residuals))
		for _, rp := range res.Trace.Residuals {
			hist = append(hist, math.Float64bits(rp.RelResidual))
		}
		return xc, hist
	}
	x1, h1 := run(1)
	x4, h4 := run(4)
	if len(h1) != len(h4) {
		t.Fatalf("residual history lengths differ: %d vs %d", len(h1), len(h4))
	}
	for i := range h1 {
		if h1[i] != h4[i] {
			t.Fatalf("residual %d differs bitwise: %016x vs %016x", i, h1[i], h4[i])
		}
	}
	for k := range x1 {
		if x1[k] != x4[k] {
			t.Fatalf("solution differs bitwise at %d across thread counts", k)
		}
	}
}

// TestSStepRepeatDeterministic asserts warm-arena repeatability: reusing a
// session's field arenas and pooled reduction buffers must not perturb a
// bit, same as the per-iteration solvers.
func TestSStepRepeatDeterministic(t *testing.T) {
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	s := f.session(t, Options{Precond: PrecondDiagonal, Tol: 1e-12, SStep: 4})
	_, xa, err := s.SolveSStep(f.b, x0)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, len(xa))
	copy(ref, xa)
	_, xb, err := s.SolveSStep(f.b, x0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ref {
		if ref[k] != xb[k] {
			t.Fatalf("repeat solve differs bitwise at %d", k)
		}
	}
}

// TestSStepOptionValidation covers the new public surface's failure modes:
// out-of-range block sizes and the unsupported float32 pairing.
func TestSStepOptionValidation(t *testing.T) {
	f := testFixture(t)
	if _, err := NewSession(f.g, f.op, f.d, f.w, Options{SStep: MaxSStep + 1}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("SStep=%d: got %v, want ErrBadSpec", MaxSStep+1, err)
	}
	if _, err := NewSession(f.g, f.op, f.d, f.w, Options{SStep: -1}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("SStep=-1: got %v, want ErrBadSpec", err)
	}
	s := f.session(t, Options{Precision: Float32})
	if _, _, err := s.SolveContext(context.Background(), MethodSStep, f.b, nil); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("float32 sstep: got %v, want ErrBadSpec", err)
	}
}

// TestSStepCancellation: cancellation rides the block reduction, so a
// pre-cancelled context stops the solve at its first block with the
// context's error.
func TestSStepCancellation(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondDiagonal, SStep: 4})
	if _, _, _, err := s.EstimateEigenvalues(f.b, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.SolveSStepContext(ctx, f.b, make([]float64, f.g.N()))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestSStepMethodPlumbing covers the enum round trip.
func TestSStepMethodPlumbing(t *testing.T) {
	m, err := ParseMethod("sstep")
	if err != nil || m != MethodSStep {
		t.Fatalf("ParseMethod(sstep) = %v, %v", m, err)
	}
	if got := MethodSStep.String(); got != "sstep" {
		t.Fatalf("MethodSStep.String() = %q", got)
	}
	if !MethodSStep.Valid() {
		t.Fatal("MethodSStep not Valid()")
	}
}
