// Command popmodel integrates the barotropic ocean model and prints
// periodic diagnostics (kinetic energy, SSH extrema, solver iterations).
//
//	popmodel -grid test -days 30 -solver pcsi -precond evp
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	var (
		gridName = flag.String("grid", "test", "grid preset: test, 1deg, 0.1deg-scaled")
		days     = flag.Float64("days", 10, "simulated days")
		dt       = flag.Float64("dt", 2400, "time step (s)")
		solver   = flag.String("solver", "chrongear", "barotropic solver: chrongear, pcg, pcsi")
		precond  = flag.String("precond", "diagonal", "preconditioner: diagonal, evp, none, blocklu")
		every    = flag.Float64("report", 1, "report interval (days)")
	)
	flag.Parse()

	g, err := pop.NewGrid(*gridName)
	fatalIf(err)

	var pc core.PrecondType
	switch *precond {
	case "diagonal":
		pc = core.PrecondDiagonal
	case "evp":
		pc = core.PrecondEVP
	case "blocklu":
		pc = core.PrecondBlockLU
	case "none":
		pc = core.PrecondIdentity
	default:
		fatalIf(fmt.Errorf("unknown preconditioner %q", *precond))
	}

	m, err := pop.NewModel(pop.ModelConfig{
		Grid:       g,
		Dt:         *dt,
		Solver:     model.SolverName(*solver),
		SolverOpts: core.Options{Precond: pc},
	})
	fatalIf(err)

	stepsPerReport := int(*every * 86400 / *dt)
	totalSteps := int(*days * 86400 / *dt)
	fmt.Printf("grid %s (%d×%d), dt=%.0fs, %d steps, solver %s+%s\n",
		g.Name, g.Nx, g.Ny, *dt, totalSteps, *solver, *precond)

	for done := 0; done < totalSteps; {
		n := stepsPerReport
		if done+n > totalSteps {
			n = totalSteps - done
		}
		fatalIf(m.Run(n))
		done += n
		var etaMin, etaMax float64
		for k, ocean := range g.Mask {
			if ocean {
				etaMin = math.Min(etaMin, m.Eta[k])
				etaMax = math.Max(etaMax, m.Eta[k])
			}
		}
		iters := m.IterHistory[len(m.IterHistory)-1]
		fmt.Printf("day %6.2f  KE=%.4e  ssh=[%+.3f,%+.3f] m  mean_ssh=%+.2e  iters=%d\n",
			float64(done)**dt/86400, m.KineticEnergy(), etaMin, etaMax, m.MeanSSH(), iters)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "popmodel:", err)
		os.Exit(1)
	}
}
