package evp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/stencil"
)

// denseBlock materializes the interior sub-matrix Bᵢ (zero-Dirichlet
// exterior) of a halo-1 window, optionally with the simplified stencil.
func denseBlock(loc *stencil.Local, simplified bool) *linalg.Dense {
	nxi, nyi := loc.NxI(), loc.NyI()
	n := nxi * nyi
	d := linalg.NewDense(n, n)
	for j := 0; j < nyi; j++ {
		for i := 0; i < nxi; i++ {
			row := loc.Row(i+1, j+1)
			if simplified {
				row[1], row[3], row[5], row[7] = 0, 0, 0, 0
			}
			for o, v := range offsets {
				ii, jj := i+v[0], j+v[1]
				if row[o] == 0 || ii < 0 || ii >= nxi || jj < 0 || jj >= nyi {
					continue
				}
				d.Set(j*nxi+i, jj*nxi+ii, row[o])
			}
		}
	}
	return d
}

func testWindow(t *testing.T, nx, ny int) *stencil.Local {
	t.Helper()
	g := grid.Generate(grid.TestSpec())
	phi := stencil.PhiFromTimeStep(1800)
	// A window over a mixed land/ocean area exercises the filling.
	return stencil.AssembleWindowFilled(g, phi, 20, 14, nx, ny, 50)
}

func solveVsDense(t *testing.T, loc *stencil.Local, simplified bool, tol float64) {
	t.Helper()
	s, err := NewBlockSolver(loc, simplified)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := loc.NxP, loc.NyP
	nxi, nyi := loc.NxI(), loc.NyI()
	dm := denseBlock(loc, simplified)
	lu, err := linalg.Factor(dm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3; trial++ {
		psi := make([]float64, nx*ny)
		want := make([]float64, nxi*nyi)
		for j := 0; j < nyi; j++ {
			for i := 0; i < nxi; i++ {
				v := rng.NormFloat64()
				psi[(j+1)*nx+i+1] = v
				want[j*nxi+i] = v
			}
		}
		lu.Solve(want)
		x := make([]float64, nx*ny)
		s.Solve(x, psi)
		var scale float64
		for _, v := range want {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for j := 0; j < nyi; j++ {
			for i := 0; i < nxi; i++ {
				got := x[(j+1)*nx+i+1]
				if math.Abs(got-want[j*nxi+i]) > tol*scale {
					t.Fatalf("EVP/LU mismatch at (%d,%d): %v vs %v (scale %v)",
						i, j, got, want[j*nxi+i], scale)
				}
			}
		}
	}
}

func TestSolveMatchesDense(t *testing.T) {
	// The synthetic test grid is anisotropic (dx/dy ≈ 2.5 at the equator),
	// which amplifies marching round-off well beyond the paper's
	// near-isotropic 0.1° blocks — hence modest sizes and tolerances here;
	// the isotropic 12×12 case below gets the tight tolerance.
	// Measured marching growth on this window: ~4e3 at 4×4, ~1.5e11 at 8×8,
	// hence the size-dependent tolerances (as a preconditioner 1e−4 is far
	// more accuracy than needed).
	for _, c := range []struct {
		nx, ny int
		tol    float64
	}{{1, 1, 1e-10}, {2, 3, 1e-9}, {4, 4, 1e-7}, {6, 6, 1e-5}, {8, 8, 1e-4}, {8, 6, 1e-4}} {
		loc := testWindow(t, c.nx, c.ny)
		solveVsDense(t, loc, false, c.tol)
	}
}

func TestSolveSimplifiedMatchesSimplifiedDense(t *testing.T) {
	for _, c := range []struct {
		nx, ny int
		tol    float64
	}{{4, 4, 1e-7}, {8, 8, 1e-4}} {
		loc := testWindow(t, c.nx, c.ny)
		solveVsDense(t, loc, true, c.tol)
	}
}

func TestSolveFlatBasin(t *testing.T) {
	g := grid.NewFlatBasin(32, 32, 2000, 1e4, 1.3e4)
	for _, c := range []struct {
		n   int
		tol float64
	}{{10, 1e-5}, {12, 1e-4}} {
		loc := stencil.AssembleWindowFilled(g, stencil.PhiFromTimeStep(600), 8, 8, c.n, c.n, 50)
		solveVsDense(t, loc, false, c.tol)
	}
}

func TestTwelveByTwelveRoundOff(t *testing.T) {
	// The paper quotes O(1e−8) round-off at 12×12 on its near-isotropic
	// grid — verify the residual of the EVP solution is small relative to
	// the input on a comparable isotropic basin.
	g := grid.NewFlatBasin(32, 32, 3000, 1e4, 1.1e4)
	loc := stencil.AssembleWindowFilled(g, stencil.PhiFromTimeStep(600), 8, 8, 12, 12, 50)
	s, err := NewBlockSolver(loc, false)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := loc.NxP, loc.NyP
	rng := rand.New(rand.NewSource(7))
	psi := make([]float64, nx*ny)
	for j := 1; j < ny-1; j++ {
		for i := 1; i < nx-1; i++ {
			psi[j*nx+i] = rng.NormFloat64()
		}
	}
	x := make([]float64, nx*ny)
	s.Solve(x, psi)
	// Residual ψ − Bx at interior points, with zero-Dirichlet exterior.
	var relMax float64
	for j := 1; j < ny-1; j++ {
		for i := 1; i < nx-1; i++ {
			row := loc.Row(i, j)
			k := j*nx + i
			var ax float64
			for o, v := range offsets {
				ax += row[o] * x[k+v[1]*nx+v[0]]
			}
			res := math.Abs(psi[k]-ax) / (math.Abs(psi[k]) + 1)
			if res > relMax {
				relMax = res
			}
		}
	}
	// Marching growth ≈2.4e5 at isotropic 12×12 and the stencil norm is
	// ~1e3, so the equation residual lands around 1e−4 relative — the
	// solution itself is accurate to ~1e−7 (see TestSolveFlatBasin), which
	// is the paper's "acceptable round-off" regime.
	if relMax > 5e-3 {
		t.Fatalf("12×12 EVP relative residual %g too large", relMax)
	}
}

func TestRejectsOversizedBlocks(t *testing.T) {
	g := grid.NewFlatBasin(64, 64, 2000, 1e4, 1e4)
	loc := stencil.AssembleWindowFilled(g, stencil.PhiFromTimeStep(600), 4, 4, 40, 40, 50)
	if _, err := NewBlockSolver(loc, false); err == nil {
		t.Fatal("accepted a 40×40 block; marching would be unstable")
	}
}

func TestRejectsZeroCornerCoefficient(t *testing.T) {
	// An unfilled window over land has dry corners → zero ANE → error.
	g := grid.Generate(grid.TestSpec())
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(1800))
	// Find a window containing land.
	var loc *stencil.Local
	for y := 0; y < g.Ny-10 && loc == nil; y += 4 {
		for x := 0; x < g.Nx-10; x += 4 {
			hasLand := false
			for j := y; j < y+8; j++ {
				for i := x; i < x+8; i++ {
					if !g.Mask[g.Idx(i, j)] {
						hasLand = true
					}
				}
			}
			if !hasLand {
				continue
			}
			l := &stencil.Local{NxP: 10, NyP: 10, H: 1,
				AC: make([]float64, 100), AN: make([]float64, 100),
				AE: make([]float64, 100), ANE: make([]float64, 100),
				Mask: make([]bool, 100)}
			for j := 0; j < 10; j++ {
				for i := 0; i < 10; i++ {
					gi, gj := x-1+i, y-1+j
					if gi < 0 || gi >= g.Nx || gj < 0 || gj >= g.Ny {
						continue
					}
					kl, kg := j*10+i, g.Idx(gi, gj)
					l.AC[kl], l.AN[kl], l.AE[kl], l.ANE[kl] = op.AC[kg], op.AN[kg], op.AE[kg], op.ANE[kg]
				}
			}
			loc = l
			break
		}
	}
	if loc == nil {
		t.Skip("no land window found")
	}
	if _, err := NewBlockSolver(loc, false); err == nil {
		t.Fatal("accepted a block with zero NE coefficients")
	}
}

func TestMarchGrowthExplodesWithSize(t *testing.T) {
	g := grid.NewFlatBasin(64, 64, 2000, 1e4, 1e4)
	phi := stencil.PhiFromTimeStep(600)
	growth := func(n int) float64 {
		loc := stencil.AssembleWindowFilled(g, phi, 4, 4, n, n, 50)
		v, err := MarchGrowth(loc, false)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	g8, g16, g32 := growth(8), growth(16), growth(32)
	if !(g8 < g16 && g16 < g32) {
		t.Fatalf("growth not monotone: %g %g %g", g8, g16, g32)
	}
	if g32 < 1e8 {
		t.Fatalf("expected explosive growth at 32×32, got %g", g32)
	}
	if g8 > 1e8 {
		t.Fatalf("8×8 marching already unstable: %g", g8)
	}
}

func TestFlopAccounting(t *testing.T) {
	loc := testWindow(t, 12, 12)
	full, err := NewBlockSolver(loc, false)
	if err != nil {
		t.Fatal(err)
	}
	simp, err := NewBlockSolver(loc, true)
	if err != nil {
		t.Fatal(err)
	}
	// k = nx+ny−1 for the 14×14 extended domain = 2·14−5 = 23.
	k := int64(23)
	wantFull := 2*9*144 + k*k
	wantSimp := 2*5*144 + k*k
	if full.SolveFlops() != wantFull {
		t.Fatalf("full SolveFlops=%d want %d", full.SolveFlops(), wantFull)
	}
	if simp.SolveFlops() != wantSimp {
		t.Fatalf("simplified SolveFlops=%d want %d", simp.SolveFlops(), wantSimp)
	}
	if full.SetupFlops() <= full.SolveFlops() {
		t.Fatal("setup should cost more than one solve")
	}
	if nx, ny := full.Size(); nx != 12 || ny != 12 {
		t.Fatalf("Size=(%d,%d)", nx, ny)
	}
}

// Property-style test: EVP is an exact linear solver, so Solve(αψ₁+βψ₂) =
// α·Solve(ψ₁) + β·Solve(ψ₂) up to round-off.
func TestSolveLinearity(t *testing.T) {
	loc := testWindow(t, 8, 8)
	s, err := NewBlockSolver(loc, false)
	if err != nil {
		t.Fatal(err)
	}
	n := loc.NxP * loc.NyP
	rng := rand.New(rand.NewSource(11))
	psi1 := make([]float64, n)
	psi2 := make([]float64, n)
	comb := make([]float64, n)
	for j := 1; j < loc.NyP-1; j++ {
		for i := 1; i < loc.NxP-1; i++ {
			k := j*loc.NxP + i
			psi1[k] = rng.NormFloat64()
			psi2[k] = rng.NormFloat64()
			comb[k] = 2*psi1[k] - 3*psi2[k]
		}
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	xc := make([]float64, n)
	s.Solve(x1, psi1)
	s.Solve(x2, psi2)
	s.Solve(xc, comb)
	for k := range xc {
		want := 2*x1[k] - 3*x2[k]
		if math.Abs(xc[k]-want) > 1e-7*(math.Abs(want)+1) {
			t.Fatalf("linearity violated at %d: %v vs %v", k, xc[k], want)
		}
	}
}
