package stencil

// Local32 is the single-precision image of a Local: the nine-point
// coefficients stored as float32, sharing the parent's ocean mask. It backs
// the mixed-precision solver path (core.Options.Precision = Float32), where
// the iteration kernels run in float32 — halving the memory traffic the
// stencil sweep is bound by — while every inner product accumulates in
// float64 so the global reductions keep their fixed-tree determinism.
//
// The conversion loses at most one float32 ulp per coefficient; the
// iterative-refinement outer loop (core/mixed.go) absorbs that error in
// full double precision, so the final solution meets the fp64 tolerance.
type Local32 struct {
	NxP, NyP int // padded dimensions (same layout as Local)
	H        int // halo width
	// AC, AN, AE and ANE are the float32 images of the parent Local's
	// coefficient arrays.
	AC, AN, AE, ANE []float32
	Mask            []bool // shared with the parent Local, not copied
}

// NewLocal32 builds the float32 image of l. The coefficient arrays are
// fresh copies rounded to float32; Mask aliases the parent's.
func NewLocal32(l *Local) *Local32 {
	c := &Local32{NxP: l.NxP, NyP: l.NyP, H: l.H, Mask: l.Mask}
	conv := func(src []float64) []float32 {
		dst := make([]float32, len(src))
		for k, v := range src {
			dst[k] = float32(v)
		}
		return dst
	}
	c.AC = conv(l.AC)
	c.AN = conv(l.AN)
	c.AE = conv(l.AE)
	c.ANE = conv(l.ANE)
	return c
}

// InteriorLen returns the number of owned points.
func (l *Local32) InteriorLen() int { return (l.NxP - 2*l.H) * (l.NyP - 2*l.H) }

// Apply computes y = A·x over the interior points in float32, the same
// nine-point sweep as Local.Apply (see there for the slice-window BCE
// idiom). Halo entries of y are left untouched.
//
//pop:hotpath
func (l *Local32) Apply(y, x []float32) {
	nx := l.NxP
	if len(x) != nx*l.NyP || len(y) != nx*l.NyP {
		panic("stencil: Local32.Apply dimension mismatch")
	}
	for j := l.H; j < l.NyP-l.H; j++ {
		lo := j*nx + l.H
		n := nx - 2*l.H
		yr := y[lo:][:n]
		xc := x[lo:][:n]
		xn := x[lo+nx:][:n]
		xs := x[lo-nx:][:n]
		xe := x[lo+1:][:n]
		xw := x[lo-1:][:n]
		xne := x[lo+nx+1:][:n]
		xse := x[lo-nx+1:][:n]
		xnw := x[lo+nx-1:][:n]
		xsw := x[lo-nx-1:][:n]
		ac := l.AC[lo:][:n]
		an := l.AN[lo:][:n]
		ans := l.AN[lo-nx:][:n]
		ae := l.AE[lo:][:n]
		aw := l.AE[lo-1:][:n]
		ane := l.ANE[lo:][:n]
		anes := l.ANE[lo-nx:][:n]
		anew := l.ANE[lo-1:][:n]
		anesw := l.ANE[lo-nx-1:][:n]
		for i := range yr {
			yr[i] = ac[i]*xc[i] +
				an[i]*xn[i] + ans[i]*xs[i] +
				ae[i]*xe[i] + aw[i]*xw[i] +
				ane[i]*xne[i] + anes[i]*xse[i] +
				anew[i]*xnw[i] + anesw[i]*xsw[i]
		}
	}
}

// ApplyAndMaskedDot computes y = A·x over the interior in float32 and
// returns Σ y[k]·x[k] over owned ocean points accumulated in float64 — the
// fused matvec+dot of the CG-family inner loops. The float64 accumulation
// is the mixed-precision contract: products are formed in float32 (one
// rounding each) but the sum that feeds the global reduction carries full
// double-precision associativity, so the fixed-tree reduction stays bitwise
// deterministic across runs and thread counts.
//
//pop:hotpath
func (l *Local32) ApplyAndMaskedDot(y, x []float32) float64 {
	nx := l.NxP
	if len(x) != nx*l.NyP || len(y) != nx*l.NyP {
		panic("stencil: Local32.Apply dimension mismatch")
	}
	var s float64
	for j := l.H; j < l.NyP-l.H; j++ {
		lo := j*nx + l.H
		n := nx - 2*l.H
		yr := y[lo:][:n]
		xc := x[lo:][:n]
		xn := x[lo+nx:][:n]
		xs := x[lo-nx:][:n]
		xe := x[lo+1:][:n]
		xw := x[lo-1:][:n]
		xne := x[lo+nx+1:][:n]
		xse := x[lo-nx+1:][:n]
		xnw := x[lo+nx-1:][:n]
		xsw := x[lo-nx-1:][:n]
		ac := l.AC[lo:][:n]
		an := l.AN[lo:][:n]
		ans := l.AN[lo-nx:][:n]
		ae := l.AE[lo:][:n]
		aw := l.AE[lo-1:][:n]
		ane := l.ANE[lo:][:n]
		anes := l.ANE[lo-nx:][:n]
		anew := l.ANE[lo-1:][:n]
		anesw := l.ANE[lo-nx-1:][:n]
		mask := l.Mask[lo:][:n]
		for i := range yr {
			v := ac[i]*xc[i] +
				an[i]*xn[i] + ans[i]*xs[i] +
				ae[i]*xe[i] + aw[i]*xw[i] +
				ane[i]*xne[i] + anes[i]*xse[i] +
				anew[i]*xnw[i] + anesw[i]*xsw[i]
			yr[i] = v
			if mask[i] {
				s += float64(xc[i]) * float64(v)
			}
		}
	}
	return s
}

// MaskedDotInterior returns Σ x[k]·y[k] over owned ocean points, products
// in float32 widened to a float64 accumulator (see ApplyAndMaskedDot for
// why the accumulator is double).
//
//pop:hotpath
func (l *Local32) MaskedDotInterior(x, y []float32) float64 {
	var s float64
	nx := l.NxP
	for j := l.H; j < l.NyP-l.H; j++ {
		lo := j*nx + l.H
		n := nx - 2*l.H
		xr := x[lo:][:n]
		yr := y[lo:][:n]
		mask := l.Mask[lo:][:n]
		for i := range xr {
			if mask[i] {
				s += float64(xr[i]) * float64(yr[i])
			}
		}
	}
	return s
}
