package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// determinismScope is the set of packages whose numerics must be bitwise
// reproducible run to run: the solver core, the communication substrate,
// the stencil kernels, the EVP preconditioner factorization, and the fault
// injector (whose schedule is a pure function of (seed, class, rank, seq)).
var determinismScope = []string{
	"repro/internal/core",
	"repro/internal/comm",
	"repro/internal/stencil",
	"repro/internal/evp",
	"repro/internal/faults",
}

// Determinism reports nondeterminism sources in the numerics packages:
// wall-clock reads, math/rand draws, map-range iteration that accumulates
// floats or reaches a collective, and goroutine bodies that write captured
// floating-point state (spawn-order-dependent accumulation).
//
// The repo's golden traces assert bitwise-identical residual histories at
// any rank count, and the paper's scaling analysis depends on runs being
// reproducible (DESIGN.md §2, §9): every stochastic input — OS-noise
// jitter, network contention, fault schedules — is drawn from seeded
// counter hashes keyed on (rank, seq), never from wall clocks or global
// RNGs. Map iteration order and goroutine scheduling are the two ways Go
// silently reorders float additions; both are forbidden wherever the sums
// feed a reduction payload or a field update.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks, math/rand, and map-order/goroutine-order float accumulation" +
		" in the deterministic numerics packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !pkgInScope(pass, determinismScope...) {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	info := pass.TypesInfo

	nodes := []ast.Node{
		(*ast.CallExpr)(nil),
		(*ast.SelectorExpr)(nil),
		(*ast.RangeStmt)(nil),
		(*ast.GoStmt)(nil),
	}
	ins.Preorder(nodes, func(n ast.Node) {
		if inTestFile(pass.Fset, n.Pos()) {
			return
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			f := calleeFunc(info, x)
			if f == nil {
				return
			}
			if isPkgFunc(f, "time", "Now") || isPkgFunc(f, "time", "Since") || isPkgFunc(f, "time", "Until") {
				ig.reportf(x.Pos(), "wall-clock read time.%s in deterministic package %s: virtual time comes from the CostModel, never the host clock", f.Name(), pass.Pkg.Name())
			}
		case *ast.SelectorExpr:
			// Any use of math/rand (v1 or v2): the only sanctioned
			// randomness is the seeded counter-hash injector/noise draws.
			if id, ok := x.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok {
					p := pn.Imported().Path()
					if p == "math/rand" || p == "math/rand/v2" {
						ig.reportf(x.Pos(), "use of %s.%s in deterministic package %s: draw from the seeded splitmix64 streams instead", p, x.Sel.Name, pass.Pkg.Name())
					}
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, ig, x)
		case *ast.GoStmt:
			checkGoAccumulation(pass, ig, x)
		}
	})
	return nil, nil
}

// checkMapRange reports a range over a map whose body performs
// floating-point accumulation or reaches a collective: Go randomizes map
// iteration order, so such loops sum in a different association every run.
func checkMapRange(pass *analysis.Pass, ig *ignorer, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if isFloat(pass.TypesInfo.TypeOf(l)) {
					ig.reportf(rng.Pos(), "map-range body writes floating-point data (%s): map iteration order is randomized, so the accumulation order differs every run", types.ExprString(l))
					return false
				}
			}
		case *ast.CallExpr:
			if name := rankMethodName(pass.TypesInfo, x); collectiveMethods[name] {
				ig.reportf(rng.Pos(), "map-range body reaches collective %s: map iteration order is randomized, so ranks would issue collectives in differing orders", name)
				return false
			}
		}
		return true
	})
}

// checkGoAccumulation reports goroutine bodies that write floating-point
// variables captured from the enclosing function: completion order is
// scheduler-dependent, so such writes are exactly the nondeterministic
// accumulation the binomial reduction tree exists to avoid.
func checkGoAccumulation(pass *analysis.Pass, ig *ignorer, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if !isFloat(pass.TypesInfo.TypeOf(l)) {
				continue
			}
			if root := rootIdent(l); root != nil {
				if v, ok := pass.TypesInfo.Uses[root].(*types.Var); ok && capturedBy(v, lit) {
					ig.reportf(as.Pos(), "goroutine writes captured floating-point state %s: spawn/completion order is scheduler-dependent, making the accumulation nondeterministic", types.ExprString(l))
					return false
				}
			}
		}
		return true
	})
}

// rootIdent returns the base identifier of an lvalue (x, x.f, x[i], *x …).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// capturedBy reports whether v is declared outside lit (a true capture,
// not a parameter or local of the goroutine body).
func capturedBy(v *types.Var, lit *ast.FuncLit) bool {
	if v.Parent() == nil { // struct fields etc.: judged by their root elsewhere
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}
