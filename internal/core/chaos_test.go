package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/faults"
)

// trueRelResidual computes ‖b − Ax‖/‖b‖ with the global operator — an
// oracle independent of everything the distributed solve (and the fault
// injector) touched.
func trueRelResidual(f *fixture, x []float64) float64 {
	y := make([]float64, f.g.N())
	f.op.Apply(y, x)
	for k := range y {
		y[k] = f.b[k] - y[k]
	}
	return f.op.MaskedNorm2(y) / f.op.MaskedNorm2(f.b)
}

// chaosHistory solves with the given method and returns the residual-check
// bit patterns plus the solution copy and result.
func chaosSolve(t *testing.T, s *Session, m Method, b []float64) (Result, []float64, []uint64) {
	t.Helper()
	res, x, err := s.SolveContext(context.Background(), m, b, nil)
	if err != nil {
		t.Fatalf("%v solve: %v", m, err)
	}
	hist := make([]uint64, 0, len(res.Trace.Residuals))
	for _, rp := range res.Trace.Residuals {
		hist = append(hist, math.Float64bits(rp.RelResidual))
	}
	xc := append([]float64(nil), x...)
	return res, xc, hist
}

// With the injector wired into the world but carrying a zero plan (or with
// no injector at all), solves must be bitwise identical to the golden
// fault-free traces — the resilience machinery must be invisible when idle.
func TestInjectorDisabledBitwiseIdentical(t *testing.T) {
	opts := Options{Precond: PrecondEVP, Tol: 1e-300, MaxIters: 60, CheckEvery: 10}
	for _, m := range []Method{MethodPCSI, MethodChronGear} {
		fGold := testFixture(t)
		sGold := fGold.session(t, opts)
		_, xGold, hGold := chaosSolve(t, sGold, m, fGold.b)

		fZero := testFixture(t)
		fZero.w.Faults = faults.New(faults.Plan{Seed: 1}, nil) // wired in, inert
		sZero := fZero.session(t, opts)
		_, xZero, hZero := chaosSolve(t, sZero, m, fZero.b)

		if len(hGold) != len(hZero) {
			t.Fatalf("%v: history lengths differ: %d vs %d", m, len(hGold), len(hZero))
		}
		for i := range hGold {
			if hGold[i] != hZero[i] {
				t.Fatalf("%v: residual history diverges at check %d: %x vs %x",
					m, i, hGold[i], hZero[i])
			}
		}
		for k := range xGold {
			if math.Float64bits(xGold[k]) != math.Float64bits(xZero[k]) {
				t.Fatalf("%v: solution differs at %d: %v vs %v", m, k, xGold[k], xZero[k])
			}
		}
	}
}

// chaosCase runs one solver under one fault class and asserts recovery: the
// solve converges, the independently recomputed residual honours the
// configured tolerance (same tolerance as a fault-free solve), and the
// injector actually fired.
func chaosCase(t *testing.T, m Method, plan faults.Plan, class faults.Class, maxRec int) Result {
	t.Helper()
	f := testFixture(t)
	inj := faults.New(plan, nil)
	f.w.Faults = inj
	s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-10, MaxIters: 4000,
		MaxRecoveries: maxRec})
	res, x, err := s.SolveResilient(context.Background(), m, f.b, nil)
	if err != nil {
		t.Fatalf("%v under %v: %v", m, class, err)
	}
	if !res.Converged {
		t.Fatalf("%v under %v did not converge (%d iters, rel %g)",
			m, class, res.Iterations, res.RelResidual)
	}
	if inj.InjectedCount(class) == 0 {
		t.Fatalf("%v: no %v faults injected — test exercised nothing", m, class)
	}
	if rel := trueRelResidual(f, x); rel > 1e-10 {
		t.Fatalf("%v under %v: recovered solve residual %g exceeds tolerance 1e-10", m, class, rel)
	}
	return res
}

func TestStragglerRecovery(t *testing.T) {
	for _, m := range []Method{MethodPCSI, MethodChronGear} {
		res := chaosCase(t, m,
			faults.Plan{Seed: 11, StragglerProb: 0.05, StragglerDelay: 2e-3}, faults.Straggler, 0)
		// Stragglers delay clocks but break nothing: no recovery actions.
		if res.Recovery.Restores != 0 || res.Recovery.ReduceRetries != 0 {
			t.Fatalf("%v: stragglers triggered recovery: %+v", m, res.Recovery)
		}
		// The injected delay must show up on the virtual clock.
		if res.Stats.MaxClock <= 0 {
			t.Fatalf("%v: straggler delays left the virtual clock at zero", m)
		}
	}
}

func TestReduceFailRecovery(t *testing.T) {
	for _, m := range []Method{MethodPCSI, MethodChronGear} {
		res := chaosCase(t, m, faults.Plan{Seed: 7, ReduceFailProb: 0.2}, faults.ReduceFail, 0)
		if res.Recovery.ReduceRetries == 0 {
			t.Fatalf("%v: reduce failures injected but no retries recorded", m)
		}
	}
}

func TestHaloDropRecovery(t *testing.T) {
	// Drop rates are per rank per exchange phase (32 draws/iteration on the
	// 16-rank test decomposition), so these model occasional message loss,
	// not a dead link. Stationary P-CSI damps the resulting state errors and
	// tolerates a much higher rate than ChronGear, whose recursive residual
	// goes quietly stale after every drop and relies on the stagnation
	// tripwire and confirm-on-converge check to recover.
	for _, tc := range []struct {
		m    Method
		prob float64
	}{{MethodPCSI, 0.02}, {MethodChronGear, 1e-3}} {
		chaosCase(t, tc.m, faults.Plan{Seed: 3, HaloDropProb: tc.prob}, faults.HaloDrop, 200)
	}
}

func TestHaloCorruptRecovery(t *testing.T) {
	// Every corruption plants a NaN that reaches the residual within one
	// check interval, so each incident costs one checkpoint restore — the
	// budget must cover the expected incident count over the solve.
	for _, m := range []Method{MethodPCSI, MethodChronGear} {
		res := chaosCase(t, m, faults.Plan{Seed: 5, HaloCorruptProb: 1e-3}, faults.HaloCorrupt, 200)
		if res.Recovery.Restores == 0 && res.Recovery.Reconverges == 0 {
			t.Fatalf("%v: corruption injected but no rollback or reconverge recorded: %+v",
				m, res.Recovery)
		}
	}
}

func TestRankCrashRecovery(t *testing.T) {
	for _, m := range []Method{MethodPCSI, MethodChronGear} {
		res := chaosCase(t, m, faults.Plan{Seed: 9, CrashProb: 0.01}, faults.RankCrash, 200)
		if res.Recovery.Restores == 0 {
			t.Fatalf("%v: crashes injected but no checkpoint restores recorded", m)
		}
	}
}

// Exhausting the recovery budget must surrender with a typed ErrFaulted
// carrying the recovery counts.
func TestRecoveryBudgetExhaustionFaults(t *testing.T) {
	f := testFixture(t)
	f.w.Faults = faults.New(faults.Plan{Seed: 2, CrashProb: 0.9}, nil)
	s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-10, MaxIters: 2000, MaxRecoveries: 2})
	_, _, err := s.SolveContext(context.Background(), MethodPCSI, f.b, nil)
	if !errors.Is(err, ErrFaulted) {
		t.Fatalf("crash storm returned %v, want ErrFaulted", err)
	}
	var fe *FaultedError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v does not carry *FaultedError", err)
	}
	if fe.Restores == 0 {
		t.Fatalf("FaultedError reports no restores: %+v", fe)
	}
}

// MaxRecoveries < 0 disables the resilience machinery even under an active
// injector: the legacy NaN tripwire path runs instead.
func TestNegativeMaxRecoveriesDisables(t *testing.T) {
	f := testFixture(t)
	f.w.Faults = faults.New(faults.Plan{Seed: 2, CrashProb: 0.9}, nil)
	s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-10, MaxIters: 200, MaxRecoveries: -1})
	res, _, err := s.SolveContext(context.Background(), MethodPCSI, f.b, nil)
	if errors.Is(err, ErrFaulted) {
		t.Fatal("disabled resilience still surrendered with ErrFaulted")
	}
	if res.Recovery.Restores != 0 {
		t.Fatalf("disabled resilience still restored: %+v", res.Recovery)
	}
}

// The degraded-mode ladder, rung 1: a corrupted Chebyshev interval makes
// P-CSI diverge; SolveResilient re-estimates the eigenvalue bounds and the
// retry converges.
func TestLadderReEstimatesEigenvalues(t *testing.T) {
	f := testFixture(t)
	inj := faults.New(faults.Plan{Seed: 1, HaloDropProb: 1e-12}, nil) // active, ~never fires
	f.w.Faults = inj
	s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-10, MaxIters: 3000})
	if err := s.Setup(); err != nil {
		t.Fatal(err)
	}
	s.Nu, s.Mu = 1e-9, 2e-9 // nonsense interval: P-CSI will diverge
	res, x, err := s.SolveResilient(context.Background(), MethodPCSI, f.b, nil)
	if err != nil || !res.Converged {
		t.Fatalf("ladder failed: err=%v converged=%v", err, res.Converged)
	}
	if res.Recovery.Degraded != "re-eig" {
		t.Fatalf("Degraded = %q, want re-eig", res.Recovery.Degraded)
	}
	if rel := trueRelResidual(f, x); rel > 1e-10 {
		t.Fatalf("re-eig result residual %g exceeds tolerance", rel)
	}
	if inj.Recoveries()["re-eig"] != 1 {
		t.Fatalf("re-eig recovery not counted: %v", inj.Recoveries())
	}
}

// The degraded-mode ladder, rung 2: when the re-estimated bounds are also
// useless (sabotaged safety factors), P-CSI falls back to ChronGear.
func TestLadderFallsBackToChronGear(t *testing.T) {
	f := testFixture(t)
	inj := faults.New(faults.Plan{Seed: 1, HaloDropProb: 1e-12}, nil)
	f.w.Faults = inj
	s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-10, MaxIters: 3000,
		EigSafetyLow: 1e-6, EigSafetyHigh: 2e-6}) // re-estimation lands on garbage too
	if err := s.Setup(); err != nil {
		t.Fatal(err)
	}
	s.Nu, s.Mu = 1e-9, 2e-9
	res, x, err := s.SolveResilient(context.Background(), MethodPCSI, f.b, nil)
	if err != nil || !res.Converged {
		t.Fatalf("ladder failed: err=%v converged=%v", err, res.Converged)
	}
	if res.Recovery.Degraded != "chrongear" {
		t.Fatalf("Degraded = %q, want chrongear", res.Recovery.Degraded)
	}
	if res.Solver != "chrongear" {
		t.Fatalf("Solver = %q, want chrongear", res.Solver)
	}
	if rel := trueRelResidual(f, x); rel > 1e-10 {
		t.Fatalf("chrongear fallback residual %g exceeds tolerance", rel)
	}
	if inj.Recoveries()["chrongear"] != 1 {
		t.Fatalf("chrongear recovery not counted: %v", inj.Recoveries())
	}
}

// Chaos schedules replay: the same plan yields the same recovery counts and
// the same residual history, bit for bit.
func TestChaosRunsDeterministic(t *testing.T) {
	run := func() (Result, []uint64) {
		f := testFixture(t)
		f.w.Faults = faults.New(faults.Plan{Seed: 21, HaloCorruptProb: 1e-4,
			ReduceFailProb: 0.05, CrashProb: 0.002}, nil)
		s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-10, MaxIters: 4000,
			MaxRecoveries: 200})
		res, _, err := s.SolveContext(context.Background(), MethodPCSI, f.b, nil)
		if err != nil {
			t.Fatal(err)
		}
		hist := make([]uint64, 0, len(res.Trace.Residuals))
		for _, rp := range res.Trace.Residuals {
			hist = append(hist, math.Float64bits(rp.RelResidual))
		}
		return res, hist
	}
	resA, hA := run()
	resB, hB := run()
	if resA.Recovery != resB.Recovery {
		t.Fatalf("recovery counts differ across identical chaos runs: %+v vs %+v",
			resA.Recovery, resB.Recovery)
	}
	if len(hA) != len(hB) {
		t.Fatalf("history lengths differ: %d vs %d", len(hA), len(hB))
	}
	for i := range hA {
		if hA[i] != hB[i] {
			t.Fatalf("chaos residual history diverges at check %d", i)
		}
	}
}
