package core

import "testing"

// TestSpellingTablesMatchParsers pins the exported name lists to the
// parsers they describe: every listed spelling parses, the empty string
// selects the first (default) entry, and every defined enum value's
// canonical String() form appears in its list — so the accepted-value
// lists the api package surfaces in 400 bodies stay exhaustive.
func TestSpellingTablesMatchParsers(t *testing.T) {
	t.Run("method", func(t *testing.T) {
		names := MethodNames()
		for _, n := range names {
			if m, err := ParseMethod(n); err != nil || !m.Valid() {
				t.Errorf("MethodNames entry %q does not parse: %v, %v", n, m, err)
			}
		}
		if def, err := ParseMethod(""); err != nil || def.String() != names[0] {
			t.Errorf("default method %v is not the first listed spelling %q", def, names[0])
		}
		for m := MethodChronGear; m.Valid(); m++ {
			if !containsName(names, m.String()) {
				t.Errorf("method %v canonical spelling %q missing from MethodNames", m, m.String())
			}
		}
	})
	t.Run("precond", func(t *testing.T) {
		names := PrecondNames()
		for _, n := range names {
			if p, err := ParsePrecond(n); err != nil || !p.Valid() {
				t.Errorf("PrecondNames entry %q does not parse: %v, %v", n, p, err)
			}
		}
		if def, err := ParsePrecond(""); err != nil || def.String() != names[0] {
			t.Errorf("default precond %v is not the first listed spelling %q", def, names[0])
		}
		for p := PrecondType(0); p.Valid(); p++ {
			if !containsName(names, p.String()) {
				t.Errorf("precond %v canonical spelling %q missing from PrecondNames", p, p.String())
			}
		}
	})
	t.Run("precision", func(t *testing.T) {
		names := PrecisionNames()
		for _, n := range names {
			if p, err := ParsePrecision(n); err != nil || !p.Valid() {
				t.Errorf("PrecisionNames entry %q does not parse: %v, %v", n, p, err)
			}
		}
		if def, err := ParsePrecision(""); err != nil || def.String() != names[0] {
			t.Errorf("default precision %v is not the first listed spelling %q", def, names[0])
		}
		for _, p := range []Precision{Float64, Float32} {
			if !containsName(names, p.String()) {
				t.Errorf("precision %v canonical spelling %q missing from PrecisionNames", p, p.String())
			}
		}
	})
}

func containsName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
