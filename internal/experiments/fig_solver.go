package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/stencil"
)

// Fig03 is Figure 3: the effect of the number of Lanczos steps on the
// number of P-CSI iterations (1° grid, diagonal preconditioner). Few steps
// give poor extreme-eigenvalue estimates and slow Chebyshev convergence;
// past a handful of steps the iteration count flattens at its optimum —
// which is why the ε = 0.15 stopping tolerance is enough.
func (c *Config) Fig03() (*Table, error) {
	g := c.gridFor("1deg")
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(c.tauFor("1deg")))
	b := syntheticRHS(g, op)
	bx, by, _, err := decomp.ChooseBlocking(g, c.CoreTargets("1deg")[2], 3, 2)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 3: Lanczos steps vs P-CSI iterations, 1deg, diagonal",
		Header: []string{"lanczos_steps", "nu", "mu", "pcsi_iterations", "converged"},
	}
	run := func(steps int) (core.Result, float64, float64, int, error) {
		d, err := decomp.New(g, bx, by, decomp.DefaultHalo)
		if err != nil {
			return core.Result{}, 0, 0, 0, err
		}
		d.AssignOnePerRank()
		w, err := comm.NewWorld(d, c.Machine)
		if err != nil {
			return core.Result{}, 0, 0, 0, err
		}
		sess, err := core.NewSession(g, op, d, w, core.Options{Precond: core.PrecondDiagonal})
		if err != nil {
			return core.Result{}, 0, 0, 0, err
		}
		nu, mu, got, err := sess.EstimateEigenvalues(nil, steps)
		if err != nil {
			return core.Result{}, 0, 0, 0, err
		}
		res, _, err := sess.SolvePCSI(b, make([]float64, g.N()))
		return res, nu, mu, got, err
	}
	for _, steps := range []int{2, 3, 4, 6, 8, 12, 20, 30} {
		res, nu, mu, got, err := run(steps)
		if err != nil {
			return nil, fmt.Errorf("fig3 steps=%d: %w", steps, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(got), fmt.Sprintf("%.4g", nu), fmt.Sprintf("%.4g", mu),
			fmt.Sprint(res.Iterations), fmt.Sprint(res.Converged),
		})
		c.logf("fig3 steps=%d iters=%d", got, res.Iterations)
	}
	// The adaptive (ε = 0.15) choice for reference.
	res, nu, mu, got, err := run(0)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d(eps=0.15)", got), fmt.Sprintf("%.4g", nu), fmt.Sprintf("%.4g", mu),
		fmt.Sprint(res.Iterations), fmt.Sprint(res.Converged),
	})
	return t, nil
}

// Fig06 is Figure 6: average solver iteration counts for the four
// solver/preconditioner configurations at 1° and 0.1°. The expected shape:
// block-EVP cuts iterations to roughly a third for both solvers at both
// resolutions, P-CSI needs more iterations than ChronGear, and the 0.1°
// grid (being closer to isotropic) needs fewer iterations than 1°.
func (c *Config) Fig06() (*Table, error) {
	t := &Table{
		Title:  "Fig 6: average iterations per solve",
		Header: []string{"config", "1deg", "0.1deg"},
	}
	configs := append([]SolverConfig{{"pcg", core.PrecondDiagonal}}, PaperConfigs...)
	cols := make(map[SolverConfig][2]int)
	for resIdx, res := range []string{"1deg", "0.1deg"} {
		target := c.CoreTargets(res)[1]
		// The four paper configurations come from the (cached) sweep; only
		// the PCG baseline needs a dedicated measurement.
		ms, err := c.Sweep(res)
		if err != nil {
			return nil, err
		}
		for _, sc := range PaperConfigs {
			v := cols[sc]
			v[resIdx] = find(ms, sc, target).Iterations
			cols[sc] = v
		}
		g := c.gridFor(res)
		op := stencil.Assemble(g, stencil.PhiFromTimeStep(c.tauFor(res)))
		b := syntheticRHS(g, op)
		m, err := c.measure(res, g, op, b, target, SolverConfig{"pcg", core.PrecondDiagonal})
		if err != nil {
			return nil, fmt.Errorf("fig6 %s pcg: %w", res, err)
		}
		v := cols[SolverConfig{"pcg", core.PrecondDiagonal}]
		v[resIdx] = m.Iterations
		cols[SolverConfig{"pcg", core.PrecondDiagonal}] = v
	}
	for _, sc := range configs {
		v := cols[sc]
		t.Rows = append(t.Rows, []string{sc.String(), fmt.Sprint(v[0]), fmt.Sprint(v[1])})
	}
	return t, nil
}

// EVPSetupCost quantifies §4.3's claim that EVP preprocessing costs less
// than one solver call (an extra supporting table, not a numbered figure).
func (c *Config) EVPSetupCost(res string, target int) (*Table, error) {
	g := c.gridFor(res)
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(c.tauFor(res)))
	b := syntheticRHS(g, op)
	m, err := c.measure(res, g, op, b, target, SolverConfig{"pcsi", core.PrecondEVP})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("EVP setup cost vs one solve, %s @ %d cores", res, m.Cores),
		Header: []string{"evp_setup_s", "lanczos_s", "one_solve_s", "setup/solve"},
		Rows: [][]string{{
			fmt.Sprintf("%.4g", m.SetupTime),
			fmt.Sprintf("%.4g", m.EigTime),
			fmt.Sprintf("%.4g", m.SolveTime),
			fmt.Sprintf("%.2f", m.SetupTime/m.SolveTime),
		}},
	}
	return t, nil
}
