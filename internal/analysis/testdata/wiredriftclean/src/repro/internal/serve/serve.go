// Package serve is a pool-key stand-in whose normalizer covers every Key
// field (through the exported wrapper and the internal fold).
package serve

// Key identifies one warmed session pool.
type Key struct {
	// Grid names the preset.
	Grid string
	// Method names the solver.
	Method string
	// SStep is the block size.
	SStep int
}

// Request is the internal solve request.
type Request struct {
	// Grid names the preset.
	Grid string
	// Method names the solver.
	Method string
	// SStep is the block size.
	SStep int
	// B is the right-hand side.
	B []float64
	// X0 is the initial guess.
	X0 []float64
}

// NormalizeRequest folds req into its pool key.
func NormalizeRequest(req *Request) Key {
	return normalize(req)
}

// normalize is the internal fold.
func normalize(req *Request) Key {
	return Key{Grid: req.Grid, Method: req.Method, SStep: req.SStep}
}
