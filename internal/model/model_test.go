package model

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

func smallConfig() Config {
	spec := grid.TestSpec()
	spec.Nx, spec.Ny = 48, 36
	spec.Name = "model-test"
	return Config{
		Grid:       grid.Generate(spec),
		Dt:         2400,
		NZ:         3,
		Solver:     SolverChronGear,
		SolverOpts: core.Options{Precond: core.PrecondDiagonal},
	}
}

func TestModelStepsStable(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(50); err != nil {
		t.Fatal(err)
	}
	for k, ocean := range m.G.Mask {
		if !ocean {
			if m.U[k] != 0 || m.Eta[k] != 0 {
				t.Fatalf("land point %d has nonzero state", k)
			}
			continue
		}
		if math.IsNaN(m.Eta[k]) || math.Abs(m.Eta[k]) > 50 {
			t.Fatalf("SSH blew up at %d: %v", k, m.Eta[k])
		}
		if math.Abs(m.U[k]) > 10 || math.Abs(m.V[k]) > 10 {
			t.Fatalf("velocity blew up at %d: (%v, %v)", k, m.U[k], m.V[k])
		}
		for l := range m.Temp {
			if m.Temp[l][k] < -5 || m.Temp[l][k] > 40 {
				t.Fatalf("temperature out of range at layer %d point %d: %v", l, k, m.Temp[l][k])
			}
		}
	}
	if len(m.IterHistory) != 50 {
		t.Fatalf("iteration history %d entries, want 50", len(m.IterHistory))
	}
}

func TestWindSpinsUpCirculation(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ke := m.KineticEnergy(); ke != 0 {
		t.Fatalf("initial KE %v, want 0", ke)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if ke := m.KineticEnergy(); ke <= 0 {
		t.Fatalf("wind produced no circulation: KE=%v", ke)
	}
}

func TestMeanSSHConserved(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(60); err != nil {
		t.Fatal(err)
	}
	// Flux-form continuity conserves volume up to solver tolerance; the
	// scale of η excursions is O(0.1 m), so the mean must be far smaller.
	if mean := math.Abs(m.MeanSSH()); mean > 1e-6 {
		t.Fatalf("mean SSH drifted to %v", mean)
	}
}

func TestDeterministicRestartFreeRuns(t *testing.T) {
	run := func() float64 {
		m, err := New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(30); err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range m.Eta {
			sum += v
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("model runs not bitwise reproducible: %v vs %v", a, b)
	}
}

func TestSolverChoiceAgreesClosely(t *testing.T) {
	// Two models differing only in solver should stay close over a short
	// run (they diverge chaotically over long ones — that's §6's point).
	cfgA := smallConfig()
	mA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := smallConfig()
	cfgB.Solver = SolverPCSI
	cfgB.SolverOpts = core.Options{Precond: core.PrecondEVP}
	mB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := mA.Run(20); err != nil {
		t.Fatal(err)
	}
	if err := mB.Run(20); err != nil {
		t.Fatal(err)
	}
	var maxD float64
	for k := range mA.Eta {
		if d := math.Abs(mA.Eta[k] - mB.Eta[k]); d > maxD {
			maxD = d
		}
	}
	if maxD > 1e-8 {
		t.Fatalf("solver choice changed short-run SSH by %v", maxD)
	}
	if maxD == 0 {
		t.Fatal("different solvers bitwise identical — suspicious (tolerance should leave round-off differences)")
	}
}

func TestPerturbationSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	cfg.TempPerturb = 1e-14
	cfg.PerturbSeed = 1
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PerturbSeed = 2
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for k := range a.Temp[0] {
		if a.Temp[0][k] != b.Temp[0][k] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("perturbation seeds produced identical initial temperature")
	}
}

func TestPerturbationsPersist(t *testing.T) {
	// On coarse test grids the circulation is a steady attractor, so twin
	// trajectories neither explode nor collapse: O(1e−14) temperature
	// differences must persist on the slow dissipative timescale. (The §6
	// envelope methodology then works because solver round-off is
	// re-injected every step while this background decays slowly.)
	base, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(300); err != nil {
		t.Fatal(err)
	}
	a, err := base.Fork(base.Cfg.Solver, base.Cfg.SolverOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Fork(base.Cfg.Solver, base.Cfg.SolverOpts)
	if err != nil {
		t.Fatal(err)
	}
	a.PerturbTemperature(1e-14, 1)
	b.PerturbTemperature(1e-14, 2)
	rms := func() float64 {
		var s float64
		n := 0
		for k, ocean := range a.G.Mask {
			if ocean {
				d := a.Temp[0][k] - b.Temp[0][k]
				s += d * d
				n++
			}
		}
		return math.Sqrt(s / float64(n))
	}
	initial := rms()
	if err := a.Run(400); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(400); err != nil {
		t.Fatal(err)
	}
	final := rms()
	if final < initial/100 {
		t.Fatalf("perturbations collapsed: %g → %g", initial, final)
	}
	if final > 1e-9 {
		t.Fatalf("perturbations exploded: %g → %g", initial, final)
	}
}

func TestBadSolverName(t *testing.T) {
	cfg := smallConfig()
	cfg.Solver = "magic"
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err == nil {
		t.Fatal("accepted unknown solver name")
	}
}

func TestNilGrid(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("accepted nil grid")
	}
}

func TestDistributedModelMatchesSerial(t *testing.T) {
	cfgA := smallConfig()
	mA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := smallConfig()
	cfgB.BlockNx, cfgB.BlockNy = 12, 12
	mB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := mA.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := mB.Run(10); err != nil {
		t.Fatal(err)
	}
	var maxD float64
	for k := range mA.Eta {
		if d := math.Abs(mA.Eta[k] - mB.Eta[k]); d > maxD {
			maxD = d
		}
	}
	if maxD > 1e-9 {
		t.Fatalf("decomposition changed the model by %v", maxD)
	}
}

func TestCheckpointRestartBitwise(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(40); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(25); err != nil {
		t.Fatal(err)
	}

	m2, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.StepCount != 40 {
		t.Fatalf("restored step count %d, want 40", m2.StepCount)
	}
	if err := m2.Run(25); err != nil {
		t.Fatal(err)
	}
	for k := range m.Eta {
		if m.Eta[k] != m2.Eta[k] {
			t.Fatalf("restart not bitwise identical at %d: %v vs %v", k, m.Eta[k], m2.Eta[k])
		}
	}
	for l := range m.Temp {
		for k := range m.Temp[l] {
			if m.Temp[l][k] != m2.Temp[l][k] {
				t.Fatalf("restart temperature differs at layer %d point %d", l, k)
			}
		}
	}
}

func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := smallConfig()
	other.NZ = 4
	m2, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(&buf); err == nil {
		t.Fatal("restore accepted a checkpoint with a different layer count")
	}
	spec := grid.TestSpec()
	spec.Nx, spec.Ny = 32, 24
	spec.Name = "other-grid"
	cfg := smallConfig()
	cfg.Grid = grid.Generate(spec)
	m3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m3.Restore(&buf); err == nil {
		t.Fatal("restore accepted a checkpoint from a different grid")
	}
}
