package core

import (
	"math"

	"repro/internal/comm"
)

// Composable solver stages. Every Krylov solver in this package is built
// from the same handful of per-iteration phases — compute the residual,
// apply the preconditioner, refresh halos and apply the operator, take
// masked inner products — and this file factors them into shared stage
// helpers so chrongear/pcg/pipecg/pcsi/sstep assemble the identical
// kernels instead of repeating them. Each helper preserves the exact
// arithmetic order and flop accounting of the inlined code it replaced, so
// the refactor is invisible to the golden bitwise traces: identical
// per-scalar accumulation order, identical collective sequence, identical
// flop totals between collectives.
//
// Every helper takes the whole *comm.Rank handle, which is the
// collectivelockstep analyzer's trusted-helper idiom: the helper's own body
// is analyzed for lockstep violations instead of its results being treated
// as rank-local taint.
//
// The s-step solver adds two stages with no single-vector counterpart: the
// Chebyshev basis build (see sstep.go) and the Gram-system assembly whose
// small dense factorization lives in the cholFactor/cholSolve helpers
// below.

// stageInitResidual computes r = b − A·x blockwise (x must carry valid
// ring-1 halos, as it does immediately after scatterMasked) and returns the
// rank's local ‖b‖² contribution for the b-norm reduction.
func stageInitResidual(r *comm.Rank, rs *rankState, rr, bs, xs [][]float64) float64 {
	var bn2 float64
	for i := range rs.locs {
		residual(rs.locs[i], rr[i], bs[i], xs[i])
		r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
		bn2 += rs.locs[i].MaskedDotInterior(bs[i], bs[i])
		r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
	}
	return bn2
}

// stagePrecond applies dst = M⁻¹·src blockwise.
func stagePrecond(r *comm.Rank, rs *rankState, dst, src [][]float64) {
	for i := range rs.locs {
		rs.pre[i].Apply(dst[i], src[i])
		r.AddFlops(rs.pre[i].ApplyFlops())
	}
}

// stageMatvec refreshes src's halos and applies the operator: dst = A·src.
func stageMatvec(r *comm.Rank, rs *rankState, dst, src [][]float64) {
	r.Exchange(src)
	for i := range rs.locs {
		rs.locs[i].Apply(dst[i], src[i])
		r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
	}
}

// stageFusedMatvecDot refreshes src's halos and applies the operator fused
// with the inner product: dst = A·src, returning the rank's local ⟨src, dst⟩
// contribution (one pass over the operands instead of a matvec followed by
// a dot).
func stageFusedMatvecDot(r *comm.Rank, rs *rankState, dst, src [][]float64) float64 {
	r.Exchange(src)
	var d float64
	for i := range rs.locs {
		d += rs.locs[i].ApplyAndMaskedDot(dst[i], src[i])
		r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
		r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
	}
	return d
}

// stageDot returns the rank's local masked inner product ⟨a, b⟩.
func stageDot(r *comm.Rank, rs *rankState, a, b [][]float64) float64 {
	var d float64
	for i := range rs.locs {
		d += rs.locs[i].MaskedDotInterior(a[i], b[i])
		r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
	}
	return d
}

// zeroSolutionExit writes the exact x = 0 answer of a zero right-hand side
// into the rank's blocks and gathers it (the ‖b‖ = 0 early exit every
// solver shares).
func (s *Session) zeroSolutionExit(r *comm.Rank, out []float64, xs [][]float64) {
	for i, blk := range r.Blocks {
		for k := range xs[i] {
			xs[i][k] = 0
		}
		s.D.GatherInto(out, xs[i], blk)
	}
}

// gatherSolution assembles the rank's blocks of the iterate into the global
// output buffer (the end-of-solve stage every solver shares).
func (s *Session) gatherSolution(r *comm.Rank, out []float64, xs [][]float64) {
	for i, blk := range r.Blocks {
		s.D.GatherInto(out, xs[i], blk)
	}
}

// Small dense symmetric-positive-definite helpers for the s-step Gram
// systems (order ≤ MaxSStep, so n² ≤ 256 doubles — rank-local arithmetic on
// reduced values, identical on every rank by construction).

// cholFactor overwrites the lower triangle of the n×n row-major matrix a
// with its Cholesky factor L (a = L·Lᵀ) and reports whether every pivot was
// strictly positive. A non-positive pivot means the Gram matrix lost
// positive definiteness (a degenerate or converged basis); callers restart
// the block recurrence rather than divide by it.
func cholFactor(a []float64, n int) bool {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if !(d > 0) { // also catches NaN
			return false
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			v := a[i*n+j]
			for k := 0; k < j; k++ {
				v -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = v / d
		}
	}
	return true
}

// cholSolve solves L·Lᵀ·x = b in place on x = b, where l holds the factor
// produced by cholFactor in its lower triangle.
func cholSolve(l []float64, n int, x []float64) {
	for i := 0; i < n; i++ {
		v := x[i]
		for k := 0; k < i; k++ {
			v -= l[i*n+k] * x[k]
		}
		x[i] = v / l[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		v := x[i]
		for k := i + 1; k < n; k++ {
			v -= l[k*n+i] * x[k]
		}
		x[i] = v / l[i*n+i]
	}
}
