package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
)

// ServePprof starts the net/http/pprof debug server on addr (e.g.
// ":6060") in a background goroutine; an empty addr is a no-op. The
// server lives for the process — CLI runs exit rather than shut it down.
func ServePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "obs: pprof server on %s: %v\n", addr, err)
		}
	}()
}

// DumpTrace writes the tracer's retained events as JSONL to path.
// A nil tracer or empty path is a no-op.
func DumpTrace(t *Tracer, path string) error {
	if t == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DumpMetrics writes the registry in Prometheus text exposition to path.
// A nil registry or empty path is a no-op.
func DumpMetrics(r *Registry, path string) error {
	if r == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
