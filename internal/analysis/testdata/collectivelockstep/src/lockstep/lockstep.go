// Package lockstep exercises the collectivelockstep analyzer: collectives
// guarded by rank-local conditions are diagnosed; conditions derived from
// reductions, lockstep accessors, world config, or trusted helpers are not.
package lockstep

import "repro/internal/comm"

func badIDGuard(r *comm.Rank) {
	if r.ID == 0 {
		r.Barrier() // want `guarded by rank-local condition`
	}
}

func badDerivedBound(r *comm.Rank, fields [][]float64) {
	nb := len(r.Blocks)
	for i := 0; i < nb; i++ {
		r.Exchange(fields) // want `guarded by rank-local condition`
	}
}

func badClockGuard(r *comm.Rank, payload []float64) {
	if r.Clock() > 10 {
		_ = r.AllReduce(payload) // want `guarded by rank-local condition`
	}
}

func badRangeOverLocal(r *comm.Rank, fields [][]float64) {
	for range r.Blocks {
		r.Exchange(fields) // want `guarded by rank-local condition`
	}
}

func badExchange32Guard(r *comm.Rank, fields [][]float32) {
	if r.ID%2 == 0 {
		r.Exchange32(fields) // want `guarded by rank-local condition`
	}
}

func badSelect(r *comm.Rank, ch chan int) {
	select {
	case <-ch:
		r.Barrier() // want `inside select`
	default:
	}
}

func goodReducedVerdict(r *comm.Rank, payload []float64, fields [][]float64) {
	g := r.AllReduce(payload)
	if g[0] > 0 { // reduced value: identical on every rank
		r.Exchange(fields)
	}
	for r.ReduceFailed() { // lockstep accessor
		g = r.AllReduce(payload)
	}
	if r.World.NRank > 1 { // shared world config
		r.Barrier()
	}
	_ = g
}

func goodTrustedHelper(r *comm.Rank, payload []float64) {
	g, ok := reduceHelper(r, payload)
	if ok { // helper got the bare rank handle: its results are lockstep
		r.Barrier()
	}
	_ = g
}

func reduceHelper(r *comm.Rank, payload []float64) ([]float64, bool) {
	g := r.AllReduce(payload)
	return g, g[0] > 0
}

// goodGramRestart mirrors the s-step solver's restart decision: the block
// Gram system comes back from one reduction, so a pivot-failure verdict
// computed from it is identical on every rank and may gate the next
// block's collectives.
func goodGramRestart(r *comm.Rank, gram []float64, fields [][]float64) {
	g := r.AllReduce(gram)
	restart := g[0] <= 0 // reduced Gram pivot: lockstep on every rank
	if restart {
		r.Exchange(fields)
	}
	_ = g
}

// badGramRestart is the broken variant: deriving the pivot guard from the
// rank's own clock makes the restart decision rank-local, so ranks would
// disagree about whether the Exchange happens.
func badGramRestart(r *comm.Rank, gram []float64, fields [][]float64) {
	g := r.AllReduce(gram)
	if g[0] <= r.Clock() { // rank-local clock poisons the verdict
		r.Exchange(fields) // want `guarded by rank-local condition`
	}
}

func goodFixedBound(r *comm.Rank, payload []float64, iters int) {
	for k := 0; k < iters; k++ { // caller-shared bound
		_ = r.AllReduce(payload)
	}
}

func suppressed(r *comm.Rank) {
	if r.ID == 0 {
		//poplint:ignore collectivelockstep single-rank diagnostic path exercised by the harness
		r.Barrier()
	}
}

// rankOwnID leaks rank-local data through a helper return: v1's
// trusted-helper rule let this slip because the helper takes the bare
// handle; the interprocedural summary follows the return value.
func rankOwnID(r *comm.Rank) int {
	return r.ID
}

func badHelperLeak(r *comm.Rank, payload []float64) {
	if rankOwnID(r) == 0 {
		r.Barrier() // want `guarded by rank-local condition`
	}
}

// passThrough propagates whatever taint its argument carries.
func passThrough(x int) int {
	return x + 1
}

func badArgTaint(r *comm.Rank, payload []float64) {
	if passThrough(r.ID) > 0 {
		_ = r.AllReduce(payload) // want `guarded by rank-local condition`
	}
}

func goodArgClean(r *comm.Rank, payload []float64, iters int) {
	if passThrough(iters) > 0 { // caller-shared argument stays clean
		_ = r.AllReduce(payload)
	}
}

// worldSize derives from shared world config only — its summary is clean
// even though it takes the rank handle.
func worldSize(r *comm.Rank) int {
	return r.World.NRank
}

func goodHelperClean(r *comm.Rank, fields [][]float64) {
	if worldSize(r) > 1 {
		r.Exchange(fields)
	}
}
