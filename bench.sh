#!/bin/sh
# bench.sh — run the kernel-level microbenchmarks (stencil apply, halo
# exchange, global reductions, steady-state solves) and the multi-core
# scaling matrix (worker shards × precision), with allocation reporting,
# and distill the results into BENCH_kernels.json so allocation or
# wall-clock regressions in the zero-allocation steady-state machinery
# are visible as a diff.
#
# Usage: ./bench.sh [count]   (count = benchmark repetitions, default 3)
set -eu

cd "$(dirname "$0")"
count=${1:-3}
out=BENCH_kernels.json
raw=$(mktemp)
trap 'rm -rf "$raw"' EXIT

echo "== kernel benchmarks (-benchmem, count=$count) =="
go test -run '^$' \
    -bench 'BenchmarkStencilApply|BenchmarkHaloExchange|BenchmarkAllReduce64Ranks|BenchmarkReduce$|BenchmarkSolveSteadyState|BenchmarkSolveScaling' \
    -benchmem -benchtime=200ms -count="$count" . | tee "$raw"

go_version=$(go env GOVERSION)
python3 - "$raw" "$count" "$go_version" > "$out" <<'EOF'
import json, os, re, sys

# Lines look like:
#   BenchmarkHaloExchange   	    1234	     19876 ns/op	    4528 B/op	      68 allocs/op
pat = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+[\d.]+ MB/s)?"
    r"(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?")
runs = {}
for line in open(sys.argv[1]):
    m = pat.match(line)
    if not m:
        continue
    runs.setdefault(m.group(1), []).append({
        "ns_per_op": float(m.group(3)),
        "bytes_per_op": float(m.group(4)) if m.group(4) else None,
        "allocs_per_op": float(m.group(5)) if m.group(5) else None,
    })

bench = {}
for name, rs in sorted(runs.items()):
    ns = sorted(r["ns_per_op"] for r in rs)
    bench[name] = {
        "ns_per_op_median": ns[len(ns) // 2],
        "ns_per_op_min": ns[0],
        "bytes_per_op": rs[0]["bytes_per_op"],
        "allocs_per_op": rs[0]["allocs_per_op"],
        "runs": len(rs),
    }

# Hardware header: wall-clock numbers are only comparable between runs
# with equal hardware, so every report records its execution context.
ncpu = os.cpu_count() or 1
gomaxprocs = int(os.environ.get("GOMAXPROCS", ncpu))
hardware = {"go_version": sys.argv[3], "gomaxprocs": gomaxprocs,
            "num_cpu": ncpu, "worker_shards": gomaxprocs}

# Scaling section: the BenchmarkSolveScaling/<prec>/threads=<n> matrix
# distilled into per-precision curves plus derived speedups. The solves
# are fixed-length (60 iterations), so ns ratios are clean.
scaling = {}
for prec in ("fp64", "fp32"):
    curve = {}
    for n in (1, 2, 4, 8):
        e = bench.get(f"BenchmarkSolveScaling/{prec}/threads={n}")
        if e:
            curve[str(n)] = e["ns_per_op_median"]
    if curve:
        scaling[prec] = curve
if scaling:
    s = {"curves_ns": scaling}
    fp64 = scaling.get("fp64", {})
    if "1" in fp64 and "4" in fp64:
        s["fp64_speedup_4_workers"] = fp64["1"] / fp64["4"]
    if "1" in scaling.get("fp32", {}) and "1" in fp64:
        s["fp32_over_fp64_1_worker"] = scaling["fp32"]["1"] / fp64["1"]
    # The ≥2× at 4 workers acceptance gate needs 4 real cores to mean
    # anything; on smaller machines the curve is recorded, not gated.
    s["speedup_gate_active"] = ncpu >= 4 and gomaxprocs >= 4
    if s["speedup_gate_active"]:
        sp = s.get("fp64_speedup_4_workers", 0.0)
        s["speedup_gate_ok"] = sp >= 2.0
        if not s["speedup_gate_ok"]:
            print(f"bench.sh: fp64 speedup at 4 workers {sp:.2f}x below the 2x gate",
                  file=sys.stderr)
            json.dump({"benchtime": "200ms", "count": int(sys.argv[2]),
                       "hardware": hardware, "scaling": s,
                       "benchmarks": bench}, sys.stdout, indent=2)
            print()
            sys.exit(1)
    scaling_out = s
else:
    scaling_out = None

json.dump({"benchtime": "200ms", "count": int(sys.argv[2]),
           "hardware": hardware, "scaling": scaling_out,
           "benchmarks": bench}, sys.stdout, indent=2)
print()
EOF

echo "bench.sh: wrote $out"

echo "== solve service load test =="
# Closed-loop throughput + overload shedding for the concurrent solve
# service; fails if the small-grid rate drops below 200 solves/s or the
# overload phase stops shedding. Writes BENCH_serve.json alongside.
go run ./cmd/popbench -serve

echo "bench.sh: wrote BENCH_serve.json"

echo "== fleet router benchmark =="
# Fleet vs single-process baseline on one box: the cached fleet must hold
# ≥5× baseline throughput with p99 ≤ 2× the single-shard p99. The no-cache
# phase records the honest dispatch-only number; its ≥2×-at-4-workers gate
# arms only on hosts with ≥4 CPUs (mirroring the kernel scaling gate
# above) and is reported either way in BENCH_fleet.json.
go run ./cmd/popbench -fleet

echo "bench.sh: wrote BENCH_fleet.json"

echo "== s-step reduction-crossover sweep =="
# Communication-avoiding s-step CG vs ChronGear and P-CSI at the same
# tolerance: iterations, reductions per rank (gated at ceil(iters/s)+1),
# priced virtual time, and the perfmodel closed-form prediction per row.
go run ./cmd/popbench -sstep

echo "bench.sh: wrote BENCH_sstep.json"
