// Scaling: a miniature of the paper's Figure 8 — sweep virtual core counts
// on the scaled 0.1° grid and watch ChronGear's global reductions become
// the bottleneck while P-CSI stays flat.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	g, err := pop.NewGrid(pop.GridTenthDegreeScaled) // 900×600, 0.1° geography
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %q: %d×%d (scaled 0.1°)\n\n", g.Name, g.Nx, g.Ny)

	// The solve repeats dtCount times per simulated day in POP.
	const dtCount = 500
	b := syntheticRHS(g)

	fmt.Println("cores  chrongear+diag s/day  pcsi+evp s/day  speedup")
	for _, target := range []int{30, 120, 340, 1055} {
		var day [2]float64
		var cores int
		for i, spec := range []pop.SolverSpec{
			{Method: pop.MethodChronGear, Precond: pop.PrecondDiagonal},
			{Method: pop.MethodPCSI, Precond: pop.PrecondEVP},
		} {
			spec.Cores = target
			spec.MachineName = "yellowstone"
			spec.Tau = 86400.0 / dtCount
			solver, err := pop.NewSolver(g, spec)
			if err != nil {
				log.Fatal(err)
			}
			res, _, err := solver.Solve(b, nil)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Converged {
				log.Fatalf("%s did not converge", spec.Method)
			}
			day[i] = res.Stats.MaxClock * dtCount
			cores = solver.Cores
		}
		fmt.Printf("%5d  %20.2f  %14.2f  %6.2fx\n", cores, day[0], day[1], day[0]/day[1])
	}
	fmt.Println("\n(virtual Yellowstone seconds; the paper reaches 5.2x at 16,875 real cores)")
}

func syntheticRHS(g *pop.Grid) []float64 {
	op := pop.AssembleOperator(g, 86400.0/500)
	x := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			x[k] = math.Sin(g.TLon[k]/20) * math.Cos(g.TLat[k]/15)
		}
	}
	b := make([]float64, g.N())
	op.Apply(b, x)
	for k, ocean := range g.Mask {
		if !ocean {
			b[k] = 0
		}
	}
	return b
}
