package core

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/linalg"
)

// EstimateEigenvalues estimates the extreme eigenvalues of M⁻¹A — the
// bounds P-CSI's Chebyshev interval needs — with the Lanczos process
// realized through preconditioned CG (the classic CG–Lanczos connection:
// the CG step lengths α and improvement ratios β reassemble the Lanczos
// tridiagonal whose Ritz values converge to the spectrum of M⁻¹A). This is
// why the paper can say the cost of the Lanczos method is "similar to
// calling the ChronGear solver a few times" (§3).
//
// When maxSteps ≤ 0 the iteration stops adaptively: both extreme Ritz
// values must change by less than EigTol relative (the paper uses ε = 0.15),
// capped at EigMaxSteps. When maxSteps > 0 exactly that many steps run —
// the knob the Fig. 3 sweep turns. The estimates (with safety factors
// applied) are stored on the Session.
//
// b selects the Lanczos starting vector; pass nil for a deterministic
// random probe, which is the robust default — a smooth right-hand side has
// almost no weight on the lowest (spatially localized) eigenmodes, and
// Lanczos then badly overestimates λ_min.
func (s *Session) EstimateEigenvalues(b []float64, maxSteps int) (nu, mu float64, steps int, err error) {
	if err := s.Setup(); err != nil {
		return 0, 0, 0, err
	}
	if b == nil {
		b = s.eigenProbe()
	}
	o := s.Opts
	forced := maxSteps > 0
	if !forced {
		maxSteps = o.EigMaxSteps
	}

	var nSteps int
	var lastNu, lastMu float64
	var failure error
	var eigTrace []EigBound // appended by rank 0 only

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.zeroField(r, "eig.x")
		bs := s.scatterMasked(r, "eig.b", b)
		rr := s.field(r, "eig.r")
		rp := s.field(r, "eig.rp")
		zz := s.field(r, "eig.z")
		pp := s.zeroField(r, "eig.p")
		payload := make([]float64, 1)

		var bn2 float64
		for i := 0; i < nb; i++ {
			copy(rr[i], bs[i]) // x₀ = 0 ⇒ r₀ = b
			bn2 += rs.locs[i].MaskedDotInterior(bs[i], bs[i])
			r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
		}
		payload[0] = bn2
		if r.AllReduce(payload)[0] == 0 {
			if r.ID == 0 {
				failure = fmt.Errorf("core: cannot estimate eigenvalues from a zero right-hand side: %w", ErrBadSpec)
			}
			return
		}

		var aL, bL []float64 // local copies of the CG coefficients
		rhoPrev := 0.0
		alphaPrev := 0.0
		prevNu, prevMu := 0.0, 0.0
		for k := 1; k <= maxSteps; k++ {
			var rhoL float64
			for i := 0; i < nb; i++ {
				rs.pre[i].Apply(rp[i], rr[i])
				r.AddFlops(rs.pre[i].ApplyFlops())
				rhoL += rs.locs[i].MaskedDotInterior(rr[i], rp[i])
				r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
			}
			payload[0] = rhoL
			rho := r.AllReduce(payload)[0]
			if rho <= 0 {
				break // Krylov space exhausted (or M indefinite)
			}
			beta := 0.0
			if k == 1 {
				for i := 0; i < nb; i++ {
					copy(pp[i], rp[i])
				}
			} else {
				beta = rho / rhoPrev
				for i := 0; i < nb; i++ {
					xpay(rs.locs[i], pp[i], rp[i], beta)
					r.AddFlops(int64(rs.locs[i].InteriorLen()))
				}
			}
			rhoPrev = rho
			r.Exchange(pp)
			var deltaL float64
			for i := 0; i < nb; i++ {
				// z = B·p fused with δ += ⟨p, z⟩.
				deltaL += rs.locs[i].ApplyAndMaskedDot(zz[i], pp[i])
				r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
				r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
			}
			payload[0] = deltaL
			delta := r.AllReduce(payload)[0]
			if delta <= 0 {
				break
			}
			alpha := rho / delta
			for i := 0; i < nb; i++ {
				axpy(rs.locs[i], xs[i], pp[i], alpha)
				axpy(rs.locs[i], rr[i], zz[i], -alpha)
				r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
			}

			// Lanczos tridiagonal entry from the CG coefficients.
			if k == 1 {
				aL = append(aL, 1/alpha)
			} else {
				aL = append(aL, 1/alpha+beta/alphaPrev)
				bL = append(bL, math.Sqrt(beta)/alphaPrev)
			}
			alphaPrev = alpha

			tri, terr := linalg.NewSymTridiag(aL, bL)
			if terr != nil {
				break
			}
			nuK, muK := tri.ExtremeEigenvalues(0)
			conv := k > 1 && prevNu > 0 &&
				math.Abs(nuK-prevNu) <= o.EigTol*prevNu &&
				math.Abs(muK-prevMu) <= o.EigTol*prevMu
			prevNu, prevMu = nuK, muK
			if r.ID == 0 {
				lastNu, lastMu = nuK, muK
				nSteps = len(aL)
				eigTrace = append(eigTrace, EigBound{Step: len(aL), Nu: nuK, Mu: muK})
			}
			traceEigBound(r, len(aL), nuK, muK)
			if conv && !forced {
				break
			}
		}
	})
	if failure != nil {
		return 0, 0, 0, failure
	}
	if nSteps == 0 {
		return 0, 0, 0, fmt.Errorf("core: Lanczos produced no steps: %w", ErrEigEstimate)
	}
	s.Nu = lastNu * s.Opts.EigSafetyLow
	s.Mu = lastMu * s.Opts.EigSafetyHigh
	s.EigSteps = nSteps
	s.EigenStats = &st
	s.EigTrace = eigTrace
	return s.Nu, s.Mu, s.EigSteps, nil
}

// eigenProbe builds (once per session, then reuses) a deterministic
// pseudo-random masked vector whose spectral content covers every ocean
// mode. The probe depends only on the mask, which is fixed for the life of
// the session, so the cached copy is exact.
func (s *Session) eigenProbe() []float64 {
	if s.probeBuf != nil {
		return s.probeBuf
	}
	probe := make([]float64, s.G.N())
	for k, ocean := range s.Op.Mask {
		if ocean {
			x := uint64(k) + 0x9E3779B97F4A7C15
			x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
			x = (x ^ (x >> 27)) * 0x94D049BB133111EB
			x ^= x >> 31
			probe[k] = float64(x>>11)/(1<<53) - 0.5
		}
	}
	s.probeBuf = probe
	return probe
}
