package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/experiments"
)

// chaosReport is the machine-readable result of `popbench -chaos`, written
// as BENCH_chaos.json: a fault-free baseline phase followed by one
// closed-loop phase per fault class, each on a fresh service wired to a
// deterministic injector for that class alone.
type chaosReport struct {
	Name      string               `json:"name"`
	Timestamp string               `json:"timestamp"`
	Hardware  experiments.Hardware `json:"hardware"`
	Grid      string               `json:"grid"`
	Method    string               `json:"method"`
	Precond   string               `json:"precond"`
	Clients   int                  `json:"clients"`
	Baseline  chaosPhase           `json:"baseline"`
	Classes   []chaosPhase         `json:"classes"`
}

// chaosPhase is one closed-loop window. Recovered/Retried/Faulted come from
// the service counters; Injected and Recoveries from the injector. Under
// the free cost model straggler delays are virtual-clock only, so their
// wall-latency delta is expected to be ≈ 0 — the injection counts prove the
// class fired.
type chaosPhase struct {
	Class          string           `json:"class"`
	Plan           pop.FaultPlan    `json:"plan"`
	DurationSec    float64          `json:"duration_sec"`
	Solves         int64            `json:"solves"`
	Failures       int64            `json:"failures"`
	SolvesPerSec   float64          `json:"solves_per_sec"`
	RecoveryRate   float64          `json:"recovery_rate"`
	LatencyMS      latency          `json:"latency_ms"`
	AddedP50MS     float64          `json:"added_latency_p50_ms"`
	Injected       map[string]int64 `json:"injected,omitempty"`
	Recoveries     map[string]int64 `json:"recoveries,omitempty"`
	ServiceCounter pop.ServiceStats `json:"service_counters"`
}

// chaosRecoveryFloor is the acceptance gate: under each class's plan at
// least this fraction of requests must complete successfully.
const chaosRecoveryFloor = 0.95

// chaosPlans pairs each fault class with a plan calibrated for the bench
// configuration below: 4 virtual ranks on the test grid, P-CSI+EVP at the
// production tolerance (~150 iterations, ~15 convergence checks per solve).
// Probabilities are per draw site, so the per-solve expectation is the
// probability times the site count (halo: iters × 2 phases × ranks;
// reductions: one per check; crash: checks × ranks).
func chaosPlans() []struct {
	class string
	plan  pop.FaultPlan
} {
	return []struct {
		class string
		plan  pop.FaultPlan
	}{
		{"straggler", pop.FaultPlan{Seed: 101, StragglerProb: 0.05, StragglerDelay: 2e-3}},
		{"halo-drop", pop.FaultPlan{Seed: 102, HaloDropProb: 0.002}},
		{"halo-corrupt", pop.FaultPlan{Seed: 103, HaloCorruptProb: 0.001}},
		{"reduce-fail", pop.FaultPlan{Seed: 104, ReduceFailProb: 0.05}},
		{"rank-crash", pop.FaultPlan{Seed: 105, CrashProb: 0.005}},
	}
}

// runChaosBench measures the resilient serving path: what each fault class
// costs in throughput and latency, and whether recovery holds the success
// rate above the floor. The report lands in dir/BENCH_chaos.json.
func runChaosBench(dir string, seconds float64, clients int, out io.Writer) error {
	const (
		gridName = "test"
		method   = pop.MethodPCSI
		precond  = pop.PrecondEVP
	)
	g, err := pop.NewGrid(gridName)
	if err != nil {
		return err
	}
	rhs := benchRHS(g)
	req := pop.ServeRequest{Grid: gridName, Method: method, Precond: precond, B: rhs}

	run := func(class string, plan pop.FaultPlan) (chaosPhase, error) {
		var inj *pop.FaultInjector
		if plan.Active() {
			inj = pop.NewFaultInjector(plan)
		}
		svc := pop.NewService(pop.ServiceOptions{
			Cores:             4,
			MaxSessionsPerKey: 2,
			Injector:          inj,
			RetryBudget:       1,
			Solver:            pop.SolverOptions{MaxRecoveries: 200},
		})
		defer closeService(svc)
		if _, err := svc.Solve(context.Background(), req); err != nil {
			return chaosPhase{}, fmt.Errorf("chaos %s warm-up: %w", class, err)
		}

		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			lats     []float64
			solves   int64
			failures int64
		)
		deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var mine []float64
				for time.Now().Before(deadline) {
					t0 := time.Now()
					if _, err := svc.Solve(context.Background(), req); err != nil {
						atomic.AddInt64(&failures, 1)
						continue
					}
					atomic.AddInt64(&solves, 1)
					mine = append(mine, float64(time.Since(t0).Microseconds())/1e3)
				}
				mu.Lock()
				lats = append(lats, mine...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()

		ph := chaosPhase{
			Class:          class,
			Plan:           plan,
			DurationSec:    elapsed,
			Solves:         solves,
			Failures:       failures,
			SolvesPerSec:   float64(solves) / elapsed,
			LatencyMS:      percentiles(lats),
			ServiceCounter: svc.Snapshot(),
		}
		if total := solves + failures; total > 0 {
			ph.RecoveryRate = float64(solves) / float64(total)
		}
		if inj != nil {
			ph.Injected = inj.Injected()
			ph.Recoveries = inj.Recoveries()
		}
		return ph, nil
	}

	fmt.Fprintf(out, "# chaos: %d clients on %s/%s+%s, %.1fs per phase\n",
		clients, gridName, method, precond, seconds)
	rep := chaosReport{
		Name:      "chaos",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Hardware:  experiments.DetectHardware(0),
		Grid:      gridName,
		Method:    method.String(),
		Precond:   precond.String(),
		Clients:   clients,
	}
	if rep.Baseline, err = run("none", pop.FaultPlan{}); err != nil {
		return err
	}
	fmt.Fprintf(out, "# chaos: baseline %.0f solves/s, p50 %.2fms\n",
		rep.Baseline.SolvesPerSec, rep.Baseline.LatencyMS.P50)

	var failedGates []string
	for _, cp := range chaosPlans() {
		ph, err := run(cp.class, cp.plan)
		if err != nil {
			return err
		}
		ph.AddedP50MS = ph.LatencyMS.P50 - rep.Baseline.LatencyMS.P50
		rep.Classes = append(rep.Classes, ph)
		injected := int64(0)
		for _, v := range ph.Injected {
			injected += v
		}
		fmt.Fprintf(out, "# chaos: %-12s %6.0f solves/s, recovery %.3f, +p50 %+.2fms, %d injected\n",
			cp.class, ph.SolvesPerSec, ph.RecoveryRate, ph.AddedP50MS, injected)
		if injected == 0 {
			failedGates = append(failedGates, cp.class+": injected nothing")
		}
		if ph.RecoveryRate < chaosRecoveryFloor {
			failedGates = append(failedGates,
				fmt.Sprintf("%s: recovery rate %.3f below %.2f", cp.class, ph.RecoveryRate, chaosRecoveryFloor))
		}
	}

	path := filepath.Join(dir, "BENCH_chaos.json")
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "# chaos: report %s\n", path)
	if len(failedGates) > 0 {
		return errors.New("chaos: " + failedGates[0])
	}
	return nil
}
