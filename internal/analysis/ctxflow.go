package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CtxFlow reports library code that mints fresh contexts instead of
// threading the caller's: calls to context.Background()/context.TODO()
// outside package main, and functions that accept a context.Context but
// never use it.
//
// PR 3's deterministic cancellation protocol only works if the context the
// HTTP front end carries actually reaches the convergence-check reduction:
// a context.Background() minted in the middle of the call chain silently
// detaches everything below it from deadlines, cancellation, and the
// serve layer's queue-expiry accounting. Two idioms remain legal:
//
//   - nil-defaulting at an API boundary: `if ctx == nil { ctx =
//     context.Background() }` (the exported entrypoints accept nil).
//   - the stdlib's Context-suffix wrapper pattern: a function F whose body
//     immediately delegates to FContext(context.Background(), …) — the
//     documented "background entrypoint" shape (database/sql, net).
//
// Anything else is either a bug to fix or a deliberate decision to record
// with a //poplint:ignore ctxflow <reason> directive.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "library code must thread incoming contexts, not mint" +
		" context.Background/TODO mid-chain",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" || !libraryScope(pass) {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		checkCtxParamUsed(pass, ig, fd)
		checkBackgroundCalls(pass, ig, fd)
	})
	return nil, nil
}

// checkBackgroundCalls reports context.Background/TODO calls in fd's body,
// excepting the nil-default and Context-suffix-wrapper idioms.
func checkBackgroundCalls(pass *analysis.Pass, ig *ignorer, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || !(isPkgFunc(f, "context", "Background") || isPkgFunc(f, "context", "TODO")) {
			return true
		}
		if nilDefaultAssign(info, fd.Body, call) || contextWrapperCall(fd, call) {
			return true
		}
		ig.reportf(call.Pos(), "context.%s() minted in library function %s detaches callees from cancellation and deadlines; thread the caller's ctx instead", f.Name(), fd.Name.Name)
		return true
	})
}

// nilDefaultAssign reports whether call appears as `v = context.Background()`
// inside an `if v == nil` (in either comparison order) — the API-boundary
// nil-defaulting idiom.
func nilDefaultAssign(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		iff, isIf := n.(*ast.IfStmt)
		if !isIf || ok {
			return !ok
		}
		cmp, isCmp := iff.Cond.(*ast.BinaryExpr)
		if !isCmp || cmp.Op != token.EQL {
			return true
		}
		var guarded *ast.Ident
		if id, isID := cmp.X.(*ast.Ident); isID && info.Types[cmp.Y].IsNil() {
			guarded = id
		} else if id, isID := cmp.Y.(*ast.Ident); isID && info.Types[cmp.X].IsNil() {
			guarded = id
		}
		if guarded == nil {
			return true
		}
		for _, stmt := range iff.Body.List {
			as, isAssign := stmt.(*ast.AssignStmt)
			if !isAssign || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			lhs, isID := as.Lhs[0].(*ast.Ident)
			if !isID || as.Rhs[0] != call {
				continue
			}
			if info.Uses[lhs] != nil && info.Uses[lhs] == info.Uses[guarded] {
				ok = true
			}
		}
		return true
	})
	return ok
}

// contextWrapperCall reports whether call is the first argument of a
// delegation from F to FContext — the documented background-entrypoint
// wrapper shape: `func (s *S) Solve(…) { return s.SolveContext(ctx, …) }`.
func contextWrapperCall(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	outer, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok || len(outer.Args) == 0 || ast.Unparen(outer.Args[0]) != call {
		return false
	}
	var calleeName string
	switch fun := ast.Unparen(outer.Fun).(type) {
	case *ast.Ident:
		calleeName = fun.Name
	case *ast.SelectorExpr:
		calleeName = fun.Sel.Name
	default:
		return false
	}
	return calleeName == fd.Name.Name+"Context" ||
		strings.HasSuffix(calleeName, "Context") && strings.HasPrefix(calleeName, fd.Name.Name)
}

// checkCtxParamUsed reports a named context.Context parameter that the body
// never references: the incoming context is dropped on the floor, so
// everything below runs detached.
func checkCtxParamUsed(pass *analysis.Pass, ig *ignorer, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if !used {
				ig.reportf(name.Pos(), "%s has a ctx parameter it never threads: callees run detached from the caller's cancellation and deadlines", fd.Name.Name)
			}
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
