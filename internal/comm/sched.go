package comm

import "runtime"

// Shard scheduler: real-hardware parallelism for the virtual-rank runtime.
//
// World.Run historically spawned one goroutine per virtual rank and let the
// Go scheduler multiplex them over GOMAXPROCS threads. That is correct but
// wasteful on real hardware: with hundreds of virtual ranks and a handful of
// cores, every blocking collective churns runnable goroutines across cores
// and each core's cache is trampled by whichever rank the scheduler lands on
// it next. The shard scheduler bounds the damage: virtual ranks are split
// into P contiguous shards (P = the Threads knob, default GOMAXPROCS) and at
// most one rank per shard is executing at any instant, enforced by a
// one-token channel per shard. Contiguity matters — ByRank assigns
// neighbouring blocks to neighbouring ranks, so a shard's working set is a
// connected patch of the grid and serializing the shard's ranks gives each
// core temporal locality over one patch instead of the whole domain.
//
// Cooperative yield protocol. A rank holds its shard token while computing
// and releases it around every potentially blocking channel receive (the
// reduction up/down phases and the halo receive/pool paths — see recvYield
// and recvYieldHalo). Sends never block by the buffer-pool protocol
// (documented in halo.go and reduce.go), so a rank never sleeps while
// holding a token, which is the whole liveness argument: the rank holding a
// token either progresses or hands the token to a sibling before parking.
// Mutex critical sections in rank programs (e.g. error recording in Setup)
// contain no collective calls, so a token holder never blocks on a lock held
// by a parked sibling.
//
// Determinism is untouched by construction. The reduction tree, halo edge
// order, and every virtual-clock charge are functions of (decomposition,
// sequence numbers) only — scheduling decides *when* a rank runs, never
// *what* it computes — so fp64 solutions and golden traces are bitwise
// identical across any Threads setting (verify.sh gates this).

// sched is one Run's shard assignment: a one-token channel per shard and the
// rank→shard map. It is cached on the World and rebuilt only when the
// effective thread count changes, so steady-state Runs allocate nothing for
// scheduling.
type sched struct {
	threads int
	shardOf []int           // rank ID → shard index
	tokens  []chan struct{} // per-shard run token, capacity 1, initially full
}

// newSched builds the shard map for nrank virtual ranks over p shards using
// the contiguous block layout: shard s owns ranks [s·nrank/p, (s+1)·nrank/p).
func newSched(nrank, p int) *sched {
	s := &sched{
		threads: p,
		shardOf: make([]int, nrank),
		tokens:  make([]chan struct{}, p),
	}
	for sh := range s.tokens {
		s.tokens[sh] = make(chan struct{}, 1)
		s.tokens[sh] <- struct{}{}
	}
	for rid := 0; rid < nrank; rid++ {
		s.shardOf[rid] = rid * p / nrank
	}
	return s
}

// SetThreads sets the worker-shard count for subsequent Runs: at most n
// virtual ranks execute concurrently. n ≤ 0 restores the default
// (GOMAXPROCS at Run entry); n ≥ NRank disables sharding entirely (the
// legacy goroutine-per-rank path, zero scheduling overhead). Must not be
// called while a Run is in flight. Solutions are bitwise identical across
// all settings; only wall-clock and cache behavior change.
func (w *World) SetThreads(n int) { w.threads = n }

// Threads returns the configured worker-shard knob (0 = auto/GOMAXPROCS).
func (w *World) Threads() int { return w.threads }

// EffectiveThreads resolves the knob against the machine and the rank
// count: the shard count the next Run will actually use (Threads, defaulted
// to GOMAXPROCS, clamped to [1, NRank]).
func (w *World) EffectiveThreads() int {
	p := w.threads
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > w.NRank {
		p = w.NRank
	}
	if p < 1 {
		p = 1
	}
	return p
}

// scheduler returns the cached shard scheduler for p shards, or nil when
// p ≥ NRank (every rank its own shard — no tokens needed).
func (w *World) scheduler(p int) *sched {
	if p >= w.NRank {
		return nil
	}
	if w.sched == nil || w.sched.threads != p {
		w.sched = newSched(w.NRank, p)
	}
	return w.sched
}

// Shard returns the worker shard this rank executes on. Unsharded runs
// (Threads ≥ NRank, or a single rank) report the rank ID itself: each rank
// is its own worker.
func (r *Rank) Shard() int { return r.shard }

// recvYield receives from ch, releasing the rank's shard token while parked
// so a sibling rank of the same shard can run; the token is reacquired
// before returning. The select fast path keeps the token when a message is
// already waiting — the common case once a pipeline is warm. Every blocking
// receive a rank program performs goes through here; sends stay bare because
// the channel protocols guarantee they never block (see halo.go, reduce.go).
//
//pop:hotpath
func recvYield[T any](r *Rank, ch chan T) T {
	if r.token == nil {
		return <-ch
	}
	select {
	case m := <-ch:
		return m
	default:
	}
	r.token <- struct{}{}
	m := <-ch
	<-r.token
	return m
}
