package analysis_test

import (
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestCtxFlow(t *testing.T) {
	analyzertest.Run(t, "testdata/ctxflow", poplint.CtxFlow, "ctxlib")
}
