package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/grid"
)

// chaosRHS builds one deterministic right-hand side on the test grid.
func chaosRHS(t *testing.T) []float64 {
	t.Helper()
	g, err := grid.ByName(grid.PresetTest)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			x := uint64(k)*2654435761 + 0x9E3779B9
			x ^= x >> 13
			b[k] = float64(x%1000)/500 - 1
		}
	}
	return b
}

// chaosService builds a service with the given injector and solver knobs on
// the test grid.
func chaosService(t *testing.T, inj *faults.Injector, opts Options) *Service {
	t.Helper()
	opts.Injector = inj
	s := New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

// Under a moderate fault plan every request still converges: the resilient
// solvers absorb the injected faults, and the service records the recovery
// work in its stats.
func TestServeRecoversUnderFaults(t *testing.T) {
	inj := faults.New(faults.Plan{Seed: 41, ReduceFailProb: 0.05,
		StragglerProb: 0.02, StragglerDelay: 1e-3, CrashProb: 0.005}, nil)
	svc := chaosService(t, inj, Options{
		Solver: core.Options{Tol: 1e-8, MaxRecoveries: 200},
	})
	b := chaosRHS(t)

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := svc.Solve(context.Background(),
				Request{Method: core.MethodPCSI, Precond: core.PrecondEVP, B: b})
			if err != nil {
				errs[c] = err
				return
			}
			if !resp.Result.Converged {
				errs[c] = errors.New("not converged")
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	total := int64(0)
	for _, v := range inj.Injected() {
		total += v
	}
	if total == 0 {
		t.Fatal("no faults injected — test exercised nothing")
	}
	st := svc.Snapshot()
	if st.Faulted != 0 {
		t.Fatalf("requests faulted beyond budget under a moderate plan: %+v", st)
	}
}

// A crash storm defeats the per-solve recovery budget; the request-level
// retry budget then re-runs the request (drawing fresh schedule slices) and
// requests that still fault surface a typed ErrFaulted.
func TestServeRetryBudgetAndFaultSurface(t *testing.T) {
	inj := faults.New(faults.Plan{Seed: 13, CrashProb: 0.95}, nil)
	svc := chaosService(t, inj, Options{
		RetryBudget: 1,
		Solver:      core.Options{Tol: 1e-8, MaxIters: 300, MaxRecoveries: 2},
	})
	b := chaosRHS(t)
	_, err := svc.Solve(context.Background(),
		Request{Method: core.MethodChronGear, Precond: core.PrecondDiagonal, B: b})
	if !errors.Is(err, core.ErrFaulted) {
		t.Fatalf("crash storm returned %v, want ErrFaulted", err)
	}
	st := svc.Snapshot()
	if st.Retried == 0 {
		t.Fatalf("retry budget never consumed: %+v", st)
	}
	if st.Faulted == 0 {
		t.Fatalf("faulted request not counted: %+v", st)
	}
}

// Consecutive faulted solves open the key's circuit: later requests are
// shed with ErrCircuitOpen without touching a session, and after the
// cooldown one probe is admitted again (half-open).
func TestServeCircuitBreaker(t *testing.T) {
	inj := faults.New(faults.Plan{Seed: 13, CrashProb: 0.95}, nil)
	cooldown := 200 * time.Millisecond
	svc := chaosService(t, inj, Options{
		RetryBudget:      -1, // isolate the breaker from request retries
		CircuitThreshold: 2,
		CircuitCooldown:  cooldown,
		Solver:           core.Options{Tol: 1e-8, MaxIters: 300, MaxRecoveries: 2},
	})
	req := Request{Method: core.MethodChronGear, Precond: core.PrecondDiagonal, B: chaosRHS(t)}

	for i := 0; i < 2; i++ {
		if _, err := svc.Solve(context.Background(), req); !errors.Is(err, core.ErrFaulted) {
			t.Fatalf("solve %d: got %v, want ErrFaulted", i, err)
		}
	}
	if _, err := svc.Solve(context.Background(), req); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("circuit did not open after threshold: %v", err)
	}
	if st := svc.Snapshot(); st.CircuitShed == 0 {
		t.Fatalf("circuit shed not counted: %+v", st)
	}

	time.Sleep(cooldown + 50*time.Millisecond)
	// Half-open: the probe is admitted (and faults again, re-opening).
	if _, err := svc.Solve(context.Background(), req); !errors.Is(err, core.ErrFaulted) {
		t.Fatalf("half-open probe was not admitted: %v", err)
	}
	if _, err := svc.Solve(context.Background(), req); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe did not re-open the circuit: %v", err)
	}
}

// A nil injector must leave the service exactly as before: no retries, no
// breaker activity, and the resilient path never engaged.
func TestServeNilInjectorInert(t *testing.T) {
	svc := chaosService(t, nil, Options{Solver: core.Options{Tol: 1e-8}})
	resp, err := svc.Solve(context.Background(),
		Request{Method: core.MethodPCSI, Precond: core.PrecondEVP, B: chaosRHS(t)})
	if err != nil || !resp.Result.Converged {
		t.Fatalf("solve: err=%v converged=%v", err, resp.Result.Converged)
	}
	st := svc.Snapshot()
	if st.Retried != 0 || st.Faulted != 0 || st.Recovered != 0 || st.CircuitShed != 0 {
		t.Fatalf("resilience counters moved without an injector: %+v", st)
	}
}
