package core

import (
	"fmt"
	"math"
	"testing"
)

// solveIters runs one fixed-length solve (Tol below machine precision so
// convergence never truncates it) and is the unit AllocsPerRun measures.
// Differencing a 1-iteration solve against a many-iteration solve isolates
// the steady-state iteration body — halo exchange, matvec, preconditioner,
// reduction, convergence check — from per-solve costs (Run's goroutines and
// Rank structs, scatters, the Result/trace records).
func allocsPerIteration(t *testing.T, f *fixture, solver string, precond PrecondType, short, long int) float64 {
	t.Helper()
	mk := func(iters int) *Session {
		s, err := NewSession(f.g, f.op, f.d, f.w, Options{
			Precond: precond, Tol: 1e-300, MaxIters: iters, CheckEvery: 10})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sShort, sLong := mk(short), mk(long)
	solve := allSolvers[solver]
	x0 := make([]float64, f.g.N())
	run := func(s *Session) func() {
		return func() {
			if _, _, err := solve(s, f.b, x0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm every lazily grown workspace (session fields, pooled comm
	// buffers, eigenvalue estimate for P-CSI) before measuring.
	run(sShort)()
	run(sLong)()

	a := testing.AllocsPerRun(3, run(sShort))
	b := testing.AllocsPerRun(3, run(sLong))
	return (b - a) / float64(long-short)
}

// TestSteadyStateSolverAllocFree asserts the acceptance criterion of the
// zero-allocation refactor: once a session is warm, a solver iteration
// allocates nothing, for both the production ChronGear solver and P-CSI on
// a multi-rank virtual run.
func TestSteadyStateSolverAllocFree(t *testing.T) {
	f := testFixture(t)
	if f.d.NRanks < 2 {
		t.Fatalf("fixture is not multi-rank (%d ranks)", f.d.NRanks)
	}
	for _, tc := range []struct {
		solver  string
		precond PrecondType
	}{
		{"chrongear", PrecondDiagonal},
		{"chrongear", PrecondEVP},
		{"pcsi", PrecondDiagonal},
		{"pcsi", PrecondEVP},
	} {
		t.Run(fmt.Sprintf("%s-%v", tc.solver, tc.precond), func(t *testing.T) {
			per := allocsPerIteration(t, f, tc.solver, tc.precond, 1, 51)
			if per > 0 {
				t.Fatalf("%.3f allocations per steady-state iteration, want 0", per)
			}
		})
	}
}

// residualHistory runs one PCSI solve and returns the exact residual
// sequence (bit patterns, not rounded prints).
func residualHistory(t *testing.T, s *Session, b []float64) []uint64 {
	t.Helper()
	res, _, err := s.SolvePCSI(b, make([]float64, len(b)))
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]uint64, 0, len(res.Trace.Residuals))
	for _, rp := range res.Trace.Residuals {
		hist = append(hist, math.Float64bits(rp.RelResidual))
	}
	if len(hist) == 0 {
		t.Fatal("solve recorded no residual checks")
	}
	return hist
}

// TestPCSIResidualHistoryBitwiseDeterministic asserts residual histories
// are bitwise reproducible both across sessions (fresh workspaces) and
// within one session (reused arenas and pooled buffers): the
// zero-allocation machinery must not perturb a single bit of the numerics.
func TestPCSIResidualHistoryBitwiseDeterministic(t *testing.T) {
	f := testFixture(t)
	opts := Options{Precond: PrecondEVP, Tol: 1e-300, MaxIters: 60, CheckEvery: 10}

	s1 := f.session(t, opts)
	h1 := residualHistory(t, s1, f.b)
	h1again := residualHistory(t, s1, f.b) // same session: warm arenas
	s2 := f.session(t, opts)
	h2 := residualHistory(t, s2, f.b) // fresh session: cold arenas

	for name, h := range map[string][]uint64{"same-session repeat": h1again, "fresh session": h2} {
		if len(h) != len(h1) {
			t.Fatalf("%s: %d residual checks, want %d", name, len(h), len(h1))
		}
		for i := range h {
			if h[i] != h1[i] {
				t.Fatalf("%s: residual %d differs: %016x vs %016x (bitwise)", name, i, h[i], h1[i])
			}
		}
	}
}
