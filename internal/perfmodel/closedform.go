package perfmodel

import "math"

// Closed-form per-solve time estimates from the paper's Equations 2, 3, 5
// and 6. These are *not* used to generate results — the experiments price a
// real event stream — but serve as analytic cross-checks: measured virtual
// times must track these shapes (see tests and the eq-vs-measured ablation
// bench).

// EqChronGearDiag is Eq. 2: one diagonal-preconditioned ChronGear solve of
// an N²-point system on p ranks taking K iterations.
func EqChronGearDiag(m *Machine, n2 float64, p int, k float64) float64 {
	return k * (18*n2/float64(p)*m.Theta +
		8*math.Sqrt(n2/float64(p))*8*m.Beta +
		float64(4+log2Ceil(p))*m.Alpha)
}

// EqPCSIDiag is Eq. 3: one diagonal-preconditioned P-CSI solve.
func EqPCSIDiag(m *Machine, n2 float64, p int, k float64) float64 {
	return k * (13*n2/float64(p)*m.Theta +
		4*m.Alpha +
		8*math.Sqrt(n2/float64(p))*8*m.Beta)
}

// EqChronGearEVP is Eq. 5: ChronGear with the block-EVP preconditioner.
func EqChronGearEVP(m *Machine, n2 float64, p int, k float64) float64 {
	return k * (31*n2/float64(p)*m.Theta +
		8*math.Sqrt(n2/float64(p))*8*m.Beta +
		float64(4+log2Ceil(p))*m.Alpha)
}

// EqPCSIEVP is Eq. 6: P-CSI with the block-EVP preconditioner.
func EqPCSIEVP(m *Machine, n2 float64, p int, k float64) float64 {
	return k * (26*n2/float64(p)*m.Theta +
		4*m.Alpha +
		8*math.Sqrt(n2/float64(p))*8*m.Beta)
}
