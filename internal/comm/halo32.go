package comm

import (
	"math"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Float32 halo exchange: the single-precision twin of the path in halo.go,
// used by the mixed-precision inner solvers (core.Options.Precision =
// Float32). It is a separate plan set rather than a conversion shim so the
// wire payload really is 4 bytes per element — the halved boundary-update
// bandwidth is half of the mixed-precision speedup story, and the virtual
// cost model prices it from the actual message size. Edge topology, phase
// order, fault-draw sequence numbers, and clock arithmetic are identical to
// the float64 path; only the element type and the bytes-per-element charge
// differ. Both plan sets are built unconditionally at NewWorld: the fp32
// pools are two short strips per cross-rank edge, too small to gate.

// haloMsg32 is one in-flight float32 halo message.
type haloMsg32 struct {
	data  []float32
	clock float64
}

// sendEdge32 / recvEdge32 mirror sendEdge / recvEdge with float32 channels
// and pools. Local copies need no message, so phasePlan32 reuses localEdge.
type sendEdge32 struct {
	bi       int
	side     int
	stripLen int
	ch       chan haloMsg32
	free     chan []float32
}

type recvEdge32 struct {
	bi   int
	side int
	ch   chan haloMsg32
	free chan []float32
}

// phasePlan32 is one rank's float32 edge list for one exchange phase.
type phasePlan32 struct {
	sends  []sendEdge32
	locals []localEdge
	recvs  []recvEdge32
}

// buildPlans32 precomputes the float32 exchange plans. Structure matches
// buildPlans exactly — see there for the capacity-2 liveness argument
// (data-channel capacity equals pool size, so sends never block).
func (w *World) buildPlans32() {
	d := w.D
	h := d.Halo
	chans := make(map[haloKey]chan haloMsg32)
	pools := make(map[haloKey]chan []float32)
	for _, id := range d.OceanBlocks {
		b := &d.Blocks[id]
		for side, off := range sideOffsets {
			nb := d.NeighborID(b, off[0], off[1])
			if nb < 0 || d.Blocks[nb].Rank == b.Rank {
				continue
			}
			key := haloKey{id, side}
			chans[key] = make(chan haloMsg32, 2)
			pool := make(chan []float32, 2)
			stripLen := h * b.NyI
			if side == SideN || side == SideS {
				stripLen = h * (b.NxI + 2*h)
			}
			pool <- make([]float32, stripLen)
			pool <- make([]float32, stripLen)
			pools[key] = pool
		}
	}
	w.plans32 = make([][2]phasePlan32, w.NRank)
	for rid := 0; rid < w.NRank; rid++ {
		for phase := 0; phase < 2; phase++ {
			plan := &w.plans32[rid][phase]
			for i, id := range d.ByRank[rid] {
				b := &d.Blocks[id]
				for _, side := range phaseSides[phase] {
					off := sideOffsets[side]
					nb := d.NeighborID(b, off[0], off[1])
					if nb < 0 {
						continue
					}
					if d.Blocks[nb].Rank == rid {
						plan.locals = append(plan.locals, localEdge{
							dstBI: i, srcBI: w.blockPos[nb], side: side})
						continue
					}
					skey := haloKey{nb, opposite(side)}
					stripLen := h * b.NyI
					if side == SideN || side == SideS {
						stripLen = h * (b.NxI + 2*h)
					}
					plan.sends = append(plan.sends, sendEdge32{
						bi: i, side: side, stripLen: stripLen,
						ch: chans[skey], free: pools[skey]})
					rkey := haloKey{id, side}
					plan.recvs = append(plan.recvs, recvEdge32{
						bi: i, side: side, ch: chans[rkey], free: pools[rkey]})
				}
			}
		}
	}
}

// Exchange32 refreshes the halos of one distributed float32 field.
// fields[i] is the padded local array for r.Blocks[i]. Collective: every
// rank must call it in the same program order. Single-level only — the
// mixed-precision inner solvers exchange one 2-D field at a time.
//
//pop:hotpath
func (r *Rank) Exchange32(fields [][]float32) {
	if len(fields) != len(r.Blocks) {
		panic("comm: Exchange32 fields/blocks length mismatch")
	}
	r.exchangePhase32(fields, 0)
	r.exchangePhase32(fields, 1)
}

// exchangePhase32 executes one float32 phase plan: non-blocking sends,
// same-rank copies, then yielding receives — the float64 exchangePhase
// with a 4-byte-per-element bandwidth charge. It shares haloSeq with the
// float64 path so fault schedules stay aligned whichever precision a solve
// runs in.
//
//pop:hotpath
func (r *Rank) exchangePhase32(fields [][]float32, phase int) {
	w := r.World
	h := w.D.Halo
	plan := &w.plans32[r.ID][phase]
	entry := r.clock

	haloSeq := r.faultBase + r.haloSeq
	r.haloSeq++
	var drop, corrupt bool
	if w.Faults.Enabled() {
		drop = w.Faults.DropHalo(r.ID, haloSeq)
		if !drop {
			corrupt = w.Faults.CorruptHalo(r.ID, haloSeq)
		}
		if (drop || corrupt) && r.trace != nil {
			class := faults.HaloDrop
			if corrupt {
				class = faults.HaloCorrupt
			}
			r.trace.Add(obs.Event{Name: obs.EvFault, Point: true, T0: entry,
				Value: float64(haloSeq), Aux: float64(class), Iter: -1, Straggler: -1})
		}
	}

	for ei := range plan.sends {
		e := &plan.sends[ei]
		buf := recvYield(r, e.free)
		b := r.Blocks[e.bi]
		extractStripInto(buf[:e.stripLen], fields[e.bi], b.NxI, b.NyI, h, e.side)
		e.ch <- haloMsg32{data: buf, clock: r.clock}
	}

	for _, le := range plan.locals {
		dst := r.Blocks[le.dstBI]
		src := r.Blocks[le.srcBI]
		copyStrip(fields[le.dstBI], dst.NxI, dst.NyI,
			fields[le.srcBI], src.NxI, src.NyI, h, le.side)
	}

	arrival := r.clock
	var charge float64
	var phaseBytes int64
	for ei := range plan.recvs {
		e := &plan.recvs[ei]
		m := recvYield(r, e.ch)
		b := r.Blocks[e.bi]
		if corrupt && ei == 0 {
			nan := float32(math.NaN())
			for di := range m.data {
				m.data[di] = nan
			}
		}
		if !drop {
			insertStrip(fields[e.bi], b.NxI, b.NyI, h, e.side, m.data)
		}
		e.free <- m.data
		if m.clock > arrival {
			arrival = m.clock
		}
		bytes := int64(len(m.data) * 4)
		r.ctr.HaloMsgs++
		r.ctr.HaloBytes += bytes
		phaseBytes += bytes
		charge += w.Cost.P2PTime(bytes)
	}
	r.clock = arrival + charge
	r.ctr.THalo += r.clock - entry
	if r.trace != nil {
		r.trace.Add(obs.Event{Name: obs.EvHalo, T0: entry, T1: r.clock,
			Value: float64(phaseBytes), Iter: -1, Straggler: -1})
	}
}
