// Package evp implements Roache's Error Vector Propagation method (paper
// §4.2, Algorithm 3): a direct elliptic solver that marches the nine-point
// stencil equation north-eastward across a small block and corrects the
// initial-guess ring with a precomputed influence-matrix inverse.
//
// Geometry: the solver owns an (nx+2)×(ny+2) extended domain — the
// preconditioner block plus a phantom Dirichlet-zero boundary ring, which is
// exactly the diagonal sub-matrix Bᵢ of Figure 4 (couplings leaving the
// block hit zero values). The initial-guess set e is the interior L next to
// the south and west boundaries; the final set f is the north/east boundary
// ring that over-marching writes. Both have nx+ny−1 points (the paper's
// 2n−5 for an n×n extended domain).
//
// One solve costs two marches plus a k×k matvec — O(22·n²) for the full
// nine-coefficient stencil and O(14·n²) for the simplified five-coefficient
// variant of §4.3 (the N/S/E/W couplings of the POP operator are an order of
// magnitude smaller than the corner couplings and can be dropped from the
// preconditioner with no significant convergence impact).
//
// Marching amplifies round-off exponentially with block size — the method is
// only usable on small blocks (≤ ~16; the paper quotes O(1e−8) error at
// 12×12), which is no restriction for a block-Jacobi preconditioner.
package evp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/stencil"
)

// MaxStableSize is the largest extended-domain side for which marching
// round-off stays acceptable in double precision; NewBlockSolver refuses
// larger domains.
const MaxStableSize = 20

// BlockSolver solves Bᵢ·x = ψ on one preconditioner block by EVP marching.
type BlockSolver struct {
	nx, ny     int // extended-domain dimensions (block + phantom ring)
	simplified bool

	// Stencil coefficients per extended-domain point, split per offset for
	// the marching inner loop: c[o][k] is the coupling of point k to its
	// neighbour at offset o in [SW,S,SE,W,C,E,NW,N,NE] order.
	c [9][]float64

	e, f       []int         // flattened extended-domain indices
	r          *linalg.Dense // inverse influence matrix, |e|×|e|
	work       []float64     // marching workspace, one extended domain
	fbuf, ebuf []float64     // |f| and |e| scratch
}

// offsets in [SW,S,SE,W,C,E,NW,N,NE] order as (di,dj).
var offsets = [9][2]int{
	{-1, -1}, {0, -1}, {1, -1},
	{-1, 0}, {0, 0}, {1, 0},
	{-1, 1}, {0, 1}, {1, 1},
}

const (
	offC  = 4
	offNE = 8
)

// NewBlockSolver builds an EVP solver for the block operator described by
// loc, a padded window with halo 1 whose interior is the preconditioner
// block (see stencil.AssembleWindowFilled). When simplified is true the
// N/S/E/W couplings are dropped (§4.3). It fails when the extended domain
// is too large for stable marching, a north-east coefficient is zero, or
// the influence matrix is singular.
func NewBlockSolver(loc *stencil.Local, simplified bool) (*BlockSolver, error) {
	if loc.H != 1 {
		return nil, fmt.Errorf("evp: block window must have halo 1, got %d", loc.H)
	}
	nx, ny := loc.NxP, loc.NyP
	if nx > MaxStableSize+2 || ny > MaxStableSize+2 {
		return nil, fmt.Errorf("evp: %d×%d extended domain exceeds stable marching size", nx, ny)
	}
	if nx < 3 || ny < 3 {
		return nil, fmt.Errorf("evp: degenerate %d×%d domain", nx, ny)
	}
	s := &BlockSolver{nx: nx, ny: ny, simplified: simplified}
	n := nx * ny
	for o := range s.c {
		s.c[o] = make([]float64, n)
	}
	for j := 1; j < ny-1; j++ {
		for i := 1; i < nx-1; i++ {
			row := loc.Row(i, j)
			k := j*nx + i
			for o, v := range row {
				s.c[o][k] = v
			}
			if simplified {
				s.c[1][k], s.c[3][k], s.c[5][k], s.c[7][k] = 0, 0, 0, 0
			}
			if s.c[offNE][k] == 0 {
				return nil, fmt.Errorf("evp: zero north-east coefficient at (%d,%d); block operator must be land-filled", i, j)
			}
		}
	}

	// Initial-guess ring e: interior points hugging the south and west
	// boundaries; final ring f: the north/east boundary points that
	// over-marching writes. |e| = |f| = (nx−2) + (ny−3).
	for i := 1; i <= nx-2; i++ {
		s.e = append(s.e, 1*nx+i)
	}
	for j := 2; j <= ny-2; j++ {
		s.e = append(s.e, j*nx+1)
	}
	for i := 2; i <= nx-1; i++ {
		s.f = append(s.f, (ny-1)*nx+i)
	}
	for j := 2; j <= ny-2; j++ {
		s.f = append(s.f, j*nx+(nx-1))
	}
	if len(s.e) != len(s.f) {
		panic("evp: e/f size mismatch")
	}

	s.work = make([]float64, n)
	s.fbuf = make([]float64, len(s.f))
	s.ebuf = make([]float64, len(s.e))

	// Influence matrix: column i is the response at f to a unit guess at
	// e[i] under the homogeneous equation.
	k := len(s.e)
	w := linalg.NewDense(k, k)
	for col := 0; col < k; col++ {
		for i := range s.work {
			s.work[i] = 0
		}
		s.work[s.e[col]] = 1
		s.march(s.work, nil)
		for rowI, fk := range s.f {
			w.Set(rowI, col, s.work[fk])
		}
	}
	inv, err := linalg.Inverse(w)
	if err != nil {
		return nil, fmt.Errorf("evp: influence matrix singular: %w", err)
	}
	s.r = inv
	return s, nil
}

// Size returns the interior block dimensions.
func (s *BlockSolver) Size() (nx, ny int) { return s.nx - 2, s.ny - 2 }

// march propagates x north-eastward: the equation at (i,j) determines
// x(i+1,j+1). psi is the right-hand side over the extended domain (nil
// means homogeneous). On entry x must hold the guess on e and zeros on the
// south/west boundary; every other point, including the north/east boundary
// ring (the f points), is overwritten.
func (s *BlockSolver) march(x, psi []float64) {
	nx := s.nx
	for j := 1; j <= s.ny-2; j++ {
		base := j * nx
		for i := 1; i <= s.nx-2; i++ {
			k := base + i
			rhs := 0.0
			if psi != nil {
				rhs = psi[k]
			}
			var sum float64
			if s.simplified {
				sum = s.c[0][k]*x[k-nx-1] + s.c[2][k]*x[k-nx+1] +
					s.c[offC][k]*x[k] + s.c[6][k]*x[k+nx-1]
			} else {
				sum = s.c[0][k]*x[k-nx-1] + s.c[1][k]*x[k-nx] + s.c[2][k]*x[k-nx+1] +
					s.c[3][k]*x[k-1] + s.c[offC][k]*x[k] + s.c[5][k]*x[k+1] +
					s.c[6][k]*x[k+nx-1] + s.c[7][k]*x[k+nx]
			}
			x[k+nx+1] = (rhs - sum) / s.c[offNE][k]
		}
	}
}

// Solve computes x = Bᵢ⁻¹·ψ on the extended domain: both slices are
// extended-domain length, ψ is read at interior points only, and x receives
// the solution at interior points (boundary entries end up ≈0). Following
// Algorithm 3: march with zero guess, correct the guess ring through the
// influence inverse, march again.
func (s *BlockSolver) Solve(x, psi []float64) {
	if len(x) != s.nx*s.ny || len(psi) != s.nx*s.ny {
		panic("evp: Solve dimension mismatch")
	}
	for i := range x {
		x[i] = 0
	}
	s.march(x, psi)
	for i, fk := range s.f {
		s.fbuf[i] = x[fk] // F = x|f − 0 (Dirichlet boundary)
	}
	s.r.MulVec(s.ebuf, s.fbuf)
	for i, ek := range s.e {
		x[s.e[i]] = x[ek] - s.ebuf[i]
	}
	// Zero everything the second march does not overwrite cannot have
	// changed; re-march overwrites all non-e interior points and the f ring.
	s.march(x, psi)
	for _, fk := range s.f {
		x[fk] = 0 // residual round-off on the phantom boundary
	}
}

// SolveFlops returns the per-application flop charge, following the paper's
// accounting: 2 marches of (9 or 5)·n² plus the k² influence correction —
// ≈22·n² full, ≈14·n² simplified (§4.3).
func (s *BlockSolver) SolveFlops() int64 {
	n2 := int64((s.nx - 2) * (s.ny - 2))
	k := int64(len(s.e))
	per := int64(9)
	if s.simplified {
		per = 5
	}
	return 2*per*n2 + k*k
}

// SetupFlops returns the preprocessing charge: k homogeneous marches plus
// the k³ influence-matrix inversion (paper §4.2: C_pre ≈ 26·n³).
func (s *BlockSolver) SetupFlops() int64 {
	n2 := int64((s.nx - 2) * (s.ny - 2))
	k := int64(len(s.e))
	per := int64(9)
	if s.simplified {
		per = 5
	}
	return k*per*n2 + k*k*k
}

// MarchGrowth estimates the marching amplification factor: the largest
// |value| produced while building the influence matrix from unit inputs.
// It quantifies the instability that restricts EVP to small blocks.
func MarchGrowth(loc *stencil.Local, simplified bool) (float64, error) {
	if loc.H != 1 {
		return 0, fmt.Errorf("evp: block window must have halo 1")
	}
	nx, ny := loc.NxP, loc.NyP
	if nx < 3 || ny < 3 {
		return 0, fmt.Errorf("evp: degenerate domain")
	}
	// Build a throwaway solver-like marcher without the size guard.
	s := &BlockSolver{nx: nx, ny: ny, simplified: simplified}
	n := nx * ny
	for o := range s.c {
		s.c[o] = make([]float64, n)
	}
	for j := 1; j < ny-1; j++ {
		for i := 1; i < nx-1; i++ {
			row := loc.Row(i, j)
			k := j*nx + i
			for o, v := range row {
				s.c[o][k] = v
			}
			if simplified {
				s.c[1][k], s.c[3][k], s.c[5][k], s.c[7][k] = 0, 0, 0, 0
			}
			if s.c[offNE][k] == 0 {
				return 0, fmt.Errorf("evp: zero north-east coefficient at (%d,%d)", i, j)
			}
		}
	}
	x := make([]float64, n)
	// One unit guess in the middle of the e-ring is representative.
	x[1*nx+nx/2] = 1
	s.march(x, nil)
	var g float64
	for _, v := range x {
		if a := math.Abs(v); a > g {
			g = a
		}
	}
	return g, nil
}
