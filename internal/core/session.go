package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/stencil"
)

// Options configures a solver Session. The zero value is completed by
// DefaultOptions-style fallbacks in NewSession.
type Options struct {
	// Precond selects the preconditioner (default PrecondIdentity).
	Precond PrecondType

	// Precision selects the iteration arithmetic: Float64 (default, bitwise
	// reproducible against golden traces) or Float32 (mixed-precision
	// iterative refinement — float32 kernels and halos inside a float64
	// outer loop; same Tol, own goldens). See mixed.go.
	Precision Precision

	// EVPBlockSize is the block-Jacobi sub-block side (both EVP and
	// block-LU). The paper quotes 12×12 as the stable EVP limit on its
	// near-isotropic grids; the synthetic grids here are more anisotropic,
	// so the default is 8.
	EVPBlockSize int
	// EVPSimplified drops the N/S/E/W couplings from the EVP blocks,
	// halving preconditioning cost (§4.3 — the paper's production choice).
	EVPSimplified bool
	// FillDepth is the artificial depth given to land cells inside EVP
	// blocks so marching has wet corners everywhere (see
	// stencil.AssembleWindowFilled). Must be ≤ the grid's minimum wet
	// depth; default 50 m.
	FillDepth float64

	// Tol is the relative convergence tolerance: ‖r‖ ≤ Tol·‖b‖ over ocean
	// points. POP's default corresponds to 1e−13.
	Tol float64
	// MaxIters caps solver iterations (default 2000).
	MaxIters int
	// CheckEvery is the convergence-check interval in iterations; the
	// paper uses 10 for all solvers (§5.2).
	CheckEvery int

	// SStep is the communication-avoiding block size of the s-step solver
	// (MethodSStep): s matrix-vector products are batched between global
	// reductions, so a converged solve performs at most ceil(iters/s)+1
	// reductions instead of ~iters. Ignored by every other method. Default
	// 4; valid range 1..MaxSStep. Raising s trades reduction latency for
	// O(s) extra flops per iteration and a worse-conditioned basis — see
	// SOLVERS.md for the crossover guidance.
	SStep int

	// Lanczos (eigenvalue estimation) controls for P-CSI.
	EigTol      float64 // relative change tolerance; paper: 0.15
	EigMaxSteps int     // cap on Lanczos steps (default 40)
	// Safety factors widening the estimated spectrum [ν, μ]: Lanczos
	// approaches λ_min from above and λ_max from below, and Chebyshev
	// iteration wants the true spectrum inside the interval. The defaults
	// are deliberately snug (a loose ν inflates the iteration count by
	// √(ν_true/ν)); P-CSI's slow-convergence and divergence guards widen
	// the interval adaptively when a mode leaks outside.
	EigSafetyLow, EigSafetyHigh float64

	// MaxRecoveries bounds the checkpoint rollbacks (crash or NaN-tripwire
	// restores) one resilient solve may perform before surrendering with
	// ErrFaulted. Default 8; negative disables the resilience machinery
	// entirely even when the world carries an active fault injector. It
	// only takes effect when the session's World has an active
	// faults.Injector — without one, solves run the exact legacy path.
	MaxRecoveries int
}

func (o Options) withDefaults() Options {
	if o.EVPBlockSize == 0 {
		o.EVPBlockSize = 8
	}
	if o.FillDepth == 0 {
		o.FillDepth = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-13
	}
	if o.MaxIters == 0 {
		o.MaxIters = 2000
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 10
	}
	if o.SStep == 0 {
		o.SStep = 4
	}
	if o.EigTol == 0 {
		o.EigTol = 0.15
	}
	if o.EigMaxSteps == 0 {
		o.EigMaxSteps = 40
	}
	if o.EigSafetyLow == 0 {
		o.EigSafetyLow = 0.85
	}
	if o.EigSafetyHigh == 0 {
		o.EigSafetyHigh = 1.1
	}
	if o.MaxRecoveries == 0 {
		o.MaxRecoveries = 8
	}
	return o
}

// Session binds an operator, a decomposition, and a communicator into a
// reusable distributed solver: local operators, preconditioners, and field
// buffers persist across solves (as they do across time steps in POP).
type Session struct {
	G    *grid.Grid            // grid the session solves on
	Op   *stencil.Operator     // assembled barotropic operator
	D    *decomp.Decomposition // block-to-rank ownership map
	W    *comm.World           // virtual-rank communicator
	Opts Options               // normalized options (defaults applied)

	perRank []*rankState
	ready   bool

	// SetupStats records the preconditioner preprocessing run.
	SetupStats *comm.Stats

	// Eigenvalue bounds for P-CSI, populated by EstimateEigenvalues.
	Nu, Mu     float64
	EigSteps   int         // Lanczos steps the estimate took
	EigenStats *comm.Stats // communication counters of the estimation run
	// EigTrace is the per-step bound evolution of the last
	// EstimateEigenvalues run (copied into P-CSI Result traces).
	EigTrace []EigBound

	// Workspace arena, sized lazily on first use and reused across solves:
	// outBuf backs every solver's returned solution vector, probeBuf the
	// Lanczos probe. A Result's solution slice therefore stays valid only
	// until the session's next solve — callers keeping it longer (the model
	// time-stepper copies into its own Eta immediately) must copy.
	outBuf   []float64
	probeBuf []float64
	// zeroBuf is the shared all-zeros initial guess SolveContext substitutes
	// for a nil x0. Solvers only scatter *from* the guess, so one read-only
	// buffer serves every solve without a per-request allocation.
	zeroBuf []float64
}

// SetTraceID stamps the request-scoped trace ID onto the session's world:
// every rank-level span of subsequent solves carries it, correlating the
// solve's trace tree with the serve request it works for (0 clears it).
// Sessions are single-solve at a time (the serve layer serializes solves per
// session), so the caller sets it immediately before each solve.
func (s *Session) SetTraceID(id uint64) { s.W.SetTraceID(id) }

// zeroX0 returns the session-owned all-zeros initial guess (allocated on
// first use, never written afterwards).
func (s *Session) zeroX0() []float64 {
	if s.zeroBuf == nil {
		s.zeroBuf = make([]float64, s.G.N())
	}
	return s.zeroBuf
}

// solveOut returns the session-owned global solution buffer, allocating it
// on first use. Every entry is overwritten by each solve (ocean points by
// the gather, land points by restoreLand), so no zeroing is needed.
func (s *Session) solveOut() []float64 {
	if s.outBuf == nil {
		s.outBuf = make([]float64, s.G.N())
	}
	return s.outBuf
}

// rankState is the per-rank persistent state; each rank goroutine builds
// and mutates only its own entry. The float32 members (locs32, pre32,
// fields32) are populated only for Precision == Float32 sessions.
type rankState struct {
	locs   []*stencil.Local
	pre    []Preconditioner
	fields map[string][][]float64

	locs32   []*stencil.Local32
	pre32    []Preconditioner32
	fields32 map[string][][]float32
}

// NewSession validates the configuration and prepares a session. The
// decomposition must already be assigned to ranks and the world built on it.
func NewSession(g *grid.Grid, op *stencil.Operator, d *decomp.Decomposition, w *comm.World, opts Options) (*Session, error) {
	if g == nil || op == nil || d == nil || w == nil {
		return nil, fmt.Errorf("core: nil session component: %w", ErrBadSpec)
	}
	if op.Nx != g.Nx || op.Ny != g.Ny {
		return nil, fmt.Errorf("core: operator %d×%d does not match grid %d×%d: %w", op.Nx, op.Ny, g.Nx, g.Ny, ErrBadSpec)
	}
	if w.D != d {
		return nil, fmt.Errorf("core: world built on a different decomposition: %w", ErrBadSpec)
	}
	o := opts.withDefaults()
	if o.Tol <= 0 || o.Tol >= 1 {
		return nil, fmt.Errorf("core: tolerance %g out of (0,1): %w", o.Tol, ErrBadSpec)
	}
	if !o.Precond.Valid() {
		return nil, fmt.Errorf("core: unknown preconditioner %v: %w", o.Precond, ErrBadSpec)
	}
	if !o.Precision.Valid() {
		return nil, fmt.Errorf("core: unknown precision %v: %w", o.Precision, ErrBadSpec)
	}
	if o.SStep < 1 || o.SStep > MaxSStep {
		return nil, fmt.Errorf("core: s-step block size %d out of 1..%d: %w", o.SStep, MaxSStep, ErrBadSpec)
	}
	return &Session{G: g, Op: op, D: d, W: w, Opts: o,
		perRank: make([]*rankState, d.NRanks)}, nil
}

// Setup builds per-rank local operators and preconditioners, charging the
// preprocessing flops to the virtual clock. It is idempotent; solvers call
// it lazily, but experiments call it explicitly to time it (the paper
// reports EVP setup cost < one solver call at 512 cores, §4.3).
func (s *Session) Setup() error {
	if s.ready {
		return nil
	}
	var mu sync.Mutex
	var firstErr error
	st := s.W.Run(func(r *comm.Rank) {
		rs := &rankState{fields: make(map[string][][]float64),
			fields32: make(map[string][][]float32)}
		for _, b := range r.Blocks {
			loc := s.D.LocalOperator(s.Op, b)
			rs.locs = append(rs.locs, loc)
			var pre Preconditioner
			var err error
			switch s.Opts.Precond {
			case PrecondIdentity:
				pre = &identityPrecond{loc: loc}
			case PrecondDiagonal:
				pre = newDiagPrecond(loc)
			case PrecondEVP:
				pre, err = newEVPPrecond(s.G, s.Op.Phi, b, loc,
					s.Opts.EVPBlockSize, s.Opts.EVPSimplified, s.Opts.FillDepth)
			case PrecondBlockLU:
				pre, err = newBLUPrecond(b, loc, s.Opts.EVPBlockSize)
			default:
				err = fmt.Errorf("core: unknown preconditioner %v: %w", s.Opts.Precond, ErrBadSpec)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				pre = &identityPrecond{loc: loc}
			}
			r.AddFlops(pre.SetupFlops())
			rs.pre = append(rs.pre, pre)
			if s.Opts.Precision == Float32 {
				// Mixed-precision state: the float32 image of the local
				// operator and the preconditioner's single-precision
				// application (every builtin implements Preconditioner32).
				rs.locs32 = append(rs.locs32, stencil.NewLocal32(loc))
				p32, ok := pre.(Preconditioner32)
				if !ok {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: preconditioner %v has no float32 application: %w",
							s.Opts.Precond, ErrBadSpec)
					}
					mu.Unlock()
					p32 = &identityPrecond{loc: loc}
				}
				rs.pre32 = append(rs.pre32, p32)
			}
		}
		s.perRank[r.ID] = rs
	})
	if firstErr != nil {
		return firstErr
	}
	s.SetupStats = &st
	s.ready = true
	return nil
}

// Cancellation protocol. A context passed into a solve is observed only at
// convergence-check boundaries, and only through the check's global
// reduction: each rank sums its local observation of ctx (cancelFlag) into
// one extra payload entry, so every rank sees the identical reduced verdict
// and leaves the iteration loop at the same check. Ranks observing ctx
// directly could disagree — cancellation racing the check would strand some
// ranks in the next collective. Riding the existing reduction adds no
// communication and cannot perturb the numerics between checks: the
// residual entries reduce exactly as before, so a cancelled solve's
// residual history is a bitwise prefix of the uncancelled one.

// cancelFlag returns 1 when ctx is cancelled or past its deadline.
func cancelFlag(ctx context.Context) float64 {
	if ctx != nil && ctx.Err() != nil {
		return 1
	}
	return 0
}

// ctxSolveErr wraps the context's error with solve position for a solve
// stopped by cancellation; errors.Is matches context.Canceled or
// context.DeadlineExceeded.
func ctxSolveErr(ctx context.Context, solver string, iter int) error {
	return fmt.Errorf("core: %s solve cancelled at iteration %d: %w", solver, iter, context.Cause(ctx))
}

// state returns the rank's persistent state (Setup must have run).
func (s *Session) state(r *comm.Rank) *rankState {
	return s.perRank[r.ID]
}

// field returns (allocating on first use) the named per-block padded field
// set for this rank.
func (s *Session) field(r *comm.Rank, name string) [][]float64 {
	rs := s.state(r)
	f, ok := rs.fields[name]
	if !ok {
		f = make([][]float64, len(r.Blocks))
		for i, b := range r.Blocks {
			nxp, nyp := s.D.PaddedDims(b)
			f[i] = make([]float64, nxp*nyp)
		}
		rs.fields[name] = f
	}
	return f
}

// field32 returns (allocating on first use) the named per-block padded
// float32 field set for this rank (mixed-precision inner-solver state).
func (s *Session) field32(r *comm.Rank, name string) [][]float32 {
	rs := s.state(r)
	f, ok := rs.fields32[name]
	if !ok {
		f = make([][]float32, len(r.Blocks))
		for i, b := range r.Blocks {
			nxp, nyp := s.D.PaddedDims(b)
			f[i] = make([]float32, nxp*nyp)
		}
		rs.fields32[name] = f
	}
	return f
}

// zeroField32 clears the named float32 field.
func (s *Session) zeroField32(r *comm.Rank, name string) [][]float32 {
	f := s.field32(r, name)
	for _, arr := range f {
		zeroAll32(arr)
	}
	return f
}

// scatterMasked copies a global field into the named per-block field,
// zeroing land points (solvers run on the ocean-invariant subspace; land
// rows are restored at gather time).
func (s *Session) scatterMasked(r *comm.Rank, name string, global []float64) [][]float64 {
	f := s.field(r, name)
	for i, b := range r.Blocks {
		s.D.ScatterInto(f[i], global, b)
		loc := s.state(r).locs[i]
		arr := f[i]
		for k := range arr {
			if !loc.Mask[k] {
				arr[k] = 0
			}
		}
	}
	return f
}

// zeroField clears the named field.
func (s *Session) zeroField(r *comm.Rank, name string) [][]float64 {
	f := s.field(r, name)
	for _, arr := range f {
		for k := range arr {
			arr[k] = 0
		}
	}
	return f
}

// restoreLand sets the identity land rows x = b everywhere, including
// blocks eliminated from the decomposition (solvers iterate only on the
// ocean subspace).
func (s *Session) restoreLand(x, b []float64) {
	for k, m := range s.Op.Mask {
		if !m {
			x[k] = b[k]
		}
	}
}

// Result summarizes one distributed solve.
type Result struct {
	Solver      string      // method name ("chrongear", "pcsi", "sstep", ...)
	Precond     PrecondType // preconditioner the solve used
	Iterations  int         // iterations executed
	Converged   bool        // whether the tolerance was met
	RelResidual float64     // ‖r‖/‖b‖ at the last convergence check
	BNorm       float64     // ‖b‖ over ocean points
	Stats       comm.Stats  // per-rank communication/compute counters
	// Precision is the iteration arithmetic the solve ran in.
	Precision Precision
	// OuterIters counts the iterative-refinement outer passes (0 for pure
	// float64 solves; Iterations then counts inner float32 iterations —
	// stencil sweeps — directly comparable to a float64 solve's count).
	OuterIters int
	// P-CSI extras.
	Nu, Mu   float64
	EigSteps int // Lanczos steps behind the interval (0 = none run)
	// Trace is the per-iteration telemetry (residual history at each
	// convergence check; for P-CSI also the Lanczos bound evolution and
	// interval-widening events). Always recorded — appends happen only at
	// convergence checks, so the cost is negligible.
	Trace *SolveTrace
	// Recovery summarizes what the resilience machinery did during this
	// solve. All-zero for fault-free runs (and always for worlds without an
	// active injector).
	Recovery RecoveryInfo
	// TraceID is the request-scoped trace ID the solve ran under (0 when the
	// solve was not serving a traced request); every rank-level span the
	// solve emitted carries the same ID.
	TraceID uint64
}

// RecoveryInfo counts the recovery actions one solve performed. Populated
// only when the session's World carries an active fault injector and
// Options.MaxRecoveries ≥ 0.
type RecoveryInfo struct {
	// ReduceRetries is how many failed global reductions were re-entered
	// (each retry pays a bounded virtual-clock backoff).
	ReduceRetries int
	// Restores is how many times the iteration state was rolled back to the
	// last checkpoint (rank crash or NaN tripwire).
	Restores int
	// Reconverges counts convergence confirmations that failed — the check
	// reduction said "converged" but a fresh-halo residual disagreed (stale
	// or corrupted halos), so the solve reset its recurrence and continued.
	Reconverges int
	// CheckpointIter is the iteration of the last checkpoint taken (0 when
	// only the initial state was checkpointed).
	CheckpointIter int
	// Degraded names the fallback rung that produced the result: "" (none),
	// "re-eig" (P-CSI retried with re-estimated eigenvalue bounds), or
	// "chrongear" (P-CSI fell back to the ChronGear solver).
	Degraded string
}
