package core

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"repro/internal/comm"
)

// Communication-avoiding s-step PCG with a Chebyshev basis.
//
// ChronGear pays one global reduction per iteration and P-CSI removes inner
// products but still reduces every CheckEvery iterations; the s-step solver
// attacks the reduction *cadence* directly (ROADMAP item 1, after D'Ambra
// et al.): each outer block builds s preconditioned matrix-vector products —
// s halo exchanges, zero reductions — then assembles every inner product the
// next s CG iterations need into ONE fused AllReduce, solves the small Gram
// system rank-locally, and advances x and r by the block recurrence. A
// converged solve therefore performs exactly ceil(iters/s)+1 global
// reductions (the +1 is the final block whose entering residual proves
// convergence; ‖b‖² rides the first reduction rather than paying its own).
//
// The monomial basis [M⁻¹r, (M⁻¹A)M⁻¹r, …] loses linear independence in
// floating point by s ≈ 4; the basis here is the scaled-and-shifted
// Chebyshev recurrence over the session's Lanczos spectrum estimate [ν, μ]
// (the same estimate P-CSI irons its iteration with), which keeps the Gram
// matrix well-conditioned through MaxSStep. Basis-degeneracy is still
// detected — a Cholesky pivot loss in the Gram factorization — and answered
// by restarting the block recurrence (dropping the previous direction
// block), never by dividing through a bad pivot.
//
// The recurrence follows Chronopoulos & Gear: with V the basis block,
// Q = A·V, and P_prev the previous direction block with W_prev = P_prevᵀAP_prev,
//
//	B = −W_prev⁻¹·C       where C[i][j] = ⟨A·p_i, v_j⟩
//	P  = V + P_prev·B      (A-orthogonal to P_prev)
//	W  = G + BᵀC + CᵀB + BᵀW_prev·B   where G[i][j] = ⟨v_i, A·v_j⟩
//	a  = W⁻¹·m             where m[i] = ⟨v_i, r⟩  (P_prevᵀr = 0 exactly)
//	x += P·a,  r −= (A·P)·a
//
// All dense arithmetic runs on *reduced* values, so it is bit-identical on
// every rank by construction — no rank-local verdict ever steers a
// collective (the collectivelockstep contract).

// MaxSStep is the largest supported s-step block size. Sixteen is far past
// the practical crossover (the Gram assembly's s² dots and the block
// update's s² axpys overtake the saved reduction latency well before), but
// the field tables and payload widths are sized for it so experiments can
// probe the downslope.
const MaxSStep = 16

// Per-direction field names, precomputed so the solve loop never builds a
// string (the session field map is keyed by name).
var sstepVName, sstepQName, sstepPName, sstepAName [MaxSStep]string

func init() {
	for j := 0; j < MaxSStep; j++ {
		sstepVName[j] = "sstep.v" + strconv.Itoa(j)
		sstepQName[j] = "sstep.q" + strconv.Itoa(j)
		sstepPName[j] = "sstep.p" + strconv.Itoa(j)
		sstepAName[j] = "sstep.ap" + strconv.Itoa(j)
	}
}

// SolveSStep runs the communication-avoiding s-step PCG with a background
// context; see SolveSStepContext.
func (s *Session) SolveSStep(b, x0 []float64) (Result, []float64, error) {
	return s.SolveSStepContext(context.Background(), b, x0)
}

// SolveSStepContext runs the communication-avoiding s-step PCG: blocks of
// Options.SStep Chebyshev-basis matrix-vector products between single fused
// global reductions, so a converged solve performs at most
// ceil(Iterations/SStep)+1 reductions. The Chebyshev basis interval comes
// from the Session's eigenvalue estimates; when absent, EstimateEigenvalues
// runs first (charged to the Session's EigenStats, exactly as for P-CSI).
//
// Convergence is checked on each block's *entering* residual — the check
// rides the block's one mandatory reduction, so detection lags the true
// convergence point by up to s−1 iterations but costs zero extra
// communication. Cancellation likewise rides the block reduction.
//
// The solver runs the legacy (non-resilient) path even under an active
// fault injector: the resilience ladder covers the per-iteration solvers,
// and SOLVERS.md records the gap. Float32 precision is rejected by
// SolveContext before dispatch.
func (s *Session) SolveSStepContext(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Setup(); err != nil {
		return Result{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, nil, ctxSolveErr(ctx, "sstep", 0)
	}
	if s.Mu == 0 {
		if _, _, _, err := s.EstimateEigenvalues(nil, 0); err != nil {
			return Result{}, nil, err
		}
	}
	if !(s.Nu > 0 && s.Mu > s.Nu) {
		return Result{}, nil, fmt.Errorf("core: invalid Chebyshev interval [%g, %g]: %w", s.Nu, s.Mu, ErrBadSpec)
	}
	o := s.Opts
	sv := o.SStep
	out := s.solveOut()
	res := Result{Solver: "sstep", Precond: o.Precond, Nu: s.Nu, Mu: s.Mu, EigSteps: s.EigSteps}
	trace := &SolveTrace{EigBounds: s.EigTrace,
		Residuals: make([]ResidualPoint, 0, o.MaxIters/sv+1)}
	cancelled := false // written by rank 0 only, read after Run

	// Chebyshev basis parameters: centre γ and half-width δ of [ν, μ].
	gamma := (s.Mu + s.Nu) / 2
	delta := (s.Mu - s.Nu) / 2
	invDelta := 1 / delta
	twoInvDelta := 2 / delta

	// Fused reduction payload layout (one AllReduce per block):
	//   [offG  : offG+nG)   upper triangle of G, row-major, G[i][j]=⟨v_i,q_j⟩
	//   [offC  : offC+s²)   C[i][j] = ⟨A·p_i, v_j⟩ (zero on the first block)
	//   [offM  : offM+s)    m[i] = ⟨v_i, r⟩
	//   [offRn]             ‖r‖² entering the block (the convergence check)
	//   [offBn]             ‖b‖² (first block only; rides along, no own reduce)
	//   [offCancel]         cancellation flag sum
	nG := sv * (sv + 1) / 2
	offC := nG
	offM := offC + sv*sv
	offRn := offM + sv
	offBn := offRn + 1
	offCancel := offBn + 1
	width := offCancel + 1

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.scatterMasked(r, "sstep.x", x0)
		bs := s.scatterMasked(r, "sstep.b", b)
		rr := s.field(r, "sstep.r")
		ww := s.field(r, "sstep.w")
		// Direction-block field groups. vv/qq double as the basis (V, Q=AV)
		// during the build and as the *next* P/AP during the update — the
		// update writes P = V + P_prev·B into the vv slots, then the slices
		// swap, so no block-sized copies happen anywhere in the loop.
		vv := make([][][]float64, sv)
		qq := make([][][]float64, sv)
		pp := make([][][]float64, sv)
		aps := make([][][]float64, sv)
		for j := 0; j < sv; j++ {
			vv[j] = s.field(r, sstepVName[j])
			qq[j] = s.field(r, sstepQName[j])
			pp[j] = s.field(r, sstepPName[j])
			aps[j] = s.field(r, sstepAName[j])
		}
		payload := make([]float64, width)
		// Dense rank-local scratch for the (s×s) Gram arithmetic; tiny
		// (≤ MaxSStep² doubles each) and identical on every rank because it
		// is computed from reduced values only.
		gm := make([]float64, sv*sv) // G
		cm := make([]float64, sv*sv) // C
		bm := make([]float64, sv*sv) // B
		um := make([]float64, sv*sv) // W_prev·B
		tm := make([]float64, sv*sv) // W_new accumulator
		wPrev := make([]float64, sv*sv)
		wFac := make([]float64, sv*sv)
		mvec := make([]float64, sv)
		avec := make([]float64, sv)
		col := make([]float64, sv)

		bn2 := stageInitResidual(r, rs, rr, bs, xs)

		var bnorm, target float64
		first := true
		converged := false
		// Stagnation watch state; all derived from reduced values, so
		// lockstep on every rank.
		bestRn := math.Inf(1)
		stall := 0
		replaced := false
		forceRestart := false
		k := 0
		for {
			if k >= o.MaxIters {
				break
			}
			// Basis build: v₀ = M⁻¹r, then the Chebyshev three-term
			// recurrence on the preconditioned operator. s halo exchanges
			// (inside stageMatvec), zero reductions.
			stagePrecond(r, rs, vv[0], rr)
			for j := 0; j < sv; j++ {
				stageMatvec(r, rs, qq[j], vv[j])
				if j+1 < sv {
					stagePrecond(r, rs, ww, qq[j])
					for i := 0; i < nb; i++ {
						loc := rs.locs[i]
						if j == 0 {
							chebBasisFirst(loc, vv[1][i], ww[i], vv[0][i], gamma, invDelta)
							r.AddFlops(2 * int64(loc.InteriorLen()))
						} else {
							chebBasisNext(loc, vv[j+1][i], ww[i], vv[j][i], vv[j-1][i], gamma, twoInvDelta)
							r.AddFlops(3 * int64(loc.InteriorLen()))
						}
					}
				}
			}
			// Gram assembly: every inner product the block recurrence needs,
			// packed into the one payload.
			idx := 0
			for i := 0; i < sv; i++ {
				for j := i; j < sv; j++ {
					payload[idx] = stageDot(r, rs, vv[i], qq[j])
					idx++
				}
			}
			if first {
				for i := offC; i < offM; i++ {
					payload[i] = 0
				}
			} else {
				for i := 0; i < sv; i++ {
					for j := 0; j < sv; j++ {
						payload[offC+i*sv+j] = stageDot(r, rs, aps[i], vv[j])
					}
				}
			}
			for i := 0; i < sv; i++ {
				payload[offM+i] = stageDot(r, rs, vv[i], rr)
			}
			payload[offRn] = stageDot(r, rs, rr, rr)
			payload[offBn] = 0
			if first {
				payload[offBn] = bn2
			}
			payload[offCancel] = cancelFlag(ctx)
			g := r.AllReduce(payload) // the block's ONLY reduction

			rn := math.Sqrt(g[offRn])
			if first {
				bnorm = math.Sqrt(g[offBn])
				if r.ID == 0 {
					res.BNorm = bnorm
				}
				if bnorm == 0 {
					s.zeroSolutionExit(r, out, xs)
					if r.ID == 0 {
						res.Converged = true
					}
					return
				}
				target = o.Tol * bnorm
			}
			if r.ID == 0 {
				res.RelResidual = rn / bnorm
			}
			traceResidual(r, trace, k, rn/bnorm)
			if rn <= target {
				converged = true
				break
			}
			if math.IsNaN(rn) {
				break
			}
			if g[offCancel] != 0 { // some rank saw ctx done — all stop here
				if r.ID == 0 {
					cancelled = true
				}
				break
			}

			// Stagnation watch on the reduced entering residual. The block
			// recurrence's attainable accuracy is bounded by the basis
			// conditioning: in finite precision the recurrence residual
			// drifts from b − A·x and can plateau above the target (seen at
			// s=8 with the diagonal preconditioner on warm-started model
			// steps). The watch arms only near the round-off floor
			// (rel residual ≤ 1e-6) — far from it, a non-improving block is
			// ordinary non-monotone CG behaviour, not drift. Sixteen
			// stalled iterations (counted in iterations, not blocks, so the
			// patience is the same at every s) trigger a residual
			// replacement — recompute the true residual and restart the
			// recurrence from it (van der Vorst-style reliable updates; s+1
			// halo'd matvecs, zero extra reductions, and k still advances
			// so the ceil(iters/s)+1 reduction bound holds) — and when even
			// the replaced residual cannot improve across another sixteen,
			// the solve gives up rather than spinning to MaxIters.
			if rn < 0.99*bestRn {
				bestRn = rn
				stall = 0
				replaced = false
			} else if rn <= 1e-6*bnorm {
				stall += sv
				if stall >= 16 {
					if replaced {
						break
					}
					r.Exchange(xs)
					for i := 0; i < nb; i++ {
						loc := rs.locs[i]
						residual(loc, rr[i], bs[i], xs[i])
						r.AddFlops(9 * int64(loc.InteriorLen()))
					}
					replaced = true
					forceRestart = true
					stall = 0
					k += sv // this block's basis matvecs were spent
					continue
				}
			}

			// Unpack the reduced Gram system before the next collective (g
			// is the communicator's pooled buffer, valid only until then).
			idx = 0
			for i := 0; i < sv; i++ {
				for j := i; j < sv; j++ {
					gm[i*sv+j] = g[idx]
					gm[j*sv+i] = g[idx]
					idx++
				}
			}
			copy(cm, g[offC:offM])
			copy(mvec, g[offM:offRn])

			// Block recurrence on reduced values: rank-local, identical on
			// every rank. A failed Cholesky factorization of W_new means the
			// previous direction block has degenerated — restart the
			// recurrence (P = V, W = G) rather than divide through it.
			restart := first || forceRestart
			forceRestart = false
			if !restart {
				for j := 0; j < sv; j++ { // B = −W_prev⁻¹·C, column by column
					for i := 0; i < sv; i++ {
						col[i] = cm[i*sv+j]
					}
					cholSolve(wFac, sv, col)
					for i := 0; i < sv; i++ {
						bm[i*sv+j] = -col[i]
					}
				}
				for i := 0; i < sv; i++ { // um = W_prev·B
					for j := 0; j < sv; j++ {
						var v float64
						for l := 0; l < sv; l++ {
							v += wPrev[i*sv+l] * bm[l*sv+j]
						}
						um[i*sv+j] = v
					}
				}
				for i := 0; i < sv; i++ { // W_new = G + BᵀC + CᵀB + Bᵀ(W_prev·B)
					for j := 0; j < sv; j++ {
						v := gm[i*sv+j]
						for l := 0; l < sv; l++ {
							v += bm[l*sv+i]*cm[l*sv+j] + cm[l*sv+i]*bm[l*sv+j] + bm[l*sv+i]*um[l*sv+j]
						}
						tm[i*sv+j] = v
					}
				}
				copy(wFac, tm)
				if cholFactor(wFac, sv) {
					copy(wPrev, tm)
				} else {
					restart = true
				}
			}
			if restart {
				copy(wFac, gm)
				if !cholFactor(wFac, sv) {
					// Even the fresh basis is degenerate (r at rounding level
					// or non-finite) — no further progress is possible.
					break
				}
				copy(wPrev, gm)
				pp, vv = vv, pp // P = V, AP = Q (slice-header swap, no copy)
				aps, qq = qq, aps
			} else {
				for j := 0; j < sv; j++ { // P = V + P_prev·B into the vv slots
					for i := 0; i < sv; i++ {
						c := bm[i*sv+j]
						for blk := 0; blk < nb; blk++ {
							loc := rs.locs[blk]
							axpy(loc, vv[j][blk], pp[i][blk], c)
							axpy(loc, qq[j][blk], aps[i][blk], c)
							r.AddFlops(2 * int64(loc.InteriorLen()))
						}
					}
				}
				pp, vv = vv, pp
				aps, qq = qq, aps
			}

			copy(avec, mvec) // a = W⁻¹·m
			cholSolve(wFac, sv, avec)
			for j := 0; j < sv; j++ { // x += P·a, r −= (A·P)·a
				for blk := 0; blk < nb; blk++ {
					loc := rs.locs[blk]
					axpy(loc, xs[blk], pp[j][blk], avec[j])
					axpy(loc, rr[blk], aps[j][blk], -avec[j])
					r.AddFlops(2 * int64(loc.InteriorLen()))
				}
			}
			k += sv
			first = false
		}
		if r.ID == 0 {
			res.Iterations = k
			res.Converged = converged
		}
		s.gatherSolution(r, out, xs)
	})
	res.Stats = st
	res.Trace = trace
	s.restoreLand(out, b)
	if cancelled {
		return res, out, ctxSolveErr(ctx, "sstep", res.Iterations)
	}
	if !res.Converged && (math.IsNaN(res.RelResidual) || res.RelResidual > 1e6) {
		return res, out, fmt.Errorf("core: s-step PCG diverged; Chebyshev basis interval [%g, %g] may not bracket the spectrum: %w", s.Nu, s.Mu,
			&NotConvergedError{Solver: "sstep", Iterations: res.Iterations, RelResidual: res.RelResidual})
	}
	return res, out, nil
}
