// Package obs is the observability layer: a metrics registry (counters,
// gauges, fixed-bucket histograms) with Prometheus-style text exposition and
// JSON export, plus a low-overhead ring-buffered tracer that the virtual-rank
// runtime feeds with per-phase events (compute, halo exchange, global
// reduction) carrying virtual-clock timestamps.
//
// The package mirrors the instrumentation the paper's analysis rests on:
// POP's computation / boundary-update / global-reduction timers (§2.2) and
// the per-iteration residual and eigenvalue-bound histories behind §5.2's
// figures. It deliberately imports nothing above the standard library so the
// comm substrate can depend on it without cycles, and every hot-path hook is
// gated behind a nil check so disabled instrumentation costs one branch and
// zero allocations.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Safe for concurrent
// use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. Safe for concurrent
// use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with Prometheus "le" semantics: an
// observation lands in the first bucket whose upper bound is ≥ the value,
// with an implicit +Inf overflow bucket. Safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds (inclusive)
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCount returns the count in bucket i (i == len(bounds) is +Inf).
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Registry holds named metrics. Metric names may carry Prometheus-style
// labels inline ('pop_phase_seconds{phase="comp"}'); exposition splits the
// base name off for HELP/TYPE lines. Get-or-create accessors are safe for
// concurrent use; a name registered as one kind must not be re-registered as
// another.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // base name → help text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// baseName strips an inline label set from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; bounds are
// only used on first creation.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
		r.setHelp(name, help)
	}
	return h
}

func (r *Registry) setHelp(name, help string) {
	if help != "" {
		r.help[baseName(name)] = help
	}
}

// splitLabels separates 'base{labels}' into base and the inner label string
// (without braces); labels is "" when absent.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// escapeHelp escapes a HELP line for the Prometheus text format: backslash
// becomes \\ and newline becomes \n (the only two escapes the format
// defines for HELP).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sanitizeLabels re-escapes a rendered inline label set for the Prometheus
// text format. Inside quoted label values, raw newlines become \n and
// backslashes not already starting a format-valid escape (\\, \", \n) are
// doubled; values that were built with %q (already escaped) pass through
// unchanged, so the function is idempotent.
func sanitizeLabels(labels string) string {
	if !strings.ContainsAny(labels, "\\\n") {
		return labels
	}
	var sb strings.Builder
	sb.Grow(len(labels) + 4)
	inQuote := false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			sb.WriteByte(c)
		case inQuote && c == '\\':
			if i+1 < len(labels) && (labels[i+1] == '\\' || labels[i+1] == '"' || labels[i+1] == 'n') {
				sb.WriteByte(c)
				i++
				sb.WriteByte(labels[i])
			} else {
				sb.WriteString(`\\`)
			}
		case inQuote && c == '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// sanitizeName applies sanitizeLabels to a metric name's inline label set.
func sanitizeName(name string) string {
	base, labels := splitLabels(name)
	if labels == "" {
		return base
	}
	return base + "{" + sanitizeLabels(labels) + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	typeOf := make(map[string]string)
	var names []string
	for n := range r.counters {
		names = append(names, n)
		typeOf[baseName(n)] = "counter"
	}
	for n := range r.gauges {
		names = append(names, n)
		typeOf[baseName(n)] = "gauge"
	}
	for n := range r.hists {
		names = append(names, n)
		typeOf[baseName(n)] = "histogram"
	}
	sort.Strings(names)
	headerDone := make(map[string]bool)
	for _, n := range names {
		base := baseName(n)
		if !headerDone[base] {
			headerDone[base] = true
			if h := r.help[base]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(h)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typeOf[base]); err != nil {
				return err
			}
		}
		var err error
		switch {
		case r.counters[n] != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", sanitizeName(n), r.counters[n].Value())
		case r.gauges[n] != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", sanitizeName(n), r.gauges[n].Value())
		default:
			err = writePromHistogram(w, n, r.hists[n])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits the _bucket/_sum/_count series for one histogram.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	base, labels := splitLabels(name)
	labels = sanitizeLabels(labels)
	withLe := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", base, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels, le)
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.BucketCount(i)
		if _, err := fmt.Fprintf(w, "%s %d\n", withLe(fmt.Sprintf("%g", b)), cum); err != nil {
			return err
		}
	}
	cum += h.BucketCount(len(h.bounds))
	if _, err := fmt.Fprintf(w, "%s %d\n", withLe("+Inf"), cum); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, suffix, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count())
	return err
}

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per-bucket, last entry is +Inf overflow
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// WriteJSON renders the registry as one JSON object keyed by metric kind.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]jsonHistogram, len(r.hists)),
	}
	for n, c := range r.counters {
		out.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		out.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		jh := jsonHistogram{Bounds: h.Bounds(), Sum: h.Sum(), Count: h.Count()}
		for i := 0; i <= len(h.bounds); i++ {
			jh.Counts = append(jh.Counts, h.BucketCount(i))
		}
		out.Histograms[n] = jh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
