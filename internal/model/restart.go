package model

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the serialized prognostic state. Configuration (grid,
// physics, solver) is not stored: a restart resumes on an identically
// configured model, which the header fields verify.
type checkpoint struct {
	GridName  string
	Nx, Ny    int
	NZ        int
	StepCount int
	Eta, U, V []float64
	Temp      [][]float64
	StericRef []float64
}

// Save writes a restart checkpoint. The model can be resumed bit-for-bit
// with Restore on a model built from the same Config.
func (m *Model) Save(w io.Writer) error {
	cp := checkpoint{
		GridName: m.G.Name,
		Nx:       m.G.Nx, Ny: m.G.Ny,
		NZ:        m.Cfg.NZ,
		StepCount: m.StepCount,
		Eta:       m.Eta, U: m.U, V: m.V,
		Temp:      m.Temp,
		StericRef: m.stericRef,
	}
	if err := gob.NewEncoder(w).Encode(&cp); err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	return nil
}

// Restore loads a checkpoint written by Save into this model. The model
// must have been built on the same grid and layer count.
func (m *Model) Restore(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("model: restore: %w", err)
	}
	if cp.GridName != m.G.Name || cp.Nx != m.G.Nx || cp.Ny != m.G.Ny {
		return fmt.Errorf("model: checkpoint is for grid %q (%d×%d), model has %q (%d×%d)",
			cp.GridName, cp.Nx, cp.Ny, m.G.Name, m.G.Nx, m.G.Ny)
	}
	if cp.NZ != m.Cfg.NZ {
		return fmt.Errorf("model: checkpoint has %d layers, model has %d", cp.NZ, m.Cfg.NZ)
	}
	if len(cp.Eta) != m.G.N() || len(cp.U) != m.G.N() || len(cp.V) != m.G.N() {
		return fmt.Errorf("model: checkpoint field lengths inconsistent with grid")
	}
	copy(m.Eta, cp.Eta)
	copy(m.U, cp.U)
	copy(m.V, cp.V)
	for l := range m.Temp {
		if len(cp.Temp[l]) != m.G.N() {
			return fmt.Errorf("model: checkpoint layer %d has wrong length", l)
		}
		copy(m.Temp[l], cp.Temp[l])
	}
	copy(m.stericRef, cp.StericRef)
	m.StepCount = cp.StepCount
	m.IterHistory = nil
	return nil
}
