package analysis_test

import (
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

// TestReductionWidth covers rank-invariant widths (constants, s-derived
// closed forms, caller-shared parameters) staying clean while widths
// derived from rank-local state (len(r.Blocks), r.ID arithmetic) are
// diagnosed at the deriving expression.
func TestReductionWidth(t *testing.T) {
	analyzertest.Run(t, "testdata/reductionwidth", poplint.ReductionWidth, "redwidth")
}
