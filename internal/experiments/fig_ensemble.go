package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/stats"
)

// Ensemble-experiment scale. The paper runs 1° CESM for 12–36 months; this
// substrate runs a reduced basin with a scaled "month" so 40-member
// ensembles finish on one machine. Shapes to reproduce: RMSE magnitudes far
// below climate signals regardless of tolerance (Fig. 12's null result),
// and RMSZ separating loose tolerances from the ensemble envelope by orders
// of magnitude while tight tolerances stay inside (Fig. 13).
const (
	ensNx, ensNy  = 96, 72
	ensMonthSteps = 240 // one scaled "month" of Δt=2400 s steps
	ensSpinup     = 600
	ensMembers    = 40
	ensMonths     = 12
)

// ensScale returns the (possibly quick-mode) ensemble dimensions.
func (c *Config) ensScale() (nx, ny, monthSteps, spinup, members, months int) {
	if c.Quick {
		return 48, 36, 100, 200, 10, 4
	}
	return ensNx, ensNy, ensMonthSteps, ensSpinup, ensMembers, ensMonths
}

// ensBase builds and spins up the shared base state all runs fork from.
func (c *Config) ensBase() (*model.Model, error) {
	nx, ny, _, spinup, _, _ := c.ensScale()
	spec := grid.TestSpec()
	spec.Nx, spec.Ny = nx, ny
	spec.Name = fmt.Sprintf("ens-%dx%d", nx, ny)
	cfg := model.Config{
		Grid:       grid.Generate(spec),
		NZ:         5,
		Solver:     model.SolverChronGear,
		SolverOpts: core.Options{Precond: core.PrecondDiagonal, Tol: 1e-13},
	}
	m, err := model.New(cfg)
	if err != nil {
		return nil, err
	}
	c.logf("ensemble: spinning up %d steps on %dx%d", spinup, nx, ny)
	if err := m.Run(spinup); err != nil {
		return nil, err
	}
	return m, nil
}

// flattenTemp concatenates all temperature layers (the paper evaluates the
// 3-D temperature field).
func flattenTemp(m *model.Model) []float64 {
	out := make([]float64, 0, len(m.Temp)*len(m.Temp[0]))
	for _, layer := range m.Temp {
		out = append(out, layer...)
	}
	return out
}

// temp3DMask repeats the ocean mask across layers.
func temp3DMask(m *model.Model) []bool {
	out := make([]bool, 0, len(m.Temp)*len(m.Temp[0]))
	for range m.Temp {
		out = append(out, m.G.Mask...)
	}
	return out
}

// runMonthly forks base into a model with the given solver options, runs
// `months` scaled months, and returns the monthly 3-D temperature fields.
func (c *Config) runMonthly(base *model.Model, solver model.SolverName, opts core.Options,
	perturb float64, seed int64, months, monthSteps int) ([][]float64, error) {
	m, err := base.Fork(solver, opts)
	if err != nil {
		return nil, err
	}
	if perturb != 0 {
		m.PerturbTemperature(perturb, seed)
	}
	out := make([][]float64, months)
	for mo := 0; mo < months; mo++ {
		if err := m.Run(monthSteps); err != nil {
			return nil, err
		}
		out[mo] = flattenTemp(m)
	}
	return out, nil
}

// Fig12Tolerances is the paper's solver convergence-tolerance sweep.
var Fig12Tolerances = []float64{1e-10, 1e-11, 1e-12, 1e-13, 1e-14, 1e-15}

// Fig12 is Figure 12: monthly temperature RMSE of runs with varying solver
// tolerance against the strictest-tolerance (1e-16) run. The paper's point:
// RMSE magnitudes are so far below any climate signal that the test cannot
// order tolerances usefully. (Shape note, recorded in EXPERIMENTS.md: this
// substrate's circulation is laminar at laptop resolution, so its RMSE
// stays tolerance-ordered instead of being scrambled by chaos — but the
// magnitudes, the paper's actual argument, reproduce.)
func (c *Config) Fig12() (*Table, error) {
	base, err := c.ensBase()
	if err != nil {
		return nil, err
	}
	_, _, monthSteps, _, _, months := c.ensScale()
	ref, err := c.runMonthly(base, model.SolverChronGear,
		core.Options{Precond: core.PrecondDiagonal, Tol: 1e-16}, 0, 0, months, monthSteps)
	if err != nil {
		return nil, err
	}
	mask := temp3DMask(base)
	t := &Table{Title: "Fig 12: monthly temperature RMSE vs tol=1e-16 run (K)"}
	t.Header = []string{"month"}
	for _, tol := range Fig12Tolerances {
		t.Header = append(t.Header, fmt.Sprintf("tol=%.0e", tol))
	}
	cases := make([][][]float64, len(Fig12Tolerances))
	for i, tol := range Fig12Tolerances {
		c.logf("fig12: tolerance %.0e", tol)
		cases[i], err = c.runMonthly(base, model.SolverChronGear,
			core.Options{Precond: core.PrecondDiagonal, Tol: tol}, 0, 0, months, monthSteps)
		if err != nil {
			return nil, err
		}
	}
	for mo := 0; mo < months; mo++ {
		row := []string{fmt.Sprint(mo + 1)}
		for i := range Fig12Tolerances {
			row = append(row, fmt.Sprintf("%.3e", stats.RMSE(cases[i][mo], ref[mo], mask)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13Case is one "new case" evaluated against the ensemble.
type Fig13Case struct {
	Name   string
	Solver model.SolverName
	Opts   core.Options
}

// Fig13Cases are the evaluated configurations: the paper's loose/strict
// tolerances plus the new P-CSI+EVP solver whose acceptance the method
// gates.
var Fig13Cases = []Fig13Case{
	{"cg tol=1e-10", model.SolverChronGear, core.Options{Precond: core.PrecondDiagonal, Tol: 1e-10}},
	{"cg tol=1e-11", model.SolverChronGear, core.Options{Precond: core.PrecondDiagonal, Tol: 1e-11}},
	{"cg tol=1e-13", model.SolverChronGear, core.Options{Precond: core.PrecondDiagonal, Tol: 1e-13}},
	{"cg tol=1e-15", model.SolverChronGear, core.Options{Precond: core.PrecondDiagonal, Tol: 1e-15}},
	{"pcsi+evp 1e-13", model.SolverPCSI, core.Options{Precond: core.PrecondEVP, Tol: 1e-13}},
}

// Fig13 is Figure 13: the monthly RMSZ of each case against a 40-member
// ensemble of O(1e−14)-perturbed default-solver runs, with the ensemble's
// own member envelope (the paper's yellow band). Expected: the 1e-10/1e-11
// cases sit orders of magnitude above the envelope; the default, stricter,
// and P-CSI+EVP cases sit at the envelope — the consistency evidence that
// allowed P-CSI into the POP release.
func (c *Config) Fig13() (*Table, error) {
	base, err := c.ensBase()
	if err != nil {
		return nil, err
	}
	_, _, monthSteps, _, members, months := c.ensScale()
	mask := temp3DMask(base)
	defaultOpts := core.Options{Precond: core.PrecondDiagonal, Tol: 1e-13}

	// Ensemble members: identical solver, perturbed initial temperature.
	memberMonths := make([][][]float64, members) // [member][month][]
	for mem := 0; mem < members; mem++ {
		c.logf("fig13: member %d/%d", mem+1, members)
		memberMonths[mem], err = c.runMonthly(base, model.SolverChronGear, defaultOpts,
			1e-14, int64(mem+1), months, monthSteps)
		if err != nil {
			return nil, err
		}
	}
	// Cases.
	caseMonths := make([][][]float64, len(Fig13Cases))
	for ci, fc := range Fig13Cases {
		c.logf("fig13: case %s", fc.Name)
		caseMonths[ci], err = c.runMonthly(base, fc.Solver, fc.Opts, 0, 0, months, monthSteps)
		if err != nil {
			return nil, err
		}
	}

	t := &Table{Title: fmt.Sprintf("Fig 13: monthly temperature RMSZ vs %d-member ensemble", members)}
	t.Header = []string{"month", "envelope_lo", "envelope_hi"}
	for _, fc := range Fig13Cases {
		t.Header = append(t.Header, fc.Name)
	}
	for mo := 0; mo < months; mo++ {
		ens := stats.NewEnsemble(len(mask), mask)
		monthFields := make([][]float64, members)
		for mem := 0; mem < members; mem++ {
			monthFields[mem] = memberMonths[mem][mo]
			ens.Add(memberMonths[mem][mo])
		}
		lo, hi, err := stats.MemberEnvelope(monthFields, mask)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(mo + 1), fmt.Sprintf("%.2f", lo), fmt.Sprintf("%.2f", hi)}
		for ci := range Fig13Cases {
			z, err := ens.RMSZ(caseMonths[ci][mo])
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3g", z))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
