package pop

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/model"
)

func TestNewGridPresets(t *testing.T) {
	g, err := NewGrid(GridTest)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nx != 64 || g.Ny != 48 {
		t.Fatalf("test grid %dx%d", g.Nx, g.Ny)
	}
	if _, err := NewGrid("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestSolverFacadeEndToEnd(t *testing.T) {
	g, err := NewGrid(GridTest)
	if err != nil {
		t.Fatal(err)
	}
	op := AssembleOperator(g, 1920)
	// b = A·ones over ocean.
	ones := make([]float64, g.N())
	for k, m := range g.Mask {
		if m {
			ones[k] = 1
		}
	}
	b := make([]float64, g.N())
	op.Apply(b, ones)
	for k, m := range g.Mask {
		if !m {
			b[k] = 0
		}
	}

	for _, spec := range []SolverSpec{
		{Method: MethodChronGear, Precond: PrecondDiagonal, Cores: 12},
		{Method: MethodPCSI, Precond: PrecondEVP, Cores: 12, MachineName: "yellowstone"},
		{Method: MethodPCG, Precond: PrecondBlockLU},
	} {
		s, err := NewSolver(g, spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		res, x, err := s.Solve(b, nil)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if !res.Converged {
			t.Fatalf("%+v did not converge", spec)
		}
		for k, m := range g.Mask {
			if m && math.Abs(x[k]-1) > 1e-8 {
				t.Fatalf("%+v: solution error at %d: %v", spec, k, x[k])
			}
		}
		if spec.MachineName != "" && res.Stats.MaxClock <= 0 {
			t.Fatalf("%+v: priced run has zero virtual time", spec)
		}
	}
}

func TestSolverValidation(t *testing.T) {
	g, _ := NewGrid(GridTest)
	// Out-of-range enum values must be rejected at construction, not
	// silently dispatched to a default solver at solve time.
	if _, err := NewSolver(g, SolverSpec{Method: Method(99)}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown method: err = %v, want ErrBadSpec", err)
	}
	if _, err := NewSolver(g, SolverSpec{Precond: Precond(99)}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown preconditioner: err = %v, want ErrBadSpec", err)
	}
	if _, err := NewSolver(g, SolverSpec{MachineName: "magic"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := NewSolver(nil, SolverSpec{}); !errors.Is(err, ErrBadSpec) {
		t.Fatal("nil grid accepted")
	}
	s, err := NewSolver(g, SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(make([]float64, 3), nil); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("wrong-length rhs: err = %v, want ErrBadSpec", err)
	}
	// String specs still work through the Parse helpers.
	if m, err := ParseMethod("magic"); err == nil {
		t.Fatalf("ParseMethod(magic) = %v, want error", m)
	} else if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("ParseMethod(magic): err = %v, want ErrBadSpec", err)
	}
	if _, err := ParsePrecond("magic"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("ParsePrecond(magic): err = %v, want ErrBadSpec", err)
	}
}

func TestCSIMethodMapsToUnpreconditioned(t *testing.T) {
	g, _ := NewGrid(GridTest)
	s, err := NewSolver(g, SolverSpec{Method: MethodCSI})
	if err != nil {
		t.Fatal(err)
	}
	if s.Spec.Method != MethodPCSI || s.Spec.Precond != PrecondIdentity {
		t.Fatalf("csi should map onto pcsi+none, got %v+%v", s.Spec.Method, s.Spec.Precond)
	}
}

func TestSolveContextCancellation(t *testing.T) {
	g, _ := NewGrid(GridTest)
	s, err := NewSolver(g, SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	for k, m := range g.Mask {
		if m {
			b[k] = 1
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.SolveContext(ctx, b, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve: err = %v, want context.Canceled", err)
	}
	if res, _, err := s.SolveContext(context.Background(), b, nil); err != nil || !res.Converged {
		t.Fatalf("background solve after cancel: converged=%v err=%v", res.Converged, err)
	}
}

func TestModelFacade(t *testing.T) {
	g, _ := NewGrid(GridTest)
	m, err := NewModel(ModelConfig{Grid: g, Solver: model.SolverChronGear})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"yellowstone", "edison", "ideal"} {
		m, err := MachineByName(name)
		if err != nil || m == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if m, err := MachineByName(""); err != nil || m != nil {
		t.Fatal("empty machine should be nil, nil")
	}
}

func TestExperimentNames(t *testing.T) {
	names := ExperimentNames()
	want := map[string]bool{"fig1": true, "fig8": true, "fig13": true, "tab1": true}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("registry missing expected experiments: %v", names)
	}
}
