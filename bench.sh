#!/bin/sh
# bench.sh — run the kernel-level microbenchmarks (stencil apply, halo
# exchange, global reductions, steady-state solves) with allocation
# reporting, and distill the results into BENCH_kernels.json so allocation
# or wall-clock regressions in the zero-allocation steady-state machinery
# are visible as a diff.
#
# Usage: ./bench.sh [count]   (count = benchmark repetitions, default 3)
set -eu

cd "$(dirname "$0")"
count=${1:-3}
out=BENCH_kernels.json
raw=$(mktemp)
trap 'rm -rf "$raw"' EXIT

echo "== kernel benchmarks (-benchmem, count=$count) =="
go test -run '^$' \
    -bench 'BenchmarkStencilApply|BenchmarkHaloExchange|BenchmarkAllReduce64Ranks|BenchmarkReduce$|BenchmarkSolveSteadyState' \
    -benchmem -benchtime=200ms -count="$count" . | tee "$raw"

python3 - "$raw" "$count" > "$out" <<'EOF'
import json, re, sys

# Lines look like:
#   BenchmarkHaloExchange   	    1234	     19876 ns/op	    4528 B/op	      68 allocs/op
pat = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+[\d.]+ MB/s)?"
    r"(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?")
runs = {}
for line in open(sys.argv[1]):
    m = pat.match(line)
    if not m:
        continue
    runs.setdefault(m.group(1), []).append({
        "ns_per_op": float(m.group(3)),
        "bytes_per_op": float(m.group(4)) if m.group(4) else None,
        "allocs_per_op": float(m.group(5)) if m.group(5) else None,
    })

bench = {}
for name, rs in sorted(runs.items()):
    ns = sorted(r["ns_per_op"] for r in rs)
    bench[name] = {
        "ns_per_op_median": ns[len(ns) // 2],
        "ns_per_op_min": ns[0],
        "bytes_per_op": rs[0]["bytes_per_op"],
        "allocs_per_op": rs[0]["allocs_per_op"],
        "runs": len(rs),
    }

json.dump({"benchtime": "200ms", "count": int(sys.argv[2]),
           "benchmarks": bench}, sys.stdout, indent=2)
print()
EOF

echo "bench.sh: wrote $out"

echo "== solve service load test =="
# Closed-loop throughput + overload shedding for the concurrent solve
# service; fails if the small-grid rate drops below 200 solves/s or the
# overload phase stops shedding. Writes BENCH_serve.json alongside.
go run ./cmd/popbench -serve

echo "bench.sh: wrote BENCH_serve.json"
