// Package analysis is poplint: a go/analysis suite that statically enforces
// the SPMD, determinism, and hot-path invariants the solver's correctness
// and performance results rest on (DESIGN.md §10).
//
// The paper's barotropic solvers are SPMD rank programs whose global
// reductions and halo exchanges must be reached in the same order by every
// rank, whose floating-point accumulations must be bitwise reproducible run
// to run, and whose steady-state iteration paths must not allocate. PRs 2–4
// made those properties hold and guard them with runtime tests (golden
// traces, allocation gates, lockstep fault verdicts); the analyzers here
// enforce them over every code path at build time:
//
//   - [CollectiveLockstep]: a collective (AllReduce, Exchange, Barrier, …)
//     reachable only under a branch conditioned on rank-local state is a
//     divergence/deadlock hazard.
//   - [Determinism]: no wall-clock time, no math/rand, no map-order- or
//     goroutine-spawn-order-dependent float accumulation in the numerics
//     packages.
//   - [HotPathAlloc]: functions annotated //pop:hotpath must not contain
//     allocation sites — the zero-alloc benchmark gate as a compile-time
//     property.
//   - [CtxFlow]: library code must not mint fresh context.Background/TODO;
//     incoming contexts must be threaded.
//   - [TypedErr]: error returns in the public-facing packages must wrap
//     with %w or use the typed Err*/*Error values so errors.Is/As matching
//     cannot silently rot.
//   - [WireDrift]: every semantic api.SolveRequest field must be carried
//     by the binary frame (encode and decode), folded into HashSolve, and
//     surfaced in the serve pool key the fleet shards on; deliberate
//     exclusions carry //pop:nonsemantic <reason>.
//   - [FaultLadder]: every core.Method must appear in the resilient
//     degraded-mode ladder or carry //pop:noresilient <reason> at its
//     definition.
//   - [ReductionWidth]: AllReduce payload widths must be rank-invariant
//     expressions — constants or s-derived closed forms — never derived
//     from rank-local state.
//
// False positives are suppressed, one line at a time, with a directive
// comment carrying the analyzer name and a mandatory reason:
//
//	//poplint:ignore ctxflow public Solve wrapper; documented background entrypoint
//
// The multichecker binary lives in cmd/poplint and runs standalone
// (`poplint ./...`) or as a vet tool (`go vet -vettool=$(which poplint)`).
package analysis

import "golang.org/x/tools/go/analysis"

// All returns every poplint analyzer, in deterministic order. cmd/poplint
// registers exactly this list, and the meta-test in this package asserts the
// list covers every analyzer the package defines.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CollectiveLockstep,
		Determinism,
		HotPathAlloc,
		CtxFlow,
		TypedErr,
		WireDrift,
		FaultLadder,
		ReductionWidth,
	}
}
