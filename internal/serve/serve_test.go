package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/serve"
)

// testRHS builds deterministic, distinct right-hand sides on the test grid.
func testRHS(t *testing.T, n int) [][]float64 {
	t.Helper()
	g, err := grid.ByName(grid.PresetTest)
	if err != nil {
		t.Fatal(err)
	}
	bs := make([][]float64, n)
	for i := range bs {
		b := make([]float64, g.N())
		for k, ocean := range g.Mask {
			if ocean {
				x := uint64(k)*2654435761 + uint64(i+1)*0x9E3779B9
				x ^= x >> 13
				b[k] = float64(x%1000)/500 - 1
			}
		}
		bs[i] = b
	}
	return bs
}

func closeQuietly(t *testing.T, s *serve.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestPooledSolvesBitwiseIdenticalToSerial is the determinism gate: N
// goroutines hammering a two-session pool must produce, for every rhs, a
// solution and residual history bitwise-identical to a one-session service
// solving the same requests serially. Pooling may reorder work but must
// never change a single bit of it.
func TestPooledSolvesBitwiseIdenticalToSerial(t *testing.T) {
	rhs := testRHS(t, 8)
	req := func(i int) serve.Request {
		return serve.Request{
			Grid:    grid.PresetTest,
			Method:  core.MethodPCSI,
			Precond: core.PrecondEVP,
			B:       rhs[i],
		}
	}

	serial := serve.New(serve.Options{Cores: 4, MaxSessionsPerKey: 1})
	want := make([]serve.Response, len(rhs))
	for i := range rhs {
		resp, err := serial.Solve(context.Background(), req(i))
		if err != nil {
			t.Fatalf("serial solve %d: %v", i, err)
		}
		want[i] = resp
	}
	closeQuietly(t, serial)

	pooled := serve.New(serve.Options{Cores: 4, MaxSessionsPerKey: 2})
	defer closeQuietly(t, pooled)
	const rounds = 3
	var wg sync.WaitGroup
	errs := make([]error, len(rhs)*rounds)
	got := make([]serve.Response, len(rhs)*rounds)
	for r := 0; r < rounds; r++ {
		for i := range rhs {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				got[slot], errs[slot] = pooled.Solve(context.Background(), req(i))
			}(r*len(rhs)+i, i)
		}
	}
	wg.Wait()

	for slot, err := range errs {
		if err != nil {
			t.Fatalf("pooled solve %d: %v", slot, err)
		}
		i := slot % len(rhs)
		w := want[i]
		g := got[slot]
		if g.Result.Iterations != w.Result.Iterations || g.Result.RelResidual != w.Result.RelResidual {
			t.Errorf("rhs %d: pooled result (%d its, %g) != serial (%d its, %g)",
				i, g.Result.Iterations, g.Result.RelResidual, w.Result.Iterations, w.Result.RelResidual)
		}
		gr, wr := g.Result.Trace.Residuals, w.Result.Trace.Residuals
		if len(gr) != len(wr) {
			t.Fatalf("rhs %d: residual history length %d != %d", i, len(gr), len(wr))
		}
		for c := range gr {
			if gr[c] != wr[c] {
				t.Errorf("rhs %d check %d: pooled %+v != serial %+v", i, c, gr[c], wr[c])
			}
		}
		for k := range g.X {
			if g.X[k] != w.X[k] {
				t.Fatalf("rhs %d: solution differs at %d: %g != %g", i, k, g.X[k], w.X[k])
			}
		}
	}
	if n := pooled.Snapshot().Sessions; n != 2 {
		t.Errorf("pooled service built %d sessions, want 2", n)
	}
}

// TestOverloadShedsNeverBlocks fills a tiny queue from many goroutines:
// some requests must shed with ErrOverloaded, every request must get an
// answer, and the test completing at all is the no-deadlock assertion.
func TestOverloadShedsNeverBlocks(t *testing.T) {
	rhs := testRHS(t, 1)
	// Unpreconditioned solves of an ill-conditioned operator (huge Tau)
	// take tens of milliseconds each — the worker cannot outrun the burst.
	slow := serve.Request{
		Grid: grid.PresetTest, Method: core.MethodChronGear,
		Precond: core.PrecondIdentity, B: rhs[0]}
	s := serve.New(serve.Options{
		MaxSessionsPerKey: 1,
		MaxQueue:          2,
		MaxBatch:          1, // one solve per checkout: at most 3 requests in flight
		MaxWait:           -1,
		Tau:               200000,
		// One worker shard: the token handoffs around every halo receive are
		// scheduling points, so caller goroutines get CPU time mid-solve and
		// the burst fills the queue even on GOMAXPROCS=1. This replaces the
		// old ad-hoc runtime.GOMAXPROCS(2) workaround.
		Threads: 1,
		Solver:  core.Options{Tol: 1e-12, MaxIters: 200000},
	})
	defer closeQuietly(t, s)

	// Warm the pool so the burst is not staggered by the session build.
	if _, err := s.Solve(context.Background(), slow); err != nil {
		t.Fatal(err)
	}

	const callers = 30
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, shed int
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start // burst together: a 2-deep queue cannot hold 30 arrivals
			_, err := s.Solve(context.Background(), slow)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil || errors.Is(err, core.ErrNotConverged):
				ok++
			case errors.Is(err, serve.ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if ok+shed != callers {
		t.Errorf("accounted %d responses, want %d", ok+shed, callers)
	}
	if shed == 0 {
		t.Error("no request was shed through a 2-deep queue with 30 callers")
	}
	if ok == 0 {
		t.Error("every request was shed")
	}
	st := s.Snapshot()
	if st.Shed != int64(shed) {
		t.Errorf("snapshot.Shed = %d, callers saw %d", st.Shed, shed)
	}
}

// TestBatchingCoalesces checks the batching window: a burst through a
// single worker must use fewer session checkouts than solves.
func TestBatchingCoalesces(t *testing.T) {
	rhs := testRHS(t, 6)
	s := serve.New(serve.Options{
		MaxSessionsPerKey: 1,
		MaxBatch:          8,
		MaxWait:           20 * time.Millisecond,
	})
	defer closeQuietly(t, s)

	var wg sync.WaitGroup
	for i := range rhs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Solve(context.Background(), serve.Request{Grid: grid.PresetTest, B: rhs[i]}); err != nil {
				t.Errorf("solve %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Solves != int64(len(rhs)) {
		t.Fatalf("solves = %d, want %d", st.Solves, len(rhs))
	}
	if st.Batches >= st.Solves {
		t.Errorf("batches = %d, solves = %d: burst was not coalesced", st.Batches, st.Solves)
	}
}

// TestDeadlineExpiryMidSolve gives a slow solve a deadline far shorter than
// its runtime; the deadline must surface as context.DeadlineExceeded, cut
// at a convergence-check boundary by the in-solver cancellation protocol.
func TestDeadlineExpiryMidSolve(t *testing.T) {
	rhs := testRHS(t, 1)
	s := serve.New(serve.Options{
		MaxSessionsPerKey: 1,
		// Unpreconditioned at a tight tolerance: thousands of iterations,
		// far beyond the deadline below.
		Solver: core.Options{Tol: 1e-14, MaxIters: 100000},
	})
	defer closeQuietly(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Microsecond)
	defer cancel()
	_, err := s.Solve(ctx, serve.Request{
		Grid: grid.PresetTest, Method: core.MethodChronGear, Precond: core.PrecondIdentity, B: rhs[0]})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestExpiredInQueueSkipped submits with an already-cancelled context: the
// worker must skip the solve and account the request as expired.
func TestExpiredInQueueSkipped(t *testing.T) {
	rhs := testRHS(t, 1)
	s := serve.New(serve.Options{MaxSessionsPerKey: 1})

	// Warm the pool so the cancelled request goes through the queue.
	if _, err := s.Solve(context.Background(), serve.Request{Grid: grid.PresetTest, B: rhs[0]}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Solve(ctx, serve.Request{Grid: grid.PresetTest, B: rhs[0]})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	closeQuietly(t, s) // drain so the worker has accounted the skip
	st := s.Snapshot()
	if st.Expired == 0 {
		t.Error("expired request was not accounted")
	}
	if st.Solves != 1 {
		t.Errorf("solves = %d, want 1 (the cancelled request must not be solved)", st.Solves)
	}
}

// TestGracefulDrain closes the service under load: every admitted request
// still gets its solve, and new requests are rejected with ErrClosed.
func TestGracefulDrain(t *testing.T) {
	rhs := testRHS(t, 6)
	s := serve.New(serve.Options{MaxSessionsPerKey: 1, Solver: core.Options{Tol: 1e-13}})

	// Warm the pool first so the burst below queues instead of racing the
	// initial session build against Close.
	if _, err := s.Solve(context.Background(), serve.Request{Grid: grid.PresetTest, B: rhs[0]}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, rejected int
	for i := range rhs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Solve(context.Background(), serve.Request{Grid: grid.PresetTest, B: rhs[i]})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, serve.ErrClosed):
				rejected++
			default:
				t.Errorf("solve %d: %v", i, err)
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the burst enqueue
	closeQuietly(t, s)
	wg.Wait()

	if ok+rejected != len(rhs) {
		t.Errorf("accounted %d, want %d", ok+rejected, len(rhs))
	}
	if ok == 0 {
		t.Error("drain completed no queued work")
	}
	if _, err := s.Solve(context.Background(), serve.Request{Grid: grid.PresetTest, B: rhs[0]}); !errors.Is(err, serve.ErrClosed) {
		t.Errorf("post-close solve: err = %v, want ErrClosed", err)
	}
}

// TestBadRequests checks admission-time validation surfaces ErrBadSpec and
// that a failed session build sticks instead of rebuilding per request.
func TestBadRequests(t *testing.T) {
	rhs := testRHS(t, 1)
	s := serve.New(serve.Options{})
	defer closeQuietly(t, s)

	cases := map[string]serve.Request{
		"unknown method":  {Grid: grid.PresetTest, Method: core.Method(42), B: rhs[0]},
		"unknown precond": {Grid: grid.PresetTest, Precond: core.PrecondType(42), B: rhs[0]},
		"unknown grid":    {Grid: "atlantis", B: rhs[0]},
		"short rhs":       {Grid: grid.PresetTest, B: rhs[0][:5]},
	}
	for name, req := range cases {
		if _, err := s.Solve(context.Background(), req); !errors.Is(err, core.ErrBadSpec) {
			t.Errorf("%s: err = %v, want ErrBadSpec", name, err)
		}
	}
	// Sticky build failure: the second unknown-grid request fails fast too.
	if _, err := s.Solve(context.Background(), serve.Request{Grid: "atlantis", B: rhs[0]}); !errors.Is(err, core.ErrBadSpec) {
		t.Errorf("sticky build failure: err = %v, want ErrBadSpec", err)
	}
}

// TestCSIAliasSharesPool checks the csi alias lands in the pcsi/none pool
// rather than warming a duplicate session set.
func TestCSIAliasSharesPool(t *testing.T) {
	rhs := testRHS(t, 1)
	s := serve.New(serve.Options{MaxSessionsPerKey: 1, Solver: core.Options{Tol: 1e-6}})
	defer closeQuietly(t, s)

	for _, req := range []serve.Request{
		{Grid: grid.PresetTest, Method: core.MethodCSI, B: rhs[0]},
		{Grid: grid.PresetTest, Method: core.MethodPCSI, Precond: core.PrecondIdentity, B: rhs[0]},
	} {
		if _, err := s.Solve(context.Background(), req); err != nil {
			t.Fatalf("%v: %v", req.Method, err)
		}
	}
	if n := s.Snapshot().Sessions; n != 1 {
		t.Errorf("csi + pcsi/none built %d sessions, want 1 shared", n)
	}
}

// TestPrecisionKeyedPools checks float32 requests run on their own session
// pool (mixed-precision arenas can't be shared with float64 sessions), that
// both precisions converge, and that key labels keep the float64 spelling
// stable while float32 grows a fourth segment.
func TestPrecisionKeyedPools(t *testing.T) {
	rhs := testRHS(t, 1)
	s := serve.New(serve.Options{MaxSessionsPerKey: 1, Solver: core.Options{Tol: 1e-6}})
	defer closeQuietly(t, s)

	for _, p := range []core.Precision{core.Float64, core.Float32} {
		resp, err := s.Solve(context.Background(), serve.Request{
			Grid: grid.PresetTest, Method: core.MethodPCSI, Precond: core.PrecondEVP,
			Precision: p, B: rhs[0],
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !resp.Result.Converged {
			t.Fatalf("%v: did not converge", p)
		}
		if resp.Result.Precision != p {
			t.Errorf("%v solve reported precision %v", p, resp.Result.Precision)
		}
	}
	if n := s.Snapshot().Sessions; n != 2 {
		t.Errorf("two precisions built %d sessions, want 2 distinct pools", n)
	}

	k64, err := serve.NormalizeRequest(serve.Request{Method: core.MethodPCSI, Precond: core.PrecondEVP})
	if err != nil {
		t.Fatal(err)
	}
	if k64.String() != "test/pcsi/evp" {
		t.Errorf("float64 key label = %q, want legacy test/pcsi/evp", k64.String())
	}
	k32 := k64
	k32.Precision = core.Float32
	if k32.String() != "test/pcsi/evp/float32" {
		t.Errorf("float32 key label = %q", k32.String())
	}
	if _, err := serve.NormalizeRequest(serve.Request{Precision: core.Precision(99)}); !errors.Is(err, core.ErrBadSpec) {
		t.Errorf("bad precision: got %v, want ErrBadSpec", err)
	}
}
