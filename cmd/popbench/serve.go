package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/experiments"
)

// serveReport is the machine-readable result of `popbench -serve`,
// written as BENCH_serve.json. Load is the closed-loop throughput phase;
// Overload drives a deliberately tiny queue past capacity to demonstrate
// shedding with ErrOverloaded instead of blocking.
type serveReport struct {
	Name      string               `json:"name"`
	Timestamp string               `json:"timestamp"`
	Hardware  experiments.Hardware `json:"hardware"`
	Grid      string               `json:"grid"`
	Method    string               `json:"method"`
	Precond   string               `json:"precond"`
	Load      loadPhase            `json:"load"`
	Overload  overloadPhase        `json:"overload"`
	Service   pop.ServiceStats     `json:"service_counters"`
	TargetOK  bool                 `json:"target_ok"` // ≥ TargetRate solves/s sustained
	Target    float64              `json:"target_solves_per_sec"`
}

type loadPhase struct {
	Clients      int     `json:"clients"`
	Sessions     int     `json:"sessions"`
	DurationSec  float64 `json:"duration_sec"`
	Solves       int64   `json:"solves"`
	Errors       int64   `json:"errors"`
	SolvesPerSec float64 `json:"solves_per_sec"`
	Batches      int64   `json:"batches"`
	MeanBatch    float64 `json:"mean_batch_size"`
	LatencyMS    latency `json:"latency_ms"`
}

type latency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type overloadPhase struct {
	Requests int64 `json:"requests"`
	Shed     int64 `json:"shed"`
	Answered int64 `json:"answered"`
}

// targetServeRate is the acceptance floor: the service must sustain this
// many solves/s on the small grid in the closed-loop phase.
const targetServeRate = 200

// runServeBench drives the in-process solve service: a closed-loop
// throughput phase on the test grid (pcsi+evp, the paper's fast path),
// then an overload phase that forces load shedding. The report lands in
// dir/BENCH_serve.json (dir "" = current directory). A non-empty
// perfettoPath enables rank-level tracing during the load phase and writes
// its Perfetto export there for cmd/poptrace.
func runServeBench(dir string, seconds float64, clients int, perfettoPath string, out io.Writer) error {
	const (
		gridName = "test"
		method   = pop.MethodPCSI
		precond  = pop.PrecondEVP
	)
	opts := pop.ServiceOptions{
		Cores:             4,
		MaxSessionsPerKey: 2,
	}
	if perfettoPath != "" {
		opts.TraceCapacity = 1 << 14
	}
	svc := pop.NewService(opts)
	defer closeService(svc)

	g, err := pop.NewGrid(gridName)
	if err != nil {
		return err
	}
	rhs := benchRHS(g)

	// Warm the pool outside the timed window so the report measures
	// steady-state serving, not operator assembly and EVP factorization.
	warm := pop.ServeRequest{Grid: gridName, Method: method, Precond: precond, B: rhs}
	if _, err := svc.Solve(context.Background(), warm); err != nil {
		return fmt.Errorf("warm-up solve: %w", err)
	}

	fmt.Fprintf(out, "# serve: %d closed-loop clients on %s/%s+%s for %.1fs\n",
		clients, gridName, method, precond, seconds)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []float64
		solves   int64
		failures int64
	)
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []float64
			for time.Now().Before(deadline) {
				t0 := time.Now()
				_, err := svc.Solve(context.Background(), pop.ServeRequest{
					Grid: gridName, Method: method, Precond: precond, B: rhs,
				})
				if err != nil {
					atomic.AddInt64(&failures, 1)
					continue
				}
				atomic.AddInt64(&solves, 1)
				mine = append(mine, float64(time.Since(t0).Microseconds())/1e3)
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	snap := svc.Snapshot()

	if perfettoPath != "" {
		f, err := os.Create(perfettoPath)
		if err != nil {
			return err
		}
		if err := svc.WritePerfetto(f); err != nil {
			f.Close()
			return fmt.Errorf("perfetto export: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "# serve: perfetto trace %s\n", perfettoPath)
	}

	rep := serveReport{
		Name:      "serve",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Hardware:  experiments.DetectHardware(0),
		Grid:      gridName,
		Method:    method.String(),
		Precond:   precond.String(),
		Target:    targetServeRate,
		Load: loadPhase{
			Clients:      clients,
			Sessions:     int(snap.Sessions),
			DurationSec:  elapsed,
			Solves:       solves,
			Errors:       failures,
			SolvesPerSec: float64(solves) / elapsed,
			Batches:      snap.Batches,
			LatencyMS:    percentiles(lats),
		},
	}
	if snap.Batches > 0 {
		rep.Load.MeanBatch = float64(snap.Solves) / float64(snap.Batches)
	}
	rep.TargetOK = rep.Load.SolvesPerSec >= targetServeRate
	fmt.Fprintf(out, "# serve: %.0f solves/s (%d solves, %d sessions, mean batch %.2f), p99 %.2fms\n",
		rep.Load.SolvesPerSec, solves, snap.Sessions, rep.Load.MeanBatch, rep.Load.LatencyMS.P99)

	over, err := runOverloadPhase(out)
	if err != nil {
		return err
	}
	rep.Overload = over
	rep.Service = svc.Snapshot()

	path := filepath.Join(dir, "BENCH_serve.json")
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "# serve: report %s\n", path)
	if !rep.TargetOK {
		return fmt.Errorf("serve: %.0f solves/s below the %d solves/s target",
			rep.Load.SolvesPerSec, int64(targetServeRate))
	}
	if rep.Overload.Shed == 0 {
		return errors.New("serve: overload phase shed nothing — backpressure untested")
	}
	return nil
}

// runOverloadPhase drives a deliberately tiny queue (capacity 2, one
// un-batched worker, slow ill-conditioned solves) with a synchronized
// burst so admission control must shed. Threads=1 makes the worker's
// rank execution cooperative — every halo token handoff is a scheduling
// point — so caller goroutines fill the queue mid-solve even under
// GOMAXPROCS=1 (previously forced to ≥2 scheduler threads by hand).
func runOverloadPhase(out io.Writer) (overloadPhase, error) {
	svc := pop.NewService(pop.ServiceOptions{
		Tau:               200000, // ill-conditioned: slow solves hold the queue full
		Threads:           1,
		MaxSessionsPerKey: 1,
		MaxQueue:          2,
		MaxBatch:          1,
		MaxWait:           -1,
		Solver:            pop.SolverOptions{Tol: 1e-12, MaxIters: 200000},
	})
	defer closeService(svc)

	g, err := pop.NewGrid("test")
	if err != nil {
		return overloadPhase{}, err
	}
	rhs := benchRHS(g)
	req := pop.ServeRequest{Grid: "test", Method: pop.MethodChronGear, Precond: pop.PrecondIdentity, B: rhs}
	if _, err := svc.Solve(context.Background(), req); err != nil && !errors.Is(err, pop.ErrNotConverged) {
		return overloadPhase{}, fmt.Errorf("overload warm-up: %w", err)
	}

	const burst = 30
	var (
		wg       sync.WaitGroup
		shed     int64
		answered int64
	)
	gate := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			_, err := svc.Solve(context.Background(), req)
			switch {
			case errors.Is(err, pop.ErrOverloaded):
				atomic.AddInt64(&shed, 1)
			case err == nil, errors.Is(err, pop.ErrNotConverged):
				atomic.AddInt64(&answered, 1)
			}
		}()
	}
	close(gate)
	wg.Wait()

	fmt.Fprintf(out, "# serve: overload burst of %d → %d answered, %d shed with ErrOverloaded\n",
		burst, answered, shed)
	return overloadPhase{Requests: burst, Shed: shed, Answered: answered}, nil
}

func closeService(svc *pop.Service) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: service drain: %v\n", err)
	}
}

func benchRHS(g *pop.Grid) []float64 {
	b := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			b[k] = math.Sin(g.TLon[k]/20) * math.Cos(g.TLat[k]/15)
		}
	}
	return b
}

// percentiles summarizes latencies (ms) without interpolation: pN is the
// smallest observation ≥ N% of the sample.
func percentiles(ms []float64) latency {
	if len(ms) == 0 {
		return latency{}
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(ms)))) - 1
		if i < 0 {
			i = 0
		}
		return ms[i]
	}
	return latency{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: ms[len(ms)-1]}
}
