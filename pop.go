// Package pop is the public API of this reproduction of "Improving the
// Scalability of the Ocean Barotropic Solver in the Community Earth System
// Model" (SC '15): POP-style synthetic ocean grids, the nine-point implicit
// free-surface operator, the barotropic solvers (ChronGear, PCG, CSI and
// P-CSI) with diagonal/block-EVP/block-LU preconditioning on a virtual-rank
// communication substrate, a wind-driven barotropic ocean model with the
// ensemble-based solver-verification machinery of §6, and drivers that
// regenerate every table and figure in the paper's evaluation.
//
// Quick start:
//
//	g := pop.NewGrid(pop.GridOneDegree)
//	solver, _ := pop.NewSolver(g, pop.SolverSpec{Method: "pcsi", Precond: "evp", Cores: 96})
//	res, x, _ := solver.Solve(b, nil)
//
// See examples/ for runnable programs and cmd/popbench for the experiment
// harness.
package pop

import (
	"fmt"
	"io"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/stats"
	"repro/internal/stencil"
)

// Re-exported substrate types. The aliases make the full internal APIs
// available to users of this package.
type (
	// Grid is a curvilinear ocean grid with land mask and metrics.
	Grid = grid.Grid
	// GridSpec parameterizes synthetic grid generation.
	GridSpec = grid.Spec
	// Operator is the assembled nine-point barotropic operator.
	Operator = stencil.Operator
	// Result summarizes one solve (iterations, convergence, virtual-time
	// statistics).
	Result = core.Result
	// Machine is a priced machine model (Yellowstone, Edison, Ideal).
	Machine = perfmodel.Machine
	// Model is the barotropic ocean model with temperature tracers.
	Model = model.Model
	// ModelConfig configures a Model run.
	ModelConfig = model.Config
	// Ensemble accumulates the §6 RMSZ statistics.
	Ensemble = stats.Ensemble
	// SolverOptions exposes the full solver option set.
	SolverOptions = core.Options
)

// Preset grid names for NewGrid.
const (
	// GridOneDegree is the paper's 1° production grid (320×384).
	GridOneDegree = "1deg"
	// GridTenthDegree is the paper's 0.1° grid (3600×2400; ~8.6M points).
	GridTenthDegree = "0.1deg"
	// GridTenthDegreeScaled keeps the 0.1° geography at 1/16 the points.
	GridTenthDegreeScaled = "0.1deg-scaled"
	// GridTest is a small grid for experimentation (64×48).
	GridTest = "test"
)

// NewGrid generates one of the preset synthetic grids.
func NewGrid(preset string) (*Grid, error) {
	switch preset {
	case GridOneDegree:
		return grid.OneDegree(), nil
	case GridTenthDegree:
		return grid.TenthDegree(), nil
	case GridTenthDegreeScaled:
		return grid.Generate(grid.QuarterScaleTenthSpec()), nil
	case GridTest:
		return grid.Generate(grid.TestSpec()), nil
	default:
		return nil, fmt.Errorf("pop: unknown grid preset %q", preset)
	}
}

// GenerateGrid builds a synthetic grid from a custom spec.
func GenerateGrid(spec GridSpec) *Grid { return grid.Generate(spec) }

// NewFlatBasin returns an all-ocean rectangular test basin.
func NewFlatBasin(nx, ny int, depth, dx, dy float64) *Grid {
	return grid.NewFlatBasin(nx, ny, depth, dx, dy)
}

// AssembleOperator builds the implicit free-surface operator for barotropic
// time step tau (seconds).
func AssembleOperator(g *Grid, tau float64) *Operator {
	return stencil.Assemble(g, stencil.PhiFromTimeStep(tau))
}

// MachineByName returns a machine model: "yellowstone", "edison", "ideal",
// or "" (free: zero-cost, numerics only).
func MachineByName(name string) (*Machine, error) {
	switch name {
	case "yellowstone":
		return perfmodel.Yellowstone(), nil
	case "edison":
		return perfmodel.Edison(), nil
	case "ideal":
		return perfmodel.Ideal(), nil
	case "":
		return nil, nil
	default:
		return nil, fmt.Errorf("pop: unknown machine %q", name)
	}
}

// SolverSpec configures NewSolver.
type SolverSpec struct {
	// Method: "chrongear" (POP's production solver), "pcg", "pipecg"
	// (Ghysels–Vanroose pipelined CG with overlap pricing), "pcsi" (the
	// paper's contribution), or "csi" (unpreconditioned Stiefel).
	Method string
	// Precond: "diagonal" (default), "evp", "blocklu", or "none".
	Precond string
	// Tau is the barotropic time step used for the operator's mass term
	// (default 1920 s, the 1° class step).
	Tau float64
	// Cores is the virtual rank count (0 = one rank per available block;
	// otherwise the nearest 3:2-aspect blocking is chosen).
	Cores int
	// MachineName prices virtual time ("" = free).
	MachineName string
	// Options exposes the remaining solver knobs (tolerance, EVP block
	// size, Lanczos controls); zero values take defaults.
	Options SolverOptions
}

// Solver bundles an operator, decomposition, communicator, and session.
type Solver struct {
	Spec    SolverSpec
	G       *Grid
	Op      *Operator
	Session *core.Session
	Cores   int
}

// NewSolver builds a distributed solver over g.
func NewSolver(g *Grid, spec SolverSpec) (*Solver, error) {
	if spec.Tau == 0 {
		spec.Tau = 1920
	}
	method := spec.Method
	if method == "" {
		method = "chrongear"
	}
	opts := spec.Options
	switch spec.Precond {
	case "", "diagonal":
		opts.Precond = core.PrecondDiagonal
	case "evp":
		opts.Precond = core.PrecondEVP
	case "blocklu":
		opts.Precond = core.PrecondBlockLU
	case "none":
		opts.Precond = core.PrecondIdentity
	default:
		return nil, fmt.Errorf("pop: unknown preconditioner %q", spec.Precond)
	}
	switch method {
	case "chrongear", "pcg", "pcsi", "pipecg":
	case "csi":
		method = "pcsi"
		opts.Precond = core.PrecondIdentity
	default:
		return nil, fmt.Errorf("pop: unknown method %q", spec.Method)
	}

	op := stencil.Assemble(g, stencil.PhiFromTimeStep(spec.Tau))
	var d *decomp.Decomposition
	var err error
	if spec.Cores > 0 {
		bx, by, _, cerr := decomp.ChooseBlocking(g, spec.Cores, 3, 2)
		if cerr != nil {
			return nil, cerr
		}
		d, err = decomp.New(g, bx, by, decomp.DefaultHalo)
	} else {
		d, err = decomp.New(g, g.Nx, g.Ny, decomp.DefaultHalo)
	}
	if err != nil {
		return nil, err
	}
	cores := d.AssignOnePerRank()
	machine, err := MachineByName(spec.MachineName)
	if err != nil {
		return nil, err
	}
	var cost comm.CostModel
	if machine != nil {
		cost = machine
	}
	w, err := comm.NewWorld(d, cost)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(g, op, d, w, opts)
	if err != nil {
		return nil, err
	}
	spec.Method = method
	return &Solver{Spec: spec, G: g, Op: op, Session: sess, Cores: cores}, nil
}

// Solve runs the configured method on right-hand side b with initial guess
// x0 (nil = zero) and returns the result and the solution.
func (s *Solver) Solve(b, x0 []float64) (Result, []float64, error) {
	if len(b) != s.G.N() {
		return Result{}, nil, fmt.Errorf("pop: rhs length %d, want %d", len(b), s.G.N())
	}
	if x0 == nil {
		x0 = make([]float64, len(b))
	}
	switch s.Spec.Method {
	case "pcg":
		return s.Session.SolvePCG(b, x0)
	case "pipecg":
		return s.Session.SolvePipeCG(b, x0)
	case "pcsi":
		return s.Session.SolvePCSI(b, x0)
	default:
		return s.Session.SolveChronGear(b, x0)
	}
}

// EstimateEigenvalues exposes the Lanczos bounds estimation (P-CSI setup).
// Pass nil for the robust random probe.
func (s *Solver) EstimateEigenvalues(b []float64, maxSteps int) (nu, mu float64, steps int, err error) {
	return s.Session.EstimateEigenvalues(b, maxSteps)
}

// NewModel builds the barotropic ocean model.
func NewModel(cfg ModelConfig) (*Model, error) { return model.New(cfg) }

// Experiments is the per-figure experiment harness.
type Experiments = experiments.Config

// NewExperiments prepares an experiment context ("yellowstone" machine when
// m is nil). quick selects reduced-scale grids.
func NewExperiments(m *Machine, quick bool, progress io.Writer) *Experiments {
	return experiments.NewConfig(m, quick, progress)
}

// RunExperiment executes one experiment by id ("fig1".."fig13", "tab1",
// "evpsetup"), writing its tables to w.
func RunExperiment(id string, c *Experiments, w io.Writer) error {
	return experiments.Run(id, c, w)
}

// ExperimentNames lists the available experiment ids.
func ExperimentNames() []string { return experiments.Names() }

// NewEnsemble prepares a §6 RMSZ accumulator over fields of the given
// length; mask selects participating points (nil = all).
func NewEnsemble(length int, mask []bool) *Ensemble {
	return stats.NewEnsemble(length, mask)
}

// RMSE is the paper's simple port-verification metric.
func RMSE(a, b []float64, include []bool) float64 { return stats.RMSE(a, b, include) }
