package api

import (
	"fmt"

	"repro/internal/core"
)

// Accepted enum spellings, surfaced verbatim in 400 bodies so a rejected
// request tells the client how to fix itself. All four lists derive from
// core — the spelling tables behind the core parsers and core.MaxSStep —
// so the JSON FieldError bodies here and the frame validation in frame.go
// (which share these vars) can never drift from what the parsers accept.
// Order is the tables' order: the default spelling comes first.
var (
	acceptedMethods    = core.MethodNames()
	acceptedPreconds   = core.PrecondNames()
	acceptedPrecisions = core.PrecisionNames()
	// acceptedSSteps documents the numeric range for the 400 body (the
	// field is an int, not an enum, so these are range descriptions).
	acceptedSSteps = []string{"0 (default)", fmt.Sprintf("1..%d", core.MaxSStep)}
)

// AcceptedMethods lists the method names ParseMethod accepts ("" defaults
// to the first entry).
func AcceptedMethods() []string { return append([]string(nil), acceptedMethods...) }

// AcceptedPreconds lists the preconditioner names ParsePrecond accepts
// ("" defaults to the first entry).
func AcceptedPreconds() []string { return append([]string(nil), acceptedPreconds...) }

// AcceptedPrecisions lists the precision names ParsePrecision accepts
// ("" defaults to the first entry).
func AcceptedPrecisions() []string { return append([]string(nil), acceptedPrecisions...) }

// FieldError reports a request field whose value failed enum validation.
// It wraps core.ErrBadSpec (so errors.Is keeps matching the typed-error
// contract) and carries the accepted spellings for the 400 body.
type FieldError struct {
	// Field is the wire name of the failing field ("method", "precond",
	// "precision").
	Field string
	// Value is the rejected input.
	Value string
	// Accepted lists the spellings the field takes.
	Accepted []string
}

// Error renders the message used in error bodies and logs.
func (e *FieldError) Error() string {
	return fmt.Sprintf("unknown %s %q (accepted: %s)", e.Field, e.Value, joinNames(e.Accepted))
}

// Unwrap ties FieldError into the ErrBadSpec matching chain.
func (e *FieldError) Unwrap() error { return core.ErrBadSpec }

// joinNames renders a comma-separated accepted-values list.
func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Canonical is a SolveRequest after boundary normalization: enums parsed
// exactly once, right here — nothing downstream re-parses strings.
type Canonical struct {
	// Grid is the preset name ("" normalized downstream to the default).
	Grid string
	// Method is the parsed solver algorithm.
	Method core.Method
	// Precond is the parsed preconditioner.
	Precond core.PrecondType
	// Precision is the parsed iteration arithmetic.
	Precision core.Precision
	// SStep is the validated s-step block size (0 = downstream default).
	SStep int
	// B is the explicit right-hand side (nil when RHS named a generator
	// still to be resolved by the server).
	B []float64
	// X0 is the initial guess (nil = zero).
	X0 []float64
	// ReturnX mirrors SolveRequest.ReturnX.
	ReturnX bool
	// TraceID mirrors SolveRequest.TraceID.
	TraceID uint64
	// NoCache mirrors SolveRequest.NoCache.
	NoCache bool
}

// Parse normalizes the request's enum fields through the core parsers —
// the single place wire strings become typed values. A bad spelling
// returns a *FieldError listing the accepted names (HTTP layers render it
// as a 400 with ErrorBody.Accepted populated); B/RHS mutual exclusion is
// also enforced here.
func (r *SolveRequest) Parse() (Canonical, error) {
	method, err := core.ParseMethod(r.Method)
	if err != nil {
		return Canonical{}, &FieldError{Field: "method", Value: r.Method, Accepted: acceptedMethods}
	}
	precond, err := core.ParsePrecond(r.Precond)
	if err != nil {
		return Canonical{}, &FieldError{Field: "precond", Value: r.Precond, Accepted: acceptedPreconds}
	}
	precision, err := core.ParsePrecision(r.Precision)
	if err != nil {
		return Canonical{}, &FieldError{Field: "precision", Value: r.Precision, Accepted: acceptedPrecisions}
	}
	if r.SStep < 0 || r.SStep > core.MaxSStep {
		return Canonical{}, &FieldError{Field: "sstep", Value: fmt.Sprintf("%d", r.SStep), Accepted: acceptedSSteps}
	}
	if r.RHS != "" && len(r.B) > 0 {
		return Canonical{}, fmt.Errorf(`api: "b" and "rhs" are mutually exclusive: %w`, core.ErrBadSpec)
	}
	return Canonical{
		Grid:      r.Grid,
		Method:    method,
		Precond:   precond,
		Precision: precision,
		SStep:     r.SStep,
		B:         r.B,
		X0:        r.X0,
		ReturnX:   r.ReturnX,
		TraceID:   r.TraceID,
		NoCache:   r.NoCache,
	}, nil
}
