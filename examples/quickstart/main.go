// Quickstart: build a small synthetic ocean grid, assemble the barotropic
// operator, and solve one implicit free-surface system with the paper's
// P-CSI + block-EVP solver, comparing it against POP's production
// ChronGear solver.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	// A 64×48 synthetic global ocean: continents, shelves, and straits.
	g, err := pop.NewGrid(pop.GridTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %q: %d×%d, %.0f%% ocean\n", g.Name, g.Nx, g.Ny, 100*g.OceanFraction())

	// Manufacture a right-hand side with a known solution.
	op := pop.AssembleOperator(g, 1920)
	xTrue := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			xTrue[k] = math.Sin(g.TLon[k]/30) * math.Cos(g.TLat[k]/20)
		}
	}
	b := make([]float64, g.N())
	op.Apply(b, xTrue)
	for k, ocean := range g.Mask {
		if !ocean {
			b[k] = 0
		}
	}

	// Solve with both solvers on 12 virtual cores, priced as Yellowstone.
	for _, spec := range []pop.SolverSpec{
		{Method: pop.MethodChronGear, Precond: pop.PrecondDiagonal, Cores: 12, MachineName: "yellowstone"},
		{Method: pop.MethodPCSI, Precond: pop.PrecondEVP, Cores: 12, MachineName: "yellowstone"},
	} {
		solver, err := pop.NewSolver(g, spec)
		if err != nil {
			log.Fatal(err)
		}
		res, x, err := solver.Solve(b, nil)
		if err != nil {
			log.Fatal(err)
		}
		var maxErr float64
		for k, ocean := range g.Mask {
			if ocean {
				maxErr = math.Max(maxErr, math.Abs(x[k]-xTrue[k]))
			}
		}
		perRank := int64(len(res.Stats.PerRank))
		fmt.Printf("%-20s iters=%-4d err=%.2e reductions/rank=%-4d virtual=%.3gs\n",
			spec.Method.String()+"+"+spec.Precond.String(), res.Iterations, maxErr,
			res.Stats.Sum.Reductions/perRank, res.Stats.MaxClock)
	}
	fmt.Println("note how P-CSI needs more iterations but almost no global reductions —")
	fmt.Println("the trade that wins at tens of thousands of cores (paper §3).")
}
