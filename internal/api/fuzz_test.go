package api

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

// frameFuzzSeeds builds the fuzz corpus from the same frames the
// round-trip tests exercise: a fully-populated v2 request, a hand-built v1
// request (no sstep byte), a response with every field set, an error
// frame, and structurally damaged fragments.
func frameFuzzSeeds() [][]byte {
	req := AppendFrameRequest(nil, FrameRequest{
		Grid: "test", Method: core.MethodPCSI, Precond: core.PrecondEVP,
		Precision: core.Float32, SStep: 8,
		B:         []float64{1.5, -2.25, math.Pi, 0, math.Copysign(0, -1)},
		X0:        []float64{0.5, 0.25, 0, 1, 2},
		TimeoutMS: 1234, ReturnX: true, NoCache: true, TraceID: 0xDEADBEEFCAFE,
	})
	// v1 layout: the same bytes minus the sstep byte at offset 9 (header 6
	// + method + precond + precision), version byte 1.
	noX0 := AppendFrameRequest(nil, FrameRequest{
		Grid: "test", B: []float64{1, 2, 3}, TimeoutMS: 50, ReturnX: true, TraceID: 7,
	})
	v1 := append([]byte(nil), noX0[:9]...)
	v1 = append(v1, noX0[10:]...)
	v1[4] = frameVersionV1
	resp := AppendFrameResponse(nil, SolveResponse{
		Converged: true, Iterations: 42, OuterIters: 3, RelResidual: 7.5e-14,
		Solver: "pcsi", Precision: "float32", ElapsedMS: 1.75, TraceID: 99,
		Cache: "dedup", Shard: 2, X: []float64{1, 2, 3},
	})
	errFrame := AppendFrameError(nil, 429, "queue full")
	return [][]byte{req, v1, resp, errFrame, req[:7], []byte(FrameMagic), nil}
}

// FuzzFrameDecode feeds arbitrary bytes to all three frame decoders. The
// decoders must be total — a structured error (ErrBadFrame, or a
// *FieldError for out-of-range enum bytes) or a value, never a panic or an
// out-of-range read — and every accepted frame must re-encode to a stable
// canonical form (encode∘decode idempotent at the byte level, which
// sidesteps NaN payload comparisons).
func FuzzFrameDecode(f *testing.F) {
	for _, seed := range frameFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _ = FrameKind(raw) // total: never panics

		if r, err := DecodeFrameRequest(raw); err == nil {
			enc := AppendFrameRequest(nil, r)
			r2, err2 := DecodeFrameRequest(enc)
			if err2 != nil {
				t.Fatalf("re-decode of re-encoded request failed: %v", err2)
			}
			if !bytes.Equal(enc, AppendFrameRequest(nil, r2)) {
				t.Fatalf("request encoding not idempotent for %+v", r)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("request decode error is neither ErrBadFrame nor *FieldError: %v", err)
			}
		}

		if resp, err := DecodeFrameResponse(raw); err == nil {
			enc := AppendFrameResponse(nil, resp)
			resp2, err2 := DecodeFrameResponse(enc)
			if err2 != nil {
				t.Fatalf("re-decode of re-encoded response failed: %v", err2)
			}
			if !bytes.Equal(enc, AppendFrameResponse(nil, resp2)) {
				t.Fatalf("response encoding not idempotent for %+v", resp)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("response decode error is not ErrBadFrame: %v", err)
		}

		if status, msg, err := DecodeFrameError(raw); err == nil {
			status2, msg2, err2 := DecodeFrameError(AppendFrameError(nil, status, msg))
			if err2 != nil || status2 != status || msg2 != msg {
				t.Fatalf("error frame did not round-trip: (%d,%q) → (%d,%q,%v)",
					status, msg, status2, msg2, err2)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("error decode error is not ErrBadFrame: %v", err)
		}
	})
}
