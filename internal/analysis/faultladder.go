package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// noresilientDirective marks a core.Method deliberately left out of the
// resilient degraded-mode ladder. The reason is mandatory:
//
//	// MethodSStep is the communication-avoiding s-step PCG …
//	//
//	//pop:noresilient fused Gram recurrence has no checkpoint/rollback protocol; request-level retry in internal/serve covers it
//	MethodSStep
const noresilientDirective = "//pop:noresilient"

// Fault-ladder anchor points in the core package.
const (
	corePkgPath    = "repro/internal/core"
	ladderFuncName = "SolveResilient"
)

// FaultLadder reports solver methods that are invisible to the resilient
// degraded-mode ladder: a core.Method constant that SolveResilient's body
// never mentions and whose definition carries no //pop:noresilient
// directive.
//
// PR 9 added MethodSStep and left it outside SolveResilient's ladder with
// only a SOLVERS.md paragraph recording the gap — exactly the kind of
// prose-only invariant that rots when the next method lands. The analyzer
// turns the gap into a build break: either the ladder handles the method
// (a case arm, a guard, a fallback rung) or its definition says why not,
// where the next reader will look.
var FaultLadder = &analysis.Analyzer{
	Name: "faultladder",
	Doc: "report core.Method constants absent from the SolveResilient degraded-mode ladder" +
		" and not annotated //pop:noresilient <reason>",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runFaultLadder,
}

func runFaultLadder(pass *analysis.Pass) (any, error) {
	if !pkgInScope(pass, corePkgPath) {
		return nil, nil
	}
	methodType, ok := pass.Pkg.Scope().Lookup("Method").(*types.TypeName)
	if !ok {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Collect every Method constant the ladder's body mentions. Comparing
	// against the constants SolveResilient *references* (rather than parsing
	// its shape) keeps guards, case arms, and fallback rungs all counting as
	// ladder membership.
	ladder := make(map[types.Object]bool)
	ladderFound := false
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Name.Name != ladderFuncName || fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		ladderFound = true
		ast.Inspect(fd.Body, func(c ast.Node) bool {
			id, ok := c.(*ast.Ident)
			if !ok {
				return true
			}
			if con, ok := pass.TypesInfo.Uses[id].(*types.Const); ok &&
				types.Identical(con.Type(), methodType.Type()) {
				ladder[con] = true
			}
			return true
		})
	})
	if !ladderFound {
		return nil, nil
	}

	ig := newIgnorer(pass)
	ins.Preorder([]ast.Node{(*ast.ValueSpec)(nil)}, func(n ast.Node) {
		spec := n.(*ast.ValueSpec)
		for _, name := range spec.Names {
			con, ok := pass.TypesInfo.Defs[name].(*types.Const)
			if !ok || !types.Identical(con.Type(), methodType.Type()) ||
				inTestFile(pass.Fset, name.Pos()) {
				continue
			}
			reason, found, malformed := popDirective(noresilientDirective, spec.Doc, spec.Comment)
			if malformed.IsValid() {
				pass.Reportf(malformed, "malformed %s directive: want %q",
					noresilientDirective, noresilientDirective+" <reason>")
			}
			if found && reason != "" {
				continue // deliberately outside the ladder, with rationale
			}
			if !ladder[con] {
				ig.reportf(name.Pos(),
					"solver method %s is not reachable from the %s degraded-mode ladder: a faulted solve cannot degrade; add a ladder rung or annotate %s <reason> at the definition",
					con.Name(), ladderFuncName, noresilientDirective)
			}
		}
	})
	return nil, nil
}
