package analysis_test

import (
	"strings"
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

// TestMalformedIgnoreDirective checks that a //poplint:ignore directive
// missing its analyzer name or reason is itself reported: suppressions must
// record what they silence and why. The diagnostic lands on the directive's
// own line, which cannot also carry a // want comment, so this asserts on
// the raw diagnostics instead of a want file.
func TestMalformedIgnoreDirective(t *testing.T) {
	msgs := analyzertest.Diagnostics(t, "testdata/ignore", poplint.HotPathAlloc, "ignorecase")
	if len(msgs) != 1 {
		t.Fatalf("want exactly one diagnostic for the malformed directive, got %d: %q", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "malformed") {
		t.Fatalf("diagnostic does not flag the malformed directive: %q", msgs[0])
	}
}
