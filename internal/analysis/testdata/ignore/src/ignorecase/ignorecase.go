// Package ignorecase holds a malformed suppression directive: it names no
// analyzer and records no reason, so the ignorer reports it outright.
package ignorecase

//poplint:ignore
func harmless() int { return 1 }
