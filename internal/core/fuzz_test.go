package core

import (
	"errors"
	"testing"
)

// The enum parsers sit on the wire boundary (JSON requests, CLI flags,
// frame validation errors all route through them), so they must be total:
// either a valid enum value or an error matching ErrBadSpec, and every
// accepted spelling must re-parse from its canonical String() form.

// FuzzParseMethod fuzzes the solver-method parser.
func FuzzParseMethod(f *testing.F) {
	for _, s := range []string{"", "chrongear", "pcg", "pipecg", "pcsi", "csi", "sstep", "SSTEP", "chron gear", "\xff"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMethod(s)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParseMethod(%q) error does not match ErrBadSpec: %v", s, err)
			}
			return
		}
		if !m.Valid() {
			t.Fatalf("ParseMethod(%q) = %v, invalid", s, m)
		}
		m2, err := ParseMethod(m.String())
		if err != nil || m2 != m {
			t.Fatalf("canonical %q did not re-parse: %v, %v", m.String(), m2, err)
		}
	})
}

// FuzzParsePrecond fuzzes the preconditioner parser.
func FuzzParsePrecond(f *testing.F) {
	for _, s := range []string{"", "diagonal", "evp", "blocklu", "none", "identity", "EVP", "\x00"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrecond(s)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParsePrecond(%q) error does not match ErrBadSpec: %v", s, err)
			}
			return
		}
		if !p.Valid() {
			t.Fatalf("ParsePrecond(%q) = %v, invalid", s, p)
		}
		p2, err := ParsePrecond(p.String())
		if err != nil || p2 != p {
			t.Fatalf("canonical %q did not re-parse: %v, %v", p.String(), p2, err)
		}
	})
}

// FuzzParsePrecision fuzzes the precision parser (float64/fp64/double,
// float32/fp32/single aliases).
func FuzzParsePrecision(f *testing.F) {
	for _, s := range []string{"", "float64", "fp64", "double", "float32", "fp32", "single", "FLOAT32", "half"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrecision(s)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParsePrecision(%q) error does not match ErrBadSpec: %v", s, err)
			}
			return
		}
		if !p.Valid() {
			t.Fatalf("ParsePrecision(%q) = %v, invalid", s, p)
		}
		p2, err := ParsePrecision(p.String())
		if err != nil || p2 != p {
			t.Fatalf("canonical %q did not re-parse: %v, %v", p.String(), p2, err)
		}
	})
}
