package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/stencil"
)

func testWorld(t *testing.T, bx, by int, cost CostModel) (*grid.Grid, *decomp.Decomposition, *World) {
	t.Helper()
	g := grid.Generate(grid.TestSpec())
	d, err := decomp.New(g, bx, by, decomp.DefaultHalo)
	if err != nil {
		t.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := NewWorld(d, cost)
	if err != nil {
		t.Fatal(err)
	}
	return g, d, w
}

func TestNewWorldRequiresAssignment(t *testing.T) {
	g := grid.Generate(grid.TestSpec())
	d, _ := decomp.New(g, 8, 8, 2)
	if _, err := NewWorld(d, nil); err == nil {
		t.Fatal("accepted unassigned decomposition")
	}
}

func TestAllReduceSum(t *testing.T) {
	_, d, w := testWorld(t, 8, 8, nil)
	p := d.NRanks
	// Each rank contributes (rank+1, 2·rank); expect the closed-form sums.
	st := w.Run(func(r *Rank) {
		got := r.AllReduce([]float64{float64(r.ID + 1), float64(2 * r.ID)})
		wantA := float64(p*(p+1)) / 2
		wantB := float64(p * (p - 1))
		if got[0] != wantA || got[1] != wantB {
			panic("wrong allreduce result")
		}
	})
	if st.Sum.Reductions != int64(p) {
		t.Fatalf("reductions counted %d, want %d", st.Sum.Reductions, p)
	}
}

func TestAllReduceDeterministic(t *testing.T) {
	_, _, w := testWorld(t, 4, 4, nil)
	run := func() float64 {
		var out float64
		var mu sync.Mutex
		w.Run(func(r *Rank) {
			rng := rand.New(rand.NewSource(int64(r.ID)))
			v := r.AllReduce([]float64{rng.NormFloat64() * 1e8, rng.NormFloat64()})
			mu.Lock()
			out = v[0] + v[1]
			mu.Unlock()
		})
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("allreduce not bitwise deterministic: %v vs %v", a, b)
	}
}

func TestBarrierCompletes(t *testing.T) {
	_, _, w := testWorld(t, 8, 8, nil)
	done := make(chan struct{})
	go func() {
		w.Run(func(r *Rank) {
			for i := 0; i < 10; i++ {
				r.Barrier()
			}
		})
		close(done)
	}()
	<-done
}

// fixedCost charges 1 time unit per flop, 1 per message byte + 10 latency,
// and 7 per reduction, with no jitter — for clock arithmetic tests.
type fixedCost struct{}

func (fixedCost) FlopTime(n int64, _ int, _ int64) float64 { return float64(n) }
func (fixedCost) P2PTime(bytes int64) float64              { return 10 + float64(bytes) }
func (fixedCost) ReduceTime(int, int64) float64            { return 7 }

func TestClockSynchronizationAtReduce(t *testing.T) {
	_, d, w := testWorld(t, 8, 8, fixedCost{})
	p := d.NRanks
	st := w.Run(func(r *Rank) {
		r.AddFlops(int64(10 * (r.ID + 1))) // rank i computes 10(i+1) units
		r.AllReduce([]float64{1})
	})
	wantClock := float64(10*p) + 7 // slowest rank + reduce cost
	for rid, c := range st.PerRank {
		if got := c.Clock(); math.Abs(got-wantClock) > 1e-9 {
			t.Fatalf("rank %d clock %v, want %v", rid, got, wantClock)
		}
		wantComp := float64(10 * (rid + 1))
		if c.TComp != wantComp {
			t.Fatalf("rank %d TComp %v, want %v", rid, c.TComp, wantComp)
		}
		wantReduce := wantClock - wantComp
		if math.Abs(c.TReduce-wantReduce) > 1e-9 {
			t.Fatalf("rank %d TReduce %v, want %v", rid, c.TReduce, wantReduce)
		}
	}
	if st.MaxClock != wantClock {
		t.Fatalf("MaxClock %v, want %v", st.MaxClock, wantClock)
	}
}

func TestHaloExchangeFlatBasin(t *testing.T) {
	// On an all-ocean basin every interior block has all eight neighbours;
	// after one Exchange, halos must match a direct scatter of the global
	// field (including corner cells, which take the two-phase path).
	g := grid.NewFlatBasin(32, 24, 1000, 1e4, 1e4)
	d, err := decomp.New(g, 8, 8, decomp.DefaultHalo)
	if err != nil {
		t.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := NewWorld(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	global := make([]float64, g.N())
	for k := range global {
		global[k] = float64(k + 1)
	}
	var mu sync.Mutex
	failures := 0
	w.Run(func(r *Rank) {
		fields := make([][]float64, len(r.Blocks))
		for i, b := range r.Blocks {
			// Interior only; halos start at zero.
			full := d.Scatter(global, b)
			f := make([]float64, len(full))
			nxp, nyp := d.PaddedDims(b)
			for j := d.Halo; j < nyp-d.Halo; j++ {
				for i2 := d.Halo; i2 < nxp-d.Halo; i2++ {
					f[j*nxp+i2] = full[j*nxp+i2]
				}
			}
			fields[i] = f
		}
		r.Exchange(fields)
		for i, b := range r.Blocks {
			want := d.Scatter(global, b)
			nxp, nyp := d.PaddedDims(b)
			for j := 0; j < nyp; j++ {
				gj := b.Y0 - d.Halo + j
				if gj < 0 || gj >= g.Ny {
					continue
				}
				for i2 := 0; i2 < nxp; i2++ {
					gi := b.X0 - d.Halo + i2
					if gi < 0 || gi >= g.Nx {
						continue
					}
					if fields[i][j*nxp+i2] != want[j*nxp+i2] {
						mu.Lock()
						failures++
						mu.Unlock()
						return
					}
				}
			}
		}
	})
	if failures > 0 {
		t.Fatalf("%d ranks saw halo mismatches", failures)
	}
}

func TestHaloCounters(t *testing.T) {
	g := grid.NewFlatBasin(16, 16, 1000, 1e4, 1e4)
	d, _ := decomp.New(g, 8, 8, decomp.DefaultHalo)
	d.AssignOnePerRank() // 2×2 blocks, each with 2 edge neighbours
	w, _ := NewWorld(d, nil)
	st := w.Run(func(r *Rank) {
		fields := [][]float64{make([]float64, 12*12)}
		r.Exchange(fields)
	})
	// Each block has an E or W neighbour and an N or S neighbour: 2 messages
	// received per block, 4 blocks → 8 messages.
	if st.Sum.HaloMsgs != 8 {
		t.Fatalf("halo messages %d, want 8", st.Sum.HaloMsgs)
	}
	// E/W strips: 2 cols × 8 rows = 16 values; N/S strips: 2 rows × 12
	// padded cols = 24 values. Per block 40 values = 320 bytes.
	if st.Sum.HaloBytes != 4*320 {
		t.Fatalf("halo bytes %d, want %d", st.Sum.HaloBytes, 4*320)
	}
}

func TestSingleRankNoMessages(t *testing.T) {
	g := grid.Generate(grid.TestSpec())
	d, _ := decomp.New(g, 16, 12, decomp.DefaultHalo)
	if err := d.Assign(1); err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(d, nil)
	st := w.Run(func(r *Rank) {
		fields := make([][]float64, len(r.Blocks))
		for i, b := range r.Blocks {
			nxp, nyp := d.PaddedDims(b)
			fields[i] = make([]float64, nxp*nyp)
		}
		r.Exchange(fields)
		r.AllReduce([]float64{1})
	})
	if st.Sum.HaloMsgs != 0 || st.Sum.HaloBytes != 0 {
		t.Fatalf("single-rank run sent %d messages", st.Sum.HaloMsgs)
	}
}

// distributedApply computes y = A·x through the full distributed path:
// scatter, exchange, local apply, gather.
func distributedApply(d *decomp.Decomposition, w *World, op *stencil.Operator, x []float64) []float64 {
	g := d.G
	y := make([]float64, g.N())
	copy(y, x) // land blocks are never touched; global Apply has y=x there
	w.Run(func(r *Rank) {
		locOps := make([]*stencil.Local, len(r.Blocks))
		xs := make([][]float64, len(r.Blocks))
		ys := make([][]float64, len(r.Blocks))
		for i, b := range r.Blocks {
			locOps[i] = d.LocalOperator(op, b)
			full := d.Scatter(x, b)
			nxp, nyp := d.PaddedDims(b)
			xi := make([]float64, len(full))
			for j := d.Halo; j < nyp-d.Halo; j++ {
				copy(xi[j*nxp+d.Halo:(j+1)*nxp-d.Halo], full[j*nxp+d.Halo:(j+1)*nxp-d.Halo])
			}
			xs[i] = xi
			ys[i] = make([]float64, len(full))
		}
		r.Exchange(xs)
		for i := range r.Blocks {
			locOps[i].Apply(ys[i], xs[i])
		}
		for i, b := range r.Blocks {
			d.GatherInto(y, ys[i], b)
		}
	})
	return y
}

func TestDistributedMatvecMatchesGlobal(t *testing.T) {
	g := grid.Generate(grid.TestSpec())
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(1200))
	rng := rand.New(rand.NewSource(77))
	x := make([]float64, g.N())
	for k := range x {
		if g.Mask[k] {
			x[k] = rng.NormFloat64()
		}
	}
	want := make([]float64, g.N())
	op.Apply(want, x)

	for _, blocking := range [][2]int{{8, 8}, {16, 12}, {12, 10}} {
		d, err := decomp.New(g, blocking[0], blocking[1], decomp.DefaultHalo)
		if err != nil {
			t.Fatal(err)
		}
		d.AssignOnePerRank()
		w, _ := NewWorld(d, nil)
		got := distributedApply(d, w, op, x)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-12*(math.Abs(want[k])+1) {
				t.Fatalf("blocking %v: mismatch at %d: %v vs %v", blocking, k, got[k], want[k])
			}
		}
	}
}

func TestDistributedMatvecMultiBlockRanks(t *testing.T) {
	g := grid.Generate(grid.TestSpec())
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(1200))
	rng := rand.New(rand.NewSource(78))
	x := make([]float64, g.N())
	for k := range x {
		if g.Mask[k] {
			x[k] = rng.NormFloat64()
		}
	}
	want := make([]float64, g.N())
	op.Apply(want, x)
	d, _ := decomp.New(g, 8, 8, decomp.DefaultHalo)
	for _, nr := range []int{1, 3, 7} {
		if err := d.Assign(nr); err != nil {
			t.Fatal(err)
		}
		w, _ := NewWorld(d, nil)
		got := distributedApply(d, w, op, x)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-12*(math.Abs(want[k])+1) {
				t.Fatalf("nranks %d: mismatch at %d", nr, k)
			}
		}
	}
}

func TestCountersAddAndClock(t *testing.T) {
	a := Counters{Flops: 1, HaloMsgs: 2, HaloBytes: 3, Reductions: 4, TComp: 1, THalo: 2, TReduce: 3}
	b := a
	a.Add(b)
	if a.Flops != 2 || a.HaloBytes != 6 || a.TReduce != 6 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Clock() != 12 {
		t.Fatalf("Clock=%v", a.Clock())
	}
}

func TestExchangeMultiAggregates(t *testing.T) {
	g := grid.NewFlatBasin(16, 16, 1000, 1e4, 1e4)
	d, _ := decomp.New(g, 8, 8, decomp.DefaultHalo)
	d.AssignOnePerRank()
	w, _ := NewWorld(d, nil)
	const nz = 5
	globals := make([][]float64, nz)
	for l := range globals {
		globals[l] = make([]float64, g.N())
		for k := range globals[l] {
			globals[l][k] = float64(l*10000 + k)
		}
	}
	var mu sync.Mutex
	bad := 0
	st := w.Run(func(r *Rank) {
		levels := make([][][]float64, nz)
		for l := range levels {
			levels[l] = make([][]float64, len(r.Blocks))
			for i, b := range r.Blocks {
				full := d.Scatter(globals[l], b)
				nxp, nyp := d.PaddedDims(b)
				f := make([]float64, len(full))
				for j := d.Halo; j < nyp-d.Halo; j++ {
					copy(f[j*nxp+d.Halo:(j+1)*nxp-d.Halo], full[j*nxp+d.Halo:(j+1)*nxp-d.Halo])
				}
				levels[l][i] = f
			}
		}
		r.ExchangeMulti(levels)
		for l := range levels {
			for i, b := range r.Blocks {
				want := d.Scatter(globals[l], b)
				nxp, nyp := d.PaddedDims(b)
				for j := 0; j < nyp; j++ {
					gj := b.Y0 - d.Halo + j
					if gj < 0 || gj >= g.Ny {
						continue
					}
					for i2 := 0; i2 < nxp; i2++ {
						gi := b.X0 - d.Halo + i2
						if gi < 0 || gi >= g.Nx {
							continue
						}
						if levels[l][i][j*nxp+i2] != want[j*nxp+i2] {
							mu.Lock()
							bad++
							mu.Unlock()
							return
						}
					}
				}
			}
		}
	})
	if bad > 0 {
		t.Fatalf("%d ranks saw multi-level halo mismatches", bad)
	}
	// Message count identical to a single-field exchange (aggregation!),
	// bytes nz× larger: 8 messages of 320·nz bytes (see TestHaloCounters).
	if st.Sum.HaloMsgs != 8 {
		t.Fatalf("aggregated exchange sent %d messages, want 8", st.Sum.HaloMsgs)
	}
	if st.Sum.HaloBytes != int64(4*320*nz) {
		t.Fatalf("aggregated exchange moved %d bytes, want %d", st.Sum.HaloBytes, 4*320*nz)
	}
}

func TestAllReduceOverlapPricing(t *testing.T) {
	_, _, w := testWorld(t, 8, 8, fixedCost{})
	// Every rank enters at clock 0; the reduce costs 7. Overlapping 3 units
	// of compute hides entirely (exit 7); overlapping 20 dominates (exit 20).
	st := w.Run(func(r *Rank) {
		r.AllReduceOverlap([]float64{1}, 3)
	})
	for rid, c := range st.PerRank {
		if c.Clock() != 7 {
			t.Fatalf("rank %d: overlapped clock %v, want 7", rid, c.Clock())
		}
		if c.TComp != 3 || c.TReduce != 4 {
			t.Fatalf("rank %d: attribution comp=%v reduce=%v", rid, c.TComp, c.TReduce)
		}
	}
	st = w.Run(func(r *Rank) {
		r.AllReduceOverlap([]float64{1}, 20)
	})
	for rid, c := range st.PerRank {
		if c.Clock() != 20 {
			t.Fatalf("rank %d: compute-bound overlap clock %v, want 20", rid, c.Clock())
		}
		if c.TComp != 20 || c.TReduce != 0 {
			t.Fatalf("rank %d: attribution comp=%v reduce=%v", rid, c.TComp, c.TReduce)
		}
	}
}

func TestAllReduceOverlapValues(t *testing.T) {
	_, d, w := testWorld(t, 8, 8, nil)
	p := d.NRanks
	w.Run(func(r *Rank) {
		got := r.AllReduceOverlap([]float64{2}, 1000)
		if got[0] != float64(2*p) {
			panic("wrong overlapped allreduce sum")
		}
	})
}

// MeanCounters on an empty Stats must return zeros, not NaN (division by a
// zero-length PerRank slice).
func TestMeanCountersEmptyStats(t *testing.T) {
	var st Stats
	m := st.MeanCounters()
	if math.IsNaN(m.TComp) || math.IsNaN(m.THalo) || math.IsNaN(m.TReduce) {
		t.Fatalf("empty stats produced NaN means: %+v", m)
	}
	if m != (Counters{}) {
		t.Fatalf("empty stats mean = %+v, want zero value", m)
	}
	comp, halo, reduce := st.Breakdown()
	if comp != (PhaseStat{}) || halo != (PhaseStat{}) || reduce != (PhaseStat{}) {
		t.Fatalf("empty stats breakdown nonzero: %v %v %v", comp, halo, reduce)
	}
}

// seqProbe records the sequence numbers the runtime hands the cost model,
// to pin ResetCounters' contract: counters and clock reset, but flopSeq and
// reduceSeq keep advancing (deterministic noise streams must not replay
// across phases).
type seqProbe struct {
	mu         sync.Mutex
	flopSeqs   []int64
	reduceSeqs []int64
}

func (p *seqProbe) FlopTime(n int64, _ int, seq int64) float64 {
	p.mu.Lock()
	p.flopSeqs = append(p.flopSeqs, seq)
	p.mu.Unlock()
	return 1
}
func (p *seqProbe) P2PTime(int64) float64 { return 0 }
func (p *seqProbe) ReduceTime(_ int, seq int64) float64 {
	p.mu.Lock()
	p.reduceSeqs = append(p.reduceSeqs, seq)
	p.mu.Unlock()
	return 1
}

func TestResetCountersPreservesNoiseSequences(t *testing.T) {
	g := grid.Generate(grid.TestSpec())
	d, err := decomp.New(g, g.Nx, g.Ny, decomp.DefaultHalo) // single rank
	if err != nil {
		t.Fatal(err)
	}
	d.AssignOnePerRank()
	probe := &seqProbe{}
	w, err := NewWorld(d, probe)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *Rank) {
		r.AddFlops(1)
		r.AllReduce([]float64{1})
		r.ResetCounters()
		if c := r.Counters(); c != (Counters{}) || r.Clock() != 0 {
			panic("ResetCounters did not zero counters and clock")
		}
		r.AddFlops(1)
		r.AllReduce([]float64{1})
	})
	wantSeqs := []int64{0, 1}
	for i, got := range probe.flopSeqs {
		if got != wantSeqs[i] {
			t.Fatalf("flop seqs %v, want %v (flopSeq must advance across ResetCounters)",
				probe.flopSeqs, wantSeqs)
		}
	}
	for i, got := range probe.reduceSeqs {
		if got != wantSeqs[i] {
			t.Fatalf("reduce seqs %v, want %v (reduceSeq must advance across ResetCounters)",
				probe.reduceSeqs, wantSeqs)
		}
	}
	if len(probe.flopSeqs) != 2 || len(probe.reduceSeqs) != 2 {
		t.Fatalf("expected 2 flop and 2 reduce charges, got %d and %d",
			len(probe.flopSeqs), len(probe.reduceSeqs))
	}
}

// skewCost makes rank skew deterministic: rank r's flops cost r time units,
// so the highest rank is always the reduction straggler.
type skewCost struct{}

func (skewCost) FlopTime(n int64, rank int, _ int64) float64 { return float64(rank) }
func (skewCost) P2PTime(int64) float64                       { return 0 }
func (skewCost) ReduceTime(int, int64) float64               { return 1 }

func TestReduceStragglerAttribution(t *testing.T) {
	_, d, w := testWorld(t, 8, 8, skewCost{})
	p := d.NRanks
	if p < 2 {
		t.Skip("needs multiple ranks")
	}
	tr := obs.NewTracer(64)
	w.Tracer = tr
	w.Run(func(r *Rank) {
		r.AddFlops(1) // rank r's clock is now r
		r.AllReduce([]float64{1})
	})
	slowest := p - 1
	for _, e := range tr.Events() {
		if e.Name != obs.EvReduce {
			continue
		}
		if e.Straggler != slowest {
			t.Fatalf("rank %d saw straggler %d, want %d", e.Rank, e.Straggler, slowest)
		}
		wantWait := float64(slowest - e.Rank)
		if math.Abs(e.Wait-wantWait) > 1e-12 {
			t.Fatalf("rank %d wait %g, want %g", e.Rank, e.Wait, wantWait)
		}
	}
}

func TestBreakdownMatchesCounters(t *testing.T) {
	_, _, w := testWorld(t, 8, 8, fixedCost{})
	st := w.Run(func(r *Rank) {
		r.AddFlops(int64(r.ID + 1))
		r.AllReduce([]float64{1})
	})
	comp, _, reduce := st.Breakdown()
	if comp.Min != 1 || comp.Max != float64(len(st.PerRank)) {
		t.Fatalf("comp breakdown %+v", comp)
	}
	if reduce.Max <= 0 {
		t.Fatalf("reduce breakdown %+v", reduce)
	}
	var sum float64
	for _, c := range st.PerRank {
		sum += c.TComp
	}
	if want := sum / float64(len(st.PerRank)); math.Abs(comp.Mean-want) > 1e-12 {
		t.Fatalf("comp mean %g, want %g", comp.Mean, want)
	}
}
