package stencil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func testOperator() (*grid.Grid, *Operator) {
	g := grid.Generate(grid.TestSpec())
	return g, Assemble(g, PhiFromTimeStep(1800))
}

func randomField(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestPhiFromTimeStep(t *testing.T) {
	phi := PhiFromTimeStep(100)
	want := 1 / (Gravity * 1e4)
	if math.Abs(phi-want) > 1e-18 {
		t.Fatalf("phi=%v want %v", phi, want)
	}
}

func TestOperatorSymmetry(t *testing.T) {
	_, op := testOperator()
	rng := rand.New(rand.NewSource(3))
	n := op.Nx * op.Ny
	for trial := 0; trial < 5; trial++ {
		x := randomField(rng, n)
		y := randomField(rng, n)
		ax := make([]float64, n)
		ay := make([]float64, n)
		op.Apply(ax, x)
		op.Apply(ay, y)
		// ⟨Ax,y⟩ = ⟨x,Ay⟩ over the full domain (land rows are symmetric
		// identity rows).
		var lhs, rhs float64
		for k := 0; k < n; k++ {
			lhs += ax[k] * y[k]
			rhs += x[k] * ay[k]
		}
		scale := math.Abs(lhs) + math.Abs(rhs) + 1
		if math.Abs(lhs-rhs) > 1e-10*scale {
			t.Fatalf("asymmetry: ⟨Ax,y⟩=%v ⟨x,Ay⟩=%v", lhs, rhs)
		}
	}
}

func TestOperatorPositiveDefinite(t *testing.T) {
	_, op := testOperator()
	rng := rand.New(rand.NewSource(4))
	n := op.Nx * op.Ny
	for trial := 0; trial < 10; trial++ {
		x := randomField(rng, n)
		ax := make([]float64, n)
		op.Apply(ax, x)
		var q float64
		for k := 0; k < n; k++ {
			q += x[k] * ax[k]
		}
		if q <= 0 {
			t.Fatalf("xᵀAx = %v ≤ 0", q)
		}
	}
}

func TestLandRowsAreIdentity(t *testing.T) {
	g, op := testOperator()
	rng := rand.New(rand.NewSource(5))
	n := op.Nx * op.Ny
	x := randomField(rng, n)
	y := make([]float64, n)
	op.Apply(y, x)
	for k := range y {
		if !g.Mask[k] && y[k] != x[k] {
			t.Fatalf("land row %d not identity: y=%v x=%v", k, y[k], x[k])
		}
	}
}

func TestCouplingsToLandVanish(t *testing.T) {
	g, op := testOperator()
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			if !g.Mask[g.Idx(i, j)] {
				continue
			}
			row := op.Row(i, j)
			offs := [9][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {0, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}}
			for c, o := range offs {
				if c == 4 {
					continue
				}
				if row[c] != 0 && !g.IsOcean(i+o[0], j+o[1]) {
					t.Fatalf("ocean point (%d,%d) couples to land via offset %v", i, j, o)
				}
			}
		}
	}
}

func TestCornerCouplingsDominateEdges(t *testing.T) {
	// On a near-isotropic grid the N/S/E/W couplings are much smaller than
	// the corner couplings — the paper's §4.3 observation.
	g := grid.NewFlatBasin(24, 24, 4000, 1e4, 1.05e4)
	op := Assemble(g, PhiFromTimeStep(300))
	row := op.Row(12, 12)
	corner := math.Abs(row[8])
	for _, c := range []int{1, 3, 5, 7} {
		if math.Abs(row[c]) > corner/5 {
			t.Fatalf("edge coupling %v not ≪ corner coupling %v", row[c], corner)
		}
	}
}

func TestEdgeCouplingsVanishOnIsotropicGrid(t *testing.T) {
	g := grid.NewFlatBasin(16, 16, 1000, 5e3, 5e3)
	op := Assemble(g, PhiFromTimeStep(300))
	row := op.Row(8, 8)
	for _, c := range []int{1, 3, 5, 7} {
		if row[c] != 0 {
			t.Fatalf("isotropic grid should have zero edge couplings, got %v", row[c])
		}
	}
}

func TestApplyMatchesDense(t *testing.T) {
	g := grid.Generate(grid.TestSpec())
	// Shrink to stay under the Dense limit.
	spec := grid.TestSpec()
	spec.Nx, spec.Ny = 20, 16
	g = grid.Generate(spec)
	op := Assemble(g, PhiFromTimeStep(900))
	d := op.Dense()
	rng := rand.New(rand.NewSource(6))
	n := g.N()
	x := randomField(rng, n)
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	op.Apply(y1, x)
	d.MulVec(y2, x)
	for k := range y1 {
		if math.Abs(y1[k]-y2[k]) > 1e-8*(math.Abs(y1[k])+1) {
			t.Fatalf("stencil/dense mismatch at %d: %v vs %v", k, y1[k], y2[k])
		}
	}
}

func TestRowSymmetryProperty(t *testing.T) {
	// A(i,j → di,dj) must equal A(i+di,j+dj → −di,−dj).
	_, op := testOperator()
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}
	offs := [9][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {0, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i := rng.Intn(op.Nx)
		j := rng.Intn(op.Ny)
		row := op.Row(i, j)
		for c, o := range offs {
			ii, jj := i+o[0], j+o[1]
			if ii < 0 || ii >= op.Nx || jj < 0 || jj >= op.Ny {
				continue
			}
			back := op.Row(ii, jj)
			if row[c] != back[8-c] { // offsets list is centro-symmetric
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedDot(t *testing.T) {
	g, op := testOperator()
	x := make([]float64, g.N())
	for k := range x {
		x[k] = 1
	}
	if got := op.MaskedDot(x, x); got != float64(g.OceanPoints()) {
		t.Fatalf("MaskedDot=%v want %v", got, g.OceanPoints())
	}
	if got := op.MaskedNorm2(x); math.Abs(got-math.Sqrt(float64(g.OceanPoints()))) > 1e-12 {
		t.Fatalf("MaskedNorm2=%v", got)
	}
}

func TestLocalApplyMatchesGlobal(t *testing.T) {
	// Extract a padded window by hand and compare Local.Apply with the
	// global Apply restricted to that window.
	g, op := testOperator()
	const h = 2
	x0, y0, nxi, nyi := 10, 8, 12, 9 // interior window, away from edges
	nxp, nyp := nxi+2*h, nyi+2*h
	loc := &Local{NxP: nxp, NyP: nyp, H: h,
		AC:   make([]float64, nxp*nyp),
		AN:   make([]float64, nxp*nyp),
		AE:   make([]float64, nxp*nyp),
		ANE:  make([]float64, nxp*nyp),
		Mask: make([]bool, nxp*nyp),
	}
	rng := rand.New(rand.NewSource(9))
	x := randomField(rng, g.N())
	xl := make([]float64, nxp*nyp)
	for j := 0; j < nyp; j++ {
		for i := 0; i < nxp; i++ {
			gi, gj := x0-h+i, y0-h+j
			kl := j*nxp + i
			kg := g.Idx(gi, gj)
			loc.AC[kl] = op.AC[kg]
			loc.AN[kl] = op.AN[kg]
			loc.AE[kl] = op.AE[kg]
			loc.ANE[kl] = op.ANE[kg]
			loc.Mask[kl] = g.Mask[kg]
			xl[kl] = x[kg]
		}
	}
	yg := make([]float64, g.N())
	op.Apply(yg, x)
	yl := make([]float64, nxp*nyp)
	loc.Apply(yl, xl)
	for j := h; j < nyp-h; j++ {
		for i := h; i < nxp-h; i++ {
			kg := g.Idx(x0-h+i, y0-h+j)
			kl := j*nxp + i
			if math.Abs(yl[kl]-yg[kg]) > 1e-12*(math.Abs(yg[kg])+1) {
				t.Fatalf("local/global mismatch at local (%d,%d): %v vs %v", i, j, yl[kl], yg[kg])
			}
		}
	}
	if loc.NxI() != nxi || loc.NyI() != nyi || loc.InteriorLen() != nxi*nyi {
		t.Fatal("interior dimension accessors wrong")
	}
	if loc.ApplyFlops() != int64(9*nxi*nyi) {
		t.Fatalf("ApplyFlops=%d", loc.ApplyFlops())
	}
}

func TestAssembleWindowFilledMatchesTrueOperatorAwayFromLand(t *testing.T) {
	// The EVP preconditioner solves the land-filled block operator; its
	// quality rests on the filled coefficients being *identical* to the
	// true ones wherever every involved cell is ocean (deeper than fill).
	g := grid.Generate(grid.TestSpec())
	phi := PhiFromTimeStep(1800)
	op := Assemble(g, phi)
	const x0, y0, w, h = 12, 10, 12, 10
	win := AssembleWindowFilled(g, phi, x0, y0, w, h, 50)
	for j := 1; j <= h; j++ {
		for i := 1; i <= w; i++ {
			gi, gj := x0-1+i, y0-1+j
			// Check only points whose full 3×3 neighbourhood is ocean.
			allOcean := true
			for dj := -1; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					if !g.IsOcean(gi+di, gj+dj) {
						allOcean = false
					}
				}
			}
			if !allOcean {
				continue
			}
			want := op.Row(gi, gj)
			got := win.Row(i, j)
			for c := range want {
				if math.Abs(got[c]-want[c]) > 1e-9*(math.Abs(want[c])+1) {
					t.Fatalf("filled window differs from true operator at (%d,%d) coef %d: %v vs %v",
						gi, gj, c, got[c], want[c])
				}
			}
		}
	}
}

func TestAssembleWindowFilledAllWet(t *testing.T) {
	// Every NE coefficient in the filled window must be nonzero — the
	// property EVP marching needs, even across land.
	g := grid.Generate(grid.TestSpec())
	phi := PhiFromTimeStep(1800)
	// Window chosen over a coastline (found dynamically).
	for y := 2; y < g.Ny-12; y += 6 {
		for x := 2; x < g.Nx-12; x += 6 {
			win := AssembleWindowFilled(g, phi, x, y, 8, 8, 50)
			for j := 1; j <= 8; j++ {
				for i := 1; i <= 8; i++ {
					if win.Row(i, j)[8] == 0 {
						t.Fatalf("zero NE coefficient at window (%d,%d)+(%d,%d)", x, y, i, j)
					}
				}
			}
		}
	}
}

func TestWindowFilledSymmetric(t *testing.T) {
	g := grid.Generate(grid.TestSpec())
	win := AssembleWindowFilled(g, PhiFromTimeStep(1800), 20, 14, 10, 8, 50)
	for j := 1; j < win.NyP-1; j++ {
		for i := 1; i < win.NxP-1; i++ {
			row := win.Row(i, j)
			offs := [9][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {0, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}}
			for c, o := range offs {
				ii, jj := i+o[0], j+o[1]
				if ii < 1 || ii >= win.NxP-1 || jj < 1 || jj >= win.NyP-1 {
					continue
				}
				if back := win.Row(ii, jj); row[c] != back[8-c] {
					t.Fatalf("filled window asymmetric at (%d,%d) coef %d", i, j, c)
				}
			}
		}
	}
}
