// Package comm is a testdata stand-in for repro/internal/comm: just enough
// of the Rank surface (collectives, lockstep accessors, rank-local fields)
// for the collectivelockstep analyzer to resolve method calls against.
package comm

// World mirrors the shared collective configuration.
type World struct {
	NRank int
}

// Rank mirrors the per-rank handle.
type Rank struct {
	ID     int
	World  *World
	Blocks []int
}

// AllReduce is a collective.
func (r *Rank) AllReduce(vals []float64) []float64 { return vals }

// AllReduceOverlap is a collective.
func (r *Rank) AllReduceOverlap(vals []float64, flops int64) []float64 { return vals }

// Barrier is a collective.
func (r *Rank) Barrier() {}

// Exchange is a collective.
func (r *Rank) Exchange(fields [][]float64) {}

// Exchange32 is the float32 halo collective.
func (r *Rank) Exchange32(fields [][]float32) {}

// ExchangeMulti is a collective.
func (r *Rank) ExchangeMulti(levels [][][]float64) {}

// ReduceFailed is a lockstep accessor: identical on every rank.
func (r *Rank) ReduceFailed() bool { return false }

// ReduceSeq is a lockstep accessor: identical on every rank.
func (r *Rank) ReduceSeq() int64 { return 0 }

// Clock is rank-local state (virtual elapsed time differs per rank).
func (r *Rank) Clock() float64 { return 0 }
