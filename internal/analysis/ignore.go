package analysis

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// ignoreDirective is the comment prefix that suppresses one poplint
// diagnostic: `//poplint:ignore <analyzer> <reason>`. The reason is
// mandatory — a suppression without a recorded justification is itself a
// diagnostic. The directive silences the named analyzer on its own line and
// on the line directly below it, covering both the standalone-line and
// end-of-line comment styles.
const ignoreDirective = "//poplint:ignore"

// ignorer records which source lines have suppressed diagnostics for one
// analyzer in one pass, and reports through that filter.
type ignorer struct {
	pass  *analysis.Pass
	lines map[string]map[int]bool // filename → suppressed lines
}

// newIgnorer scans the pass's files for poplint:ignore directives naming
// this pass's analyzer. Malformed directives (missing analyzer name or
// reason) are reported immediately: a suppression that does not say what it
// suppresses or why is rot waiting to happen.
func newIgnorer(pass *analysis.Pass) *ignorer {
	ig := &ignorer{pass: pass, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignoreDirective))
				if len(fields) < 2 {
					pass.Reportf(c.Pos(), "malformed %s directive: want %q",
						ignoreDirective, ignoreDirective+" <analyzer> <reason>")
					continue
				}
				if fields[0] != pass.Analyzer.Name {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if ig.lines[p.Filename] == nil {
					ig.lines[p.Filename] = make(map[int]bool)
				}
				ig.lines[p.Filename][p.Line] = true
				ig.lines[p.Filename][p.Line+1] = true
			}
		}
	}
	return ig
}

// reportf emits a diagnostic unless a directive suppresses it at pos.
func (ig *ignorer) reportf(pos token.Pos, format string, args ...any) {
	p := ig.pass.Fset.Position(pos)
	if ig.lines[p.Filename][p.Line] {
		return
	}
	ig.pass.Reportf(pos, format, args...)
}

// inTestFile reports whether pos lies in a _test.go file. The invariants
// poplint enforces bind production code; tests deliberately use rand
// fixtures, wall clocks, and ad-hoc errors.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
