package comm

import (
	"math"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Halo exchange. POP updates block halos in two phases — east/west columns
// first, then north/south rows that span the full padded width including the
// freshly received columns — so corner values from diagonal neighbour blocks
// arrive in two hops and each block sends/receives only four messages per
// update, the 4α term in the paper's boundary-cost model (§2.2).
//
// Steady-state memory discipline: everything the exchange needs per call is
// precomputed at World construction. Each rank owns two phasePlans (E/W and
// N/S) listing its send, local-copy, and receive edges in a fixed order, and
// every cross-rank edge carries a two-buffer pool that cycles
// sender→receiver→sender over channels:
//
//	sender:   buf := <-edge.free; fill buf; edge.ch <- haloMsg{buf, clock}
//	receiver: m := <-edge.ch; copy halos out of m.data; edge.free <- m.data
//
// The pool channel provides the happens-before edge that makes buffer reuse
// race-free: a sender writes a buffer only after the receiver's return-send,
// which the receiver performs only after it finished reading. The data
// channel's capacity equals the pool size (two), so a send can never block:
// every in-flight message wraps a pool buffer and channel occupancy is
// bounded by the pool. The pool acquire is the only send-side wait, and it
// yields the shard token (sched.go) while parked, so a rank starved of
// buffers cannot stall its shard. Buffers are sized for single-level
// exchanges and grow once
// (amortized) on the first wider multi-level call; after that the exchange
// path performs zero allocations.

// sendEdge is one outgoing cross-rank message per phase: data leaves from
// the given side of local block bi.
type sendEdge struct {
	bi       int // index into Rank.Blocks of the sending block
	side     int // side of the sending block the strip is extracted from
	stripLen int // strip length of one level
	ch       chan haloMsg
	free     chan []float64
}

// recvEdge is one incoming cross-rank message per phase: data fills the
// halo on the given side of local block bi.
type recvEdge struct {
	bi   int
	side int
	ch   chan haloMsg
	free chan []float64
}

// localEdge is a same-rank neighbour pair: the halo on side `side` of block
// dstBI is filled by a direct copy from the interior of block srcBI.
type localEdge struct {
	dstBI, srcBI int
	side         int
}

// phasePlan is one rank's complete edge list for one exchange phase, in the
// deterministic (block, side) iteration order the original per-call
// neighbour search produced — preserving it keeps the virtual-clock
// arithmetic (max-of-arrivals, ordered cost sums) bitwise identical.
type phasePlan struct {
	sends  []sendEdge
	locals []localEdge
	recvs  []recvEdge
}

// phaseSides lists the two receiving sides of each exchange phase.
var phaseSides = [2][2]int{
	{SideE, SideW},
	{SideN, SideS},
}

// buildPlans precomputes every rank's per-phase edge lists, the cross-rank
// channels, and the per-edge buffer pools.
func (w *World) buildPlans() {
	d := w.D
	h := d.Halo
	chans := make(map[haloKey]chan haloMsg)
	pools := make(map[haloKey]chan []float64)
	// One data channel and one two-buffer pool per (receiving block, side)
	// with a live cross-rank neighbour. The strip is extracted from the
	// sender, but E/W neighbours share NyI and N/S neighbours share NxI, so
	// the receiver's dimensions size the buffers equally well.
	for _, id := range d.OceanBlocks {
		b := &d.Blocks[id]
		for side, off := range sideOffsets {
			nb := d.NeighborID(b, off[0], off[1])
			if nb < 0 || d.Blocks[nb].Rank == b.Rank {
				continue
			}
			key := haloKey{id, side}
			// Data-channel capacity equals the pool size: every in-flight
			// message wraps a pool buffer, so occupancy can never exceed 2
			// and the data send is non-blocking UNCONDITIONALLY — required
			// by the shard scheduler, whose liveness argument (sched.go)
			// needs ranks never to park holding a run token outside the
			// yielding receives.
			chans[key] = make(chan haloMsg, 2)
			pool := make(chan []float64, 2)
			stripLen := h * b.NyI
			if side == SideN || side == SideS {
				stripLen = h * (b.NxI + 2*h)
			}
			pool <- make([]float64, stripLen)
			pool <- make([]float64, stripLen)
			pools[key] = pool
		}
	}
	w.plans = make([][2]phasePlan, w.NRank)
	for rid := 0; rid < w.NRank; rid++ {
		for phase := 0; phase < 2; phase++ {
			plan := &w.plans[rid][phase]
			for i, id := range d.ByRank[rid] {
				b := &d.Blocks[id]
				for _, side := range phaseSides[phase] {
					off := sideOffsets[side]
					nb := d.NeighborID(b, off[0], off[1])
					if nb < 0 {
						continue // domain edge or land: halo keeps zeros
					}
					if d.Blocks[nb].Rank == rid {
						plan.locals = append(plan.locals, localEdge{
							dstBI: i, srcBI: w.blockPos[nb], side: side})
						continue
					}
					// Outgoing: my strip on `side` lands in the halo on the
					// opposite side of the neighbour.
					skey := haloKey{nb, opposite(side)}
					stripLen := h * b.NyI
					if side == SideN || side == SideS {
						stripLen = h * (b.NxI + 2*h)
					}
					plan.sends = append(plan.sends, sendEdge{
						bi: i, side: side, stripLen: stripLen,
						ch: chans[skey], free: pools[skey]})
					// Incoming: my halo on `side` is filled by that same
					// neighbour's strip.
					rkey := haloKey{id, side}
					plan.recvs = append(plan.recvs, recvEdge{
						bi: i, side: side, ch: chans[rkey], free: pools[rkey]})
				}
			}
		}
	}
}

// Exchange refreshes the halos of one distributed field. fields[i] is the
// padded local array for r.Blocks[i]. Collective: every rank must call
// Exchange in the same program order.
//
//pop:hotpath
func (r *Rank) Exchange(fields [][]float64) {
	r.multi[0] = fields
	r.ExchangeMulti(r.multi[:])
	r.multi[0] = nil
}

// ExchangeMulti refreshes the halos of several fields (e.g. the levels of a
// 3-D field) in one aggregated update: each neighbour receives a single
// message carrying every level's strip, paying the latency α once and the
// bandwidth β per level — exactly how POP aggregates its 3-D halo updates.
// levels[L][i] is level L's padded array for r.Blocks[i].
//
//pop:hotpath
func (r *Rank) ExchangeMulti(levels [][][]float64) {
	for _, fields := range levels {
		if len(fields) != len(r.Blocks) {
			panic("comm: Exchange fields/blocks length mismatch")
		}
	}
	r.exchangePhase(levels, 0)
	r.exchangePhase(levels, 1)
}

// exchangePhase executes one precomputed phase plan: sends first
// (non-blocking: data-channel capacity matches the buffer pool, so the
// channel always has room for every buffer the pool can hand out), then
// same-rank direct copies (free in the cost model: intra-node), then
// receives.
//
//pop:hotpath
func (r *Rank) exchangePhase(levels [][][]float64, phase int) {
	w := r.World
	h := w.D.Halo
	plan := &w.plans[r.ID][phase]
	entry := r.clock
	nlv := len(levels)

	// Fault injection, halo classes. One draw per (rank, phase sequence):
	// "drop" discards everything this rank receives this phase (its halos go
	// stale), "corrupt" NaN-poisons the first received strip. The sequence
	// number advances regardless so schedules stay aligned across plans.
	haloSeq := r.faultBase + r.haloSeq
	r.haloSeq++
	var drop, corrupt bool
	if w.Faults.Enabled() {
		drop = w.Faults.DropHalo(r.ID, haloSeq)
		if !drop {
			corrupt = w.Faults.CorruptHalo(r.ID, haloSeq)
		}
		if (drop || corrupt) && r.trace != nil {
			class := faults.HaloDrop
			if corrupt {
				class = faults.HaloCorrupt
			}
			r.trace.Add(obs.Event{Name: obs.EvFault, Point: true, T0: entry,
				Value: float64(haloSeq), Aux: float64(class), Iter: -1, Straggler: -1})
		}
	}

	for ei := range plan.sends {
		e := &plan.sends[ei]
		buf := recvYield(r, e.free)
		need := nlv * e.stripLen
		if cap(buf) < need {
			buf = make([]float64, need)
		}
		buf = buf[:need]
		b := r.Blocks[e.bi]
		for li, fields := range levels {
			extractStripInto(buf[li*e.stripLen:(li+1)*e.stripLen],
				fields[e.bi], b.NxI, b.NyI, h, e.side)
		}
		e.ch <- haloMsg{data: buf, clock: r.clock}
	}

	for _, le := range plan.locals {
		dst := r.Blocks[le.dstBI]
		src := r.Blocks[le.srcBI]
		for _, fields := range levels {
			copyStrip(fields[le.dstBI], dst.NxI, dst.NyI,
				fields[le.srcBI], src.NxI, src.NyI, h, le.side)
		}
	}

	arrival := r.clock
	var charge float64
	var phaseBytes int64
	for ei := range plan.recvs {
		e := &plan.recvs[ei]
		m := recvYield(r, e.ch)
		stripLen := len(m.data) / nlv
		b := r.Blocks[e.bi]
		if corrupt && ei == 0 {
			// Poison the received payload before it lands in the halo — the
			// whole message, so the NaN reaches ring-1 cells the stencil
			// actually reads regardless of side and halo depth. The pool
			// buffer is fully rewritten by the sender's next
			// extractStripInto, so the NaN does not leak into later phases.
			for di := range m.data {
				m.data[di] = math.NaN()
			}
		}
		if !drop {
			for li, fields := range levels {
				insertStrip(fields[e.bi], b.NxI, b.NyI, h, e.side,
					m.data[li*stripLen:(li+1)*stripLen])
			}
		}
		e.free <- m.data
		if m.clock > arrival {
			arrival = m.clock
		}
		bytes := int64(len(m.data) * 8)
		r.ctr.HaloMsgs++
		r.ctr.HaloBytes += bytes
		phaseBytes += bytes
		charge += w.Cost.P2PTime(bytes)
	}
	r.clock = arrival + charge
	r.ctr.THalo += r.clock - entry
	if r.trace != nil {
		r.trace.Add(obs.Event{Name: obs.EvHalo, T0: entry, T1: r.clock,
			Value: float64(phaseBytes), Iter: -1, Straggler: -1})
	}
}

// opposite maps a receiving side to the sender's receiving side.
func opposite(side int) int {
	switch side {
	case SideE:
		return SideW
	case SideW:
		return SideE
	case SideN:
		return SideS
	default:
		return SideN
	}
}

// extractStripInto copies into s the interior edge strip that a neighbour on
// the given side needs. E/W strips cover interior rows only; N/S strips span
// the full padded width so corners propagate (two-phase scheme). "side" is
// the side of THIS block from which data leaves. Generic over the element
// type so the float32 exchange path (halo32.go) shares the copy logic.
//
//pop:hotpath
func extractStripInto[F float32 | float64](s, f []F, nxi, nyi, h, side int) {
	nxp := nxi + 2*h
	switch side {
	case SideW: // my west interior columns [h, 2h) → neighbour's east halo
		for j := 0; j < nyi; j++ {
			copy(s[j*h:(j+1)*h], f[(j+h)*nxp+h:(j+h)*nxp+2*h])
		}
	case SideE: // my east interior columns [nxp-2h, nxp-h)
		for j := 0; j < nyi; j++ {
			copy(s[j*h:(j+1)*h], f[(j+h)*nxp+nxp-2*h:(j+h)*nxp+nxp-h])
		}
	case SideS: // my south interior rows [h, 2h), full padded width
		for j := 0; j < h; j++ {
			copy(s[j*nxp:(j+1)*nxp], f[(j+h)*nxp:(j+h+1)*nxp])
		}
	default: // SideN: my north interior rows [nyp-2h, nyp-h)
		nyp := nyi + 2*h
		for j := 0; j < h; j++ {
			copy(s[j*nxp:(j+1)*nxp], f[(nyp-2*h+j)*nxp:(nyp-2*h+j+1)*nxp])
		}
	}
}

// insertStrip writes a received strip into the halo on the given side of
// this block.
//
//pop:hotpath
func insertStrip[F float32 | float64](f []F, nxi, nyi, h, side int, s []F) {
	nxp := nxi + 2*h
	switch side {
	case SideE: // east halo columns [nxp-h, nxp)
		for j := 0; j < nyi; j++ {
			copy(f[(j+h)*nxp+nxp-h:(j+h)*nxp+nxp], s[j*h:(j+1)*h])
		}
	case SideW: // west halo columns [0, h)
		for j := 0; j < nyi; j++ {
			copy(f[(j+h)*nxp:(j+h)*nxp+h], s[j*h:(j+1)*h])
		}
	case SideN: // north halo rows [nyp-h, nyp)
		nyp := nyi + 2*h
		for j := 0; j < h; j++ {
			copy(f[(nyp-h+j)*nxp:(nyp-h+j+1)*nxp], s[j*nxp:(j+1)*nxp])
		}
	default: // SideS: south halo rows [0, h)
		for j := 0; j < h; j++ {
			copy(f[j*nxp:(j+1)*nxp], s[j*nxp:(j+1)*nxp])
		}
	}
}

// copyStrip fills the halo on side `side` of a block directly from a
// same-rank neighbour's interior — the local-copy pass, fused so no
// intermediate strip is materialized. The source data comes from the
// opposite(side) edge of the neighbour, exactly as extractStripInto followed
// by insertStrip would move it.
//
//pop:hotpath
func copyStrip[F float32 | float64](dst []F, dnxi, dnyi int, src []F, snxi, snyi, h, side int) {
	dnxp := dnxi + 2*h
	snxp := snxi + 2*h
	switch side {
	case SideE: // dst east halo ← src west interior columns
		for j := 0; j < dnyi; j++ {
			copy(dst[(j+h)*dnxp+dnxp-h:(j+h)*dnxp+dnxp],
				src[(j+h)*snxp+h:(j+h)*snxp+2*h])
		}
	case SideW: // dst west halo ← src east interior columns
		for j := 0; j < dnyi; j++ {
			copy(dst[(j+h)*dnxp:(j+h)*dnxp+h],
				src[(j+h)*snxp+snxp-2*h:(j+h)*snxp+snxp-h])
		}
	case SideN: // dst north halo ← src south interior rows
		dnyp := dnyi + 2*h
		for j := 0; j < h; j++ {
			copy(dst[(dnyp-h+j)*dnxp:(dnyp-h+j+1)*dnxp],
				src[(j+h)*snxp:(j+h+1)*snxp])
		}
	default: // SideS: dst south halo ← src north interior rows
		snyp := snyi + 2*h
		for j := 0; j < h; j++ {
			copy(dst[j*dnxp:(j+1)*dnxp],
				src[(snyp-2*h+j)*snxp:(snyp-2*h+j+1)*snxp])
		}
	}
}

// blockIndex returns the position of blockID within r.Blocks, O(1) via the
// table precomputed at World construction.
func (r *Rank) blockIndex(blockID int) int {
	if pos := r.World.blockPos[blockID]; pos >= 0 && r.Blocks[pos].ID == blockID {
		return pos
	}
	panic("comm: block not owned by rank")
}
