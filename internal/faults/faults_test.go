package faults

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

// A nil injector must be safe to consult from every hook and must never
// inject anything.
func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Fatal("nil injector reports Enabled")
	}
	if d := inj.StragglerDelay(3, 7); d != 0 {
		t.Fatalf("nil StragglerDelay = %v, want 0", d)
	}
	if inj.DropHalo(0, 0) || inj.CorruptHalo(1, 2) ||
		inj.FailReduce(2, 3) || inj.CrashRank(4, 5) {
		t.Fatal("nil injector injected a fault")
	}
	inj.Recovered("restore") // must not panic
	if got := inj.InjectedCount(ReduceFail); got != 0 {
		t.Fatalf("nil InjectedCount = %d, want 0", got)
	}
	if len(inj.Recoveries()) != 0 {
		t.Fatal("nil Recoveries non-empty")
	}
	if inj.Registry() != nil {
		t.Fatal("nil Registry non-nil")
	}
	if inj.Plan().Active() {
		t.Fatal("nil Plan active")
	}
}

// A zero plan (no probabilities) must never fire even through a live
// injector, so wiring a disabled injector into the runtime is a no-op.
func TestZeroPlanNeverFires(t *testing.T) {
	inj := New(Plan{Seed: 42}, nil)
	if inj.Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
	for rank := 0; rank < 8; rank++ {
		for seq := int64(0); seq < 1000; seq++ {
			if inj.StragglerDelay(rank, seq) != 0 || inj.DropHalo(rank, seq) ||
				inj.CorruptHalo(rank, seq) || inj.FailReduce(rank, seq) ||
				inj.CrashRank(rank, seq) {
				t.Fatalf("zero plan fired at rank=%d seq=%d", rank, seq)
			}
		}
	}
}

// Same seed, same sites => same schedule; different seed => different
// schedule (overwhelmingly).
func TestScheduleDeterministicInSeed(t *testing.T) {
	plan := Plan{Seed: 7, HaloDropProb: 0.1, ReduceFailProb: 0.05, CrashProb: 0.02}
	a, b := New(plan, nil), New(plan, nil)
	diff := New(Plan{Seed: 8, HaloDropProb: 0.1, ReduceFailProb: 0.05, CrashProb: 0.02}, nil)
	same, mismatch := 0, 0
	for rank := 0; rank < 4; rank++ {
		for seq := int64(0); seq < 500; seq++ {
			va, vb := a.DropHalo(rank, seq), b.DropHalo(rank, seq)
			if va != vb {
				t.Fatalf("same-seed mismatch at rank=%d seq=%d", rank, seq)
			}
			if a.FailReduce(rank, seq) != b.FailReduce(rank, seq) {
				t.Fatalf("same-seed reduce mismatch at rank=%d seq=%d", rank, seq)
			}
			if va != diff.DropHalo(rank, seq) {
				mismatch++
			} else {
				same++
			}
		}
	}
	if mismatch == 0 {
		t.Fatal("different seeds produced identical halo-drop schedules")
	}
	_ = same
}

// The reduce-failure verdict must not depend on the caller's rank: every
// rank of the collective has to agree or retry loops deadlock.
func TestReduceVerdictRankIndependent(t *testing.T) {
	inj := New(Plan{Seed: 99, ReduceFailProb: 0.2}, nil)
	for seq := int64(0); seq < 400; seq++ {
		v0 := inj.FailReduce(0, seq)
		for rank := 1; rank < 16; rank++ {
			if inj.FailReduce(rank, seq) != v0 {
				t.Fatalf("reduce verdict differs across ranks at seq=%d", seq)
			}
		}
	}
	// Only the rank-0 calls may have counted.
	fired := int64(0)
	for seq := int64(0); seq < 400; seq++ {
		if inj.FailReduce(0, seq) {
			fired++
		}
	}
	// Counter doubled by the re-walk above; injections from non-zero ranks
	// must not have contributed.
	if got := inj.InjectedCount(ReduceFail); got != 2*fired {
		t.Fatalf("InjectedCount(ReduceFail) = %d, want %d (rank-0 only)", got, 2*fired)
	}
}

// Empirical rates should be in the right ballpark — the hash must behave
// like a uniform draw, not fire always/never.
func TestInjectionRatesApproximateProbabilities(t *testing.T) {
	const (
		prob  = 0.1
		n     = 40000
		slack = 0.02
	)
	inj := New(Plan{Seed: 1234, HaloDropProb: prob}, nil)
	hits := 0
	for seq := int64(0); seq < n; seq++ {
		if inj.DropHalo(int(seq%13), seq) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-prob) > slack {
		t.Fatalf("halo-drop rate %.4f, want %.2f±%.2f", rate, prob, slack)
	}
	if got := inj.InjectedCount(HaloDrop); got != int64(hits) {
		t.Fatalf("InjectedCount = %d, want %d", got, hits)
	}
}

// Straggler delay defaults to 1ms when only a probability is given, and the
// returned delay matches the plan when the draw fires.
func TestStragglerDelayDefaultsAndValue(t *testing.T) {
	inj := New(Plan{Seed: 5, StragglerProb: 0.5}, nil)
	if inj.Plan().StragglerDelay != 1e-3 {
		t.Fatalf("default StragglerDelay = %v, want 1e-3", inj.Plan().StragglerDelay)
	}
	sawDelay := false
	for seq := int64(0); seq < 200; seq++ {
		if d := inj.StragglerDelay(1, seq); d != 0 {
			if d != 1e-3 {
				t.Fatalf("delay = %v, want 1e-3", d)
			}
			sawDelay = true
		}
	}
	if !sawDelay {
		t.Fatal("p=0.5 straggler never fired in 200 draws")
	}
}

// Injected/recovered counters must be race-safe and visible through both the
// snapshot accessors and the shared registry.
func TestCountersConcurrentAndExported(t *testing.T) {
	reg := obs.NewRegistry()
	inj := New(Plan{Seed: 3, CrashProb: 1.0}, reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := int64(0); seq < 100; seq++ {
				inj.CrashRank(g, seq)
				inj.Recovered("restore")
			}
		}(g)
	}
	wg.Wait()
	if got := inj.InjectedCount(RankCrash); got != 800 {
		t.Fatalf("InjectedCount(RankCrash) = %d, want 800", got)
	}
	if got := inj.Recoveries()["restore"]; got != 800 {
		t.Fatalf("Recoveries[restore] = %d, want 800", got)
	}
	if got := inj.Injected()["rank-crash"]; got != 800 {
		t.Fatalf(`Injected()["rank-crash"] = %d, want 800`, got)
	}
	c := reg.Counter(`fault_injected_total{class="rank-crash"}`, "")
	if c.Value() != 800 {
		t.Fatalf("shared-registry counter = %d, want 800", c.Value())
	}
}

// Class names are stable — they appear in metric labels and BENCH_chaos.json.
func TestClassNames(t *testing.T) {
	want := []string{"straggler", "halo-drop", "halo-corrupt", "reduce-fail", "rank-crash"}
	cs := Classes()
	if len(cs) != len(want) {
		t.Fatalf("Classes() len = %d, want %d", len(cs), len(want))
	}
	for i, c := range cs {
		if c.String() != want[i] {
			t.Fatalf("Classes()[%d].String() = %q, want %q", i, c.String(), want[i])
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Fatalf("unknown class String() = %q", Class(99).String())
	}
}
