package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/perfmodel"
)

// tinyConfig builds an experiment context whose "resolutions" are small
// injected grids, so full figure pipelines run in test time.
func tinyConfig() *Config {
	// Yellowstone pricing: with noise-free reductions ChronGear wins at
	// every tiny scale (exactly the paper's small-core-count regime) and
	// the crossover shapes never appear.
	c := NewConfig(perfmodel.Yellowstone(), true, nil)
	one := grid.TestSpec()
	one.Nx, one.Ny = 64, 48
	one.Name = "tiny-1deg"
	c.grids["1deg"] = grid.Generate(one)
	tenth := grid.TestSpec()
	tenth.Nx, tenth.Ny = 90, 60
	tenth.Name = "tiny-0.1deg"
	c.grids["0.1deg"] = grid.Generate(tenth)
	return c
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a number: %v", s, err)
	}
	return v
}

func TestFig01BarotropicShareGrows(t *testing.T) {
	c := tinyConfig()
	tab, err := c.Fig01()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(tab.Rows))
	}
	first := cellFloat(t, tab.Rows[0][3])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][3])
	if last <= first {
		t.Fatalf("barotropic share should grow with cores: %.1f%% → %.1f%%", first, last)
	}
}

func TestFig02ReductionGrowsHaloShrinks(t *testing.T) {
	c := tinyConfig()
	tab, err := c.Fig02()
	if err != nil {
		t.Fatal(err)
	}
	n := len(tab.Rows)
	redFirst, redLast := cellFloat(t, tab.Rows[0][1]), cellFloat(t, tab.Rows[n-1][1])
	haloFirst, haloLast := cellFloat(t, tab.Rows[0][2]), cellFloat(t, tab.Rows[n-1][2])
	compFirst, compLast := cellFloat(t, tab.Rows[0][3]), cellFloat(t, tab.Rows[n-1][3])
	if redLast <= redFirst {
		t.Fatalf("reduction time should grow with cores: %g → %g", redFirst, redLast)
	}
	// Halo time has a 4α lower bound (paper §2.2): on tiny grids it is
	// latency-bound from the start, so only require it not to grow much.
	if haloLast > 2*haloFirst+1e-9 {
		t.Fatalf("halo time grew with cores: %g → %g", haloFirst, haloLast)
	}
	if compLast >= compFirst {
		t.Fatalf("compute time should shrink with cores: %g → %g", compFirst, compLast)
	}
}

func TestFig06IterationShape(t *testing.T) {
	c := tinyConfig()
	tab, err := c.Fig06()
	if err != nil {
		t.Fatal(err)
	}
	iters := make(map[string]float64)
	for _, row := range tab.Rows {
		iters[row[0]] = cellFloat(t, row[1]) // 1deg column
	}
	if !(iters["chrongear+evp"] < iters["chrongear+diagonal"]) {
		t.Fatalf("EVP should cut ChronGear iterations: %v", iters)
	}
	if !(iters["pcsi+evp"] < iters["pcsi+diagonal"]) {
		t.Fatalf("EVP should cut P-CSI iterations: %v", iters)
	}
	if !(iters["pcsi+diagonal"] > iters["chrongear+diagonal"]) {
		t.Fatalf("K_pcsi should exceed K_cg: %v", iters)
	}
}

func TestFig07And08Shapes(t *testing.T) {
	c := tinyConfig()
	left, right, err := c.Fig08()
	if err != nil {
		t.Fatal(err)
	}
	n := len(left.Rows)
	// At the largest core count P-CSI+EVP must beat ChronGear+diag.
	cgDiag := cellFloat(t, left.Rows[n-1][1])
	pcsiEVP := cellFloat(t, left.Rows[n-1][4])
	if pcsiEVP >= cgDiag {
		t.Fatalf("P-CSI+EVP (%g) should beat ChronGear+diag (%g) at scale", pcsiEVP, cgDiag)
	}
	// Simulation rate should be higher for P-CSI+EVP at scale.
	rCG := cellFloat(t, right.Rows[n-1][1])
	rPCSI := cellFloat(t, right.Rows[n-1][4])
	if rPCSI <= rCG {
		t.Fatalf("P-CSI+EVP rate (%g) should exceed ChronGear+diag (%g)", rPCSI, rCG)
	}
}

func TestTab01ImprovementGrowsWithCores(t *testing.T) {
	c := tinyConfig()
	tab, err := c.Tab01()
	if err != nil {
		t.Fatal(err)
	}
	n := len(tab.Rows)
	first := cellFloat(t, tab.Rows[0][3])
	last := cellFloat(t, tab.Rows[n-1][3])
	if last <= first {
		t.Fatalf("P-CSI+EVP total improvement should grow with cores: %g%% → %g%%", first, last)
	}
}

func TestFig03MoreLanczosStepsNoWorse(t *testing.T) {
	c := tinyConfig()
	tab, err := c.Fig03()
	if err != nil {
		t.Fatal(err)
	}
	// Iterations at the most Lanczos steps must not exceed those at the
	// fewest (the curve flattens to its optimum).
	first := cellFloat(t, tab.Rows[0][3])
	best := first
	for _, row := range tab.Rows {
		if v := cellFloat(t, row[3]); v < best {
			best = v
		}
	}
	lastForced := cellFloat(t, tab.Rows[len(tab.Rows)-2][3])
	if lastForced > first {
		t.Fatalf("P-CSI iterations grew with more Lanczos steps: %g → %g", first, lastForced)
	}
	if best == first && first > 50 {
		t.Logf("note: Lanczos step count made no difference (tiny grid)")
	}
}

func TestRegistryRunsAndRejectsUnknown(t *testing.T) {
	c := tinyConfig()
	var buf bytes.Buffer
	if err := Run("fig6", c, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 6") {
		t.Fatalf("fig6 output missing title: %q", buf.String())
	}
	if err := Run("nope", c, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names()) < 15 {
		t.Fatalf("registry too small: %v", Names())
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}, {"33", "4"}}}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "33") {
		t.Fatalf("bad table output:\n%s", out)
	}
}

func TestSweepCached(t *testing.T) {
	c := tinyConfig()
	a, err := c.Sweep("1deg")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Sweep("1deg")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("sweep not cached")
	}
}

func TestCheckFreqAblation(t *testing.T) {
	c := tinyConfig()
	tab, err := c.CheckFreq("1deg")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Checking every iteration must cost P-CSI the most reductions; its
	// per-solve time at interval 1 should exceed the interval-50 time.
	t1 := cellFloat(t, tab.Rows[0][4])
	t50 := cellFloat(t, tab.Rows[len(tab.Rows)-1][4])
	if t1 < t50 {
		t.Fatalf("P-CSI should benefit from sparser checks: interval1=%g interval50=%g", t1, t50)
	}
}

func TestEqCheckRatiosSane(t *testing.T) {
	c := tinyConfig()
	tab, err := c.EqCheck("1deg")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio := cellFloat(t, row[5])
		if ratio < 0.2 || ratio > 30 {
			t.Fatalf("measured/analytic ratio out of sanity band: %v (%v @ %v cores)", ratio, row[0], row[1])
		}
	}
}
