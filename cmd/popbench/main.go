// Command popbench regenerates the paper's tables and figures.
//
// Usage:
//
//	popbench -exp fig8 -machine yellowstone        # one experiment, full scale
//	popbench -exp all -quick                       # everything, reduced scale
//	popbench -list                                 # available experiment ids
//
// Full-scale 0.1° sweeps execute millions of real solver iterations across
// up to ~17k virtual ranks and take tens of minutes on one machine; -quick
// runs the same code paths on reduced grids in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/perfmodel"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig1..fig13, tab1, evpsetup, or 'all')")
		machine = flag.String("machine", "yellowstone", "machine model: yellowstone, edison, ideal")
		quick   = flag.Bool("quick", false, "reduced-scale grids and core counts")
		verbose = flag.Bool("v", true, "progress logging")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		targets = flag.String("targets", "", "comma-separated 0.1deg core-count targets overriding the paper axis")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	var m *perfmodel.Machine
	switch *machine {
	case "yellowstone":
		m = perfmodel.Yellowstone()
	case "edison":
		m = perfmodel.Edison()
	case "ideal":
		m = perfmodel.Ideal()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}

	cfg := experiments.NewConfig(m, *quick, os.Stderr)
	cfg.Verbose = *verbose
	if *targets != "" {
		var ts []int
		for _, part := range strings.Split(*targets, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -targets entry %q\n", part)
				os.Exit(2)
			}
			ts = append(ts, v)
		}
		cfg.TargetOverride = map[string][]int{"0.1deg": ts}
	}

	failed := false
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "# %s done in %s\n", id, time.Since(start).Round(time.Second))
	}
	if failed {
		os.Exit(1)
	}
}
