// Command popsolve runs a single barotropic solve and prints the
// convergence summary — handy for comparing solver/preconditioner
// combinations on one grid.
//
//	popsolve -grid 1deg -method pcsi -precond evp -cores 768 -machine yellowstone
//
// Observability: -trace writes the per-phase JSONL span trace, -metrics
// the Prometheus-style run metrics, -pprof serves the Go profiler.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro"
	"repro/internal/comm"
	"repro/internal/obs"
)

func main() {
	var (
		gridName   = flag.String("grid", "test", "grid preset: test, 1deg, 0.1deg, 0.1deg-scaled")
		method     = flag.String("method", "chrongear", "solver: chrongear, pcg, pipecg, pcsi, csi, sstep")
		precond    = flag.String("precond", "diagonal", "preconditioner: diagonal, evp, blocklu, none")
		cores      = flag.Int("cores", 0, "virtual core count (0 = single rank)")
		threads    = flag.Int("threads", 0, "worker shards: max virtual ranks running concurrently (0 = GOMAXPROCS)")
		precision  = flag.String("precision", "float64", "iteration arithmetic: float64, float32 (mixed-precision iterative refinement)")
		sstep      = flag.Int("sstep", 0, "s-step block size for -method sstep (0 = default 4; matvecs per global reduction)")
		machine    = flag.String("machine", "yellowstone", "machine model: yellowstone, edison, ideal, or empty")
		tol        = flag.Float64("tol", 1e-13, "relative convergence tolerance")
		tau        = flag.Float64("tau", 1920, "barotropic time step (s)")
		traceOut   = flag.String("trace", "", "write JSONL span/event trace to this file")
		metricsOut = flag.String("metrics", "", "write Prometheus-style metrics to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	)
	flag.Parse()
	obs.ServePprof(*pprofAddr)

	g, err := pop.NewGrid(*gridName)
	fatalIf(err)
	fmt.Printf("grid %s: %d×%d, %.0f%% ocean\n", g.Name, g.Nx, g.Ny, 100*g.OceanFraction())

	m, err := pop.ParseMethod(*method)
	fatalIf(err)
	pc, err := pop.ParsePrecond(*precond)
	fatalIf(err)
	prec, err := pop.ParsePrecision(*precision)
	fatalIf(err)
	solver, err := pop.NewSolver(g, pop.SolverSpec{
		Method: m, Precond: pc, Cores: *cores, Threads: *threads,
		MachineName: *machine, Tau: *tau,
		Options: pop.SolverOptions{Tol: *tol, Precision: prec, SStep: *sstep},
	})
	fatalIf(err)
	fmt.Printf("solver %s+%s on %d virtual cores (%d worker shards, %s)\n",
		solver.Spec.Method, solver.Spec.Precond, solver.Cores,
		solver.Session.W.EffectiveThreads(), prec)

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.DefaultCapacity)
		solver.Session.W.Tracer = tracer
	}

	// Solve A·x = b for a known smooth x so the error is checkable.
	op := solver.Op
	xTrue := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			lon := g.TLon[k] * math.Pi / 180
			lat := g.TLat[k] * math.Pi / 180
			xTrue[k] = math.Sin(2*lon) * math.Cos(3*lat)
		}
	}
	b := make([]float64, g.N())
	op.Apply(b, xTrue)
	for k, ocean := range g.Mask {
		if !ocean {
			b[k] = 0
		}
	}

	res, x, err := solver.Solve(b, nil)
	fatalIf(err)

	var maxErr float64
	for k, ocean := range g.Mask {
		if ocean {
			if d := math.Abs(x[k] - xTrue[k]); d > maxErr {
				maxErr = d
			}
		}
	}
	fmt.Printf("converged=%v iterations=%d rel_residual=%.3g max_error=%.3g\n",
		res.Converged, res.Iterations, res.RelResidual, maxErr)
	if res.Precision == pop.Float32 {
		fmt.Printf("mixed precision: %d refinement passes, %d float32 inner iterations\n",
			res.OuterIters, res.Iterations)
	}
	if res.EigSteps > 0 {
		fmt.Printf("lanczos: %d steps, interval [%.4g, %.4g]\n", res.EigSteps, res.Nu, res.Mu)
	}
	if *machine != "" {
		sum := res.Stats.MeanCounters()
		fmt.Printf("virtual time/solve: %.4gs (comp %.4g, halo %.4g, reduce %.4g)\n",
			res.Stats.MaxClock, sum.TComp, sum.THalo, sum.TReduce)
		fmt.Printf("per-rank averages: %d reductions, %d halo messages, %.1f KB halo traffic\n",
			res.Stats.Sum.Reductions/int64(len(res.Stats.PerRank)),
			res.Stats.Sum.HaloMsgs/int64(len(res.Stats.PerRank)),
			float64(res.Stats.Sum.HaloBytes)/float64(len(res.Stats.PerRank))/1024)
		printBreakdown(&res.Stats)
	}

	if tracer != nil {
		events := tracer.Events()
		obs.SummarizeReduces(events).Fprint(os.Stdout)
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "popsolve: trace ring dropped %d events (oldest lost)\n", d)
		}
		fatalIf(obs.DumpTrace(tracer, *traceOut))
		fmt.Printf("trace: %s (%d events)\n", *traceOut, len(events))
	}
	if *metricsOut != "" {
		fatalIf(obs.DumpMetrics(solveRegistry(&res, tracer), *metricsOut))
		fmt.Printf("metrics: %s\n", *metricsOut)
	}
}

// printBreakdown renders the paper's §2.2 per-phase timers — execution
// time split into computation, boundary update and global reduction —
// as per-rank min/mean/max over the run.
func printBreakdown(st *comm.Stats) {
	comp, halo, reduce := st.Breakdown()
	fmt.Printf("per-rank phase breakdown over %d ranks (virtual s):\n", len(st.PerRank))
	fmt.Printf("%-8s  %12s  %12s  %12s\n", "phase", "min", "mean", "max")
	for _, p := range []struct {
		name string
		s    comm.PhaseStat
	}{{"TComp", comp}, {"THalo", halo}, {"TReduce", reduce}} {
		fmt.Printf("%-8s  %12.6g  %12.6g  %12.6g\n", p.name, p.s.Min, p.s.Mean, p.s.Max)
	}
}

// solveRegistry collects the run's headline numbers as metrics.
func solveRegistry(res *pop.Result, tracer *obs.Tracer) *obs.Registry {
	reg := obs.NewRegistry()
	conv := 0.0
	if res.Converged {
		conv = 1
	}
	reg.Gauge("popsolve_converged", "1 when the solve met its tolerance").Set(conv)
	reg.Counter("popsolve_iterations_total", "solver iterations run").Add(int64(res.Iterations))
	reg.Gauge("popsolve_rel_residual", "final relative residual").Set(res.RelResidual)
	reg.Gauge("popsolve_solve_virtual_seconds", "slowest rank's virtual clock").Set(res.Stats.MaxClock)
	mean := res.Stats.MeanCounters()
	for _, p := range []struct {
		phase string
		v     float64
	}{{"comp", mean.TComp}, {"halo", mean.THalo}, {"reduce", mean.TReduce}} {
		reg.Gauge(`popsolve_phase_virtual_seconds{phase="`+p.phase+`"}`,
			"per-rank mean virtual seconds by phase").Set(p.v)
	}
	reg.Counter("popsolve_flops_total", "floating-point operations across ranks").Add(res.Stats.Sum.Flops)
	reg.Counter("popsolve_reductions_total", "global reductions across ranks").Add(res.Stats.Sum.Reductions)
	reg.Counter("popsolve_halo_messages_total", "halo messages across ranks").Add(res.Stats.Sum.HaloMsgs)
	reg.Counter("popsolve_halo_bytes_total", "halo payload bytes across ranks").Add(res.Stats.Sum.HaloBytes)
	if res.EigSteps > 0 {
		reg.Gauge("popsolve_lanczos_steps", "Lanczos steps used for the eigenvalue bounds").Set(float64(res.EigSteps))
		reg.Gauge("popsolve_chebyshev_nu", "Chebyshev interval lower bound").Set(res.Nu)
		reg.Gauge("popsolve_chebyshev_mu", "Chebyshev interval upper bound").Set(res.Mu)
	}
	if tracer != nil {
		h := reg.Histogram("popsolve_reduce_wait_seconds",
			"per-reduction wait for the slowest rank",
			[]float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1})
		for _, e := range tracer.Events() {
			if e.Name == obs.EvReduce && !e.Point {
				h.Observe(e.Wait)
			}
		}
		reg.Counter("popsolve_trace_dropped_events_total",
			"events lost to trace ring wraparound").Add(tracer.Dropped())
	}
	return reg
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "popsolve:", err)
		os.Exit(1)
	}
}
