package core

import (
	"context"
	"math"

	"repro/internal/comm"
)

// SolvePipeCG runs the pipelined preconditioned conjugate gradient with a
// background context; see SolvePipeCGContext.
func (s *Session) SolvePipeCG(b, x0 []float64) (Result, []float64, error) {
	return s.SolvePipeCGContext(context.Background(), b, x0)
}

// SolvePipeCGContext runs the pipelined preconditioned conjugate gradient
// of Ghysels & Vanroose (the §7 related-work alternative the paper
// contrasts with its own approach): one global reduction per iteration
// like ChronGear, but restructured so the preconditioner application and
// the matrix-vector product overlap with the reduction in flight. The
// virtual runtime prices that overlap through AllReduceOverlap, so this
// solver shows how far latency *hiding* goes compared with P-CSI's latency
// *elimination*.
//
// The price of pipelining is four extra vector recurrences per iteration
// (z, q, s, p alongside x, r, u, w) and the well-known residual drift of
// the longer recurrences; the convergence check still uses the recurrence
// residual, as in the reference algorithm.
//
// Cancellation is observed at convergence-check boundaries only (see the
// session-level cancellation protocol).
func (s *Session) SolvePipeCGContext(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Setup(); err != nil {
		return Result{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, nil, ctxSolveErr(ctx, "pipecg", 0)
	}
	o := s.Opts
	out := s.solveOut()
	res := Result{Solver: "pipecg", Precond: o.Precond}
	trace := &SolveTrace{
		Residuals: make([]ResidualPoint, 0, o.MaxIters/o.CheckEvery+1)}
	cancelled := false // written by rank 0 only, read after Run

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.scatterMasked(r, "pcg2.x", x0)
		bs := s.scatterMasked(r, "pcg2.b", b)
		rr := s.field(r, "pcg2.r")
		uu := s.field(r, "pcg2.u")
		ww := s.field(r, "pcg2.w")
		mm := s.field(r, "pcg2.m")
		nn := s.field(r, "pcg2.n")
		zz := s.zeroField(r, "pcg2.z")
		qq := s.zeroField(r, "pcg2.q")
		ss := s.zeroField(r, "pcg2.s")
		pp := s.zeroField(r, "pcg2.p")
		// Reduction payload reused by every collective in this program —
		// hoisted so the steady-state loop allocates nothing. Checks append
		// the residual norm and the cancellation flag.
		payload := make([]float64, 4)

		payload[0] = stageInitResidual(r, rs, rr, bs, xs)
		bnorm := math.Sqrt(r.AllReduce(payload[:1])[0])
		if r.ID == 0 {
			res.BNorm = bnorm
		}
		if bnorm == 0 {
			s.zeroSolutionExit(r, out, xs)
			if r.ID == 0 {
				res.Converged = true
			}
			return
		}
		target := o.Tol * bnorm

		// u₀ = M⁻¹r₀, w₀ = A·u₀.
		stagePrecond(r, rs, uu, rr)
		stageMatvec(r, rs, ww, uu)

		gammaPrev, alphaPrev := 0.0, 0.0
		converged := false
		k := 0
		for k < o.MaxIters {
			k++
			check := k%o.CheckEvery == 0
			var gL, dL, rnL float64
			var overlapFlops int64
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				n := int64(loc.InteriorLen())
				gL += loc.MaskedDotInterior(rr[i], uu[i])
				dL += loc.MaskedDotInterior(ww[i], uu[i])
				r.AddFlops(4 * n)
				if check {
					rnL += loc.MaskedDotInterior(rr[i], rr[i])
					r.AddFlops(2 * n)
				}
				overlapFlops += rs.pre[i].ApplyFlops() + 9*n
			}
			payload[0], payload[1] = gL, dL
			p := payload[:2]
			if check {
				payload[2] = rnL
				payload[3] = cancelFlag(ctx)
				p = payload[:4]
			}
			// The reduction flies while m = M⁻¹w and n = A·m compute. The
			// reduced values are consumed immediately: the result slice is
			// the rank's pooled buffer, valid only until its next collective
			// (the Exchange below).
			g := r.AllReduceOverlap(p, overlapFlops)
			gamma, delta := g[0], g[1]
			var rn2, cancelSum float64
			if check {
				rn2, cancelSum = g[2], g[3]
			}
			for i := 0; i < nb; i++ {
				rs.pre[i].Apply(mm[i], ww[i])
			}
			r.Exchange(mm)
			for i := 0; i < nb; i++ {
				rs.locs[i].Apply(nn[i], mm[i])
			}

			if check {
				rn := math.Sqrt(rn2)
				if r.ID == 0 {
					res.RelResidual = rn / bnorm
				}
				traceResidual(r, trace, k, rn/bnorm)
				if rn <= target {
					converged = true
					break
				}
				if cancelSum != 0 { // some rank saw ctx done — all stop here
					if r.ID == 0 {
						cancelled = true
					}
					break
				}
			}
			var beta, alpha float64
			if k == 1 {
				beta, alpha = 0, gamma/delta
			} else {
				beta = gamma / gammaPrev
				alpha = gamma / (delta - beta*gamma/alphaPrev)
			}
			gammaPrev, alphaPrev = gamma, alpha
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				xpay(loc, zz[i], nn[i], beta) // z = n + βz
				xpay(loc, qq[i], mm[i], beta) // q = m + βq
				xpay(loc, ss[i], ww[i], beta) // s = w + βs
				xpay(loc, pp[i], uu[i], beta) // p = u + βp
				axpy(loc, xs[i], pp[i], alpha)
				axpy(loc, rr[i], ss[i], -alpha)
				axpy(loc, uu[i], qq[i], -alpha)
				axpy(loc, ww[i], zz[i], -alpha)
				r.AddFlops(8 * int64(loc.InteriorLen()))
			}
		}
		if r.ID == 0 {
			res.Iterations = k
			res.Converged = converged
		}
		s.gatherSolution(r, out, xs)
	})
	res.Stats = st
	res.Trace = trace
	s.restoreLand(out, b)
	if cancelled {
		return res, out, ctxSolveErr(ctx, "pipecg", res.Iterations)
	}
	return res, out, nil
}
