package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// hotpathDirective marks a function whose body must stay allocation-free in
// the steady state. The marker is a comment line inside (usually ending)
// the function's doc comment:
//
//	// residual computes r = b − A·x …
//	//
//	//pop:hotpath
//	func residual(…)
const hotpathDirective = "//pop:hotpath"

// HotPathAlloc reports allocation sites inside functions annotated
// //pop:hotpath: make, append, new, slice/map composite literals, &T{…},
// fmt calls, string concatenation, interface boxing of non-constant
// arguments, and capturing closures.
//
// PR 2 made the steady-state iterate/halo/reduce paths allocate nothing and
// guards that with `testing.AllocsPerRun` gates — but a benchmark only
// covers the paths its fixture executes. This analyzer turns the property
// into a compile-time check over every path of every annotated function
// (the solver iterate bodies, halo pack/unpack, reduction combine).
//
// One shape is exempt by design: a `make` guarded by a capacity check
// (`if cap(buf) < need { buf = make(…) }`) is the sanctioned amortized-
// growth idiom of the buffer pools — it runs once on first use and never in
// the steady state.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocation sites (make/append/fmt/boxing/closures) in functions" +
		" annotated //pop:hotpath",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) (any, error) {
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !isHotPath(fd) || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		checkHotBody(pass, ig, fd)
	})
	return nil, nil
}

// isHotPath reports whether the function's doc comment carries the
// //pop:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// checkHotBody walks one annotated function body, tracking whether the
// current node sits under a capacity-check branch (the amortized-growth
// exemption).
func checkHotBody(pass *analysis.Pass, ig *ignorer, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fd.Name.Name
	var capGuarded int // depth of enclosing `if` conditions that call cap()

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			walk(x.Cond)
			if condCallsCap(info, x.Cond) {
				capGuarded++
				walk(x.Body)
				capGuarded--
			} else {
				walk(x.Body)
			}
			walk(x.Else)
			return
		case *ast.CallExpr:
			switch builtinName(info, x) {
			case "make":
				if capGuarded == 0 {
					ig.reportf(x.Pos(), "make in hot path %s allocates every call; preallocate in the session/world arenas (cap-guarded amortized growth is exempt)", name)
				}
			case "append":
				ig.reportf(x.Pos(), "append in hot path %s may grow and allocate; size the buffer once at setup", name)
			case "new":
				ig.reportf(x.Pos(), "new in hot path %s allocates; hoist to the enclosing session state", name)
			case "panic", "cap", "len", "copy", "min", "max", "delete", "clear", "real", "imag", "complex", "print", "println":
				// panic is the failure path, not steady state; the rest do
				// not allocate.
			default:
				checkBoxing(pass, ig, x, name)
			}
			for _, a := range x.Args {
				walk(a)
			}
			walk(x.Fun)
			return
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice, *types.Map:
				ig.reportf(x.Pos(), "%s literal in hot path %s allocates; hoist to setup", typeKindWord(info.TypeOf(x)), name)
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					ig.reportf(x.Pos(), "&composite-literal in hot path %s escapes to the heap; reuse a preallocated value", name)
				}
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				if t := info.TypeOf(x); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						ig.reportf(x.Pos(), "string concatenation in hot path %s allocates; hot paths must not build strings", name)
					}
				}
			}
		case *ast.FuncLit:
			if cap := firstCapture(info, x); cap != "" {
				ig.reportf(x.Pos(), "capturing closure in hot path %s (captures %s) allocates its environment; pass state explicitly or hoist the closure", name, cap)
			}
			// Still walk the body: allocations inside the literal run on
			// the hot path too.
		}
		// Generic descent.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch c.(type) {
			case *ast.IfStmt, *ast.CallExpr, *ast.CompositeLit, *ast.UnaryExpr,
				*ast.BinaryExpr, *ast.FuncLit:
				walk(c)
				return false
			}
			return true
		})
	}
	walk(fd.Body)
}

// condCallsCap reports whether an if condition contains a call to the cap
// builtin — the signature of the amortized buffer-growth idiom.
func condCallsCap(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && builtinName(info, call) == "cap" {
			found = true
		}
		return !found
	})
	return found
}

// checkBoxing reports non-constant concrete arguments passed to interface
// parameters: the conversion boxes the value on the heap. Constants convert
// to static interface data and are exempt; fmt calls are reported outright
// (their variadic boxing is the least of their cost).
func checkBoxing(pass *analysis.Pass, ig *ignorer, call *ast.CallExpr, hot string) {
	info := pass.TypesInfo
	f := calleeFunc(info, call)
	if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		ig.reportf(call.Pos(), "fmt.%s in hot path %s allocates (formatting state and boxed operands); format outside the iteration", f.Name(), hot)
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Value != nil || tv.IsNil() || tv.Type == nil {
			continue // constants and nil convert without allocating
		}
		if _, argIface := tv.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		ig.reportf(arg.Pos(), "argument %s boxes a %s into an interface in hot path %s; interface conversion of non-constant values allocates", types.ExprString(arg), tv.Type.String(), hot)
	}
}

// firstCapture returns the name of one variable the literal captures from
// its enclosing function, or "" when it captures nothing heap-worthy.
func firstCapture(info *types.Info, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Parent() == nil {
			return true
		}
		// Package-level variables are not captures; neither are the
		// literal's own params/locals.
		if v.Parent() == types.Universe || v.Pkg() == nil {
			return true
		}
		if v.Parent().Pos() == 0 { // package scope
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		captured = v.Name()
		return false
	})
	return captured
}

// typeKindWord names the allocating composite-literal kind for diagnostics.
func typeKindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	default:
		return "slice"
	}
}
