// Package redwidth exercises the reductionwidth analyzer: AllReduce
// payload widths must be rank-invariant.
package redwidth

import "repro/internal/comm"

// goodConstWidth reduces constant-width payloads (the ChronGear idiom).
func goodConstWidth(r *comm.Rank, payload []float64) {
	_ = r.AllReduce(payload[:1])
	_ = r.AllReduce(payload[:2])
}

// goodClosedForm sizes the payload from the s-derived closed form shared
// by every rank (the s-step Gram idiom).
func goodClosedForm(r *comm.Rank, s int) {
	width := 2*s + 1
	payload := make([]float64, width)
	_ = r.AllReduce(payload)
}

// goodParam passes a caller-shared parameter payload through (the
// reduceRetry idiom).
func goodParam(r *comm.Rank, vals []float64) []float64 {
	return r.AllReduce(vals)
}

// goodReslice narrows a payload with constant bounds through a local.
func goodReslice(r *comm.Rank, payload []float64, wide bool) {
	p := payload[:2]
	if wide {
		p = payload[:5]
	}
	_ = r.AllReduce(p)
}

// goodLiteral reduces a literal payload.
func goodLiteral(r *comm.Rank, x float64) {
	_ = r.AllReduce([]float64{x, x * x})
}

// badLocalWidth sizes the payload from the rank's own block count: ranks
// with different block counts would pack different widths.
func badLocalWidth(r *comm.Rank) {
	payload := make([]float64, len(r.Blocks)) // want `reduction payload width of AllReduce derives from rank-local`
	_ = r.AllReduce(payload)
}

// badSliceBound slices the payload by a rank-local bound at the call site.
func badSliceBound(r *comm.Rank, payload []float64) {
	n := r.ID + 1
	_ = r.AllReduce(payload[:n]) // want `reduction payload width of AllReduce derives from rank-local`
}

// badOverlapWidth is the same hazard on the overlapped reduction.
func badOverlapWidth(r *comm.Rank, payload []float64) {
	w := len(r.Blocks)
	_ = r.AllReduceOverlap(payload[:w], 0) // want `reduction payload width of AllReduceOverlap derives from rank-local`
}

// suppressedWidth records a justified exception.
func suppressedWidth(r *comm.Rank, payload []float64) {
	n := r.ID + 1
	//poplint:ignore reductionwidth harness exercises the suppression path
	_ = r.AllReduce(payload[:n])
}
