// Package comm is a testdata stand-in exposing one collective so the
// determinism analyzer's map-range collective check can resolve it.
package comm

// Rank mirrors the per-rank handle.
type Rank struct{}

// Barrier is a collective.
func (r *Rank) Barrier() {}
