package api

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
)

// The compact binary frame — the router↔worker hot path encoding. Layout
// (all integers little-endian; full spec in DESIGN.md §13):
//
//	offset size field
//	0      4    magic "POPF"
//	4      1    version (currently 2; v1 frames still decode)
//	5      1    kind (FrameSolveRequest | FrameSolveResponse | FrameError)
//	6      …    kind-specific payload
//
// Solve-request payload:
//
//	u8 method, u8 precond, u8 precision, u8 sstep (v2+ only; v1 frames
//	omit the byte and decode as sstep 0 = default), u8 flags
//	(bit0 return_x, bit1 has_x0, bit2 no_cache), u32 timeout_ms,
//	u64 trace_id, u16 len(grid) + grid bytes,
//	u32 len(b) + b as raw float64,
//	[if has_x0] u32 len(x0) + x0 as raw float64
//
// Solve-response payload:
//
//	u8 flags (bit0 converged, bit1 has_x), u8 cache (0 none, 1 hit,
//	2 miss, 3 dedup), u16 shard (0xFFFF = none), u32 iterations,
//	u32 outer_iters, f64 rel_residual, f64 elapsed_ms, u64 trace_id,
//	u8 precision, u16 len(solver) + solver bytes,
//	[if has_x] u32 len(x) + x as raw float64
//
// Error payload:
//
//	u16 http status, u16 len(message) + message bytes
//
// Strings are bounded (u16 lengths) and vectors carry their float64 bits
// raw — no reflection, no digit formatting, no base64. Synthetic RHS
// generators are a JSON-only convenience: frames always carry the explicit
// vector, because the hot path is router→worker where the RHS is already
// resolved.

// FrameMagic is the 4-byte frame preamble.
const FrameMagic = "POPF"

// FrameVersion is the current frame schema version, written by every
// encoder. Version 2 added the u8 sstep byte to the solve-request
// payload; response and error payloads are unchanged from v1.
const FrameVersion = 2

// frameVersionV1 is the pre-sstep schema. Decoders still accept it (a v1
// request decodes with SStep 0 = server default) so a fleet can roll
// routers and workers independently.
const frameVersionV1 = 1

// Frame kinds (byte 5).
const (
	// FrameSolveRequest marks a solve-request payload.
	FrameSolveRequest = 1
	// FrameSolveResponse marks a solve-response payload.
	FrameSolveResponse = 2
	// FrameError marks an error payload.
	FrameError = 3
)

// Cache-state wire codes (SolveResponse.Cache ↔ one byte).
const (
	frameCacheNone  = 0
	frameCacheHit   = 1
	frameCacheMiss  = 2
	frameCacheDedup = 3
)

// frameShardNone is the u16 sentinel for "no shard" (Shard -1).
const frameShardNone = 0xFFFF

// ErrBadFrame marks frames that fail structural validation: wrong magic,
// unknown version or kind, or a payload shorter than its declared lengths.
// Match with errors.Is.
var ErrBadFrame = fmt.Errorf("api: malformed binary frame")

// FrameRequest is the decoded form of a solve-request frame: the parsed
// enums plus the raw vectors. Unlike SolveRequest it carries no generator
// names — frames always ship the explicit RHS.
type FrameRequest struct {
	// Grid is the preset name.
	Grid string
	// Method is the solver algorithm.
	Method core.Method
	// Precond is the preconditioner.
	Precond core.PrecondType
	// Precision is the iteration arithmetic.
	Precision core.Precision
	// B is the right-hand side.
	B []float64
	// X0 is the initial guess (nil = zero).
	X0 []float64
	// TimeoutMS bounds the solve in milliseconds (0 = none).
	TimeoutMS int
	// ReturnX asks for the solution vector in the response.
	ReturnX bool
	// NoCache asks the router to bypass its result cache.
	NoCache bool
	// TraceID is the request-scoped trace ID (0 = assign fresh).
	TraceID uint64
	// SStep is the s-step block size for Method sstep (0 = default).
	SStep int
}

// AppendFrameRequest appends the frame encoding of r to dst and returns
// the extended slice (append-style, so hot paths can reuse buffers).
func AppendFrameRequest(dst []byte, r FrameRequest) []byte {
	dst = appendHeader(dst, FrameSolveRequest)
	var flags byte
	if r.ReturnX {
		flags |= 1 << 0
	}
	if r.X0 != nil {
		flags |= 1 << 1
	}
	if r.NoCache {
		flags |= 1 << 2
	}
	dst = append(dst, byte(r.Method), byte(r.Precond), byte(r.Precision), byte(r.SStep), flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.TimeoutMS))
	dst = binary.LittleEndian.AppendUint64(dst, r.TraceID)
	dst = appendString16(dst, r.Grid)
	dst = appendFloats(dst, r.B)
	if r.X0 != nil {
		dst = appendFloats(dst, r.X0)
	}
	return dst
}

// DecodeFrameRequest parses a solve-request frame. Enum bytes are
// validated (an out-of-range method/precond/precision is a *FieldError,
// exactly like the JSON path), structural damage matches ErrBadFrame.
func DecodeFrameRequest(raw []byte) (FrameRequest, error) {
	p, err := newParser(raw, FrameSolveRequest)
	if err != nil {
		return FrameRequest{}, err
	}
	var r FrameRequest
	m, pc, pr := p.byte(), p.byte(), p.byte()
	var sstep byte
	if p.ver >= 2 {
		sstep = p.byte()
	}
	flags := p.byte()
	r.TimeoutMS = int(p.uint32())
	r.TraceID = p.uint64()
	r.Grid = p.string16()
	r.B = p.floats()
	if flags&(1<<1) != 0 {
		r.X0 = p.floats()
	}
	if p.err != nil {
		return FrameRequest{}, p.err
	}
	r.Method = core.Method(m)
	r.Precond = core.PrecondType(pc)
	r.Precision = core.Precision(pr)
	if !r.Method.Valid() {
		return FrameRequest{}, &FieldError{Field: "method", Value: fmt.Sprintf("%d", m), Accepted: acceptedMethods}
	}
	if !r.Precond.Valid() {
		return FrameRequest{}, &FieldError{Field: "precond", Value: fmt.Sprintf("%d", pc), Accepted: acceptedPreconds}
	}
	if !r.Precision.Valid() {
		return FrameRequest{}, &FieldError{Field: "precision", Value: fmt.Sprintf("%d", pr), Accepted: acceptedPrecisions}
	}
	if int(sstep) > core.MaxSStep {
		return FrameRequest{}, &FieldError{Field: "sstep", Value: fmt.Sprintf("%d", sstep), Accepted: acceptedSSteps}
	}
	r.SStep = int(sstep)
	r.ReturnX = flags&(1<<0) != 0
	r.NoCache = flags&(1<<2) != 0
	return r, nil
}

// AppendFrameResponse appends the frame encoding of resp to dst. The X
// vector is included only when non-nil (the request's ReturnX decision is
// made by the caller).
func AppendFrameResponse(dst []byte, resp SolveResponse) []byte {
	dst = appendHeader(dst, FrameSolveResponse)
	var flags byte
	if resp.Converged {
		flags |= 1 << 0
	}
	if resp.X != nil {
		flags |= 1 << 1
	}
	dst = append(dst, flags, cacheCode(resp.Cache))
	shard := uint16(frameShardNone)
	if resp.Shard >= 0 && resp.Shard < frameShardNone {
		shard = uint16(resp.Shard)
	}
	dst = binary.LittleEndian.AppendUint16(dst, shard)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(resp.Iterations))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(resp.OuterIters))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(resp.RelResidual))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(resp.ElapsedMS))
	dst = binary.LittleEndian.AppendUint64(dst, resp.TraceID)
	dst = append(dst, precisionCode(resp.Precision))
	dst = appendString16(dst, resp.Solver)
	if resp.X != nil {
		dst = appendFloats(dst, resp.X)
	}
	return dst
}

// DecodeFrameResponse parses a solve-response frame.
func DecodeFrameResponse(raw []byte) (SolveResponse, error) {
	p, err := newParser(raw, FrameSolveResponse)
	if err != nil {
		return SolveResponse{}, err
	}
	var resp SolveResponse
	flags, cache := p.byte(), p.byte()
	shard := p.uint16()
	resp.Iterations = int(p.uint32())
	resp.OuterIters = int(p.uint32())
	resp.RelResidual = math.Float64frombits(p.uint64())
	resp.ElapsedMS = math.Float64frombits(p.uint64())
	resp.TraceID = p.uint64()
	prec := p.byte()
	resp.Solver = p.string16()
	if flags&(1<<1) != 0 {
		resp.X = p.floats()
	}
	if p.err != nil {
		return SolveResponse{}, p.err
	}
	resp.Converged = flags&(1<<0) != 0
	resp.Cache = cacheName(cache)
	resp.Shard = -1
	if shard != frameShardNone {
		resp.Shard = int(shard)
	}
	resp.Precision = precisionName(prec)
	return resp, nil
}

// AppendFrameError appends the frame encoding of an error reply: the HTTP
// status the JSON path would have used, plus the rendered message.
func AppendFrameError(dst []byte, status int, msg string) []byte {
	dst = appendHeader(dst, FrameError)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(status))
	dst = appendString16(dst, msg)
	return dst
}

// DecodeFrameError parses an error frame into (status, message).
func DecodeFrameError(raw []byte) (int, string, error) {
	p, err := newParser(raw, FrameError)
	if err != nil {
		return 0, "", err
	}
	status := int(p.uint16())
	msg := p.string16()
	if p.err != nil {
		return 0, "", p.err
	}
	return status, msg, nil
}

// FrameKind peeks at a frame's kind byte after validating the header;
// servers use it to dispatch request vs response vs error without a full
// decode.
func FrameKind(raw []byte) (int, error) {
	if len(raw) < 6 || string(raw[:4]) != FrameMagic {
		return 0, fmt.Errorf("bad magic or truncated header: %w", ErrBadFrame)
	}
	if raw[4] != FrameVersion && raw[4] != frameVersionV1 {
		return 0, fmt.Errorf("unknown frame version %d: %w", raw[4], ErrBadFrame)
	}
	return int(raw[5]), nil
}

// appendHeader writes the shared 6-byte preamble.
func appendHeader(dst []byte, kind byte) []byte {
	dst = append(dst, FrameMagic...)
	return append(dst, FrameVersion, kind)
}

// appendString16 writes a u16 length prefix and the string bytes; strings
// longer than 64 KiB are truncated (no legitimate grid/solver/error name
// approaches that).
func appendString16(dst []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// appendFloats writes a u32 count prefix and the vector as raw
// little-endian float64 bits.
func appendFloats(dst []byte, v []float64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
	for _, f := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// parser is a bounds-checked cursor over a frame payload; the first length
// violation sticks in err and every later read returns zero values.
type parser struct {
	raw []byte
	off int
	ver byte
	err error
}

// newParser validates the header and positions the cursor at the payload.
func newParser(raw []byte, wantKind byte) (*parser, error) {
	kind, err := FrameKind(raw)
	if err != nil {
		return nil, err
	}
	if byte(kind) != wantKind {
		return nil, fmt.Errorf("frame kind %d, want %d: %w", kind, wantKind, ErrBadFrame)
	}
	return &parser{raw: raw, off: 6, ver: raw[4]}, nil
}

// need reserves n bytes, recording a sticky ErrBadFrame on overrun.
func (p *parser) need(n int) bool {
	if p.err != nil {
		return false
	}
	if p.off+n > len(p.raw) {
		p.err = fmt.Errorf("truncated frame at offset %d: %w", p.off, ErrBadFrame)
		return false
	}
	return true
}

func (p *parser) byte() byte {
	if !p.need(1) {
		return 0
	}
	b := p.raw[p.off]
	p.off++
	return b
}

func (p *parser) uint16() uint16 {
	if !p.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(p.raw[p.off:])
	p.off += 2
	return v
}

func (p *parser) uint32() uint32 {
	if !p.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(p.raw[p.off:])
	p.off += 4
	return v
}

func (p *parser) uint64() uint64 {
	if !p.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(p.raw[p.off:])
	p.off += 8
	return v
}

func (p *parser) string16() string {
	n := int(p.uint16())
	if !p.need(n) {
		return ""
	}
	s := string(p.raw[p.off : p.off+n])
	p.off += n
	return s
}

func (p *parser) floats() []float64 {
	n := int(p.uint32())
	if p.err != nil || !p.need(n*8) {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(p.raw[p.off+i*8:]))
	}
	p.off += n * 8
	return v
}

// cacheCode maps a cache-state name to its wire byte.
func cacheCode(s string) byte {
	switch s {
	case "hit":
		return frameCacheHit
	case "miss":
		return frameCacheMiss
	case "dedup":
		return frameCacheDedup
	default:
		return frameCacheNone
	}
}

// cacheName maps a cache-state wire byte back to its name.
func cacheName(b byte) string {
	switch b {
	case frameCacheHit:
		return "hit"
	case frameCacheMiss:
		return "miss"
	case frameCacheDedup:
		return "dedup"
	default:
		return ""
	}
}

// precisionCode maps a precision name to its enum byte (unknown → float64).
func precisionCode(s string) byte {
	if s == core.Float32.String() {
		return byte(core.Float32)
	}
	return byte(core.Float64)
}

// precisionName maps a precision enum byte back to its name.
func precisionName(b byte) string {
	if core.Precision(b) == core.Float32 {
		return core.Float32.String()
	}
	return core.Float64.String()
}
