package pop_test

import (
	"context"
	"errors"
	"fmt"

	pop "repro"
)

// exampleRHS builds a right-hand side whose exact solution is 1 on every
// ocean point: b = A·1. Solving it exercises the full distributed pipeline
// with a known answer.
func exampleRHS(g *pop.Grid) []float64 {
	op := pop.AssembleOperator(g, 1920)
	ones := make([]float64, g.N())
	for k, m := range g.Mask {
		if m {
			ones[k] = 1
		}
	}
	b := make([]float64, g.N())
	op.Apply(b, ones)
	for k, m := range g.Mask {
		if !m {
			b[k] = 0
		}
	}
	return b
}

// The quickstart: build a grid, configure the paper's solver (P-CSI with the
// block-EVP preconditioner), and solve one barotropic system across four
// virtual ranks.
func ExampleNewSolver() {
	g, err := pop.NewGrid(pop.GridTest)
	if err != nil {
		fmt.Println("grid:", err)
		return
	}
	s, err := pop.NewSolver(g, pop.SolverSpec{
		Method:  pop.MethodPCSI,
		Precond: pop.PrecondEVP,
		Cores:   4,
	})
	if err != nil {
		fmt.Println("solver:", err)
		return
	}
	res, x, err := s.Solve(exampleRHS(g), nil)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("solution length matches grid:", len(x) == g.N())
	// Output:
	// converged: true
	// solution length matches grid: true
}

// Communication avoidance: the s-step solver batches s matrix-vector
// products between global reductions, so a converged solve issues at most
// ceil(iterations/s)+1 reductions instead of one (or more) per iteration.
// SStep: 0 accepts the default block size (4); raise it when reduction
// latency dominates the iteration time.
func Example_sstep() {
	g, err := pop.NewGrid(pop.GridTest)
	if err != nil {
		fmt.Println("grid:", err)
		return
	}
	s, err := pop.NewSolver(g, pop.SolverSpec{
		Method:  pop.MethodSStep,
		Precond: pop.PrecondEVP,
		Cores:   4,
		Options: pop.SolverOptions{SStep: 4},
	})
	if err != nil {
		fmt.Println("solver:", err)
		return
	}
	res, _, err := s.Solve(exampleRHS(g), nil)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	bound := int64((res.Iterations+3)/4) + 1
	perRank := res.Stats.Sum.Reductions / int64(len(res.Stats.PerRank))
	fmt.Println("converged:", res.Converged)
	fmt.Println("reductions within ceil(iters/s)+1:", perRank <= bound)
	// Output:
	// converged: true
	// reductions within ceil(iters/s)+1: true
}

// Serving pool: a Service owns warmed-up sessions per (grid, method,
// preconditioner) and is safe to call from any number of goroutines.
func ExampleNewService() {
	g, err := pop.NewGrid(pop.GridTest)
	if err != nil {
		fmt.Println("grid:", err)
		return
	}
	svc := pop.NewService(pop.ServiceOptions{Cores: 4, MaxSessionsPerKey: 2})
	defer svc.Close(context.Background())

	resp, err := svc.Solve(context.Background(), pop.ServeRequest{
		Grid:    pop.GridTest,
		Method:  pop.MethodPCSI,
		Precond: pop.PrecondEVP,
		B:       exampleRHS(g),
	})
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Println("converged:", resp.Result.Converged)
	fmt.Println("warm sessions:", svc.Snapshot().Sessions)
	// Output:
	// converged: true
	// warm sessions: 1
}

// Cancellation: SolveContext observes ctx at every convergence-check
// boundary, so an already-cancelled context returns immediately with an
// error matching the context's cause — and never perturbs the numerics of
// uncancelled solves.
func ExampleSolver_SolveContext() {
	g, err := pop.NewGrid(pop.GridTest)
	if err != nil {
		fmt.Println("grid:", err)
		return
	}
	s, err := pop.NewSolver(g, pop.SolverSpec{
		Method:  pop.MethodPCSI,
		Precond: pop.PrecondEVP,
		Cores:   4,
	})
	if err != nil {
		fmt.Println("solver:", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = s.SolveContext(ctx, exampleRHS(g), nil)
	fmt.Println("cancelled:", errors.Is(err, context.Canceled))
	// Output:
	// cancelled: true
}

// Fault injection: a deterministic injector wired into the solver makes
// reductions fail on a seeded schedule; SolveResilient retries them and
// still converges to the same tolerance.
func ExampleSolver_SolveResilient() {
	g, err := pop.NewGrid(pop.GridTest)
	if err != nil {
		fmt.Println("grid:", err)
		return
	}
	inj := pop.NewFaultInjector(pop.FaultPlan{Seed: 7, ReduceFailProb: 0.2})
	s, err := pop.NewSolver(g, pop.SolverSpec{
		Method:  pop.MethodPCSI,
		Precond: pop.PrecondEVP,
		Cores:   4,
		Faults:  inj,
	})
	if err != nil {
		fmt.Println("solver:", err)
		return
	}
	res, _, err := s.SolveResilient(context.Background(), exampleRHS(g), nil)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("reductions retried:", res.Recovery.ReduceRetries > 0)
	// Output:
	// converged: true
	// reductions retried: true
}
