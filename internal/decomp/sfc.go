package decomp

// hilbertOrder returns the IDs of an mx×my block grid visited along a
// Hilbert curve over the enclosing power-of-two square, skipping cells
// outside the rectangle. Consecutive entries are (almost always) spatially
// adjacent, which is what makes contiguous runs good rank territories.
func hilbertOrder(mx, my int) []int {
	side := 1
	for side < mx || side < my {
		side <<= 1
	}
	order := make([]int, 0, mx*my)
	n := side * side
	for t := 0; t < n; t++ {
		x, y := hilbertD2XY(side, t)
		if x < mx && y < my {
			order = append(order, y*mx+x)
		}
	}
	return order
}

// hilbertD2XY converts a distance along the Hilbert curve of an n×n grid
// (n a power of two) to coordinates, using the classic bit-twiddling walk.
func hilbertD2XY(n, d int) (x, y int) {
	t := d
	for s := 1; s < n; s <<= 1 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}
