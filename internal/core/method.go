package core

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// Method selects the barotropic solver algorithm. The zero value is
// ChronGear, POP's production solver, so a zero-initialized configuration
// matches POP's defaults.
type Method int

const (
	// MethodChronGear is the Chronopoulos–Gear solver (Algorithm 1):
	// POP's production PCG variant with one fused global reduction per
	// iteration.
	MethodChronGear Method = iota
	// MethodPCG is classic preconditioned conjugate gradients, with two
	// global reductions per iteration.
	//
	//pop:noresilient reference baseline with no degraded mode by design; request-level retry in internal/serve covers it
	MethodPCG
	// MethodPipeCG is the Ghysels–Vanroose pipelined CG, overlapping its
	// single reduction with the preconditioner and matvec.
	//
	//pop:noresilient pipelined recurrence has no checkpoint/rollback protocol; request-level retry in internal/serve covers it
	MethodPipeCG
	// MethodPCSI is the paper's preconditioned Classical Stiefel Iteration
	// (Algorithm 2): no reductions outside convergence checks.
	MethodPCSI
	// MethodCSI is the plain Stiefel iteration of Hu et al. 2013 — P-CSI
	// run with identity preconditioning. Construction-time code (pop's
	// NewSolver, the solve service) maps it to MethodPCSI plus
	// PrecondIdentity; the Session dispatcher treats it as MethodPCSI.
	MethodCSI
	// MethodSStep is the communication-avoiding s-step PCG with a Chebyshev
	// basis (sstep.go): Options.SStep matrix-vector products batched between
	// single fused global reductions — at most ceil(iters/s)+1 reductions per
	// converged solve. Float64 only.
	//
	//pop:noresilient fused Gram recurrence has no checkpoint/rollback protocol yet (SOLVERS.md); request-level retry in internal/serve covers it
	MethodSStep
)

// String returns the name used in CLI flags and experiment tables.
func (m Method) String() string {
	switch m {
	case MethodChronGear:
		return "chrongear"
	case MethodPCG:
		return "pcg"
	case MethodPipeCG:
		return "pipecg"
	case MethodPCSI:
		return "pcsi"
	case MethodCSI:
		return "csi"
	case MethodSStep:
		return "sstep"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined solver methods.
func (m Method) Valid() bool {
	return m >= MethodChronGear && m <= MethodSStep
}

// methodSpellings maps every accepted method name onto its enum value, in
// documentation order with the default spelling first. ParseMethod and
// MethodNames both read this table — the single source of truth for the
// accepted spellings, so the lists the api package surfaces in FieldError
// 400 bodies can never drift from what the parser takes.
var methodSpellings = []enumSpelling[Method]{
	{"chrongear", MethodChronGear},
	{"pcg", MethodPCG},
	{"pipecg", MethodPipeCG},
	{"pcsi", MethodPCSI},
	{"csi", MethodCSI},
	{"sstep", MethodSStep},
}

// precondSpellings is the preconditioner spelling table (ParsePrecond,
// PrecondNames), default spelling first.
var precondSpellings = []enumSpelling[PrecondType]{
	{"diagonal", PrecondDiagonal},
	{"evp", PrecondEVP},
	{"blocklu", PrecondBlockLU},
	{"none", PrecondIdentity},
}

// enumSpelling is one accepted wire spelling of an enum value.
type enumSpelling[T any] struct {
	name  string
	value T
}

// spellingNames flattens a spelling table to its accepted names, in order.
func spellingNames[T any](table []enumSpelling[T]) []string {
	out := make([]string, len(table))
	for i, sp := range table {
		out[i] = sp.name
	}
	return out
}

// parseSpelling resolves s against a spelling table ("" selects the first
// entry's value, the documented default).
func parseSpelling[T any](table []enumSpelling[T], s, kind string) (T, error) {
	if s == "" {
		return table[0].value, nil
	}
	for _, sp := range table {
		if s == sp.name {
			return sp.value, nil
		}
	}
	var zero T
	return zero, fmt.Errorf("core: unknown %s %q: %w", kind, s, ErrBadSpec)
}

// MethodNames lists the spellings ParseMethod accepts ("" selects the
// first entry). The returned slice is a copy.
func MethodNames() []string { return spellingNames(methodSpellings) }

// PrecondNames lists the spellings ParsePrecond accepts ("" selects the
// first entry). The returned slice is a copy.
func PrecondNames() []string { return spellingNames(precondSpellings) }

// ParseMethod maps a method name ("chrongear", "pcg", "pipecg", "pcsi",
// "csi", "sstep"; "" selects the ChronGear default) onto its enum value.
// Unknown names return an error matching errors.Is(err, ErrBadSpec).
func ParseMethod(s string) (Method, error) {
	return parseSpelling(methodSpellings, s, "method")
}

// ParsePrecond maps a preconditioner name ("diagonal", "evp", "blocklu",
// "none"; "" selects the diagonal default) onto its enum value. Unknown
// names return an error matching errors.Is(err, ErrBadSpec).
func ParsePrecond(s string) (PrecondType, error) {
	return parseSpelling(precondSpellings, s, "preconditioner")
}

// SolveContext runs the selected method on right-hand side b with initial
// guess x0 (nil = zero), honouring ctx: cancellation is observed at every
// convergence-check boundary (each CheckEvery iterations), so an
// interrupted solve never perturbs the numerics between checks — the
// residual history of a cancelled solve is a bitwise prefix of the
// uncancelled one. The returned solution slice is the session's reusable
// output arena, valid until the next solve on this session.
//
// When ctx carries a request-scoped trace ID (obs.ContextWithTraceID), the
// solve adopts it: the session world's ID is set before dispatch, so every
// rank-level span the solve emits — and the returned Result — carries the
// request's ID.
func (s *Session) SolveContext(ctx context.Context, m Method, b, x0 []float64) (Result, []float64, error) {
	if len(b) != s.G.N() {
		return Result{}, nil, fmt.Errorf("core: rhs length %d, want %d: %w", len(b), s.G.N(), ErrBadSpec)
	}
	if x0 == nil {
		x0 = s.zeroX0()
	} else if len(x0) != s.G.N() {
		return Result{}, nil, fmt.Errorf("core: x0 length %d, want %d: %w", len(x0), s.G.N(), ErrBadSpec)
	}
	if id := obs.TraceIDFromContext(ctx); id != 0 {
		s.W.SetTraceID(id)
	}
	var (
		res Result
		x   []float64
		err error
	)
	if s.Opts.Precision == Float32 {
		// Mixed precision routes every method through the iterative-
		// refinement driver (mixed.go), which runs the method's float32
		// inner solver inside the float64 outer loop.
		if !m.Valid() {
			return Result{}, nil, fmt.Errorf("core: unknown method %v: %w", m, ErrBadSpec)
		}
		if m == MethodSStep {
			// The s-step solver's fused Gram reduction has no float32 inner
			// variant; its value is reduction avoidance, which iterative
			// refinement's outer float64 residuals would dilute anyway.
			return Result{}, nil, fmt.Errorf("core: method sstep has no float32 path: %w", ErrBadSpec)
		}
		res, x, err = s.solveMixedContext(ctx, m, b, x0)
		res.TraceID = s.W.TraceID()
		return res, x, err
	}
	switch m {
	case MethodChronGear:
		res, x, err = s.SolveChronGearContext(ctx, b, x0)
	case MethodPCG:
		res, x, err = s.SolvePCGContext(ctx, b, x0)
	case MethodPipeCG:
		res, x, err = s.SolvePipeCGContext(ctx, b, x0)
	case MethodPCSI, MethodCSI:
		res, x, err = s.SolvePCSIContext(ctx, b, x0)
	case MethodSStep:
		res, x, err = s.SolveSStepContext(ctx, b, x0)
	default:
		return Result{}, nil, fmt.Errorf("core: unknown method %v: %w", m, ErrBadSpec)
	}
	res.TraceID = s.W.TraceID()
	return res, x, err
}
