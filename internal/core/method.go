package core

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// Method selects the barotropic solver algorithm. The zero value is
// ChronGear, POP's production solver, so a zero-initialized configuration
// matches POP's defaults.
type Method int

const (
	// MethodChronGear is the Chronopoulos–Gear solver (Algorithm 1):
	// POP's production PCG variant with one fused global reduction per
	// iteration.
	MethodChronGear Method = iota
	// MethodPCG is classic preconditioned conjugate gradients, with two
	// global reductions per iteration.
	MethodPCG
	// MethodPipeCG is the Ghysels–Vanroose pipelined CG, overlapping its
	// single reduction with the preconditioner and matvec.
	MethodPipeCG
	// MethodPCSI is the paper's preconditioned Classical Stiefel Iteration
	// (Algorithm 2): no reductions outside convergence checks.
	MethodPCSI
	// MethodCSI is the plain Stiefel iteration of Hu et al. 2013 — P-CSI
	// run with identity preconditioning. Construction-time code (pop's
	// NewSolver, the solve service) maps it to MethodPCSI plus
	// PrecondIdentity; the Session dispatcher treats it as MethodPCSI.
	MethodCSI
	// MethodSStep is the communication-avoiding s-step PCG with a Chebyshev
	// basis (sstep.go): Options.SStep matrix-vector products batched between
	// single fused global reductions — at most ceil(iters/s)+1 reductions per
	// converged solve. Float64 only.
	MethodSStep
)

// String returns the name used in CLI flags and experiment tables.
func (m Method) String() string {
	switch m {
	case MethodChronGear:
		return "chrongear"
	case MethodPCG:
		return "pcg"
	case MethodPipeCG:
		return "pipecg"
	case MethodPCSI:
		return "pcsi"
	case MethodCSI:
		return "csi"
	case MethodSStep:
		return "sstep"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined solver methods.
func (m Method) Valid() bool {
	return m >= MethodChronGear && m <= MethodSStep
}

// ParseMethod maps a method name ("chrongear", "pcg", "pipecg", "pcsi",
// "csi", "sstep"; "" selects the ChronGear default) onto its enum value.
// Unknown names return an error matching errors.Is(err, ErrBadSpec).
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "chrongear":
		return MethodChronGear, nil
	case "pcg":
		return MethodPCG, nil
	case "pipecg":
		return MethodPipeCG, nil
	case "pcsi":
		return MethodPCSI, nil
	case "csi":
		return MethodCSI, nil
	case "sstep":
		return MethodSStep, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q: %w", s, ErrBadSpec)
	}
}

// ParsePrecond maps a preconditioner name ("diagonal", "evp", "blocklu",
// "none"; "" selects the diagonal default) onto its enum value. Unknown
// names return an error matching errors.Is(err, ErrBadSpec).
func ParsePrecond(s string) (PrecondType, error) {
	switch s {
	case "", "diagonal":
		return PrecondDiagonal, nil
	case "evp":
		return PrecondEVP, nil
	case "blocklu":
		return PrecondBlockLU, nil
	case "none":
		return PrecondIdentity, nil
	default:
		return 0, fmt.Errorf("core: unknown preconditioner %q: %w", s, ErrBadSpec)
	}
}

// SolveContext runs the selected method on right-hand side b with initial
// guess x0 (nil = zero), honouring ctx: cancellation is observed at every
// convergence-check boundary (each CheckEvery iterations), so an
// interrupted solve never perturbs the numerics between checks — the
// residual history of a cancelled solve is a bitwise prefix of the
// uncancelled one. The returned solution slice is the session's reusable
// output arena, valid until the next solve on this session.
//
// When ctx carries a request-scoped trace ID (obs.ContextWithTraceID), the
// solve adopts it: the session world's ID is set before dispatch, so every
// rank-level span the solve emits — and the returned Result — carries the
// request's ID.
func (s *Session) SolveContext(ctx context.Context, m Method, b, x0 []float64) (Result, []float64, error) {
	if len(b) != s.G.N() {
		return Result{}, nil, fmt.Errorf("core: rhs length %d, want %d: %w", len(b), s.G.N(), ErrBadSpec)
	}
	if x0 == nil {
		x0 = s.zeroX0()
	} else if len(x0) != s.G.N() {
		return Result{}, nil, fmt.Errorf("core: x0 length %d, want %d: %w", len(x0), s.G.N(), ErrBadSpec)
	}
	if id := obs.TraceIDFromContext(ctx); id != 0 {
		s.W.SetTraceID(id)
	}
	var (
		res Result
		x   []float64
		err error
	)
	if s.Opts.Precision == Float32 {
		// Mixed precision routes every method through the iterative-
		// refinement driver (mixed.go), which runs the method's float32
		// inner solver inside the float64 outer loop.
		if !m.Valid() {
			return Result{}, nil, fmt.Errorf("core: unknown method %v: %w", m, ErrBadSpec)
		}
		if m == MethodSStep {
			// The s-step solver's fused Gram reduction has no float32 inner
			// variant; its value is reduction avoidance, which iterative
			// refinement's outer float64 residuals would dilute anyway.
			return Result{}, nil, fmt.Errorf("core: method sstep has no float32 path: %w", ErrBadSpec)
		}
		res, x, err = s.solveMixedContext(ctx, m, b, x0)
		res.TraceID = s.W.TraceID()
		return res, x, err
	}
	switch m {
	case MethodChronGear:
		res, x, err = s.SolveChronGearContext(ctx, b, x0)
	case MethodPCG:
		res, x, err = s.SolvePCGContext(ctx, b, x0)
	case MethodPipeCG:
		res, x, err = s.SolvePipeCGContext(ctx, b, x0)
	case MethodPCSI, MethodCSI:
		res, x, err = s.SolvePCSIContext(ctx, b, x0)
	case MethodSStep:
		res, x, err = s.SolveSStepContext(ctx, b, x0)
	default:
		return Result{}, nil, fmt.Errorf("core: unknown method %v: %w", m, ErrBadSpec)
	}
	res.TraceID = s.W.TraceID()
	return res, x, err
}
