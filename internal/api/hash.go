package api

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"repro/internal/core"
)

// CacheKey is the content hash that keys the fleet's completed-solve
// cache: SHA-256 over a canonical, length-prefixed encoding of everything
// that determines a solve's bit pattern.
type CacheKey [sha256.Size]byte

// HashSolve computes the cache key for one solve: grid preset, method,
// preconditioner, precision, s-step block size, the effective tolerance,
// the RHS bits and (when present) the initial-guess bits. Two requests
// share a key exactly when a fault-free solve of one is bitwise
// substitutable for the other — the deterministic-solver invariant the
// cache's replay guarantee rests on. Float64 values are hashed by their
// IEEE bit patterns, so -0 ≠ +0 and equal-looking decimals that differ in
// the last ulp get distinct keys: the cache never conflates solves the
// solver itself would distinguish. Callers pass the normalized sstep (the
// serve layer's default-applied value, 0 for non-sstep methods) so the
// same logical solve always hashes identically.
func HashSolve(grid string, method core.Method, precond core.PrecondType, precision core.Precision, sstep int, tol float64, b, x0 []float64) CacheKey {
	h := sha256.New()
	var scratch [8]byte

	writeStr := func(s string) {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(s)))
		h.Write(scratch[:4])
		h.Write([]byte(s))
	}
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeVec := func(v []float64) {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v)))
		h.Write(scratch[:4])
		for _, f := range v {
			writeU64(math.Float64bits(f))
		}
	}

	writeStr("popfleet/v2") // domain separator, bumped on any layout change
	writeStr(grid)
	writeU64(uint64(method))
	writeU64(uint64(precond))
	writeU64(uint64(precision))
	writeU64(uint64(sstep))
	writeU64(math.Float64bits(tol))
	writeVec(b)
	writeVec(x0) // nil and empty both hash as length 0 = zero guess

	var key CacheKey
	h.Sum(key[:0])
	return key
}
