package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ReductionWidth reports AllReduce/AllReduceOverlap payloads whose width
// derives from rank-local state.
//
// The fused reductions the paper's solvers depend on (ChronGear's single
// 2-wide reduction, the s-step solver's (2s+1)-wide Gram payload) are
// element-wise sums across ranks: every rank must pack exactly the same
// number of values, in the same order, or the reduction either deadlocks
// or silently folds misaligned columns together — the Gram-payload class
// of lockstep divergence. Widths must therefore be rank-invariant
// expressions: constants (payload[:2]), caller-shared parameters, or
// closed forms of shared options (make([]float64, 2*s+1)). A width
// computed from the rank's own state (len(r.Blocks), r.ID arithmetic) is
// diagnosed at the expression that derives it.
//
// The analyzer reuses the rank-local taint machinery of
// CollectiveLockstep: for each collective payload argument it chases the
// width-determining expressions — slice bounds, make lengths — through
// local assignments, and reports any that mention tainted values. Unknown
// producers (results of calls, parameters) are accepted conservatively.
var ReductionWidth = &analysis.Analyzer{
	Name: "reductionwidth",
	Doc: "report AllReduce payload widths derived from rank-local state;" +
		" reduction widths must be rank-invariant (constants or s-derived closed forms)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runReductionWidth,
}

// reduceWidthMethods are the element-wise reductions whose payload width
// must agree across ranks. Halo exchanges are excluded: their shapes are
// per-rank by construction (each rank sends its own block boundary).
var reduceWidthMethods = map[string]bool{
	"AllReduce":        true,
	"AllReduceOverlap": true,
}

func runReductionWidth(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == commRankPath || !libraryScope(pass) {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		tc := newTaintCtx(pass.TypesInfo, nil)
		tc.solve(fd.Body)
		ast.Inspect(fd.Body, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := rankMethodName(pass.TypesInfo, call)
			if !reduceWidthMethods[name] || len(call.Args) == 0 {
				return true
			}
			checkWidth(pass, ig, tc, fd, call.Args[0], name, make(map[*types.Var]bool))
			return true
		})
	})
	return nil, nil
}

// checkWidth validates the width of one reduction payload expression,
// chasing local variables to their producing expressions. seen breaks
// assignment cycles.
func checkWidth(pass *analysis.Pass, ig *ignorer, tc *taintCtx, fd *ast.FuncDecl,
	expr ast.Expr, coll string, seen map[*types.Var]bool) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SliceExpr:
		for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
			if bound != nil && tc.tainted(bound) {
				reportWidth(ig, bound, coll)
			}
		}
	case *ast.CompositeLit:
		// Literal payloads have a fixed width by construction.
	case *ast.CallExpr:
		if builtinName(pass.TypesInfo, x) == "make" && len(x.Args) >= 2 {
			if tc.tainted(x.Args[1]) {
				reportWidth(ig, x.Args[1], coll)
			}
		}
		// Non-make producers (helper results) are accepted conservatively.
	case *ast.Ident:
		v, ok := tc.objOf(x).(*types.Var)
		if !ok || seen[v] {
			return
		}
		seen[v] = true
		for _, producer := range producers(pass.TypesInfo, fd.Body, v) {
			checkWidth(pass, ig, tc, fd, producer, coll, seen)
		}
	}
}

// producers collects the right-hand sides assigned to v anywhere in body
// (declarations and reassignments), so a payload variable's width is
// checked at every site that shapes it.
func producers(info *types.Info, body ast.Node, v *types.Var) []ast.Expr {
	var out []ast.Expr
	sameVar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		return obj == v
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true // multi-value producer: accepted conservatively
			}
			for i, l := range x.Lhs {
				if sameVar(l) {
					out = append(out, x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) != len(x.Values) {
				return true
			}
			for i, name := range x.Names {
				if sameVar(name) {
					out = append(out, x.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// reportWidth emits the rank-variant-width diagnostic at the offending
// width expression.
func reportWidth(ig *ignorer, width ast.Expr, coll string) {
	ig.reportf(width.Pos(),
		"reduction payload width of %s derives from rank-local %q; collective payload widths must be rank-invariant (a constant or an s-derived closed form) so every rank packs the same number of values",
		coll, types.ExprString(width))
}
