// Package comm is the communication substrate that stands in for MPI: a
// virtual-rank runtime executing SPMD rank programs as goroutines, with
// channel-based halo exchange between decomposition blocks and deterministic
// binomial-tree global reductions.
//
// Two properties matter for the reproduction:
//
//   - Numerics are bitwise deterministic. Global sums are combined in a
//     fixed binomial-tree association independent of goroutine scheduling,
//     so a solve at p ranks is reproducible run to run (and the reduction
//     pattern matches what the paper's MPI_Allreduce performs).
//
//   - Every rank carries a *virtual clock* advanced by a pluggable
//     CostModel (flop time θ, point-to-point latency α and inverse
//     bandwidth β, tree-reduction cost with optional contention noise).
//     The real algorithms run and real event counts are priced, which is
//     how this repo regenerates the paper's Yellowstone/Edison scaling
//     figures on a single machine (see DESIGN.md §2).
//
// Reductions synchronize virtual clocks exactly like MPI_Allreduce
// synchronizes real ones: the reduced payload carries the maximum entry
// clock, and every rank leaves the reduction at max + tree cost. Halo
// exchanges advance the receiver to max(own, sender) plus per-message
// latency/bandwidth charges.
package comm

import (
	"fmt"
	"sync"

	"repro/internal/decomp"
	"repro/internal/faults"
	"repro/internal/obs"
)

// CostModel prices virtual time. Implementations live in perfmodel; the
// zero-cost FreeModel below is used when only numerics matter.
type CostModel interface {
	// FlopTime returns the time for rank to execute n floating-point
	// operations. seq is the rank's compute-phase sequence number; models
	// use (rank, seq) to draw deterministic OS-noise jitter, whose maximum
	// over ranks is what inflates reduction waits at scale (paper §5.2).
	FlopTime(n int64, rank int, seq int64) float64
	// P2PTime returns the time to deliver one point-to-point message of
	// the given payload size (α + β·bytes).
	P2PTime(bytes int64) float64
	// ReduceTime returns the tree cost of one p-rank allreduce (excluding
	// the wait for the slowest rank, which the runtime accounts directly);
	// seq is the global reduction sequence number, used to draw
	// deterministic network-contention noise.
	ReduceTime(p int, seq int64) float64
}

// FreeModel is a CostModel under which everything is instantaneous.
type FreeModel struct{}

// FlopTime implements CostModel: compute is free.
func (FreeModel) FlopTime(int64, int, int64) float64 { return 0 }

// P2PTime implements CostModel: messages are free.
func (FreeModel) P2PTime(int64) float64 { return 0 }

// ReduceTime implements CostModel: reductions are free.
func (FreeModel) ReduceTime(int, int64) float64 { return 0 }

// Counters accumulates per-rank event counts and virtual time per component,
// mirroring the POP timers the paper reports (computation, boundary
// updating, global reduction — §2.2).
type Counters struct {
	// Flops counts floating-point operations charged to the rank.
	Flops int64
	// HaloMsgs counts point-to-point halo messages sent.
	HaloMsgs int64
	// HaloBytes counts total halo payload bytes sent.
	HaloBytes int64
	// Reductions counts global reductions the rank took part in.
	Reductions int64

	TComp   float64 // virtual seconds in computation
	THalo   float64 // virtual seconds in boundary updates (incl. waits)
	TReduce float64 // virtual seconds in global reductions (incl. waits)
}

// Clock returns the rank's total virtual time.
func (c *Counters) Clock() float64 { return c.TComp + c.THalo + c.TReduce }

// Add accumulates other into c (used to aggregate ranks or phases).
func (c *Counters) Add(o Counters) {
	c.Flops += o.Flops
	c.HaloMsgs += o.HaloMsgs
	c.HaloBytes += o.HaloBytes
	c.Reductions += o.Reductions
	c.TComp += o.TComp
	c.THalo += o.THalo
	c.TReduce += o.TReduce
}

// World is a communicator over the ocean blocks of a decomposition.
type World struct {
	// D is the block decomposition the ranks operate on.
	D *decomp.Decomposition
	// Cost prices compute, messages and reductions in virtual time.
	Cost CostModel
	// NRank is the number of simulated ranks.
	NRank int

	// Tracer, when non-nil, receives per-phase span events (compute, halo
	// exchange, global reduction) with virtual-clock timestamps from every
	// rank. Nil (the default) disables tracing: each instrumentation site
	// then costs a single nil check and allocates nothing.
	Tracer *obs.Tracer

	// Faults, when non-nil and its plan is active, is consulted by the
	// reduction and halo-exchange paths to inject deterministic faults
	// (straggler delays, dropped/corrupted halo strips, failed reductions).
	// Nil or an inactive plan leaves every communication path bitwise
	// identical to a world without injection: the hooks reduce to one
	// pointer/branch check per phase.
	Faults *faults.Injector

	// traceID is the request-scoped trace ID stamped onto every rank trace
	// at Run entry (see SetTraceID).
	traceID uint64

	// faultEpoch counts Run invocations on this world. Each run salts its
	// fault-draw sequence numbers with the epoch (see Run), so successive
	// solves on one session draw disjoint slices of the injector's schedule
	// instead of replaying the first solve's verdicts forever. Cost-model
	// draw keys are deliberately NOT salted: with the injector disabled,
	// every run of a program remains bitwise identical to the previous one.
	faultEpoch int64

	// threads is the worker-shard knob (see SetThreads; 0 = GOMAXPROCS) and
	// sched the cached shard scheduler for the current effective count.
	threads int
	sched   *sched

	reduceCh []chan []float64 // per-rank outbox for the reduction up-phase
	bcastCh  []chan []float64 // per-rank inbox for the broadcast down-phase

	// Steady-state workspaces, sized once from the decomposition so the
	// per-iteration communication paths allocate nothing (see halo.go and
	// reduce.go for the ownership protocols):
	//
	//   plans[rank][phase] is the rank's precomputed halo-exchange plan for
	//   the E/W (0) and N/S (1) phases — send, local-copy, and receive edge
	//   lists with their channels and buffer pools, replacing the per-call
	//   neighbour search and per-message allocations.
	//
	//   blockPos[blockID] is the block's index within its owning rank's
	//   Blocks slice (−1 for unowned), replacing the linear blockIndex scan.
	//
	//   reducePart[rank] is the rank's reduction accumulator, reused across
	//   AllReduce calls. reduceRoot is the root's pair of broadcast buffers,
	//   alternated by call parity so the slice every rank returned from
	//   reduction k stays untouched through reduction k+1 (see AllReduce).
	//   reduceParent/reduceKids[rank] are the rank's neighbours in the fixed
	//   binomial reduction tree (parent −1 at the root; children in
	//   low-step-first fold order), computed once instead of per call.
	//
	//   plans32 is the float32 twin of plans (mixed-precision inner solves
	//   exchange float32 fields over their own channels and pools — see
	//   halo32.go).
	plans        [][2]phasePlan
	plans32      [][2]phasePlan32
	blockPos     []int
	reducePart   [][]float64
	reduceRoot   [2][]float64
	reduceParent []int
	reduceKids   [][]int
}

type haloKey struct {
	dstBlock int
	side     int // side of the receiving block the data lands on
}

type haloMsg struct {
	data  []float64
	clock float64
}

// grow returns (*buf)[:n], reallocating only when the capacity is short —
// the steady-state path hits the reuse branch and allocates nothing.
// Allocations are padded to at least one cache line (8 float64s): these
// buffers persist per rank and are hammered concurrently, and two sub-line
// buffers of different ranks sharing a line would ping-pong it between
// cores on every reduction.
//
//pop:hotpath
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		c := n
		if c < 8 {
			c = 8
		}
		*buf = make([]float64, c)
	}
	return (*buf)[:n]
}

// Sides of a block, from the receiver's point of view.
const (
	SideE = iota
	SideW
	SideN
	SideS
)

// NewWorld builds a communicator for a decomposition whose blocks have
// already been assigned to ranks (Assign or AssignOnePerRank).
func NewWorld(d *decomp.Decomposition, cost CostModel) (*World, error) {
	if d.NRanks == 0 {
		return nil, fmt.Errorf("comm: decomposition has no rank assignment")
	}
	if cost == nil {
		cost = FreeModel{}
	}
	w := &World{D: d, Cost: cost, NRank: d.NRanks}
	w.reduceCh = make([]chan []float64, w.NRank)
	w.bcastCh = make([]chan []float64, w.NRank)
	w.reducePart = make([][]float64, w.NRank)
	w.reduceParent = make([]int, w.NRank)
	w.reduceKids = make([][]int, w.NRank)
	for id := 0; id < w.NRank; id++ {
		w.reduceParent[id] = -1
		for s := 1; s < w.NRank; s <<= 1 {
			if id&s != 0 {
				w.reduceParent[id] = id - s
				break
			}
			if id+s < w.NRank {
				w.reduceKids[id] = append(w.reduceKids[id], id+s)
			}
		}
	}
	for r := range w.reduceCh {
		w.reduceCh[r] = make(chan []float64, 1)
		w.bcastCh[r] = make(chan []float64, 1)
	}
	w.blockPos = make([]int, len(d.Blocks))
	for i := range w.blockPos {
		w.blockPos[i] = -1
	}
	for _, ids := range d.ByRank {
		for pos, id := range ids {
			w.blockPos[id] = pos
		}
	}
	w.buildPlans()
	w.buildPlans32()
	return w, nil
}

// sideOffsets maps a receiving side to the block-grid offset of the sender.
var sideOffsets = [4][2]int{
	SideE: {1, 0},
	SideW: {-1, 0},
	SideN: {0, 1},
	SideS: {0, -1},
}

// Rank is the per-rank handle passed to SPMD programs.
type Rank struct {
	// ID is the rank's index in [0, World.NRank).
	ID int
	// World is the communicator this rank belongs to.
	World *World
	// Blocks lists the rank's owned blocks, in ByRank order.
	Blocks []*decomp.Block

	ctr       Counters
	clock     float64
	reduceSeq int64
	flopSeq   int64
	haloSeq   int64 // exchange-phase sequence number (fault-draw site key)
	// faultBase is the run's fault-draw salt (World.faultEpoch << 32 at Run
	// entry): added to the per-site sequence numbers for injector draws
	// only, never for cost-model draws.
	faultBase int64
	trace     *obs.RankTrace // nil when the World has no tracer

	// shard is the worker shard this rank executes on; token is the shard's
	// run token (nil when the run is unsharded — see sched.go). A rank holds
	// its token while executing and yields it around blocking receives.
	shard int
	token chan struct{}

	// reduceFailed is set by AllReduce when the fault injector failed the
	// last reduction; resilient callers poll it via ReduceFailed and retry.
	reduceFailed bool

	// multi is Exchange's scratch for wrapping a single field set as a
	// one-level ExchangeMulti call without allocating the wrapper slice.
	multi [1][][]float64
}

// Counters returns a snapshot of the rank's accumulated counters.
func (r *Rank) Counters() Counters { return r.ctr }

// Trace returns the rank's trace buffer, nil when tracing is disabled.
// Callers emitting solver-level events must nil-check (the hot-path
// contract: disabled tracing is one branch, zero allocations).
func (r *Rank) Trace() *obs.RankTrace { return r.trace }

// ResetCounters zeroes the counters and virtual clock — used between
// experiment phases (e.g. to time Lanczos setup apart from solves).
//
// It deliberately does NOT reset flopSeq or reduceSeq: cost models draw
// deterministic OS-noise and network-contention jitter from (rank, seq),
// and those noise streams must keep advancing across phases — resetting
// them would replay identical jitter in every phase, correlating the
// "random" noise between setup and solve and biasing the straggler
// statistics the paper's §5.2 analysis depends on.
func (r *Rank) ResetCounters() {
	r.ctr = Counters{}
	r.clock = 0
}

// Clock returns the rank's current virtual time.
func (r *Rank) Clock() float64 { return r.clock }

// AddFlops charges n floating-point operations of computation.
func (r *Rank) AddFlops(n int64) {
	r.ctr.Flops += n
	dt := r.World.Cost.FlopTime(n, r.ID, r.flopSeq)
	r.flopSeq++
	r.ctr.TComp += dt
	t0 := r.clock
	r.clock += dt
	if r.trace != nil {
		r.trace.Add(obs.Event{Name: obs.EvCompute, T0: t0, T1: r.clock,
			Value: float64(n), Iter: -1, Straggler: -1})
	}
}

// ReduceSeq returns the rank's fault-draw key for the current collective:
// the run's epoch salt plus how many reductions this rank has entered. The
// salt makes the key distinct across solves on the same World, so
// per-check fault decisions (e.g. rank crashes) draw fresh verdicts every
// solve instead of replaying the first solve's schedule.
func (r *Rank) ReduceSeq() int64 { return r.faultBase + r.reduceSeq }

// ReduceFailed reports whether the injector failed the rank's most recent
// AllReduce. The verdict is identical on every rank of the collective (it is
// keyed on the reduction's sequence number alone), so resilient callers can
// branch on it without an extra agreement round.
func (r *Rank) ReduceFailed() bool { return r.reduceFailed }

// AddDelay advances the rank's virtual clock by dt seconds, charged to the
// reduction phase — the backoff a resilient solver pays between reduction
// retries. No-op for dt ≤ 0.
func (r *Rank) AddDelay(dt float64) {
	if dt <= 0 {
		return
	}
	r.ctr.TReduce += dt
	r.clock += dt
}

// Stats is the aggregate result of one World.Run.
type Stats struct {
	MaxClock float64    // completion time: slowest rank's virtual clock
	Sum      Counters   // counters summed over ranks
	PerRank  []Counters // per-rank snapshots
}

// MeanCounters returns the per-rank average of the summed counters. An
// empty Stats (no per-rank snapshots) yields the zero value rather than
// NaN times.
func (s *Stats) MeanCounters() Counters {
	n := float64(len(s.PerRank))
	if n == 0 {
		return Counters{}
	}
	c := s.Sum
	c.TComp /= n
	c.THalo /= n
	c.TReduce /= n
	return c
}

// PhaseStat summarizes one phase's virtual time across ranks.
type PhaseStat struct {
	// Min, Mean and Max are the extreme and average per-rank virtual
	// times for the phase.
	Min, Mean, Max float64
}

// Breakdown returns per-rank min/mean/max virtual time for the three POP
// timer phases the paper reports (§2.2): computation, boundary updating,
// and global reduction. An empty Stats yields zeros.
func (s *Stats) Breakdown() (comp, halo, reduce PhaseStat) {
	if len(s.PerRank) == 0 {
		return
	}
	stat := func(get func(*Counters) float64) PhaseStat {
		ps := PhaseStat{Min: get(&s.PerRank[0]), Max: get(&s.PerRank[0])}
		var sum float64
		for i := range s.PerRank {
			v := get(&s.PerRank[i])
			sum += v
			if v < ps.Min {
				ps.Min = v
			}
			if v > ps.Max {
				ps.Max = v
			}
		}
		ps.Mean = sum / float64(len(s.PerRank))
		return ps
	}
	comp = stat(func(c *Counters) float64 { return c.TComp })
	halo = stat(func(c *Counters) float64 { return c.THalo })
	reduce = stat(func(c *Counters) float64 { return c.TReduce })
	return
}

// SetTraceID sets the request-scoped trace ID for subsequent Runs: each run
// stamps it onto every rank's trace buffer before the run's first event, so
// all rank-level spans of the run carry the ID of the serve request the run
// is working for (0 — the default — marks runs not tied to a request). The
// caller owning the world sets it between solves; it must not be called
// while a Run is in flight.
func (w *World) SetTraceID(id uint64) { w.traceID = id }

// TraceID returns the world's current request-scoped trace ID.
func (w *World) TraceID() uint64 { return w.traceID }

// Run executes program on every rank concurrently and returns aggregated
// statistics. Programs must make collective calls (AllReduce, Exchange,
// Barrier) in the same order on every rank, exactly as MPI requires.
//
// Hardware mapping: when the effective thread count (SetThreads, default
// GOMAXPROCS) is below the rank count, ranks are sharded and at most one
// rank per shard executes at a time (see sched.go); otherwise every rank
// gets an unrestricted goroutine as before. Solutions and virtual clocks
// are bitwise identical either way.
func (w *World) Run(program func(*Rank)) Stats {
	// Fault-draw salt for this run (see World.faultEpoch). The shift leaves
	// 2³² per-run sequence numbers before epochs could collide — far beyond
	// any solve's site count.
	base := w.faultEpoch << 32
	w.faultEpoch++
	sc := w.scheduler(w.EffectiveThreads())
	ranks := make([]*Rank, w.NRank)
	for rid := 0; rid < w.NRank; rid++ {
		blocks := make([]*decomp.Block, len(w.D.ByRank[rid]))
		for i, bid := range w.D.ByRank[rid] {
			blocks[i] = &w.D.Blocks[bid]
		}
		ranks[rid] = &Rank{ID: rid, World: w, Blocks: blocks, faultBase: base,
			shard: rid}
		if sc != nil {
			ranks[rid].shard = sc.shardOf[rid]
			ranks[rid].token = sc.tokens[ranks[rid].shard]
		}
		if w.Tracer.Enabled() {
			ranks[rid].trace = w.Tracer.Rank(rid)
			ranks[rid].trace.SetTraceID(w.traceID)
			ranks[rid].trace.Add(obs.Event{Name: obs.EvRunBegin, Point: true,
				Value: float64(w.NRank), Aux: float64(ranks[rid].shard),
				Iter: -1, Straggler: -1})
		}
	}
	if w.NRank == 1 {
		program(ranks[0])
	} else {
		var wg sync.WaitGroup
		wg.Add(w.NRank)
		for _, rk := range ranks {
			go func(rk *Rank) {
				defer wg.Done()
				if rk.token != nil {
					<-rk.token
					program(rk)
					rk.token <- struct{}{}
					return
				}
				program(rk)
			}(rk)
		}
		wg.Wait()
	}
	st := Stats{PerRank: make([]Counters, w.NRank)}
	for rid, rk := range ranks {
		st.PerRank[rid] = rk.ctr
		st.Sum.Add(rk.ctr)
		if rk.clock > st.MaxClock {
			st.MaxClock = rk.clock
		}
	}
	return st
}
