package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
)

// tracedService builds a traced service on the test grid with a priced
// machine model, so solves carry nonzero virtual compute/halo/reduce splits.
func tracedService(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.TraceCapacity == 0 {
		opts.TraceCapacity = 1 << 14
	}
	return chaosService(t, opts.Injector, opts)
}

// TestTracedRequestAttribution is the tracing acceptance test: one traced
// request yields a correlated span tree across every rank, and its
// critical-path attribution (admit + queue + batch-wait + compute + halo +
// reduce + slack) sums to within 5% of the latency the caller measured.
func TestTracedRequestAttribution(t *testing.T) {
	svc := tracedService(t, Options{
		Cores:       4,
		MachineName: "yellowstone",
		Solver:      core.Options{Tol: 1e-10},
	})
	b := chaosRHS(t)
	req := Request{Method: core.MethodPCSI, Precond: core.PrecondEVP, B: b}

	// Warm the pool so the measured requests pay steady-state latency only.
	if _, err := svc.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	// Several sequential requests with caller-chosen trace IDs; scheduling
	// noise can inflate any one sample, so the 5% criterion must hold for
	// the best (and typically every) request.
	const tries = 5
	type sample struct {
		id      uint64
		latency float64 // caller-measured seconds
	}
	samples := make([]sample, 0, tries)
	for i := 0; i < tries; i++ {
		id := obs.NewTraceID()
		ctx := obs.ContextWithTraceID(context.Background(), id)
		t0 := time.Now()
		resp, err := svc.Solve(ctx, req)
		lat := time.Since(t0).Seconds()
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if resp.TraceID != id {
			t.Fatalf("response trace ID %d, want the context's %d", resp.TraceID, id)
		}
		samples = append(samples, sample{id: id, latency: lat})
	}

	var buf bytes.Buffer
	if err := svc.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	pt, err := obs.ReadPerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	recOf := make(map[uint64]obs.RequestRecord, len(pt.Requests))
	for _, rec := range pt.Requests {
		recOf[rec.TraceID] = rec
	}
	best := math.Inf(1)
	for _, s := range samples {
		rec, ok := recOf[s.id]
		if !ok {
			t.Fatalf("trace %d has no request record in the export", s.id)
		}
		a := obs.AttributeRecord(rec)
		// Internal consistency: the phases decompose the record's own
		// wall-clock total exactly up to the response hand-off.
		if cov := a.Coverage(); cov <= 0 || cov > 1.0000001 {
			t.Errorf("trace %d: coverage %.4f outside (0, 1]", s.id, cov)
		}
		// Priced model: the solve must split beyond pure compute.
		if a.Halo <= 0 || a.Reduce <= 0 {
			t.Errorf("trace %d: priced model gave no halo/reduce attribution: %+v", s.id, a)
		}
		if dev := math.Abs(1 - a.Sum()/s.latency); dev < best {
			best = dev
		}
	}
	if best > 0.05 {
		t.Errorf("no request's attribution summed within 5%% of measured latency (best dev %.1f%%)",
			best*100)
	}

	// One request = one correlated span tree: rank-level spans stamped with
	// the trace ID must appear on every rank of the serving session.
	want := recOf[samples[0].id].Ranks
	if want < 2 {
		t.Fatalf("expected a multi-rank session, got %d ranks", want)
	}
	ranksSeen := map[int]bool{}
	for _, e := range pt.Events {
		if e.PID != obs.ServePID && uint64(e.Args["trace"]) == samples[0].id {
			ranksSeen[e.TID] = true
		}
	}
	if len(ranksSeen) != want {
		t.Errorf("trace %d spans cover %d ranks, want %d", samples[0].id, len(ranksSeen), want)
	}
	// And the serve-layer phase spans are on the serve track under the same ID.
	serveSpans := 0
	for _, e := range pt.Events {
		if e.PID == obs.ServePID && e.TID == int(samples[0].id) && e.Ph == "X" {
			serveSpans++
		}
	}
	if serveSpans == 0 {
		t.Errorf("trace %d has no serve-layer phase spans", samples[0].id)
	}
}

// TestTracingDoesNotPerturbSolutions: enabling tracing and the flight
// recorder must leave the solve bitwise identical — the golden-trace
// guarantee with instrumentation on.
func TestTracingDoesNotPerturbSolutions(t *testing.T) {
	b := chaosRHS(t)
	req := Request{Method: core.MethodPCSI, Precond: core.PrecondEVP, B: b}
	solve := func(opts Options) Response {
		svc := chaosService(t, nil, opts)
		resp, err := svc.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	plain := solve(Options{Solver: core.Options{Tol: 1e-10}})
	traced := solve(Options{Solver: core.Options{Tol: 1e-10},
		TraceCapacity: 1 << 12, FlightRing: 64, LatencySLO: time.Hour})

	if plain.Result.Iterations != traced.Result.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d",
			plain.Result.Iterations, traced.Result.Iterations)
	}
	if plain.Result.RelResidual != traced.Result.RelResidual {
		t.Fatalf("residuals differ bitwise: %x vs %x",
			math.Float64bits(plain.Result.RelResidual), math.Float64bits(traced.Result.RelResidual))
	}
	for i := range plain.X {
		if math.Float64bits(plain.X[i]) != math.Float64bits(traced.X[i]) {
			t.Fatalf("solution differs bitwise at %d: %x vs %x",
				i, math.Float64bits(plain.X[i]), math.Float64bits(traced.X[i]))
		}
	}
}

// readFlightDump loads and decodes one incident dump file.
func readFlightDump(t *testing.T, path string) obs.FlightDump {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("%s is not a valid flight dump: %v", path, err)
	}
	return dump
}

// globDumps returns the flight dump files for one trigger reason.
func globDumps(t *testing.T, dir, reason string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "flight-*-"+reason+".json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestFlightDumpOnFaultRecovery: a request that faults beyond the retry
// budget triggers a "fault_recovery" dump whose offending record and
// rank-level spans carry that request's trace ID.
func TestFlightDumpOnFaultRecovery(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(faults.Plan{Seed: 13, CrashProb: 0.95}, nil)
	svc := tracedService(t, Options{
		Injector:    inj,
		RetryBudget: 1,
		FlightDir:   dir,
		Solver:      core.Options{Tol: 1e-8, MaxIters: 300, MaxRecoveries: 2},
	})
	id := obs.NewTraceID()
	ctx := obs.ContextWithTraceID(context.Background(), id)
	_, err := svc.Solve(ctx,
		Request{Method: core.MethodChronGear, Precond: core.PrecondDiagonal, B: chaosRHS(t)})
	if !errors.Is(err, core.ErrFaulted) {
		t.Fatalf("crash storm returned %v, want ErrFaulted", err)
	}

	files := globDumps(t, dir, "fault_recovery")
	if len(files) == 0 {
		t.Fatal("no fault_recovery dump written")
	}
	dump := readFlightDump(t, files[0])
	if dump.Reason != "fault_recovery" {
		t.Errorf("reason: %q", dump.Reason)
	}
	if dump.Offending.TraceID != id {
		t.Errorf("offending trace: got %d, want %d", dump.Offending.TraceID, id)
	}
	if dump.Offending.Error == "" {
		t.Error("offending record carries no error")
	}
	if len(dump.Events) == 0 {
		t.Fatal("dump has no rank-level spans for the offending request")
	}
	for _, e := range dump.Events {
		if e.Trace != id {
			t.Fatalf("dump span from foreign trace %d (want %d): %+v", e.Trace, id, e)
		}
	}
	if len(dump.Recent) == 0 {
		t.Error("dump has no recent-request ring")
	}
	if dump.Metrics == "" {
		t.Error("dump has no metrics snapshot")
	}
	if svc.Flight().Dumps() == 0 {
		t.Error("flight trigger not counted")
	}
}

// TestFlightDumpOnCircuitOpen: the solve that transitions a key's breaker
// from closed to open triggers a "circuit_open" dump (exactly one — later
// shed requests never reach a session).
func TestFlightDumpOnCircuitOpen(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(faults.Plan{Seed: 13, CrashProb: 0.95}, nil)
	svc := tracedService(t, Options{
		Injector:         inj,
		RetryBudget:      -1,
		CircuitThreshold: 2,
		CircuitCooldown:  time.Hour,
		FlightDir:        dir,
		Solver:           core.Options{Tol: 1e-8, MaxIters: 300, MaxRecoveries: 2},
	})
	req := Request{Method: core.MethodChronGear, Precond: core.PrecondDiagonal, B: chaosRHS(t)}
	for i := 0; i < 2; i++ {
		if _, err := svc.Solve(context.Background(), req); !errors.Is(err, core.ErrFaulted) {
			t.Fatalf("solve %d: got %v, want ErrFaulted", i, err)
		}
	}
	if _, err := svc.Solve(context.Background(), req); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("circuit did not open: %v", err)
	}

	files := globDumps(t, dir, "circuit_open")
	if len(files) != 1 {
		t.Fatalf("circuit_open dumps: got %d, want exactly 1", len(files))
	}
	dump := readFlightDump(t, files[0])
	if dump.Offending.TraceID == 0 || dump.Offending.Error == "" {
		t.Errorf("circuit_open dump has empty offending record: %+v", dump.Offending)
	}
	// The faulted solves also each dumped under their own incident class.
	if got := len(globDumps(t, dir, "fault_recovery")); got != 2 {
		t.Errorf("fault_recovery dumps alongside: got %d, want 2", got)
	}
}

// TestFlightDumpOnSLOBreach: a latency objective of one nanosecond makes
// every request a breach; the dump carries the measured total.
func TestFlightDumpOnSLOBreach(t *testing.T) {
	dir := t.TempDir()
	svc := tracedService(t, Options{
		LatencySLO: time.Nanosecond,
		FlightDir:  dir,
		Solver:     core.Options{Tol: 1e-10},
	})
	if _, err := svc.Solve(context.Background(),
		Request{Method: core.MethodPCSI, Precond: core.PrecondEVP, B: chaosRHS(t)}); err != nil {
		t.Fatal(err)
	}
	files := globDumps(t, dir, "slo_breach")
	if len(files) == 0 {
		t.Fatal("no slo_breach dump written")
	}
	dump := readFlightDump(t, files[0])
	if dump.Offending.TotalNS <= 0 {
		t.Errorf("breach dump total %dns, want > 0", dump.Offending.TotalNS)
	}
	if !dump.Offending.Converged {
		t.Errorf("breach dump request did not converge: %+v", dump.Offending)
	}
}

// TestPerfettoExportDuringLoad races concurrent solves against repeated
// exports; slot.mu must keep the single-writer rank rings quiescent while
// they are read (checked under -race).
func TestPerfettoExportDuringLoad(t *testing.T) {
	svc := tracedService(t, Options{
		TraceCapacity: 1 << 10,
		Solver:        core.Options{Tol: 1e-8},
	})
	b := chaosRHS(t)
	req := Request{Method: core.MethodPCSI, Precond: core.PrecondEVP, B: b}
	if _, err := svc.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := svc.Solve(context.Background(), req); err != nil {
					t.Errorf("solve under export: %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := svc.WritePerfetto(io.Discard); err != nil {
				t.Errorf("export under load: %v", err)
			}
		}
	}()
	wg.Wait()
	// A final export must parse and contain every request record.
	var buf bytes.Buffer
	if err := svc.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	pt, err := obs.ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Requests) != 41 {
		t.Errorf("final export: got %d request records, want 41", len(pt.Requests))
	}
}

// TestQueueDepthMetrics: the current-depth gauge and the peak gauge are both
// exposed, and the peak's help string documents its no-reset semantics.
func TestQueueDepthMetrics(t *testing.T) {
	svc := chaosService(t, nil, Options{Solver: core.Options{Tol: 1e-8}})
	if _, err := svc.Solve(context.Background(),
		Request{Method: core.MethodPCSI, Precond: core.PrecondEVP, B: chaosRHS(t)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svc.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"serve_queue_depth ",
		"serve_queue_depth_peak ",
		"never resets",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestTraceDroppedExported: a tiny ring under sustained solves wraps, and
// export publishes the drop count both into obs_trace_dropped_total and the
// Perfetto file's otherData.
func TestTraceDroppedExported(t *testing.T) {
	svc := tracedService(t, Options{
		TraceCapacity: 8, // deliberately tiny: guaranteed wraparound
		Solver:        core.Options{Tol: 1e-8},
	})
	req := Request{Method: core.MethodPCSI, Precond: core.PrecondEVP, B: chaosRHS(t)}
	for i := 0; i < 3; i++ {
		if _, err := svc.Solve(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := svc.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	pt, err := obs.ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Dropped == 0 {
		t.Fatal("tiny ring reported no drops")
	}
	var sb bytes.Buffer
	if err := svc.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(sb.Bytes(), []byte("obs_trace_dropped_total")) {
		t.Errorf("exposition missing obs_trace_dropped_total:\n%s", sb.String())
	}
}
