// Package model implements the ocean substrate the solver experiments need:
// a wind-driven barotropic (vertically integrated) ocean with POP's implicit
// free surface, plus a multi-layer temperature tracer for the paper's §6
// climate-consistency experiments.
//
// This is the stated substitution for CESM1.2.0 POP (DESIGN.md §2): the
// barotropic mode is the real thing — every time step builds the elliptic
// right-hand side ψ(ηⁿ, uⁿ, forcing) and solves [−∇·H∇ + φ(τ)]η = ψ with a
// Session solver — while the baroclinic physics is reduced to what the
// verification experiments measure: nonlinear momentum advection (the
// chaos source that makes ensemble spread grow), Coriolis, wind-driven
// double gyres, and advected–diffused layer temperatures whose sensitivity
// to the solver tolerance is exactly what Figures 12 and 13 probe.
//
// Discretization notes: velocities live at the B-grid corner (U-) points,
// exactly as in POP, and the discrete gradient G (corner differences of the
// four surrounding T-cells) and divergence D (its negative adjoint under
// the HU·UAREA weights) are chosen so that the elliptic operator's
// stiffness is *identically* D∘(H·G). That makes the semi-implicit
// free-surface step an exact backward-Euler elimination —
//
//	u^{n+1} = u* − gτ·G η^{n+1}
//	[−D·H·G + 1/(gτ²)] η^{n+1} = ηⁿ/(gτ²) − D(H·u*)/τ⁻¹…  (rows × TAREA)
//
// — which is unconditionally stable and conserves volume to solver
// tolerance. (A collocated centred gradient/divergence pair looks simpler
// but is inconsistent with the corner stiffness; the mismatch pumps
// intermediate-wavenumber inertia–gravity modes and blows up within a few
// hundred steps — measured, not hypothetical.) Advection is first-order
// upwind and Coriolis is applied as an exact rotation.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/stencil"
)

// SolverName picks the barotropic solver for the model.
type SolverName string

const (
	SolverChronGear SolverName = "chrongear"
	SolverPCG       SolverName = "pcg"
	SolverPCSI      SolverName = "pcsi"
	SolverSStep     SolverName = "sstep"
)

// Config describes a model run.
type Config struct {
	Grid *grid.Grid
	Dt   float64 // time step (s); default 2400

	NZ int // temperature layers; default 5

	// Physics parameters. The defaults give an energetic multi-gyre
	// circulation that is weakly damped: on coarse test grids the
	// attractor is steady (barotropic chaos needs resolved boundary
	// currents), so trajectory differences decay only on the slow
	// dissipative timescale while solver-tolerance round-off is
	// re-injected every time step — which is exactly the contrast the §6
	// ensemble methodology measures.
	WindStress float64 // peak zonal wind stress (N/m²); default 0.25
	Drag       float64 // linear bottom drag (1/s); default 5e-7
	Viscosity  float64 // lateral viscosity (m²/s); default 1.5e3
	Kappa      float64 // tracer diffusivity (m²/s); default 3e2
	RestoreTau float64 // surface temperature restoring time (s); default 30 days
	// F0, when nonzero, replaces the spherical Coriolis profile with a
	// constant (f-plane). With β = 0 the multi-gyre jets lose their
	// planetary stabilization and go barotropically unstable at moderate
	// speeds — the cheap route to the chaotic variability the §6 ensemble
	// experiments require on laptop-size grids.
	F0 float64
	// StericCoef couples temperature back into the momentum equation as a
	// steric sea-surface height, −g∇(StericCoef·(T̄−T̄₀)) — the reduced
	// stand-in for baroclinic pressure gradients that makes temperature an
	// *active* tracer, so the O(1e−14) perturbations of §6's ensembles can
	// grow through the flow's chaos. Default 0.5 m/K (the depth-integrated
	// thermal expansion of a ~3000 m column is α·H ≈ 0.6–0.8 m/K).
	StericCoef float64

	// Solver configuration.
	Solver     SolverName
	SolverOpts core.Options
	BlockNx    int // decomposition block size; default: single block
	BlockNy    int
	Cost       comm.CostModel // nil = free (numerics only)
	// Threads caps concurrent rank execution on real cores
	// (comm.World.SetThreads): 0 = GOMAXPROCS. Trajectories are bitwise
	// identical across settings.
	Threads int

	// TempPerturb adds a random perturbation of this amplitude (K) to the
	// surface layer at initialization — the paper uses O(1e−14).
	TempPerturb float64
	PerturbSeed int64
}

func (c Config) withDefaults() Config {
	if c.Dt == 0 {
		c.Dt = 2400
	}
	if c.NZ == 0 {
		c.NZ = 5
	}
	if c.WindStress == 0 {
		c.WindStress = 0.25
	}
	if c.Drag == 0 {
		c.Drag = 5e-7
	}
	if c.Viscosity == 0 {
		c.Viscosity = 1.5e3
	}
	if c.Kappa == 0 {
		c.Kappa = 3e2
	}
	if c.RestoreTau == 0 {
		c.RestoreTau = 30 * 86400
	}
	if c.StericCoef == 0 {
		c.StericCoef = 0.5
	}
	if c.Solver == "" {
		c.Solver = SolverChronGear
	}
	return c
}

// Model is a running ocean simulation.
type Model struct {
	Cfg  Config
	G    *grid.Grid
	Op   *stencil.Operator
	Sess *core.Session

	// Prognostic state (global arrays; land/dry = 0). η and temperature
	// live at T-points; the velocities live at the B-grid corner points
	// (entry k is the corner NE of T-cell k, wet iff HU[k] > 0).
	Eta  []float64
	U, V []float64
	Temp [][]float64 // [layer][point]

	// Work arrays.
	uStar, vStar, psi, tmp, steric []float64
	stericRef                      []float64 // initial mean temperature

	// Per-row Coriolis and wind.
	fRow, windRow []float64

	// layerScale scales the barotropic velocity per layer for advection.
	layerScale []float64

	StepCount int
	// Iterations per solve (diagnostic history, grows one per step).
	IterHistory []int
	// TotalSolveStats accumulates solver communication stats.
	TotalSolveStats comm.Counters
}

// New builds a model, its operator, decomposition, communicator, and solver
// session.
func New(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	g := cfg.Grid
	if g == nil {
		return nil, fmt.Errorf("model: nil grid")
	}
	if cfg.BlockNx == 0 {
		cfg.BlockNx = g.Nx
	}
	if cfg.BlockNy == 0 {
		cfg.BlockNy = g.Ny
	}
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(cfg.Dt))
	d, err := decomp.New(g, cfg.BlockNx, cfg.BlockNy, decomp.DefaultHalo)
	if err != nil {
		return nil, err
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, cfg.Cost)
	if err != nil {
		return nil, err
	}
	w.SetThreads(cfg.Threads)
	sess, err := core.NewSession(g, op, d, w, cfg.SolverOpts)
	if err != nil {
		return nil, err
	}

	n := g.N()
	m := &Model{
		Cfg: cfg, G: g, Op: op, Sess: sess,
		Eta:   make([]float64, n),
		U:     make([]float64, n),
		V:     make([]float64, n),
		uStar: make([]float64, n), vStar: make([]float64, n),
		psi: make([]float64, n), tmp: make([]float64, n),
		steric: make([]float64, n), stericRef: make([]float64, n),
		fRow:    make([]float64, g.Ny),
		windRow: make([]float64, g.Ny),
	}
	const omega = 7.292e-5
	for j := 0; j < g.Ny; j++ {
		lat := g.TLat[g.Idx(0, j)] * math.Pi / 180
		if cfg.F0 != 0 {
			m.fRow[j] = cfg.F0
		} else {
			m.fRow[j] = 2 * omega * math.Sin(lat)
		}
		// Multi-gyre zonal wind: alternating bands as in classic
		// double-gyre setups, tapered at the poles.
		yHat := float64(j) / float64(g.Ny-1)
		m.windRow[j] = -cfg.WindStress * math.Cos(4*math.Pi*yHat) * math.Cos(lat)
	}
	m.Temp = make([][]float64, cfg.NZ)
	m.layerScale = make([]float64, cfg.NZ)
	for l := range m.Temp {
		m.Temp[l] = make([]float64, n)
		m.layerScale[l] = 1 / (1 + float64(l)) // velocity decays with depth
		for k := 0; k < n; k++ {
			if g.Mask[k] {
				m.Temp[l][k] = m.restingTemp(l, k)
			}
		}
	}
	for k := 0; k < n; k++ {
		if g.Mask[k] {
			m.stericRef[k] = m.meanTemp(k)
		}
	}
	if cfg.TempPerturb != 0 {
		m.PerturbTemperature(cfg.TempPerturb, cfg.PerturbSeed)
	}
	return m, nil
}

// meanTemp is the depth-mean temperature at point k.
func (m *Model) meanTemp(k int) float64 {
	var s float64
	for l := range m.Temp {
		s += m.Temp[l][k]
	}
	return s / float64(len(m.Temp))
}

// PerturbTemperature adds a uniform random perturbation of the given
// amplitude to the surface layer — the §6 ensemble-generation knob.
func (m *Model) PerturbTemperature(amp float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for k, ocean := range m.G.Mask {
		if ocean {
			m.Temp[0][k] += amp * (2*rng.Float64() - 1)
		}
	}
}

// Fork deep-copies the model state into a fresh model that may use a
// different solver configuration — how ensemble members and solver-
// comparison runs branch from one spun-up state.
func (m *Model) Fork(solver SolverName, opts core.Options) (*Model, error) {
	cfg := m.Cfg
	cfg.Solver = solver
	cfg.SolverOpts = opts
	cfg.TempPerturb = 0
	nm, err := New(cfg)
	if err != nil {
		return nil, err
	}
	copy(nm.Eta, m.Eta)
	copy(nm.U, m.U)
	copy(nm.V, m.V)
	for l := range m.Temp {
		copy(nm.Temp[l], m.Temp[l])
	}
	copy(nm.stericRef, m.stericRef)
	nm.StepCount = m.StepCount
	return nm, nil
}

// restingTemp is the initial/restoring temperature: warm equator, cold
// poles, cooling with depth.
func (m *Model) restingTemp(layer, k int) float64 {
	lat := m.G.TLat[k] * math.Pi / 180
	surf := 2 + 26*math.Cos(lat)*math.Cos(lat)
	return surf / (1 + 0.8*float64(layer))
}

// dx and dy return T-point spacings (from the corner metrics, adequate for
// the synthetic grids).
func (m *Model) dx(k int) float64 { return m.G.DXU[k] }
func (m *Model) dy(k int) float64 { return m.G.DYU[k] }

// Step advances the model one time step; the implicit free-surface solve
// runs on the configured solver.
func (m *Model) Step() error {
	g := m.G
	cfg := m.Cfg
	n := g.N()
	tau := cfg.Dt

	// 0. Steric height from the depth-mean temperature anomaly (the
	// temperature→momentum feedback).
	for k, ocean := range g.Mask {
		if ocean {
			m.steric[k] = cfg.StericCoef * (m.meanTemp(k) - m.stericRef[k])
		} else {
			m.steric[k] = 0
		}
	}

	// 1. Explicit velocity update at wet corners: u* (Coriolis by exact
	// rotation, upwind advection, viscosity, wind, steric pressure
	// gradient, implicit drag).
	gg := stencil.Gravity
	for j := 0; j < g.Ny; j++ {
		f := m.fRow[j]
		sinF, cosF := math.Sin(f*tau), math.Cos(f*tau)
		for i := 0; i < g.Nx; i++ {
			k := g.Idx(i, j)
			if g.HU[k] == 0 {
				m.uStar[k], m.vStar[k] = 0, 0
				continue
			}
			u, v := m.U[k], m.V[k]
			// Exact inertial rotation.
			ur := u*cosF + v*sinF
			vr := -u*sinF + v*cosF
			// Centred advection of momentum (the nonlinearity).
			au := m.advectCorner(m.U, k, i, j, u, v)
			av := m.advectCorner(m.V, k, i, j, u, v)
			// Lateral viscosity.
			lu := m.lapCorner(m.U, k, i, j)
			lv := m.lapCorner(m.V, k, i, j)
			// Wind stress over the local column.
			wind := m.windRow[j] / (1025 * g.HU[k])
			// Steric pressure gradient (explicit: T evolves slowly).
			sx, sy := m.gradCorner(m.steric, k)
			du := tau * (-au + cfg.Viscosity*lu + wind - gg*sx)
			dv := tau * (-av + cfg.Viscosity*lv - gg*sy)
			damp := 1 / (1 + tau*cfg.Drag)
			m.uStar[k] = (ur + du) * damp
			m.vStar[k] = (vr + dv) * damp
		}
	}

	// 2. Right-hand side ψ = TAREA·ηⁿ/(gτ²) + D(H·u*)/(gτ), with D the
	// TAREA-weighted divergence that is exactly adjoint to the corner
	// gradient — the elimination then reproduces the assembled operator
	// A = φ·TAREA + K identically.
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			k := g.Idx(i, j)
			if !g.Mask[k] {
				m.psi[k] = 0
				continue
			}
			m.psi[k] = g.TAREA[k]*m.Eta[k]/(gg*tau*tau) + m.divW(i, j)/(gg*tau)
		}
	}

	// 3. Implicit free-surface solve.
	var res core.Result
	var eta []float64
	var err error
	switch cfg.Solver {
	case SolverChronGear:
		res, eta, err = m.Sess.SolveChronGear(m.psi, m.Eta)
	case SolverPCG:
		res, eta, err = m.Sess.SolvePCG(m.psi, m.Eta)
	case SolverPCSI:
		res, eta, err = m.Sess.SolvePCSI(m.psi, m.Eta)
	case SolverSStep:
		res, eta, err = m.Sess.SolveSStep(m.psi, m.Eta)
	default:
		return fmt.Errorf("model: unknown solver %q", cfg.Solver)
	}
	if err != nil {
		return fmt.Errorf("model step %d: %w", m.StepCount, err)
	}
	if !res.Converged {
		return fmt.Errorf("model step %d: %s did not converge (%d iterations, rel res %g)",
			m.StepCount, res.Solver, res.Iterations, res.RelResidual)
	}
	copy(m.Eta, eta)
	m.IterHistory = append(m.IterHistory, res.Iterations)
	m.TotalSolveStats.Add(res.Stats.Sum)

	// 4. Velocity correction u^{n+1} = u* − gτ·Gη at wet corners.
	for k, hu := range g.HU {
		if hu == 0 {
			m.U[k], m.V[k] = 0, 0
			continue
		}
		gx, gy := m.gradCorner(m.Eta, k)
		m.U[k] = m.uStar[k] - gg*tau*gx
		m.V[k] = m.vStar[k] - gg*tau*gy
	}

	// 5. Temperature layers: upwind advection by the scaled barotropic
	// flow (averaged to T-points), diffusion, surface restoring, weak
	// vertical exchange.
	for l := 0; l < cfg.NZ; l++ {
		T := m.Temp[l]
		scale := m.layerScale[l]
		copy(m.tmp, T)
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				k := g.Idx(i, j)
				if !g.Mask[k] {
					continue
				}
				ut, vt := m.velocityAtT(i, j)
				u, v := ut*scale, vt*scale
				adv := m.upwind(m.tmp, k, i, j, u, v)
				dif := cfg.Kappa * m.lap(m.tmp, k, i, j)
				dT := tau * (-adv + dif)
				if l == 0 {
					dT += tau / cfg.RestoreTau * (m.restingTemp(0, k) - m.tmp[k])
				}
				if l+1 < cfg.NZ {
					dT += tau * 1e-7 * (m.Temp[l+1][k] - m.tmp[k])
				}
				if l > 0 {
					dT += tau * 1e-7 * (m.Temp[l-1][k] - m.tmp[k])
				}
				T[k] = m.tmp[k] + dT
			}
		}
	}

	m.StepCount++
	_ = n
	return nil
}

// Run advances nsteps steps.
func (m *Model) Run(nsteps int) error {
	for s := 0; s < nsteps; s++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// isWetCorner reports whether corner (i,j) carries velocity.
func (m *Model) isWetCorner(i, j int) bool {
	if i < 0 || i >= m.G.Nx || j < 0 || j >= m.G.Ny {
		return false
	}
	return m.G.HU[m.G.Idx(i, j)] != 0
}

// gradCorner is the B-grid gradient of a T-point field at wet corner k:
// corner differences of the four surrounding T-cells. It is the discrete ∇
// whose adjoint (under the HU·UAREA weights) reassembles the elliptic
// operator's stiffness.
func (m *Model) gradCorner(q []float64, k int) (gx, gy float64) {
	g := m.G
	nx := g.Nx
	gx = (q[k+1] + q[k+nx+1] - q[k] - q[k+nx]) / (2 * g.DXU[k])
	gy = (q[k+nx] + q[k+nx+1] - q[k] - q[k+1]) / (2 * g.DYU[k])
	return gx, gy
}

// divW is the TAREA-weighted discrete divergence −∇·(H u*)·TAREA at T-cell
// (i,j): the exact negative adjoint of gradCorner with the HU·UAREA
// weights, so volume is conserved identically and the implicit elimination
// matches the assembled operator.
func (m *Model) divW(i, j int) float64 {
	g := m.G
	nx := g.Nx
	var s float64
	// Corner (i,j): cell is its SW member → coefficients (−, −).
	if k := j*nx + i; i < g.Nx-1 && j < g.Ny-1 && g.HU[k] != 0 {
		w := g.HU[k] * g.UAREA[k]
		s += w * (-m.uStar[k]/(2*g.DXU[k]) - m.vStar[k]/(2*g.DYU[k]))
	}
	// Corner (i−1,j): cell is its SE member → (+, −).
	if i > 0 && j < g.Ny-1 {
		k := j*nx + i - 1
		if g.HU[k] != 0 {
			w := g.HU[k] * g.UAREA[k]
			s += w * (m.uStar[k]/(2*g.DXU[k]) - m.vStar[k]/(2*g.DYU[k]))
		}
	}
	// Corner (i,j−1): cell is its NW member → (−, +).
	if j > 0 && i < g.Nx-1 {
		k := (j-1)*nx + i
		if g.HU[k] != 0 {
			w := g.HU[k] * g.UAREA[k]
			s += w * (-m.uStar[k]/(2*g.DXU[k]) + m.vStar[k]/(2*g.DYU[k]))
		}
	}
	// Corner (i−1,j−1): cell is its NE member → (+, +).
	if i > 0 && j > 0 {
		k := (j-1)*nx + i - 1
		if g.HU[k] != 0 {
			w := g.HU[k] * g.UAREA[k]
			s += w * (m.uStar[k]/(2*g.DXU[k]) + m.vStar[k]/(2*g.DYU[k]))
		}
	}
	return s
}

// velocityAtT averages the wet surrounding corner velocities to T-point
// (i,j) for tracer advection.
func (m *Model) velocityAtT(i, j int) (u, v float64) {
	g := m.G
	nx := g.Nx
	n := 0
	for _, c := range [4][2]int{{i, j}, {i - 1, j}, {i, j - 1}, {i - 1, j - 1}} {
		if c[0] < 0 || c[1] < 0 {
			continue
		}
		k := c[1]*nx + c[0]
		if g.HU[k] != 0 {
			u += m.U[k]
			v += m.V[k]
			n++
		}
	}
	if n > 0 {
		u /= float64(n)
		v /= float64(n)
	}
	return u, v
}

// upwind is first-order upwind u·∂q/∂x + v·∂q/∂y at T-points with no-flux
// coasts (tracer advection).
func (m *Model) upwind(q []float64, k, i, j int, u, v float64) float64 {
	g := m.G
	var ax, ay float64
	if u > 0 {
		if g.IsOcean(i-1, j) {
			ax = u * (q[k] - q[k-1]) / m.dx(k)
		}
	} else {
		if g.IsOcean(i+1, j) {
			ax = u * (q[k+1] - q[k]) / m.dx(k)
		}
	}
	if v > 0 {
		if g.IsOcean(i, j-1) {
			ay = v * (q[k] - q[k-g.Nx]) / m.dy(k)
		}
	} else {
		if g.IsOcean(i, j+1) {
			ay = v * (q[k+g.Nx] - q[k]) / m.dy(k)
		}
	}
	return ax + ay
}

// advectCorner computes u·∂q/∂x + v·∂q/∂y on the corner grid for momentum:
// centred differences in the interior (first-order upwind is far too
// diffusive — it laminarizes the gyres and kills the chaos the ensemble
// methodology needs), falling back to upwind against coasts. Centred
// advection under forward Euler is stabilized by the explicit viscosity
// (stable for ν ≳ u²τ/2, amply satisfied by the defaults).
func (m *Model) advectCorner(q []float64, k, i, j int, u, v float64) float64 {
	g := m.G
	var ax, ay float64
	wE, wW := m.isWetCorner(i+1, j), m.isWetCorner(i-1, j)
	switch {
	case wE && wW:
		ax = u * (q[k+1] - q[k-1]) / (2 * m.dx(k))
	case u > 0 && wW:
		ax = u * (q[k] - q[k-1]) / m.dx(k)
	case u < 0 && wE:
		ax = u * (q[k+1] - q[k]) / m.dx(k)
	}
	wN, wS := m.isWetCorner(i, j+1), m.isWetCorner(i, j-1)
	switch {
	case wN && wS:
		ay = v * (q[k+g.Nx] - q[k-g.Nx]) / (2 * m.dy(k))
	case v > 0 && wS:
		ay = v * (q[k] - q[k-g.Nx]) / m.dy(k)
	case v < 0 && wN:
		ay = v * (q[k+g.Nx] - q[k]) / m.dy(k)
	}
	return ax + ay
}

// lap is the masked five-point Laplacian at T-points (tracer diffusion).
func (m *Model) lap(q []float64, k, i, j int) float64 {
	g := m.G
	dx2 := m.dx(k) * m.dx(k)
	dy2 := m.dy(k) * m.dy(k)
	var s float64
	if g.IsOcean(i+1, j) {
		s += (q[k+1] - q[k]) / dx2
	}
	if g.IsOcean(i-1, j) {
		s += (q[k-1] - q[k]) / dx2
	}
	if g.IsOcean(i, j+1) {
		s += (q[k+g.Nx] - q[k]) / dy2
	}
	if g.IsOcean(i, j-1) {
		s += (q[k-g.Nx] - q[k]) / dy2
	}
	return s
}

// lapCorner is the five-point Laplacian on the corner grid with no-slip at
// dry corners (momentum viscosity).
func (m *Model) lapCorner(q []float64, k, i, j int) float64 {
	g := m.G
	dx2 := m.dx(k) * m.dx(k)
	dy2 := m.dy(k) * m.dy(k)
	var s float64
	if m.isWetCorner(i+1, j) {
		s += (q[k+1] - q[k]) / dx2
	}
	if m.isWetCorner(i-1, j) {
		s += (q[k-1] - q[k]) / dx2
	}
	if m.isWetCorner(i, j+1) {
		s += (q[k+g.Nx] - q[k]) / dy2
	}
	if m.isWetCorner(i, j-1) {
		s += (q[k-g.Nx] - q[k]) / dy2
	}
	return s
}

// KineticEnergy returns ½Σ HU·(u²+v²)·UAREA over wet corners (J/ρ₀).
func (m *Model) KineticEnergy() float64 {
	var ke float64
	g := m.G
	for k, hu := range g.HU {
		if hu != 0 {
			ke += 0.5 * hu * (m.U[k]*m.U[k] + m.V[k]*m.V[k]) * g.UAREA[k]
		}
	}
	return ke
}

// MeanSSH returns the area-weighted mean sea-surface height — conserved up
// to solver tolerance by the flux-form continuity equation.
func (m *Model) MeanSSH() float64 {
	var s, a float64
	for k, ocean := range m.G.Mask {
		if ocean {
			s += m.Eta[k] * m.G.TAREA[k]
			a += m.G.TAREA[k]
		}
	}
	return s / a
}
