package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTridiagValidation(t *testing.T) {
	if _, err := NewSymTridiag(nil, nil); err == nil {
		t.Fatal("expected error for empty diagonal")
	}
	if _, err := NewSymTridiag([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched off-diagonal length")
	}
	if _, err := NewSymTridiag([]float64{1, 2}, []float64{0.5}); err != nil {
		t.Fatalf("valid tridiag rejected: %v", err)
	}
}

// Eigenvalues of the 1-D Laplacian tridiag(−1, 2, −1) of size n are
// 2−2·cos(kπ/(n+1)), k = 1..n.
func TestTridiagLaplacianEigenvalues(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 73} {
		alpha := make([]float64, n)
		beta := make([]float64, n-1)
		for i := range alpha {
			alpha[i] = 2
		}
		for i := range beta {
			beta[i] = -1
		}
		tri, err := NewSymTridiag(alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, n - 1} {
			want := 2 - 2*math.Cos(float64(k+1)*math.Pi/float64(n+1))
			got := tri.Eigenvalue(k, 1e-12)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d k=%d: eigenvalue %v, want %v", n, k, got, want)
			}
		}
		lo, hi := tri.ExtremeEigenvalues(1e-12)
		if lo > hi {
			t.Fatalf("n=%d: extreme eigenvalues out of order: %v > %v", n, lo, hi)
		}
	}
}

func TestTridiagDiagonalMatrix(t *testing.T) {
	alpha := []float64{3, -1, 7, 2}
	tri, err := NewSymTridiag(alpha, make([]float64, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Sorted eigenvalues are the sorted diagonal.
	want := []float64{-1, 2, 3, 7}
	for k, w := range want {
		if got := tri.Eigenvalue(k, 1e-12); math.Abs(got-w) > 1e-9 {
			t.Fatalf("k=%d: got %v want %v", k, got, w)
		}
	}
}

func TestGershgorinContainsEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 12
	alpha := make([]float64, n)
	beta := make([]float64, n-1)
	for i := range alpha {
		alpha[i] = rng.NormFloat64() * 3
	}
	for i := range beta {
		beta[i] = rng.NormFloat64()
	}
	tri, _ := NewSymTridiag(alpha, beta)
	lo, hi := tri.GershgorinBounds()
	small, large := tri.ExtremeEigenvalues(1e-10)
	if small < lo-1e-9 || large > hi+1e-9 {
		t.Fatalf("eigenvalues [%v,%v] escape Gershgorin interval [%v,%v]", small, large, lo, hi)
	}
}

// Property: eigenvalue ordering is monotone in k, and the Sturm count at
// (λ_k + λ_{k+1})/2 equals k+1.
func TestQuickTridiagOrdering(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		alpha := make([]float64, n)
		beta := make([]float64, n-1)
		for i := range alpha {
			alpha[i] = rng.NormFloat64() * 2
		}
		for i := range beta {
			beta[i] = rng.NormFloat64()
		}
		tri, err := NewSymTridiag(alpha, beta)
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for k := 0; k < n; k++ {
			ev := tri.Eigenvalue(k, 1e-11)
			if ev < prev-1e-8 {
				return false
			}
			prev = ev
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 got %v", Norm2(x))
	}
	if Norm2([]float64{0, 0}) != 0 {
		t.Fatal("Norm2 of zero vector should be 0")
	}
	if Dot(x, []float64{1, 2}) != 11 {
		t.Fatal("Dot wrong")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy got %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale got %v", y)
	}
	if MaxAbsDiff([]float64{1, 2}, []float64{1.5, 2}) != 0.5 {
		t.Fatal("MaxAbsDiff wrong")
	}
}

func TestNorm2NoOverflow(t *testing.T) {
	big := 1e308
	if got := Norm2([]float64{big, big}); math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed")
	}
}
