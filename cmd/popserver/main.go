// Command popserver exposes the concurrent solve service over HTTP.
//
//	popserver -addr :8080 -sessions 2 -queue 64
//
// Submit solves as JSON; the service pools warmed sessions per
// (grid, method, precond), batches compatible requests, and sheds load
// when the queue fills rather than blocking:
//
//	curl -s localhost:8080/solve -d '{"grid":"test","method":"pcsi","precond":"evp","rhs":"smooth"}'
//
// Endpoints:
//
//	POST /solve        JSON solve request (see solveRequest)
//	GET  /healthz      200 while serving, 503 while draining
//	GET  /metrics      Prometheus text exposition of the serve_* metrics
//	GET  /stats        JSON counter snapshot
//	GET  /debug/trace  Perfetto/Chrome trace-event JSON of every session's
//	                   rank-level spans plus the recent request records —
//	                   load in ui.perfetto.dev or feed to cmd/poptrace
//	GET  /debug/flight JSON flight-recorder snapshot (trigger count +
//	                   recent request records)
//
// Every request carries a trace ID (client-supplied via "trace_id" or
// assigned at admission) correlating its response with its rank-level spans
// in the trace export. The always-on flight recorder dumps incidents
// (faulted solves, circuit opening, -slo breaches) to -flightdir.
//
// SIGINT/SIGTERM triggers a graceful drain: /healthz flips to 503, the
// listener stops accepting work, queued solves finish, then the process
// exits — after writing a final Perfetto export to -traceout when set.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		cores     = flag.Int("cores", 0, "virtual ranks per session (0 = one per block)")
		threads   = flag.Int("threads", 0, "worker shards per session: max ranks running concurrently (0 = GOMAXPROCS)")
		tau       = flag.Float64("tau", 1920, "barotropic time step (s)")
		sessions  = flag.Int("sessions", 2, "max warmed sessions per (grid,method,precond) key")
		queue     = flag.Int("queue", 64, "per-key queue bound before shedding")
		batch     = flag.Int("batch", 8, "max requests coalesced per session checkout")
		wait      = flag.Duration("wait", 2*time.Millisecond, "batching window for stragglers")
		drainWait = flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
		circuit   = flag.Int("circuit", 0, "open a key's circuit breaker after this many consecutive faulted solves (0 = off)")
		cooldown  = flag.Duration("cooldown", time.Second, "how long an open circuit quarantines its key")
		tracecap  = flag.Int("tracecap", 4096, "per-rank trace ring capacity (0 = rank-level tracing off)")
		traceout  = flag.String("traceout", "", "write a Perfetto trace export here on shutdown")
		flightdir = flag.String("flightdir", "", "directory for flight-recorder incident dumps (\"\" = in-memory only)")
		flightlen = flag.Int("flightring", 0, "flight-recorder ring capacity (0 = default)")
		slo       = flag.Duration("slo", 0, "per-request latency SLO; breaches dump the flight recorder (0 = off)")
	)
	flag.Parse()
	obs.ServePprof(*pprofAddr)

	svc := pop.NewService(pop.ServiceOptions{
		Cores:             *cores,
		Threads:           *threads,
		Tau:               *tau,
		MaxSessionsPerKey: *sessions,
		MaxQueue:          *queue,
		MaxBatch:          *batch,
		MaxWait:           *wait,
		CircuitThreshold:  *circuit,
		CircuitCooldown:   *cooldown,
		TraceCapacity:     *tracecap,
		FlightRing:        *flightlen,
		FlightDir:         *flightdir,
		LatencySLO:        *slo,
	})
	h := &handler{svc: svc}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", h.solve)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /stats", h.stats)
	mux.HandleFunc("GET /debug/trace", h.trace)
	mux.HandleFunc("GET /debug/flight", h.flight)
	srv := &http.Server{Addr: *addr, Handler: mux}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("popserver: %v, draining (budget %s)", s, *drainWait)
		h.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("popserver: http shutdown: %v", err)
		}
		if err := svc.Close(ctx); err != nil {
			log.Printf("popserver: drain incomplete: %v", err)
		}
		if *traceout != "" {
			if err := writeTrace(svc, *traceout); err != nil {
				log.Printf("popserver: trace export: %v", err)
			} else {
				log.Printf("popserver: trace written to %s", *traceout)
			}
		}
		close(done)
	}()

	log.Printf("popserver: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("popserver: %v", err)
	}
	<-done
}

// solveRequest is the JSON body of POST /solve. Exactly one of B or RHS
// supplies the right-hand side: B is an explicit vector of grid length,
// RHS names a synthetic generator ("smooth") for load testing without
// shipping megabytes of JSON per request.
type solveRequest struct {
	Grid      string    `json:"grid"`
	Method    string    `json:"method"`
	Precond   string    `json:"precond"`
	B         []float64 `json:"b,omitempty"`
	RHS       string    `json:"rhs,omitempty"`
	X0        []float64 `json:"x0,omitempty"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
	ReturnX   bool      `json:"return_x,omitempty"`
	// TraceID lets the client supply its own request-scoped trace ID
	// (e.g. propagated from an upstream system); 0 assigns a fresh one.
	TraceID uint64 `json:"trace_id,omitempty"`
}

type solveResponse struct {
	Converged   bool      `json:"converged"`
	Iterations  int       `json:"iterations"`
	RelResidual float64   `json:"rel_residual"`
	Solver      string    `json:"solver"`
	ElapsedMS   float64   `json:"elapsed_ms"`
	TraceID     uint64    `json:"trace_id"`
	X           []float64 `json:"x,omitempty"`
}

type handler struct {
	svc      *pop.Service
	draining atomic.Bool

	rhsMu    sync.Mutex
	rhsCache map[string][]float64
}

func (h *handler) solve(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	method, err := pop.ParseMethod(req.Method)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	precond, err := pop.ParsePrecond(req.Precond)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	b := req.B
	if req.RHS != "" {
		if len(b) > 0 {
			httpError(w, http.StatusBadRequest, `"b" and "rhs" are mutually exclusive`)
			return
		}
		if b, err = h.syntheticRHS(req.Grid, req.RHS); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if req.TraceID != 0 {
		ctx = obs.ContextWithTraceID(ctx, req.TraceID)
	}
	start := time.Now()
	resp, err := h.svc.Solve(ctx, pop.ServeRequest{
		Grid: req.Grid, Method: method, Precond: precond, B: b, X0: req.X0,
	})
	if err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	out := solveResponse{
		Converged:   resp.Result.Converged,
		Iterations:  resp.Result.Iterations,
		RelResidual: resp.Result.RelResidual,
		Solver:      resp.Result.Solver,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1e3,
		TraceID:     resp.TraceID,
	}
	if req.ReturnX {
		out.X = resp.X
	}
	writeJSON(w, http.StatusOK, out)
}

// statusFor maps the service's typed errors onto HTTP statuses so load
// balancers and clients can react without parsing messages.
func statusFor(err error) int {
	switch {
	case errors.Is(err, pop.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, pop.ErrBadSpec):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, pop.ErrServiceClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, pop.ErrCircuitOpen):
		// Like draining: the key heals on its own once the cooldown passes,
		// so clients should back off and retry rather than treat it fatal.
		return http.StatusServiceUnavailable
	case errors.Is(err, pop.ErrNotConverged):
		return http.StatusUnprocessableEntity
	case errors.Is(err, pop.ErrFaulted):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// syntheticRHS builds (and caches) a smooth masked right-hand side for a
// grid so load generators can exercise /solve with tiny request bodies.
func (h *handler) syntheticRHS(gridName, kind string) ([]float64, error) {
	if kind != "smooth" {
		return nil, fmt.Errorf(`unknown rhs generator %q (want "smooth")`, kind)
	}
	if gridName == "" {
		gridName = pop.GridTest
	}
	h.rhsMu.Lock()
	defer h.rhsMu.Unlock()
	if b, ok := h.rhsCache[gridName]; ok {
		return b, nil
	}
	g, err := pop.NewGrid(gridName)
	if err != nil {
		return nil, err
	}
	b := make([]float64, g.N())
	for k, ocean := range g.Mask {
		if ocean {
			b[k] = math.Sin(g.TLon[k]/20) * math.Cos(g.TLat[k]/15)
		}
	}
	if h.rhsCache == nil {
		h.rhsCache = make(map[string][]float64)
	}
	h.rhsCache[gridName] = b
	return b, nil
}

func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	if h.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.svc.Registry().WritePrometheus(w); err != nil {
		log.Printf("popserver: metrics: %v", err)
	}
}

// statsResponse wraps the counter snapshot with the server's build and
// configuration identity, so a /stats scrape is self-describing.
type statsResponse struct {
	pop.ServiceStats
	GoVersion string   `json:"go_version"`
	Grids     []string `json:"grids"`
}

func (h *handler) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		ServiceStats: h.svc.Snapshot(),
		GoVersion:    runtime.Version(),
		Grids:        h.svc.Grids(),
	})
}

// trace serves the live Perfetto export: every session's rank-level spans
// plus the recent request records, loadable in ui.perfetto.dev.
func (h *handler) trace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := h.svc.WritePerfetto(w); err != nil {
		log.Printf("popserver: trace export: %v", err)
	}
}

// flightResponse is the GET /debug/flight body.
type flightResponse struct {
	Dumps  int64               `json:"dumps"`
	Recent []obs.RequestRecord `json:"recent"`
}

func (h *handler) flight(w http.ResponseWriter, _ *http.Request) {
	fr := h.svc.Flight()
	writeJSON(w, http.StatusOK, flightResponse{Dumps: fr.Dumps(), Recent: fr.Recent()})
}

// writeTrace writes the shutdown Perfetto export to path.
func writeTrace(svc *pop.Service, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := svc.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("popserver: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
