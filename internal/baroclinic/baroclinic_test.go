package baroclinic

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/perfmodel"
)

func testSetup(t *testing.T, cost comm.CostModel) (*decomp.Decomposition, *comm.World) {
	t.Helper()
	g := grid.Generate(grid.TestSpec())
	d, err := decomp.New(g, 16, 12, decomp.DefaultHalo)
	if err != nil {
		t.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, cost)
	if err != nil {
		t.Fatal(err)
	}
	return d, w
}

func TestStepChargesFullLevels(t *testing.T) {
	d, w := testSetup(t, nil)
	b, err := New(d, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Step()
	var interior int64
	for _, id := range d.OceanBlocks {
		blk := d.Blocks[id]
		interior += int64(blk.NxI * blk.NyI)
	}
	want := interior * DefaultNZ * DefaultLevelFlops
	if st.Sum.Flops != want {
		t.Fatalf("charged %d flops, want %d", st.Sum.Flops, want)
	}
}

func TestExchangesAggregated(t *testing.T) {
	d, w := testSetup(t, nil)
	b, err := New(d, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Step()
	// Messages: Exchanges rounds per step, each a single aggregated update
	// (no per-level messages). Compare against one plain exchange.
	probe := w.Run(func(r *comm.Rank) {
		fields := make([][]float64, len(r.Blocks))
		for i, blk := range r.Blocks {
			nxp, nyp := d.PaddedDims(blk)
			fields[i] = make([]float64, nxp*nyp)
		}
		r.Exchange(fields)
	})
	if st.Sum.HaloMsgs != int64(DefaultExchanges)*probe.Sum.HaloMsgs {
		t.Fatalf("messages %d, want %d×%d", st.Sum.HaloMsgs, DefaultExchanges, probe.Sum.HaloMsgs)
	}
	if st.Sum.HaloBytes != int64(DefaultExchanges)*10*probe.Sum.HaloBytes {
		t.Fatalf("bytes %d, want %d", st.Sum.HaloBytes, int64(DefaultExchanges)*10*probe.Sum.HaloBytes)
	}
}

func TestBaroclinicScalesNearPerfectly(t *testing.T) {
	// The virtual compute time per step must drop ~linearly with rank
	// count (the property that makes the barotropic solver the bottleneck
	// at scale — Figure 1's premise).
	g := grid.Generate(grid.TestSpec())
	timeFor := func(bx, by int) (float64, int) {
		d, err := decomp.New(g, bx, by, decomp.DefaultHalo)
		if err != nil {
			t.Fatal(err)
		}
		d.AssignOnePerRank()
		w, _ := comm.NewWorld(d, perfmodel.Ideal())
		b, _ := New(d, w, 0)
		st := b.Step()
		return st.MaxClock, d.NRanks
	}
	tBig, pBig := timeFor(32, 24)
	tSmall, pSmall := timeFor(8, 8)
	if pSmall <= pBig {
		t.Fatalf("expected more ranks with smaller blocks: %d vs %d", pSmall, pBig)
	}
	speedup := tBig / tSmall
	ideal := float64(pSmall) / float64(pBig)
	if speedup < 0.4*ideal {
		t.Fatalf("baroclinic speedup %.2f far from ideal %.2f", speedup, ideal)
	}
}

func TestUnassignedDecomposition(t *testing.T) {
	g := grid.Generate(grid.TestSpec())
	d, _ := decomp.New(g, 16, 12, decomp.DefaultHalo)
	if _, err := New(d, nil, 0); err == nil {
		t.Fatal("accepted unassigned decomposition")
	}
}
