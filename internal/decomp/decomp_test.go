package decomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/stencil"
)

func testGrid() *grid.Grid { return grid.Generate(grid.TestSpec()) } // 64×48

func TestNewValidation(t *testing.T) {
	g := testGrid()
	if _, err := New(g, 0, 8, 2); err == nil {
		t.Fatal("accepted zero block width")
	}
	if _, err := New(g, 8, 8, 0); err == nil {
		t.Fatal("accepted zero halo")
	}
	if _, err := New(g, 1, 8, 2); err == nil {
		t.Fatal("accepted block smaller than halo")
	}
}

func TestBlockCoverage(t *testing.T) {
	g := testGrid()
	d, err := New(g, 12, 10, 2) // deliberately not dividing evenly
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, g.N())
	for _, b := range d.Blocks {
		for j := b.Y0; j < b.Y0+b.NyI; j++ {
			for i := b.X0; i < b.X0+b.NxI; i++ {
				seen[g.Idx(i, j)]++
			}
		}
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("point %d covered %d times", k, c)
		}
	}
}

func TestLandElimination(t *testing.T) {
	g := testGrid()
	d, err := New(g, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range d.OceanBlocks {
		if d.Blocks[id].Land {
			t.Fatal("ocean list contains land block")
		}
	}
	// Every eliminated block must truly have no ocean point.
	for _, b := range d.Blocks {
		if b.Land {
			for j := b.Y0; j < b.Y0+b.NyI; j++ {
				for i := b.X0; i < b.X0+b.NxI; i++ {
					if g.Mask[g.Idx(i, j)] {
						t.Fatalf("eliminated block %d contains ocean point (%d,%d)", b.ID, i, j)
					}
				}
			}
		}
	}
	if lr := d.LandRatio(); lr <= 0 || lr >= 1 {
		t.Fatalf("land ratio %v not in (0,1) — geography should have some all-land blocks", lr)
	}
}

func TestAssignBalance(t *testing.T) {
	g := testGrid()
	d, _ := New(g, 8, 8, 2)
	nb := len(d.OceanBlocks)
	for _, nr := range []int{1, 2, 3, nb / 2, nb} {
		if nr < 1 {
			continue
		}
		if err := d.Assign(nr); err != nil {
			t.Fatal(err)
		}
		lo, hi := nb, 0
		total := 0
		for _, blocks := range d.ByRank {
			if len(blocks) < lo {
				lo = len(blocks)
			}
			if len(blocks) > hi {
				hi = len(blocks)
			}
			total += len(blocks)
		}
		if total != nb {
			t.Fatalf("nranks=%d: assigned %d blocks, want %d", nr, total, nb)
		}
		if hi-lo > 1 {
			t.Fatalf("nranks=%d: imbalance %d..%d", nr, lo, hi)
		}
	}
	if err := d.Assign(nb + 1); err == nil {
		t.Fatal("accepted more ranks than blocks")
	}
	if got := d.AssignOnePerRank(); got != nb {
		t.Fatalf("AssignOnePerRank=%d want %d", got, nb)
	}
}

func TestHilbertCurveProperties(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		seen := make(map[[2]int]bool)
		px, py := -1, -1
		for dd := 0; dd < n*n; dd++ {
			x, y := hilbertD2XY(n, dd)
			if x < 0 || x >= n || y < 0 || y >= n {
				t.Fatalf("n=%d d=%d: out of range (%d,%d)", n, dd, x, y)
			}
			if seen[[2]int{x, y}] {
				t.Fatalf("n=%d: cell (%d,%d) visited twice", n, x, y)
			}
			seen[[2]int{x, y}] = true
			if dd > 0 {
				if abs(x-px)+abs(y-py) != 1 {
					t.Fatalf("n=%d d=%d: non-adjacent step (%d,%d)→(%d,%d)", n, dd, px, py, x, y)
				}
			}
			px, py = x, y
		}
	}
}

func TestHilbertOrderCoversRectangle(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {8, 8}, {7, 2}} {
		order := hilbertOrder(dims[0], dims[1])
		if len(order) != dims[0]*dims[1] {
			t.Fatalf("dims %v: got %d cells", dims, len(order))
		}
		seen := make(map[int]bool)
		for _, id := range order {
			if id < 0 || id >= dims[0]*dims[1] || seen[id] {
				t.Fatalf("dims %v: bad or repeated id %d", dims, id)
			}
			seen[id] = true
		}
	}
}

func TestSFCLocality(t *testing.T) {
	// Consecutive ocean blocks along the curve should usually be adjacent in
	// the block grid — the locality property that makes contiguous rank runs
	// compact. Compare against row-major order, which has poor locality.
	g := testGrid()
	d, _ := New(g, 4, 4, 2)
	adjacency := func(ids []int) float64 {
		adj := 0
		for k := 1; k < len(ids); k++ {
			a, b := d.Blocks[ids[k-1]], d.Blocks[ids[k]]
			if abs(a.BI-b.BI)+abs(a.BJ-b.BJ) <= 2 {
				adj++
			}
		}
		return float64(adj) / float64(len(ids)-1)
	}
	rowMajor := make([]int, 0, len(d.OceanBlocks))
	for id := range d.Blocks {
		if !d.Blocks[id].Land {
			rowMajor = append(rowMajor, id)
		}
	}
	if adjacency(d.OceanBlocks) <= adjacency(rowMajor) {
		t.Fatalf("SFC adjacency %.2f not better than row-major %.2f",
			adjacency(d.OceanBlocks), adjacency(rowMajor))
	}
}

func TestNeighborID(t *testing.T) {
	g := testGrid()
	d, _ := New(g, 8, 8, 2)
	var b *Block
	for id := range d.Blocks {
		bb := &d.Blocks[id]
		if !bb.Land && bb.BI > 0 && bb.BI < d.MX-1 && bb.BJ > 0 && bb.BJ < d.MY-1 {
			b = bb
			break
		}
	}
	if b == nil {
		t.Skip("no interior ocean block in test grid")
	}
	if id := d.NeighborID(b, 0, 0); id != b.ID {
		t.Fatalf("self neighbor = %d", id)
	}
	edge := &d.Blocks[0]
	if id := d.NeighborID(edge, -1, 0); id != -1 {
		t.Fatal("expected out-of-grid neighbor to be -1")
	}
}

func TestChooseBlocking(t *testing.T) {
	g := testGrid()
	bx, by, cores, err := ChooseBlocking(g, 20, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bx*2 != by*3 {
		t.Fatalf("aspect ratio violated: %d×%d", bx, by)
	}
	if cores <= 0 {
		t.Fatalf("no cores: %d", cores)
	}
	if _, _, _, err := ChooseBlocking(g, 0, 3, 2); err == nil {
		t.Fatal("accepted target 0")
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	g := testGrid()
	d, _ := New(g, 12, 10, 2)
	rng := rand.New(rand.NewSource(2))
	global := make([]float64, g.N())
	for k := range global {
		global[k] = rng.NormFloat64()
	}
	out := make([]float64, g.N())
	for id := range d.Blocks {
		b := &d.Blocks[id]
		loc := d.Scatter(global, b)
		d.GatherInto(out, loc, b)
	}
	for k := range global {
		if out[k] != global[k] {
			t.Fatalf("round trip mismatch at %d", k)
		}
	}
}

func TestScatterFillsHalo(t *testing.T) {
	g := testGrid()
	d, _ := New(g, 12, 10, 2)
	global := make([]float64, g.N())
	for k := range global {
		global[k] = float64(k)
	}
	// Pick an interior block and verify halo values equal global neighbours.
	for id := range d.Blocks {
		b := &d.Blocks[id]
		if b.BI == 0 || b.BJ == 0 || b.BI == d.MX-1 || b.BJ == d.MY-1 {
			continue
		}
		loc := d.Scatter(global, b)
		// halo point (0,0) corresponds to global (X0-2, Y0-2)
		want := global[g.Idx(b.X0-2, b.Y0-2)]
		if loc[0] != want {
			t.Fatalf("halo fill wrong: %v want %v", loc[0], want)
		}
		return
	}
	t.Skip("no interior block")
}

func TestLocalOperatorMatchesGlobalApply(t *testing.T) {
	g := testGrid()
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(1200))
	d, _ := New(g, 16, 12, 2)
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, g.N())
	for k := range x {
		x[k] = rng.NormFloat64()
	}
	yGlobal := make([]float64, g.N())
	op.Apply(yGlobal, x)
	yFromBlocks := make([]float64, g.N())
	// Land blocks: global Apply gives y=x on land; replicate.
	copy(yFromBlocks, x)
	for id := range d.Blocks {
		b := &d.Blocks[id]
		loc := d.LocalOperator(op, b)
		xl := d.Scatter(x, b)
		yl := make([]float64, len(xl))
		loc.Apply(yl, xl)
		d.GatherInto(yFromBlocks, yl, b)
	}
	for k := range yGlobal {
		if math.Abs(yGlobal[k]-yFromBlocks[k]) > 1e-12*(math.Abs(yGlobal[k])+1) {
			t.Fatalf("blocked apply mismatch at %d: %v vs %v", k, yGlobal[k], yFromBlocks[k])
		}
	}
}

// Property: for random block sizes, decomposition covers the grid exactly
// and interior+halo stays within padded bounds.
func TestQuickDecompositionCoverage(t *testing.T) {
	g := testGrid()
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(31))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bx := 2 + rng.Intn(20)
		by := 2 + rng.Intn(20)
		d, err := New(g, bx, by, 2)
		if err != nil {
			return true // invalid sizes are allowed to error
		}
		count := 0
		for _, b := range d.Blocks {
			count += b.NxI * b.NyI
			nxp, nyp := d.PaddedDims(&b)
			if nxp != b.NxI+4 || nyp != b.NyI+4 {
				return false
			}
		}
		return count == g.N()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func TestMaskPrefixCounts(t *testing.T) {
	g := testGrid()
	p := newMaskPrefix(g)
	brute := func(x0, y0, x1, y1 int) int32 {
		var n int32
		for j := y0; j < y1; j++ {
			for i := x0; i < x1; i++ {
				if g.Mask[g.Idx(i, j)] {
					n++
				}
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		x0, y0 := rng.Intn(g.Nx), rng.Intn(g.Ny)
		x1 := x0 + rng.Intn(g.Nx-x0) + 1
		y1 := y0 + rng.Intn(g.Ny-y0) + 1
		if got, want := p.rectOcean(x0, y0, x1, y1), brute(x0, y0, x1, y1); got != want {
			t.Fatalf("rect [%d,%d)x[%d,%d): %d want %d", x0, x1, y0, y1, got, want)
		}
	}
}

func TestOceanBlocksMatchesDecomposition(t *testing.T) {
	g := testGrid()
	p := newMaskPrefix(g)
	for _, b := range [][2]int{{6, 4}, {12, 8}, {9, 6}} {
		d, err := New(g, b[0], b[1], 2)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := p.oceanBlocks(g, b[0], b[1]), len(d.OceanBlocks); got != want {
			t.Fatalf("blocking %v: prefix count %d, decomposition %d", b, got, want)
		}
	}
}

func TestChooseBlockingNearTarget(t *testing.T) {
	g := testGrid()
	for _, target := range []int{5, 20, 60, 150} {
		_, _, cores, err := ChooseBlocking(g, target, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		// The chosen blocking should land within a factor ~2.5 of the target
		// (quantization between aspect-preserving candidates).
		if cores < target/3 || cores > target*3 {
			t.Fatalf("target %d: got %d cores", target, cores)
		}
	}
}
