package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// commRankPath is the import path of the communication substrate whose
// *Rank methods are the collective operations.
const commRankPath = "repro/internal/comm"

// collectiveMethods are the comm.Rank methods every rank must call in the
// same program order (the SPMD collectives).
var collectiveMethods = map[string]bool{
	"AllReduce":        true,
	"AllReduceOverlap": true,
	"Barrier":          true,
	"Exchange":         true,
	"Exchange32":       true,
	"ExchangeMulti":    true,
}

// lockstepRankMethods are comm.Rank methods whose results are documented to
// be identical on every rank of the collective (they are derived from the
// reduction sequence alone), so branching on them is divergence-safe.
var lockstepRankMethods = map[string]bool{
	"ReduceFailed": true,
	"ReduceSeq":    true,
}

// isRankType reports whether t is comm.Rank or *comm.Rank.
func isRankType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Rank" && obj.Pkg() != nil && obj.Pkg().Path() == commRankPath
}

// calleeFunc resolves the *types.Func a call invokes (method or function),
// or nil for builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return typeutil.StaticCallee(info, call)
}

// isPkgFunc reports whether f is a package-level function or method with
// the given package path and name. path is compared exactly.
func isPkgFunc(f *types.Func, path, name string) bool {
	return f != nil && f.Name() == name && f.Pkg() != nil && f.Pkg().Path() == path
}

// rankMethodName returns the method name when call is a method call on
// comm.Rank (or *comm.Rank), else "".
func rankMethodName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if !isRankType(sig.Recv().Type()) {
		return ""
	}
	return f.Name()
}

// isFloat reports whether t has floating-point core type, directly or as
// the element of a slice/array (the shapes reduction payloads and field
// accumulators take).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0 || u.Info()&types.IsComplex != 0
	case *types.Slice:
		return isFloat(u.Elem())
	case *types.Array:
		return isFloat(u.Elem())
	}
	return false
}

// pkgInScope reports whether the pass's package path is one of paths.
// In-package test variants share the production path; their _test.go files
// are excluded per diagnostic site. External test packages ("foo_test" /
// "foo.test" synthesized mains) never match and are skipped wholesale.
func pkgInScope(pass *analysis.Pass, paths ...string) bool {
	p := pass.Pkg.Path()
	if isTestPkgPath(p) {
		return false
	}
	for _, want := range paths {
		if p == want {
			return true
		}
	}
	return false
}

// isTestPkgPath reports whether path names a synthesized test package: the
// external-test variant ("…_test") or the generated test main ("….test").
func isTestPkgPath(path string) bool {
	return strings.HasSuffix(path, ".test") || strings.HasSuffix(path, "_test")
}

// popDirective scans comment groups for one `//pop:` annotation directive
// (//pop:nonsemantic, //pop:noresilient, …). It returns the directive's
// reason text, whether the directive is present at all, and — when it is
// present without a reason — the malformed directive's position, so the
// caller can report it (an exclusion without a recorded justification is
// rot waiting to happen, exactly like a reasonless //poplint:ignore).
func popDirective(directive string, groups ...*ast.CommentGroup) (reason string, found bool, malformed token.Pos) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text != directive && !strings.HasPrefix(c.Text, directive+" ") {
				continue
			}
			found = true
			reason = strings.TrimSpace(strings.TrimPrefix(c.Text, directive))
			if reason == "" {
				malformed = c.Pos()
			}
		}
	}
	return reason, found, malformed
}

// builtinName returns the name of the builtin a call invokes ("make",
// "append", "cap", …), or "" when the call is not a builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
