// Package faults is the deterministic fault-injection layer: a seeded,
// per-rank, per-phase injector that the communication runtime and the
// solvers consult to introduce the failures real fabrics produce — straggler
// delays, dropped or corrupted halo exchanges, failed global reductions, and
// whole-rank crashes mid-solve.
//
// Three properties shape the design:
//
//   - Determinism. Every verdict is a pure hash of (seed, class, rank,
//     sequence number); there is no time, no math/rand, no shared mutable
//     draw state. Re-running the same session operation sequence with the
//     same seed replays the identical fault schedule, which is what makes
//     chaos tests reproducible and recovery bugs bisectable.
//
//   - Collective agreement where the fault is collective. A reduction
//     failure is keyed on the reduction's global sequence number alone, so
//     every rank draws the same verdict and a detect-and-retry loop re-enters
//     the collective in lockstep instead of deadlocking.
//
//   - Zero cost when absent. A nil *Injector is a valid disabled injector:
//     every method is nil-safe and the runtime's hooks reduce to one pointer
//     comparison, so a fault-free run with no injector wired in is bitwise
//     identical to a build that never heard of this package.
//
// Injection and recovery counts flow into an obs.Registry
// (fault_injected_total / fault_recovered_total, labelled by class and
// recovery kind) so chaos runs are observable with the same machinery as
// everything else.
package faults

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// Straggler delays one rank's entry into a global reduction, the OS-jitter
	// amplification the paper's §5.2 straggler analysis studies.
	Straggler Class = iota
	// HaloDrop discards the strips a rank received in one halo-exchange
	// phase, leaving its halos stale for the following iteration.
	HaloDrop
	// HaloCorrupt poisons a received halo strip with NaN, the detectable
	// payload-corruption case the solver's tripwire must catch.
	HaloCorrupt
	// ReduceFail fails one global reduction on every rank at once (a lost
	// or timed-out collective), triggering the solver's detect-and-retry.
	ReduceFail
	// RankCrash loses one rank's solver state between convergence checks,
	// forcing a global rollback to the last iteration-state checkpoint.
	RankCrash

	numClasses
)

// String returns the class name used in metric labels and reports.
func (c Class) String() string {
	switch c {
	case Straggler:
		return "straggler"
	case HaloDrop:
		return "halo-drop"
	case HaloCorrupt:
		return "halo-corrupt"
	case ReduceFail:
		return "reduce-fail"
	case RankCrash:
		return "rank-crash"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists every injectable fault class, in declaration order.
func Classes() []Class {
	return []Class{Straggler, HaloDrop, HaloCorrupt, ReduceFail, RankCrash}
}

// Plan configures deterministic fault injection. The zero value injects
// nothing. Probabilities are per draw site: per (rank, reduction) for
// stragglers, per (rank, exchange phase) for halo faults, per reduction for
// reduction failures, and per (rank, convergence check) for crashes.
type Plan struct {
	// Seed selects the fault schedule; equal seeds replay equal schedules
	// for equal operation sequences.
	Seed uint64
	// StragglerProb is the probability a rank enters a reduction late.
	StragglerProb float64
	// StragglerDelay is the virtual-clock delay (seconds) a straggler adds;
	// New defaults it to 1ms when a probability is set without a delay.
	StragglerDelay float64
	// HaloDropProb discards a rank's received halo strips for one phase.
	HaloDropProb float64
	// HaloCorruptProb poisons one received halo strip with NaN.
	HaloCorruptProb float64
	// ReduceFailProb fails one global reduction for every rank at once.
	ReduceFailProb float64
	// CrashProb loses one rank's solver state at a convergence check.
	CrashProb float64
}

// Active reports whether the plan can inject anything.
func (p Plan) Active() bool {
	return p.StragglerProb > 0 || p.HaloDropProb > 0 || p.HaloCorruptProb > 0 ||
		p.ReduceFailProb > 0 || p.CrashProb > 0
}

// Injector draws deterministic per-site fault verdicts and counts what it
// injected and what the resilience layers recovered. Safe for concurrent use
// by rank goroutines; a nil *Injector injects nothing.
type Injector struct {
	plan     Plan
	reg      *obs.Registry
	injected [numClasses]*obs.Counter

	recMu sync.Mutex
	rec   map[string]*obs.Counter
}

// New builds an injector for the plan, reporting its counters into reg (nil
// creates a private registry, readable via Registry).
func New(plan Plan, reg *obs.Registry) *Injector {
	if plan.StragglerProb > 0 && plan.StragglerDelay == 0 {
		plan.StragglerDelay = 1e-3
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	i := &Injector{plan: plan, reg: reg, rec: make(map[string]*obs.Counter)}
	for _, c := range Classes() {
		i.injected[c] = reg.Counter(
			fmt.Sprintf("fault_injected_total{class=%q}", c.String()),
			"faults injected, by class")
	}
	return i
}

// Enabled reports whether the injector exists and its plan can fire.
func (i *Injector) Enabled() bool { return i != nil && i.plan.Active() }

// Plan returns the injector's configuration (zero value when nil).
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// Registry returns the registry the injector's counters live in (nil when
// the injector is nil).
func (i *Injector) Registry() *obs.Registry {
	if i == nil {
		return nil
	}
	return i.reg
}

// hit draws the deterministic verdict for one site and counts a hit. The
// draw is a splitmix64-style hash of (seed, class, rank, seq) mapped to
// [0, 1) — no state, no locks, bitwise reproducible.
func (i *Injector) hit(c Class, rank int, seq int64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	x := i.plan.Seed ^
		(uint64(c)+1)*0xA24BAED4963EE407 ^
		(uint64(rank)+0x9E3779B97F4A7C15)*0x9FB21C651E98DF25 ^
		uint64(seq)*0xD6E8FEB86659FD93
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if float64(x>>11)/(1<<53) >= prob {
		return false
	}
	i.injected[c].Inc()
	return true
}

// StragglerDelay returns the virtual-clock delay (seconds) to add before
// rank enters reduction seq: zero almost always, Plan.StragglerDelay when
// the straggler draw fires. Nil-safe.
func (i *Injector) StragglerDelay(rank int, seq int64) float64 {
	if i == nil || !i.hit(Straggler, rank, seq, i.plan.StragglerProb) {
		return 0
	}
	return i.plan.StragglerDelay
}

// DropHalo reports whether rank's received halo strips in exchange phase seq
// should be discarded. Nil-safe.
func (i *Injector) DropHalo(rank int, seq int64) bool {
	return i != nil && i.hit(HaloDrop, rank, seq, i.plan.HaloDropProb)
}

// CorruptHalo reports whether one of rank's received halo strips in exchange
// phase seq should be NaN-poisoned. Nil-safe.
func (i *Injector) CorruptHalo(rank int, seq int64) bool {
	return i != nil && i.hit(HaloCorrupt, rank, seq, i.plan.HaloCorruptProb)
}

// FailReduce reports whether global reduction seq fails. The verdict depends
// on seq alone — every rank of the collective draws the same answer, so a
// retry loop re-enters the reduction in lockstep. rank is used only to count
// the injection once (on rank 0) rather than once per rank. Nil-safe.
func (i *Injector) FailReduce(rank int, seq int64) bool {
	if i == nil || i.plan.ReduceFailProb <= 0 {
		return false
	}
	if rank != 0 {
		// Same draw, no count: replicate hit without the counter.
		return i.drawOnly(ReduceFail, 0, seq, i.plan.ReduceFailProb)
	}
	return i.hit(ReduceFail, 0, seq, i.plan.ReduceFailProb)
}

// drawOnly is hit without the injection counter (for ranks replicating a
// collective verdict that rank 0 already counted).
func (i *Injector) drawOnly(c Class, rank int, seq int64, prob float64) bool {
	x := i.plan.Seed ^
		(uint64(c)+1)*0xA24BAED4963EE407 ^
		(uint64(rank)+0x9E3779B97F4A7C15)*0x9FB21C651E98DF25 ^
		uint64(seq)*0xD6E8FEB86659FD93
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < prob
}

// CrashRank reports whether rank loses its solver state at the convergence
// check identified by seq (the rank's collective sequence number, which
// advances across solves, so successive solves draw fresh schedules).
// Nil-safe.
func (i *Injector) CrashRank(rank int, seq int64) bool {
	return i != nil && i.hit(RankCrash, rank, seq, i.plan.CrashProb)
}

// Recovered counts one successful recovery action of the given kind
// ("reduce-retry", "restore", "reconverge", "re-eig", "chrongear",
// "request-retry"). Nil-safe; callers inside rank programs must invoke it
// from one rank only to keep counts per event rather than per rank.
func (i *Injector) Recovered(kind string) {
	if i == nil {
		return
	}
	i.recoveredCounter(kind).Inc()
}

func (i *Injector) recoveredCounter(kind string) *obs.Counter {
	i.recMu.Lock()
	defer i.recMu.Unlock()
	c, ok := i.rec[kind]
	if !ok {
		c = i.reg.Counter(fmt.Sprintf("fault_recovered_total{kind=%q}", kind),
			"fault recoveries, by kind")
		i.rec[kind] = c
	}
	return c
}

// InjectedCount returns how many faults of class c have fired (0 when nil).
func (i *Injector) InjectedCount(c Class) int64 {
	if i == nil || c < 0 || c >= numClasses {
		return 0
	}
	return i.injected[c].Value()
}

// Injected returns the per-class injection counts, keyed by class name.
func (i *Injector) Injected() map[string]int64 {
	out := make(map[string]int64, int(numClasses))
	for _, c := range Classes() {
		out[c.String()] = i.InjectedCount(c)
	}
	return out
}

// Recoveries returns the per-kind recovery counts recorded so far.
func (i *Injector) Recoveries() map[string]int64 {
	out := make(map[string]int64)
	if i == nil {
		return out
	}
	i.recMu.Lock()
	defer i.recMu.Unlock()
	for kind, c := range i.rec {
		out[kind] = c.Value()
	}
	return out
}
