package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// skewedCost prices flops with a per-rank skew so reductions have a
// deterministic straggler and every span has nonzero width.
type skewedCost struct{}

func (skewedCost) FlopTime(n int64, rank int, _ int64) float64 {
	return float64(n) * (1 + 0.1*float64(rank)) * 1e-9
}
func (skewedCost) P2PTime(bytes int64) float64   { return 1e-6 + float64(bytes)*1e-9 }
func (skewedCost) ReduceTime(int, int64) float64 { return 2e-6 }

// traceLine mirrors the obs JSONL schema.
type traceLine struct {
	Ev        string   `json:"ev"`
	Rank      int      `json:"rank"`
	Name      string   `json:"name"`
	T         float64  `json:"t"`
	Iter      *int     `json:"iter"`
	Value     *float64 `json:"value"`
	Straggler *int     `json:"straggler"`
	Wait      *float64 `json:"wait"`
}

// The golden trace contract: a tiny solve's JSONL trace parses line by
// line, timestamps are monotone non-decreasing per rank within each run
// segment, span begin/end pairs balance, and the solver events the paper's
// figures need (per-iteration residuals, per-reduction straggler
// attribution, Lanczos bounds) are all present.
func TestSolveTraceJSONLGolden(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondDiagonal, Tol: 1e-10})
	tracer := obs.NewTracer(1 << 16)
	f.w.Cost = skewedCost{}
	f.w.Tracer = tracer
	defer func() { f.w.Tracer = nil; f.w.Cost = nil }()

	res, _, err := s.SolvePCSI(f.b, make([]float64, len(f.b)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("test solve did not converge: %+v", res)
	}

	// The Result-attached trace: residual history and eigenvalue bounds.
	if res.Trace == nil || len(res.Trace.Residuals) == 0 {
		t.Fatal("Result.Trace has no residual history")
	}
	prevIter := 0
	for _, p := range res.Trace.Residuals {
		if p.Iter <= prevIter {
			t.Fatalf("residual iters not increasing: %+v", res.Trace.Residuals)
		}
		prevIter = p.Iter
		if p.RelResidual < 0 {
			t.Fatalf("negative residual: %+v", p)
		}
	}
	last := res.Trace.Residuals[len(res.Trace.Residuals)-1]
	if last.RelResidual != res.RelResidual {
		t.Fatalf("last traced residual %g != Result.RelResidual %g", last.RelResidual, res.RelResidual)
	}
	if len(res.Trace.EigBounds) == 0 {
		t.Fatal("P-CSI trace has no Lanczos bound evolution")
	}

	if tracer.Dropped() > 0 {
		t.Fatalf("ring dropped %d events; raise the test capacity", tracer.Dropped())
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	type rankState struct {
		lastT float64
		depth int
		began int
		ended int
	}
	states := make(map[int]*rankState)
	seen := make(map[string]int)
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		var l traceLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("line %d does not parse: %v: %s", lineNo, err, sc.Text())
		}
		seen[l.Name]++
		st, ok := states[l.Rank]
		if !ok {
			st = &rankState{}
			states[l.Rank] = st
		}
		if l.Name == obs.EvRunBegin {
			// New run segment: the virtual clock restarts; spans must not
			// straddle the boundary.
			if st.depth != 0 {
				t.Fatalf("line %d: run_begin with %d open spans on rank %d", lineNo, st.depth, l.Rank)
			}
			st.lastT = 0
			continue
		}
		if l.T < st.lastT {
			t.Fatalf("line %d: rank %d clock ran backwards (%g after %g)", lineNo, l.Rank, l.T, st.lastT)
		}
		st.lastT = l.T
		switch l.Ev {
		case "B":
			st.depth++
			st.began++
		case "E":
			st.depth--
			st.ended++
			if st.depth < 0 {
				t.Fatalf("line %d: rank %d span end without begin", lineNo, l.Rank)
			}
		case "P":
		default:
			t.Fatalf("line %d: unknown ev %q", lineNo, l.Ev)
		}
		if l.Name == obs.EvReduce && l.Ev == "E" {
			if l.Straggler == nil || *l.Straggler < 0 || *l.Straggler >= f.d.NRanks {
				t.Fatalf("line %d: reduce span without valid straggler: %s", lineNo, sc.Text())
			}
			if l.Wait == nil || *l.Wait < 0 {
				t.Fatalf("line %d: reduce span without wait: %s", lineNo, sc.Text())
			}
		}
		if l.Name == obs.EvResidual {
			if l.Iter == nil || l.Value == nil {
				t.Fatalf("line %d: residual point without iter/value: %s", lineNo, sc.Text())
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for rank, st := range states {
		if st.depth != 0 {
			t.Errorf("rank %d: %d unbalanced spans", rank, st.depth)
		}
		if st.began != st.ended {
			t.Errorf("rank %d: %d begins vs %d ends", rank, st.began, st.ended)
		}
	}
	if len(states) != f.d.NRanks {
		t.Errorf("trace covers %d ranks, want %d", len(states), f.d.NRanks)
	}
	for _, name := range []string{obs.EvCompute, obs.EvHalo, obs.EvReduce, obs.EvResidual, obs.EvEigBound, obs.EvRunBegin} {
		if seen[name] == 0 {
			t.Errorf("trace has no %q events (saw %v)", name, seen)
		}
	}
}

// Disabled tracing must leave Result telemetry intact: the SolveTrace is
// recorded unconditionally (appends only at convergence checks).
func TestSolveTraceWithoutTracer(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondDiagonal})
	res, _, err := s.SolveChronGear(f.b, make([]float64, len(f.b)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Residuals) == 0 {
		t.Fatal("SolveTrace missing with tracing disabled")
	}
}
