package core

import "repro/internal/stencil"

// Block-level vector kernels. All operate on the interior of padded arrays
// and are charged with the paper's flop accounting (§2.2): one unit per
// point per vector operation, two per masked inner product, nine per
// stencil application — so the Session's virtual times reproduce the
// coefficients of Equations 2/3/5/6 by construction.
//
// Inner loops run over per-row slice windows of one common length so the
// compiler's prove pass eliminates the bounds checks (same idiom as
// stencil.Local.Apply; verify with go build -gcflags=-d=ssa/check_bce).

// residual computes r = b − A·x on the interior (fused; charged as one
// stencil application). x must have valid ring-1 halos.
//
//pop:hotpath
func residual(loc *stencil.Local, r, b, x []float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		rr := r[lo:][:n]
		br := b[lo:][:n]
		xc := x[lo:][:n]
		xn := x[lo+nx:][:n]
		xs := x[lo-nx:][:n]
		xe := x[lo+1:][:n]
		xw := x[lo-1:][:n]
		xne := x[lo+nx+1:][:n]
		xse := x[lo-nx+1:][:n]
		xnw := x[lo+nx-1:][:n]
		xsw := x[lo-nx-1:][:n]
		ac := loc.AC[lo:][:n]
		an := loc.AN[lo:][:n]
		ans := loc.AN[lo-nx:][:n]
		ae := loc.AE[lo:][:n]
		aw := loc.AE[lo-1:][:n]
		ane := loc.ANE[lo:][:n]
		anes := loc.ANE[lo-nx:][:n]
		anew := loc.ANE[lo-1:][:n]
		anesw := loc.ANE[lo-nx-1:][:n]
		for i := range rr {
			rr[i] = br[i] - (ac[i]*xc[i] +
				an[i]*xn[i] + ans[i]*xs[i] +
				ae[i]*xe[i] + aw[i]*xw[i] +
				ane[i]*xne[i] + anes[i]*xse[i] +
				anew[i]*xnw[i] + anesw[i]*xsw[i])
		}
	}
}

// xpay computes dst = x + a·dst on the interior (ChronGear's s/p updates).
//
//pop:hotpath
func xpay(loc *stencil.Local, dst, x []float64, a float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dst[lo:][:n]
		xr := x[lo:][:n]
		for i := range dr {
			dr[i] = xr[i] + a*dr[i]
		}
	}
}

// axpy computes dst += a·x on the interior.
//
//pop:hotpath
func axpy(loc *stencil.Local, dst, x []float64, a float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dst[lo:][:n]
		xr := x[lo:][:n]
		for i := range dr {
			dr[i] += a * xr[i]
		}
	}
}

// chebBasisFirst computes dst = invDelta·(w − γ·v) on the interior — the
// first Chebyshev basis step of the s-step solver, v₁ = T₁ of the mapped
// operator applied to v₀ (charged as two vector operations).
//
//pop:hotpath
func chebBasisFirst(loc *stencil.Local, dst, w, v []float64, gamma, invDelta float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dst[lo:][:n]
		wr := w[lo:][:n]
		vr := v[lo:][:n]
		for i := range dr {
			dr[i] = invDelta * (wr[i] - gamma*vr[i])
		}
	}
}

// chebBasisNext computes dst = twoInvDelta·(w − γ·v) − u on the interior —
// the three-term Chebyshev recurrence vⱼ₊₁ = (2/δ)(M⁻¹A·vⱼ − γ·vⱼ) − vⱼ₋₁
// that keeps the s-step basis well-conditioned (charged as three vector
// operations).
//
//pop:hotpath
func chebBasisNext(loc *stencil.Local, dst, w, v, u []float64, gamma, twoInvDelta float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dst[lo:][:n]
		wr := w[lo:][:n]
		vr := v[lo:][:n]
		ur := u[lo:][:n]
		for i := range dr {
			dr[i] = twoInvDelta*(wr[i]-gamma*vr[i]) - ur[i]
		}
	}
}

// chebUpdate computes dx = ω·rp + c·dx on the interior (P-CSI line 7;
// charged as two vector operations).
//
//pop:hotpath
func chebUpdate(loc *stencil.Local, dx, rp []float64, omega, c float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		lo := j*nx + h
		n := nx - 2*h
		dr := dx[lo:][:n]
		rr := rp[lo:][:n]
		for i := range dr {
			dr[i] = omega*rr[i] + c*dr[i]
		}
	}
}
