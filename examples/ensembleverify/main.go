// Ensembleverify: a miniature of the paper's §6 — verify that a *new*
// barotropic solver produces a climate consistent with the production one
// using the ensemble RMSZ method, and show why the plain RMSE test cannot
// make that call.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/model"
)

const (
	members = 12
	steps   = 400 // post-spinup comparison window
	spinup  = 300
)

func main() {
	spec := grid.TestSpec()
	spec.Nx, spec.Ny = 48, 36
	base, err := pop.NewModel(pop.ModelConfig{
		Grid:       grid.Generate(spec),
		Solver:     model.SolverChronGear,
		SolverOpts: core.Options{Precond: core.PrecondDiagonal, Tol: 1e-13},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spinning up %d steps...\n", spinup)
	if err := base.Run(spinup); err != nil {
		log.Fatal(err)
	}

	run := func(solver model.SolverName, opts core.Options, perturbSeed int64) []float64 {
		m, err := base.Fork(solver, opts)
		if err != nil {
			log.Fatal(err)
		}
		if perturbSeed > 0 {
			m.PerturbTemperature(1e-14, perturbSeed)
		}
		if err := m.Run(steps); err != nil {
			log.Fatal(err)
		}
		out := make([]float64, 0, len(m.Temp)*len(m.Temp[0]))
		for _, layer := range m.Temp {
			out = append(out, layer...)
		}
		return out
	}

	mask := make([]bool, 0, 5*base.G.N())
	for range base.Temp {
		mask = append(mask, base.G.Mask...)
	}

	// Reference ensemble: production solver, O(1e-14) perturbations.
	defaultOpts := core.Options{Precond: core.PrecondDiagonal, Tol: 1e-13}
	ens := pop.NewEnsemble(len(mask), mask)
	var memberFields [][]float64
	fmt.Printf("running %d perturbed ensemble members...\n", members)
	for mem := 1; mem <= members; mem++ {
		f := run(model.SolverChronGear, defaultOpts, int64(mem))
		ens.Add(f)
		memberFields = append(memberFields, f)
	}
	// Envelope of the members' own RMSZ.
	var lo, hi float64 = 1e300, 0
	for _, f := range memberFields {
		z, err := ens.RMSZ(f)
		if err != nil {
			log.Fatal(err)
		}
		if z < lo {
			lo = z
		}
		if z > hi {
			hi = z
		}
	}
	fmt.Printf("ensemble envelope: RMSZ in [%.2f, %.2f]\n\n", lo, hi)

	cases := []struct {
		name   string
		solver model.SolverName
		opts   core.Options
	}{
		{"new solver: P-CSI+EVP (tol 1e-13)", model.SolverPCSI, core.Options{Precond: core.PrecondEVP, Tol: 1e-13}},
		{"sloppy solver: ChronGear tol 1e-6", model.SolverChronGear, core.Options{Precond: core.PrecondDiagonal, Tol: 1e-6}},
	}
	ref := run(model.SolverChronGear, defaultOpts, 0)
	fmt.Println("case                                   RMSE vs ref     RMSZ     verdict")
	for _, cs := range cases {
		f := run(cs.solver, cs.opts, 0)
		rmse := pop.RMSE(f, ref, mask)
		z, err := ens.RMSZ(f)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "CONSISTENT (inside envelope)"
		if z > 2*hi {
			verdict = "REJECTED (outside envelope)"
		}
		fmt.Printf("%-38s %.3e    %8.2f  %s\n", cs.name, rmse, z, verdict)
	}
	fmt.Println("\nboth RMSE values are tiny — the paper's point: RMSE alone cannot decide;")
	fmt.Println("the ensemble Z-score separates a consistent new solver from a sloppy one.")
}
