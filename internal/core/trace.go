package core

import (
	"repro/internal/comm"
	"repro/internal/obs"
)

// Solver telemetry: every solve records its convergence history on rank 0
// and attaches it to the Result as a SolveTrace — the per-iteration record
// behind the paper's §5.2 figures (residual trajectories, Lanczos bound
// evolution, the P-CSI guards firing). Recording happens only at
// convergence checks and guard events (every CheckEvery iterations), so the
// iteration hot path is untouched; the richer per-phase event stream lives
// in the comm tracer and is enabled separately.

// ResidualPoint is one convergence check: the relative residual ‖r‖/‖b‖
// observed at iteration Iter, with rank 0's virtual clock at that moment.
type ResidualPoint struct {
	Iter        int     `json:"iter"`         // iteration of the check
	RelResidual float64 `json:"rel_residual"` // ‖r‖/‖b‖ observed there
	Clock       float64 `json:"clock"`        // rank 0's virtual clock (s)
}

// EigBound is one Lanczos step's extreme Ritz-value estimate of the
// spectrum of M⁻¹A.
type EigBound struct {
	Step int     `json:"step"` // Lanczos step number
	Nu   float64 `json:"nu"`   // smallest Ritz value so far
	Mu   float64 `json:"mu"`   // largest Ritz value so far
}

// IntervalEvent records one adaptive widening of P-CSI's Chebyshev
// interval: Kind is "raise-mu" (divergence guard) or "widen-nu"
// (slow-convergence guard); Nu and Mu are the interval after the change.
type IntervalEvent struct {
	Iter int     `json:"iter"` // iteration the guard fired at
	Kind string  `json:"kind"` // "raise-mu" or "widen-nu"
	Nu   float64 `json:"nu"`   // interval lower bound after the change
	Mu   float64 `json:"mu"`   // interval upper bound after the change
}

// SolveTrace is the per-iteration telemetry of one solve.
type SolveTrace struct {
	// Residuals holds every convergence check, in iteration order.
	Residuals []ResidualPoint `json:"residuals"`
	// EigBounds is the Lanczos eigenvalue-bound evolution (P-CSI only;
	// empty when the session reused earlier estimates).
	EigBounds []EigBound `json:"eig_bounds,omitempty"`
	// Intervals lists the Chebyshev-interval adaptations (P-CSI only).
	Intervals []IntervalEvent `json:"intervals,omitempty"`
}

// traceResidual records one convergence check: rank 0 appends to the solve
// trace, and every rank with an enabled tracer emits a point event (each
// rank observes the check at its own virtual time).
func traceResidual(r *comm.Rank, tr *SolveTrace, iter int, rel float64) {
	if r.ID == 0 {
		tr.Residuals = append(tr.Residuals, ResidualPoint{Iter: iter, RelResidual: rel, Clock: r.Clock()})
	}
	if rt := r.Trace(); rt != nil {
		rt.Add(obs.Event{Name: obs.EvResidual, Point: true, T0: r.Clock(), T1: r.Clock(),
			Iter: iter, Value: rel, Straggler: -1})
	}
}

// traceInterval records one P-CSI interval adaptation.
func traceInterval(r *comm.Rank, tr *SolveTrace, iter int, kind string, nu, mu float64) {
	if r.ID == 0 {
		tr.Intervals = append(tr.Intervals, IntervalEvent{Iter: iter, Kind: kind, Nu: nu, Mu: mu})
	}
	if rt := r.Trace(); rt != nil {
		name := obs.EvIntervalWiden
		if kind == "raise-mu" {
			name = obs.EvIntervalRaise
		}
		rt.Add(obs.Event{Name: name, Point: true, T0: r.Clock(), T1: r.Clock(),
			Iter: iter, Value: nu, Aux: mu, Straggler: -1})
	}
}

// traceEigBound records one Lanczos step's bound estimate.
func traceEigBound(r *comm.Rank, step int, nu, mu float64) {
	if rt := r.Trace(); rt != nil {
		rt.Add(obs.Event{Name: obs.EvEigBound, Point: true, T0: r.Clock(), T1: r.Clock(),
			Iter: step, Value: nu, Aux: mu, Straggler: -1})
	}
}
