package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

// request is one queued solve; resp is buffered (size 1) so a worker can
// always deliver and move on even when the caller has abandoned the wait.
// The time.Time fields mark the request's phase boundaries: start (Solve
// entry) → enqueued (queue send; the gap is admission) → dequeued (worker
// pickup; the gap is queue wait) → solve start in runBatch (the gap is
// batch wait).
type request struct {
	ctx      context.Context
	req      Request
	key      Key
	resp     chan result
	traceID  uint64
	start    time.Time
	enqueued time.Time
	dequeued time.Time
}

type result struct {
	resp Response
	err  error
}

// gridEntry caches what sessions on one grid share: the grid itself and the
// assembled operator (both read-only during solves).
type gridEntry struct {
	g  *grid.Grid
	op *stencil.Operator
}

func (s *Service) gridFor(name string) (*gridEntry, error) {
	s.gridMu.Lock()
	defer s.gridMu.Unlock()
	if ge := s.grids[name]; ge != nil {
		return ge, nil
	}
	g, err := s.opts.GridProvider(name)
	if err != nil {
		return nil, fmt.Errorf("serve: %w: %w", err, core.ErrBadSpec)
	}
	ge := &gridEntry{g: g, op: stencil.Assemble(g, stencil.PhiFromTimeStep(s.opts.Tau))}
	s.grids[name] = ge
	return ge, nil
}

// keyPool owns the queue and warmed sessions for one Key. Each session is
// driven by exactly one worker goroutine, which is the whole concurrency
// contract: a core.Session never sees two solves at once.
type keyPool struct {
	svc   *Service
	key   Key
	queue chan *request

	buildMu  sync.Mutex
	built    int   // sessions successfully built
	growing  bool  // a background build is in flight
	buildErr error // sticky first-build failure, returned at admission
	gridN    int   // grid point count, for request validation

	// Circuit breaker (active only when Options.CircuitThreshold > 0):
	// consecutive faulted solves open the circuit, quarantining the key for
	// CircuitCooldown; the first admission after the cooldown is a half-open
	// probe whose failure re-opens the circuit immediately.
	cbMu     sync.Mutex
	cbFails  int
	cbOpenAt time.Time // zero = circuit closed
}

// circuitAllow reports whether admission may proceed for this key.
func (p *keyPool) circuitAllow() bool {
	th := p.svc.opts.CircuitThreshold
	if th <= 0 {
		return true
	}
	p.cbMu.Lock()
	defer p.cbMu.Unlock()
	if p.cbOpenAt.IsZero() {
		return true
	}
	if time.Since(p.cbOpenAt) < p.svc.opts.CircuitCooldown {
		return false
	}
	// Half-open: admit one probe; one more faulted solve re-opens.
	p.cbOpenAt = time.Time{}
	p.cbFails = th - 1
	return true
}

// recordOutcome feeds the circuit breaker and reports whether this outcome
// transitioned the circuit to open (the flight-recorder trigger). Only
// solver faults count against the key; context cancellations and spec
// errors say nothing about its health, and a successful solve closes the
// window.
func (p *keyPool) recordOutcome(err error) (opened bool) {
	th := p.svc.opts.CircuitThreshold
	if th <= 0 {
		return false
	}
	p.cbMu.Lock()
	defer p.cbMu.Unlock()
	switch {
	case err == nil:
		p.cbFails = 0
	case errors.Is(err, core.ErrFaulted):
		p.cbFails++
		if p.cbFails >= th && p.cbOpenAt.IsZero() {
			p.cbOpenAt = time.Now()
			opened = true
		}
	}
	return opened
}

// ensureBuilt warms the pool's first session synchronously. Build failures
// stick: every subsequent request for this key gets the same error without
// re-attempting an expensive doomed build.
func (p *keyPool) ensureBuilt() error {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	if p.built > 0 {
		return nil
	}
	if p.buildErr != nil {
		return p.buildErr
	}
	sess, slot, err := p.build()
	if err != nil {
		p.buildErr = err
		return err
	}
	p.gridN = sess.G.N()
	if !p.startWorker(sess, slot) {
		// The service closed while we were building; terminal, so stick.
		p.buildErr = ErrClosed
		return ErrClosed
	}
	p.built++
	return nil
}

func (p *keyPool) n() int {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	return p.gridN
}

// build assembles and warms one session: decomposition, virtual world,
// preconditioner factorization, and (for Stiefel methods) the Lanczos
// eigenvalue bounds — everything a request would otherwise pay for on its
// first solve. The returned slot is the session's service-level registration
// (index, tracer, export lock).
func (p *keyPool) build() (*core.Session, *sessionSlot, error) {
	ge, err := p.svc.gridFor(p.key.Grid)
	if err != nil {
		return nil, nil, err
	}
	o := p.svc.opts
	opts := o.Solver
	opts.Precond = p.key.Precond
	opts.Precision = p.key.Precision
	if p.key.SStep > 0 {
		opts.SStep = p.key.SStep
	}

	var d *decomp.Decomposition
	if o.Cores > 0 {
		bx, by, _, err := decomp.ChooseBlocking(ge.g, o.Cores, 3, 2)
		if err != nil {
			return nil, nil, err
		}
		d, err = decomp.New(ge.g, bx, by, decomp.DefaultHalo)
		if err != nil {
			return nil, nil, err
		}
	} else {
		d, err = decomp.New(ge.g, ge.g.Nx, ge.g.Ny, decomp.DefaultHalo)
		if err != nil {
			return nil, nil, err
		}
	}
	d.AssignOnePerRank()
	machine, err := perfmodel.ByName(o.MachineName)
	if err != nil {
		return nil, nil, err
	}
	var cost comm.CostModel
	if machine != nil {
		cost = machine
	}
	w, err := comm.NewWorld(d, cost)
	if err != nil {
		return nil, nil, err
	}
	// Wire the fault injector (if any) into the session's world; a nil
	// injector leaves every communication path bitwise identical.
	w.Faults = o.Injector
	// Cap concurrent rank execution at the configured worker-shard count
	// (0 = GOMAXPROCS); sharding is pure scheduling, never numerics.
	w.SetThreads(o.Threads)
	// Attach the per-session tracer before warm-up so setup and Lanczos
	// spans are captured too (with trace ID 0 — not tied to any request).
	// Sessions deliberately do not share a tracer: each ring is
	// single-writer per rank goroutine, and two sessions both have a rank 0.
	if o.TraceCapacity > 0 {
		w.Tracer = obs.NewTracer(o.TraceCapacity)
	}
	sess, err := core.NewSession(ge.g, ge.op, d, w, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := sess.Setup(); err != nil {
		return nil, nil, err
	}
	if p.key.Method == core.MethodPCSI || p.key.Method == core.MethodSStep {
		if _, _, _, err := sess.EstimateEigenvalues(nil, 0); err != nil {
			return nil, nil, err
		}
	}
	slot := p.svc.registerSession(p.key, w.Tracer, w.NRank)
	n := p.svc.sessCount.Add(1)
	p.svc.m.sessions.Set(float64(n))
	return sess, slot, nil
}

// startWorker registers a worker under the service read lock so it can
// never race Close's wg.Wait: either the worker starts before Close flips
// closed, or the freshly built session is discarded.
func (p *keyPool) startWorker(sess *core.Session, slot *sessionSlot) bool {
	s := p.svc
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	go p.worker(sess, slot)
	return true
}

// maybeGrow warms one more session in the background when the queue has a
// backlog and the key has headroom. At most one build is in flight per key.
func (p *keyPool) maybeGrow() {
	p.buildMu.Lock()
	if p.growing || p.buildErr != nil || p.built == 0 || p.built >= p.svc.opts.MaxSessionsPerKey {
		p.buildMu.Unlock()
		return
	}
	p.growing = true
	p.buildMu.Unlock()
	go func() {
		sess, slot, err := p.build()
		p.buildMu.Lock()
		defer p.buildMu.Unlock()
		p.growing = false
		if err == nil && p.startWorker(sess, slot) {
			p.built++
		}
	}()
}

// worker drives one session: pull a request, coalesce stragglers into a
// batch, run the batch back-to-back on the session. When Close closes the
// queue the worker finishes the remaining buffered requests before exiting
// — that is the graceful drain.
func (p *keyPool) worker(sess *core.Session, slot *sessionSlot) {
	defer p.svc.wg.Done()
	batch := make([]*request, 0, p.svc.opts.MaxBatch)
	for {
		first, ok := <-p.queue
		if !ok {
			return
		}
		first.dequeued = time.Now()
		batch = append(batch[:0], first)
		p.fill(&batch)
		p.svc.m.queueDepth.Set(float64(len(p.queue)))
		// slot.mu serializes the batch against Perfetto export (the rank
		// rings are single-writer and unsynchronized).
		slot.mu.Lock()
		p.runBatch(sess, slot, batch)
		slot.mu.Unlock()
	}
}

// fill coalesces queued requests into the batch: first a non-blocking
// greedy drain, then up to MaxWait holding the batch open for stragglers.
func (p *keyPool) fill(batch *[]*request) {
	max := p.svc.opts.MaxBatch
	for len(*batch) < max {
		select {
		case r, ok := <-p.queue:
			if !ok {
				return
			}
			r.dequeued = time.Now()
			*batch = append(*batch, r)
			continue
		default:
		}
		break
	}
	if wait := p.svc.opts.MaxWait; wait > 0 && len(*batch) < max {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		for len(*batch) < max {
			select {
			case r, ok := <-p.queue:
				if !ok {
					return
				}
				r.dequeued = time.Now()
				*batch = append(*batch, r)
			case <-timer.C:
				return
			}
		}
	}
}

// runBatch executes one session checkout. Requests whose context is already
// done are skipped (their spot in the checkout is not wasted on a doomed
// solve); live ones run with their own context so a deadline can still stop
// a solve at its next convergence check.
//
// Every finished request — solved, errored, or expired — leaves a
// RequestRecord in the flight recorder, and the three incident triggers
// (fault beyond the retry budget, circuit-breaker opening, latency-SLO
// breach) dump the recorder with the offending request's spans attached.
func (p *keyPool) runBatch(sess *core.Session, slot *sessionSlot, batch []*request) {
	m := &p.svc.m
	m.batches.Inc()
	m.batchSize.Observe(float64(len(batch)))
	for _, r := range batch {
		m.queueWait.Observe(time.Since(r.enqueued).Seconds())
		rec := obs.RequestRecord{
			TraceID:     r.traceID,
			Key:         r.key.String(),
			Session:     slot.idx,
			StartUnixNS: r.start.UnixNano(),
			AdmitNS:     r.enqueued.Sub(r.start).Nanoseconds(),
			QueueNS:     r.dequeued.Sub(r.enqueued).Nanoseconds(),
			Ranks:       slot.ranks,
			Shard:       -1, // the fleet layer stamps real shards on its own records
		}
		if r.ctx.Err() != nil {
			m.expired.Inc()
			err := fmt.Errorf("serve: expired in queue: %w", context.Cause(r.ctx))
			rec.Error = err.Error()
			rec.TotalNS = time.Since(r.start).Nanoseconds()
			p.svc.flight.Note(rec)
			r.resp <- result{err: err}
			continue
		}
		solveStart := time.Now()
		rec.BatchWaitNS = solveStart.Sub(r.dequeued).Nanoseconds()
		res, x, err := p.solveOnce(sess, r)
		rec.SolveNS = time.Since(solveStart).Nanoseconds()
		if err == nil && !res.Converged {
			err = &core.NotConvergedError{
				Solver: res.Solver, Iterations: res.Iterations, RelResidual: res.RelResidual}
		}
		opened := p.recordOutcome(err)
		rec.Iterations = res.Iterations
		rec.Converged = res.Converged
		mc := res.Stats.MeanCounters()
		rec.VCompMean = mc.TComp
		rec.VHaloMean = mc.THalo
		rec.VReduceMean = mc.TReduce
		rec.VClockMax = res.Stats.MaxClock
		if err != nil {
			rec.Error = err.Error()
		}
		rec.TotalNS = time.Since(r.start).Nanoseconds()
		p.svc.flight.Note(rec)
		// Incident triggers. The worker owns the session between solves, so
		// reading its trace rings here cannot race rank goroutines. A fault
		// that also opens the circuit dumps twice — each incident class gets
		// its own black box.
		if err != nil && errors.Is(err, core.ErrFaulted) {
			p.dumpFlight("fault_recovery", rec, slot)
		}
		if opened {
			p.dumpFlight("circuit_open", rec, slot)
		}
		if p.svc.opts.LatencySLO > 0 && rec.TotalNS > p.svc.opts.LatencySLO.Nanoseconds() {
			p.dumpFlight("slo_breach", rec, slot)
		}
		if err != nil {
			m.errors.Inc()
			r.resp <- result{err: err}
			continue
		}
		// x is the session's reusable arena; the response owns a copy.
		xc := make([]float64, len(x))
		copy(xc, x)
		r.resp <- result{resp: Response{Result: res, X: xc, TraceID: r.traceID}}
	}
}

// dumpFlight fires one flight-recorder dump for the offending request,
// attaching its rank-level spans when the session is traced.
func (p *keyPool) dumpFlight(reason string, rec obs.RequestRecord, slot *sessionSlot) {
	var events []obs.Event
	if slot.tracer != nil {
		events = slot.tracer.EventsFor(rec.TraceID)
	}
	// Dump errors (disk full, unwritable dir) must not fail the solve; the
	// trigger count still advances inside Dump.
	_, _ = p.svc.flight.Dump(reason, rec, events, p.svc.opts.Registry)
}

// solveOnce runs one request on the session. Without an injector this is a
// plain SolveContext. With one, the solve runs resiliently (checkpointed,
// retrying reductions, degraded-mode ladder) and a solve that still faults
// beyond recovery is re-run up to the service retry budget — a fresh run
// draws a disjoint slice of the fault schedule, so transient storms clear.
func (p *keyPool) solveOnce(sess *core.Session, r *request) (core.Result, []float64, error) {
	m := &p.svc.m
	// Stamp the request's trace ID onto the session world: every rank-level
	// span of this solve (and of resilient retries) carries it.
	sess.SetTraceID(r.traceID)
	if p.svc.opts.Injector == nil {
		res, x, err := sess.SolveContext(r.ctx, r.key.Method, r.req.B, r.req.X0)
		m.solves.Inc()
		return res, x, err
	}
	budget := p.svc.opts.RetryBudget
	if budget < 0 {
		budget = 0
	}
	res, x, err := sess.SolveResilient(r.ctx, r.key.Method, r.req.B, r.req.X0)
	m.solves.Inc()
	for attempt := 0; attempt < budget && err != nil && errors.Is(err, core.ErrFaulted); attempt++ {
		m.retried.Inc()
		res, x, err = sess.SolveResilient(r.ctx, r.key.Method, r.req.B, r.req.X0)
		m.solves.Inc()
		if err == nil {
			m.recovered.Inc()
			p.svc.opts.Injector.Recovered("request-retry")
		}
	}
	if err != nil && errors.Is(err, core.ErrFaulted) {
		m.faulted.Inc()
	}
	return res, x, err
}
