#!/bin/sh
# verify.sh — build, vet, test (with the race detector: the goroutine
# SPMD runtime is the point of the exercise), then smoke-run popsolve
# and assert its telemetry outputs are well-formed.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"; echo "$unformatted"; exit 1
fi

echo "== go build =="
go build ./...

echo "== poplint static analysis =="
# The repo's own analyzer suite (SPMD lockstep with interprocedural taint,
# determinism, hot-path allocation, ctx flow, typed errors — DESIGN.md §10 —
# plus the protocol-drift trio: wiredrift field parity, faultladder
# coverage, reductionwidth — DESIGN.md §14) must run clean: go vet exits
# nonzero on any diagnostic.
poplint_tmp=$(mktemp -d)
go build -o "$poplint_tmp/poplint" ./cmd/poplint
go vet -vettool="$poplint_tmp/poplint" ./...
rm -rf "$poplint_tmp"

echo "== poplint analyzer suite (race) =="
# The analyzers' own tests — the wiredrift seeded-drift fixture, the
# faultladder true-positive fixture, the interprocedural lockstep testdata
# and the harness — with the test cache defeated so the gate always runs.
go test -race -count=1 ./internal/analysis/...

echo "== go test -race =="
go test -race ./...

echo "== zero-allocation steady state (comm + core) =="
# The allocation-discipline gate: pooled halo buffers, reduction workspaces
# and solver arenas must keep the steady-state iteration allocation-free and
# bitwise deterministic. -count=1 defeats the test cache so the gate always
# executes.
go test -race -count=1 \
    -run 'TestExchangeMultiBufferReuse|TestSteadyStateCommAllocFree' \
    ./internal/comm/
go test -race -count=1 \
    -run 'TestSteadyStateSolverAllocFree|TestPCSIResidualHistoryBitwiseDeterministic' \
    ./internal/core/

echo "== worker-shard + mixed-precision gates (race) =="
# Hardware-parallelism invariants: float64 solutions and residual histories
# are bitwise identical across worker-shard counts (threads 1/2/4/8), the
# mixed float32 path converges within the RMSZ gate of the float64 answer
# on every method × preconditioner pair, stays deterministic across shard
# counts, and its kernels are allocation-free — all under the race detector.
go test -race -count=1 \
    -run 'TestFloat64BitwiseAcrossThreads|TestMixedPrecisionMatchesFloat64|TestMixedPrecisionDeterministic|TestMixedKernelsZeroAlloc|TestMixedSteadyStateAllocFree' \
    ./internal/core/
# The sharded scheduler end to end: a -threads 1 and a -threads 4 popsolve
# run must print identical numerics (iterations, residual, error digits).
shard1=$(go run ./cmd/popsolve -grid test -method chrongear -precond evp -cores 12 -threads 1 | grep '^converged=')
shard4=$(go run ./cmd/popsolve -grid test -method chrongear -precond evp -cores 12 -threads 4 | grep '^converged=')
[ "$shard1" = "$shard4" ] || {
    echo "popsolve numerics differ across -threads:"; echo "  1: $shard1"; echo "  4: $shard4"; exit 1; }
# And the float32 path converges through the same CLI.
go run ./cmd/popsolve -grid test -method pcsi -precond evp -cores 12 -precision float32 \
    | grep -q 'converged=true'

echo "== s-step solver gates (race) =="
# The communication-avoiding s-step solver: RMSZ convergence equivalence
# with fp64 ChronGear for every preconditioner × s, the ceil(iters/s)+1
# reduction bound counted from the communicator, and fp64 bitwise
# determinism across worker shards and warm-arena repeats.
go test -race -count=1 -run 'TestSStep' ./internal/core/
# The sharded s-step scheduler end to end: -threads 1 and -threads 4 runs
# must print identical numerics, like the ChronGear gate above.
ss1=$(go run ./cmd/popsolve -grid test -method sstep -precond evp -cores 12 -threads 1 | grep '^converged=')
ss4=$(go run ./cmd/popsolve -grid test -method sstep -precond evp -cores 12 -threads 4 | grep '^converged=')
[ "$ss1" = "$ss4" ] || {
    echo "popsolve sstep numerics differ across -threads:"; echo "  1: $ss1"; echo "  4: $ss4"; exit 1; }
echo "$ss1" | grep -q 'converged=true'

echo "== wire-surface fuzz smoke (10s per target) =="
# Short-budget native fuzzing of the two places network bytes meet
# hand-written parsing: the binary frame decoders (totality + byte-level
# re-encode idempotence) and the enum parsers (ErrBadSpec or a Valid value
# whose canonical spelling re-parses). Any crash fails the gate; longer
# budgets belong in CI, not here.
go test -run=NONE -fuzz=FuzzFrameDecode -fuzztime=10s ./internal/api/
go test -run=NONE -fuzz=FuzzParseMethod -fuzztime=10s ./internal/core/
go test -run=NONE -fuzz=FuzzParsePrecond -fuzztime=10s ./internal/core/
go test -run=NONE -fuzz=FuzzParsePrecision -fuzztime=10s ./internal/core/

echo "== doc coverage + examples =="
# Every exported identifier of the public surface (pop, serve, faults, obs,
# analysis + its harness, api, fleet, core, comm, decomp, grid, stencil)
# must carry a doc comment, and the runnable Example* functions must pass.
go test -count=1 -run 'TestPublicSurfaceDocumented|Example' .

echo "== chaos / resilience gates (race) =="
# Fault injection must be bitwise invisible when disabled, every fault
# class must recover, the degraded-mode ladder must engage, and the serve
# layer must honor retry budgets and the circuit breaker — all under the
# race detector.
go test -race -count=1 \
    -run 'TestInjectorDisabledBitwiseIdentical|Recovery$|TestRecoveryBudgetExhaustionFaults|TestLadder|TestChaosRunsDeterministic' \
    ./internal/core/
go test -race -count=1 -run 'TestServe' ./internal/serve/

echo "== serve concurrency gates (race) =="
# The serving-layer invariants: pooled concurrent solves stay bitwise
# identical to serial, a full queue sheds with ErrOverloaded instead of
# blocking, expired requests are skipped, and Close drains gracefully.
go test -race -count=1 \
    -run 'TestPooledSolvesBitwiseIdenticalToSerial|TestOverloadShedsNeverBlocks|TestBatchingCoalesces|TestDeadlineExpiryMidSolve|TestExpiredInQueueSkipped|TestGracefulDrain' \
    ./internal/serve/

echo "== request tracing gates (race) =="
# End-to-end tracing invariants: one traced request's seven-phase
# attribution sums to within 5% of measured latency, tracing leaves
# solutions bitwise identical, incident triggers dump the flight recorder
# with the offending request's spans, Perfetto export survives concurrent
# load, span recording stays zero-alloc, and the Prometheus exposition
# escapes hostile HELP/label content.
go test -race -count=1 \
    -run 'TestTracedRequestAttribution|TestTracingDoesNotPerturbSolutions|TestFlightDump|TestPerfettoExportDuringLoad|TestTraceDroppedExported|TestQueueDepthMetrics' \
    ./internal/serve/
go test -race -count=1 \
    -run 'TestPerfettoRoundTrip|TestSpanRecordZeroAlloc|TestExportDroppedCounter|TestPrometheusEscapingConformance|TestConcurrentRegistryRegistration|TestFlight' \
    ./internal/obs/

echo "== popsolve telemetry smoke run =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/popsolve -grid test -method pcsi -precond evp -cores 12 \
    -trace "$tmp/t.jsonl" -metrics "$tmp/m.prom" > "$tmp/out.txt"

grep -q 'converged=true' "$tmp/out.txt"
grep -q 'per-rank phase breakdown' "$tmp/out.txt"
grep -q 'straggler attribution' "$tmp/out.txt"

# Trace: every line parses as JSON; the solver events are present.
python3 - "$tmp/t.jsonl" <<'EOF'
import json, sys
names = set()
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        ev = json.loads(line)
        assert ev["ev"] in ("B", "E", "P"), f"line {i}: bad ev {ev['ev']}"
        names.add(ev["name"])
for want in ("compute", "halo", "reduce", "residual", "eig_bound", "run_begin"):
    assert want in names, f"trace missing {want!r} events (saw {sorted(names)})"
EOF
grep -q '"straggler"' "$tmp/t.jsonl"

# Metrics: Prometheus text exposition with the headline series.
grep -q '^# TYPE popsolve_iterations_total counter' "$tmp/m.prom"
grep -q '^popsolve_converged 1' "$tmp/m.prom"
grep -q 'popsolve_reduce_wait_seconds_bucket{le="+Inf"}' "$tmp/m.prom"

echo "== traced serve -> Perfetto -> poptrace smoke run =="
# The full observability pipeline: a traced service load phase exports a
# Perfetto file that poptrace decomposes into a non-empty critical path.
go run ./cmd/popbench -serve -servesec 2 -reportdir "$tmp" \
    -perfetto "$tmp/trace.json" > "$tmp/serve.txt"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$tmp/trace.json"
go run ./cmd/poptrace "$tmp/trace.json" > "$tmp/poptrace.txt"
grep -q 'per-request critical path' "$tmp/poptrace.txt"
grep -q 'aggregate critical path' "$tmp/poptrace.txt"
grep -q 'straggler league' "$tmp/poptrace.txt"
# The aggregate line must attribute a nonzero number of requests.
grep -q 'aggregate critical path (0 requests' "$tmp/poptrace.txt" && {
    echo "poptrace saw no requests"; exit 1; }

echo "== popserver HTTP smoke run =="
addr=127.0.0.1:18411
go build -o "$tmp/popserver" ./cmd/popserver
"$tmp/popserver" -addr "$addr" > "$tmp/server.log" 2>&1 &
server_pid=$!
trap 'rm -rf "$tmp"; kill "$server_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    curl -fs "http://$addr/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
curl -fs "http://$addr/healthz" | grep -q ok
curl -fs -X POST "http://$addr/solve" \
    -d '{"grid":"test","method":"pcsi","precond":"evp","rhs":"smooth"}' \
    > "$tmp/solve.json"
grep -q '"converged":true' "$tmp/solve.json"
# Typed errors surface as HTTP statuses: unknown method -> 400.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/solve" \
    -d '{"method":"warp","rhs":"smooth"}')
[ "$code" = 400 ] || { echo "bad method gave $code, want 400"; exit 1; }
curl -fs "http://$addr/metrics" | grep -q '^serve_solves_total'
curl -fs "http://$addr/metrics" | grep -q '^serve_queue_depth '
# The live Perfetto export parses and carries the solve's request record.
curl -fs "http://$addr/debug/trace" > "$tmp/server-trace.json"
python3 -c 'import json,sys; t=json.load(open(sys.argv[1])); assert t["popRequests"], "no request records"' \
    "$tmp/server-trace.json"
curl -fs "http://$addr/debug/flight" | grep -q '"recent"'
# /stats reports build + capability info alongside the counters.
curl -fs "http://$addr/stats" > "$tmp/stats.json"
grep -q '"go_version":"go' "$tmp/stats.json"
grep -q '"grids":\[' "$tmp/stats.json"
grep -q '"test"' "$tmp/stats.json"
# The /v1 surface answers and the legacy shim carries the Deprecation header.
curl -fs "http://$addr/v1/healthz" | grep -q '"status":"ok"'
curl -fsi "http://$addr/healthz" | grep -qi '^deprecation: version="v1"'
# SIGTERM drains gracefully and the process exits on its own.
kill -TERM "$server_pid"
for _ in $(seq 1 50); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "popserver did not exit after SIGTERM"; exit 1
fi

echo "== fleet smoke run (router + 2 workers over the binary frame) =="
# Two worker popservers, a router consistent-hashing onto them over the
# compact binary frame, and the fleet guarantees end to end: /v1/solve in
# both encodings, a bitwise cache replay on the identical repeat, enum
# validation with self-repairing 400s, the legacy shim, and /v1/stats
# aggregation whose totals sum the workers' own counters.
w1=127.0.0.1:18421; w2=127.0.0.1:18422; router=127.0.0.1:18423
"$tmp/popserver" -addr "$w1" > "$tmp/w1.log" 2>&1 &
w1_pid=$!
"$tmp/popserver" -addr "$w2" > "$tmp/w2.log" 2>&1 &
w2_pid=$!
trap 'rm -rf "$tmp"; kill "$server_pid" "$w1_pid" "$w2_pid" "$router_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    curl -fs "http://$w1/v1/healthz" > /dev/null 2>&1 \
        && curl -fs "http://$w2/v1/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
"$tmp/popserver" -addr "$router" -routeto "http://$w1,http://$w2" > "$tmp/router.log" 2>&1 &
router_pid=$!
for _ in $(seq 1 50); do
    curl -fs "http://$router/v1/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
# JSON /v1/solve through the router: a miss dispatched to a shard.
curl -fs -X POST "http://$router/v1/solve" \
    -d '{"grid":"test","method":"pcsi","precond":"evp","rhs":"smooth"}' \
    > "$tmp/fleet1.json"
grep -q '"converged":true' "$tmp/fleet1.json"
grep -q '"cache":"miss"' "$tmp/fleet1.json"
# The binary-frame probe sends the identical request: it must replay from
# the result cache without consulting a worker.
"$tmp/popserver" -probe "http://$router" -frame -method pcsi -precond evp \
    > "$tmp/probe.txt"
grep -q 'converged=true' "$tmp/probe.txt"
grep -q 'cache=hit' "$tmp/probe.txt"
grep -q 'shard=-1' "$tmp/probe.txt"
# A 400 names the failing field and lists the accepted spellings.
curl -s -X POST "http://$router/v1/solve" -d '{"method":"warp","rhs":"smooth"}' \
    > "$tmp/fleet400.json"
grep -q '"field":"method"' "$tmp/fleet400.json"
grep -q '"accepted":\["chrongear"' "$tmp/fleet400.json"
# The legacy shim still solves, deprecated.
curl -fsi -X POST "http://$router/solve" \
    -d '{"grid":"test","method":"pcsi","precond":"evp","rhs":"smooth"}' \
    > "$tmp/legacy.txt"
grep -qi '^deprecation: version="v1"' "$tmp/legacy.txt"
grep -q '"converged":true' "$tmp/legacy.txt"
# /v1/stats: the router's totals row must sum the worker rows exactly, and
# the fleet counters must have seen our hit and misses.
curl -fs "http://$router/v1/stats" > "$tmp/fleetstats.json"
python3 - "$tmp/fleetstats.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["fleet"]["cache_hits"] >= 1, s["fleet"]
assert s["fleet"]["cache_misses"] >= 1, s["fleet"]
for field in ("requests", "solves", "sessions", "errors"):
    total = sum(w["counters"][field] for w in s["workers"])
    assert s["totals"][field] == total, (field, s["totals"][field], total)
assert sum(w["counters"]["solves"] for w in s["workers"]) >= 1
assert all(w["healthy"] for w in s["workers"]), s["workers"]
EOF
# The router serves its fleet_* metrics (hit count asserted above).
curl -fs "http://$router/metrics" | grep -q '^fleet_cache_hits_total '
kill -TERM "$router_pid" "$w1_pid" "$w2_pid" 2>/dev/null || true
for _ in $(seq 1 50); do
    kill -0 "$router_pid" 2>/dev/null || break
    sleep 0.1
done

echo "verify.sh: OK"
