package analysis_test

import (
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestDeterminism(t *testing.T) {
	analyzertest.Run(t, "testdata/determinism", poplint.Determinism, "repro/internal/stencil")
}

// TestDeterminismOutOfScope checks the analyzer ignores packages outside the
// deterministic-numerics set: the same violations under an unscoped path
// produce no diagnostics. The lockstep testdata package imports nothing
// nondeterministic, so reuse it as the out-of-scope probe.
func TestDeterminismOutOfScope(t *testing.T) {
	if msgs := analyzertest.Diagnostics(t, "testdata/collectivelockstep", poplint.Determinism, "lockstep"); len(msgs) != 0 {
		t.Fatalf("determinism fired outside its scope: %q", msgs)
	}
}
