package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
)

// flipCtx is a context whose Err flips to Canceled after `after` calls.
// Ranks observe it racing past the threshold mid-check, which is exactly
// the hazard the cancellation protocol defuses: local observations may
// disagree, but the reduced flag is identical on every rank.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

var contextSolvers = map[string]func(s *Session, ctx context.Context, b, x0 []float64) (Result, []float64, error){
	"chrongear": (*Session).SolveChronGearContext,
	"pcg":       (*Session).SolvePCGContext,
	"pipecg":    (*Session).SolvePipeCGContext,
	"pcsi":      (*Session).SolvePCSIContext,
}

func TestSolvePreCancelledContext(t *testing.T) {
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	for name, solve := range contextSolvers {
		s := f.session(t, Options{Precond: PrecondDiagonal})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _, err := solve(s, ctx, f.b, x0)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestSolveExpiredDeadline(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondDiagonal})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := s.SolveChronGearContext(ctx, f.b, make([]float64, f.g.N()))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelledSolveResidualPrefix cancels each solver mid-solve and checks
// the protocol's central guarantee: the residual history of the cancelled
// solve is a bitwise prefix of the uncancelled one — cancellation can stop
// a solve but never steer it.
func TestCancelledSolveResidualPrefix(t *testing.T) {
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	for name, solve := range contextSolvers {
		full := f.session(t, Options{Precond: PrecondDiagonal})
		res, _, err := solve(full, context.Background(), f.b, x0)
		if err != nil || !res.Converged {
			t.Fatalf("%s: uncancelled solve failed: converged=%v err=%v", name, res.Converged, err)
		}
		if len(res.Trace.Residuals) < 3 {
			t.Fatalf("%s: solve too short to cancel mid-way (%d checks)", name, len(res.Trace.Residuals))
		}

		// Let the pre-solve check and the first two checks (one Err call per
		// rank each) pass, then flip mid-third-check: ranks disagree locally,
		// the reduction arbitrates.
		ctx := &flipCtx{Context: context.Background(), after: int64(1 + 2*f.d.NRanks)}
		cs := f.session(t, Options{Precond: PrecondDiagonal})
		cres, _, cerr := solve(cs, ctx, f.b, x0)
		if !errors.Is(cerr, context.Canceled) {
			t.Fatalf("%s: cancelled solve: err = %v, want context.Canceled", name, cerr)
		}
		if cres.Converged {
			t.Fatalf("%s: cancelled solve reported converged", name)
		}
		got := cres.Trace.Residuals
		want := res.Trace.Residuals
		if len(got) == 0 || len(got) >= len(want) {
			t.Fatalf("%s: cancelled solve recorded %d checks, full solve %d — expected a strict non-empty prefix",
				name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: check %d: cancelled %+v != full %+v — cancellation perturbed the numerics",
					name, i, got[i], want[i])
			}
		}
	}
}

func TestSolveContextDispatch(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondDiagonal})
	res, x, err := s.SolveContext(context.Background(), MethodChronGear, f.b, nil)
	if err != nil || !res.Converged {
		t.Fatalf("SolveContext(chrongear): converged=%v err=%v", res.Converged, err)
	}
	if len(x) != f.g.N() {
		t.Fatalf("solution length %d, want %d", len(x), f.g.N())
	}

	if _, _, err := s.SolveContext(context.Background(), Method(99), f.b, nil); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown method: err = %v, want ErrBadSpec", err)
	}
	if _, _, err := s.SolveContext(context.Background(), MethodChronGear, f.b[:3], nil); !errors.Is(err, ErrBadSpec) {
		t.Errorf("short rhs: err = %v, want ErrBadSpec", err)
	}
	if _, _, err := s.SolveContext(context.Background(), MethodChronGear, f.b, make([]float64, 3)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("short x0: err = %v, want ErrBadSpec", err)
	}
}

// TestSolveContextCSIAlias checks MethodCSI dispatches to the Stiefel
// iteration (identity preconditioning is applied by construction-time code,
// not the dispatcher).
func TestSolveContextCSIAlias(t *testing.T) {
	// Unpreconditioned CSI needs a well-conditioned system: small tau means
	// a strong mass term.
	f := newFixture(t, grid.Generate(grid.TestSpec()), 4, 3, 100)
	s := f.session(t, Options{Precond: PrecondIdentity, Tol: 1e-6})
	res, _, err := s.SolveContext(context.Background(), MethodCSI, f.b, nil)
	if err != nil || !res.Converged {
		t.Fatalf("SolveContext(csi): converged=%v err=%v", res.Converged, err)
	}
	if res.Solver != "pcsi" {
		t.Errorf("csi dispatched to %q, want pcsi", res.Solver)
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{MethodChronGear, MethodPCG, MethodPipeCG, MethodPCSI, MethodCSI} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
		if !m.Valid() {
			t.Errorf("%v.Valid() = false", m)
		}
	}
	if m, err := ParseMethod(""); err != nil || m != MethodChronGear {
		t.Errorf("ParseMethod(\"\") = %v, %v; want ChronGear default", m, err)
	}
	if _, err := ParseMethod("magic"); !errors.Is(err, ErrBadSpec) {
		t.Errorf("ParseMethod(magic): err = %v, want ErrBadSpec", err)
	}
	if Method(99).Valid() {
		t.Error("Method(99).Valid() = true")
	}
}

func TestParsePrecondRoundTrip(t *testing.T) {
	cases := map[string]PrecondType{
		"":         PrecondDiagonal,
		"diagonal": PrecondDiagonal,
		"evp":      PrecondEVP,
		"blocklu":  PrecondBlockLU,
		"none":     PrecondIdentity,
	}
	for s, want := range cases {
		got, err := ParsePrecond(s)
		if err != nil || got != want {
			t.Errorf("ParsePrecond(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePrecond("magic"); !errors.Is(err, ErrBadSpec) {
		t.Errorf("ParsePrecond(magic): err = %v, want ErrBadSpec", err)
	}
}

func TestNotConvergedErrorMatching(t *testing.T) {
	err := error(&NotConvergedError{Solver: "pcsi", Iterations: 42, RelResidual: 0.5})
	if !errors.Is(err, ErrNotConverged) {
		t.Error("NotConvergedError does not match ErrNotConverged")
	}
	var nc *NotConvergedError
	if !errors.As(err, &nc) || nc.Iterations != 42 {
		t.Errorf("errors.As failed or lost fields: %+v", nc)
	}
}

// TestPCSIDivergenceTypedError forces a Chebyshev interval far below the
// spectrum — every mode above μ amplifies, faster than the raise-μ guard
// can recover — and checks the failure surfaces as a NotConvergedError.
func TestPCSIDivergenceTypedError(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondDiagonal, MaxIters: 300})
	if err := s.Setup(); err != nil {
		t.Fatal(err)
	}
	s.Nu, s.Mu = 1e-9, 2e-9 // spectrum of the diagonally-scaled operator is O(1)
	res, _, err := s.SolvePCSI(f.b, make([]float64, f.g.N()))
	if res.Converged {
		t.Skip("bogus interval unexpectedly converged")
	}
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("diverged pcsi: err = %v, want ErrNotConverged", err)
	}
	var nc *NotConvergedError
	if !errors.As(err, &nc) {
		t.Fatalf("diverged pcsi: err %v is not a NotConvergedError", err)
	}
	if nc.Iterations == 0 || nc.RelResidual <= 1e6 {
		t.Errorf("NotConvergedError fields not populated: %+v", nc)
	}
}
