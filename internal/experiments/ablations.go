package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

// CheckFreq is the §5.2 side-note made measurable: "because P-CSI
// iterations are relatively inexpensive (compared to performing the POP
// convergence check), P-CSI performance may improve if the check for
// convergence occurs less frequently." Sweep the check interval for both
// solvers at a large core count and report iterations and per-solve time.
// ChronGear is indifferent (its check rides the reduction it must do
// anyway); P-CSI trades a few overshoot iterations for fewer reductions.
func (c *Config) CheckFreq(res string) (*Table, error) {
	g := c.gridFor(res)
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(c.tauFor(res)))
	b := syntheticRHS(g, op)
	targets := c.CoreTargets(res)
	target := targets[len(targets)-1]
	bx, by, cores, err := decomp.ChooseBlocking(g, target, 3, 2)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Ablation: convergence-check interval, %s @ %d cores, %s",
			res, cores, c.Machine.Name),
		Header: []string{"check_every", "cg_iters", "cg_s/solve", "pcsi_iters", "pcsi_s/solve"},
	}
	for _, every := range []int{1, 5, 10, 20, 50} {
		row := []string{fmt.Sprint(every)}
		for _, solver := range []string{"chrongear", "pcsi"} {
			d, err := decomp.New(g, bx, by, decomp.DefaultHalo)
			if err != nil {
				return nil, err
			}
			d.AssignOnePerRank()
			w, err := comm.NewWorld(d, c.Machine)
			if err != nil {
				return nil, err
			}
			sess, err := core.NewSession(g, op, d, w, core.Options{
				Precond: core.PrecondEVP, CheckEvery: every})
			if err != nil {
				return nil, err
			}
			var res2 core.Result
			if solver == "chrongear" {
				res2, _, err = sess.SolveChronGear(b, make([]float64, g.N()))
			} else {
				res2, _, err = sess.SolvePCSI(b, make([]float64, g.N()))
			}
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprint(res2.Iterations), fmt.Sprintf("%.4g", res2.Stats.MaxClock))
		}
		t.Rows = append(t.Rows, row)
		c.logf("checkfreq %d done", every)
	}
	return t, nil
}

// EqCheck cross-validates the priced measurements against the paper's
// closed-form per-solve models (Equations 2, 3, 5 and 6): for each
// configuration at each core count, report measured virtual time per solve
// next to K·T_iter from the equation with the *measured* K. The analytic
// forms ignore convergence checks, Lanczos setup, load imbalance, and
// contention noise, so ratios near 1 (typically 0.5–2) validate the
// pricing; systematic drift would flag a bug in either.
func (c *Config) EqCheck(res string) (*Table, error) {
	ms, err := c.Sweep(res)
	if err != nil {
		return nil, err
	}
	// Compare under the noise-free machine so the closed forms' missing
	// noise terms don't dominate: re-price deterministic parts only.
	ideal := perfmodel.Ideal()
	n2 := float64(c.gridFor(res).Nx) * float64(c.gridFor(res).Ny)
	t := &Table{
		Title:  fmt.Sprintf("Ablation: measured vs Eq.2/3/5/6 per-solve time, %s", res),
		Header: []string{"config", "cores", "K", "measured_s", "eq_s", "ratio"},
	}
	for _, m := range ms {
		var eq float64
		switch {
		case m.Config.Solver == "chrongear" && m.Config.Precond == core.PrecondDiagonal:
			eq = perfmodel.EqChronGearDiag(ideal, n2, m.Cores, float64(m.Iterations))
		case m.Config.Solver == "chrongear" && m.Config.Precond == core.PrecondEVP:
			eq = perfmodel.EqChronGearEVP(ideal, n2, m.Cores, float64(m.Iterations))
		case m.Config.Solver == "pcsi" && m.Config.Precond == core.PrecondDiagonal:
			eq = perfmodel.EqPCSIDiag(ideal, n2, m.Cores, float64(m.Iterations))
		case m.Config.Solver == "pcsi" && m.Config.Precond == core.PrecondEVP:
			eq = perfmodel.EqPCSIEVP(ideal, n2, m.Cores, float64(m.Iterations))
		default:
			continue
		}
		t.Rows = append(t.Rows, []string{
			m.Config.String(), fmt.Sprint(m.Cores), fmt.Sprint(m.Iterations),
			fmt.Sprintf("%.4g", m.SolveTime), fmt.Sprintf("%.4g", eq),
			fmt.Sprintf("%.2f", m.SolveTime/eq),
		})
	}
	return t, nil
}
