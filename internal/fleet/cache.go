package fleet

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
)

// resultCache is the completed-solve cache: content hash → the solve's
// Result and solution vector, with LRU eviction and TTL expiry. Because
// solves are deterministic (same key bits → same residual history → same
// solution bits), a hit replays the original solve bitwise — the cache
// never serves an approximation.
//
// TTL exists for operational hygiene, not correctness: entries never go
// stale in the deterministic sense, but bounding lifetime keeps a
// long-running router's memory shaped by recent traffic. Expiry is checked
// lazily at lookup; there is no sweeper goroutine.
type resultCache struct {
	mu      sync.Mutex
	entries map[api.CacheKey]*list.Element
	lru     *list.List // front = most recent
	cap     int
	ttl     time.Duration
	now     func() time.Time

	hits, misses, evictions, expirations int64
}

// cacheEntry is one cached solve. x is private to the cache; Get hands out
// copies so no caller can corrupt the replay.
type cacheEntry struct {
	key      api.CacheKey
	res      core.Result
	x        []float64
	storedAt time.Time
}

// newResultCache builds a cache holding up to capacity entries for up to
// ttl each (ttl ≤ 0 = no expiry). now is the clock, injectable so TTL tests
// are deterministic; nil uses time.Now.
func newResultCache(capacity int, ttl time.Duration, now func() time.Time) *resultCache {
	if now == nil {
		now = time.Now
	}
	return &resultCache{
		entries: make(map[api.CacheKey]*list.Element),
		lru:     list.New(),
		cap:     capacity,
		ttl:     ttl,
		now:     now,
	}
}

// get returns the cached solve for key, or ok=false on miss. A hit
// freshens the entry's LRU position and returns an independent copy of the
// solution vector; an expired entry counts as a miss and is dropped.
func (c *resultCache) get(key api.CacheKey) (core.Result, []float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return core.Result{}, nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().Sub(e.storedAt) >= c.ttl {
		c.lru.Remove(el)
		delete(c.entries, key)
		c.expirations++
		c.misses++
		return core.Result{}, nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	x := make([]float64, len(e.x))
	copy(x, e.x)
	return e.res, x, true
}

// put stores a completed solve, copying x, and evicts from the LRU tail
// past capacity. Re-putting an existing key refreshes its value, position
// and TTL clock.
func (c *resultCache) put(key api.CacheKey, res core.Result, x []float64) {
	if c.cap <= 0 {
		return
	}
	xc := make([]float64, len(x))
	copy(xc, x)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.res, e.x, e.storedAt = res, xc, c.now()
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res, x: xc, storedAt: c.now()})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// cacheStats is a point-in-time snapshot of the cache counters.
type cacheStats struct {
	entries, hits, misses, evictions, expirations int64
}

// stats snapshots the counters.
func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		entries:     int64(c.lru.Len()),
		hits:        c.hits,
		misses:      c.misses,
		evictions:   c.evictions,
		expirations: c.expirations,
	}
}
