package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// Bucket edges follow the Prometheus "le" convention: a value equal to a
// bound belongs to that bound's bucket.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 99, 100, 1e6} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 1} // (−∞,1], (1,10], (10,100], (100,+Inf)
	for i, n := range want {
		if got := h.BucketCount(i); got != n {
			t.Errorf("bucket %d: got %d, want %d", i, got, n)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+10+99+100+1e6; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram([]float64{100, 1, 10})
	h.Observe(5)
	if got := h.BucketCount(1); got != 1 {
		t.Errorf("value 5 should land in (1,10]; bucket counts %v %v %v %v",
			h.BucketCount(0), h.BucketCount(1), h.BucketCount(2), h.BucketCount(3))
	}
}

// Counters, gauges and histograms must be safe under concurrent writers —
// run with -race.
func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	g := r.Gauge("test_gauge", "")
	h := r.Histogram("test_hist", "", []float64{0.25, 0.5, 0.75})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%4) / 4)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pop_reductions_total", "global reductions").Add(42)
	r.Gauge(`pop_phase_seconds{phase="comp"}`, "per-phase virtual seconds").Set(1.5)
	r.Gauge(`pop_phase_seconds{phase="halo"}`, "per-phase virtual seconds").Set(0.5)
	h := r.Histogram("pop_reduce_wait_seconds", "reduction waits", []float64{1e-6, 1e-3})
	h.Observe(5e-4)

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE pop_reductions_total counter",
		"pop_reductions_total 42",
		"# TYPE pop_phase_seconds gauge",
		`pop_phase_seconds{phase="comp"} 1.5`,
		`pop_reduce_wait_seconds_bucket{le="0.001"} 1`,
		`pop_reduce_wait_seconds_bucket{le="+Inf"} 1`,
		"pop_reduce_wait_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// The TYPE header for a labeled family must appear exactly once.
	if n := strings.Count(text, "# TYPE pop_phase_seconds gauge"); n != 1 {
		t.Errorf("pop_phase_seconds TYPE line appears %d times", n)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Counts []int64 `json:"counts"`
			Count  int64   `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}
	if decoded.Counters["pop_reductions_total"] != 42 {
		t.Errorf("JSON counter = %d, want 42", decoded.Counters["pop_reductions_total"])
	}
	if decoded.Histograms["pop_reduce_wait_seconds"].Count != 1 {
		t.Errorf("JSON histogram count wrong")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	rt := tr.Rank(0)
	for i := 0; i < 10; i++ {
		rt.Add(Event{Name: EvCompute, T0: float64(i), T1: float64(i), Iter: -1, Straggler: -1})
	}
	if got := rt.Len(); got != 4 {
		t.Fatalf("retained %d events, want 4", got)
	}
	if got := rt.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := rt.Events()
	for i, e := range evs {
		if want := float64(6 + i); e.T0 != want {
			t.Errorf("event %d: T0 = %g, want %g (oldest-first order after wrap)", i, e.T0, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("tracer dropped = %d, want 6", tr.Dropped())
	}
}

func TestNilTracerDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
}

func TestSummarizeReduces(t *testing.T) {
	events := []Event{
		{Rank: 0, Name: EvReduce, T0: 0, T1: 1, Iter: -1, Straggler: 1, Wait: 0.5},
		{Rank: 1, Name: EvReduce, T0: 0.5, T1: 1, Iter: -1, Straggler: 1, Wait: 0},
		{Rank: 0, Name: EvReduce, T0: 1, T1: 2, Iter: -1, Straggler: 0, Wait: 0},
		{Rank: 1, Name: EvReduce, T0: 1, T1: 2, Iter: -1, Straggler: 0, Wait: 0.25},
		{Rank: 0, Name: EvCompute, T0: 2, T1: 3, Iter: -1, Straggler: -1},
	}
	s := SummarizeReduces(events)
	if s.Reductions != 2 {
		t.Errorf("reductions = %d, want 2", s.Reductions)
	}
	if s.StragglerCount[1] != 1 || s.StragglerCount[0] != 1 {
		t.Errorf("straggler counts = %v", s.StragglerCount)
	}
	if s.WaitByRank[0] != 0.5 || s.WaitByRank[1] != 0.25 {
		t.Errorf("waits = %v", s.WaitByRank)
	}
	if s.MaxWait != 0.5 {
		t.Errorf("max wait = %g", s.MaxWait)
	}
	var buf bytes.Buffer
	s.Fprint(&buf)
	if !strings.Contains(buf.String(), "straggler attribution") {
		t.Errorf("Fprint output: %s", buf.String())
	}
}
