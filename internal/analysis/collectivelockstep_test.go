package analysis_test

import (
	"testing"

	poplint "repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestCollectiveLockstep(t *testing.T) {
	analyzertest.Run(t, "testdata/collectivelockstep", poplint.CollectiveLockstep, "lockstep")
}
