// Package fleet joins the hash and the pool key — the layer where wire
// drift becomes a cache-correctness bug.
package fleet

import (
	"repro/internal/api"
	"repro/internal/serve" // want `semantic wire field SStep is not part of the serve pool Key`
)

// Dispatch hashes one request and derives its pool key.
func Dispatch(req api.SolveRequest) ([4]byte, serve.Key) {
	h := api.HashSolve(req.Grid, req.Method, req.Fresh, req.B, req.X0)
	k := serve.NormalizeRequest(&serve.Request{
		Grid: req.Grid, Method: req.Method, Fresh: req.Fresh, B: req.B, X0: req.X0,
	})
	return h, k
}
