package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/perfmodel"
)

// Runner executes one named experiment, writing its tables to w.
type Runner func(c *Config, w io.Writer) error

func printTables(w io.Writer, tables ...*Table) {
	for _, t := range tables {
		t.Fprint(w)
		fmt.Fprintln(w)
	}
}

// Registry maps experiment ids (fig1..fig13, tab1, and extras) to runners.
var Registry = map[string]Runner{
	"fig1": func(c *Config, w io.Writer) error {
		t, err := c.Fig01()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"fig2": func(c *Config, w io.Writer) error {
		t, err := c.Fig02()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"fig3": func(c *Config, w io.Writer) error {
		t, err := c.Fig03()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"fig6": func(c *Config, w io.Writer) error {
		t, err := c.Fig06()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"fig7": func(c *Config, w io.Writer) error {
		t, err := c.Fig07()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"tab1": func(c *Config, w io.Writer) error {
		t, err := c.Tab01()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"fig8": func(c *Config, w io.Writer) error {
		l, r, err := c.Fig08()
		if err != nil {
			return err
		}
		printTables(w, l, r)
		return nil
	},
	"fig9": func(c *Config, w io.Writer) error {
		t, err := c.Fig09()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"fig10": func(c *Config, w io.Writer) error {
		l, r, err := c.Fig10()
		if err != nil {
			return err
		}
		printTables(w, l, r)
		return nil
	},
	"fig11": func(c *Config, w io.Writer) error {
		// Figure 11 is defined on Edison; run it there regardless of the
		// context's machine (sharing any generated grids).
		ce := c
		if c.Machine.Name != "edison" {
			ce = NewConfig(perfmodel.Edison(), c.Quick, c.Out)
			ce.Verbose = c.Verbose
			ce.grids = c.grids
		}
		l, r, err := ce.Fig11(3)
		if err != nil {
			return err
		}
		printTables(w, l, r)
		return nil
	},
	"fig12": func(c *Config, w io.Writer) error {
		t, err := c.Fig12()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"fig13": func(c *Config, w io.Writer) error {
		t, err := c.Fig13()
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"checkfreq": func(c *Config, w io.Writer) error {
		t, err := c.CheckFreq("0.1deg")
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"eqcheck": func(c *Config, w io.Writer) error {
		t, err := c.EqCheck("0.1deg")
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
	"evpsetup": func(c *Config, w io.Writer) error {
		t, err := c.EVPSetupCost("0.1deg", c.CoreTargets("0.1deg")[0])
		if err != nil {
			return err
		}
		printTables(w, t)
		return nil
	},
}

// Names returns the registered experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, c *Config, w io.Writer) error {
	r, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	return r(c, w)
}
