package experiments

import (
	"encoding/json"
	"io"
	"runtime"
)

// Hardware records the real-machine execution context of a report.
// Virtual-time numbers are machine-model functions and ignore it, but
// wall-clock figures are only comparable between runs whose Hardware
// matches — so every BENCH_*.json header carries one.
type Hardware struct {
	// GoVersion is runtime.Version() of the writing binary.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the Go scheduler's thread cap at report time.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// WorkerShards is the effective worker-shard count sessions ran with:
	// at most this many virtual ranks execute concurrently on real cores.
	WorkerShards int `json:"worker_shards"`
}

// DetectHardware snapshots the execution context. threads is the
// configured worker-shard knob; 0 resolves to GOMAXPROCS, mirroring
// comm.World.SetThreads.
func DetectHardware(threads int) Hardware {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return Hardware{
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		WorkerShards: threads,
	}
}

// BenchReport is the machine-readable record of one experiment run —
// what popbench writes as BENCH_<experiment>.json so a sweep's numbers
// can be diffed or plotted without re-parsing the printed tables.
type BenchReport struct {
	Experiment  string   `json:"experiment"`
	Machine     string   `json:"machine"`
	Quick       bool     `json:"quick"`
	WallSeconds float64  `json:"wall_seconds"`
	Hardware    Hardware `json:"hardware"`

	// Measurements taken while this experiment ran. Empty when the
	// experiment reused a sweep cached by an earlier figure.
	Measurements []ReportMeasurement `json:"measurements"`
}

// ReportMeasurement is Measurement flattened for JSON: the solver
// config as one string, virtual times in seconds.
type ReportMeasurement struct {
	Res        string  `json:"res"`
	Config     string  `json:"config"`
	Cores      int     `json:"cores"`
	BlockNx    int     `json:"block_nx"`
	BlockNy    int     `json:"block_ny"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	SolveTime  float64 `json:"solve_seconds"` // MaxClock of the solve
	CompTime   float64 `json:"comp_seconds"`
	HaloTime   float64 `json:"halo_seconds"`
	ReduceTime float64 `json:"reduce_seconds"`
	SetupTime  float64 `json:"setup_seconds"`
	EigTime    float64 `json:"eig_seconds"`
	EigSteps   int     `json:"eig_steps,omitempty"`
}

// NewBenchReport assembles a report from the measurements an experiment
// contributed (a slice of Config.Recorded()).
func NewBenchReport(c *Config, experiment string, wallSeconds float64, ms []Measurement) *BenchReport {
	r := &BenchReport{
		Experiment:   experiment,
		Machine:      c.Machine.Name,
		Quick:        c.Quick,
		WallSeconds:  wallSeconds,
		Hardware:     DetectHardware(0),
		Measurements: make([]ReportMeasurement, 0, len(ms)),
	}
	for _, m := range ms {
		r.Measurements = append(r.Measurements, ReportMeasurement{
			Res: m.Res, Config: m.Config.String(), Cores: m.Cores,
			BlockNx: m.BlockNx, BlockNy: m.BlockNy,
			Iterations: m.Iterations, Converged: m.Converged,
			SolveTime: m.SolveTime, CompTime: m.CompTime,
			HaloTime: m.HaloTime, ReduceTime: m.ReduceTime,
			SetupTime: m.SetupTime, EigTime: m.EigTime, EigSteps: m.EigSteps,
		})
	}
	return r
}

// WriteJSON writes the report, indented, with a trailing newline.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
