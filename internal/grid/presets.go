package grid

import "fmt"

// Presets mirror the two production POP resolutions the paper evaluates plus
// reduced-size variants for tests and laptop-scale experiments. All presets
// share the same Seed, so every resolution sees the same synthetic geography.

const presetSeed = 20151115 // SC '15 conference date; fixed for determinism

func baseSpec(name string, nx, ny int) Spec {
	return Spec{
		Name: name, Nx: nx, Ny: ny,
		LatMin: -79, LatMax: 89,
		MinCosLat:     0.15,
		OceanFraction: 0.68, // close to the real POP grids' wet fraction
		MaxDepth:      5500,
		MinDepth:      60,
		Seed:          presetSeed,
	}
}

// OneDegreeSpec is the paper's 1° grid: 320×384 T-points.
func OneDegreeSpec() Spec { return baseSpec("gx1-synthetic", 320, 384) }

// TenthDegreeSpec is the paper's 0.1° grid: 3600×2400 T-points.
func TenthDegreeSpec() Spec { return baseSpec("tx0.1-synthetic", 3600, 2400) }

// QuarterScaleTenthSpec keeps the 0.1° grid's 3:2 aspect ratio and geography
// at 1/16 the point count (900×600); used where full 0.1° solves would be
// too slow (e.g. -short benchmarks).
func QuarterScaleTenthSpec() Spec { return baseSpec("tx0.4-synthetic", 900, 600) }

// TestSpec is a small grid for unit tests: same geography machinery at
// 64×48.
func TestSpec() Spec { return baseSpec("test-synthetic", 64, 48) }

// Preset names accepted by ByName — the same identifiers the pop façade,
// the CLI flags, and the solve service's JSON requests use.
const (
	PresetOneDegree         = "1deg"
	PresetTenthDegree       = "0.1deg"
	PresetTenthDegreeScaled = "0.1deg-scaled"
	PresetTest              = "test"
)

// PresetNames lists the preset identifiers ByName accepts.
func PresetNames() []string {
	return []string{PresetOneDegree, PresetTenthDegree, PresetTenthDegreeScaled, PresetTest}
}

// ByName generates one of the preset synthetic grids by identifier. Every
// call regenerates the grid; callers serving repeated requests should cache
// the result (grid generation for the 0.1° preset takes seconds).
func ByName(name string) (*Grid, error) {
	switch name {
	case PresetOneDegree:
		return OneDegree(), nil
	case PresetTenthDegree:
		return TenthDegree(), nil
	case PresetTenthDegreeScaled:
		return Generate(QuarterScaleTenthSpec()), nil
	case PresetTest:
		return Generate(TestSpec()), nil
	default:
		return nil, fmt.Errorf("grid: unknown preset %q", name)
	}
}

// OneDegree generates the synthetic 1° grid.
func OneDegree() *Grid { return Generate(OneDegreeSpec()) }

// TenthDegree generates the synthetic 0.1° grid (≈ 8.6M points, ~600 MB of
// field data; takes a few seconds).
func TenthDegree() *Grid { return Generate(TenthDegreeSpec()) }

// NewFlatBasin returns an all-ocean rectangular basin with uniform depth and
// uniform spacing — the simplest well-conditioned test configuration, with
// analytic structure (constant stencil away from walls).
func NewFlatBasin(nx, ny int, depth, dx, dy float64) *Grid {
	g := &Grid{
		Name: "flat-basin",
		Nx:   nx, Ny: ny,
		Mask:  make([]bool, nx*ny),
		HT:    make([]float64, nx*ny),
		TAREA: make([]float64, nx*ny),
		TLat:  make([]float64, nx*ny),
		TLon:  make([]float64, nx*ny),
		HU:    make([]float64, nx*ny),
		DXU:   make([]float64, nx*ny),
		DYU:   make([]float64, nx*ny),
		UAREA: make([]float64, nx*ny),
	}
	for k := range g.Mask {
		g.Mask[k] = true
		g.HT[k] = depth
		g.TAREA[k] = dx * dy
		g.DXU[k] = dx
		g.DYU[k] = dy
	}
	g.deriveCorners()
	return g
}
