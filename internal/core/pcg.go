package core

import (
	"context"
	"math"

	"repro/internal/comm"
)

// SolvePCG runs the classic preconditioned conjugate gradient method with
// a background context; see SolvePCGContext.
func (s *Session) SolvePCG(b, x0 []float64) (Result, []float64, error) {
	return s.SolvePCGContext(context.Background(), b, x0)
}

// SolvePCGContext runs the classic preconditioned conjugate gradient
// method — the textbook formulation POP used before ChronGear, kept as the
// baseline that shows why merging its *two* global reductions per
// iteration into one (ChronGear) and then into none (P-CSI) matters at
// scale. Cancellation is observed at convergence-check boundaries only
// (see the session-level cancellation protocol).
func (s *Session) SolvePCGContext(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Setup(); err != nil {
		return Result{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, nil, ctxSolveErr(ctx, "pcg", 0)
	}
	o := s.Opts
	out := s.solveOut()
	res := Result{Solver: "pcg", Precond: o.Precond}
	trace := &SolveTrace{
		Residuals: make([]ResidualPoint, 0, o.MaxIters/o.CheckEvery+1)}
	cancelled := false // written by rank 0 only, read after Run

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.scatterMasked(r, "pcg.x", x0)
		bs := s.scatterMasked(r, "pcg.b", b)
		rr := s.field(r, "pcg.r")
		rp := s.field(r, "pcg.rp")
		zz := s.field(r, "pcg.z")
		pp := s.zeroField(r, "pcg.p")
		// Reduction payload reused by every collective in this program —
		// hoisted so the steady-state loop allocates nothing. Checks append
		// the residual norm and the cancellation flag.
		payload := make([]float64, 3)

		payload[0] = stageInitResidual(r, rs, rr, bs, xs)
		bnorm := math.Sqrt(r.AllReduce(payload[:1])[0])
		if r.ID == 0 {
			res.BNorm = bnorm
		}
		if bnorm == 0 {
			s.zeroSolutionExit(r, out, xs)
			if r.ID == 0 {
				res.Converged = true
			}
			return
		}
		target := o.Tol * bnorm

		rhoPrev := 0.0
		converged := false
		k := 0
		for k < o.MaxIters {
			k++
			check := k%o.CheckEvery == 0
			stagePrecond(r, rs, rp, rr) // r' = M⁻¹r
			payload[0] = stageDot(r, rs, rr, rp)
			rho := r.AllReduce(payload[:1])[0] // reduction 1 of 2
			if k == 1 {
				for i := 0; i < nb; i++ {
					copy(pp[i], rp[i])
				}
			} else {
				beta := rho / rhoPrev
				for i := 0; i < nb; i++ {
					xpay(rs.locs[i], pp[i], rp[i], beta)
					r.AddFlops(int64(rs.locs[i].InteriorLen()))
				}
			}
			rhoPrev = rho
			// z = B·p fused with δ = ⟨p, z⟩ (halo refresh inside).
			deltaL := stageFusedMatvecDot(r, rs, zz, pp)
			var rnL float64
			if check {
				rnL = stageDot(r, rs, rr, rr)
			}
			payload[0] = deltaL
			p := payload[:1]
			if check {
				payload[1] = rnL
				payload[2] = cancelFlag(ctx)
				p = payload[:3]
			}
			g := r.AllReduce(p) // reduction 2 of 2
			alpha := rho / g[0]
			if check {
				rn := math.Sqrt(g[1])
				if r.ID == 0 {
					res.RelResidual = rn / bnorm
				}
				traceResidual(r, trace, k, rn/bnorm)
				if rn <= target {
					converged = true
					break
				}
				if g[2] != 0 { // some rank saw ctx done — all ranks stop here
					if r.ID == 0 {
						cancelled = true
					}
					break
				}
			}
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				axpy(loc, xs[i], pp[i], alpha)
				axpy(loc, rr[i], zz[i], -alpha)
				r.AddFlops(2 * int64(loc.InteriorLen()))
			}
		}
		if r.ID == 0 {
			res.Iterations = k
			res.Converged = converged
		}
		s.gatherSolution(r, out, xs)
	})
	res.Stats = st
	res.Trace = trace
	s.restoreLand(out, b)
	if cancelled {
		return res, out, ctxSolveErr(ctx, "pcg", res.Iterations)
	}
	return res, out, nil
}
