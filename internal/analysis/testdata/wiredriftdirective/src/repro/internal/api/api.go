// Package api exercises the malformed //pop:nonsemantic directive: a
// directive without a reason is itself reported, and the field stays
// semantic (so its parity violations surface too).
package api

// SolveRequest is the JSON wire request.
type SolveRequest struct {
	// Grid names the preset.
	Grid string
	// Bad carries a reasonless directive and therefore stays semantic.
	//
	//pop:nonsemantic
	Bad int
}

// FrameRequest is the binary frame's decoded form.
type FrameRequest struct {
	// Grid names the preset.
	Grid string
}

// AppendFrameRequest encodes r.
func AppendFrameRequest(dst []byte, r FrameRequest) []byte {
	return append(dst, byte(len(r.Grid)))
}

// DecodeFrameRequest decodes raw.
func DecodeFrameRequest(raw []byte) FrameRequest {
	var r FrameRequest
	r.Grid = string(raw[:1])
	return r
}

// HashSolve hashes the content surface.
func HashSolve(grid string) [1]byte {
	var h [1]byte
	h[0] = byte(len(grid))
	return h
}
